package osdiversity

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/nvdfeed"
)

// tableFingerprint marshals every table the facade answers, so two
// analyses can be compared byte for byte.
func tableFingerprint(t *testing.T, a *Analysis) []byte {
	t.Helper()
	rows, distinct := a.ValidityTable()
	classRows, shares := a.ClassTable()
	temporal := map[string]map[int]int{}
	for _, name := range a.OSNames() {
		series, err := a.TemporalSeries(name)
		if err != nil {
			t.Fatalf("TemporalSeries(%s): %v", name, err)
		}
		temporal[name] = series
	}
	doc := map[string]any{
		"validity": rows,
		"distinct": distinct,
		"class":    classRows,
		"shares":   shares,
		"pairs":    a.PairwiseOverlaps(),
		"parts":    a.PartBreakdowns(),
		"periods":  a.HistoryObserved(2005),
		"kwise":    a.KWiseProducts(),
		"most":     a.MostShared(10),
		"temporal": temporal,
		"valid":    a.ValidCount(),
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal fingerprint: %v", err)
	}
	return raw
}

// TestStreamFeedsMatchesLoadFeeds is the tentpole acceptance test: the
// same feed set through the streaming pipeline and the materialized
// path yields byte-identical tables at workers 1 and 4.
func TestStreamFeedsMatchesLoadFeeds(t *testing.T) {
	dir := t.TempDir()
	feeds, err := GenerateFeeds(filepath.Join(dir, "feeds"), WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	var want []byte
	for _, workers := range []int{1, 4} {
		loaded, err := LoadFeeds(feeds, WithParallelism(workers))
		if err != nil {
			t.Fatalf("LoadFeeds(workers=%d): %v", workers, err)
		}
		streamed, err := StreamFeeds(feeds, WithParallelism(workers))
		if err != nil {
			t.Fatalf("StreamFeeds(workers=%d): %v", workers, err)
		}
		lf, sf := tableFingerprint(t, loaded), tableFingerprint(t, streamed)
		if !bytes.Equal(lf, sf) {
			t.Errorf("workers %d: streamed tables differ from materialized tables", workers)
		}
		if want == nil {
			want = lf
		} else if !bytes.Equal(want, lf) {
			t.Errorf("workers %d: tables differ from workers 1", workers)
		}
	}
}

// writeLenientFeeds renders per-year feeds with malformed entries
// interleaved into two of the files.
func writeLenientFeeds(t *testing.T, dir string) (paths []string, bad int) {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	for i, g := range corpus.SplitByYear(c.Entries) {
		path := filepath.Join(dir, fmt.Sprintf("nvdcve-2.0-%d.xml.gz", g.Year))
		malformed := 0
		if i%5 == 0 {
			malformed = 3
			bad += malformed
		}
		if err := nvdfeed.WriteFileWithMalformed(path, fmt.Sprintf("CVE-%d", g.Year), g.Entries, malformed); err != nil {
			t.Fatalf("WriteFileWithMalformed: %v", err)
		}
		paths = append(paths, path)
	}
	return paths, bad
}

// TestLenientStreamIdentityAndSkipCounts asserts the lenient loaders
// agree between the streaming and materialized paths — tables AND skip
// counts — and that the counts reach the caller instead of vanishing
// with the internal readers.
func TestLenientStreamIdentityAndSkipCounts(t *testing.T) {
	paths, bad := writeLenientFeeds(t, t.TempDir())
	if bad == 0 {
		t.Fatal("fixture wrote no malformed entries")
	}

	// Strict loads must fail loudly on the malformed feeds.
	if _, err := LoadFeeds(paths, WithParallelism(4)); err == nil {
		t.Error("strict LoadFeeds succeeded over malformed feeds")
	}
	if _, err := StreamFeeds(paths, WithParallelism(4)); err == nil {
		t.Error("strict StreamFeeds succeeded over malformed feeds")
	}

	var want []byte
	for _, workers := range []int{1, 4} {
		var loadStats, streamStats FeedStats
		loaded, err := LoadFeeds(paths, WithParallelism(workers), WithLenient(), WithFeedStats(&loadStats))
		if err != nil {
			t.Fatalf("lenient LoadFeeds(workers=%d): %v", workers, err)
		}
		streamed, err := StreamFeeds(paths, WithParallelism(workers), WithLenient(), WithFeedStats(&streamStats))
		if err != nil {
			t.Fatalf("lenient StreamFeeds(workers=%d): %v", workers, err)
		}
		if loadStats.MalformedSkipped != bad || streamStats.MalformedSkipped != bad {
			t.Errorf("workers %d: skip counts = load %d / stream %d, want %d",
				workers, loadStats.MalformedSkipped, streamStats.MalformedSkipped, bad)
		}
		if loaded.ValidCount() != 1887 {
			t.Errorf("workers %d: lenient load valid = %d, want 1887", workers, loaded.ValidCount())
		}
		lf, sf := tableFingerprint(t, loaded), tableFingerprint(t, streamed)
		if !bytes.Equal(lf, sf) {
			t.Errorf("workers %d: lenient streamed tables differ from materialized", workers)
		}
		if want == nil {
			want = lf
		} else if !bytes.Equal(want, lf) {
			t.Errorf("workers %d: lenient tables differ from workers 1", workers)
		}
	}
}

// TestImportFeedsStreamIdentical asserts the streamed SQL import
// persists byte-identical database files at workers 1 and 4.
func TestImportFeedsStreamIdentical(t *testing.T) {
	dir := t.TempDir()
	feeds, err := GenerateFeeds(filepath.Join(dir, "feeds"), WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	read := func(name string, importer func(string, []string, ...Option) (int, int, error), workers int) []byte {
		path := filepath.Join(dir, name)
		stored, _, err := importer(path, feeds, WithParallelism(workers))
		if err != nil || stored == 0 {
			t.Fatalf("import %s: %v, %d stored", name, err, stored)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	want := read("materialized.db", ImportFeeds, 4)
	for _, workers := range []int{1, 4} {
		if got := read("streamed.db", ImportFeedsStream, workers); !bytes.Equal(got, want) {
			t.Errorf("workers %d: streamed import differs from materialized import", workers)
		}
	}
}
