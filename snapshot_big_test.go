//go:build !race

package osdiversity

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"
)

// TestSnapshotRoundTripSynthetic100k is the full-scale identity check
// from the issue: the 100k-entry synthetic corpus saved and warm-started
// answers every table identically. Excluded under -race (the scaled
// version in snapshot_test.go covers the race detector).
func TestSnapshotRoundTripSynthetic100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k corpus round trip skipped in -short mode")
	}
	spec := SyntheticSpec{Entries: 100_000, Distros: 32, Seed: 1}
	path := filepath.Join(t.TempDir(), "syn100k.osds")
	built, err := LoadSynthetic(spec, WithParallelism(4), WithSnapshot(path))
	if err != nil {
		t.Fatalf("LoadSynthetic: %v", err)
	}
	loaded, err := LoadSnapshot(path, WithParallelism(4))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	t.Cleanup(func() { loaded.Close() })
	if loaded.ValidCount() != built.ValidCount() {
		t.Fatalf("ValidCount %d != %d", loaded.ValidCount(), built.ValidCount())
	}
	if want, got := fullFingerprint(t, built), fullFingerprint(t, loaded); !bytes.Equal(want, got) {
		t.Error("100k snapshot round trip changed the tables")
	}
}

// TestSnapshotWarmStartSpeedup is the issue's floor: at 100k entries
// the snapshot boot must be at least 10x faster than streaming feed
// digestion (the measured margin is ~2 orders larger, so the test has
// huge noise headroom; BENCH_core.json tracks the precise numbers).
func TestSnapshotWarmStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("ingests the 100k corpus from feeds")
	}
	dir := t.TempDir()
	spec := SyntheticSpec{Entries: 100_000, Distros: 32, Seed: 1}
	paths, err := GenerateSyntheticFeeds(dir, spec, WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateSyntheticFeeds: %v", err)
	}
	snapPath := filepath.Join(dir, "warm.osds")

	feedStart := time.Now()
	a, err := StreamFeeds(paths, WithParallelism(4),
		WithSyntheticUniverse(32), WithSnapshot(snapPath))
	if err != nil {
		t.Fatalf("StreamFeeds: %v", err)
	}
	feedCost := time.Since(feedStart) // includes the snapshot save: a conservative baseline
	valid := a.ValidCount()

	snapStart := time.Now()
	b, err := LoadSnapshot(snapPath, WithParallelism(4))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	snapCost := time.Since(snapStart)
	t.Cleanup(func() { b.Close() })
	if b.ValidCount() != valid {
		t.Fatalf("ValidCount %d != %d", b.ValidCount(), valid)
	}
	if snapCost*10 > feedCost {
		t.Errorf("snapshot boot %v is not 10x faster than feed digestion %v", snapCost, feedCost)
	}
	t.Logf("feed digestion %v, snapshot boot %v (%.0fx)",
		feedCost, snapCost, float64(feedCost)/float64(snapCost))
}
