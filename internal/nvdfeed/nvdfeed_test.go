package nvdfeed

import (
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/cvss"
)

// sampleFeed is a hand-written fragment in the genuine NVD 2.0 shape,
// including namespace prefixes and a configuration block.
const sampleFeed = `<?xml version='1.0' encoding='UTF-8'?>
<nvd xmlns="http://scap.nist.gov/schema/feed/vulnerability/2.0"
     xmlns:vuln="http://scap.nist.gov/schema/vulnerability/0.4"
     xmlns:cvss="http://scap.nist.gov/schema/cvss-v2/0.2"
     xmlns:cpe-lang="http://cpe.mitre.org/language/2.0"
     nvd_xml_version="2.0" feed_name="CVE-2008">
  <entry id="CVE-2008-4609">
    <vuln:vulnerable-configuration id="http://nvd.nist.gov/">
      <cpe-lang:logical-test operator="OR" negate="false">
        <cpe-lang:fact-ref name="cpe:/o:openbsd:openbsd:4.2"/>
        <cpe-lang:fact-ref name="cpe:/o:microsoft:windows_2000"/>
      </cpe-lang:logical-test>
    </vuln:vulnerable-configuration>
    <vuln:vulnerable-software-list>
      <vuln:product>cpe:/o:openbsd:openbsd:4.2</vuln:product>
      <vuln:product>cpe:/o:netbsd:netbsd:4.0</vuln:product>
    </vuln:vulnerable-software-list>
    <vuln:cve-id>CVE-2008-4609</vuln:cve-id>
    <vuln:published-datetime>2008-10-20T17:59:00.000-04:00</vuln:published-datetime>
    <vuln:cvss>
      <cvss:base_metrics>
        <cvss:score>7.1</cvss:score>
        <cvss:access-vector>NETWORK</cvss:access-vector>
        <cvss:access-complexity>MEDIUM</cvss:access-complexity>
        <cvss:authentication>NONE</cvss:authentication>
        <cvss:confidentiality-impact>NONE</cvss:confidentiality-impact>
        <cvss:integrity-impact>NONE</cvss:integrity-impact>
        <cvss:availability-impact>COMPLETE</cvss:availability-impact>
        <cvss:source>http://nvd.nist.gov</cvss:source>
      </cvss:base_metrics>
    </vuln:cvss>
    <vuln:summary>The TCP implementation allows remote attackers to cause a denial of service via crafted segments.</vuln:summary>
  </entry>
  <entry id="CVE-2007-5365">
    <vuln:vulnerable-software-list>
      <vuln:product>cpe:/o:openbsd:openbsd</vuln:product>
    </vuln:vulnerable-software-list>
    <vuln:cve-id>CVE-2007-5365</vuln:cve-id>
    <vuln:published-datetime>2007-10-11T18:17:00.000-04:00</vuln:published-datetime>
    <vuln:summary>Stack-based buffer overflow in the DHCP implementation allows remote attackers to execute arbitrary code.</vuln:summary>
  </entry>
</nvd>
`

func TestReaderParsesSampleFeed(t *testing.T) {
	r := NewReader(strings.NewReader(sampleFeed))
	entries, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}

	first := entries[0]
	if first.ID != cve.MustID("CVE-2008-4609") {
		t.Errorf("first ID = %v", first.ID)
	}
	// Products from the software list come first, then the config-only
	// fact-ref (windows_2000), de-duplicated (openbsd appears in both).
	wantProducts := []string{
		"cpe:/o:openbsd:openbsd:4.2",
		"cpe:/o:netbsd:netbsd:4.0",
		"cpe:/o:microsoft:windows_2000",
	}
	if len(first.Products) != len(wantProducts) {
		t.Fatalf("first entry products = %v, want %v", first.Products, wantProducts)
	}
	for i, w := range wantProducts {
		if got := first.Products[i].URI(); got != w {
			t.Errorf("product[%d] = %s, want %s", i, got, w)
		}
	}
	wantVec := cvss.MustParse("AV:N/AC:M/Au:N/C:N/I:N/A:C")
	if first.CVSS != wantVec {
		t.Errorf("CVSS = %+v, want %+v", first.CVSS, wantVec)
	}
	if !first.Remote() {
		t.Error("network entry not remote")
	}
	if got := first.Published.UTC(); got.Year() != 2008 || got.Month() != time.October {
		t.Errorf("published = %v", got)
	}

	second := entries[1]
	if !second.CVSS.IsZero() {
		t.Errorf("entry without cvss block has vector %+v", second.CVSS)
	}
	if second.Remote() {
		t.Error("entry without CVSS must not be remote")
	}
}

func testEntries() []*cve.Entry {
	return []*cve.Entry{
		{
			ID:        cve.MustID("CVE-2008-1447"),
			Published: time.Date(2008, 7, 8, 23, 41, 0, 0, time.UTC),
			Summary:   `DNS protocol implementation allows "cache poisoning" & <spoofing>.`,
			CVSS:      cvss.MustParse("AV:N/AC:L/Au:N/C:N/I:P/A:N"),
			Products: []cpe.Name{
				cpe.MustParse("cpe:/o:openbsd:openbsd:4.2"),
				cpe.MustParse("cpe:/o:freebsd:freebsd:7.0"),
				cpe.MustParse("cpe:/o:microsoft:windows_2000::sp4"),
			},
		},
		{
			ID:        cve.MustID("CVE-2003-0352"),
			Published: time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC),
			Summary:   "Buffer overflow in the kernel RPC interface.",
			Products:  []cpe.Name{cpe.MustParse("cpe:/o:microsoft:windows_2000")},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	entries := testEntries()
	var buf strings.Builder
	if err := WriteFeed(&buf, "CVE-TEST", entries); err != nil {
		t.Fatalf("WriteFeed: %v", err)
	}
	got, err := NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll(written feed): %v\nfeed:\n%s", err, buf.String())
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip count %d, want %d", len(got), len(entries))
	}
	for i, want := range entries {
		g := got[i]
		if g.ID != want.ID {
			t.Errorf("[%d] ID %v, want %v", i, g.ID, want.ID)
		}
		if !g.Published.Equal(want.Published) {
			t.Errorf("[%d] published %v, want %v", i, g.Published, want.Published)
		}
		if g.Summary != want.Summary {
			t.Errorf("[%d] summary %q, want %q", i, g.Summary, want.Summary)
		}
		if g.CVSS != want.CVSS {
			t.Errorf("[%d] cvss %+v, want %+v", i, g.CVSS, want.CVSS)
		}
		if len(g.Products) != len(want.Products) {
			t.Fatalf("[%d] products %v, want %v", i, g.Products, want.Products)
		}
		for j := range want.Products {
			if g.Products[j] != want.Products[j] {
				t.Errorf("[%d] product[%d] %v, want %v", i, j, g.Products[j], want.Products[j])
			}
		}
	}
}

func TestFileRoundTripPlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	entries := testEntries()
	for _, name := range []string{"feed.xml", "feed.xml.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, "CVE-TEST", entries); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		if len(got) != len(entries) {
			t.Fatalf("ReadFile(%s) = %d entries, want %d", name, len(got), len(entries))
		}
	}
}

func TestReaderStrictFailsOnBadEntry(t *testing.T) {
	feed := strings.Replace(sampleFeed, "CVE-2007-5365</vuln:cve-id>", "NOT-A-CVE</vuln:cve-id>", 1)
	r := NewReader(strings.NewReader(feed))
	_, err := r.ReadAll()
	if err == nil {
		t.Fatal("strict reader accepted malformed CVE id")
	}
}

func TestReaderLenientSkipsBadEntry(t *testing.T) {
	feed := strings.Replace(sampleFeed, "CVE-2007-5365</vuln:cve-id>", "NOT-A-CVE</vuln:cve-id>", 1)
	r := NewReader(strings.NewReader(feed), Lenient())
	entries, err := r.ReadAll()
	if err != nil {
		t.Fatalf("lenient ReadAll: %v", err)
	}
	if len(entries) != 1 || r.Skipped() != 1 {
		t.Fatalf("lenient reader: %d entries, %d skipped; want 1 and 1", len(entries), r.Skipped())
	}
}

func TestReaderRejectsBadProducts(t *testing.T) {
	feed := strings.Replace(sampleFeed, "cpe:/o:netbsd:netbsd:4.0", "not-a-cpe", 1)
	if _, err := NewReader(strings.NewReader(feed)).ReadAll(); err == nil {
		t.Fatal("reader accepted malformed CPE uri")
	}
}

func TestReaderRejectsBadCVSS(t *testing.T) {
	feed := strings.Replace(sampleFeed, "<cvss:access-vector>NETWORK</cvss:access-vector>",
		"<cvss:access-vector>TELEPATHY</cvss:access-vector>", 1)
	if _, err := NewReader(strings.NewReader(feed)).ReadAll(); err == nil {
		t.Fatal("reader accepted bad access vector")
	}
}

func TestReaderRejectsMissingDate(t *testing.T) {
	feed := strings.Replace(sampleFeed,
		"<vuln:published-datetime>2007-10-11T18:17:00.000-04:00</vuln:published-datetime>", "", 1)
	if _, err := NewReader(strings.NewReader(feed)).ReadAll(); err == nil {
		t.Fatal("reader accepted entry without a publication date")
	}
}

func TestParseTimeVariants(t *testing.T) {
	good := []string{
		"2008-10-20T17:59:00.000-04:00",
		"2008-10-20T17:59:00-04:00",
		"2008-10-20T17:59:00Z",
		"2008-10-20",
	}
	for _, s := range good {
		if _, err := parseTime(s); err != nil {
			t.Errorf("parseTime(%q): %v", s, err)
		}
	}
	for _, s := range []string{"", "yesterday", "20/10/2008"} {
		if _, err := parseTime(s); err == nil {
			t.Errorf("parseTime(%q) succeeded", s)
		}
	}
}

func TestWriterRefusesInvalidEntry(t *testing.T) {
	var buf strings.Builder
	fw := NewWriter(&buf)
	if err := fw.Begin("X"); err != nil {
		t.Fatal(err)
	}
	bad := &cve.Entry{ID: cve.MustID("CVE-2005-0001")} // no date, no products
	if err := fw.Write(bad); err == nil {
		t.Fatal("writer accepted invalid entry")
	}
}

func TestWriterProtocol(t *testing.T) {
	var buf strings.Builder
	fw := NewWriter(&buf)
	if err := fw.Write(testEntries()[0]); err == nil {
		t.Error("Write before Begin succeeded")
	}
	if err := fw.End(); err == nil {
		t.Error("End before Begin succeeded")
	}
	if err := fw.Begin("X"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Begin("X"); err == nil {
		t.Error("double Begin succeeded")
	}
}

func TestXMLEscaping(t *testing.T) {
	e := testEntries()[0] // summary contains quotes, & and angle brackets
	var buf strings.Builder
	if err := WriteFeed(&buf, "CVE-TEST", []*cve.Entry{e}); err != nil {
		t.Fatalf("WriteFeed: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "<spoofing>") {
		t.Error("summary markup not escaped")
	}
	got, err := NewReader(strings.NewReader(out)).ReadAll()
	if err != nil || len(got) != 1 || got[0].Summary != e.Summary {
		t.Fatalf("escaped summary did not round trip: %v, %v", err, got)
	}
}

func TestEmptyFeed(t *testing.T) {
	var buf strings.Builder
	if err := WriteFeed(&buf, "EMPTY", nil); err != nil {
		t.Fatalf("WriteFeed(empty): %v", err)
	}
	r := NewReader(strings.NewReader(buf.String()))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next on empty feed = %v, want io.EOF", err)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "absent.xml")); err == nil {
		t.Fatal("OpenFile on missing path succeeded")
	}
}

func TestStreamingDoesNotNeedWholeFile(t *testing.T) {
	// The reader must yield the first entry even if the feed is truncated
	// after it — evidence of true streaming.
	cut := strings.Index(sampleFeed, "<entry id=\"CVE-2007-5365\">")
	r := NewReader(strings.NewReader(sampleFeed[:cut]))
	e, err := r.Next()
	if err != nil || e.ID != cve.MustID("CVE-2008-4609") {
		t.Fatalf("streaming first entry: %v, %v", e, err)
	}
}
