package nvdfeed

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
)

// drainStream consumes a stream fully, returning the entries and the
// terminal error.
func drainStream(st *Stream) ([]*cve.Entry, error) {
	defer st.Close()
	var out []*cve.Entry
	for e := range st.Entries() {
		out = append(out, e)
	}
	return out, st.Err()
}

// TestStreamFilesMatchesReadFiles asserts the streaming pipeline emits
// exactly the materialized path's entries, in order, at every pipeline
// shape (serial, single-file pool, multi-file fan-out).
func TestStreamFilesMatchesReadFiles(t *testing.T) {
	paths, want := writeCorpusFeeds(t)
	cases := []struct {
		name    string
		paths   []string
		workers int
	}{
		{"serial multi-file", paths, 1},
		{"fan-out multi-file", paths, 4},
		{"single file serial", paths[len(paths)-1:], 1},
		{"single file pooled", paths[len(paths)-1:], 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := ReadFiles(tc.paths, Workers(tc.workers))
			if err != nil {
				t.Fatalf("ReadFiles: %v", err)
			}
			got, err := drainStream(StreamFiles(tc.paths, Workers(tc.workers)))
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			if len(tc.paths) == len(paths) && len(ref) != len(want) {
				t.Fatalf("materialized path lost entries: %d != %d", len(ref), len(want))
			}
			if len(got) != len(ref) {
				t.Fatalf("stream emitted %d entries, want %d", len(got), len(ref))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Fatalf("entry %d differs between stream and materialized path", i)
				}
			}
		})
	}
}

// writeMalformedFeeds splits the calibrated corpus into three files with
// malformed entries interleaved in each, returning paths and the counts.
func writeMalformedFeeds(t *testing.T) (paths []string, good, bad int) {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	dir := t.TempDir()
	third := len(c.Entries) / 3
	chunks := [][]*cve.Entry{c.Entries[:third], c.Entries[third : 2*third], c.Entries[2*third:]}
	perFile := []int{2, 0, 3}
	for i, chunk := range chunks {
		path := filepath.Join(dir, "feed-"+string(rune('a'+i))+".xml.gz")
		if err := WriteFileWithMalformed(path, "CVE-FIX", chunk, perFile[i]); err != nil {
			t.Fatalf("WriteFileWithMalformed: %v", err)
		}
		paths = append(paths, path)
		good += len(chunk)
		bad += perFile[i]
	}
	return paths, good, bad
}

// TestStreamLenientSkipStats asserts lenient skip counts aggregate (not
// silently dropped) through the stream, ReadFiles and ReadFile, and
// agree across worker counts.
func TestStreamLenientSkipStats(t *testing.T) {
	paths, good, bad := writeMalformedFeeds(t)
	for _, workers := range []int{1, 4} {
		st := StreamFiles(paths, Lenient(), Workers(workers))
		entries, err := drainStream(st)
		if err != nil {
			t.Fatalf("workers %d: stream: %v", workers, err)
		}
		if len(entries) != good {
			t.Errorf("workers %d: stream emitted %d entries, want %d", workers, len(entries), good)
		}
		if st.Skipped() != bad {
			t.Errorf("workers %d: stream skipped %d, want %d", workers, st.Skipped(), bad)
		}

		var stats SkipStats
		ref, err := ReadFiles(paths, Lenient(), Workers(workers), WithSkipStats(&stats))
		if err != nil {
			t.Fatalf("workers %d: ReadFiles: %v", workers, err)
		}
		if len(ref) != good || stats.Skipped() != bad {
			t.Errorf("workers %d: ReadFiles = %d entries, %d skipped; want %d, %d",
				workers, len(ref), stats.Skipped(), good, bad)
		}
	}

	// The per-file path aggregates too (the reader is dropped inside).
	var one SkipStats
	if _, err := ReadFile(paths[0], Lenient(), WithSkipStats(&one)); err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if one.Skipped() != 2 {
		t.Errorf("ReadFile skipped %d, want 2", one.Skipped())
	}
}

// TestStreamStrictError asserts strict streams fail on the first
// malformed entry at every pipeline shape, and ReadFiles reports the
// same failure.
func TestStreamStrictError(t *testing.T) {
	paths, _, _ := writeMalformedFeeds(t)
	for _, workers := range []int{1, 4} {
		if _, err := drainStream(StreamFiles(paths, Workers(workers))); err == nil {
			t.Errorf("workers %d: strict stream succeeded over malformed feeds", workers)
		}
		if _, err := ReadFiles(paths, Workers(workers)); err == nil {
			t.Errorf("workers %d: strict ReadFiles succeeded over malformed feeds", workers)
		}
	}
	// Single malformed file through the within-file pipeline.
	if _, err := drainStream(StreamFiles(paths[:1], Workers(4))); err == nil {
		t.Error("strict single-file stream succeeded over a malformed feed")
	}
}

// TestStreamOpenError asserts a missing file surfaces as the terminal
// error in every mode.
func TestStreamOpenError(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.xml")
	for _, workers := range []int{1, 4} {
		_, err := drainStream(StreamFiles([]string{missing, missing}, Workers(workers)))
		if err == nil {
			t.Errorf("workers %d: stream over missing files succeeded", workers)
		}
	}
}

// TestStreamCloseEarly closes mid-stream and asserts the pipeline winds
// down without the consumer draining it.
func TestStreamCloseEarly(t *testing.T) {
	paths, _ := writeCorpusFeeds(t)
	for _, workers := range []int{1, 4} {
		st := StreamFiles(paths, Workers(workers))
		var got int
		for range st.Entries() {
			if got++; got == 10 {
				break
			}
		}
		st.Close()
		// The channel must close shortly after cancellation.
		for range st.Entries() {
		}
		if err := st.Err(); err != nil {
			t.Errorf("workers %d: closed stream reports error %v", workers, err)
		}
	}
}

// TestStreamLargeFilesBeyondWindow drains many files that each
// overflow the per-file window, so producers must block on the
// collector mid-file — the shape that deadlocked a semaphore-based
// fan-out (later files could hold every slot while the collector
// waited on the head file).
func TestStreamLargeFilesBeyondWindow(t *testing.T) {
	sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
		Entries: 6 * 600, Distros: 8, Seed: 5, Workers: 4,
	})
	if err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 6; i++ {
		chunk := sc.Entries[i*600 : (i+1)*600]
		path := filepath.Join(dir, fmt.Sprintf("chunk-%d.xml.gz", i))
		if err := WriteFile(path, "CVE-CHUNK", chunk); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		paths = append(paths, path)
	}
	for _, workers := range []int{2, 4} {
		got, err := drainStream(StreamFiles(paths, Workers(workers)))
		if err != nil {
			t.Fatalf("workers %d: stream: %v", workers, err)
		}
		if len(got) != len(sc.Entries) {
			t.Fatalf("workers %d: drained %d entries, want %d", workers, len(got), len(sc.Entries))
		}
		for i := range got {
			if got[i].ID != sc.Entries[i].ID {
				t.Fatalf("workers %d: entry %d out of order", workers, i)
			}
		}
	}
}

// TestStreamNext exercises the channel-free consumption style.
func TestStreamNext(t *testing.T) {
	paths, want := writeCorpusFeeds(t)
	st := StreamFiles(paths, Workers(2))
	defer st.Close()
	var n int
	for {
		_, err := st.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != len(want) {
		t.Fatalf("Next drained %d entries, want %d", n, len(want))
	}
}
