package nvdfeed

import (
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
)

// writeCorpusFeeds renders the calibrated corpus into per-year feed
// files and returns the paths in year order.
func writeCorpusFeeds(t testing.TB) ([]string, []*cve.Entry) {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	dir := t.TempDir()
	var paths []string
	var want []*cve.Entry
	for _, g := range corpus.SplitByYear(c.Entries) {
		path := filepath.Join(dir, "nvdcve-2.0-"+strconv.Itoa(g.Year)+".xml.gz")
		if err := WriteFile(path, "CVE-"+strconv.Itoa(g.Year), g.Entries); err != nil {
			t.Fatalf("WriteFile(%d): %v", g.Year, err)
		}
		paths = append(paths, path)
		want = append(want, g.Entries...)
	}
	return paths, want
}

// TestReadFilesParallelIdentical verifies the decode pipeline returns
// the same entries in the same order at every parallelism level.
func TestReadFilesParallelIdentical(t *testing.T) {
	paths, want := writeCorpusFeeds(t)

	serial, err := ReadFiles(paths)
	if err != nil {
		t.Fatalf("ReadFiles serial: %v", err)
	}
	parallel, err := ReadFiles(paths, Workers(4))
	if err != nil {
		t.Fatalf("ReadFiles parallel: %v", err)
	}
	if len(serial) != len(want) || len(parallel) != len(want) {
		t.Fatalf("lengths: serial %d, parallel %d, want %d", len(serial), len(parallel), len(want))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("entry %d differs between serial and parallel decode", i)
		}
	}
}

// TestReadFileParallelWithinFile exercises the two-stage pipeline inside
// one file.
func TestReadFileParallelWithinFile(t *testing.T) {
	paths, _ := writeCorpusFeeds(t)
	serial, err := ReadFile(paths[len(paths)-1])
	if err != nil {
		t.Fatalf("ReadFile serial: %v", err)
	}
	parallel, err := ReadFile(paths[len(paths)-1], Workers(4))
	if err != nil {
		t.Fatalf("ReadFile parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("single-file parallel decode differs from serial")
	}
}

// TestReadAllParallelLenient checks that the parallel pipeline still
// counts skipped entries in lenient mode.
func TestReadAllParallelLenient(t *testing.T) {
	feed := `<?xml version="1.0"?>
<nvd xmlns="http://scap.nist.gov/schema/feed/vulnerability/2.0"
     xmlns:vuln="http://scap.nist.gov/schema/vulnerability/0.4">
  <entry id="CVE-2001-0001">
    <vuln:cve-id>CVE-2001-0001</vuln:cve-id>
    <vuln:published-datetime>2001-02-01T12:00:00.000-00:00</vuln:published-datetime>
    <vuln:summary>Buffer overflow in the kernel.</vuln:summary>
  </entry>
  <entry id="not-a-cve">
    <vuln:cve-id>not-a-cve</vuln:cve-id>
    <vuln:published-datetime>2001-02-01T12:00:00.000-00:00</vuln:published-datetime>
    <vuln:summary>Broken identifier.</vuln:summary>
  </entry>
</nvd>`
	r := NewReader(strings.NewReader(feed), Lenient(), Workers(4))
	entries, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(entries) != 1 || entries[0].ID.String() != "CVE-2001-0001" {
		t.Fatalf("entries = %v", entries)
	}
	if r.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", r.Skipped())
	}
}
