// Package nvdfeed reads and writes NVD vulnerability data feeds in the
// 2.0 XML schema — the format the paper's collection program parsed and
// inserted into its SQL database.
//
// The reader is streaming: it decodes one <entry> element at a time with
// xml.Decoder, so feeds far larger than memory can be ingested. The writer
// produces feeds the reader round-trips exactly, which is how the
// calibrated synthetic corpus reaches the rest of the pipeline through the
// same code path real NVD data would take.
package nvdfeed

import (
	"compress/gzip"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/cvss"
)

// Namespace URIs of the NVD 2.0 feed schema.
const (
	nsFeed    = "http://scap.nist.gov/schema/feed/vulnerability/2.0"
	nsVuln    = "http://scap.nist.gov/schema/vulnerability/0.4"
	nsCVSS    = "http://scap.nist.gov/schema/cvss-v2/0.2"
	nsCPELang = "http://cpe.mitre.org/language/2.0"
)

// timeLayout is NVD's datetime rendering.
const timeLayout = "2006-01-02T15:04:05.000-07:00"

// fallbackLayouts are accepted on input for robustness against feed
// generations that dropped fractional seconds or used Z suffixes.
var fallbackLayouts = []string{
	time.RFC3339,
	"2006-01-02T15:04:05-07:00",
	"2006-01-02",
}

// xmlEntry mirrors one <entry> element. Decoding matches on local names,
// so any prefix bound to the right namespace is accepted.
type xmlEntry struct {
	ID         string       `xml:"id,attr"`
	CVEID      string       `xml:"cve-id"`
	Published  string       `xml:"published-datetime"`
	Summary    string       `xml:"summary"`
	Products   []string     `xml:"vulnerable-software-list>product"`
	CVSS       *xmlCVSS     `xml:"cvss"`
	ConfigTest []xmlLogTest `xml:"vulnerable-configuration>logical-test"`
}

type xmlLogTest struct {
	Operator string       `xml:"operator,attr"`
	Negate   string       `xml:"negate,attr"`
	FactRefs []xmlFactRef `xml:"fact-ref"`
	Nested   []xmlLogTest `xml:"logical-test"`
}

type xmlFactRef struct {
	Name string `xml:"name,attr"`
}

type xmlCVSS struct {
	Base xmlBaseMetrics `xml:"base_metrics"`
}

type xmlBaseMetrics struct {
	Score            string `xml:"score"`
	AccessVector     string `xml:"access-vector"`
	AccessComplexity string `xml:"access-complexity"`
	Authentication   string `xml:"authentication"`
	ConfImpact       string `xml:"confidentiality-impact"`
	IntegImpact      string `xml:"integrity-impact"`
	AvailImpact      string `xml:"availability-impact"`
}

// Reader streams entries out of one XML feed.
type Reader struct {
	dec     *xml.Decoder
	lenient bool
	skipped atomic.Int64
	stats   []*SkipStats
	workers int
	closers []io.Closer
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// Lenient makes the reader skip entries that fail to decode or convert,
// counting them instead of failing the stream. The default is strict.
func Lenient() ReaderOption {
	return func(r *Reader) { r.lenient = true }
}

// Workers sets the parallelism of the batch readers (ReadAll, ReadFile,
// ReadFiles). The XML tokenizer stays sequential per file, but entry
// conversion (CPE parsing, datetime parsing, CVSS mapping) fans out to
// the worker pool, and ReadFiles additionally decodes whole files
// concurrently. Entry order is preserved exactly. n <= 0 selects
// GOMAXPROCS; the default is 1. The streaming Next path ignores this.
func Workers(n int) ReaderOption {
	return func(r *Reader) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		r.workers = n
	}
}

// NewReader wraps an XML stream.
func NewReader(src io.Reader, opts ...ReaderOption) *Reader {
	r := &Reader{dec: xml.NewDecoder(src)}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// OpenFile opens a feed file, transparently decompressing ".gz" paths.
// Close the returned reader when done.
func OpenFile(path string, opts ...ReaderOption) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nvdfeed: %w", err)
	}
	var src io.Reader = f
	closers := []io.Closer{f}
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("nvdfeed: open %s: %w", path, err)
		}
		src = gz
		closers = append(closers, gz)
	}
	r := NewReader(src, opts...)
	r.closers = closers
	return r, nil
}

// Close releases file handles held by OpenFile. It is a no-op for readers
// built with NewReader.
func (r *Reader) Close() error {
	var firstErr error
	for i := len(r.closers) - 1; i >= 0; i-- {
		if err := r.closers[i].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.closers = nil
	return firstErr
}

// Skipped reports how many entries a lenient reader has dropped so far.
func (r *Reader) Skipped() int { return int(r.skipped.Load()) }

// noteSkip counts one dropped entry, both on the reader and on every
// attached SkipStats aggregate. The pipelined paths skip from more than
// one goroutine, hence the atomics.
func (r *Reader) noteSkip() {
	r.skipped.Add(1)
	for _, st := range r.stats {
		st.n.Add(1)
	}
}

// Next returns the next entry in the feed, or io.EOF when the feed is
// exhausted.
func (r *Reader) Next() (*cve.Entry, error) {
	for {
		raw, err := r.nextRaw()
		if err != nil {
			return nil, err
		}
		if raw == nil {
			continue // lenient decode skip
		}
		entry, err := raw.toEntry()
		if err != nil {
			if r.lenient {
				r.noteSkip()
				continue
			}
			return nil, err
		}
		return entry, nil
	}
}

// ReadAll drains the reader into a slice. With Workers(n > 1) the
// structural XML decode stays sequential while the per-entry conversion
// runs on the worker pool over a bounded window (see convertPipeline in
// stream.go); results keep feed order.
func (r *Reader) ReadAll() ([]*cve.Entry, error) {
	if r.workers > 1 {
		var out []*cve.Entry
		if err := r.convertPipeline(func(e *cve.Entry) bool {
			out = append(out, e)
			return true
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	var out []*cve.Entry
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// ReadFile parses a whole feed file.
func ReadFile(path string, opts ...ReaderOption) ([]*cve.Entry, error) {
	r, err := OpenFile(path, opts...)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.ReadAll()
}

// ReadFiles parses several feed files, concatenating the entries in path
// order. It is a thin wrapper over the StreamFiles pipeline: with
// Workers(n > 1) up to n files decode concurrently through bounded
// channels, which is the ingestion fast path for per-year feed
// directories. Lenient skip counts aggregate into any WithSkipStats
// option (they are not silently dropped with the per-file readers).
func ReadFiles(paths []string, opts ...ReaderOption) ([]*cve.Entry, error) {
	st := StreamFiles(paths, opts...)
	defer st.Close()
	var out []*cve.Entry
	for e := range st.Entries() {
		out = append(out, e)
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func (raw *xmlEntry) toEntry() (*cve.Entry, error) {
	idText := raw.CVEID
	if idText == "" {
		idText = raw.ID
	}
	id, err := cve.ParseID(idText)
	if err != nil {
		return nil, fmt.Errorf("nvdfeed: entry %q: %w", raw.ID, err)
	}
	published, err := parseTime(raw.Published)
	if err != nil {
		return nil, fmt.Errorf("nvdfeed: entry %s: %w", id, err)
	}
	products, err := raw.products()
	if err != nil {
		return nil, fmt.Errorf("nvdfeed: entry %s: %w", id, err)
	}
	entry := &cve.Entry{
		ID:        id,
		Published: published,
		Summary:   strings.TrimSpace(raw.Summary),
		Products:  products,
	}
	if raw.CVSS != nil {
		vec, err := raw.CVSS.Base.vector()
		if err != nil {
			return nil, fmt.Errorf("nvdfeed: entry %s: %w", id, err)
		}
		entry.CVSS = vec
	}
	return entry, nil
}

// products merges the vulnerable-software-list with any fact-refs of the
// vulnerable-configuration tests, de-duplicated, preserving first-seen
// order (list first, as NVD tools conventionally do).
func (raw *xmlEntry) products() ([]cpe.Name, error) {
	seen := make(map[string]bool, len(raw.Products))
	var out []cpe.Name
	add := func(uri string) error {
		uri = strings.TrimSpace(uri)
		if uri == "" || seen[uri] {
			return nil
		}
		n, err := cpe.Parse(uri)
		if err != nil {
			return err
		}
		seen[uri] = true
		out = append(out, n)
		return nil
	}
	for _, uri := range raw.Products {
		if err := add(uri); err != nil {
			return nil, err
		}
	}
	var walk func(tests []xmlLogTest) error
	walk = func(tests []xmlLogTest) error {
		for _, t := range tests {
			for _, fr := range t.FactRefs {
				if err := add(fr.Name); err != nil {
					return err
				}
			}
			if err := walk(t.Nested); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(raw.ConfigTest); err != nil {
		return nil, err
	}
	return out, nil
}

func (m *xmlBaseMetrics) vector() (cvss.Vector, error) {
	var v cvss.Vector
	switch m.AccessVector {
	case "NETWORK":
		v.AV = cvss.AccessNetwork
	case "ADJACENT_NETWORK":
		v.AV = cvss.AccessAdjacentNetwork
	case "LOCAL":
		v.AV = cvss.AccessLocal
	default:
		return cvss.Vector{}, fmt.Errorf("bad access-vector %q", m.AccessVector)
	}
	switch m.AccessComplexity {
	case "HIGH":
		v.AC = cvss.ComplexityHigh
	case "MEDIUM":
		v.AC = cvss.ComplexityMedium
	case "LOW":
		v.AC = cvss.ComplexityLow
	default:
		return cvss.Vector{}, fmt.Errorf("bad access-complexity %q", m.AccessComplexity)
	}
	switch m.Authentication {
	case "MULTIPLE_INSTANCES":
		v.Au = cvss.AuthMultiple
	case "SINGLE_INSTANCE":
		v.Au = cvss.AuthSingle
	case "NONE":
		v.Au = cvss.AuthNone
	default:
		return cvss.Vector{}, fmt.Errorf("bad authentication %q", m.Authentication)
	}
	impact := func(s string) (cvss.Impact, error) {
		switch s {
		case "NONE":
			return cvss.ImpactNone, nil
		case "PARTIAL":
			return cvss.ImpactPartial, nil
		case "COMPLETE":
			return cvss.ImpactComplete, nil
		}
		return 0, fmt.Errorf("bad impact %q", s)
	}
	var err error
	if v.C, err = impact(m.ConfImpact); err != nil {
		return cvss.Vector{}, err
	}
	if v.I, err = impact(m.IntegImpact); err != nil {
		return cvss.Vector{}, err
	}
	if v.A, err = impact(m.AvailImpact); err != nil {
		return cvss.Vector{}, err
	}
	return v, nil
}

func parseTime(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, errors.New("missing published-datetime")
	}
	if t, err := time.Parse(timeLayout, s); err == nil {
		return t, nil
	}
	for _, layout := range fallbackLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("unparseable datetime %q", s)
}

// Writer emits a feed. Entries stream out one at a time between Begin and
// End, so arbitrarily large feeds can be produced with constant memory.
type Writer struct {
	w     io.Writer
	began bool
	err   error
}

// NewWriter wraps an output stream.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Begin writes the XML header and the opening <nvd> element. The feed
// name (e.g. "CVE-2008") is recorded in the nvd_xml_version attributes
// block the way NVD stamps its feeds.
func (fw *Writer) Begin(feedName string) error {
	if fw.began {
		return errors.New("nvdfeed: Begin called twice")
	}
	fw.began = true
	header := xml.Header +
		`<nvd xmlns="` + nsFeed + `"` +
		` xmlns:vuln="` + nsVuln + `"` +
		` xmlns:cvss="` + nsCVSS + `"` +
		` xmlns:cpe-lang="` + nsCPELang + `"` +
		` nvd_xml_version="2.0" pub_date="" feed_name="` + xmlEscape(feedName) + `">` + "\n"
	_, fw.err = io.WriteString(fw.w, header)
	return fw.err
}

// Write emits one entry.
func (fw *Writer) Write(e *cve.Entry) error {
	if fw.err != nil {
		return fw.err
	}
	if !fw.began {
		return errors.New("nvdfeed: Write before Begin")
	}
	if err := e.Validate(); err != nil {
		return fmt.Errorf("nvdfeed: refusing to write invalid entry: %w", err)
	}
	var b strings.Builder
	id := e.ID.String()
	b.WriteString(`  <entry id="` + id + "\">\n")
	b.WriteString("    <vuln:vulnerable-configuration id=\"http://nvd.nist.gov/\">\n")
	b.WriteString("      <cpe-lang:logical-test operator=\"OR\" negate=\"false\">\n")
	for _, p := range e.Products {
		b.WriteString(`        <cpe-lang:fact-ref name="` + xmlEscape(p.URI()) + "\"/>\n")
	}
	b.WriteString("      </cpe-lang:logical-test>\n")
	b.WriteString("    </vuln:vulnerable-configuration>\n")
	b.WriteString("    <vuln:vulnerable-software-list>\n")
	for _, p := range e.Products {
		b.WriteString("      <vuln:product>" + xmlEscape(p.URI()) + "</vuln:product>\n")
	}
	b.WriteString("    </vuln:vulnerable-software-list>\n")
	b.WriteString("    <vuln:cve-id>" + id + "</vuln:cve-id>\n")
	b.WriteString("    <vuln:published-datetime>" + e.Published.Format(timeLayout) + "</vuln:published-datetime>\n")
	if !e.CVSS.IsZero() {
		v := e.CVSS
		b.WriteString("    <vuln:cvss>\n      <cvss:base_metrics>\n")
		fmt.Fprintf(&b, "        <cvss:score>%.1f</cvss:score>\n", v.BaseScore())
		b.WriteString("        <cvss:access-vector>" + v.AV.String() + "</cvss:access-vector>\n")
		b.WriteString("        <cvss:access-complexity>" + v.AC.String() + "</cvss:access-complexity>\n")
		b.WriteString("        <cvss:authentication>" + v.Au.String() + "</cvss:authentication>\n")
		b.WriteString("        <cvss:confidentiality-impact>" + v.C.String() + "</cvss:confidentiality-impact>\n")
		b.WriteString("        <cvss:integrity-impact>" + v.I.String() + "</cvss:integrity-impact>\n")
		b.WriteString("        <cvss:availability-impact>" + v.A.String() + "</cvss:availability-impact>\n")
		b.WriteString("        <cvss:source>http://nvd.nist.gov</cvss:source>\n")
		b.WriteString("      </cvss:base_metrics>\n    </vuln:cvss>\n")
	}
	b.WriteString("    <vuln:summary>" + xmlEscape(e.Summary) + "</vuln:summary>\n")
	b.WriteString("  </entry>\n")
	_, fw.err = io.WriteString(fw.w, b.String())
	return fw.err
}

// End closes the feed element.
func (fw *Writer) End() error {
	if fw.err != nil {
		return fw.err
	}
	if !fw.began {
		return errors.New("nvdfeed: End before Begin")
	}
	_, fw.err = io.WriteString(fw.w, "</nvd>\n")
	return fw.err
}

// WriteFeed writes a complete feed in one call.
func WriteFeed(w io.Writer, feedName string, entries []*cve.Entry) error {
	fw := NewWriter(w)
	if err := fw.Begin(feedName); err != nil {
		return err
	}
	for _, e := range entries {
		if err := fw.Write(e); err != nil {
			return err
		}
	}
	return fw.End()
}

// WriteFile writes a feed file, gzip-compressing ".gz" paths.
func WriteFile(path, feedName string, entries []*cve.Entry) (err error) {
	return writeFileFunc(path, func(w io.Writer) error {
		return WriteFeed(w, feedName, entries)
	})
}

// WriteFileWithMalformed writes a feed file containing the entries in
// order plus `malformed` syntactically well-formed but unconvertible
// <entry> elements (bad CVE identifiers) interleaved at evenly spaced
// positions. It renders the fixtures the lenient-ingestion tests and
// smoke flows feed the pipeline: a strict reader fails on such a file,
// a lenient one must skip exactly `malformed` entries and report the
// count instead of silently dropping it.
func WriteFileWithMalformed(path, feedName string, entries []*cve.Entry, malformed int) error {
	return writeFileFunc(path, func(w io.Writer) error {
		fw := NewWriter(w)
		if err := fw.Begin(feedName); err != nil {
			return err
		}
		writeBad := func(seq int) error {
			_, err := fmt.Fprintf(w, "  <entry id=\"bad-%d\">\n"+
				"    <vuln:cve-id>not-a-cve-%d</vuln:cve-id>\n"+
				"    <vuln:published-datetime>2001-01-01T00:00:00.000-00:00</vuln:published-datetime>\n"+
				"    <vuln:summary>malformed fixture entry</vuln:summary>\n"+
				"  </entry>\n", seq, seq)
			return err
		}
		interval := 1
		if malformed > 0 {
			interval = len(entries)/malformed + 1
		}
		injected := 0
		for i, e := range entries {
			if injected < malformed && i%interval == 0 {
				if err := writeBad(injected); err != nil {
					return err
				}
				injected++
			}
			if err := fw.Write(e); err != nil {
				return err
			}
		}
		for injected < malformed {
			if err := writeBad(injected); err != nil {
				return err
			}
			injected++
		}
		return fw.End()
	})
}

// writeFileFunc opens path (gzip-compressing ".gz") and hands the
// stream to body, closing everything in order.
func writeFileFunc(path string, body func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nvdfeed: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("nvdfeed: close %s: %w", path, cerr)
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("nvdfeed: close gzip %s: %w", path, cerr)
			}
		}()
		w = gz
	}
	return body(w)
}

func xmlEscape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		// strings.Builder never errors; keep the compiler honest.
		return s
	}
	return b.String()
}
