package nvdfeed

// This file is the bounded-channel streaming pipeline: entries flow from
// the XML tokenizer to the consumer through fixed-capacity channels, so
// feed sets far larger than memory ingest with a constant footprint. The
// pipeline has three shapes, all emitting entries in exact feed order
// (path order, in-file order), so every downstream digest is identical
// to the materialized ReadFiles path:
//
//   - workers <= 1: one goroutine walks the files with the sequential
//     Reader and sends entries through the output window.
//   - one file, workers > 1: convertPipeline — the tokenizer fills a
//     bounded window of raw elements, the worker pool converts them
//     concurrently, and a collector emits the results in order.
//   - many files, workers > 1: up to `workers` files decode concurrently
//     (mirroring the old ReadFiles fan-out), each into its own bounded
//     channel; the collector drains the per-file channels in path order.
//
// At most (workers + 1) × streamWindow entries are in flight at any
// moment (the per-file/stage windows plus the output window) — a
// constant, independent of feed volume.

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"osdiversity/internal/cve"
)

// streamWindow is the per-channel entry capacity of the pipeline — the
// lookahead bound between the decode and consume stages.
const streamWindow = 256

// SkipStats aggregates lenient-skip counts across every reader that an
// operation opens (ReadFile, ReadFiles, StreamFiles spawn per-file
// readers internally, whose own Skipped() counters are unreachable).
// Attach one with WithSkipStats; the counter is safe for concurrent use.
type SkipStats struct {
	n atomic.Int64
}

// Skipped reports how many malformed entries lenient readers have
// dropped into this aggregate so far.
func (s *SkipStats) Skipped() int { return int(s.n.Load()) }

// WithSkipStats makes the reader add every lenient skip to st, in
// addition to its own Skipped counter. The batch helpers propagate the
// option to the readers they open internally, so callers of ReadFiles
// and StreamFiles can account for every dropped entry.
func WithSkipStats(st *SkipStats) ReaderOption {
	return func(r *Reader) {
		if st != nil {
			r.stats = append(r.stats, st)
		}
	}
}

// Stream is a running feed pipeline built by StreamFiles. Consume the
// Entries channel until it closes, then check Err; Skipped reports the
// lenient-skip total. Close cancels the pipeline early (safe to call at
// any time, including after a full drain).
type Stream struct {
	ch       chan *cve.Entry
	err      error // written by the pipeline before ch closes
	quit     chan struct{}
	quitOnce sync.Once
	stats    *SkipStats
}

// Entries returns the ordered entry channel. It closes when the feed
// set is exhausted, a terminal error occurs (see Err), or the stream is
// closed.
func (st *Stream) Entries() <-chan *cve.Entry { return st.ch }

// Err returns the terminal error of the pipeline: nil after a clean
// drain, the first decode/convert/open failure otherwise. Only valid
// once Entries has closed.
func (st *Stream) Err() error { return st.err }

// Skipped reports how many malformed entries the lenient pipeline has
// dropped so far (always 0 for strict streams, which fail instead).
func (st *Stream) Skipped() int { return st.stats.Skipped() }

// Close cancels the pipeline and releases its goroutines and file
// handles. It is idempotent and safe concurrently with consumption.
func (st *Stream) Close() {
	st.quitOnce.Do(func() { close(st.quit) })
}

// Next returns the next entry, io.EOF after a clean drain, or the
// stream's terminal error — the channel-free consumption style.
func (st *Stream) Next() (*cve.Entry, error) {
	e, ok := <-st.ch
	if !ok {
		if st.err != nil {
			return nil, st.err
		}
		return nil, io.EOF
	}
	return e, nil
}

// StreamFiles streams several feed files' entries in path order through
// a bounded pipeline. With Workers(n > 1) up to n files decode
// concurrently (or, for a single file, per-entry conversion fans out to
// the pool); memory in flight stays bounded by the channel windows
// regardless of the feed volume. Lenient skips count into Skipped and
// any WithSkipStats aggregate.
func StreamFiles(paths []string, opts ...ReaderOption) *Stream {
	probe := NewReader(nil, opts...)
	st := &Stream{
		ch:    make(chan *cve.Entry, streamWindow),
		quit:  make(chan struct{}),
		stats: &SkipStats{},
	}
	// Chain the stream's own aggregate after any caller-supplied stats.
	opts = append(append([]ReaderOption(nil), opts...), WithSkipStats(st.stats))
	switch {
	case probe.workers > 1 && len(paths) > 1:
		st.runMultiFile(paths, opts, probe.workers)
	case probe.workers > 1 && len(paths) == 1:
		go func() {
			defer close(st.ch)
			st.err = st.pipelineFile(paths[0], opts)
		}()
	default:
		go func() {
			defer close(st.ch)
			for _, path := range paths {
				if err := st.serialFile(path, opts); err != nil {
					st.err = err
					return
				}
				select {
				case <-st.quit:
					return
				default:
				}
			}
		}()
	}
	return st
}

// serialFile walks one file with the sequential Reader, sending entries
// through the output window.
func (st *Stream) serialFile(path string, opts []ReaderOption) error {
	r, err := OpenFile(path, opts...)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		select {
		case st.ch <- e:
		case <-st.quit:
			return nil
		}
	}
}

// pipelineFile runs one file through the bounded conversion pipeline,
// emitting straight into the stream's output channel.
func (st *Stream) pipelineFile(path string, opts []ReaderOption) error {
	r, err := OpenFile(path, opts...)
	if err != nil {
		return err
	}
	defer r.Close()
	return r.convertPipeline(func(e *cve.Entry) bool {
		select {
		case st.ch <- e:
			return true
		case <-st.quit:
			return false
		}
	})
}

// fileStream is one file's bounded leg of the multi-file fan-out.
type fileStream struct {
	out chan *cve.Entry
	err error // valid once out is closed
}

// runMultiFile decodes up to `workers` files concurrently, each into a
// bounded per-file channel, and drains them into the output channel in
// path order. Concurrency and lookahead are both governed by the files
// queue: a producer only spawns once its file is enqueued, and the
// queue holds workers-1 files beyond the one the collector is
// draining, so at most `workers` files decode at once. Crucially the
// head-of-line file's producer always runs — a separate semaphore
// acquired in spawn order could hand every slot to later files, whose
// full windows then wait on the collector, which waits on the head
// file: deadlock.
func (st *Stream) runMultiFile(paths []string, opts []ReaderOption, workers int) {
	// Cross-file fan-out already saturates the pool; forcing each file
	// to the sequential decoder avoids stacking the within-file pipeline
	// on top of it (same policy the materialized fast path used).
	perFileOpts := append(append([]ReaderOption(nil), opts...), Workers(1))
	files := make(chan *fileStream, workers-1)

	go func() {
		defer close(files)
		for _, path := range paths {
			fs := &fileStream{out: make(chan *cve.Entry, streamWindow)}
			select {
			case files <- fs:
			case <-st.quit:
				return
			}
			go func(path string, fs *fileStream) {
				defer close(fs.out)
				fs.err = decodeInto(path, perFileOpts, fs.out, st.quit)
			}(path, fs)
		}
	}()

	go func() {
		defer close(st.ch)
		for fs := range files {
			for e := range fs.out {
				select {
				case st.ch <- e:
				case <-st.quit:
					return
				}
			}
			if fs.err != nil {
				st.err = fs.err
				// Wake the remaining producers; they would otherwise
				// block on their full windows forever.
				st.Close()
				return
			}
		}
	}()
}

// decodeInto decodes one file sequentially into a bounded channel,
// stopping early when quit closes.
func decodeInto(path string, opts []ReaderOption, out chan<- *cve.Entry, quit <-chan struct{}) error {
	r, err := OpenFile(path, opts...)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		select {
		case out <- e:
		case <-quit:
			return nil
		}
	}
}

// convResult is one converted entry of the within-file pipeline.
type convResult struct {
	entry *cve.Entry
	err   error
}

// convertPipeline is the bounded two-stage decode of one token stream:
// the tokenizer goroutine fills a window of raw <entry> elements, the
// worker pool converts them concurrently, and emit receives the results
// in feed order. emit returns false to stop early. The returned error
// is nil on a clean EOF or early stop. convertPipeline does not return
// until the tokenizer goroutine has exited, so the caller may close the
// underlying reader immediately afterwards.
//
// Unlike the old readAllParallel, nothing buffers the whole feed: at
// most streamWindow raw elements and their conversions are in flight.
func (r *Reader) convertPipeline(emit func(*cve.Entry) bool) error {
	workers := r.workers
	if workers < 1 {
		workers = 1
	}
	type job struct {
		raw xmlEntry
		fut chan convResult
	}
	tasks := make(chan job, streamWindow)
	futs := make(chan chan convResult, streamWindow)
	quit := make(chan struct{})
	decDone := make(chan struct{})
	defer func() {
		// Unwind the tokenizer on early exit, and never return while it
		// may still be reading r's underlying stream (the caller closes
		// the file next).
		close(quit)
		<-decDone
	}()

	// decodeErr is written by the tokenizer goroutine before it closes
	// futs, so the collector reads it safely after the range ends.
	var decodeErr error
	go func() {
		defer close(decDone)
		defer close(tasks)
		defer close(futs)
		for {
			raw, err := r.nextRaw()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					decodeErr = err
				}
				return
			}
			if raw == nil {
				continue // lenient decode skip
			}
			fut := make(chan convResult, 1)
			select {
			case tasks <- job{raw: *raw, fut: fut}:
			case <-quit:
				return
			}
			select {
			case futs <- fut:
			case <-quit:
				return
			}
		}
	}()
	for i := 0; i < workers; i++ {
		go func() {
			for j := range tasks {
				e, err := j.raw.toEntry()
				j.fut <- convResult{entry: e, err: err}
			}
		}()
	}

	for fut := range futs {
		res := <-fut
		if res.err != nil {
			if r.lenient {
				r.noteSkip()
				continue
			}
			return res.err
		}
		if !emit(res.entry) {
			return nil
		}
	}
	return decodeErr
}

// nextRaw returns the next raw <entry> element, (nil, nil) for a
// leniently skipped undecodable element, or io.EOF at end of stream.
func (r *Reader) nextRaw() (*xmlEntry, error) {
	for {
		tok, err := r.dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("nvdfeed: token: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || start.Name.Local != "entry" {
			continue
		}
		var raw xmlEntry
		if err := r.dec.DecodeElement(&raw, &start); err != nil {
			if r.lenient {
				r.noteSkip()
				return nil, nil
			}
			return nil, fmt.Errorf("nvdfeed: decode entry: %w", err)
		}
		return &raw, nil
	}
}
