package paperdata

import (
	"testing"

	"osdiversity/internal/osmap"
)

// The tests below verify the transcription's internal consistency — the
// same identities the paper's own tables must satisfy. They double as
// machine-checked evidence that the transcription has no typos.

func TestClassRowsSumToValidCounts(t *testing.T) {
	for _, d := range osmap.Distros() {
		row, ok := ClassTable[d]
		if !ok {
			t.Fatalf("ClassTable missing %v", d)
		}
		if row.Total() != ValidCounts[d] {
			t.Errorf("%v: Table II row sums to %d, Table I says %d", d, row.Total(), ValidCounts[d])
		}
	}
}

func TestClassSharesAreDistinctBased(t *testing.T) {
	// The percentage row of Table II cannot be reproduced from the
	// per-OS incidence counts (they give 1.1/33.9/23.2/41.7); it is a
	// distinct-vulnerability statement. Check it sums to ~100% and that
	// the implied distinct counts fit within the incidence counts.
	var sum float64
	for _, s := range ClassSharesDistinct {
		sum += s
	}
	if sum < 99.5 || sum > 100.5 {
		t.Errorf("ClassSharesDistinct sums to %.1f%%", sum)
	}
	var incidences [4]int
	for _, row := range ClassTable {
		incidences[0] += row.Driver
		incidences[1] += row.Kernel
		incidences[2] += row.SysSoft
		incidences[3] += row.App
	}
	for i, share := range ClassSharesDistinct {
		implied := int(share / 100 * DistinctValid)
		if implied > incidences[i] {
			t.Errorf("class %d: implied distinct count %d exceeds incidences %d", i, implied, incidences[i])
		}
	}
}

func TestPairTableComplete(t *testing.T) {
	if len(PairTable) != 55 {
		t.Fatalf("PairTable has %d pairs, want 55", len(PairTable))
	}
	for _, p := range osmap.AllPairs() {
		if _, ok := PairTable[p]; !ok {
			t.Errorf("PairTable missing %v", p)
		}
	}
}

func TestPairFiltersNest(t *testing.T) {
	for p, c := range PairTable {
		if !(c.All >= c.NoApp && c.NoApp >= c.Remote && c.Remote >= 0) {
			t.Errorf("%v: filters do not nest: %+v", p, c)
		}
	}
}

func TestPairCountsRespectPerOSTotals(t *testing.T) {
	// v(AB) can never exceed min(v(A), v(B)) under any filter.
	for p, c := range PairTable {
		if c.All > min(ValidCounts[p.A], ValidCounts[p.B]) {
			t.Errorf("%v: All=%d exceeds per-OS totals", p, c.All)
		}
		noAppA, noAppB := ClassTable[p.A].NonApp(), ClassTable[p.B].NonApp()
		if c.NoApp > min(noAppA, noAppB) {
			t.Errorf("%v: NoApp=%d exceeds per-OS thin totals (%d, %d)", p, c.NoApp, noAppA, noAppB)
		}
		if c.Remote > min(RemoteTotals[p.A], RemoteTotals[p.B]) {
			t.Errorf("%v: Remote=%d exceeds per-OS remote totals", p, c.Remote)
		}
	}
}

func TestNoAppTotalsMatchClassTable(t *testing.T) {
	// Table III's NoApp v(A) column equals Table II's Total − App.
	want := map[osmap.Distro]int{
		osmap.OpenBSD: 110, osmap.NetBSD: 100, osmap.FreeBSD: 205,
		osmap.OpenSolaris: 24, osmap.Solaris: 272, osmap.Debian: 59,
		osmap.Ubuntu: 32, osmap.RedHat: 187, osmap.Windows2000: 278,
		osmap.Windows2003: 167, osmap.Windows2008: 56,
	}
	for d, w := range want {
		if got := ClassTable[d].NonApp(); got != w {
			t.Errorf("%v: NonApp = %d, Table III prints %d", d, got, w)
		}
	}
}

func TestPartTableSumsToRemote(t *testing.T) {
	// Every Table IV row total equals the pair's Remote count, and every
	// pair with a non-zero Remote count appears in Table IV.
	for p, parts := range PartTable {
		if parts.Total() != PairTable[p].Remote {
			t.Errorf("%v: Table IV sums to %d, Table III remote is %d", p, parts.Total(), PairTable[p].Remote)
		}
	}
	for p, c := range PairTable {
		if c.Remote > 0 {
			if _, ok := PartTable[p]; !ok {
				t.Errorf("%v has remote overlap %d but no Table IV row", p, c.Remote)
			}
		}
	}
	if len(PartTable) != 34 {
		t.Errorf("PartTable has %d rows, the paper prints 34", len(PartTable))
	}
}

func TestPeriodTableSumsToRemote(t *testing.T) {
	// Table V is a temporal split of Table III's remote column: for all
	// 28 pairs over the 8 eligible OSes, history + observed = remote.
	elig := osmap.HistoryEligible()
	pairs := osmap.PairsOf(elig)
	if len(pairs) != 28 || len(PeriodTable) != 28 {
		t.Fatalf("period pairs: %d in osmap, %d in table, want 28", len(pairs), len(PeriodTable))
	}
	for _, p := range pairs {
		pc, ok := PeriodTable[p]
		if !ok {
			t.Errorf("PeriodTable missing %v", p)
			continue
		}
		if pc.Total() != PairTable[p].Remote {
			t.Errorf("%v: history %d + observed %d != remote %d", p, pc.History, pc.Observed, PairTable[p].Remote)
		}
	}
}

func TestInvalidColumnsReconcile(t *testing.T) {
	// Per-column incidences minus the share plans must leave
	// non-negative singles, and shares+singles must hit the distinct
	// totals.
	check := func(name string, col func(InvalidTotals) int, shares []InvalidSharePlan, distinct int) {
		incidences := 0
		for _, d := range osmap.Distros() {
			incidences += col(InvalidCounts[d])
		}
		shareIncidences, shareDistinct := 0, 0
		consumed := map[osmap.Distro]int{}
		for _, s := range shares {
			shareDistinct += s.Count
			shareIncidences += s.Count * len(s.Members)
			for _, m := range s.Members {
				consumed[m] += s.Count
			}
		}
		for _, d := range osmap.Distros() {
			if consumed[d] > col(InvalidCounts[d]) {
				t.Errorf("%s: share plan over-consumes %v (%d > %d)", name, d, consumed[d], col(InvalidCounts[d]))
			}
		}
		singles := incidences - shareIncidences
		if got := shareDistinct + singles; got != distinct {
			t.Errorf("%s: plan yields %d distinct entries, Table I prints %d", name, got, distinct)
		}
	}
	check("Unknown", func(i InvalidTotals) int { return i.Unknown }, UnknownShares, DistinctInvalid.Unknown)
	check("Unspecified", func(i InvalidTotals) int { return i.Unspecified }, UnspecifiedShares, DistinctInvalid.Unspecified)
	check("Disputed", func(i InvalidTotals) int { return i.Disputed }, DisputedShares, DistinctInvalid.Disputed)
}

func TestCollectedTotalMatches(t *testing.T) {
	got := DistinctValid + DistinctInvalid.Unknown + DistinctInvalid.Unspecified + DistinctInvalid.Disputed
	if got != TotalCollected {
		t.Errorf("valid+invalid distinct = %d, paper collected %d", got, TotalCollected)
	}
}

func TestSpecialCVEFootprintsRespectBudgets(t *testing.T) {
	// Every pair of clusters inside a special CVE consumes one unit of
	// that pair's Kernel (Table IV) and Observed (Table V) budgets; the
	// combined consumption must fit.
	kernelUsed := map[osmap.Pair]int{}
	observedUsed := map[osmap.Pair]int{}
	for _, s := range SpecialCVEs {
		if s.Year < 2006 || s.Year > 2010 {
			t.Errorf("%s: year %d outside the observed period", s.ID, s.Year)
		}
		for _, p := range osmap.PairsOf(s.Clusters) {
			kernelUsed[p]++
			observedUsed[p]++
		}
	}
	for p, used := range kernelUsed {
		if cap := PartTable[p].Kernel; used > cap {
			t.Errorf("specials use %d kernel slots of pair %v, Table IV allows %d", used, p, cap)
		}
	}
	for p, used := range observedUsed {
		if cap := PeriodTable[p].Observed; used > cap {
			t.Errorf("specials use %d observed slots of pair %v, Table V allows %d", used, p, cap)
		}
	}
}

func TestSpecialCVEProductCounts(t *testing.T) {
	wantProducts := map[string]int{
		"CVE-2007-5365": 6,
		"CVE-2008-1447": 6,
		"CVE-2008-4609": 9,
	}
	for _, s := range SpecialCVEs {
		got := len(s.Clusters) + len(s.ExtraProducts)
		if got != wantProducts[s.ID] {
			t.Errorf("%s affects %d products, paper says %d", s.ID, got, wantProducts[s.ID])
		}
	}
}

func TestFigure3ExpectedDerivesFromPeriodTable(t *testing.T) {
	for _, set := range Figure3Sets {
		want := Figure3Expected[set.Name]
		if set.Name == "Debian" {
			// Four identical replicas: every Debian remote vulnerability
			// is shared by all of them. Sum Table V... not applicable;
			// the bar is Debian's remote total split by period. The
			// split (16/9) is a paper-text figure; just check the total.
			if want.Total() != RemoteTotals[osmap.Debian] {
				t.Errorf("Debian bar total %d != remote total %d", want.Total(), RemoteTotals[osmap.Debian])
			}
			continue
		}
		var hist, obs int
		for _, p := range osmap.PairsOf(set.Members) {
			pc := PeriodTable[p]
			hist += pc.History
			obs += pc.Observed
		}
		if hist != want.History || obs != want.Observed {
			t.Errorf("%s: Table V pair sums = %d/%d, Figure3Expected says %d/%d",
				set.Name, hist, obs, want.History, want.Observed)
		}
	}
}

func TestYearWeightsRespectFirstRelease(t *testing.T) {
	for d, weights := range YearWeights {
		if len(weights) == 0 {
			t.Errorf("%v has no year weights", d)
			continue
		}
		for _, yw := range weights {
			if yw.Year < StudyStartYear || yw.Year > StudyEndYear {
				t.Errorf("%v: weight year %d outside study range", d, yw.Year)
			}
			if yw.Weight <= 0 {
				t.Errorf("%v: non-positive weight at %d", d, yw.Year)
			}
			// Windows 2000 deliberately has pre-release weight (the
			// paper found 7 such entries, shared with NT).
			if d != osmap.Windows2000 && yw.Year < d.FirstReleaseYear() {
				t.Errorf("%v: weight at %d precedes first release %d", d, yw.Year, d.FirstReleaseYear())
			}
		}
	}
	for _, d := range osmap.Distros() {
		if _, ok := YearWeights[d]; !ok {
			t.Errorf("YearWeights missing %v", d)
		}
	}
}

func TestReleaseTableCells(t *testing.T) {
	if len(ReleaseTable) != 15 {
		t.Errorf("ReleaseTable has %d cells, Table VI prints 15", len(ReleaseTable))
	}
	nonZero := 0
	for k, v := range ReleaseTable {
		if v < 0 {
			t.Errorf("negative cell %v", k)
		}
		if v > 0 {
			nonZero++
		}
	}
	if nonZero != 4 {
		t.Errorf("ReleaseTable has %d non-zero cells, Table VI prints 4", nonZero)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
