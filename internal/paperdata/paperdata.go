// Package paperdata transcribes the published numbers of Garcia et al.,
// "OS Diversity for Intrusion Tolerance: Myth or Reality?" (DSN 2011),
// as Go data.
//
// The package plays two roles:
//
//   - calibration: internal/corpus constructs a synthetic NVD whose
//     derived statistics match these tables, so the full pipeline
//     (XML → SQL → analysis) reproduces the paper without access to the
//     2010 NVD snapshot;
//   - verification: EXPERIMENTS.md and the benchmark harness compare the
//     pipeline's outputs against these numbers cell by cell.
//
// Internal consistency of the transcription is enforced by tests (for
// example, Table V's history+observed splits must sum to Table III's
// remote column — they do, for all 28 pairs).
package paperdata

import (
	"osdiversity/internal/osmap"
)

// HistoryEndYear is the last year of the paper's "history" period;
// 2006..2010 form the "observed" period (§IV-C).
const HistoryEndYear = 2005

// StudyStartYear and StudyEndYear bound the publication dates in the
// data set ("1994 to (Sept.) 2010").
const (
	StudyStartYear = 1994
	StudyEndYear   = 2010
)

// DistinctValid is the number of distinct valid vulnerabilities
// (Table I, last row).
const DistinctValid = 1887

// DistinctInvalid gives the distinct counts of the removed entries
// (Table I, last row): Unknown, Unspecified, Disputed.
var DistinctInvalid = InvalidTotals{Unknown: 60, Unspecified: 165, Disputed: 8}

// TotalCollected is the overall number of entries the paper selected
// before validity filtering (§III-A: "we selected 2120 vulnerabilities").
const TotalCollected = 2120

// InvalidTotals carries the three invalid-entry categories.
type InvalidTotals struct {
	Unknown     int
	Unspecified int
	Disputed    int
}

// ValidCounts is Table I's "Valid" column: vulnerabilities per OS after
// removing Unknown/Unspecified/Disputed entries.
var ValidCounts = map[osmap.Distro]int{
	osmap.OpenBSD:     142,
	osmap.NetBSD:      126,
	osmap.FreeBSD:     258,
	osmap.OpenSolaris: 31,
	osmap.Solaris:     400,
	osmap.Debian:      201,
	osmap.Ubuntu:      87,
	osmap.RedHat:      369,
	osmap.Windows2000: 481,
	osmap.Windows2003: 343,
	osmap.Windows2008: 118,
}

// InvalidCounts is Table I's Unknown/Unspecified/Disputed columns per OS.
var InvalidCounts = map[osmap.Distro]InvalidTotals{
	osmap.OpenBSD:     {Unknown: 1, Unspecified: 1, Disputed: 1},
	osmap.NetBSD:      {Unknown: 0, Unspecified: 1, Disputed: 2},
	osmap.FreeBSD:     {Unknown: 0, Unspecified: 0, Disputed: 2},
	osmap.OpenSolaris: {Unknown: 0, Unspecified: 40, Disputed: 0},
	osmap.Solaris:     {Unknown: 39, Unspecified: 109, Disputed: 0},
	osmap.Debian:      {Unknown: 3, Unspecified: 1, Disputed: 0},
	osmap.Ubuntu:      {Unknown: 2, Unspecified: 1, Disputed: 0},
	osmap.RedHat:      {Unknown: 12, Unspecified: 8, Disputed: 1},
	osmap.Windows2000: {Unknown: 7, Unspecified: 27, Disputed: 5},
	osmap.Windows2003: {Unknown: 4, Unspecified: 30, Disputed: 3},
	osmap.Windows2008: {Unknown: 0, Unspecified: 3, Disputed: 0},
}

// ClassCounts carries one OS row of Table II.
type ClassCounts struct {
	Driver  int
	Kernel  int
	SysSoft int
	App     int
}

// Total returns the row sum, which must equal ValidCounts.
func (c ClassCounts) Total() int { return c.Driver + c.Kernel + c.SysSoft + c.App }

// NonApp returns the Thin Server count (everything but applications).
func (c ClassCounts) NonApp() int { return c.Driver + c.Kernel + c.SysSoft }

// ClassTable is Table II: vulnerabilities per OS component class.
var ClassTable = map[osmap.Distro]ClassCounts{
	osmap.OpenBSD:     {Driver: 2, Kernel: 75, SysSoft: 33, App: 32},
	osmap.NetBSD:      {Driver: 9, Kernel: 59, SysSoft: 32, App: 26},
	osmap.FreeBSD:     {Driver: 4, Kernel: 147, SysSoft: 54, App: 53},
	osmap.OpenSolaris: {Driver: 0, Kernel: 15, SysSoft: 9, App: 7},
	osmap.Solaris:     {Driver: 2, Kernel: 156, SysSoft: 114, App: 128},
	osmap.Debian:      {Driver: 1, Kernel: 24, SysSoft: 34, App: 142},
	osmap.Ubuntu:      {Driver: 2, Kernel: 22, SysSoft: 8, App: 55},
	osmap.RedHat:      {Driver: 5, Kernel: 89, SysSoft: 93, App: 182},
	osmap.Windows2000: {Driver: 3, Kernel: 143, SysSoft: 132, App: 203},
	osmap.Windows2003: {Driver: 1, Kernel: 95, SysSoft: 71, App: 176},
	osmap.Windows2008: {Driver: 0, Kernel: 42, SysSoft: 14, App: 62},
}

// RemoteTotals is the per-OS v(A) column of Table III's third filter:
// non-application vulnerabilities that are remotely exploitable
// (the Isolated Thin Server profile).
var RemoteTotals = map[osmap.Distro]int{
	osmap.OpenBSD:     60,
	osmap.NetBSD:      41,
	osmap.FreeBSD:     87,
	osmap.OpenSolaris: 6,
	osmap.Solaris:     103,
	osmap.Debian:      25,
	osmap.Ubuntu:      10,
	osmap.RedHat:      58,
	osmap.Windows2000: 178,
	osmap.Windows2003: 109,
	osmap.Windows2008: 26,
}

// PairCounts is one v(AB) cell of Table III under its three filters.
// The filters nest: All ⊇ NoApp ⊇ Remote.
type PairCounts struct {
	All    int // Fat Server: every shared vulnerability
	NoApp  int // Thin Server: application vulnerabilities removed
	Remote int // Isolated Thin Server: additionally local-only removed
}

// PairTable is Table III: shared vulnerabilities for all 55 OS pairs.
var PairTable = map[osmap.Pair]PairCounts{
	pair(osmap.OpenBSD, osmap.NetBSD):          {All: 40, NoApp: 32, Remote: 16},
	pair(osmap.OpenBSD, osmap.FreeBSD):         {All: 53, NoApp: 48, Remote: 32},
	pair(osmap.OpenBSD, osmap.OpenSolaris):     {All: 1, NoApp: 1, Remote: 0},
	pair(osmap.OpenBSD, osmap.Solaris):         {All: 12, NoApp: 10, Remote: 6},
	pair(osmap.OpenBSD, osmap.Debian):          {All: 2, NoApp: 2, Remote: 0},
	pair(osmap.OpenBSD, osmap.Ubuntu):          {All: 3, NoApp: 1, Remote: 0},
	pair(osmap.OpenBSD, osmap.RedHat):          {All: 10, NoApp: 5, Remote: 4},
	pair(osmap.OpenBSD, osmap.Windows2000):     {All: 3, NoApp: 3, Remote: 3},
	pair(osmap.OpenBSD, osmap.Windows2003):     {All: 2, NoApp: 2, Remote: 2},
	pair(osmap.OpenBSD, osmap.Windows2008):     {All: 1, NoApp: 1, Remote: 1},
	pair(osmap.NetBSD, osmap.FreeBSD):          {All: 49, NoApp: 39, Remote: 24},
	pair(osmap.NetBSD, osmap.OpenSolaris):      {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.NetBSD, osmap.Solaris):          {All: 15, NoApp: 12, Remote: 8},
	pair(osmap.NetBSD, osmap.Debian):           {All: 3, NoApp: 2, Remote: 2},
	pair(osmap.NetBSD, osmap.Ubuntu):           {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.NetBSD, osmap.RedHat):           {All: 7, NoApp: 4, Remote: 2},
	pair(osmap.NetBSD, osmap.Windows2000):      {All: 3, NoApp: 3, Remote: 3},
	pair(osmap.NetBSD, osmap.Windows2003):      {All: 1, NoApp: 1, Remote: 1},
	pair(osmap.NetBSD, osmap.Windows2008):      {All: 1, NoApp: 1, Remote: 1},
	pair(osmap.FreeBSD, osmap.OpenSolaris):     {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.FreeBSD, osmap.Solaris):         {All: 21, NoApp: 15, Remote: 8},
	pair(osmap.FreeBSD, osmap.Debian):          {All: 7, NoApp: 4, Remote: 1},
	pair(osmap.FreeBSD, osmap.Ubuntu):          {All: 3, NoApp: 3, Remote: 0},
	pair(osmap.FreeBSD, osmap.RedHat):          {All: 20, NoApp: 13, Remote: 5},
	pair(osmap.FreeBSD, osmap.Windows2000):     {All: 4, NoApp: 4, Remote: 4},
	pair(osmap.FreeBSD, osmap.Windows2003):     {All: 2, NoApp: 2, Remote: 2},
	pair(osmap.FreeBSD, osmap.Windows2008):     {All: 1, NoApp: 1, Remote: 1},
	pair(osmap.OpenSolaris, osmap.Solaris):     {All: 27, NoApp: 22, Remote: 6},
	pair(osmap.OpenSolaris, osmap.Debian):      {All: 1, NoApp: 1, Remote: 0},
	pair(osmap.OpenSolaris, osmap.Ubuntu):      {All: 1, NoApp: 1, Remote: 0},
	pair(osmap.OpenSolaris, osmap.RedHat):      {All: 1, NoApp: 1, Remote: 0},
	pair(osmap.OpenSolaris, osmap.Windows2000): {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.OpenSolaris, osmap.Windows2003): {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.OpenSolaris, osmap.Windows2008): {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.Solaris, osmap.Debian):          {All: 4, NoApp: 4, Remote: 2},
	pair(osmap.Solaris, osmap.Ubuntu):          {All: 2, NoApp: 2, Remote: 0},
	pair(osmap.Solaris, osmap.RedHat):          {All: 13, NoApp: 8, Remote: 4},
	pair(osmap.Solaris, osmap.Windows2000):     {All: 9, NoApp: 3, Remote: 3},
	pair(osmap.Solaris, osmap.Windows2003):     {All: 7, NoApp: 1, Remote: 1},
	pair(osmap.Solaris, osmap.Windows2008):     {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.Debian, osmap.Ubuntu):           {All: 12, NoApp: 6, Remote: 2},
	pair(osmap.Debian, osmap.RedHat):           {All: 61, NoApp: 26, Remote: 11},
	pair(osmap.Debian, osmap.Windows2000):      {All: 1, NoApp: 1, Remote: 1},
	pair(osmap.Debian, osmap.Windows2003):      {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.Debian, osmap.Windows2008):      {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.Ubuntu, osmap.RedHat):           {All: 25, NoApp: 8, Remote: 1},
	pair(osmap.Ubuntu, osmap.Windows2000):      {All: 1, NoApp: 1, Remote: 1},
	pair(osmap.Ubuntu, osmap.Windows2003):      {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.Ubuntu, osmap.Windows2008):      {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.RedHat, osmap.Windows2000):      {All: 2, NoApp: 1, Remote: 1},
	pair(osmap.RedHat, osmap.Windows2003):      {All: 1, NoApp: 0, Remote: 0},
	pair(osmap.RedHat, osmap.Windows2008):      {All: 0, NoApp: 0, Remote: 0},
	pair(osmap.Windows2000, osmap.Windows2003): {All: 253, NoApp: 116, Remote: 81},
	pair(osmap.Windows2000, osmap.Windows2008): {All: 70, NoApp: 27, Remote: 14},
	pair(osmap.Windows2003, osmap.Windows2008): {All: 95, NoApp: 39, Remote: 18},
}

// PartCounts is one row of Table IV: the component-class breakdown of an
// Isolated Thin Server pair's shared vulnerabilities.
type PartCounts struct {
	Driver  int
	Kernel  int
	SysSoft int
}

// Total returns the row sum, which must equal PairTable[p].Remote.
func (p PartCounts) Total() int { return p.Driver + p.Kernel + p.SysSoft }

// PartTable is Table IV. Pairs absent from the map shared nothing under
// the Isolated Thin Server profile.
var PartTable = map[osmap.Pair]PartCounts{
	pair(osmap.Windows2000, osmap.Windows2003): {Driver: 0, Kernel: 40, SysSoft: 41},
	pair(osmap.OpenBSD, osmap.FreeBSD):         {Driver: 1, Kernel: 14, SysSoft: 17},
	pair(osmap.NetBSD, osmap.FreeBSD):          {Driver: 2, Kernel: 13, SysSoft: 9},
	pair(osmap.Windows2003, osmap.Windows2008): {Driver: 0, Kernel: 10, SysSoft: 8},
	pair(osmap.OpenBSD, osmap.NetBSD):          {Driver: 1, Kernel: 8, SysSoft: 7},
	pair(osmap.Windows2000, osmap.Windows2008): {Driver: 0, Kernel: 8, SysSoft: 6},
	pair(osmap.Debian, osmap.RedHat):           {Driver: 0, Kernel: 5, SysSoft: 6},
	pair(osmap.FreeBSD, osmap.Solaris):         {Driver: 0, Kernel: 5, SysSoft: 3},
	pair(osmap.NetBSD, osmap.Solaris):          {Driver: 0, Kernel: 4, SysSoft: 4},
	pair(osmap.OpenBSD, osmap.Solaris):         {Driver: 0, Kernel: 5, SysSoft: 1},
	pair(osmap.OpenSolaris, osmap.Solaris):     {Driver: 0, Kernel: 3, SysSoft: 3},
	pair(osmap.FreeBSD, osmap.RedHat):          {Driver: 0, Kernel: 1, SysSoft: 4},
	pair(osmap.FreeBSD, osmap.Windows2000):     {Driver: 1, Kernel: 3, SysSoft: 0},
	pair(osmap.OpenBSD, osmap.RedHat):          {Driver: 0, Kernel: 1, SysSoft: 3},
	pair(osmap.Solaris, osmap.RedHat):          {Driver: 0, Kernel: 3, SysSoft: 1},
	pair(osmap.NetBSD, osmap.Windows2000):      {Driver: 1, Kernel: 2, SysSoft: 0},
	pair(osmap.OpenBSD, osmap.Windows2000):     {Driver: 0, Kernel: 3, SysSoft: 0},
	pair(osmap.Solaris, osmap.Windows2000):     {Driver: 0, Kernel: 3, SysSoft: 0},
	pair(osmap.Solaris, osmap.Debian):          {Driver: 0, Kernel: 1, SysSoft: 1},
	pair(osmap.OpenBSD, osmap.Windows2003):     {Driver: 0, Kernel: 2, SysSoft: 0},
	pair(osmap.FreeBSD, osmap.Windows2003):     {Driver: 0, Kernel: 2, SysSoft: 0},
	pair(osmap.Debian, osmap.Ubuntu):           {Driver: 0, Kernel: 0, SysSoft: 2},
	pair(osmap.NetBSD, osmap.Debian):           {Driver: 0, Kernel: 0, SysSoft: 2},
	pair(osmap.NetBSD, osmap.RedHat):           {Driver: 0, Kernel: 0, SysSoft: 2},
	pair(osmap.NetBSD, osmap.Windows2003):      {Driver: 0, Kernel: 1, SysSoft: 0},
	pair(osmap.NetBSD, osmap.Windows2008):      {Driver: 0, Kernel: 1, SysSoft: 0},
	pair(osmap.OpenBSD, osmap.Windows2008):     {Driver: 0, Kernel: 1, SysSoft: 0},
	pair(osmap.FreeBSD, osmap.Windows2008):     {Driver: 0, Kernel: 1, SysSoft: 0},
	pair(osmap.Solaris, osmap.Windows2003):     {Driver: 0, Kernel: 1, SysSoft: 0},
	pair(osmap.FreeBSD, osmap.Debian):          {Driver: 0, Kernel: 0, SysSoft: 1},
	pair(osmap.Debian, osmap.Windows2000):      {Driver: 0, Kernel: 0, SysSoft: 1},
	pair(osmap.Ubuntu, osmap.RedHat):           {Driver: 0, Kernel: 0, SysSoft: 1},
	pair(osmap.Ubuntu, osmap.Windows2000):      {Driver: 0, Kernel: 0, SysSoft: 1},
	pair(osmap.RedHat, osmap.Windows2000):      {Driver: 0, Kernel: 0, SysSoft: 1},
}

// PeriodCounts is one cell of Table V: shared Isolated-Thin-Server
// vulnerabilities split into the history (1994-2005) and observed
// (2006-2010) periods.
type PeriodCounts struct {
	History  int
	Observed int
}

// Total returns History+Observed, which must equal PairTable[p].Remote.
func (p PeriodCounts) Total() int { return p.History + p.Observed }

// PeriodTable is Table V, covering the 8 history-eligible distributions
// (Ubuntu, OpenSolaris and Windows 2008 are excluded for lack of history
// data).
var PeriodTable = map[osmap.Pair]PeriodCounts{
	pair(osmap.OpenBSD, osmap.NetBSD):          {History: 9, Observed: 7},
	pair(osmap.OpenBSD, osmap.FreeBSD):         {History: 25, Observed: 7},
	pair(osmap.OpenBSD, osmap.Solaris):         {History: 6, Observed: 0},
	pair(osmap.OpenBSD, osmap.Debian):          {History: 0, Observed: 0},
	pair(osmap.OpenBSD, osmap.RedHat):          {History: 4, Observed: 0},
	pair(osmap.OpenBSD, osmap.Windows2000):     {History: 2, Observed: 1},
	pair(osmap.OpenBSD, osmap.Windows2003):     {History: 1, Observed: 1},
	pair(osmap.NetBSD, osmap.FreeBSD):          {History: 15, Observed: 9},
	pair(osmap.NetBSD, osmap.Solaris):          {History: 8, Observed: 0},
	pair(osmap.NetBSD, osmap.Debian):           {History: 2, Observed: 0},
	pair(osmap.NetBSD, osmap.RedHat):           {History: 2, Observed: 0},
	pair(osmap.NetBSD, osmap.Windows2000):      {History: 2, Observed: 1},
	pair(osmap.NetBSD, osmap.Windows2003):      {History: 0, Observed: 1},
	pair(osmap.FreeBSD, osmap.Solaris):         {History: 8, Observed: 0},
	pair(osmap.FreeBSD, osmap.Debian):          {History: 1, Observed: 0},
	pair(osmap.FreeBSD, osmap.RedHat):          {History: 5, Observed: 0},
	pair(osmap.FreeBSD, osmap.Windows2000):     {History: 3, Observed: 1},
	pair(osmap.FreeBSD, osmap.Windows2003):     {History: 1, Observed: 1},
	pair(osmap.Solaris, osmap.Debian):          {History: 2, Observed: 0},
	pair(osmap.Solaris, osmap.RedHat):          {History: 3, Observed: 1},
	pair(osmap.Solaris, osmap.Windows2000):     {History: 3, Observed: 0},
	pair(osmap.Solaris, osmap.Windows2003):     {History: 1, Observed: 0},
	pair(osmap.Debian, osmap.RedHat):           {History: 10, Observed: 1},
	pair(osmap.Debian, osmap.Windows2000):      {History: 0, Observed: 1},
	pair(osmap.Debian, osmap.Windows2003):      {History: 0, Observed: 0},
	pair(osmap.RedHat, osmap.Windows2000):      {History: 0, Observed: 1},
	pair(osmap.RedHat, osmap.Windows2003):      {History: 0, Observed: 0},
	pair(osmap.Windows2000, osmap.Windows2003): {History: 35, Observed: 46},
}

// SpecialCVE describes one of the three named multi-OS vulnerabilities
// of §IV-B, with the cluster footprint and extra (unclustered) products
// chosen so that every pairwise budget of Tables III/IV/V is respected.
// See DESIGN.md §5 for the feasibility analysis.
type SpecialCVE struct {
	ID            string
	Year          int
	Clusters      []osmap.Distro
	ExtraProducts []string // CPE 2.2 URIs of unclustered products
	Summary       string
}

// SpecialCVEs are the named vulnerabilities: the DNS cache poisoning and
// DHCP flaws shared by six products and the TCP design flaw shared by
// nine. All three are remotely exploitable protocol flaws that the
// paper's taxonomy places in the Kernel class.
var SpecialCVEs = []SpecialCVE{
	{
		ID:   "CVE-2007-5365",
		Year: 2007,
		Clusters: []osmap.Distro{
			osmap.OpenBSD, osmap.NetBSD, osmap.FreeBSD,
		},
		ExtraProducts: []string{
			"cpe:/o:ibm:aix:5.3", "cpe:/o:hp:hp-ux:11.11", "cpe:/o:suse:suse_linux:10.1",
		},
		Summary: "Stack-based buffer overflow in the DHCP implementation option parsing allows remote attackers to execute arbitrary code via a crafted reply.",
	},
	{
		ID:   "CVE-2008-1447",
		Year: 2008,
		Clusters: []osmap.Distro{
			osmap.OpenBSD, osmap.NetBSD, osmap.FreeBSD,
		},
		ExtraProducts: []string{
			"cpe:/o:microsoft:windows_xp::sp3", "cpe:/o:microsoft:windows_nt:4.0", "cpe:/o:apple:mac_os_x:10.5",
		},
		Summary: "The DNS protocol implementation does not sufficiently randomize transaction identifiers and source ports, which allows remote attackers to conduct cache poisoning attacks.",
	},
	{
		ID:   "CVE-2008-4609",
		Year: 2008,
		Clusters: []osmap.Distro{
			osmap.OpenBSD, osmap.NetBSD, osmap.FreeBSD, osmap.Windows2000, osmap.Windows2003,
		},
		ExtraProducts: []string{
			"cpe:/o:microsoft:windows_xp::sp3", "cpe:/o:microsoft:windows_vista", "cpe:/o:microsoft:windows_nt:4.0", "cpe:/o:apple:mac_os_x:10.5",
		},
		Summary: "The TCP implementation state management design allows remote attackers to cause a denial of service (connection queue exhaustion) via crafted segments, a design-level issue of the TCP protocol.",
	},
}

// KWiseProducts gives the §IV-B statement targets at product
// granularity: the number of distinct vulnerabilities affecting at least
// k products. (The paper's cluster-level Table III is arithmetically
// incompatible with a nine-cluster vulnerability, so the k-wise sentences
// are reproduced at product level; see DESIGN.md §5.)
var KWiseProducts = map[int]int{
	3: 285,
	4: 102,
	5: 9,
	6: 3, // the two six-product CVEs plus the nine-product CVE
	9: 1, // CVE-2008-4609
}

// ReleaseOverlap keys Table VI by the printed release labels.
type ReleaseOverlap struct {
	A, B string // e.g. "Debian3.0", "RedHat5.0"
}

// ReleaseTable is Table VI: shared vulnerabilities between specific
// (OS, release) pairs of Debian and RedHat under the Isolated Thin
// Server profile.
var ReleaseTable = map[ReleaseOverlap]int{
	{"Debian2.1", "Debian3.0"}:  0,
	{"Debian2.1", "Debian4.0"}:  0,
	{"Debian3.0", "Debian4.0"}:  1,
	{"RedHat6.2*", "RedHat4.0"}: 0,
	{"RedHat6.2*", "RedHat5.0"}: 0,
	{"RedHat4.0", "RedHat5.0"}:  1,
	{"Debian2.1", "RedHat6.2*"}: 0,
	{"Debian2.1", "RedHat4.0"}:  0,
	{"Debian2.1", "RedHat5.0"}:  0,
	{"Debian3.0", "RedHat6.2*"}: 0,
	{"Debian3.0", "RedHat4.0"}:  0,
	{"Debian3.0", "RedHat5.0"}:  0,
	{"Debian4.0", "RedHat6.2*"}: 0,
	{"Debian4.0", "RedHat4.0"}:  1,
	{"Debian4.0", "RedHat5.0"}:  1,
}

// Figure3Set names one replica configuration of Figure 3.
type Figure3Set struct {
	Name    string
	Members []osmap.Distro // empty means "four identical Debian replicas"
}

// Figure3Sets are the five configurations the paper charts.
var Figure3Sets = []Figure3Set{
	{Name: "Debian", Members: []osmap.Distro{osmap.Debian}},
	{Name: "Set1", Members: []osmap.Distro{osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD}},
	{Name: "Set2", Members: []osmap.Distro{osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.NetBSD}},
	{Name: "Set3", Members: []osmap.Distro{osmap.Windows2003, osmap.Solaris, osmap.RedHat, osmap.NetBSD}},
	{Name: "Set4", Members: []osmap.Distro{osmap.OpenBSD, osmap.NetBSD, osmap.Debian, osmap.RedHat}},
}

// Figure3Expected gives the history/observed bar heights *derivable from
// Table V* (pair sums; the Debian bar is its remote total split by
// period). The printed figure differs slightly on some bars (11 vs 10
// for Set1's history, for instance); EXPERIMENTS.md discusses the
// deltas. Our pipeline is checked against these derived values.
var Figure3Expected = map[string]PeriodCounts{
	"Debian": {History: 16, Observed: 9},
	"Set1":   {History: 10, Observed: 1},
	"Set2":   {History: 13, Observed: 1},
	"Set3":   {History: 14, Observed: 2},
	"Set4":   {History: 27, Observed: 8},
}

// FilterReductionPct is §IV-E(1): moving from Fat Server to Isolated
// Thin Server reduces common vulnerabilities "by 56% on average".
const FilterReductionPct = 56

// ClassSharesDistinct is the percentage row of Table II. It is computed
// over the 1887 *distinct* vulnerabilities (each counted once regardless
// of how many OSes it affects), not over the per-OS incidences — the
// incidence-based shares differ because sharing is class-skewed (Windows
// application overlap is large). Order: Driver, Kernel, SysSoft, App.
var ClassSharesDistinct = [4]float64{1.4, 35.5, 23.2, 39.9}

// YearWeights approximates the Figure 2 curves: relative publication
// volume per year per OS. The paper prints no numbers for Figure 2, so
// these weights encode its qualitative shape (family-correlated peaks,
// BSD/Linux decline after 2005, first-release cutoffs) and are used only
// to distribute the years the harder constraints leave free.
var YearWeights = map[osmap.Distro][]YearWeight{
	osmap.OpenBSD: {
		{1997, 2}, {1998, 4}, {1999, 6}, {2000, 10}, {2001, 14}, {2002, 20},
		{2003, 16}, {2004, 18}, {2005, 14}, {2006, 12}, {2007, 9}, {2008, 7},
		{2009, 6}, {2010, 4},
	},
	osmap.NetBSD: {
		{1997, 1}, {1998, 3}, {1999, 5}, {2000, 8}, {2001, 11}, {2002, 14},
		{2003, 13}, {2004, 13}, {2005, 11}, {2006, 10}, {2007, 8}, {2008, 7},
		{2009, 5}, {2010, 4},
	},
	osmap.FreeBSD: {
		{1996, 2}, {1997, 5}, {1998, 8}, {1999, 12}, {2000, 22}, {2001, 24},
		{2002, 30}, {2003, 24}, {2004, 28}, {2005, 26}, {2006, 22}, {2007, 18},
		{2008, 16}, {2009, 12}, {2010, 9},
	},
	osmap.OpenSolaris: {
		{2008, 12}, {2009, 14}, {2010, 5},
	},
	osmap.Solaris: {
		{1994, 6}, {1995, 8}, {1996, 10}, {1997, 12}, {1998, 14}, {1999, 18},
		{2000, 22}, {2001, 26}, {2002, 30}, {2003, 32}, {2004, 38}, {2005, 44},
		{2006, 40}, {2007, 36}, {2008, 28}, {2009, 22}, {2010, 14},
	},
	osmap.Debian: {
		{1997, 2}, {1998, 6}, {1999, 10}, {2000, 14}, {2001, 20}, {2002, 26},
		{2003, 22}, {2004, 24}, {2005, 20}, {2006, 16}, {2007, 12}, {2008, 10},
		{2009, 8}, {2010, 6},
	},
	osmap.Ubuntu: {
		{2004, 2}, {2005, 10}, {2006, 18}, {2007, 16}, {2008, 14}, {2009, 15},
		{2010, 12},
	},
	osmap.RedHat: {
		{1997, 4}, {1998, 8}, {1999, 16}, {2000, 28}, {2001, 34}, {2002, 44},
		{2003, 36}, {2004, 38}, {2005, 32}, {2006, 28}, {2007, 24}, {2008, 22},
		{2009, 18}, {2010, 14},
	},
	osmap.Windows2000: {
		{1997, 3}, {1998, 4}, {1999, 16}, {2000, 34}, {2001, 40}, {2002, 52},
		{2003, 46}, {2004, 50}, {2005, 56}, {2006, 48}, {2007, 40}, {2008, 36},
		{2009, 30}, {2010, 22},
	},
	osmap.Windows2003: {
		{2003, 14}, {2004, 30}, {2005, 46}, {2006, 52}, {2007, 50}, {2008, 44},
		{2009, 38}, {2010, 30},
	},
	osmap.Windows2008: {
		{2008, 52}, {2009, 42}, {2010, 24},
	},
}

// YearWeight is one (year, relative weight) point of a Figure 2 curve.
type YearWeight struct {
	Year   int
	Weight int
}

// Windows2000PreReleaseEntries is the §IV-A observation that Windows
// 2000 appears in seven entries published before 1999, sharing
// vulnerabilities with Windows NT.
const Windows2000PreReleaseEntries = 7

// InvalidSharePlan describes how the removed (invalid) entries are
// distributed over OS sets so that Table I's per-OS columns and distinct
// totals hold simultaneously (the columns over-count shared entries).
// Each element is an OS set with a multiplicity.
type InvalidSharePlan struct {
	Members []osmap.Distro
	Count   int
}

// UnknownShares reconciles the Unknown column (68 incidences, 60
// distinct).
var UnknownShares = []InvalidSharePlan{
	{Members: []osmap.Distro{osmap.Windows2000, osmap.Windows2003}, Count: 4},
	{Members: []osmap.Distro{osmap.Solaris, osmap.RedHat}, Count: 4},
}

// UnspecifiedShares reconciles the Unspecified column (221 incidences,
// 165 distinct). The OpenSolaris column is almost entirely shared with
// Solaris, matching the paper's remark that 60% of removed entries
// concern the Solaris family.
var UnspecifiedShares = []InvalidSharePlan{
	{Members: []osmap.Distro{osmap.OpenSolaris, osmap.Solaris}, Count: 40},
	{Members: []osmap.Distro{osmap.Windows2000, osmap.Windows2003}, Count: 13},
	{Members: []osmap.Distro{osmap.Windows2003, osmap.Windows2008}, Count: 3},
}

// DisputedShares reconciles the Disputed column (14 incidences, 8
// distinct).
var DisputedShares = []InvalidSharePlan{
	{Members: []osmap.Distro{osmap.Windows2000, osmap.Windows2003}, Count: 3},
	{Members: []osmap.Distro{osmap.NetBSD, osmap.FreeBSD}, Count: 2},
	{Members: []osmap.Distro{osmap.OpenBSD, osmap.Windows2000}, Count: 1},
}

func pair(a, b osmap.Distro) osmap.Pair { return osmap.MakePair(a, b) }
