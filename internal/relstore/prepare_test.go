package relstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestNormalizeSQL: literals canonicalize to placeholders (typed slots),
// user placeholders survive as user slots, LIMIT operands and LIKE
// patterns stay literal, and cosmetically different texts normalize to
// one shape. Every shape must itself parse.
func TestNormalizeSQL(t *testing.T) {
	cases := []struct {
		in, shape string
		lits      []Value
		user      int
	}{
		{
			`SELECT id FROM ev WHERE os_id = 3 AND name = 'x''y'`,
			`SELECT id FROM ev WHERE os_id = ? AND name = ?`,
			[]Value{Int(3), Text("x'y")}, 0,
		},
		{
			`SELECT * FROM t ORDER BY id LIMIT 5`,
			`SELECT * FROM t ORDER BY id LIMIT 5`,
			nil, 0,
		},
		{
			`SELECT v FROM t WHERE v LIKE 'a%' AND k = 7`,
			`SELECT v FROM t WHERE v LIKE 'a%' AND k = ?`,
			[]Value{Int(7)}, 0,
		},
		{
			`SELECT v FROM t WHERE k = ? AND w = 1.5`,
			`SELECT v FROM t WHERE k = ? AND w = ?`,
			[]Value{Float(1.5)}, 1,
		},
		{
			"SELECT v FROM t -- trailing comment\nWHERE k=2;",
			`SELECT v FROM t WHERE k = ?`,
			[]Value{Int(2)}, 0,
		},
		{
			`select V from T where K = 2`,
			`SELECT v FROM t WHERE k = ?`,
			[]Value{Int(2)}, 0,
		},
	}
	for _, tt := range cases {
		shape, slots, err := normalizeSQL(tt.in)
		if err != nil {
			t.Fatalf("normalizeSQL(%q): %v", tt.in, err)
		}
		if shape != tt.shape {
			t.Errorf("normalizeSQL(%q) shape = %q, want %q", tt.in, shape, tt.shape)
		}
		if got := countUserSlots(slots); got != tt.user {
			t.Errorf("normalizeSQL(%q) user slots = %d, want %d", tt.in, got, tt.user)
		}
		var lits []Value
		for _, s := range slots {
			if !s.user {
				lits = append(lits, s.lit)
			}
		}
		if len(lits) != len(tt.lits) {
			t.Fatalf("normalizeSQL(%q) extracted %d literals, want %d", tt.in, len(lits), len(tt.lits))
		}
		for i := range lits {
			if lits[i].Kind() != tt.lits[i].Kind() || !lits[i].Equal(tt.lits[i]) {
				t.Errorf("normalizeSQL(%q) literal %d = %v, want %v", tt.in, i, lits[i], tt.lits[i])
			}
		}
		if _, err := Parse(shape); err != nil {
			t.Errorf("shape %q does not parse: %v", shape, err)
		}
	}
}

// TestCachedPlanIdentity: the cached-plan path answers every planner
// query byte-identically to a fresh uncached plan and to the naive
// reference executor, at worker counts 1 and 4, including repeat runs
// that hit the cache.
func TestCachedPlanIdentity(t *testing.T) {
	db := plannerFixture(t)
	for _, q := range plannerQueries {
		db.SetPlanMode(PlanNaive)
		naive, err := db.Query(q)
		if err != nil {
			t.Fatalf("naive Query(%q): %v", q, err)
		}
		db.SetPlanMode(PlanJoin)
		fresh, err := db.queryUncached(q)
		if err != nil {
			t.Fatalf("uncached Query(%q): %v", q, err)
		}
		if !resultsEqual(naive, fresh) {
			t.Fatalf("uncached plan diverges from naive on %q", q)
		}
		for _, workers := range []int{1, 4} {
			db.SetParallelism(workers)
			for run := 0; run < 3; run++ { // run 1+ replays the cached plan
				got, err := db.Query(q)
				if err != nil {
					t.Fatalf("cached Query(%q) workers=%d run=%d: %v", q, workers, run, err)
				}
				if !resultsEqual(naive, got) {
					t.Errorf("cached plan diverges on %q (workers=%d run=%d):\nnaive  %v\ncached %v",
						q, workers, run, naive.Rows, got.Rows)
				}
			}
		}
	}
	if st := db.PlanCacheStats(); st.Hits == 0 || st.Misses == 0 {
		t.Errorf("identity suite produced no cache traffic: %+v", st)
	}
}

// TestCachedPlanIdentityParameterized: the same identity, with caller
// arguments merged into the extracted-literal slots, and one shape
// serving different literal variants.
func TestCachedPlanIdentityParameterized(t *testing.T) {
	db := plannerFixture(t)
	queries := []struct {
		q    string
		args []Value
	}{
		{`SELECT id FROM ev WHERE os_id = ? AND sev > ? ORDER BY id`, []Value{Int(3), Int(4)}},
		{`SELECT e.id, o.name FROM ev e JOIN osd o ON e.os_id = o.id
		  WHERE o.family = ? AND e.sev >= ? ORDER BY e.id`, []Value{Text("Linux"), Int(5)}},
		{`SELECT COUNT(*) FROM ev WHERE tag LIKE 't%' AND sev < ?`, []Value{Int(8)}},
		{`SELECT id FROM ev WHERE os_id IN (?, ?, 5) ORDER BY id LIMIT 9`, []Value{Int(1), Int(3)}},
	}
	for _, tt := range queries {
		db.SetPlanMode(PlanNaive)
		naive, err := db.Query(tt.q, tt.args...)
		if err != nil {
			t.Fatalf("naive Query(%q): %v", tt.q, err)
		}
		db.SetPlanMode(PlanJoin)
		for _, workers := range []int{1, 4} {
			db.SetParallelism(workers)
			for run := 0; run < 2; run++ {
				got, err := db.Query(tt.q, tt.args...)
				if err != nil {
					t.Fatalf("cached Query(%q): %v", tt.q, err)
				}
				if !resultsEqual(naive, got) {
					t.Errorf("cached parameterized plan diverges on %q (workers=%d)", tt.q, workers)
				}
			}
		}
	}
	// Literal variants of one shape share a single cache entry and still
	// answer per-variant results.
	sizeBefore := db.PlanCacheStats().Size
	var counts []int
	for sev := 0; sev < 4; sev++ {
		res, err := db.Query(fmt.Sprintf(`SELECT id FROM ev WHERE sev = %d ORDER BY id`, sev))
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(res.Rows))
	}
	if got := db.PlanCacheStats().Size; got != sizeBefore+1 {
		t.Errorf("4 literal variants grew the cache by %d entries, want 1", got-sizeBefore)
	}
	db.SetPlanMode(PlanNaive)
	for sev := 0; sev < 4; sev++ {
		want, err := db.Query(fmt.Sprintf(`SELECT id FROM ev WHERE sev = %d ORDER BY id`, sev))
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Rows) != counts[sev] {
			t.Errorf("shared shape answered %d rows for sev=%d, naive says %d", counts[sev], sev, len(want.Rows))
		}
	}
}

// TestPrepareStmt covers the prepared-statement surface: repeated
// execution with different arguments, QueryInt, argument-count
// enforcement, and non-SELECT rejection.
func TestPrepareStmt(t *testing.T) {
	db := plannerFixture(t)
	st, err := db.Prepare(`SELECT COUNT(*) FROM ev WHERE os_id = ? AND sev > 2`)
	if err != nil {
		t.Fatal(err)
	}
	for osID := int64(0); osID < 4; osID++ {
		got, err := st.QueryInt(Int(osID))
		if err != nil {
			t.Fatalf("prepared QueryInt(os_id=%d): %v", osID, err)
		}
		want, err := db.QueryInt(`SELECT COUNT(*) FROM ev WHERE os_id = ? AND sev > 2`, Int(osID))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("prepared count(os_id=%d) = %d, ad-hoc says %d", osID, got, want)
		}
	}
	if _, err := st.Query(); err == nil {
		t.Error("missing argument accepted by prepared statement")
	}
	if _, err := st.Query(Int(1), Int(2)); err == nil {
		t.Error("extra argument accepted by prepared statement")
	}
	if _, err := db.Prepare(`DELETE FROM ev WHERE id = ?`); err == nil {
		t.Error("Prepare accepted a non-SELECT statement")
	}
	if _, err := db.Prepare(`SELECT nope FROM`); err == nil {
		t.Error("Prepare accepted a malformed statement")
	}
}

// TestPlanCacheLRUChurn: at capacity 2, N distinct shapes keep the
// cache bounded, evictions are counted, and an evicted shape re-plans
// correctly on its next use.
func TestPlanCacheLRUChurn(t *testing.T) {
	db := plannerFixture(t)
	db.SetPlanCacheCapacity(2)
	base := db.PlanCacheStats()
	shapes := make([]string, 5)
	want := make([]int, 5)
	for i := range shapes {
		// Distinct LIMITs keep the shapes distinct (LIMIT stays literal).
		shapes[i] = fmt.Sprintf(`SELECT id FROM ev WHERE sev >= 0 ORDER BY id LIMIT %d`, i+1)
		res, err := db.Query(shapes[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(res.Rows)
		if st := db.PlanCacheStats(); st.Size > 2 {
			t.Fatalf("cache size %d exceeds capacity 2", st.Size)
		}
	}
	st := db.PlanCacheStats()
	if st.Evictions-base.Evictions < 3 {
		t.Errorf("5 shapes at capacity 2 evicted %d plans, want >= 3", st.Evictions-base.Evictions)
	}
	// shapes[0] was evicted long ago: its replay must miss, re-plan and
	// still answer the same rows.
	missesBefore := db.PlanCacheStats().Misses
	res, err := db.Query(shapes[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want[0] {
		t.Errorf("re-planned evicted shape answered %d rows, want %d", len(res.Rows), want[0])
	}
	if db.PlanCacheStats().Misses == missesBefore {
		t.Error("evicted shape did not count a miss on replay")
	}
	if st := db.PlanCacheStats(); st.Size > 2 {
		t.Fatalf("cache size %d exceeds capacity 2 after replay", st.Size)
	}
}

// TestPlanCacheStatsAndSharing: repeated and cosmetically different
// texts of one shape count hits; per-plan reuse is visible through
// PlanCacheEntries.
func TestPlanCacheStatsAndSharing(t *testing.T) {
	db := plannerFixture(t)
	base := db.PlanCacheStats()
	if _, err := db.Query(`SELECT id FROM ev WHERE sev = 1 ORDER BY id`); err != nil {
		t.Fatal(err)
	}
	// Different literal, case and spacing: same shape, must hit.
	if _, err := db.Query("select id  from EV\nwhere sev = 2 order by id"); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Misses-base.Misses != 1 {
		t.Errorf("one shape compiled %d times, want 1", st.Misses-base.Misses)
	}
	if st.Hits-base.Hits != 1 {
		t.Errorf("shape replay counted %d hits, want 1", st.Hits-base.Hits)
	}
	shape, _, err := normalizeSQL(`SELECT id FROM ev WHERE sev = 1 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range db.PlanCacheEntries() {
		if e.Shape == shape {
			found = true
			if e.Hits != 1 {
				t.Errorf("per-plan hits = %d, want 1", e.Hits)
			}
		}
	}
	if !found {
		t.Errorf("PlanCacheEntries does not list %q", shape)
	}
}

// TestPlanCacheDDLInvalidation: CREATE TABLE, CREATE INDEX and DROP
// TABLE each flush the cache, so no cached plan can reference a dead
// table, and held prepared statements transparently recompile.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (k INTEGER, v TEXT)`)
	for i := 0; i < 10; i++ {
		if err := InsertRow(db, "t", []string{"k", "v"},
			[]Value{Int(int64(i % 3)), Text(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	const q = `SELECT v FROM t WHERE k = 1 ORDER BY v`
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	first, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 {
		t.Fatal("fixture query returned no rows")
	}

	inv := db.PlanCacheStats().Invalidations
	mustExec(t, db, `CREATE INDEX ON t (k)`)
	if got := db.PlanCacheStats().Invalidations; got != inv+1 {
		t.Errorf("CREATE INDEX invalidations = %d, want %d", got, inv+1)
	}
	if db.PlanCacheStats().Size != 0 {
		t.Error("CREATE INDEX left plans in the cache")
	}

	mustExec(t, db, `DROP TABLE t`)
	if _, err := st.Query(); err == nil {
		t.Error("prepared statement answered against a dropped table")
	}
	if _, err := db.Query(q); err == nil {
		t.Error("Query answered against a dropped table")
	}

	// Recreate with different contents: both paths must see the new
	// table, not a stale plan.
	mustExec(t, db, `CREATE TABLE t (k INTEGER, v TEXT)`)
	if err := InsertRow(db, "t", []string{"k", "v"}, []Value{Int(1), Text("fresh")}); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query()
	if err != nil {
		t.Fatalf("prepared statement did not recover after recreate: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "fresh" {
		t.Errorf("stale plan after recreate: %v", res.Rows)
	}

	// Explicit invalidation (the epoch-swap hook) forces a recompile too.
	inv = db.PlanCacheStats().Invalidations
	db.InvalidatePlans()
	if got := db.PlanCacheStats().Invalidations; got != inv+1 {
		t.Errorf("InvalidatePlans invalidations = %d, want %d", got, inv+1)
	}
	if _, err := st.Query(); err != nil {
		t.Fatalf("prepared statement failed after InvalidatePlans: %v", err)
	}
}

// TestLikeBindingSharesCompiledProgram: binding a statement whose LIKE
// target holds a placeholder produces fresh LikeExpr copies — they must
// share one compiled program (zero recompiles per bound copy).
func TestLikeBindingSharesCompiledProgram(t *testing.T) {
	stmt, err := Parse(`SELECT v FROM s WHERE ? LIKE 'x%'`)
	if err != nil {
		t.Fatal(err)
	}
	like := stmt.(*SelectStmt).Where.(*LikeExpr)
	prog := like.program()
	bound, err := bindStatement(stmt, []Value{Text("xy")})
	if err != nil {
		t.Fatal(err)
	}
	blike := bound.(*SelectStmt).Where.(*LikeExpr)
	if blike == like {
		t.Fatal("binding a placeholder target must copy the LikeExpr")
	}
	if blike.prog.Load() != prog {
		t.Fatal("bound LikeExpr does not share the compiled program")
	}

	// End to end: N executions of a prepared statement compile at most
	// one program in total.
	db := Open()
	mustExec(t, db, `CREATE TABLE s (v TEXT)`)
	for i := 0; i < 5; i++ {
		if err := InsertRow(db, "s", []string{"v"}, []Value{Text(fmt.Sprintf("row%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := db.Prepare(`SELECT v FROM s WHERE ? LIKE 'a%' ORDER BY v`)
	if err != nil {
		t.Fatal(err)
	}
	before := likeCompiles.Load()
	for i := 0; i < 10; i++ {
		res, err := ps.Query(Text(fmt.Sprintf("a%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("run %d returned %d rows, want 5", i, len(res.Rows))
		}
	}
	if delta := likeCompiles.Load() - before; delta > 1 {
		t.Errorf("10 prepared executions compiled the LIKE pattern %d times, want <= 1", delta)
	}
}

// TestPlanCacheConcurrentRace drives the cached path, a shared prepared
// statement and explicit invalidations from many goroutines; run under
// -race, it proves the cache and the copy-on-write binding are safe.
func TestPlanCacheConcurrentRace(t *testing.T) {
	db := plannerFixture(t)
	db.SetParallelism(4)
	st, err := db.Prepare(`SELECT id FROM ev WHERE os_id = ? AND sev > ? ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch g % 3 {
				case 0:
					if _, err := db.Query(
						`SELECT e.id, o.name FROM ev e JOIN osd o ON e.os_id = o.id AND e.sev > o.tier ORDER BY e.id, o.name`); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := st.Query(Int(int64(i%12)), Int(2)); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := db.Query(fmt.Sprintf(
						`SELECT COUNT(*) FROM ev WHERE sev = %d`, i%10)); err != nil {
						t.Error(err)
						return
					}
					if i%13 == 0 {
						db.InvalidatePlans()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
