package relstore

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// planCache is the shared, LRU-bounded cache of compiled query plans,
// keyed on the normalized query shape (literals canonicalized to `?`,
// see normalizeSQL). Entries are immutable once published — execution
// binds arguments onto copy-on-write clones — so the cache hands the
// same *compiledQuery to any number of concurrent readers. The counters
// are atomic: the Stmt fast path bumps them without taking the list
// lock.
type planCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // shape -> element holding *compiledQuery

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// defaultPlanCacheCapacity bounds the cache when no option overrides
// it: generous for any realistic shape population while keeping a
// runaway ad-hoc workload from holding every plan ever compiled.
const defaultPlanCacheCapacity = 128

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCapacity
	}
	return &planCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached compilation of a shape when its schema
// generation matches, counting a hit; a missing or stale entry counts a
// miss (stale entries are dropped on sight).
func (pc *planCache) get(shape string, gen uint64) *compiledQuery {
	pc.mu.Lock()
	var c *compiledQuery
	if el, ok := pc.entries[shape]; ok {
		c = el.Value.(*compiledQuery)
		if c.gen != gen {
			pc.order.Remove(el)
			delete(pc.entries, shape)
			c = nil
		} else {
			pc.order.MoveToFront(el)
		}
	}
	pc.mu.Unlock()
	if c == nil {
		pc.misses.Add(1)
		return nil
	}
	pc.hits.Add(1)
	c.hits.Add(1)
	return c
}

// put publishes a compilation, evicting least-recently-used entries
// beyond capacity. Concurrent compilations of one shape may both put;
// the last one wins, which is harmless (the entries are equivalent).
func (pc *planCache) put(c *compiledQuery) {
	pc.mu.Lock()
	if el, ok := pc.entries[c.shape]; ok {
		el.Value = c
		pc.order.MoveToFront(el)
		pc.mu.Unlock()
		return
	}
	pc.entries[c.shape] = pc.order.PushFront(c)
	pc.evictLockedOverCapacity()
	pc.mu.Unlock()
}

func (pc *planCache) evictLockedOverCapacity() {
	for pc.order.Len() > pc.capacity {
		back := pc.order.Back()
		pc.order.Remove(back)
		delete(pc.entries, back.Value.(*compiledQuery).shape)
		pc.evictions.Add(1)
	}
}

// flush drops every entry (DDL or epoch swap invalidation).
func (pc *planCache) flush() {
	pc.mu.Lock()
	pc.order.Init()
	pc.entries = make(map[string]*list.Element)
	pc.mu.Unlock()
	pc.invalidations.Add(1)
}

// setCapacity rebounds the cache, evicting LRU entries beyond the new
// capacity; n <= 0 restores the default.
func (pc *planCache) setCapacity(n int) {
	if n <= 0 {
		n = defaultPlanCacheCapacity
	}
	pc.mu.Lock()
	pc.capacity = n
	pc.evictLockedOverCapacity()
	pc.mu.Unlock()
}

// PlanCacheStats aggregates the shared plan cache counters. Hits count
// both cache lookups and prepared-statement fast-path reuses; an
// invalidation is one full flush (DDL statement or explicit
// InvalidatePlans call).
type PlanCacheStats struct {
	Size          int
	Capacity      int
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	size, capacity := pc.order.Len(), pc.capacity
	pc.mu.Unlock()
	return PlanCacheStats{
		Size:          size,
		Capacity:      capacity,
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Evictions:     pc.evictions.Load(),
		Invalidations: pc.invalidations.Load(),
	}
}

// PlanCacheEntry is the per-plan view of one cached shape.
type PlanCacheEntry struct {
	Shape string
	Hits  uint64
}

func (pc *planCache) entriesSnapshot() []PlanCacheEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	out := make([]PlanCacheEntry, 0, pc.order.Len())
	for el := pc.order.Front(); el != nil; el = el.Next() {
		c := el.Value.(*compiledQuery)
		out = append(out, PlanCacheEntry{Shape: c.shape, Hits: c.hits.Load()})
	}
	return out
}
