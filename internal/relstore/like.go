package relstore

import (
	"sync/atomic"
	"unicode/utf8"
)

// SQL LIKE support. Patterns compile once (per parsed statement, cached
// on the LikeExpr) into a small wildcard program; matching then walks
// the subject with zero allocations. `%` matches any run of characters
// and `_` matches exactly one character — one rune, not one byte, so
// multibyte UTF-8 text matches the way SQL users expect.

type likeOpKind byte

const (
	likeLit likeOpKind = iota // one literal rune
	likeOne                   // _
	likeAny                   // %
)

type likeOp struct {
	kind likeOpKind
	lit  rune
}

// likeProg is a compiled LIKE pattern.
type likeProg struct {
	ops []likeOp
}

// likeCompiles counts pattern compilations, so tests can assert that
// binding a prepared statement shares one program instead of
// recompiling per bound copy.
var likeCompiles atomic.Uint64

// compileLike translates a pattern into its program. Adjacent `%`
// wildcards collapse: they match the same strings and would only add
// backtracking states.
func compileLike(pattern string) *likeProg {
	likeCompiles.Add(1)
	ops := make([]likeOp, 0, utf8.RuneCountInString(pattern))
	for _, r := range pattern {
		switch r {
		case '%':
			if n := len(ops); n > 0 && ops[n-1].kind == likeAny {
				continue
			}
			ops = append(ops, likeOp{kind: likeAny})
		case '_':
			ops = append(ops, likeOp{kind: likeOne})
		default:
			ops = append(ops, likeOp{kind: likeLit, lit: r})
		}
	}
	return &likeProg{ops: ops}
}

// match reports whether s matches the pattern. Greedy `%` matching with
// backtracking to the most recent wildcard: O(len(s) * len(ops)) worst
// case, no allocation, and case-sensitive like the rest of the dialect.
func (p *likeProg) match(s string) bool {
	si, pi := 0, 0
	starPi, starSi := -1, 0
	for si < len(s) {
		if pi < len(p.ops) {
			switch op := p.ops[pi]; op.kind {
			case likeAny:
				starPi, starSi = pi, si
				pi++
				continue
			case likeOne:
				_, w := utf8.DecodeRuneInString(s[si:])
				si += w
				pi++
				continue
			default:
				r, w := utf8.DecodeRuneInString(s[si:])
				if r == op.lit {
					si += w
					pi++
					continue
				}
			}
		}
		if starPi < 0 {
			return false
		}
		// Backtrack: the most recent % absorbs one more rune.
		_, w := utf8.DecodeRuneInString(s[starSi:])
		starSi += w
		si, pi = starSi, starPi+1
	}
	// Trailing % ops match the empty remainder.
	for pi < len(p.ops) && p.ops[pi].kind == likeAny {
		pi++
	}
	return pi == len(p.ops)
}

// likeMatch is the one-shot form used by tests and ad-hoc callers;
// query execution goes through the program cached on the LikeExpr.
func likeMatch(s, pattern string) bool { return compileLike(pattern).match(s) }
