package relstore

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int, indexed bool) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 100)), Text(fmt.Sprintf("row%d", i))})
		if err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		if _, err := db.Exec(`CREATE INDEX ON t (k)`); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsertRow(b *testing.B) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 100)), Text("payload")})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT v FROM t WHERE k = 17`)
		if err != nil || len(res.Rows) != 50 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT v FROM t WHERE k = 17`)
		if err != nil || len(res.Rows) != 50 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT k, COUNT(*), MIN(id), MAX(id) FROM t GROUP BY k ORDER BY k`)
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000, false)
	if _, err := db.Exec(`CREATE TABLE names (k INTEGER, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := InsertRow(db, "names", []string{"k", "label"},
			[]Value{Int(int64(i)), Text(fmt.Sprintf("bucket%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT names.label, COUNT(*) FROM t JOIN names ON t.k = names.k GROUP BY names.label`)
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkParseOnly(b *testing.B) {
	const q = `SELECT a.name, COUNT(DISTINCT x.vuln_id) FROM os a JOIN os_vuln x ON a.id = x.os_id WHERE a.family = 'BSD' AND x.version LIKE '4.%' GROUP BY a.name ORDER BY a.name DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
