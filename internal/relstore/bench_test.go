package relstore

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int, indexed bool) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 100)), Text(fmt.Sprintf("row%d", i))})
		if err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		if _, err := db.Exec(`CREATE INDEX ON t (k)`); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsertRow(b *testing.B) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 100)), Text("payload")})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT v FROM t WHERE k = 17`)
		if err != nil || len(res.Rows) != 50 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT v FROM t WHERE k = 17`)
		if err != nil || len(res.Rows) != 50 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT k, COUNT(*), MIN(id), MAX(id) FROM t GROUP BY k ORDER BY k`)
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000, false)
	if _, err := db.Exec(`CREATE TABLE names (k INTEGER, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := InsertRow(db, "names", []string{"k", "label"},
			[]Value{Int(int64(i)), Text(fmt.Sprintf("bucket%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT names.label, COUNT(*) FROM t JOIN names ON t.k = names.k GROUP BY names.label`)
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

// compoundJoinDB builds the planner benchmark fixture: a fact table
// joined against a dimension table through a compound ON clause (equi
// key + residual range), the shape the naive executor answers with an
// O(n*m) nested loop.
func compoundJoinDB(b *testing.B) *DB {
	b.Helper()
	db := benchDB(b, 5000, true)
	if _, err := db.Exec(`CREATE TABLE dim (k INTEGER, tier INTEGER, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := InsertRow(db, "dim", []string{"k", "tier", "label"},
			[]Value{Int(int64(i % 100)), Int(int64(i % 5)), Text(fmt.Sprintf("d%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

const compoundJoinQuery = `
	SELECT dim.label, COUNT(*) FROM t
	JOIN dim ON t.k = dim.k AND dim.tier < 3
	WHERE t.id > 100 AND t.k < 50
	GROUP BY dim.label`

func benchmarkCompoundJoin(b *testing.B, mode PlanMode) {
	db := compoundJoinDB(b)
	db.SetPlanMode(mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(compoundJoinQuery)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

// BenchmarkJoinCompoundOnNaive measures the reference executor: the
// compound ON falls to the nested loop, WHERE filters after the join.
func BenchmarkJoinCompoundOnNaive(b *testing.B) { benchmarkCompoundJoin(b, PlanNaive) }

// BenchmarkJoinCompoundOnPlanned measures the planner on the same
// query: pushdown + hash join with residual probe predicates.
func BenchmarkJoinCompoundOnPlanned(b *testing.B) { benchmarkCompoundJoin(b, PlanJoin) }

// preparedBenchDB keeps the tables tiny under a deliberately wide
// query, so parse + plan time dominates row processing and the
// cache-hit/cold pair isolates what the plan cache saves.
func preparedBenchDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE dim (k INTEGER, tier INTEGER, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX ON dim (k)`); err != nil {
		b.Fatal(err)
	}
	for j := 1; j <= 4; j++ {
		if _, err := db.Exec(fmt.Sprintf(`CREATE TABLE aux%d (k INTEGER, w INTEGER)`, j)); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf(`CREATE INDEX ON aux%d (k)`, j)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 2)), Text(fmt.Sprintf("row%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := InsertRow(db, "dim", []string{"k", "tier", "label"},
			[]Value{Int(int64(i)), Int(int64(i % 3)), Text(fmt.Sprintf("d%d", i))}); err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= 4; j++ {
			if err := InsertRow(db, fmt.Sprintf("aux%d", j), []string{"k", "w"},
				[]Value{Int(int64(i)), Int(int64(i * 3))}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// preparedBenchQuery is wide to parse, validate and plan but cheap to
// execute: pure single-key equi joins over stored indexes (the build
// side is reused as-is), every WHERE conjunct is single-table on the
// tiny probe base, and there are no literal slots to bind — LIKE
// patterns stay literal under normalization — so a cache hit replays
// the compiled plan untouched.
const preparedBenchQuery = `
	SELECT dim.label, COUNT(*), COUNT(DISTINCT t.v), MIN(t.id), MAX(t.id), SUM(aux1.w), AVG(aux2.w) FROM t
	JOIN dim ON t.k = dim.k
	JOIN aux1 ON dim.k = aux1.k
	JOIN aux2 ON aux1.k = aux2.k
	JOIN aux3 ON aux2.k = aux3.k
	JOIN aux4 ON aux3.k = aux4.k
	WHERE t.v LIKE 'row0%' AND t.id >= t.k AND t.k <= t.id
	  AND t.v NOT LIKE 'nope%' AND t.v NOT LIKE 'absent%' AND t.v NOT LIKE 'ww%'
	  AND t.v NOT LIKE 'zz%' AND t.v NOT LIKE 'yy%' AND t.v NOT LIKE 'xx%'
	  AND t.v NOT LIKE 'qq%' AND t.v NOT LIKE 'pp%' AND t.v NOT LIKE 'rr%'
	  AND t.v NOT LIKE 'ss%' AND t.v NOT LIKE 'tt%' AND t.v NOT LIKE 'uu%'
	  AND t.v NOT LIKE 'vv%' AND t.v NOT LIKE 'mm%' AND t.v NOT LIKE 'nn%'
	  AND t.v NOT LIKE 'oo%' AND t.v NOT LIKE 'kk%' AND t.v NOT LIKE 'll%'
	  AND t.id >= t.id AND t.k >= t.k AND t.v = t.v AND t.id <= t.id
	  AND t.k <= t.k AND t.v >= t.v AND t.v <= t.v AND t.id = t.id
	GROUP BY dim.label
	HAVING MAX(t.id) >= MIN(t.id) AND COUNT(*) >= MIN(t.k)
	ORDER BY dim.label`

// BenchmarkPreparedQueryCacheHit replays a prepared handle whose plan
// sits in the cache: every iteration is the hit fast path — an atomic
// generation check plus execution, with no lexing, parsing or planning.
func BenchmarkPreparedQueryCacheHit(b *testing.B) {
	db := preparedBenchDB(b)
	st, err := db.Prepare(preparedBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Query(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query()
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

// BenchmarkPreparedQueryCacheCold flushes the cache every iteration, so
// each run pays the full normalize + parse + validate + plan cost the
// cache-hit variant amortizes away.
func BenchmarkPreparedQueryCacheCold(b *testing.B) {
	db := preparedBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.InvalidatePlans()
		res, err := db.Query(preparedBenchQuery)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkParseOnly(b *testing.B) {
	const q = `SELECT a.name, COUNT(DISTINCT x.vuln_id) FROM os a JOIN os_vuln x ON a.id = x.os_id WHERE a.family = 'BSD' AND x.version LIKE '4.%' GROUP BY a.name ORDER BY a.name DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
