package relstore

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int, indexed bool) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 100)), Text(fmt.Sprintf("row%d", i))})
		if err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		if _, err := db.Exec(`CREATE INDEX ON t (k)`); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsertRow(b *testing.B) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := InsertRow(db, "t", []string{"id", "k", "v"},
			[]Value{Int(int64(i)), Int(int64(i % 100)), Text("payload")})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScan(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT v FROM t WHERE k = 17`)
		if err != nil || len(res.Rows) != 50 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	db := benchDB(b, 5000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT v FROM t WHERE k = 17`)
		if err != nil || len(res.Rows) != 50 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 5000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT k, COUNT(*), MIN(id), MAX(id) FROM t GROUP BY k ORDER BY k`)
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000, false)
	if _, err := db.Exec(`CREATE TABLE names (k INTEGER, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := InsertRow(db, "names", []string{"k", "label"},
			[]Value{Int(int64(i)), Text(fmt.Sprintf("bucket%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`SELECT names.label, COUNT(*) FROM t JOIN names ON t.k = names.k GROUP BY names.label`)
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

// compoundJoinDB builds the planner benchmark fixture: a fact table
// joined against a dimension table through a compound ON clause (equi
// key + residual range), the shape the naive executor answers with an
// O(n*m) nested loop.
func compoundJoinDB(b *testing.B) *DB {
	b.Helper()
	db := benchDB(b, 5000, true)
	if _, err := db.Exec(`CREATE TABLE dim (k INTEGER, tier INTEGER, label TEXT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := InsertRow(db, "dim", []string{"k", "tier", "label"},
			[]Value{Int(int64(i % 100)), Int(int64(i % 5)), Text(fmt.Sprintf("d%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

const compoundJoinQuery = `
	SELECT dim.label, COUNT(*) FROM t
	JOIN dim ON t.k = dim.k AND dim.tier < 3
	WHERE t.id > 100 AND t.k < 50
	GROUP BY dim.label`

func benchmarkCompoundJoin(b *testing.B, mode PlanMode) {
	db := compoundJoinDB(b)
	db.SetPlanMode(mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(compoundJoinQuery)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("%v, %d rows", err, len(res.Rows))
		}
	}
}

// BenchmarkJoinCompoundOnNaive measures the reference executor: the
// compound ON falls to the nested loop, WHERE filters after the join.
func BenchmarkJoinCompoundOnNaive(b *testing.B) { benchmarkCompoundJoin(b, PlanNaive) }

// BenchmarkJoinCompoundOnPlanned measures the planner on the same
// query: pushdown + hash join with residual probe predicates.
func BenchmarkJoinCompoundOnPlanned(b *testing.B) { benchmarkCompoundJoin(b, PlanJoin) }

func BenchmarkParseOnly(b *testing.B) {
	const q = `SELECT a.name, COUNT(DISTINCT x.vuln_id) FROM os a JOIN os_vuln x ON a.id = x.os_id WHERE a.family = 'BSD' AND x.version LIKE '4.%' GROUP BY a.name ORDER BY a.name DESC LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
