package relstore

import "sync/atomic"

// This file defines the statement and expression trees produced by the
// parser and consumed by the executor.

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col TYPE [PRIMARY KEY], ...).
type CreateTableStmt struct {
	Table   string
	Columns []ColumnDef
}

// ColumnDef is one column declaration.
type ColumnDef struct {
	Name       string
	Kind       Kind
	PrimaryKey bool
}

// CreateIndexStmt is CREATE INDEX ON table (col).
type CreateIndexStmt struct {
	Table  string
	Column string
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Table string
}

// InsertStmt is INSERT INTO t (cols) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// SelectStmt is the full SELECT form of the dialect.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderKey
	Limit    int // -1 when absent
}

// SelectItem is one output column: either * (Star), or an expression with
// an optional alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name the query refers to the table by.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is an inner join with its ON condition.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY expression with direction.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause.
type Assignment struct {
	Column string
	Expr   Expr
}

// DeleteStmt is DELETE FROM t [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}

// Expr is any expression node.
type Expr interface{ expr() }

// LiteralExpr is a constant value.
type LiteralExpr struct {
	Value Value
}

// ColumnExpr references a column, optionally qualified ("alias.col").
type ColumnExpr struct {
	Table  string // "" when unqualified
	Column string
}

// BinaryExpr applies an infix operator: comparison, AND, OR.
type BinaryExpr struct {
	Op          string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	Left, Right Expr
}

// NotExpr is logical negation.
type NotExpr struct {
	Inner Expr
}

// InExpr is "expr [NOT] IN (literal, ...)".
type InExpr struct {
	Target Expr
	List   []Expr
	Negate bool
}

// LikeExpr is "expr [NOT] LIKE 'pattern'".
type LikeExpr struct {
	Target  Expr
	Pattern string
	Negate  bool

	// prog caches the compiled wildcard program so each query compiles
	// the pattern once, not once per scanned row.
	prog atomic.Pointer[likeProg]
}

// program returns the compiled pattern, compiling on first use. A lost
// race stores an identical program, so the cache is safe without locks.
func (x *LikeExpr) program() *likeProg {
	if p := x.prog.Load(); p != nil {
		return p
	}
	p := compileLike(x.Pattern)
	x.prog.Store(p)
	return p
}

// PlaceholderExpr is a positional `?` parameter, bound to one of the
// Value arguments of Query/Exec before execution. Index is the 0-based
// position of the `?` in the statement.
type PlaceholderExpr struct {
	Index int
}

// CallExpr is an aggregate call: COUNT/SUM/AVG/MIN/MAX. Star marks
// COUNT(*); Distinct marks COUNT(DISTINCT x).
type CallExpr struct {
	Func     string
	Star     bool
	Distinct bool
	Arg      Expr // nil for COUNT(*)
}

func (*LiteralExpr) expr()     {}
func (*ColumnExpr) expr()      {}
func (*BinaryExpr) expr()      {}
func (*NotExpr) expr()         {}
func (*InExpr) expr()          {}
func (*LikeExpr) expr()        {}
func (*CallExpr) expr()        {}
func (*PlaceholderExpr) expr() {}

// hasAggregate reports whether the expression contains an aggregate call,
// which decides between plain projection and grouped execution.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *CallExpr:
		return true
	case *BinaryExpr:
		return hasAggregate(x.Left) || hasAggregate(x.Right)
	case *NotExpr:
		return hasAggregate(x.Inner)
	case *InExpr:
		return hasAggregate(x.Target)
	case *LikeExpr:
		return hasAggregate(x.Target)
	default:
		return false
	}
}

// HasAggregates reports whether any select item or the HAVING clause
// contains an aggregate call — whether the statement executes grouped.
// A scatter-gather front-end uses this (with GroupBy/Distinct/OrderBy/
// Limit) to refuse statements whose result cannot be reproduced by
// concatenating per-shard row sets.
func (sel *SelectStmt) HasAggregates() bool {
	for _, it := range sel.Items {
		if it.Expr != nil && hasAggregate(it.Expr) {
			return true
		}
	}
	return sel.Having != nil && hasAggregate(sel.Having)
}
