package relstore

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . * ?
	tokOp     // = <> != < <= > >=
)

// keywords recognized by the dialect. Identifiers matching these
// (case-insensitively) lex as tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "DISTINCT": true, "FROM": true, "JOIN": true, "INNER": true,
	"WHERE": true, "GROUP": true, "BY": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "AS": true, "HAVING": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"NULL": true, "TRUE": true, "FALSE": true,
	"PRIMARY": true, "KEY": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// token is one lexeme with its position (byte offset) for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes a statement. Strings use single quotes with ” escaping,
// per standard SQL.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			// Line comment.
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("relstore: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < len(input) {
				d := input[i]
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(input) && isIdentRune(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*' || c == '?' || c == ';':
			if c == ';' {
				i++ // statement terminator, ignored
				continue
			}
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokOp, text: "=", pos: i})
			i++
		case c == '<':
			switch {
			case i+1 < len(input) && input[i+1] == '=':
				toks = append(toks, token{kind: tokOp, text: "<=", pos: i})
				i += 2
			case i+1 < len(input) && input[i+1] == '>':
				toks = append(toks, token{kind: tokOp, text: "<>", pos: i})
				i += 2
			default:
				toks = append(toks, token{kind: tokOp, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokOp, text: ">", pos: i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "<>", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("relstore: stray '!' at offset %d", i)
			}
		default:
			return nil, fmt.Errorf("relstore: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
