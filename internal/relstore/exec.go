package relstore

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

func timeFromUnixNano(n int64) time.Time { return time.Unix(0, n).UTC() }

// evalEnv supplies column values (and, in grouped execution, aggregate
// results) to eval.
type evalEnv interface {
	lookupColumn(table, col string) (Value, error)
	aggregate(c *CallExpr) (Value, bool)
}

// rowEnv binds one row per referenced table.
type rowEnv struct {
	refs    []TableRef
	schemas [][]ColumnDef
	rows    [][]Value
	// unique maps unqualified column names to (table, column) positions;
	// names appearing in several tables are recorded in ambiguous.
	unique    map[string][2]int
	ambiguous map[string]bool
}

func newRowEnv(refs []TableRef, schemas [][]ColumnDef) *rowEnv {
	env := &rowEnv{
		refs:      refs,
		schemas:   schemas,
		rows:      make([][]Value, len(refs)),
		unique:    make(map[string][2]int),
		ambiguous: make(map[string]bool),
	}
	for ti, schema := range schemas {
		for ci, col := range schema {
			if env.ambiguous[col.Name] {
				continue
			}
			if _, dup := env.unique[col.Name]; dup {
				delete(env.unique, col.Name)
				env.ambiguous[col.Name] = true
				continue
			}
			env.unique[col.Name] = [2]int{ti, ci}
		}
	}
	return env
}

func (env *rowEnv) set(tableIdx int, row []Value) { env.rows[tableIdx] = row }

func (env *rowEnv) lookupColumn(tbl, col string) (Value, error) {
	if tbl == "" {
		if env.ambiguous[col] {
			return Value{}, fmt.Errorf("relstore: ambiguous column %q", col)
		}
		pos, ok := env.unique[col]
		if !ok {
			return Value{}, fmt.Errorf("relstore: unknown column %q", col)
		}
		return env.rows[pos[0]][pos[1]], nil
	}
	for ti, ref := range env.refs {
		if ref.Name() != tbl {
			continue
		}
		for ci, c := range env.schemas[ti] {
			if c.Name == col {
				return env.rows[ti][ci], nil
			}
		}
		return Value{}, fmt.Errorf("relstore: table %q has no column %q", tbl, col)
	}
	return Value{}, fmt.Errorf("relstore: unknown table %q", tbl)
}

func (env *rowEnv) aggregate(*CallExpr) (Value, bool) { return Value{}, false }

// checkColumn validates a reference without needing row data.
func (env *rowEnv) checkColumn(tbl, col string) error {
	if tbl == "" {
		if env.ambiguous[col] {
			return fmt.Errorf("relstore: ambiguous column %q", col)
		}
		if _, ok := env.unique[col]; !ok {
			return fmt.Errorf("relstore: unknown column %q", col)
		}
		return nil
	}
	for ti, ref := range env.refs {
		if ref.Name() != tbl {
			continue
		}
		for _, c := range env.schemas[ti] {
			if c.Name == col {
				return nil
			}
		}
		return fmt.Errorf("relstore: table %q has no column %q", tbl, col)
	}
	return fmt.Errorf("relstore: unknown table %q", tbl)
}

// groupEnv evaluates expressions over one group: plain columns resolve on
// the group's first row; aggregate calls resolve to precomputed values.
type groupEnv struct {
	first *rowEnv
	aggs  map[*CallExpr]Value
}

func (g *groupEnv) lookupColumn(tbl, col string) (Value, error) {
	return g.first.lookupColumn(tbl, col)
}

func (g *groupEnv) aggregate(c *CallExpr) (Value, bool) {
	v, ok := g.aggs[c]
	return v, ok
}

// constEnv rejects all columns; used for INSERT value lists.
type constEnv struct{}

func (constEnv) lookupColumn(tbl, col string) (Value, error) {
	return Value{}, fmt.Errorf("relstore: column reference %q not allowed here", col)
}

func (constEnv) aggregate(*CallExpr) (Value, bool) { return Value{}, false }

func evalConst(e Expr) (Value, error) { return eval(e, constEnv{}) }

// truthy converts a value to a WHERE-clause boolean: TRUE is true,
// everything else (FALSE, NULL, other kinds) is false.
func truthy(v Value) bool { return v.Kind() == KindBool && v.AsBool() }

func eval(e Expr, env evalEnv) (Value, error) {
	switch x := e.(type) {
	case *LiteralExpr:
		return x.Value, nil
	case *ColumnExpr:
		return env.lookupColumn(x.Table, x.Column)
	case *NotExpr:
		v, err := eval(x.Inner, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(!truthy(v)), nil
	case *BinaryExpr:
		return evalBinary(x, env)
	case *InExpr:
		target, err := eval(x.Target, env)
		if err != nil {
			return Value{}, err
		}
		found := false
		for _, item := range x.List {
			v, err := eval(item, env)
			if err != nil {
				return Value{}, err
			}
			if target.Equal(v) {
				found = true
				break
			}
		}
		return Bool(found != x.Negate), nil
	case *LikeExpr:
		target, err := eval(x.Target, env)
		if err != nil {
			return Value{}, err
		}
		if target.Kind() != KindText {
			return Bool(false), nil
		}
		return Bool(x.program().match(target.AsText()) != x.Negate), nil
	case *CallExpr:
		if v, ok := env.aggregate(x); ok {
			return v, nil
		}
		return Value{}, fmt.Errorf("relstore: aggregate %s used outside grouped query", x.Func)
	case *PlaceholderExpr:
		return Value{}, fmt.Errorf("relstore: unbound placeholder ?%d (pass arguments to Query/Exec)", x.Index+1)
	default:
		return Value{}, fmt.Errorf("relstore: cannot evaluate %T", e)
	}
}

func evalBinary(x *BinaryExpr, env evalEnv) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := eval(x.Left, env)
		if err != nil {
			return Value{}, err
		}
		if !truthy(l) {
			return Bool(false), nil
		}
		r, err := eval(x.Right, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(truthy(r)), nil
	case "OR":
		l, err := eval(x.Left, env)
		if err != nil {
			return Value{}, err
		}
		if truthy(l) {
			return Bool(true), nil
		}
		r, err := eval(x.Right, env)
		if err != nil {
			return Value{}, err
		}
		return Bool(truthy(r)), nil
	}
	l, err := eval(x.Left, env)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.Right, env)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=":
		return Bool(l.Equal(r)), nil
	case "<>":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		return Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		c := l.Compare(r)
		switch x.Op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	default:
		return Value{}, fmt.Errorf("relstore: unknown operator %q", x.Op)
	}
}

// joinedRows is the working set of a SELECT: one rowEnv snapshot per
// surviving combined row. Envs are materialized as slices of per-table
// rows to keep the hash-join implementation simple.
type joinedRows struct {
	refs    []TableRef
	schemas [][]ColumnDef
	combos  [][][]Value // combos[i][t] = row of table t in combined row i
}

// maxPlannedTables bounds the planner's table bitmask; wider joins
// (never seen in practice) fall back to the reference executor.
const maxPlannedTables = 64

func (db *DB) execSelect(s *SelectStmt) (*Result, error) {
	if db.Plan() == PlanNaive || len(s.Joins)+1 > maxPlannedTables {
		return db.execSelectNaive(s)
	}
	return db.execSelectPlanned(s)
}

// execSelectNaive is the reference SELECT executor: base-table index
// narrowing only without joins, one hash join per bare `L.col = R.col`
// ON clause (nested loop otherwise), WHERE applied after all joins.
// PlanJoin must produce byte-identical results.
func (db *DB) execSelectNaive(s *SelectStmt) (*Result, error) {
	base, ok := db.tables[s.From.Table]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", s.From.Table)
	}
	work := &joinedRows{
		refs:    []TableRef{s.From},
		schemas: [][]ColumnDef{base.cols},
	}
	for _, row := range db.candidateRows(base, s) {
		work.combos = append(work.combos, [][]Value{row})
	}

	for _, join := range s.Joins {
		t, ok := db.tables[join.Table.Table]
		if !ok {
			return nil, fmt.Errorf("relstore: no table %q", join.Table.Table)
		}
		onEnv := newRowEnv(append(append([]TableRef(nil), work.refs...), join.Table),
			append(append([][]ColumnDef(nil), work.schemas...), t.cols))
		if err := validateExpr(join.On, onEnv, nil); err != nil {
			return nil, err
		}
		next, err := db.execJoin(work, join, t)
		if err != nil {
			return nil, err
		}
		work = next
	}

	if err := validateSelect(s, newRowEnv(work.refs, work.schemas)); err != nil {
		return nil, err
	}

	env := newRowEnv(work.refs, work.schemas)
	var filtered [][][]Value
	if s.Where != nil {
		for _, combo := range work.combos {
			env.rows = combo
			v, err := eval(s.Where, env)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				filtered = append(filtered, combo)
			}
		}
	} else {
		filtered = work.combos
	}
	return db.finishSelect(s, work, filtered)
}

// finishSelect is the strategy-independent tail of a SELECT: projection
// or grouping over the surviving combos, DISTINCT, ORDER BY, LIMIT.
func (db *DB) finishSelect(s *SelectStmt, work *joinedRows, filtered [][][]Value) (*Result, error) {
	grouped := len(s.GroupBy) > 0 || s.Having != nil || itemsHaveAggregates(s)
	var (
		res  *Result
		envs []evalEnv
		err  error
	)
	if grouped {
		res, envs, err = db.execGrouped(s, work, filtered)
	} else {
		res, envs, err = db.execPlain(s, work, filtered)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		res, envs = dedupe(res, envs)
	}
	if len(s.OrderBy) > 0 {
		if err := orderResult(s, res, envs); err != nil {
			return nil, err
		}
	}
	if s.Limit >= 0 && len(res.Rows) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

// validateSelect resolves every column reference in the query at plan
// time, so unknown or ambiguous names fail even when no rows flow.
// ORDER BY may additionally reference output aliases.
func validateSelect(s *SelectStmt, env *rowEnv) error {
	aliases := make(map[string]bool, len(s.Items))
	for _, item := range s.Items {
		if item.Alias != "" {
			aliases[item.Alias] = true
		}
		if !item.Star {
			if ce, ok := item.Expr.(*ColumnExpr); ok && ce.Table == "" {
				aliases[ce.Column] = true
			}
		}
	}
	for _, item := range s.Items {
		if item.Star {
			continue
		}
		if err := validateExpr(item.Expr, env, nil); err != nil {
			return err
		}
	}
	if s.Where != nil {
		if err := validateExpr(s.Where, env, nil); err != nil {
			return err
		}
	}
	for _, ge := range s.GroupBy {
		if err := validateExpr(ge, env, nil); err != nil {
			return err
		}
	}
	if s.Having != nil {
		if err := validateExpr(s.Having, env, nil); err != nil {
			return err
		}
	}
	for _, key := range s.OrderBy {
		if err := validateExpr(key.Expr, env, aliases); err != nil {
			return err
		}
	}
	return nil
}

// validateExpr walks an expression, checking that every column reference
// resolves uniquely. Names in extraNames (output aliases) are accepted.
func validateExpr(e Expr, env *rowEnv, extraNames map[string]bool) error {
	switch x := e.(type) {
	case *ColumnExpr:
		if x.Table == "" && extraNames[x.Column] {
			return nil
		}
		return env.checkColumn(x.Table, x.Column)
	case *BinaryExpr:
		if err := validateExpr(x.Left, env, extraNames); err != nil {
			return err
		}
		return validateExpr(x.Right, env, extraNames)
	case *NotExpr:
		return validateExpr(x.Inner, env, extraNames)
	case *InExpr:
		if err := validateExpr(x.Target, env, extraNames); err != nil {
			return err
		}
		for _, item := range x.List {
			if err := validateExpr(item, env, extraNames); err != nil {
				return err
			}
		}
		return nil
	case *LikeExpr:
		return validateExpr(x.Target, env, extraNames)
	case *CallExpr:
		if x.Arg != nil {
			return validateExpr(x.Arg, env, extraNames)
		}
		return nil
	case *PlaceholderExpr:
		// Valid at validation time: the plan cache validates and plans
		// the unbound shape once, and execution always binds arguments
		// before any row flows (eval still rejects an unbound one).
		return nil
	default:
		return nil
	}
}

// candidateRows returns the base table rows, narrowed through a hash
// index when the WHERE clause pins an indexed column to a literal and the
// query has no joins (re-filtering still happens later, so this is purely
// an accelerator).
func (db *DB) candidateRows(t *table, s *SelectStmt) [][]Value {
	if s.Where == nil || len(s.Joins) > 0 {
		return t.rows
	}
	col, val, ok := indexableEquality(s.Where, t)
	if !ok {
		return t.rows
	}
	idx, ok := t.indexes[col]
	if !ok {
		if t.pkCol >= 0 && t.cols[t.pkCol].Name == col {
			if ri, ok := t.pk[val.key()]; ok {
				return t.rows[ri : ri+1]
			}
			return nil
		}
		return t.rows
	}
	positions := idx[val.key()]
	out := make([][]Value, len(positions))
	for i, p := range positions {
		out[i] = t.rows[p]
	}
	return out
}

// indexableEquality finds a top-level `col = literal` conjunct in a WHERE
// clause (descending through ANDs only, where narrowing stays sound).
func indexableEquality(e Expr, t *table) (string, Value, bool) {
	switch x := e.(type) {
	case *BinaryExpr:
		if x.Op == "AND" {
			if col, v, ok := indexableEquality(x.Left, t); ok {
				return col, v, true
			}
			return indexableEquality(x.Right, t)
		}
		if x.Op != "=" {
			return "", Value{}, false
		}
		colExpr, lit := x.Left, x.Right
		if _, isCol := colExpr.(*ColumnExpr); !isCol {
			colExpr, lit = lit, colExpr
		}
		ce, okCol := colExpr.(*ColumnExpr)
		le, okLit := lit.(*LiteralExpr)
		if !okCol || !okLit {
			return "", Value{}, false
		}
		if _, exists := t.colIdx[ce.Column]; !exists {
			return "", Value{}, false
		}
		return ce.Column, le.Value, true
	default:
		return "", Value{}, false
	}
}

// execJoin extends the working set with one inner join, using a hash join
// when the ON clause is a simple equality between one existing column and
// one column of the new table.
func (db *DB) execJoin(work *joinedRows, join JoinClause, t *table) (*joinedRows, error) {
	next := &joinedRows{
		refs:    append(append([]TableRef(nil), work.refs...), join.Table),
		schemas: append(append([][]ColumnDef(nil), work.schemas...), t.cols),
	}
	env := newRowEnv(next.refs, next.schemas)

	leftExpr, rightExpr, hashable := equiJoinSides(join.On, work, join.Table, t)
	if hashable {
		// Build side: hash the new table on its join column.
		build := make(map[string][]int, len(t.rows))
		rightEnv := newRowEnv([]TableRef{join.Table}, [][]ColumnDef{t.cols})
		for ri, row := range t.rows {
			rightEnv.set(0, row)
			v, err := eval(rightExpr, rightEnv)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			build[v.key()] = append(build[v.key()], ri)
		}
		leftEnv := newRowEnv(work.refs, work.schemas)
		for _, combo := range work.combos {
			leftEnv.rows = combo
			v, err := eval(leftExpr, leftEnv)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			for _, ri := range build[v.key()] {
				extended := append(append([][]Value(nil), combo...), t.rows[ri])
				next.combos = append(next.combos, extended)
			}
		}
		return next, nil
	}

	// General nested loop with the full ON predicate.
	for _, combo := range work.combos {
		for _, row := range t.rows {
			extended := append(append([][]Value(nil), combo...), row)
			env.rows = extended
			v, err := eval(join.On, env)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				next.combos = append(next.combos, extended)
			}
		}
	}
	return next, nil
}

// equiJoinSides decomposes an ON clause of the form L.col = R.col where
// exactly one side references the table being joined in. It returns the
// expression bound to the existing working set and the one bound to the
// new table.
func equiJoinSides(on Expr, work *joinedRows, newRef TableRef, t *table) (left, right Expr, ok bool) {
	be, isBin := on.(*BinaryExpr)
	if !isBin || be.Op != "=" {
		return nil, nil, false
	}
	lc, lok := be.Left.(*ColumnExpr)
	rc, rok := be.Right.(*ColumnExpr)
	if !lok || !rok {
		return nil, nil, false
	}
	belongsToNew := func(c *ColumnExpr) bool {
		if c.Table != "" {
			return c.Table == newRef.Name()
		}
		_, inNew := t.colIdx[c.Column]
		if !inNew {
			return false
		}
		// Unqualified: only claim it for the new table when no existing
		// table also has the column.
		for _, schema := range work.schemas {
			for _, col := range schema {
				if col.Name == c.Column {
					return false
				}
			}
		}
		return true
	}
	switch {
	case belongsToNew(rc) && !belongsToNew(lc):
		return lc, rc, true
	case belongsToNew(lc) && !belongsToNew(rc):
		return rc, lc, true
	default:
		return nil, nil, false
	}
}

func itemsHaveAggregates(s *SelectStmt) bool {
	for _, item := range s.Items {
		if !item.Star && hasAggregate(item.Expr) {
			return true
		}
	}
	return false
}

func (db *DB) execPlain(s *SelectStmt, work *joinedRows, combos [][][]Value) (*Result, []evalEnv, error) {
	cols, err := outputColumns(s, work)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Columns: cols}
	var envs []evalEnv
	for _, combo := range combos {
		env := newRowEnv(work.refs, work.schemas)
		env.rows = combo
		row, err := projectRow(s, work, env)
		if err != nil {
			return nil, nil, err
		}
		res.Rows = append(res.Rows, row)
		envs = append(envs, env)
	}
	return res, envs, nil
}

func (db *DB) execGrouped(s *SelectStmt, work *joinedRows, combos [][][]Value) (*Result, []evalEnv, error) {
	cols, err := outputColumns(s, work)
	if err != nil {
		return nil, nil, err
	}
	for _, item := range s.Items {
		if item.Star {
			return nil, nil, fmt.Errorf("relstore: SELECT * cannot be combined with grouping")
		}
	}

	calls := collectCalls(s)
	type group struct {
		firstEnv *rowEnv
		accs     []*aggAccumulator
	}
	groups := make(map[string]*group)
	var order []string

	scratch := newRowEnv(work.refs, work.schemas)
	for _, combo := range combos {
		scratch.rows = combo
		var keyParts []string
		for _, ge := range s.GroupBy {
			v, err := eval(ge, scratch)
			if err != nil {
				return nil, nil, err
			}
			keyParts = append(keyParts, v.key())
		}
		key := strings.Join(keyParts, "\x00")
		g, ok := groups[key]
		if !ok {
			first := newRowEnv(work.refs, work.schemas)
			first.rows = combo
			g = &group{firstEnv: first, accs: make([]*aggAccumulator, len(calls))}
			for i, c := range calls {
				g.accs[i] = newAggAccumulator(c)
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, c := range calls {
			if err := g.accs[i].add(c, scratch); err != nil {
				return nil, nil, err
			}
		}
	}

	// A grouped query with no GROUP BY clause and no input rows still
	// yields one row of aggregates over the empty set.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		g := &group{firstEnv: newRowEnv(work.refs, work.schemas), accs: make([]*aggAccumulator, len(calls))}
		for i, c := range calls {
			g.accs[i] = newAggAccumulator(c)
		}
		groups[""] = g
		order = append(order, "")
	}

	res := &Result{Columns: cols}
	var envs []evalEnv
	for _, key := range order {
		g := groups[key]
		aggs := make(map[*CallExpr]Value, len(calls))
		for i, c := range calls {
			aggs[c] = g.accs[i].result()
		}
		genv := &groupEnv{first: g.firstEnv, aggs: aggs}
		if s.Having != nil {
			v, err := eval(s.Having, genv)
			if err != nil {
				return nil, nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		row := make([]Value, len(s.Items))
		for i, item := range s.Items {
			v, err := eval(item.Expr, genv)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
		envs = append(envs, genv)
	}
	return res, envs, nil
}

// collectCalls gathers every aggregate call in the query in a stable
// order, so accumulators can be matched positionally.
func collectCalls(s *SelectStmt) []*CallExpr {
	var calls []*CallExpr
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *CallExpr:
			calls = append(calls, x)
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *NotExpr:
			walk(x.Inner)
		case *InExpr:
			walk(x.Target)
		case *LikeExpr:
			walk(x.Target)
		}
	}
	for _, item := range s.Items {
		if !item.Star {
			walk(item.Expr)
		}
	}
	if s.Having != nil {
		walk(s.Having)
	}
	for _, key := range s.OrderBy {
		walk(key.Expr)
	}
	return calls
}

// aggAccumulator folds rows into one aggregate value.
type aggAccumulator struct {
	fn       string
	count    int64
	sum      float64
	sumIsInt bool
	intSum   int64
	min, max Value
	distinct map[string]bool
}

func newAggAccumulator(c *CallExpr) *aggAccumulator {
	acc := &aggAccumulator{fn: c.Func, sumIsInt: true}
	if c.Distinct {
		acc.distinct = make(map[string]bool)
	}
	return acc
}

func (a *aggAccumulator) add(c *CallExpr, env evalEnv) error {
	if c.Star {
		a.count++
		return nil
	}
	v, err := eval(c.Arg, env)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if a.distinct != nil {
		k := v.key()
		if a.distinct[k] {
			return nil
		}
		a.distinct[k] = true
	}
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		if !v.numeric() {
			return fmt.Errorf("relstore: %s over non-numeric value %s", a.fn, v)
		}
		if v.Kind() == KindInt {
			a.intSum += v.AsInt()
		} else {
			a.sumIsInt = false
		}
		a.sum += v.AsFloat()
	case "MIN":
		if a.min.IsNull() || v.Compare(a.min) < 0 {
			a.min = v
		}
	case "MAX":
		if a.max.IsNull() || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
	return nil
}

func (a *aggAccumulator) result() Value {
	switch a.fn {
	case "COUNT":
		return Int(a.count)
	case "SUM":
		if a.count == 0 {
			return Null()
		}
		if a.sumIsInt {
			return Int(a.intSum)
		}
		return Float(a.sum)
	case "AVG":
		if a.count == 0 {
			return Null()
		}
		return Float(a.sum / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return Null()
	}
}

// outputColumns names the result columns: aliases win, bare column
// references keep their names, stars expand to the joined schema, and
// anything else is named expr1, expr2, ...
func outputColumns(s *SelectStmt, work *joinedRows) ([]string, error) {
	var out []string
	for i, item := range s.Items {
		switch {
		case item.Star:
			for ti, schema := range work.schemas {
				prefix := ""
				if len(work.schemas) > 1 {
					prefix = work.refs[ti].Name() + "."
				}
				for _, col := range schema {
					out = append(out, prefix+col.Name)
				}
			}
		case item.Alias != "":
			out = append(out, item.Alias)
		default:
			switch x := item.Expr.(type) {
			case *ColumnExpr:
				out = append(out, x.Column)
			case *CallExpr:
				out = append(out, strings.ToLower(x.Func))
			default:
				out = append(out, fmt.Sprintf("expr%d", i+1))
			}
		}
	}
	return out, nil
}

func projectRow(s *SelectStmt, work *joinedRows, env *rowEnv) ([]Value, error) {
	var row []Value
	for _, item := range s.Items {
		if item.Star {
			for ti := range work.schemas {
				row = append(row, env.rows[ti]...)
			}
			continue
		}
		v, err := eval(item.Expr, env)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

func dedupe(res *Result, envs []evalEnv) (*Result, []evalEnv) {
	seen := make(map[string]bool, len(res.Rows))
	out := res.Rows[:0]
	var outEnvs []evalEnv
	for i, row := range res.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.key())
		}
		k := strings.Join(parts, "\x00")
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
		if envs != nil {
			outEnvs = append(outEnvs, envs[i])
		}
	}
	res.Rows = out
	return res, outEnvs
}

// orderResult sorts rows by the ORDER BY keys. Keys are evaluated in each
// row's originating environment; a key that is a bare name matching an
// output column falls back to that column, so aliases are orderable.
func orderResult(s *SelectStmt, res *Result, envs []evalEnv) error {
	colIndex := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		colIndex[c] = i
	}
	keys := make([][]Value, len(res.Rows))
	for i := range res.Rows {
		keys[i] = make([]Value, len(s.OrderBy))
		for j, ok := range s.OrderBy {
			if ce, isCol := ok.Expr.(*ColumnExpr); isCol && ce.Table == "" {
				if ci, found := colIndex[ce.Column]; found {
					keys[i][j] = res.Rows[i][ci]
					continue
				}
			}
			v, err := eval(ok.Expr, envs[i])
			if err != nil {
				return err
			}
			keys[i][j] = v
		}
	}
	idx := make([]int, len(res.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, ok := range s.OrderBy {
			c := keys[idx[a]][j].Compare(keys[idx[b]][j])
			if c == 0 {
				continue
			}
			if ok.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([][]Value, len(res.Rows))
	for i, from := range idx {
		sorted[i] = res.Rows[from]
	}
	res.Rows = sorted
	return nil
}
