package relstore

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DB is an in-memory relational database. It is safe for concurrent use;
// statements take a coarse read or write lock depending on their class.
// Construct with Open (the zero value is not usable).
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	// workers is the SELECT execution parallelism (join probes and
	// post-join filters shard across this many goroutines); <= 1 runs
	// serially. Atomic so SetParallelism can race with in-flight queries.
	workers atomic.Int32
	// planMode selects the SELECT executor (see PlanMode).
	planMode atomic.Int32
	// plans is the shared LRU cache of compiled query plans, keyed on
	// normalized shape (see prepare.go).
	plans *planCache
	// schemaGen counts DDL generations; cached plans carry the
	// generation they were compiled against and are dropped on mismatch.
	schemaGen atomic.Uint64
}

// Option configures a database at Open time.
type Option func(*DB)

// Workers sets the query parallelism, mirroring core.WithParallelism:
// n <= 0 selects GOMAXPROCS, the default (no option) is the serial
// path. Both settings produce byte-identical results.
func Workers(n int) Option {
	return func(db *DB) { db.SetParallelism(n) }
}

// PlanCacheCapacity bounds the shared plan cache at Open time; n <= 0
// selects the default capacity.
func PlanCacheCapacity(n int) Option {
	return func(db *DB) { db.plans.setCapacity(n) }
}

// Open returns an empty database.
func Open(opts ...Option) *DB {
	db := &DB{
		tables: make(map[string]*table),
		plans:  newPlanCache(defaultPlanCacheCapacity),
	}
	for _, opt := range opts {
		opt(db)
	}
	return db
}

// SetPlanCacheCapacity rebounds the plan cache of a live database,
// evicting least-recently-used plans beyond the new capacity.
func (db *DB) SetPlanCacheCapacity(n int) { db.plans.setCapacity(n) }

// PlanCacheStats reports the shared plan cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.stats() }

// PlanCacheEntries snapshots the cached shapes, most recently used
// first, with each plan's reuse count.
func (db *DB) PlanCacheEntries() []PlanCacheEntry { return db.plans.entriesSnapshot() }

// invalidatePlans bumps the schema generation and flushes the plan
// cache. DDL statements call it under db.mu.Lock, so no compilation
// (which requires at least the read lock) can interleave.
func (db *DB) invalidatePlans() {
	db.schemaGen.Add(1)
	db.plans.flush()
}

// InvalidatePlans flushes the shared plan cache and bumps the schema
// generation, forcing every future execution — held Stmts included —
// to recompile. Exposed for corpus epoch swaps, where the server must
// not serve a plan compiled against a retired schema.
func (db *DB) InvalidatePlans() { db.invalidatePlans() }

// SetParallelism changes the query worker count of an existing
// database. n <= 0 selects GOMAXPROCS.
func (db *DB) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	db.workers.Store(int32(n))
}

// Parallelism reports the effective query worker count.
func (db *DB) Parallelism() int {
	if n := int(db.workers.Load()); n > 1 {
		return n
	}
	return 1
}

// PlanMode selects the SELECT execution strategy.
type PlanMode int32

const (
	// PlanJoin (the default) runs the conjunct-aware planner: WHERE
	// conjuncts touching one table push down into its base scan (with
	// index narrowing), compound ON clauses decompose into multi-column
	// hash-join keys plus residual predicates applied during the probe,
	// primary-key and secondary indexes serve as prebuilt build sides,
	// and the probe phase shards across the Workers pool.
	PlanJoin PlanMode = iota
	// PlanNaive is the pre-planner reference executor: single-equality
	// hash joins, nested loops for every compound ON clause, WHERE
	// applied only after all joins. Kept for identity tests and as the
	// benchmark baseline.
	PlanNaive
)

// SetPlanMode switches the SELECT executor. Both modes produce
// byte-identical results; PlanNaive exists as the reference baseline.
func (db *DB) SetPlanMode(m PlanMode) { db.planMode.Store(int32(m)) }

// Plan reports the active SELECT executor.
func (db *DB) Plan() PlanMode { return PlanMode(db.planMode.Load()) }

// table is the storage for one relation.
type table struct {
	name    string
	cols    []ColumnDef
	colIdx  map[string]int
	rows    [][]Value
	pkCol   int // -1 when the table has no primary key
	pk      map[string]int
	indexes map[string]map[string][]int
}

func newTable(name string, cols []ColumnDef) (*table, error) {
	t := &table{
		name:    name,
		cols:    cols,
		colIdx:  make(map[string]int, len(cols)),
		pkCol:   -1,
		indexes: make(map[string]map[string][]int),
	}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("relstore: table %s declares column %s twice", name, c.Name)
		}
		t.colIdx[c.Name] = i
		if c.PrimaryKey {
			if t.pkCol != -1 {
				return nil, fmt.Errorf("relstore: table %s declares two primary keys", name)
			}
			t.pkCol = i
			t.pk = make(map[string]int)
		}
	}
	return t, nil
}

func (t *table) columnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

func (t *table) insert(row []Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("relstore: table %s: row width %d, want %d", t.name, len(row), len(t.cols))
	}
	for i := range row {
		v, err := coerce(row[i], t.cols[i].Kind)
		if err != nil {
			return fmt.Errorf("%w (column %s)", err, t.cols[i].Name)
		}
		row[i] = v
	}
	if t.pkCol != -1 {
		v := row[t.pkCol]
		if v.IsNull() {
			return fmt.Errorf("relstore: table %s: NULL primary key", t.name)
		}
		k := v.key()
		if _, dup := t.pk[k]; dup {
			return fmt.Errorf("relstore: table %s: duplicate primary key %s", t.name, v)
		}
		t.pk[k] = len(t.rows)
	}
	for col, idx := range t.indexes {
		ci := t.colIdx[col]
		k := row[ci].key()
		idx[k] = append(idx[k], len(t.rows))
	}
	t.rows = append(t.rows, row)
	return nil
}

// rebuildDerived reconstructs the primary-key map and all secondary
// indexes after a bulk mutation (UPDATE/DELETE).
func (t *table) rebuildDerived() error {
	if t.pkCol != -1 {
		t.pk = make(map[string]int, len(t.rows))
		for i, row := range t.rows {
			k := row[t.pkCol].key()
			if _, dup := t.pk[k]; dup {
				return fmt.Errorf("relstore: table %s: duplicate primary key %s after update", t.name, row[t.pkCol])
			}
			t.pk[k] = i
		}
	}
	for col := range t.indexes {
		ci := t.colIdx[col]
		idx := make(map[string][]int, len(t.rows))
		for i, row := range t.rows {
			k := row[ci].key()
			idx[k] = append(idx[k], i)
		}
		t.indexes[col] = idx
	}
	return nil
}

// Result is the output of a query: column headers and rows.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Exec runs a statement that does not produce rows (DDL and DML). It
// returns the number of affected rows (0 for DDL). `?` placeholders in
// the statement bind positionally to args.
func (db *DB) Exec(sql string, args ...Value) (int, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	return db.ExecStmt(stmt, args...)
}

// ExecStmt is Exec for a pre-parsed statement, letting hot ingestion
// loops skip re-parsing. Binding placeholder arguments never mutates
// stmt, so one parsed statement may execute concurrently with
// different args.
func (db *DB) ExecStmt(stmt Statement, args ...Value) (int, error) {
	stmt, err := bindStatement(stmt, args)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return 0, db.createTable(s)
	case *CreateIndexStmt:
		return 0, db.createIndex(s)
	case *DropTableStmt:
		return 0, db.dropTable(s)
	case *InsertStmt:
		return db.insert(s)
	case *UpdateStmt:
		return db.update(s)
	case *DeleteStmt:
		return db.delete(s)
	case *SelectStmt:
		return 0, fmt.Errorf("relstore: use Query for SELECT")
	default:
		return 0, fmt.Errorf("relstore: unsupported statement %T", stmt)
	}
}

// Query runs a SELECT and returns its result set. `?` placeholders in
// the statement bind positionally to args (the typed-Value path, so
// caller-supplied text never needs quoting). The statement compiles
// through the shared plan cache: its text normalizes to a shape
// (literals canonicalized to placeholders) and the shape's parsed AST
// and plan are reused across calls; execution binds the literals plus
// args onto copy-on-write clones. PlanNaive bypasses the cache and runs
// the uncached reference path.
func (db *DB) Query(sql string, args ...Value) (*Result, error) {
	if db.Plan() == PlanNaive {
		return db.queryUncached(sql, args...)
	}
	shape, slots, err := normalizeSQL(sql)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, err := db.compiled(shape)
	if err != nil {
		return nil, err
	}
	if n := countUserSlots(slots); n != len(args) {
		return nil, fmt.Errorf("relstore: statement has %d placeholders, got %d arguments", n, len(args))
	}
	return db.execCompiled(c, mergeSlots(slots, args))
}

// queryUncached is the reference query path: parse, bind and plan on
// every call, never touching the plan cache. PlanNaive runs through it,
// and the identity tests compare it against the cached path.
func (db *DB) queryUncached(sql string, args ...Value) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	stmt, err = bindStatement(stmt, args)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relstore: Query needs a SELECT, got %T", stmt)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.execSelect(sel)
}

// QueryInt runs a single-value SELECT (for example a COUNT) and returns
// the cell as an int64.
func (db *DB) QueryInt(sql string, args ...Value) (int64, error) {
	res, err := db.Query(sql, args...)
	if err != nil {
		return 0, err
	}
	return resultInt(res)
}

// resultInt extracts the single int cell of a one-cell result.
func resultInt(res *Result) (int64, error) {
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("relstore: QueryInt got %dx%d result", len(res.Rows), len(res.Columns))
	}
	v := res.Rows[0][0]
	switch v.Kind() {
	case KindInt:
		return v.AsInt(), nil
	case KindFloat:
		return int64(v.AsFloat()), nil
	default:
		return 0, fmt.Errorf("relstore: QueryInt got %s value", v.Kind())
	}
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", tableName)
	}
	return len(t.rows), nil
}

func (db *DB) createTable(s *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[s.Table]; exists {
		return fmt.Errorf("relstore: table %q already exists", s.Table)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("relstore: table %q has no columns", s.Table)
	}
	t, err := newTable(s.Table, s.Columns)
	if err != nil {
		return err
	}
	db.tables[s.Table] = t
	db.invalidatePlans()
	return nil
}

func (db *DB) createIndex(s *CreateIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return fmt.Errorf("relstore: no table %q", s.Table)
	}
	ci, ok := t.colIdx[s.Column]
	if !ok {
		return fmt.Errorf("relstore: table %s has no column %q", s.Table, s.Column)
	}
	if _, exists := t.indexes[s.Column]; exists {
		return nil // idempotent
	}
	idx := make(map[string][]int, len(t.rows))
	for i, row := range t.rows {
		k := row[ci].key()
		idx[k] = append(idx[k], i)
	}
	t.indexes[s.Column] = idx
	db.invalidatePlans()
	return nil
}

func (db *DB) dropTable(s *DropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Table]; !ok {
		return fmt.Errorf("relstore: no table %q", s.Table)
	}
	delete(db.tables, s.Table)
	db.invalidatePlans()
	return nil
}

func (db *DB) insert(s *InsertStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", s.Table)
	}
	targets := make([]int, len(s.Columns))
	for i, col := range s.Columns {
		ci, ok := t.colIdx[col]
		if !ok {
			return 0, fmt.Errorf("relstore: table %s has no column %q", s.Table, col)
		}
		targets[i] = ci
	}
	n := 0
	for _, exprRow := range s.Rows {
		row := make([]Value, len(t.cols))
		for i, e := range exprRow {
			v, err := evalConst(e)
			if err != nil {
				return n, err
			}
			row[targets[i]] = v
		}
		if err := t.insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (db *DB) update(s *UpdateStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", s.Table)
	}
	env := newRowEnv([]TableRef{{Table: s.Table}}, [][]ColumnDef{t.cols})
	n := 0
	for i, row := range t.rows {
		env.set(0, row)
		match := true
		if s.Where != nil {
			v, err := eval(s.Where, env)
			if err != nil {
				return n, err
			}
			match = truthy(v)
		}
		if !match {
			continue
		}
		for _, asg := range s.Set {
			ci, ok := t.colIdx[asg.Column]
			if !ok {
				return n, fmt.Errorf("relstore: table %s has no column %q", s.Table, asg.Column)
			}
			v, err := eval(asg.Expr, env)
			if err != nil {
				return n, err
			}
			cv, err := coerce(v, t.cols[ci].Kind)
			if err != nil {
				return n, fmt.Errorf("%w (column %s)", err, asg.Column)
			}
			t.rows[i][ci] = cv
		}
		n++
	}
	if n > 0 {
		if err := t.rebuildDerived(); err != nil {
			return n, err
		}
	}
	return n, nil
}

func (db *DB) delete(s *DeleteStmt) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return 0, fmt.Errorf("relstore: no table %q", s.Table)
	}
	env := newRowEnv([]TableRef{{Table: s.Table}}, [][]ColumnDef{t.cols})
	kept := t.rows[:0]
	n := 0
	for _, row := range t.rows {
		match := true
		if s.Where != nil {
			env.set(0, row)
			v, err := eval(s.Where, env)
			if err != nil {
				return 0, err
			}
			match = truthy(v)
		}
		if match {
			n++
			continue
		}
		kept = append(kept, row)
	}
	t.rows = kept
	if n > 0 {
		if err := t.rebuildDerived(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// gobTable is the persisted form of a table.
type gobTable struct {
	Name    string
	Cols    []ColumnDef
	Rows    [][]gobValue
	Indexed []string
}

// gobValue flattens Value for encoding/gob (whose encoder needs exported
// fields).
type gobValue struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
	T    int64 // UnixNano; valid when Kind == KindTime
}

func toGob(v Value) gobValue {
	g := gobValue{Kind: v.kind, I: v.i, F: v.f, S: v.s, B: v.b}
	if v.kind == KindTime {
		g.T = v.t.UnixNano()
	}
	return g
}

func fromGob(g gobValue) Value {
	v := Value{kind: g.Kind, i: g.I, f: g.F, s: g.S, b: g.B}
	if g.Kind == KindTime {
		v.t = timeFromUnixNano(g.T)
	}
	return v
}

// Save persists the database to a gzip-compressed gob file.
func (db *DB) Save(path string) (err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("relstore: save close: %w", cerr)
		}
	}()
	gz := gzip.NewWriter(f)
	defer func() {
		if cerr := gz.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("relstore: save gzip close: %w", cerr)
		}
	}()
	enc := gob.NewEncoder(gz)
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := enc.Encode(len(names)); err != nil {
		return fmt.Errorf("relstore: save: %w", err)
	}
	for _, name := range names {
		t := db.tables[name]
		gt := gobTable{Name: t.name, Cols: t.cols}
		gt.Rows = make([][]gobValue, len(t.rows))
		for i, row := range t.rows {
			grow := make([]gobValue, len(row))
			for j, v := range row {
				grow[j] = toGob(v)
			}
			gt.Rows[i] = grow
		}
		for col := range t.indexes {
			gt.Indexed = append(gt.Indexed, col)
		}
		sort.Strings(gt.Indexed)
		if err := enc.Encode(gt); err != nil {
			return fmt.Errorf("relstore: save table %s: %w", name, err)
		}
	}
	return nil
}

// Load reads a database written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	defer gz.Close()
	dec := gob.NewDecoder(gz)
	var n int
	if err := dec.Decode(&n); err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	db := Open()
	for i := 0; i < n; i++ {
		var gt gobTable
		if err := dec.Decode(&gt); err != nil {
			return nil, fmt.Errorf("relstore: load table %d: %w", i, err)
		}
		t, err := newTable(gt.Name, gt.Cols)
		if err != nil {
			return nil, err
		}
		for _, grow := range gt.Rows {
			row := make([]Value, len(grow))
			for j, g := range grow {
				row[j] = fromGob(g)
			}
			if err := t.insert(row); err != nil {
				return nil, fmt.Errorf("relstore: load table %s: %w", gt.Name, err)
			}
		}
		db.tables[gt.Name] = t
		for _, col := range gt.Indexed {
			if err := db.createIndexLocked(t, col); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func (db *DB) createIndexLocked(t *table, col string) error {
	ci, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: table %s has no column %q", t.name, col)
	}
	idx := make(map[string][]int, len(t.rows))
	for i, row := range t.rows {
		k := row[ci].key()
		idx[k] = append(idx[k], i)
	}
	t.indexes[col] = idx
	return nil
}
