package relstore

import (
	"fmt"
	"testing"
)

// plannerFixture builds a three-table fixture with enough rows, skew
// and NULLs to exercise every planner path: indexes, primary keys,
// duplicate join keys, NULL join keys and NULL filter columns.
func plannerFixture(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE ev (id INTEGER PRIMARY KEY, os_id INTEGER, sev INTEGER, tag TEXT)`)
	mustExec(t, db, `CREATE TABLE osd (id INTEGER PRIMARY KEY, name TEXT, family TEXT, tier INTEGER)`)
	mustExec(t, db, `CREATE TABLE link (a INTEGER, b INTEGER, w INTEGER)`)
	families := []string{"BSD", "Linux", "Windows", "Solaris"}
	for i := 0; i < 12; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO osd (id, name, family, tier) VALUES (%d, 'os%d', '%s', %d)`,
			i, i, families[i%len(families)], i%3))
	}
	for i := 0; i < 400; i++ {
		osID := fmt.Sprint(i % 12)
		if i%17 == 0 {
			osID = "NULL" // NULL join keys must match nothing
		}
		tag := fmt.Sprintf("'t%d'", i%7)
		if i%13 == 0 {
			tag = "NULL"
		}
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO ev (id, os_id, sev, tag) VALUES (%d, %s, %d, %s)`,
			i, osID, i%10, tag))
	}
	for i := 0; i < 120; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO link (a, b, w) VALUES (%d, %d, %d)`, i%12, (i*5)%12, i%4))
	}
	mustExec(t, db, `CREATE INDEX ON ev (os_id)`)
	mustExec(t, db, `CREATE INDEX ON link (a)`)
	return db
}

// plannerQueries are the shapes the planner must answer byte-identically
// to the naive reference executor.
var plannerQueries = []string{
	// Single table, pushdown with and without index.
	`SELECT id FROM ev WHERE os_id = 3 AND sev > 4 ORDER BY id`,
	`SELECT id FROM ev WHERE sev = 2 AND tag = 't1'`,
	`SELECT id FROM ev WHERE os_id = NULL`,
	`SELECT COUNT(*) FROM ev WHERE tag LIKE 't%' AND sev < 8`,
	// Bare equi join (the shape the naive path also hash-joins).
	`SELECT osd.name, COUNT(*) FROM ev JOIN osd ON ev.os_id = osd.id GROUP BY osd.name ORDER BY osd.name`,
	// Compound ON: equi key + residual comparison (naive: nested loop).
	`SELECT e.id, o.name FROM ev e JOIN osd o ON e.os_id = o.id AND e.sev > o.tier ORDER BY e.id, o.name`,
	// ON conjunct local to the joined table (build-side filter).
	`SELECT e.id FROM ev e JOIN osd o ON e.os_id = o.id AND o.family = 'BSD' ORDER BY e.id`,
	// Single-table WHERE conjuncts under a join: pushdown both sides.
	`SELECT e.id, o.name FROM ev e JOIN osd o ON e.os_id = o.id
	 WHERE o.family = 'Linux' AND e.sev >= 5 ORDER BY e.id`,
	// Multi-table WHERE conjunct: attaches to the probe of its join.
	`SELECT COUNT(*) FROM ev e JOIN osd o ON e.os_id = o.id WHERE e.sev > o.tier AND o.tier < 2`,
	// No usable equality at all: filtered nested loop.
	`SELECT COUNT(*) FROM osd o JOIN link l ON o.id < l.a WHERE l.w = 1`,
	// Three tables, self-join through link, compound ONs, grouping.
	`SELECT oa.name, ob.name, COUNT(*) AS n
	 FROM link JOIN osd oa ON link.a = oa.id JOIN osd ob ON link.b = ob.id AND oa.id < ob.id
	 GROUP BY oa.name, ob.name ORDER BY n DESC, oa.name, ob.name`,
	// The vulndb Table III shape: self-join + satellite filters.
	`SELECT oa.name, ob.name, COUNT(DISTINCT x.id) AS n
	 FROM ev x JOIN ev y ON x.os_id = y.os_id AND x.id < y.id
	 JOIN osd oa ON x.os_id = oa.id JOIN osd ob ON y.os_id = ob.id
	 WHERE x.sev > 2 AND y.sev > 2
	 GROUP BY oa.name, ob.name ORDER BY oa.name, ob.name`,
	// Multi-column equi key.
	`SELECT COUNT(*) FROM link x JOIN link y ON x.a = y.a AND x.b = y.b`,
	// DISTINCT / HAVING / LIMIT tails on a planned join.
	`SELECT DISTINCT o.family FROM ev e JOIN osd o ON e.os_id = o.id ORDER BY o.family`,
	`SELECT o.family, COUNT(*) AS n FROM ev e JOIN osd o ON e.os_id = o.id
	 GROUP BY o.family HAVING COUNT(*) > 50 ORDER BY n DESC LIMIT 2`,
}

func resultsEqual(a, b *Result) bool {
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.Kind() != bv.Kind() || av.key() != bv.key() {
				return false
			}
		}
	}
	return true
}

// TestPlannerMatchesNaive is the executor identity suite: every planner
// feature produces byte-identical rows (values and order) to the
// reference executor, at worker counts 1 and 4.
func TestPlannerMatchesNaive(t *testing.T) {
	db := plannerFixture(t)
	for _, q := range plannerQueries {
		db.SetPlanMode(PlanNaive)
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("naive Query(%q): %v", q, err)
		}
		db.SetPlanMode(PlanJoin)
		for _, workers := range []int{1, 4} {
			db.SetParallelism(workers)
			got, err := db.Query(q)
			if err != nil {
				t.Fatalf("planned Query(%q) workers=%d: %v", q, workers, err)
			}
			if !resultsEqual(want, got) {
				t.Errorf("planner diverges on %q (workers=%d):\nnaive   %v\nplanned %v",
					q, workers, want.Rows, got.Rows)
			}
		}
	}
}

// TestCompositeKeyNoCrossBoundaryCollision: multi-column join keys are
// length-prefixed, so TEXT values containing the separator byte cannot
// smear across component boundaries and produce spurious matches.
func TestCompositeKeyNoCrossBoundaryCollision(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE x (a TEXT, b TEXT)`)
	mustExec(t, db, `CREATE TABLE y (a TEXT, b TEXT)`)
	// ("p\x00tq", "r") vs ("p", "q\x00tr"): a naive \x00-joined key
	// serializes both sides identically although neither column matches.
	if err := InsertRow(db, "x", []string{"a", "b"}, []Value{Text("p\x00tq"), Text("r")}); err != nil {
		t.Fatal(err)
	}
	if err := InsertRow(db, "y", []string{"a", "b"}, []Value{Text("p"), Text("q\x00tr")}); err != nil {
		t.Fatal(err)
	}
	// And one genuine match, to prove the join still joins.
	if err := InsertRow(db, "x", []string{"a", "b"}, []Value{Text("k\x001"), Text("v")}); err != nil {
		t.Fatal(err)
	}
	if err := InsertRow(db, "y", []string{"a", "b"}, []Value{Text("k\x001"), Text("v")}); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT COUNT(*) FROM x JOIN y ON x.a = y.a AND x.b = y.b`
	for _, mode := range []PlanMode{PlanJoin, PlanNaive} {
		db.SetPlanMode(mode)
		n, err := db.QueryInt(q)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if n != 1 {
			t.Errorf("mode %d matched %d rows, want 1", mode, n)
		}
	}
}

// TestPlannerErrorsMatchNaive: malformed queries fail under both
// executors (validation runs before any scan).
func TestPlannerErrorsMatchNaive(t *testing.T) {
	db := plannerFixture(t)
	bad := []string{
		`SELECT nosuch FROM ev JOIN osd ON ev.os_id = osd.id`,
		`SELECT id FROM ev JOIN nosuch ON ev.os_id = nosuch.id`,
		`SELECT ev.id FROM ev JOIN osd ON ev.os_id = link.a`, // later table in ON
		`SELECT id FROM ev JOIN osd ON ev.os_id = osd.id`,    // ambiguous id
	}
	for _, q := range bad {
		for _, mode := range []PlanMode{PlanJoin, PlanNaive} {
			db.SetPlanMode(mode)
			if _, err := db.Query(q); err == nil {
				t.Errorf("mode %d accepted %q", mode, q)
			}
		}
	}
	db.SetPlanMode(PlanJoin)
}

func TestPlaceholderBinding(t *testing.T) {
	db := plannerFixture(t)
	n, err := db.QueryInt(`SELECT COUNT(*) FROM ev WHERE os_id = ? AND sev > ?`, Int(3), Int(4))
	if err != nil {
		t.Fatalf("placeholder query: %v", err)
	}
	want, _ := db.QueryInt(`SELECT COUNT(*) FROM ev WHERE os_id = 3 AND sev > 4`)
	if n != want {
		t.Fatalf("placeholder count = %d, want %d", n, want)
	}

	// Quote-bearing text flows through the typed path without escaping.
	mustExec(t, db, `CREATE TABLE s (v TEXT)`)
	hostile := `O'Brien'); DROP TABLE s; --`
	if _, err := db.Exec(`INSERT INTO s (v) VALUES (?)`, Text(hostile)); err != nil {
		t.Fatalf("insert with quoted arg: %v", err)
	}
	res, err := db.Query(`SELECT v FROM s WHERE v = ?`, Text(hostile))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsText() != hostile {
		t.Fatalf("quoted roundtrip = %v, %v", res, err)
	}
	if _, ok := db.tables["s"]; !ok {
		t.Fatal("table s gone: injection through parameter")
	}

	// Placeholders work in IN lists, UPDATE and DELETE.
	cnt, err := db.QueryInt(`SELECT COUNT(*) FROM ev WHERE sev IN (?, ?)`, Int(1), Int(2))
	if err != nil {
		t.Fatalf("IN placeholders: %v", err)
	}
	if want, _ := db.QueryInt(`SELECT COUNT(*) FROM ev WHERE sev IN (1, 2)`); cnt != want {
		t.Fatalf("IN placeholder count = %d, want %d", cnt, want)
	}
	if _, err := db.Exec(`UPDATE s SET v = ? WHERE v = ?`, Text("clean"), Text(hostile)); err != nil {
		t.Fatalf("UPDATE placeholders: %v", err)
	}
	if _, err := db.Exec(`DELETE FROM s WHERE v = ?`, Text("clean")); err != nil {
		t.Fatalf("DELETE placeholders: %v", err)
	}
	if n, _ := db.RowCount("s"); n != 0 {
		t.Fatalf("DELETE left %d rows", n)
	}
}

func TestPlaceholderArgCountMismatch(t *testing.T) {
	db := plannerFixture(t)
	if _, err := db.Query(`SELECT id FROM ev WHERE os_id = ?`); err == nil {
		t.Error("missing argument accepted")
	}
	if _, err := db.Query(`SELECT id FROM ev WHERE os_id = ?`, Int(1), Int(2)); err == nil {
		t.Error("extra argument accepted")
	}
	if _, err := db.Query(`SELECT id FROM ev WHERE os_id = 1`, Int(1)); err == nil {
		t.Error("argument without placeholder accepted")
	}
}

// TestPreparedStatementRebinding: one parsed statement executes with
// different arguments without mutation (binding is copy-on-write).
func TestPreparedStatementRebinding(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (k INTEGER, v TEXT)`)
	stmt, err := Parse(`INSERT INTO t (k, v) VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.ExecStmt(stmt, Int(int64(i)), Text(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("ExecStmt #%d: %v", i, err)
		}
	}
	res := mustQuery(t, db, `SELECT k, v FROM t ORDER BY k`)
	if len(res.Rows) != 5 || res.Rows[3][1].AsText() != "v3" {
		t.Fatalf("rebinding broke inserts: %v", res.Rows)
	}
	// The original statement still holds its placeholders.
	if n := countStmtPlaceholders(stmt); n != 2 {
		t.Fatalf("prepared statement mutated: %d placeholders left", n)
	}
}

func TestLikeRuneAware(t *testing.T) {
	tests := []struct {
		s, pat string
		want   bool
	}{
		{"café", "caf_", true},   // _ matches one rune, not one byte
		{"café", "caf__", false}, // ... so two _ overshoot
		{"日本語", "___", true},
		{"日本語", "日%", true},
		{"日本語", "%語", true},
		{"naïve", "na_ve", true},
		{"aéc", "a%c", true},
		{"", "_", false},
		{"x", "_", true},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.pat); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.pat, got, tt.want)
		}
	}
}

// TestLikeMatchAllocFree: matching a compiled pattern allocates nothing
// (the per-row DP rows of the old implementation are gone).
func TestLikeMatchAllocFree(t *testing.T) {
	prog := compileLike("CVE-____-46%")
	if n := testing.AllocsPerRun(200, func() {
		if !prog.match("CVE-2008-4609") {
			t.Fatal("pattern must match")
		}
	}); n != 0 {
		t.Fatalf("match allocates %.1f objects per run, want 0", n)
	}
}

// TestLikeCompiledOncePerStatement: the program caches on the parsed
// LikeExpr, so scanning N rows compiles the pattern once.
func TestLikeCompiledOncePerStatement(t *testing.T) {
	stmt, err := Parse(`SELECT v FROM s WHERE v LIKE 'a%'`)
	if err != nil {
		t.Fatal(err)
	}
	like := stmt.(*SelectStmt).Where.(*LikeExpr)
	p1 := like.program()
	p2 := like.program()
	if p1 != p2 {
		t.Fatal("program recompiled on second use")
	}
}

// TestWorkersOptionAndParallelism covers the Workers/SetParallelism
// surface mirroring core.WithParallelism.
func TestWorkersOptionAndParallelism(t *testing.T) {
	db := Open(Workers(4))
	if db.Parallelism() != 4 {
		t.Fatalf("Parallelism = %d after Workers(4)", db.Parallelism())
	}
	db.SetParallelism(0)
	if db.Parallelism() < 1 {
		t.Fatal("SetParallelism(0) must select at least one worker")
	}
	if Open().Parallelism() != 1 {
		t.Fatal("default parallelism must be 1")
	}
}
