package relstore

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Prepared statements and the normalized-shape plan cache.
//
// Query and Prepare share one compilation path: the SQL text normalizes
// into a *shape* — literals replaced by `?` placeholders, whitespace
// and comments canonicalized — and the shape's parsed AST plus compiled
// plan live once in the database's shared LRU plan cache. Execution
// merges the extracted literals with any caller-supplied `?` arguments
// and binds them onto copy-on-write clones of the cached statement and
// plan, so one compilation serves every literal variant of the same
// shape, concurrently, with index narrowing intact (bound placeholders
// become LiteralExprs before the scan accelerators look for them).

// argSlot describes one placeholder position of a normalized shape:
// either a literal extracted from the original text or a user-supplied
// `?` to be filled from the call's arguments.
type argSlot struct {
	lit  Value
	user bool
}

// compiledQuery is one plan-cache entry: the parsed statement and
// compiled plan of a normalized shape. The cached trees are never
// mutated after publication. plan is nil when the query is too wide for
// the planner's table bitmask (execution falls back to the naive
// executor). gen is the schema generation the plan was compiled
// against; hits counts reuses of this entry.
type compiledQuery struct {
	shape string
	sel   *SelectStmt
	plan  *selectPlan
	gen   uint64
	hits  atomic.Uint64
}

// normalizeSQL lexes a statement and canonicalizes it into its shape:
// number and string literals become `?` placeholders (recorded as typed
// slots), existing `?` markers are recorded as user slots, and the
// remaining tokens re-join space-separated. The token after LIMIT or
// LIKE stays literal — the grammar wants a raw number or pattern there,
// not an expression. The shape doubles as the cache key and as
// parseable SQL: the token stream of the shape is isomorphic to the
// original's, so it parses (or fails) exactly like the original.
func normalizeSQL(sql string) (string, []argSlot, error) {
	toks, err := lex(sql)
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	var slots []argSlot
	keepNext := false
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		keep := keepNext
		keepNext = t.kind == tokKeyword && (t.text == "LIMIT" || t.text == "LIKE")
		switch t.kind {
		case tokNumber:
			v, ok := numberValue(t.text)
			if keep || !ok {
				// Raw LIMIT operand, or a malformed number kept verbatim
				// so Parse reports the same error the original would.
				sb.WriteString(t.text)
				continue
			}
			sb.WriteByte('?')
			slots = append(slots, argSlot{lit: v})
		case tokString:
			if keep {
				sb.WriteByte('\'')
				sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
				sb.WriteByte('\'')
				continue
			}
			sb.WriteByte('?')
			slots = append(slots, argSlot{lit: Text(t.text)})
		default:
			sb.WriteString(t.text)
			if t.kind == tokSymbol && t.text == "?" {
				slots = append(slots, argSlot{user: true})
			}
		}
	}
	return sb.String(), slots, nil
}

// numberValue types a number token exactly like parsePrimary: a dot
// makes a float, anything else an int64.
func numberValue(text string) (Value, bool) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, false
		}
		return Float(f), true
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Value{}, false
	}
	return Int(n), true
}

// countUserSlots reports how many `?` arguments the caller must supply.
func countUserSlots(slots []argSlot) int {
	n := 0
	for _, s := range slots {
		if s.user {
			n++
		}
	}
	return n
}

// mergeSlots interleaves the extracted literals with the caller's
// arguments in slot order, producing the full positional argument list
// of the shape. The caller has already checked the argument count.
func mergeSlots(slots []argSlot, args []Value) []Value {
	if len(slots) == 0 {
		return nil
	}
	full := make([]Value, len(slots))
	ai := 0
	for i, s := range slots {
		if s.user {
			full[i] = args[ai]
			ai++
		} else {
			full[i] = s.lit
		}
	}
	return full
}

// compiled returns the cached compilation of a shape, compiling and
// publishing it on a miss. Callers must hold db.mu (read or write): the
// lock excludes DDL, so a fresh compilation is always of the current
// schema generation. Parse and plan errors are returned uncached.
func (db *DB) compiled(shape string) (*compiledQuery, error) {
	gen := db.schemaGen.Load()
	if c := db.plans.get(shape, gen); c != nil {
		return c, nil
	}
	stmt, err := Parse(shape)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relstore: Query needs a SELECT, got %T", stmt)
	}
	c := &compiledQuery{shape: shape, sel: sel, gen: gen}
	if len(sel.Joins)+1 <= maxPlannedTables {
		if c.plan, err = db.planSelect(sel); err != nil {
			return nil, err
		}
	}
	db.plans.put(c)
	return c, nil
}

// execCompiled executes a cached compilation with the full (merged)
// argument list. Both the statement and the plan bind copy-on-write, so
// the cached trees stay shareable. Callers hold db.mu.RLock.
func (db *DB) execCompiled(c *compiledQuery, args []Value) (*Result, error) {
	stmt, err := bindStatement(c.sel, args)
	if err != nil {
		return nil, err
	}
	sel := stmt.(*SelectStmt)
	if db.Plan() == PlanNaive || c.plan == nil {
		return db.execSelectNaive(sel)
	}
	return db.execPlanned(sel, bindPlanExprs(c.plan, args))
}

// bindPlanExprs substitutes placeholders throughout a plan's expression
// slices, copy-on-write like bindStatement: untouched slices (and the
// whole plan, when there are no arguments) are shared with the cache.
func bindPlanExprs(p *selectPlan, args []Value) *selectPlan {
	if len(args) == 0 {
		return p
	}
	c := *p
	c.basePreds = bindExprSlice(p.basePreds, args)
	c.residual = bindExprSlice(p.residual, args)
	c.joins = append([]joinPlan(nil), p.joins...)
	for i := range c.joins {
		jp := &c.joins[i]
		jp.leftKeys = bindExprSlice(jp.leftKeys, args)
		jp.rightKeys = bindExprSlice(jp.rightKeys, args)
		jp.buildFilter = bindExprSlice(jp.buildFilter, args)
		jp.residual = bindExprSlice(jp.residual, args)
	}
	return &c
}

// bindExprSlice binds each expression of a slice, copying the slice
// only when some element actually changes.
func bindExprSlice(es []Expr, args []Value) []Expr {
	out := es
	copied := false
	for i, e := range es {
		if b := bindExpr(e, args); b != e {
			if !copied {
				out = append([]Expr(nil), es...)
				copied = true
			}
			out[i] = b
		}
	}
	return out
}

// Stmt is a prepared statement: one normalized SELECT shape bound to a
// database, executable any number of times with different arguments.
// Safe for concurrent use; after DDL or an InvalidatePlans call the
// statement transparently recompiles through the shared cache.
type Stmt struct {
	db    *DB
	shape string
	slots []argSlot
	nUser int
	c     atomic.Pointer[compiledQuery]
}

// Prepare normalizes, parses and plans a SELECT once, returning a
// statement that executes the compilation with per-call arguments.
// Non-SELECT statements are rejected (use Exec/ExecStmt for DML).
func (db *DB) Prepare(sql string) (*Stmt, error) {
	shape, slots, err := normalizeSQL(sql)
	if err != nil {
		return nil, err
	}
	st := &Stmt{db: db, shape: shape, slots: slots, nUser: countUserSlots(slots)}
	db.mu.RLock()
	c, err := db.compiled(shape)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	st.c.Store(c)
	return st, nil
}

// Query executes the prepared statement. args fill the statement's `?`
// placeholders positionally; literals baked into the prepared text are
// re-bound from the shape's slots on every call.
func (s *Stmt) Query(args ...Value) (*Result, error) {
	if len(args) != s.nUser {
		return nil, fmt.Errorf("relstore: statement has %d placeholders, got %d arguments", s.nUser, len(args))
	}
	full := mergeSlots(s.slots, args)
	db := s.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	c := s.c.Load()
	if c == nil || c.gen != db.schemaGen.Load() {
		var err error
		if c, err = db.compiled(s.shape); err != nil {
			return nil, err
		}
		s.c.Store(c)
	} else {
		// Fast path: the held compilation is current; count the reuse.
		c.hits.Add(1)
		db.plans.hits.Add(1)
	}
	return db.execCompiled(c, full)
}

// QueryInt runs a single-cell prepared SELECT (for example a COUNT) and
// returns the cell as an int64, mirroring DB.QueryInt.
func (s *Stmt) QueryInt(args ...Value) (int64, error) {
	res, err := s.Query(args...)
	if err != nil {
		return 0, err
	}
	return resultInt(res)
}
