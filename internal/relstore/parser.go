package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement in the relstore dialect.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
	// params counts `?` placeholders seen so far; each gets the next
	// ordinal position.
	params int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when text
// is non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a token or fails with a located error.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{
			tokIdent: "identifier", tokNumber: "number", tokString: "string",
		}[kind]
	}
	return token{}, p.errorf("expected %s, found %s", want, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("relstore: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.accept(tokKeyword, "CREATE"):
		switch {
		case p.accept(tokKeyword, "TABLE"):
			return p.parseCreateTable()
		case p.accept(tokKeyword, "INDEX"):
			return p.parseCreateIndex()
		default:
			return nil, p.errorf("expected TABLE or INDEX after CREATE")
		}
	case p.accept(tokKeyword, "DROP"):
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name.text}, nil
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.accept(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.accept(tokKeyword, "DELETE"):
		return p.parseDelete()
	default:
		return nil, p.errorf("expected a statement, found %s", p.peek())
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: name.text}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		typeTok := p.next()
		if typeTok.kind != tokIdent && typeTok.kind != tokKeyword {
			return nil, p.errorf("expected column type, found %s", typeTok)
		}
		kind, err := ParseKind(typeTok.text)
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: col.text, Kind: kind}
		if p.accept(tokKeyword, "PRIMARY") {
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		}
		stmt.Columns = append(stmt.Columns, def)
		if p.accept(tokSymbol, ",") {
			continue
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Table: table.text, Column: col.text}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table.text}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col.text)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		if len(row) != len(stmt.Columns) {
			return nil, p.errorf("row has %d values for %d columns", len(row), len(stmt.Columns))
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseSelect() (Statement, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		if p.accept(tokSymbol, "*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				alias, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = alias.text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		p.accept(tokKeyword, "INNER") // INNER is optional noise before JOIN
		if !p.accept(tokKeyword, "JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: ref, On: on})
	}
	if p.accept(tokKeyword, "WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		if stmt.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", num.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name.text}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expect(tokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table.text}
	for {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col.text, Expr: e})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table.text}
	if p.accept(tokKeyword, "WHERE") {
		var err error
		if stmt.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// Expression grammar, lowest precedence first:
//
//	expr    := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := primary ((= | <> | < | <= | > | >=) primary
//	          | [NOT] IN (expr, ...) | [NOT] LIKE 'pat')?
//	primary := literal | call | columnRef | ( expr )
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp {
		op := p.next().text
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil
	}
	negate := false
	if p.at(tokKeyword, "NOT") && p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "IN" || p.toks[p.pos+1].text == "LIKE") {
		p.next()
		negate = true
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		in := &InExpr{Target: left, Negate: negate}
		for {
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Target: left, Pattern: pat.text, Negate: negate}, nil
	case negate:
		return nil, p.errorf("NOT must be followed by IN or LIKE here")
	}
	return left, nil
}

var aggregateFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &LiteralExpr{Value: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &LiteralExpr{Value: Int(n)}, nil
	case t.kind == tokString:
		p.next()
		return &LiteralExpr{Value: Text(t.text)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return &LiteralExpr{Value: Null()}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return &LiteralExpr{Value: Bool(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return &LiteralExpr{Value: Bool(false)}, nil
	case t.kind == tokKeyword && aggregateFuncs[t.text]:
		fn := p.next().text
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		call := &CallExpr{Func: fn}
		if p.accept(tokSymbol, "*") {
			if fn != "COUNT" {
				return nil, p.errorf("%s(*) is not valid", fn)
			}
			call.Star = true
		} else {
			call.Distinct = p.accept(tokKeyword, "DISTINCT")
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return call, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnExpr{Table: t.text, Column: col.text}, nil
		}
		return &ColumnExpr{Column: t.text}, nil
	case t.kind == tokSymbol && t.text == "?":
		p.next()
		e := &PlaceholderExpr{Index: p.params}
		p.params++
		return e, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}
