package relstore

import "fmt"

// Parameterized statements: `?` placeholders in a parsed statement bind
// to the typed Value arguments of Query/QueryInt/Exec/ExecStmt. Binding
// rewrites the statement copy-on-write — subtrees without placeholders
// are shared, so a pre-parsed statement can be executed concurrently
// with different arguments — and reuses the typed Value path of
// InsertRow, so callers never interpolate (or escape) text into SQL.

// bindStatement returns stmt with every placeholder replaced by its
// argument. The argument count must match the placeholder count
// exactly; a statement without placeholders and no arguments is
// returned unchanged.
func bindStatement(stmt Statement, args []Value) (Statement, error) {
	n := countStmtPlaceholders(stmt)
	if n != len(args) {
		return nil, fmt.Errorf("relstore: statement has %d placeholders, got %d arguments", n, len(args))
	}
	if n == 0 {
		return stmt, nil
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		c := *s
		c.Items = append([]SelectItem(nil), s.Items...)
		for i := range c.Items {
			if !c.Items[i].Star {
				c.Items[i].Expr = bindExpr(c.Items[i].Expr, args)
			}
		}
		c.Joins = append([]JoinClause(nil), s.Joins...)
		for i := range c.Joins {
			c.Joins[i].On = bindExpr(c.Joins[i].On, args)
		}
		if s.Where != nil {
			c.Where = bindExpr(s.Where, args)
		}
		c.GroupBy = append([]Expr(nil), s.GroupBy...)
		for i := range c.GroupBy {
			c.GroupBy[i] = bindExpr(c.GroupBy[i], args)
		}
		if s.Having != nil {
			c.Having = bindExpr(s.Having, args)
		}
		c.OrderBy = append([]OrderKey(nil), s.OrderBy...)
		for i := range c.OrderBy {
			c.OrderBy[i].Expr = bindExpr(c.OrderBy[i].Expr, args)
		}
		return &c, nil
	case *InsertStmt:
		c := *s
		c.Rows = make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			c.Rows[i] = append([]Expr(nil), row...)
			for j := range c.Rows[i] {
				c.Rows[i][j] = bindExpr(c.Rows[i][j], args)
			}
		}
		return &c, nil
	case *UpdateStmt:
		c := *s
		c.Set = append([]Assignment(nil), s.Set...)
		for i := range c.Set {
			c.Set[i].Expr = bindExpr(c.Set[i].Expr, args)
		}
		if s.Where != nil {
			c.Where = bindExpr(s.Where, args)
		}
		return &c, nil
	case *DeleteStmt:
		c := *s
		if s.Where != nil {
			c.Where = bindExpr(s.Where, args)
		}
		return &c, nil
	default:
		return nil, fmt.Errorf("relstore: placeholders not supported in %T", stmt)
	}
}

// bindExpr substitutes placeholders in one expression tree. Subtrees
// without placeholders are returned as-is (pointer-equal), so binding a
// shared pre-parsed statement never mutates it.
func bindExpr(e Expr, args []Value) Expr {
	switch x := e.(type) {
	case *PlaceholderExpr:
		return &LiteralExpr{Value: args[x.Index]}
	case *BinaryExpr:
		l, r := bindExpr(x.Left, args), bindExpr(x.Right, args)
		if l == x.Left && r == x.Right {
			return e
		}
		return &BinaryExpr{Op: x.Op, Left: l, Right: r}
	case *NotExpr:
		if inner := bindExpr(x.Inner, args); inner != x.Inner {
			return &NotExpr{Inner: inner}
		}
		return e
	case *InExpr:
		target := bindExpr(x.Target, args)
		list := x.List
		for i, item := range x.List {
			if b := bindExpr(item, args); b != item {
				if &list[0] == &x.List[0] {
					list = append([]Expr(nil), x.List...)
				}
				list[i] = b
			}
		}
		if target == x.Target && len(list) > 0 && &list[0] == &x.List[0] {
			return e
		}
		return &InExpr{Target: target, List: list, Negate: x.Negate}
	case *LikeExpr:
		if target := bindExpr(x.Target, args); target != x.Target {
			ne := &LikeExpr{Target: target, Pattern: x.Pattern, Negate: x.Negate}
			// Share the compiled wildcard program: every bound copy of a
			// prepared statement matches through one compilation.
			ne.prog.Store(x.program())
			return ne
		}
		return e
	case *CallExpr:
		if x.Arg == nil {
			return e
		}
		if arg := bindExpr(x.Arg, args); arg != x.Arg {
			return &CallExpr{Func: x.Func, Star: x.Star, Distinct: x.Distinct, Arg: arg}
		}
		return e
	default:
		return e
	}
}

// countStmtPlaceholders counts the placeholder nodes of a statement.
func countStmtPlaceholders(stmt Statement) int {
	n := 0
	switch s := stmt.(type) {
	case *SelectStmt:
		for _, item := range s.Items {
			if !item.Star {
				n += countExprPlaceholders(item.Expr)
			}
		}
		for _, j := range s.Joins {
			n += countExprPlaceholders(j.On)
		}
		n += countExprPlaceholders(s.Where)
		for _, g := range s.GroupBy {
			n += countExprPlaceholders(g)
		}
		n += countExprPlaceholders(s.Having)
		for _, o := range s.OrderBy {
			n += countExprPlaceholders(o.Expr)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				n += countExprPlaceholders(e)
			}
		}
	case *UpdateStmt:
		for _, a := range s.Set {
			n += countExprPlaceholders(a.Expr)
		}
		n += countExprPlaceholders(s.Where)
	case *DeleteStmt:
		n += countExprPlaceholders(s.Where)
	}
	return n
}

func countExprPlaceholders(e Expr) int {
	if e == nil {
		return 0
	}
	switch x := e.(type) {
	case *PlaceholderExpr:
		return 1
	case *BinaryExpr:
		return countExprPlaceholders(x.Left) + countExprPlaceholders(x.Right)
	case *NotExpr:
		return countExprPlaceholders(x.Inner)
	case *InExpr:
		n := countExprPlaceholders(x.Target)
		for _, item := range x.List {
			n += countExprPlaceholders(item)
		}
		return n
	case *LikeExpr:
		return countExprPlaceholders(x.Target)
	case *CallExpr:
		return countExprPlaceholders(x.Arg)
	default:
		return 0
	}
}
