package relstore

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

// mustExec fails the test on error.
func mustExec(t *testing.T, db *DB, sql string) int {
	t.Helper()
	n, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

// seedDB builds the canonical fixture: a tiny os/vuln/os_vuln schema in
// the spirit of the paper's Figure 1.
func seedDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE os (id INTEGER PRIMARY KEY, name TEXT, family TEXT)`)
	mustExec(t, db, `CREATE TABLE vuln (id INTEGER PRIMARY KEY, cve TEXT, year INTEGER, score FLOAT, remote BOOLEAN)`)
	mustExec(t, db, `CREATE TABLE os_vuln (os_id INTEGER, vuln_id INTEGER)`)
	mustExec(t, db, `INSERT INTO os (id, name, family) VALUES
		(1, 'OpenBSD', 'BSD'), (2, 'NetBSD', 'BSD'), (3, 'Debian', 'Linux'), (4, 'Windows2000', 'Windows')`)
	mustExec(t, db, `INSERT INTO vuln (id, cve, year, score, remote) VALUES
		(10, 'CVE-2008-4609', 2008, 7.1, TRUE),
		(11, 'CVE-2008-1447', 2008, 5.0, TRUE),
		(12, 'CVE-2005-0001', 2005, 2.1, FALSE),
		(13, 'CVE-1999-0003', 1999, 10.0, TRUE)`)
	mustExec(t, db, `INSERT INTO os_vuln (os_id, vuln_id) VALUES
		(1, 10), (2, 10), (4, 10),
		(1, 11), (4, 11),
		(3, 12),
		(1, 13)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT name, family FROM os ORDER BY id`)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	if res.Columns[0] != "name" || res.Columns[1] != "family" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].AsText() != "OpenBSD" || res.Rows[3][0].AsText() != "Windows2000" {
		t.Fatalf("rows out of order: %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT * FROM os WHERE family = 'BSD' ORDER BY id`)
	if len(res.Rows) != 2 || len(res.Columns) != 3 {
		t.Fatalf("got %dx%d", len(res.Rows), len(res.Columns))
	}
}

func TestWhereOperators(t *testing.T) {
	db := seedDB(t)
	tests := []struct {
		where string
		want  int
	}{
		{`year = 2008`, 2},
		{`year <> 2008`, 2},
		{`year < 2005`, 1},
		{`year <= 2005`, 2},
		{`year > 2005`, 2},
		{`year >= 2005`, 3},
		{`remote = TRUE`, 3},
		{`NOT remote = TRUE`, 1},
		{`year = 2008 AND score > 6.0`, 1},
		{`year = 1999 OR year = 2005`, 2},
		{`score >= 5.0 AND (year = 1999 OR year = 2008)`, 3},
		{`cve LIKE 'CVE-2008-%'`, 2},
		{`cve NOT LIKE 'CVE-2008-%'`, 2},
		{`cve LIKE 'CVE-____-0001'`, 1},
		{`year IN (1999, 2005)`, 2},
		{`year NOT IN (1999, 2005)`, 2},
	}
	for _, tt := range tests {
		res := mustQuery(t, db, `SELECT id FROM vuln WHERE `+tt.where)
		if len(res.Rows) != tt.want {
			t.Errorf("WHERE %s: %d rows, want %d", tt.where, len(res.Rows), tt.want)
		}
	}
}

func TestJoin(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `
		SELECT os.name, vuln.cve FROM os
		JOIN os_vuln ON os.id = os_vuln.os_id
		JOIN vuln ON os_vuln.vuln_id = vuln.id
		WHERE vuln.year = 2008
		ORDER BY vuln.cve, os.name`)
	want := [][2]string{
		{"OpenBSD", "CVE-2008-1447"},
		{"Windows2000", "CVE-2008-1447"},
		{"NetBSD", "CVE-2008-4609"},
		{"OpenBSD", "CVE-2008-4609"},
		{"Windows2000", "CVE-2008-4609"},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("join returned %d rows, want %d: %v", len(res.Rows), len(want), res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].AsText() != w[0] || res.Rows[i][1].AsText() != w[1] {
			t.Errorf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestJoinWithAliases(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `
		SELECT a.name AS os_name, COUNT(*) AS n FROM os a
		JOIN os_vuln ov ON a.id = ov.os_id
		GROUP BY a.name
		ORDER BY n DESC, os_name`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].AsText() != "OpenBSD" || res.Rows[0][1].AsInt() != 3 {
		t.Fatalf("top row = %v, want OpenBSD 3", res.Rows[0])
	}
	if res.Columns[0] != "os_name" || res.Columns[1] != "n" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestAggregatesUngrouped(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*), SUM(year), AVG(score), MIN(year), MAX(year) FROM vuln`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].AsInt() != 4 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1].AsInt() != 2008+2008+2005+1999 {
		t.Errorf("SUM(year) = %v", row[1])
	}
	wantAvg := (7.1 + 5.0 + 2.1 + 10.0) / 4
	if got := row[2].AsFloat(); got < wantAvg-1e-9 || got > wantAvg+1e-9 {
		t.Errorf("AVG(score) = %v, want %v", got, wantAvg)
	}
	if row[3].AsInt() != 1999 || row[4].AsInt() != 2008 {
		t.Errorf("MIN/MAX = %v/%v", row[3], row[4])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `
		SELECT year, COUNT(*) AS n FROM vuln
		GROUP BY year HAVING COUNT(*) > 1
		ORDER BY year`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 2008 || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("rows = %v, want [[2008 2]]", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT COUNT(DISTINCT os_id) FROM os_vuln`)
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("COUNT(DISTINCT os_id) = %v, want 4", res.Rows[0][0])
	}
	res = mustQuery(t, db, `SELECT COUNT(os_id) FROM os_vuln`)
	if res.Rows[0][0].AsInt() != 7 {
		t.Fatalf("COUNT(os_id) = %v, want 7", res.Rows[0][0])
	}
}

func TestDistinctRows(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT DISTINCT os_id FROM os_vuln ORDER BY os_id`)
	if len(res.Rows) != 4 {
		t.Fatalf("DISTINCT returned %d rows, want 4", len(res.Rows))
	}
}

func TestLimit(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT id FROM vuln ORDER BY id LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("LIMIT rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `SELECT id FROM vuln LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned rows: %v", res.Rows)
	}
}

func TestOrderByMultipleKeysAndDesc(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT cve, year FROM vuln ORDER BY year DESC, cve ASC`)
	want := []string{"CVE-2008-1447", "CVE-2008-4609", "CVE-2005-0001", "CVE-1999-0003"}
	for i, w := range want {
		if res.Rows[i][0].AsText() != w {
			t.Fatalf("order wrong: %v", res.Rows)
		}
	}
}

func TestUpdate(t *testing.T) {
	db := seedDB(t)
	n := mustExec(t, db, `UPDATE vuln SET score = 9.9, remote = FALSE WHERE year = 2008`)
	if n != 2 {
		t.Fatalf("UPDATE affected %d, want 2", n)
	}
	res := mustQuery(t, db, `SELECT COUNT(*) FROM vuln WHERE score = 9.9 AND remote = FALSE`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("post-update count = %v", res.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := seedDB(t)
	n := mustExec(t, db, `DELETE FROM vuln WHERE year < 2005`)
	if n != 1 {
		t.Fatalf("DELETE affected %d, want 1", n)
	}
	if cnt, _ := db.RowCount("vuln"); cnt != 3 {
		t.Fatalf("row count after delete = %d", cnt)
	}
	// Index consistency after delete: indexed lookup must agree with scan.
	mustExec(t, db, `CREATE INDEX ON vuln (year)`)
	mustExec(t, db, `DELETE FROM vuln WHERE year = 2008`)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM vuln WHERE year = 2008`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatal("index stale after delete")
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	db := seedDB(t)
	if _, err := db.Exec(`INSERT INTO os (id, name, family) VALUES (1, 'Clone', 'BSD')`); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	if _, err := db.Exec(`INSERT INTO os (id, name, family) VALUES (NULL, 'NullKey', 'BSD')`); err == nil {
		t.Fatal("NULL primary key accepted")
	}
}

func TestTypeChecking(t *testing.T) {
	db := seedDB(t)
	if _, err := db.Exec(`INSERT INTO os (id, name, family) VALUES ('x', 'Bad', 'BSD')`); err == nil {
		t.Fatal("text accepted in integer column")
	}
	// Integer literals widen into float columns.
	mustExec(t, db, `INSERT INTO vuln (id, cve, year, score, remote) VALUES (14, 'CVE-2010-0001', 2010, 7, TRUE)`)
	res := mustQuery(t, db, `SELECT score FROM vuln WHERE id = 14`)
	if res.Rows[0][0].Kind() != KindFloat || res.Rows[0][0].AsFloat() != 7.0 {
		t.Fatalf("widened value = %v", res.Rows[0][0])
	}
}

func TestIndexAcceleratedSelectMatchesScan(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (k INTEGER, v TEXT)`)
	for i := 0; i < 500; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t (k, v) VALUES (%d, 'row%d')`, i%50, i))
	}
	scan := mustQuery(t, db, `SELECT v FROM t WHERE k = 17 ORDER BY v`)
	mustExec(t, db, `CREATE INDEX ON t (k)`)
	indexed := mustQuery(t, db, `SELECT v FROM t WHERE k = 17 ORDER BY v`)
	if len(scan.Rows) != len(indexed.Rows) || len(scan.Rows) != 10 {
		t.Fatalf("scan %d rows, indexed %d rows, want 10", len(scan.Rows), len(indexed.Rows))
	}
	for i := range scan.Rows {
		if scan.Rows[i][0].AsText() != indexed.Rows[i][0].AsText() {
			t.Fatalf("row %d differs: %v vs %v", i, scan.Rows[i], indexed.Rows[i])
		}
	}
}

func TestPrimaryKeyLookupPath(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, `SELECT name FROM os WHERE id = 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "Debian" {
		t.Fatalf("pk lookup = %v", res.Rows)
	}
	res = mustQuery(t, db, `SELECT name FROM os WHERE id = 999`)
	if len(res.Rows) != 0 {
		t.Fatalf("pk miss returned rows: %v", res.Rows)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := seedDB(t)
	mustExec(t, db, `CREATE INDEX ON os_vuln (vuln_id)`)
	path := filepath.Join(t.TempDir(), "study.gob.gz")
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, tbl := range []string{"os", "vuln", "os_vuln"} {
		want, _ := db.RowCount(tbl)
		got, err := back.RowCount(tbl)
		if err != nil || got != want {
			t.Fatalf("table %s: %d rows after reload, want %d (%v)", tbl, got, want, err)
		}
	}
	// The reloaded database must answer an indexed join identically.
	q := `SELECT os.name FROM os JOIN os_vuln ON os.id = os_vuln.os_id WHERE os_vuln.vuln_id = 10 ORDER BY os.name`
	a := mustQuery(t, db, q)
	b := mustQuery(t, back, q)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("reloaded join differs: %v vs %v", a.Rows, b.Rows)
	}
	for i := range a.Rows {
		if a.Rows[i][0].AsText() != b.Rows[i][0].AsText() {
			t.Fatalf("reloaded join row %d: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestTimestampColumns(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE ev (id INTEGER, at TIMESTAMP)`)
	// Timestamps are inserted through the typed API in production code;
	// here we verify ordering and persistence round-trip at the SQL layer
	// using the Insert helper below.
	when := time.Date(2008, 7, 8, 12, 0, 0, 0, time.UTC)
	if err := InsertRow(db, "ev", []string{"id", "at"}, []Value{Int(1), Time(when)}); err != nil {
		t.Fatalf("InsertRow: %v", err)
	}
	if err := InsertRow(db, "ev", []string{"id", "at"}, []Value{Int(2), Time(when.AddDate(1, 0, 0))}); err != nil {
		t.Fatalf("InsertRow: %v", err)
	}
	res := mustQuery(t, db, `SELECT id FROM ev ORDER BY at DESC`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("timestamp ordering wrong: %v", res.Rows)
	}
	path := filepath.Join(t.TempDir(), "ev.gob.gz")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	res = mustQuery(t, back, `SELECT id FROM ev ORDER BY at`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("timestamps lost on reload: %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := seedDB(t)
	bad := []string{
		`SELECT nosuch FROM os`,
		`SELECT name FROM nosuch`,
		`SELECT name FROM os WHERE`,
		`INSERT INTO nosuch (a) VALUES (1)`,
		`INSERT INTO os (nosuch) VALUES (1)`,
		`CREATE TABLE os (id INTEGER)`, // duplicate table
		`CREATE TABLE bad ()`,
		`DELETE FROM nosuch`,
		`UPDATE nosuch SET a = 1`,
		`SELECT COUNT(*) FROM os GROUP BY`,
		`SELECT * FROM os ORDER`,
		`TRUNCATE os`,
		`SELECT name FROM os LIMIT -1`,
		`SELECT MAX(*) FROM vuln`,
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			if _, err2 := db.Exec(sql); err2 == nil {
				t.Errorf("statement %q accepted", sql)
			}
		}
	}
}

func TestExecRejectsSelectAndQueryRejectsDML(t *testing.T) {
	db := seedDB(t)
	if _, err := db.Exec(`SELECT * FROM os`); err == nil {
		t.Error("Exec accepted SELECT")
	}
	if _, err := db.Query(`DELETE FROM os`); err == nil {
		t.Error("Query accepted DELETE")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := seedDB(t)
	// Both os and vuln have a column named id: unqualified use must fail.
	if _, err := db.Query(`SELECT id FROM os JOIN vuln ON os.id = vuln.id`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestStringEscaping(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE s (v TEXT)`)
	mustExec(t, db, `INSERT INTO s (v) VALUES ('it''s a test')`)
	res := mustQuery(t, db, `SELECT v FROM s WHERE v = 'it''s a test'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "it's a test" {
		t.Fatalf("escaped string = %v", res.Rows)
	}
}

func TestComments(t *testing.T) {
	db := seedDB(t)
	res := mustQuery(t, db, "SELECT name FROM os -- trailing comment\nWHERE family = 'BSD'")
	if len(res.Rows) != 2 {
		t.Fatalf("comment handling broke query: %v", res.Rows)
	}
}

func TestTablesAndRowCount(t *testing.T) {
	db := seedDB(t)
	tables := db.Tables()
	if len(tables) != 3 || tables[0] != "os" {
		t.Fatalf("Tables() = %v", tables)
	}
	if _, err := db.RowCount("nosuch"); err == nil {
		t.Error("RowCount on missing table succeeded")
	}
	mustExec(t, db, `DROP TABLE os_vuln`)
	if len(db.Tables()) != 2 {
		t.Error("DROP TABLE did not remove table")
	}
}

func TestQueryInt(t *testing.T) {
	db := seedDB(t)
	n, err := db.QueryInt(`SELECT COUNT(*) FROM vuln`)
	if err != nil || n != 4 {
		t.Fatalf("QueryInt = %d, %v", n, err)
	}
	if _, err := db.QueryInt(`SELECT id FROM vuln`); err == nil {
		t.Error("QueryInt accepted multi-row result")
	}
	if _, err := db.QueryInt(`SELECT cve FROM vuln LIMIT 1`); err == nil {
		t.Error("QueryInt accepted text result")
	}
}

func TestLikeMatchProperty(t *testing.T) {
	// A pattern equal to the string (no wildcards) always matches;
	// a '%'-only pattern matches everything.
	f := func(raw uint32) bool {
		s := fmt.Sprintf("v%d", raw%10000)
		return likeMatch(s, s) && likeMatch(s, "%") && likeMatch(s, "v%") && !likeMatch(s, "x%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeMatchTable(t *testing.T) {
	tests := []struct {
		s, pat string
		want   bool
	}{
		{"CVE-2008-4609", "CVE-2008-%", true},
		{"CVE-2008-4609", "%4609", true},
		{"CVE-2008-4609", "CVE-____-4609", true},
		{"CVE-2008-4609", "cve-2008-%", false}, // case sensitive
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"", "%", true},
		{"", "_", false},
		{"%literal", "%literal", true},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.pat); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.pat, got, tt.want)
		}
	}
}

func TestValueCompareTotalOrderProperty(t *testing.T) {
	vals := []Value{
		Null(), Int(-3), Int(0), Int(7), Float(2.5), Float(7.0),
		Text(""), Text("a"), Text("b"), Bool(false), Bool(true),
		Time(time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)),
		Time(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)),
	}
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("Compare(%v,%v) not antisymmetric", a, b)
			}
			for _, c := range vals {
				if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
					t.Fatalf("Compare not transitive: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	if !Int(7).Equal(Float(7.0)) {
		t.Error("Int(7) != Float(7.0)")
	}
	if Int(7).Equal(Float(7.5)) {
		t.Error("Int(7) == Float(7.5)")
	}
	if Int(7).key() != Float(7.0).key() {
		t.Error("hash keys differ for equal numerics (breaks joins on mixed columns)")
	}
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be false")
	}
}

func TestInsertRowsBulkProperty(t *testing.T) {
	// Inserting n rows then COUNT(*) always returns n; GROUP BY k SUM
	// matches a hand computation.
	f := func(seed uint8) bool {
		db := Open()
		if _, err := db.Exec(`CREATE TABLE t (k INTEGER, v INTEGER)`); err != nil {
			return false
		}
		n := int(seed)%40 + 1
		sums := map[int64]int64{}
		for i := 0; i < n; i++ {
			k := int64(i % 5)
			v := int64(i * i)
			sums[k] += v
			if err := InsertRow(db, "t", []string{"k", "v"}, []Value{Int(k), Int(v)}); err != nil {
				return false
			}
		}
		cnt, err := db.QueryInt(`SELECT COUNT(*) FROM t`)
		if err != nil || cnt != int64(n) {
			return false
		}
		res, err := db.Query(`SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k`)
		if err != nil {
			return false
		}
		for _, row := range res.Rows {
			if sums[row[0].AsInt()] != row[1].AsInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
