// Package relstore is a small embedded relational database with a SQL
// subset, built for the study's ingestion pipeline.
//
// The paper's methodology (§III) revolves around "an SQL database,
// deployed with a custom schema to do the aggregation of vulnerabilities
// by affected products and versions". relstore supplies that substrate
// without any external dependency: typed tables, hash indexes, a
// recursive-descent SQL parser, an executor with inner joins, grouping and
// aggregates, and gob-based persistence.
//
// The dialect (see Parse) covers what the study needs:
//
//	CREATE TABLE t (col TYPE [PRIMARY KEY], ...)
//	CREATE INDEX ON t (col)
//	INSERT INTO t (cols...) VALUES (...), (...)
//	SELECT [DISTINCT] exprs FROM t [JOIN u ON a = b]... [WHERE expr]
//	       [GROUP BY cols] [ORDER BY expr [DESC], ...] [LIMIT n]
//	UPDATE t SET col = expr, ... [WHERE expr]
//	DELETE FROM t [WHERE expr]
//	DROP TABLE t
//
// with integer, float, text, boolean and timestamp columns, AND/OR/NOT,
// comparisons, IN lists, LIKE patterns, and the COUNT/SUM/AVG/MIN/MAX
// aggregates (including COUNT(DISTINCT x)).
package relstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the value types a column can hold.
type Kind int

// Column kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
	KindTime
)

// String names the kind using the dialect's canonical type spelling.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	case KindNull:
		return "NULL"
	default:
		return "?"
	}
}

// ParseKind resolves a SQL type name to a Kind, accepting the usual
// synonyms (INT/INTEGER, VARCHAR/TEXT, REAL/DOUBLE/FLOAT, DATETIME...).
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return KindText, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "TIMESTAMP", "DATETIME", "DATE":
		return KindTime, nil
	default:
		return KindNull, fmt.Errorf("relstore: unknown type %q", s)
	}
}

// Value is one cell. The zero Value is NULL.
//
// Values are small tagged unions passed by value everywhere; rows are
// []Value slices.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
	t    time.Time
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int builds an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float builds a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text builds a text value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Bool builds a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Time builds a timestamp value (stored in UTC).
func Time(v time.Time) Value { return Value{kind: KindTime, t: v.UTC()} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload (0 when not an integer).
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as float64, converting integers.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsText returns the text payload ("" when not text).
func (v Value) AsText() string { return v.s }

// AsBool returns the boolean payload (false when not boolean).
func (v Value) AsBool() bool { return v.b }

// AsTime returns the timestamp payload (zero when not a timestamp).
func (v Value) AsTime() time.Time { return v.t }

// String renders the value for display and for ORDER BY diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return v.t.Format(time.RFC3339)
	default:
		return "?"
	}
}

// numeric reports whether the value participates in arithmetic
// comparisons as a number.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports SQL equality. NULL equals nothing, including NULL
// (three-valued logic is collapsed to false, which is what WHERE needs).
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return false
	}
	if v.numeric() && o.numeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindText:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindTime:
		return v.t.Equal(o.t)
	default:
		return false
	}
}

// Compare orders two non-NULL values of compatible kinds: -1, 0, +1.
// NULLs sort before everything (needed by ORDER BY); incompatible kinds
// order by kind tag so sorting is total and deterministic.
func (v Value) Compare(o Value) int {
	if v.IsNull() || o.IsNull() {
		switch {
		case v.IsNull() && o.IsNull():
			return 0
		case v.IsNull():
			return -1
		default:
			return 1
		}
	}
	if v.numeric() && o.numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindText:
		return strings.Compare(v.s, o.s)
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case KindTime:
		switch {
		case v.t.Before(o.t):
			return -1
		case v.t.After(o.t):
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// key returns a map key identifying the value for hashing (indexes,
// GROUP BY, DISTINCT). Numeric values of equal magnitude hash equal.
func (v Value) key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == float64(int64(v.f)) {
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return "t" + v.s
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	case KindTime:
		return "d" + strconv.FormatInt(v.t.UnixNano(), 10)
	default:
		return "?"
	}
}

// coerce validates (and where harmless, converts) a value for storage in
// a column of the given kind. Integers widen to floats; NULL is accepted
// by every column.
func coerce(v Value, k Kind) (Value, error) {
	if v.IsNull() || v.kind == k {
		return v, nil
	}
	if k == KindFloat && v.kind == KindInt {
		return Float(float64(v.i)), nil
	}
	return Value{}, fmt.Errorf("relstore: cannot store %s value %q in %s column", v.kind, v, k)
}
