package relstore

import "fmt"

// InsertRow inserts one row through the typed API, bypassing SQL parsing.
// This is the ingestion fast path: loaders that stream thousands of feed
// entries use it to avoid quoting values (and to insert timestamps, which
// have no literal syntax in the dialect).
func InsertRow(db *DB, tableName string, columns []string, values []Value) error {
	if len(columns) != len(values) {
		return fmt.Errorf("relstore: InsertRow: %d columns, %d values", len(columns), len(values))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	row := make([]Value, len(t.cols))
	for i, col := range columns {
		ci, ok := t.colIdx[col]
		if !ok {
			return fmt.Errorf("relstore: table %s has no column %q", tableName, col)
		}
		row[ci] = values[i]
	}
	return t.insert(row)
}

// InsertRows inserts many rows sharing one column layout under a single
// lock acquisition and table lookup — the batch half of the feed
// ingestion pipeline. Rows are inserted in slice order; on error the
// rows before the failing one remain inserted, like repeated InsertRow
// calls would leave them.
func InsertRows(db *DB, tableName string, columns []string, rows [][]Value) error {
	if len(rows) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	colIdx := make([]int, len(columns))
	for i, col := range columns {
		ci, ok := t.colIdx[col]
		if !ok {
			return fmt.Errorf("relstore: table %s has no column %q", tableName, col)
		}
		colIdx[i] = ci
	}
	for _, values := range rows {
		if len(values) != len(columns) {
			return fmt.Errorf("relstore: InsertRows: %d columns, %d values", len(columns), len(values))
		}
		row := make([]Value, len(t.cols))
		for i, ci := range colIdx {
			row[ci] = values[i]
		}
		if err := t.insert(row); err != nil {
			return err
		}
	}
	return nil
}

// ScanTable streams every row of a table to fn in insertion order,
// stopping early if fn returns false. The row slice is shared; fn must
// not retain or mutate it.
func ScanTable(db *DB, tableName string, fn func(row []Value) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("relstore: no table %q", tableName)
	}
	for _, row := range t.rows {
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// ColumnNames returns a table's column names in declaration order.
func ColumnNames(db *DB, tableName string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", tableName)
	}
	return t.columnNames(), nil
}
