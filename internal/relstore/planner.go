package relstore

import (
	"fmt"
	"math/bits"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// The conjunctive query planner (PlanJoin, the default SELECT executor).
//
// The reference executor (exec.go) hash-joins only a bare `L.col =
// R.col` ON clause and applies the whole WHERE after all joins, so the
// compound shapes the vulndb workload issues — `ON a.x = b.x AND a.y <
// b.y`, `WHERE t.col = 'lit' AND ...` over multi-join queries — fall to
// nested loops over unfiltered tables. The planner decomposes both
// clauses into AND conjuncts and plans around them:
//
//   - WHERE conjuncts referencing a single table push down into that
//     table's base scan, narrowed through the primary key or a hash
//     index when a `col = literal` conjunct allows it.
//   - ON conjuncts of the form `prefix expr = new-table expr` become
//     (possibly multi-column) hash-join keys; ON conjuncts local to the
//     joined table filter its build side; everything else becomes a
//     residual predicate evaluated during the probe.
//   - Multi-table WHERE conjuncts attach to the earliest join that
//     binds all their tables, so they also prune during the probe.
//   - An unfiltered build side over a single indexed (or primary-key)
//     column reuses the stored index instead of rehashing the table.
//   - The probe phase shards the outer working set across the
//     database's Workers pool (see SetParallelism); shard outputs
//     concatenate in shard order, so results are byte-identical to the
//     serial reference at any worker count.

// minProbeParallelItems is the working-set size below which sharding
// the probe is not worth the goroutine fan-out.
const minProbeParallelItems = 64

// tableMask is a bitset over the positions of the FROM/JOIN table list.
type tableMask uint64

// exprTables returns the set of tables an expression references,
// resolving unqualified names through env (which must already have
// validated the expression, so ambiguous names cannot reach here).
func exprTables(e Expr, env *rowEnv) tableMask {
	var m tableMask
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColumnExpr:
			if x.Table == "" {
				if pos, ok := env.unique[x.Column]; ok {
					m |= 1 << pos[0]
				}
				return
			}
			for ti, ref := range env.refs {
				if ref.Name() == x.Table {
					m |= 1 << ti
					return
				}
			}
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *NotExpr:
			walk(x.Inner)
		case *InExpr:
			walk(x.Target)
			for _, item := range x.List {
				walk(item)
			}
		case *LikeExpr:
			walk(x.Target)
		case *CallExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return m
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e Expr, dst []Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		dst = splitConjuncts(b.Left, dst)
		return splitConjuncts(b.Right, dst)
	}
	return append(dst, e)
}

// joinPlan is the decomposed form of one JOIN clause.
type joinPlan struct {
	// leftKeys/rightKeys are the paired equi-join key expressions:
	// leftKeys[i] binds to the tables joined so far, rightKeys[i] to the
	// incoming table. Empty when the ON clause has no usable equality
	// (the probe then degenerates to a filtered nested loop).
	leftKeys, rightKeys []Expr
	// buildFilter holds conjuncts local to the incoming table (from ON
	// and pushed WHERE), applied to its rows before hashing.
	buildFilter []Expr
	// residual holds the remaining ON conjuncts plus any WHERE conjunct
	// whose tables are all bound once this join lands; they run against
	// each candidate combined row during the probe.
	residual []Expr
}

// selectPlan is the full decomposition of a SELECT's FROM/JOIN/WHERE.
type selectPlan struct {
	refs    []TableRef
	tables  []*table
	schemas [][]ColumnDef
	// basePreds are single-table WHERE conjuncts on the FROM table.
	basePreds []Expr
	joins     []joinPlan
	// residual holds WHERE conjuncts referencing no table at all
	// (constants); they apply once after the joins.
	residual []Expr
}

// planSelect validates the query and decomposes it. Validation order
// matches the reference executor: each ON clause against its prefix of
// tables, then the full select list and WHERE against all tables.
func (db *DB) planSelect(s *SelectStmt) (*selectPlan, error) {
	p := &selectPlan{
		refs:    make([]TableRef, 1+len(s.Joins)),
		tables:  make([]*table, 1+len(s.Joins)),
		schemas: make([][]ColumnDef, 1+len(s.Joins)),
		joins:   make([]joinPlan, len(s.Joins)),
	}
	base, ok := db.tables[s.From.Table]
	if !ok {
		return nil, fmt.Errorf("relstore: no table %q", s.From.Table)
	}
	p.refs[0], p.tables[0], p.schemas[0] = s.From, base, base.cols
	for i, join := range s.Joins {
		t, ok := db.tables[join.Table.Table]
		if !ok {
			return nil, fmt.Errorf("relstore: no table %q", join.Table.Table)
		}
		p.refs[i+1], p.tables[i+1], p.schemas[i+1] = join.Table, t, t.cols
	}

	prefixEnvs := make([]*rowEnv, len(s.Joins))
	for k, join := range s.Joins {
		env := newRowEnv(p.refs[:k+2], p.schemas[:k+2])
		if err := validateExpr(join.On, env, nil); err != nil {
			return nil, err
		}
		prefixEnvs[k] = env
	}
	fullEnv := newRowEnv(p.refs, p.schemas)
	if err := validateSelect(s, fullEnv); err != nil {
		return nil, err
	}

	// Classify WHERE conjuncts: single-table ones push into that
	// table's scan, multi-table ones attach to the join completing
	// their table set, constants stay residual.
	pushed := make([][]Expr, len(p.tables))
	if s.Where != nil {
		for _, c := range splitConjuncts(s.Where, nil) {
			m := exprTables(c, fullEnv)
			switch {
			case m == 0:
				p.residual = append(p.residual, c)
			case m&(m-1) == 0:
				ti := bits.TrailingZeros64(uint64(m))
				pushed[ti] = append(pushed[ti], c)
			default:
				hi := 63 - bits.LeadingZeros64(uint64(m))
				p.joins[hi-1].residual = append(p.joins[hi-1].residual, c)
			}
		}
	}
	p.basePreds = pushed[0]

	// Decompose each ON clause against its prefix environment.
	for k, join := range s.Joins {
		jp := &p.joins[k]
		newIdx := k + 1
		newBit := tableMask(1) << newIdx
		for _, c := range splitConjuncts(join.On, nil) {
			m := exprTables(c, prefixEnvs[k])
			if m == newBit {
				jp.buildFilter = append(jp.buildFilter, c)
				continue
			}
			if l, r, ok := equiConjunct(c, prefixEnvs[k], newBit); ok {
				jp.leftKeys = append(jp.leftKeys, l)
				jp.rightKeys = append(jp.rightKeys, r)
				continue
			}
			jp.residual = append(jp.residual, c)
		}
		// Pushed WHERE conjuncts on the incoming table filter its build
		// side together with the table-local ON conjuncts.
		jp.buildFilter = append(jp.buildFilter, pushed[newIdx]...)
	}
	return p, nil
}

// equiConjunct recognizes `prefixExpr = newExpr` (either orientation):
// an equality whose sides bind one to the incoming table only and one
// to previously joined tables only.
func equiConjunct(c Expr, env *rowEnv, newBit tableMask) (left, right Expr, ok bool) {
	b, isBin := c.(*BinaryExpr)
	if !isBin || b.Op != "=" {
		return nil, nil, false
	}
	lm, rm := exprTables(b.Left, env), exprTables(b.Right, env)
	switch {
	case lm != 0 && lm&newBit == 0 && rm == newBit:
		return b.Left, b.Right, true
	case rm != 0 && rm&newBit == 0 && lm == newBit:
		return b.Right, b.Left, true
	default:
		return nil, nil, false
	}
}

// execSelectPlanned runs a SELECT through the planner, planning and
// executing in one shot (the uncached reference path).
func (db *DB) execSelectPlanned(s *SelectStmt) (*Result, error) {
	plan, err := db.planSelect(s)
	if err != nil {
		return nil, err
	}
	return db.execPlanned(s, plan)
}

// execPlanned executes a SELECT against an already-compiled plan (fresh
// from planSelect or bound from the plan cache).
func (db *DB) execPlanned(s *SelectStmt, plan *selectPlan) (*Result, error) {
	baseRows, err := scanCandidates(plan.tables[0], plan.refs[0], plan.basePreds)
	if err != nil {
		return nil, err
	}
	work := &joinedRows{
		refs:    plan.refs[:1],
		schemas: plan.schemas[:1],
		combos:  make([][][]Value, len(baseRows)),
	}
	for i, row := range baseRows {
		work.combos[i] = [][]Value{row}
	}

	for k := range plan.joins {
		next, err := db.execJoinPlanned(work, plan, k)
		if err != nil {
			return nil, err
		}
		work = next
	}

	filtered := work.combos
	if len(plan.residual) > 0 {
		env := newRowEnv(work.refs, work.schemas)
		filtered = nil
		for _, combo := range work.combos {
			env.rows = combo
			keep := true
			for _, c := range plan.residual {
				v, err := eval(c, env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					keep = false
					break
				}
			}
			if keep {
				filtered = append(filtered, combo)
			}
		}
	}
	return db.finishSelect(s, work, filtered)
}

// scanCandidates returns a table's rows filtered through preds, using
// the primary key or a hash index to narrow the scan when a `col =
// literal` conjunct allows it. The index is purely an accelerator:
// every pred is still evaluated, so semantics (NULL equality, numeric
// cross-kind comparisons) stay with eval.
func scanCandidates(t *table, ref TableRef, preds []Expr) ([][]Value, error) {
	if len(preds) == 0 {
		return t.rows, nil
	}
	rows := t.rows
	if col, val, ok := indexedEqualityPred(preds, t, ref); ok {
		rows = t.rowsByKey(col, val)
	}
	env := newRowEnv([]TableRef{ref}, [][]ColumnDef{t.cols})
	var out [][]Value
	for _, row := range rows {
		env.set(0, row)
		keep := true
		for _, p := range preds {
			v, err := eval(p, env)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// indexedEqualityPred finds a `col = literal` conjunct over a column
// that has a primary key or hash index, preferring indexed columns.
func indexedEqualityPred(preds []Expr, t *table, ref TableRef) (string, Value, bool) {
	pkCol := ""
	var pkVal Value
	for _, p := range preds {
		b, ok := p.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		colExpr, lit := b.Left, b.Right
		if _, isCol := colExpr.(*ColumnExpr); !isCol {
			colExpr, lit = lit, colExpr
		}
		ce, okCol := colExpr.(*ColumnExpr)
		le, okLit := lit.(*LiteralExpr)
		if !okCol || !okLit {
			continue
		}
		if ce.Table != "" && ce.Table != ref.Name() {
			continue
		}
		if _, exists := t.colIdx[ce.Column]; !exists {
			continue
		}
		if _, ok := t.indexes[ce.Column]; ok {
			return ce.Column, le.Value, true
		}
		if pkCol == "" && t.pkCol >= 0 && t.cols[t.pkCol].Name == ce.Column {
			pkCol, pkVal = ce.Column, le.Value
		}
	}
	if pkCol != "" {
		return pkCol, pkVal, true
	}
	return "", Value{}, false
}

// rowsByKey returns the rows whose col equals val, through the column's
// hash index or the primary key. Must only be called for columns
// reported by indexedEqualityPred.
func (t *table) rowsByKey(col string, val Value) [][]Value {
	if idx, ok := t.indexes[col]; ok {
		positions := idx[val.key()]
		out := make([][]Value, len(positions))
		for i, p := range positions {
			out[i] = t.rows[p]
		}
		return out
	}
	if ri, ok := t.pk[val.key()]; ok {
		return t.rows[ri : ri+1]
	}
	return nil
}

// buildSide is the hashed right-hand side of one join.
type buildSide struct {
	rows [][]Value
	// multi maps composite key -> positions in rows; nil when pk serves.
	multi map[string][]int
	// pk maps key -> single position (primary-key build side).
	pk map[string]int
	// all lists every position, for the no-equi-key nested fallback.
	all []int
}

// prepareBuild filters and hashes the incoming table. When the build
// side is the whole table and the single join key is a stored index (or
// the primary key), the index is reused as-is.
func prepareBuild(t *table, ref TableRef, jp *joinPlan) (*buildSide, error) {
	cand := t.rows
	if len(jp.buildFilter) > 0 {
		var err error
		cand, err = scanCandidates(t, ref, jp.buildFilter)
		if err != nil {
			return nil, err
		}
	}
	b := &buildSide{rows: cand}

	if len(jp.leftKeys) == 0 {
		b.all = make([]int, len(cand))
		for i := range b.all {
			b.all[i] = i
		}
		return b, nil
	}

	// Index reuse: unfiltered single bare-column key.
	if len(jp.rightKeys) == 1 && len(jp.buildFilter) == 0 {
		if ce, ok := jp.rightKeys[0].(*ColumnExpr); ok {
			if idx, ok := t.indexes[ce.Column]; ok {
				b.multi = idx
				return b, nil
			}
			if t.pkCol >= 0 && t.cols[t.pkCol].Name == ce.Column {
				b.pk = t.pk
				return b, nil
			}
		}
	}

	env := newRowEnv([]TableRef{ref}, [][]ColumnDef{t.cols})
	b.multi = make(map[string][]int, len(cand))
	for ri, row := range cand {
		env.set(0, row)
		key, ok, err := evalJoinKey(jp.rightKeys, env)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		b.multi[key] = append(b.multi[key], ri)
	}
	return b, nil
}

// evalJoinKey evaluates the composite join key. ok is false when any
// component is NULL (NULL joins nothing, like the reference executor).
// Multi-column keys length-prefix each component so values containing
// the would-be separator cannot collide across component boundaries.
func evalJoinKey(keys []Expr, env evalEnv) (string, bool, error) {
	if len(keys) == 1 {
		v, err := eval(keys[0], env)
		if err != nil || v.IsNull() {
			return "", false, err
		}
		return v.key(), true, nil
	}
	var sb strings.Builder
	for _, e := range keys {
		v, err := eval(e, env)
		if err != nil || v.IsNull() {
			return "", false, err
		}
		k := v.key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String(), true, nil
}

// execJoinPlanned extends the working set with join k of the plan,
// probing the build side across the Workers pool.
func (db *DB) execJoinPlanned(work *joinedRows, plan *selectPlan, k int) (*joinedRows, error) {
	newIdx := k + 1
	t, ref := plan.tables[newIdx], plan.refs[newIdx]
	jp := &plan.joins[k]
	next := &joinedRows{
		refs:    plan.refs[:newIdx+1],
		schemas: plan.schemas[:newIdx+1],
	}
	build, err := prepareBuild(t, ref, jp)
	if err != nil {
		return nil, err
	}

	probe := func(combos [][][]Value) ([][][]Value, error) {
		leftEnv := newRowEnv(work.refs, work.schemas)
		extEnv := newRowEnv(next.refs, next.schemas)
		scratch := make([][]Value, len(work.refs)+1)
		var one [1]int
		var out [][][]Value
		for _, combo := range combos {
			var positions []int
			switch {
			case build.all != nil:
				positions = build.all
			default:
				leftEnv.rows = combo
				key, ok, err := evalJoinKey(jp.leftKeys, leftEnv)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				if build.pk != nil {
					ri, hit := build.pk[key]
					if !hit {
						continue
					}
					one[0] = ri
					positions = one[:]
				} else {
					positions = build.multi[key]
				}
			}
			for _, ri := range positions {
				row := build.rows[ri]
				if len(jp.residual) > 0 {
					copy(scratch, combo)
					scratch[len(combo)] = row
					extEnv.rows = scratch
					keep := true
					for _, c := range jp.residual {
						v, err := eval(c, extEnv)
						if err != nil {
							return nil, err
						}
						if !truthy(v) {
							keep = false
							break
						}
					}
					if !keep {
						continue
					}
				}
				extended := make([][]Value, len(combo)+1)
				copy(extended, combo)
				extended[len(combo)] = row
				out = append(out, extended)
			}
		}
		return out, nil
	}

	workers := db.Parallelism()
	if g := runtime.GOMAXPROCS(0); workers > g {
		workers = g
	}
	if workers <= 1 || len(work.combos) < minProbeParallelItems {
		next.combos, err = probe(work.combos)
		return next, err
	}

	if workers > len(work.combos) {
		workers = len(work.combos)
	}
	chunk := (len(work.combos) + workers - 1) / workers
	nShards := (len(work.combos) + chunk - 1) / chunk
	outs := make([][][][]Value, nShards)
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	for i := 0; i < nShards; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(work.combos) {
			hi = len(work.combos)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			outs[i], errs[i] = probe(work.combos[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for i := 0; i < nShards; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += len(outs[i])
	}
	next.combos = make([][][]Value, 0, total)
	for _, o := range outs {
		next.combos = append(next.combos, o...)
	}
	return next, nil
}
