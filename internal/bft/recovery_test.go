package bft

// Recovery-path coverage: RecoverByOS mid-run and view changes under a
// Silent primary, pinning that the quorum re-forms deterministically
// after rejuvenation (Config.Seed fixes every latency draw, so these
// runs replay identically).

import (
	"testing"

	"osdiversity/internal/osmap"
)

// TestRecoverByOSMidRun stalls a cluster with two Silent backups (only
// 2f honest replicas — no prepare quorum), rejuvenates one OS midway
// through the run, and pins that the pending request then commits via
// a view change onto the recovered replica.
func TestRecoverByOSMidRun(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	c.CompromiseByOS(osmap.Solaris, Silent) // replica 1
	c.CompromiseByOS(osmap.Debian, Silent)  // replica 2
	seq := c.Submit("op")

	// Run past the first client timeout: with only replicas 0 and 3
	// honest, the view-change vote count stays below 2f+1 and nothing
	// commits.
	c.Run(30)
	if got := c.Accepted(seq); got != "" {
		t.Fatalf("request committed without a quorum: %q", got)
	}

	// Rejuvenate the Solaris replica mid-run: three honest replicas
	// again. The next timeout round gathers 2f+1 view-change votes,
	// the recovered replica is the new primary, and the request
	// commits.
	if n := c.RecoverByOS(osmap.Solaris); n != 1 {
		t.Fatalf("RecoverByOS restored %d, want 1", n)
	}
	if c.CompromisedCount() != 1 {
		t.Fatalf("compromised after recovery = %d, want 1", c.CompromisedCount())
	}
	c.Run(10000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("post-recovery request = %q, want ok:d(op)", got)
	}
	if c.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1", c.Delivered())
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations after quorum re-formation: %v", v)
	}
}

// TestViewChangeUnderSilentPrimary pins the hardest recovery path: the
// primary itself is Silent and so is the view-change successor, which
// blocks the protocol entirely until the successor rejuvenates.
func TestViewChangeUnderSilentPrimary(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	c.CompromiseByOS(osmap.Windows2003, Silent) // replica 0, the view-0 primary
	c.CompromiseByOS(osmap.Solaris, Silent)     // replica 1, primary of view 1
	seq := c.Submit("op")

	// Two honest replicas can never gather 2f+1 view-change votes: the
	// first timeout round passes without progress.
	c.Run(30)
	if got := c.Accepted(seq); got != "" {
		t.Fatalf("request committed under a silent primary pair: %q", got)
	}

	// Rejuvenating replica 1 restores a 2f+1 honest quorum while
	// timeout rounds are still pending; the next round's view change
	// installs an honest primary and the pending request is re-proposed
	// and committed — with the original primary still Silent.
	if n := c.RecoverByOS(osmap.Solaris); n != 1 {
		t.Fatalf("RecoverByOS restored %d, want 1", n)
	}
	c.Run(10000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("post-view-change request = %q, want ok:d(op)", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations after view change onto recovered primary: %v", v)
	}
	if c.CompromisedCount() != 1 {
		t.Fatalf("compromised = %d, want 1 (the old primary stays Silent)", c.CompromisedCount())
	}
}

// TestRotate pins the rotation boundary: every replica rejuvenates
// onto its new OS, compromises do not survive the boundary, and the
// cluster commits on the new assignment.
func TestRotate(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	c.Compromise(2, ForgeReplies)
	next := []osmap.Distro{osmap.NetBSD, osmap.FreeBSD, osmap.RedHat, osmap.Windows2000}
	if err := c.Rotate(next); err != nil {
		t.Fatal(err)
	}
	if got := c.OSes(); len(got) != 4 || got[0] != osmap.NetBSD || got[3] != osmap.Windows2000 {
		t.Fatalf("OSes after rotate = %v", got)
	}
	if c.CompromisedCount() != 0 {
		t.Fatal("compromise survived the rotation boundary")
	}
	seq := c.Submit("op")
	c.Run(10000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("post-rotation request = %q", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations after rotation: %v", v)
	}
	if err := c.Rotate([]osmap.Distro{osmap.Debian}); err == nil {
		t.Error("Rotate accepted a short OS list")
	}
}
