package bft

import (
	"strings"
	"testing"

	"osdiversity/internal/osmap"
)

func set1OSes() []osmap.Distro {
	return []osmap.Distro{osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD}
}

func newTestCluster(t *testing.T, oses []osmap.Distro) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{F: 1, OSes: oses, Seed: 7})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{F: 0, OSes: []osmap.Distro{osmap.Debian}}); err == nil {
		t.Error("F=0 accepted")
	}
	if _, err := NewCluster(Config{F: 1, OSes: []osmap.Distro{osmap.Debian}}); err == nil {
		t.Error("wrong OS count accepted")
	}
	if _, err := NewCluster(Config{F: 2, OSes: Homogeneous(osmap.Debian, 2)}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHappyPathCommits(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	seq := c.Submit("write x=1")
	c.Run(1000)
	if got := c.Accepted(seq); got != "ok:d(write x=1)" {
		t.Fatalf("accepted = %q", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("safety violations on happy path: %v", v)
	}
	if c.Delivered() != 1 {
		t.Fatalf("delivered = %d", c.Delivered())
	}
}

func TestManyRequests(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	const n = 25
	for i := 0; i < n; i++ {
		c.Submit("op" + string(rune('a'+i)))
	}
	c.Run(10000)
	if c.Delivered() != n {
		t.Fatalf("delivered %d of %d", c.Delivered(), n)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestToleratesSilentBackup(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	if err := c.Compromise(2, Silent); err != nil {
		t.Fatal(err)
	}
	seq := c.Submit("op")
	c.Run(1000)
	if c.Accepted(seq) == "" {
		t.Fatal("request did not complete with one silent backup")
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestSilentPrimaryTriggersViewChange(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	c.Compromise(0, Silent) // view-0 primary
	seq := c.Submit("op")
	c.Run(10000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("request lost after primary failure: %q", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestEquivocatingPrimaryCannotSplit(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	c.Compromise(0, Equivocate)
	seq := c.Submit("op")
	c.Run(10000)
	// The view change must recover the request with an honest primary.
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("accepted = %q", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("equivocation broke safety with f=1: %v", v)
	}
}

func TestForgingMinorityDetected(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	c.Compromise(3, ForgeReplies)
	seq := c.Submit("op")
	c.Run(1000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("client accepted %q with one forger", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestForgingMajorityBreaksValidity(t *testing.T) {
	// f+1 = 2 forging replicas can hand the client a forged result:
	// exactly the failure mode shared vulnerabilities enable.
	c := newTestCluster(t, set1OSes())
	c.Compromise(1, ForgeReplies)
	c.Compromise(2, ForgeReplies)
	c.Submit("op")
	c.Run(10000)
	violations := c.SafetyReport()
	found := false
	for _, v := range violations {
		if strings.Contains(v, "validity violation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a validity violation with f+1 forgers, got %v", violations)
	}
}

func TestCompromiseByOS(t *testing.T) {
	// Homogeneous cluster: one OS exploit takes every replica at once.
	c := newTestCluster(t, Homogeneous(osmap.Debian, 1))
	n := c.CompromiseByOS(osmap.Debian, ForgeReplies)
	if n != 4 || c.CompromisedCount() != 4 {
		t.Fatalf("CompromiseByOS hit %d replicas, want 4", n)
	}
	// Diverse cluster: the same exploit touches only the Debian replica.
	d := newTestCluster(t, set1OSes())
	n = d.CompromiseByOS(osmap.Debian, ForgeReplies)
	if n != 1 || d.CompromisedCount() != 1 {
		t.Fatalf("diverse CompromiseByOS hit %d replicas, want 1", n)
	}
	// Re-compromising is idempotent.
	if d.CompromiseByOS(osmap.Debian, Silent) != 0 {
		t.Error("re-compromise affected an already-compromised replica")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (string, int) {
		c := newTestCluster(t, set1OSes())
		c.Compromise(0, Silent)
		seq := c.Submit("op")
		c.Run(10000)
		return c.Accepted(seq), c.Delivered()
	}
	a1, d1 := run()
	a2, d2 := run()
	if a1 != a2 || d1 != d2 {
		t.Fatalf("runs differ: (%q,%d) vs (%q,%d)", a1, d1, a2, d2)
	}
}

func TestF2Cluster(t *testing.T) {
	oses := []osmap.Distro{
		osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD,
		osmap.NetBSD, osmap.RedHat, osmap.FreeBSD,
	}
	c, err := NewCluster(Config{F: 2, OSes: oses, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c.Compromise(1, Silent)
	c.Compromise(4, ForgeReplies)
	seq := c.Submit("op")
	c.Run(10000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("f=2 cluster with 2 compromised failed: %q", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestBehaviorStrings(t *testing.T) {
	for b, want := range map[Behavior]string{
		Honest: "honest", Silent: "silent", Equivocate: "equivocate", ForgeReplies: "forge-replies",
	} {
		if b.String() != want {
			t.Errorf("%d.String() = %q", b, b.String())
		}
	}
}

func TestOSesAccessor(t *testing.T) {
	c := newTestCluster(t, set1OSes())
	oses := c.OSes()
	if len(oses) != 4 || oses[0] != osmap.Windows2003 {
		t.Fatalf("OSes() = %v", oses)
	}
}

func TestProactiveRecovery(t *testing.T) {
	// A compromised replica rejuvenates and rejoins the protocol: after
	// recovery the cluster commits with full safety again.
	c := newTestCluster(t, set1OSes())
	c.Compromise(1, ForgeReplies)
	c.Compromise(2, ForgeReplies)
	if err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if c.CompromisedCount() != 1 {
		t.Fatalf("compromised after recovery = %d, want 1", c.CompromisedCount())
	}
	seq := c.Submit("op")
	c.Run(10000)
	if got := c.Accepted(seq); got != "ok:d(op)" {
		t.Fatalf("post-recovery request = %q", got)
	}
	if v := c.SafetyReport(); len(v) != 0 {
		t.Fatalf("violations after recovery: %v", v)
	}
	if err := c.Recover(99); err == nil {
		t.Error("Recover accepted bad id")
	}
}

func TestRecoverByOS(t *testing.T) {
	c := newTestCluster(t, Homogeneous(osmap.Debian, 1))
	c.CompromiseByOS(osmap.Debian, Silent)
	if n := c.RecoverByOS(osmap.Debian); n != 4 {
		t.Fatalf("RecoverByOS restored %d, want 4", n)
	}
	if c.CompromisedCount() != 0 {
		t.Fatal("replicas still compromised after RecoverByOS")
	}
	if c.RecoverByOS(osmap.Debian) != 0 {
		t.Error("RecoverByOS on honest replicas did work")
	}
}
