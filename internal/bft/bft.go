// Package bft simulates a PBFT-style intrusion-tolerant replicated
// service — the class of system (BFS, DepSpace) whose replica selection
// the paper's study informs.
//
// The simulation is message-level and discrete-event: replicas exchange
// pre-prepare/prepare/commit messages with deterministic latencies, use
// 2f+1 quorums out of n = 3f+1 replicas, and fall back to a view change
// when the primary stalls or equivocates. Compromised replicas are
// driven by an adversary behavior (silent, equivocating, or forging
// client replies), so experiments can observe exactly the property the
// paper cares about: the service stays correct while at most f replicas
// are compromised and breaks once the adversary holds f+1.
package bft

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"osdiversity/internal/osmap"
)

// NodeID identifies a replica (0..n-1).
type NodeID int

// Behavior is how a compromised replica acts.
type Behavior int

// Adversary behaviors.
const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Silent drops every message (crash-like).
	Silent
	// Equivocate sends conflicting pre-prepares when primary and
	// conflicting prepares otherwise.
	Equivocate
	// ForgeReplies executes the protocol but returns a corrupted result
	// to the client.
	ForgeReplies
)

// String names the behavior.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case Equivocate:
		return "equivocate"
	case ForgeReplies:
		return "forge-replies"
	default:
		return "unknown"
	}
}

// msgType enumerates protocol messages.
type msgType int

const (
	msgPrePrepare msgType = iota
	msgPrepare
	msgCommit
	msgReply
	msgViewChange
	msgNewView
	msgTimeout  // internal timer event
	msgDispatch // internal: primary re-proposes after a view change
)

// message is one network event.
type message struct {
	at     float64
	from   NodeID
	to     NodeID
	kind   msgType
	view   int
	seq    int
	digest string
	body   string
}

// eventQueue is a min-heap over delivery times with a deterministic
// tiebreaker so runs replay identically.
type eventQueue []*message

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	if q[i].from != q[j].from {
		return q[i].from < q[j].from
	}
	return q[i].to < q[j].to
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*message)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); m := old[n-1]; *q = old[:n-1]; return m }

// replica is one node's protocol state.
type replica struct {
	id       NodeID
	os       osmap.Distro
	behavior Behavior

	view      int
	preprep   map[int]string // seq -> accepted digest in current view
	prepares  map[int]map[NodeID]string
	commits   map[int]map[NodeID]string
	executed  map[int]string          // seq -> digest executed
	vcVotes   map[int]map[NodeID]bool // proposed view -> voters
	execOrder []string
}

func newReplica(id NodeID, os osmap.Distro) *replica {
	return &replica{
		id:       id,
		os:       os,
		preprep:  make(map[int]string),
		prepares: make(map[int]map[NodeID]string),
		commits:  make(map[int]map[NodeID]string),
		executed: make(map[int]string),
		vcVotes:  make(map[int]map[NodeID]bool),
	}
}

// Config describes a cluster.
type Config struct {
	// F is the fault threshold; the cluster has 3F+1 replicas.
	F int
	// OSes assigns an operating system to each replica; its length must
	// be 3F+1 (use Homogeneous to repeat one).
	OSes []osmap.Distro
	// BaseLatency is the one-way message latency (simulated time units).
	// Zero means 1.0.
	BaseLatency float64
	// Timeout is the view-change timeout. Zero means 20x BaseLatency.
	Timeout float64
	// Seed jitters per-link latency deterministically.
	Seed uint64
}

// Homogeneous builds an OS list with one distribution on every replica.
func Homogeneous(d osmap.Distro, f int) []osmap.Distro {
	oses := make([]osmap.Distro, 3*f+1)
	for i := range oses {
		oses[i] = d
	}
	return oses
}

// Cluster is a simulated replicated service.
type Cluster struct {
	cfg      Config
	n        int
	replicas []*replica
	queue    eventQueue
	now      float64
	rngState uint64

	// client bookkeeping
	nextSeq   int
	replies   map[int]map[NodeID]string // request seq -> replies
	accepted  map[int]string            // request seq -> accepted result
	conflicts []string                  // descriptions of safety violations observed
	delivered int
}

// NewCluster validates the configuration and builds the cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.F < 1 {
		return nil, errors.New("bft: F must be at least 1")
	}
	n := 3*cfg.F + 1
	if len(cfg.OSes) != n {
		return nil, fmt.Errorf("bft: need %d OSes for F=%d, got %d", n, cfg.F, len(cfg.OSes))
	}
	if cfg.BaseLatency == 0 {
		cfg.BaseLatency = 1.0
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 20 * cfg.BaseLatency
	}
	c := &Cluster{
		cfg:      cfg,
		n:        n,
		replies:  make(map[int]map[NodeID]string),
		accepted: make(map[int]string),
		rngState: cfg.Seed | 1,
	}
	for i := 0; i < n; i++ {
		c.replicas = append(c.replicas, newReplica(NodeID(i), cfg.OSes[i]))
	}
	return c, nil
}

// Compromise switches a replica to an adversary behavior.
func (c *Cluster) Compromise(id NodeID, b Behavior) error {
	if int(id) < 0 || int(id) >= c.n {
		return fmt.Errorf("bft: no replica %d", id)
	}
	c.replicas[id].behavior = b
	return nil
}

// CompromiseByOS compromises every replica running a distribution,
// modeling a shared-vulnerability exploit. It returns how many replicas
// were affected.
func (c *Cluster) CompromiseByOS(d osmap.Distro, b Behavior) int {
	n := 0
	for _, r := range c.replicas {
		if r.os == d && r.behavior == Honest {
			r.behavior = b
			n++
		}
	}
	return n
}

// Recover restores a replica to honest behavior, modeling the proactive
// recovery of Castro & Liskov's PBFT-PR (the paper's reference [3]): the
// replica is rejuvenated from a clean image and rejoins the protocol.
// Its protocol state for in-flight requests is reset.
func (c *Cluster) Recover(id NodeID) error {
	if int(id) < 0 || int(id) >= c.n {
		return fmt.Errorf("bft: no replica %d", id)
	}
	old := c.replicas[id]
	fresh := newReplica(id, old.os)
	fresh.view = old.view
	c.replicas[id] = fresh
	return nil
}

// RecoverByOS rejuvenates every replica running a distribution,
// returning how many were restored.
func (c *Cluster) RecoverByOS(d osmap.Distro) int {
	n := 0
	for _, r := range c.replicas {
		if r.os == d && r.behavior != Honest {
			c.Recover(r.id)
			n++
		}
	}
	return n
}

// Rotate redeploys the cluster on a new OS assignment, modeling the
// rotation boundary of a dynamic-diversity schedule: every replica is
// rejuvenated from a clean image of its new distribution. Protocol
// state for in-flight requests resets; views are preserved so the
// cluster keeps its primary succession across the boundary.
func (c *Cluster) Rotate(oses []osmap.Distro) error {
	if len(oses) != c.n {
		return fmt.Errorf("bft: need %d OSes for F=%d, got %d", c.n, c.cfg.F, len(oses))
	}
	for i, r := range c.replicas {
		fresh := newReplica(r.id, oses[i])
		fresh.view = r.view
		c.replicas[i] = fresh
	}
	return nil
}

// CompromisedCount returns the number of non-honest replicas.
func (c *Cluster) CompromisedCount() int {
	n := 0
	for _, r := range c.replicas {
		if r.behavior != Honest {
			n++
		}
	}
	return n
}

// jitter returns a small deterministic latency perturbation in [0, 0.5).
func (c *Cluster) jitter() float64 {
	x := c.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rngState = x
	return float64((x*0x2545F4914F6CDD1D)%1000) / 2000
}

func (c *Cluster) send(from, to NodeID, kind msgType, view, seq int, digest, body string) {
	if from != -1 && c.replicas[from].behavior == Silent {
		return
	}
	heap.Push(&c.queue, &message{
		at:     c.now + c.cfg.BaseLatency + c.jitter(),
		from:   from,
		to:     to,
		kind:   kind,
		view:   view,
		seq:    seq,
		digest: digest,
		body:   body,
	})
}

func (c *Cluster) broadcast(from NodeID, kind msgType, view, seq int, digest, body string) {
	for i := 0; i < c.n; i++ {
		if NodeID(i) != from {
			c.send(from, NodeID(i), kind, view, seq, digest, body)
		}
	}
}

// primaryOf returns the primary for a view.
func (c *Cluster) primaryOf(view int) NodeID { return NodeID(view % c.n) }

// Submit schedules a client request. The digest is derived from the
// operation; honest replicas reply with "ok:<op>".
func (c *Cluster) Submit(op string) int {
	seq := c.nextSeq
	c.nextSeq++
	// The client sends to the primary of the current (view-0) primary;
	// view changes re-propose via NewView.
	c.dispatchRequest(seq, op, 0)
	// Arm the client-side timeout that triggers a view change.
	heap.Push(&c.queue, &message{at: c.now + c.cfg.Timeout, from: -1, to: -1, kind: msgTimeout, seq: seq, view: 0, body: op})
	return seq
}

func (c *Cluster) dispatchRequest(seq int, op string, view int) {
	primary := c.primaryOf(view)
	p := c.replicas[primary]
	digest := fmt.Sprintf("d(%s)", op)
	switch p.behavior {
	case Silent:
		// Primary drops the request; the timeout will fire.
	case Equivocate:
		// Conflicting digests to different halves of the cluster.
		for i := 0; i < c.n; i++ {
			if NodeID(i) == primary {
				continue
			}
			alt := digest
			if i%2 == 0 {
				alt = fmt.Sprintf("evil(%s)", op)
			}
			c.send(primary, NodeID(i), msgPrePrepare, view, seq, alt, op)
		}
	default:
		c.broadcast(primary, msgPrePrepare, view, seq, digest, op)
		// The primary prepares its own proposal implicitly.
		c.recordPrepare(p, view, seq, digest, primary)
	}
}

// Run drains the event queue up to the time horizon and returns the
// simulated completion time.
func (c *Cluster) Run(horizon float64) float64 {
	for c.queue.Len() > 0 {
		m := heap.Pop(&c.queue).(*message)
		if m.at > horizon {
			// Leave the event for a later Run — a partial run must not
			// swallow the first message beyond its horizon.
			heap.Push(&c.queue, m)
			break
		}
		c.now = m.at
		c.deliver(m)
	}
	return c.now
}

func (c *Cluster) deliver(m *message) {
	switch m.kind {
	case msgTimeout:
		// Client timeout: if the request was not accepted, every live
		// replica votes for the next view, and the timer re-arms in
		// case the next primary is compromised too.
		if _, done := c.accepted[m.seq]; !done {
			for _, r := range c.replicas {
				if r.behavior == Honest || r.behavior == ForgeReplies {
					c.voteViewChange(r, m.view+1, m.seq, m.body)
				}
			}
			if m.view < c.n+2 {
				heap.Push(&c.queue, &message{
					at: c.now + c.cfg.Timeout, from: -1, to: -1,
					kind: msgTimeout, seq: m.seq, view: m.view + 1, body: m.body,
				})
			}
		}
		return
	case msgDispatch:
		c.dispatchRequest(m.seq, m.body, m.view)
		return
	}
	if m.to == -1 {
		c.clientDeliver(m)
		return
	}
	r := c.replicas[m.to]
	if r.behavior == Silent {
		return
	}
	switch m.kind {
	case msgPrePrepare:
		c.onPrePrepare(r, m)
	case msgPrepare:
		c.onPrepare(r, m)
	case msgCommit:
		c.onCommit(r, m)
	case msgViewChange:
		c.onViewChange(r, m)
	case msgNewView:
		c.onNewView(r, m)
	}
}

func (c *Cluster) onPrePrepare(r *replica, m *message) {
	if m.view != r.view || m.from != c.primaryOf(m.view) {
		return
	}
	if prev, ok := r.preprep[m.seq]; ok && prev != m.digest {
		// Conflicting pre-prepare from the primary: demand a view change.
		c.voteViewChange(r, r.view+1, m.seq, m.body)
		return
	}
	r.preprep[m.seq] = m.digest
	// The pre-prepare doubles as the primary's prepare vote.
	c.recordPrepare(r, m.view, m.seq, m.digest, m.from)
	digest := m.digest
	if r.behavior == Equivocate {
		digest = "evil(" + m.body + ")"
	}
	c.broadcast(r.id, msgPrepare, m.view, m.seq, digest, m.body)
	c.recordPrepare(r, m.view, m.seq, digest, r.id)
}

// voteViewChange broadcasts a view-change vote and records the voter's
// own voice (broadcast excludes self).
func (c *Cluster) voteViewChange(r *replica, view, seq int, body string) {
	c.broadcast(r.id, msgViewChange, view, seq, "", body)
	c.onViewChange(r, &message{from: r.id, view: view, seq: seq, body: body})
}

func (c *Cluster) recordPrepare(r *replica, view, seq int, digest string, from NodeID) {
	if view != r.view {
		return
	}
	votes, ok := r.prepares[seq]
	if !ok {
		votes = make(map[NodeID]string)
		r.prepares[seq] = votes
	}
	votes[from] = digest
	// Prepared when 2f+1 replicas (including self) agree on one digest
	// that matches the accepted pre-prepare.
	want, ok := r.preprep[seq]
	if !ok {
		return
	}
	n := 0
	for _, d := range votes {
		if d == want {
			n++
		}
	}
	if n >= 2*c.cfg.F+1 {
		if cm, ok := r.commits[seq]; !ok || cm[r.id] == "" {
			c.broadcast(r.id, msgCommit, view, seq, want, "")
			c.recordCommit(r, view, seq, want, r.id)
		}
	}
}

func (c *Cluster) onPrepare(r *replica, m *message) {
	c.recordPrepare(r, m.view, m.seq, m.digest, m.from)
}

func (c *Cluster) recordCommit(r *replica, view, seq int, digest string, from NodeID) {
	if view != r.view {
		return
	}
	votes, ok := r.commits[seq]
	if !ok {
		votes = make(map[NodeID]string)
		r.commits[seq] = votes
	}
	votes[from] = digest
	n := 0
	for _, d := range votes {
		if d == digest {
			n++
		}
	}
	if n >= 2*c.cfg.F+1 && r.executed[seq] == "" {
		r.executed[seq] = digest
		r.execOrder = append(r.execOrder, fmt.Sprintf("%d:%s", seq, digest))
		result := "ok:" + digest
		if r.behavior == ForgeReplies {
			result = "forged:" + digest
		}
		c.send(r.id, -1, msgReply, view, seq, digest, result)
	}
}

func (c *Cluster) onCommit(r *replica, m *message) {
	c.recordCommit(r, m.view, m.seq, m.digest, m.from)
}

func (c *Cluster) onViewChange(r *replica, m *message) {
	if m.view <= r.view {
		return
	}
	votes, ok := r.vcVotes[m.view]
	if !ok {
		votes = make(map[NodeID]bool)
		r.vcVotes[m.view] = votes
	}
	votes[m.from] = true
	if len(votes) >= 2*c.cfg.F+1 && c.primaryOf(m.view) == r.id && r.behavior != Silent {
		// New primary installs the view, announces it, and re-proposes
		// the request after the announcement has had time to land.
		c.broadcast(r.id, msgNewView, m.view, m.seq, "", m.body)
		r.view = m.view
		heap.Push(&c.queue, &message{
			at: c.now + 2*c.cfg.BaseLatency, from: -1, to: -1,
			kind: msgDispatch, seq: m.seq, view: m.view, body: m.body,
		})
	}
}

func (c *Cluster) onNewView(r *replica, m *message) {
	if m.view > r.view {
		r.view = m.view
		// Reset per-view progress for the re-proposed request.
		delete(r.preprep, m.seq)
		delete(r.prepares, m.seq)
		delete(r.commits, m.seq)
		delete(r.executed, m.seq)
	}
}

// clientDeliver gathers replies; the client accepts a result once f+1
// replicas agree on it.
func (c *Cluster) clientDeliver(m *message) {
	if m.kind != msgReply {
		return
	}
	got, ok := c.replies[m.seq]
	if !ok {
		got = make(map[NodeID]string)
		c.replies[m.seq] = got
	}
	got[m.from] = m.body
	if _, done := c.accepted[m.seq]; done {
		return
	}
	counts := make(map[string]int)
	for _, body := range got {
		counts[body]++
	}
	for body, n := range counts {
		if n >= c.cfg.F+1 {
			c.accepted[m.seq] = body
			c.delivered++
			break
		}
	}
}

// Accepted returns the client-visible result of a request ("" when the
// request never completed).
func (c *Cluster) Accepted(seq int) string { return c.accepted[seq] }

// Delivered returns how many requests completed at the client.
func (c *Cluster) Delivered() int { return c.delivered }

// SafetyReport checks the two intrusion-tolerance properties and lists
// any violations:
//
//   - agreement: all honest replicas executed the same digest at every
//     sequence number;
//   - validity: every client-accepted result is an honest "ok:" result.
func (c *Cluster) SafetyReport() []string {
	var violations []string
	// Agreement across honest replicas.
	seqs := make(map[int]bool)
	for _, r := range c.replicas {
		if r.behavior != Honest {
			continue
		}
		for seq := range r.executed {
			seqs[seq] = true
		}
	}
	ordered := make([]int, 0, len(seqs))
	for seq := range seqs {
		ordered = append(ordered, seq)
	}
	sort.Ints(ordered)
	for _, seq := range ordered {
		var digest string
		for _, r := range c.replicas {
			if r.behavior != Honest {
				continue
			}
			d, ok := r.executed[seq]
			if !ok || d == "" {
				continue
			}
			if digest == "" {
				digest = d
				continue
			}
			if d != digest {
				violations = append(violations,
					fmt.Sprintf("agreement violation at seq %d: %q vs %q", seq, digest, d))
				break
			}
		}
	}
	// Validity of client-accepted results.
	for seq, body := range c.accepted {
		if len(body) < 3 || body[:3] != "ok:" {
			violations = append(violations,
				fmt.Sprintf("validity violation at seq %d: client accepted %q", seq, body))
		}
	}
	return violations
}

// OSes returns the per-replica OS assignment.
func (c *Cluster) OSes() []osmap.Distro {
	out := make([]osmap.Distro, c.n)
	for i, r := range c.replicas {
		out[i] = r.os
	}
	return out
}
