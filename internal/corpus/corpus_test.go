package corpus

import (
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

// generateOnce caches the corpus across tests (generation is pure).
var testCorpus *Corpus

func corpusForTest(t *testing.T) *Corpus {
	t.Helper()
	if testCorpus == nil {
		c, err := Generate()
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testCorpus = c
	}
	return testCorpus
}

// clustersOf maps an entry to its affected distributions using the
// registry, the same way the analysis pipeline does.
func clustersOf(e *cve.Entry) map[osmap.Distro]bool {
	out := make(map[osmap.Distro]bool)
	for _, p := range e.Products {
		if d, ok := registry.Cluster(p); ok {
			out[d] = true
		}
	}
	return out
}

func TestGenerateIsClean(t *testing.T) {
	c := corpusForTest(t)
	for _, p := range c.Problems {
		t.Errorf("calibration problem: %s", p)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i].ID != b.Entries[i].ID || a.Entries[i].Summary != b.Entries[i].Summary {
			t.Fatalf("entry %d differs between runs", i)
		}
		if len(a.Entries[i].Products) != len(b.Entries[i].Products) {
			t.Fatalf("entry %d products differ between runs", i)
		}
	}
}

func TestEntriesAreValidAndUnique(t *testing.T) {
	c := corpusForTest(t)
	seen := make(map[cve.ID]bool, len(c.Entries))
	for _, e := range c.Entries {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid entry: %v", err)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %v", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestTableI(t *testing.T) {
	c := corpusForTest(t)
	valid := make(map[osmap.Distro]int)
	invalid := make(map[osmap.Distro]*paperdata.InvalidTotals)
	for _, d := range osmap.Distros() {
		invalid[d] = &paperdata.InvalidTotals{}
	}
	distinctValid, distinctUnknown, distinctUnspec, distinctDisputed := 0, 0, 0, 0
	for _, e := range c.Entries {
		ds := clustersOf(e)
		switch classify.EntryValidity(e) {
		case classify.Valid:
			distinctValid++
			for d := range ds {
				valid[d]++
			}
		case classify.Unknown:
			distinctUnknown++
			for d := range ds {
				invalid[d].Unknown++
			}
		case classify.Unspecified:
			distinctUnspec++
			for d := range ds {
				invalid[d].Unspecified++
			}
		case classify.Disputed:
			distinctDisputed++
			for d := range ds {
				invalid[d].Disputed++
			}
		}
	}
	for _, d := range osmap.Distros() {
		if valid[d] != paperdata.ValidCounts[d] {
			t.Errorf("%v: valid = %d, paper %d", d, valid[d], paperdata.ValidCounts[d])
		}
		want := paperdata.InvalidCounts[d]
		if *invalid[d] != want {
			t.Errorf("%v: invalid = %+v, paper %+v", d, *invalid[d], want)
		}
	}
	if distinctValid != paperdata.DistinctValid {
		t.Errorf("distinct valid = %d, paper %d", distinctValid, paperdata.DistinctValid)
	}
	if distinctUnknown != paperdata.DistinctInvalid.Unknown ||
		distinctUnspec != paperdata.DistinctInvalid.Unspecified ||
		distinctDisputed != paperdata.DistinctInvalid.Disputed {
		t.Errorf("distinct invalid = %d/%d/%d, paper %d/%d/%d",
			distinctUnknown, distinctUnspec, distinctDisputed,
			paperdata.DistinctInvalid.Unknown, paperdata.DistinctInvalid.Unspecified, paperdata.DistinctInvalid.Disputed)
	}
}

func TestTableII(t *testing.T) {
	c := corpusForTest(t)
	classifier := classify.NewClassifier()
	got := make(map[osmap.Distro]*paperdata.ClassCounts)
	for _, d := range osmap.Distros() {
		got[d] = &paperdata.ClassCounts{}
	}
	for _, e := range c.Entries {
		if classify.EntryValidity(e) != classify.Valid {
			continue
		}
		class := classifier.Classify(e)
		for d := range clustersOf(e) {
			switch class {
			case classify.ClassDriver:
				got[d].Driver++
			case classify.ClassKernel:
				got[d].Kernel++
			case classify.ClassSysSoft:
				got[d].SysSoft++
			case classify.ClassApplication:
				got[d].App++
			default:
				t.Fatalf("entry %v unclassified: %q", e.ID, e.Summary)
			}
		}
	}
	for _, d := range osmap.Distros() {
		want := paperdata.ClassTable[d]
		if *got[d] != want {
			t.Errorf("%v: classes = %+v, paper %+v", d, *got[d], want)
		}
	}
}

// overlap recomputes one pair's Table III cell from the corpus.
func overlap(c *Corpus, classifier *classify.Classifier, p osmap.Pair) paperdata.PairCounts {
	var out paperdata.PairCounts
	for _, e := range c.Entries {
		if classify.EntryValidity(e) != classify.Valid {
			continue
		}
		ds := clustersOf(e)
		if !ds[p.A] || !ds[p.B] {
			continue
		}
		out.All++
		if classifier.Classify(e) == classify.ClassApplication {
			continue
		}
		out.NoApp++
		if e.Remote() {
			out.Remote++
		}
	}
	return out
}

func TestTableIII(t *testing.T) {
	c := corpusForTest(t)
	classifier := classify.NewClassifier()
	for _, p := range osmap.AllPairs() {
		got := overlap(c, classifier, p)
		want := paperdata.PairTable[p]
		if got != want {
			t.Errorf("%v: overlap = %+v, paper %+v", p, got, want)
		}
	}
}

func TestTableIV(t *testing.T) {
	c := corpusForTest(t)
	classifier := classify.NewClassifier()
	for _, p := range osmap.AllPairs() {
		var got paperdata.PartCounts
		for _, e := range c.Entries {
			if classify.EntryValidity(e) != classify.Valid || !e.Remote() {
				continue
			}
			ds := clustersOf(e)
			if !ds[p.A] || !ds[p.B] {
				continue
			}
			switch classifier.Classify(e) {
			case classify.ClassDriver:
				got.Driver++
			case classify.ClassKernel:
				got.Kernel++
			case classify.ClassSysSoft:
				got.SysSoft++
			}
		}
		want := paperdata.PartTable[p] // zero value for absent rows
		if got != want {
			t.Errorf("%v: parts = %+v, paper %+v", p, got, want)
		}
	}
}

func TestTableV(t *testing.T) {
	c := corpusForTest(t)
	classifier := classify.NewClassifier()
	for p, want := range paperdata.PeriodTable {
		var got paperdata.PeriodCounts
		for _, e := range c.Entries {
			if classify.EntryValidity(e) != classify.Valid || !e.Remote() {
				continue
			}
			if classifier.Classify(e) == classify.ClassApplication {
				continue
			}
			ds := clustersOf(e)
			if !ds[p.A] || !ds[p.B] {
				continue
			}
			if e.Year() <= paperdata.HistoryEndYear {
				got.History++
			} else {
				got.Observed++
			}
		}
		if got != want {
			t.Errorf("%v: periods = %+v, paper %+v", p, got, want)
		}
	}
}

func TestSpecialCVEsPresent(t *testing.T) {
	c := corpusForTest(t)
	for _, s := range paperdata.SpecialCVEs {
		e := c.EntryByID(cve.MustID(s.ID))
		if e == nil {
			t.Fatalf("special CVE %s missing", s.ID)
		}
		wantProducts := len(s.Clusters) + len(s.ExtraProducts)
		if len(e.Products) != wantProducts {
			t.Errorf("%s: %d products, want %d", s.ID, len(e.Products), wantProducts)
		}
		if !e.Remote() {
			t.Errorf("%s must be remote", s.ID)
		}
		if classify.NewClassifier().Classify(e) != classify.ClassKernel {
			t.Errorf("%s must classify as kernel, summary %q", s.ID, e.Summary)
		}
	}
}

func TestKWiseProductTargets(t *testing.T) {
	c := corpusForTest(t)
	atLeast := make(map[int]int)
	exact := make(map[int]int)
	for _, e := range c.Entries {
		if classify.EntryValidity(e) != classify.Valid {
			continue
		}
		// Count distinct products (vendor+product+any version counts
		// once per distinct platform name, as NVD lists them).
		seen := map[string]bool{}
		for _, p := range e.Products {
			seen[p.Vendor+"/"+p.Product] = true
		}
		n := len(seen)
		exact[n]++
		for k := 3; k <= n; k++ {
			atLeast[k]++
		}
	}
	for k, want := range paperdata.KWiseProducts {
		if atLeast[k] != want {
			t.Errorf("products >= %d: got %d, paper %d", k, atLeast[k], want)
		}
	}
	if exact[7] != 0 || exact[8] != 0 {
		t.Errorf("unexpected 7- or 8-product entries: %d, %d", exact[7], exact[8])
	}
}

func TestTableVIReleases(t *testing.T) {
	c := corpusForTest(t)
	classifier := classify.NewClassifier()
	// Recompute release-level overlap: a vulnerability affects
	// (distro, version) when it lists that product version.
	studied := map[string]struct {
		d osmap.Distro
		v string
	}{
		"Debian2.1":  {osmap.Debian, "2.1"},
		"Debian3.0":  {osmap.Debian, "3.0"},
		"Debian4.0":  {osmap.Debian, "4.0"},
		"RedHat6.2*": {osmap.RedHat, "6.2*"},
		"RedHat4.0":  {osmap.RedHat, "4.0"},
		"RedHat5.0":  {osmap.RedHat, "5.0"},
	}
	affects := func(e *cve.Entry, d osmap.Distro, version string) bool {
		for _, p := range e.Products {
			if got, ok := registry.Cluster(p); ok && got == d && p.Version == version {
				return true
			}
		}
		return false
	}
	for cell, want := range paperdata.ReleaseTable {
		a, b := studied[cell.A], studied[cell.B]
		got := 0
		for _, e := range c.Entries {
			if classify.EntryValidity(e) != classify.Valid || !e.Remote() {
				continue
			}
			if classifier.Classify(e) == classify.ClassApplication {
				continue
			}
			if affects(e, a.d, a.v) && affects(e, b.d, b.v) {
				got++
			}
		}
		if got != want {
			t.Errorf("releases %s-%s: got %d, paper %d", cell.A, cell.B, got, want)
		}
	}
}

func TestWindows2000PreRelease(t *testing.T) {
	c := corpusForTest(t)
	n := 0
	for _, e := range c.Entries {
		if classify.EntryValidity(e) != classify.Valid {
			continue
		}
		if e.Year() >= 1999 {
			continue
		}
		if clustersOf(e)[osmap.Windows2000] {
			n++
			if !e.AffectsProduct("microsoft", "windows_nt") {
				t.Errorf("pre-1999 Windows2000 entry %v does not list windows_nt", e.ID)
			}
		}
	}
	if n != paperdata.Windows2000PreReleaseEntries {
		t.Errorf("pre-1999 Windows2000 entries = %d, paper reports %d", n, paperdata.Windows2000PreReleaseEntries)
	}
}

func TestYearsRespectFirstRelease(t *testing.T) {
	c := corpusForTest(t)
	for i, e := range c.Entries {
		s := c.Specs[i]
		if s.PreRelease {
			continue
		}
		for d := range clustersOf(e) {
			if e.Year() < d.FirstReleaseYear() {
				t.Errorf("entry %v year %d precedes %v first release %d", e.ID, e.Year(), d, d.FirstReleaseYear())
			}
		}
		if e.Year() < paperdata.StudyStartYear || e.Year() > paperdata.StudyEndYear {
			t.Errorf("entry %v year %d outside study window", e.ID, e.Year())
		}
	}
}

func TestHistoryShareRoughlyTwoThirds(t *testing.T) {
	c := corpusForTest(t)
	hist, total := 0, 0
	for _, e := range c.Entries {
		if classify.EntryValidity(e) != classify.Valid {
			continue
		}
		total++
		if e.Year() <= paperdata.HistoryEndYear {
			hist++
		}
	}
	share := float64(hist) / float64(total)
	if share < 0.55 || share < 0.0 || share > 0.8 {
		t.Errorf("history share = %.2f, paper says about 2/3", share)
	}
}

func TestSummariesClassifyAsPlanned(t *testing.T) {
	c := corpusForTest(t)
	classifier := classify.NewClassifier()
	for i, e := range c.Entries {
		s := c.Specs[i]
		if s.Validity != classify.Valid {
			if classify.EntryValidity(e) != s.Validity {
				t.Fatalf("entry %v validity = %v, planned %v (summary %q)",
					e.ID, classify.EntryValidity(e), s.Validity, e.Summary)
			}
			continue
		}
		if got := classifier.Classify(e); got != s.Class {
			t.Fatalf("entry %v classified %v, planned %v (summary %q)", e.ID, got, s.Class, e.Summary)
		}
		if e.Remote() != s.Remote {
			t.Fatalf("entry %v remote = %v, planned %v", e.ID, e.Remote(), s.Remote)
		}
	}
}

func TestFilterReductionNearPaper(t *testing.T) {
	// §IV-E(1): Fat → Isolated Thin cuts shared vulnerabilities by 56%
	// on average over the 55 pairs (pairs that start at zero contribute
	// zero reduction).
	var sum float64
	n := 0
	for _, counts := range paperdata.PairTable {
		if counts.All == 0 {
			continue
		}
		sum += float64(counts.All-counts.Remote) / float64(counts.All)
		n++
	}
	avg := 100 * sum / float64(n)
	if avg < float64(paperdata.FilterReductionPct)-8 || avg > float64(paperdata.FilterReductionPct)+8 {
		t.Errorf("average reduction = %.0f%%, paper says %d%%", avg, paperdata.FilterReductionPct)
	}
}
