package corpus

import (
	"fmt"
	"sync"
	"time"

	"osdiversity/internal/classify"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/cvss"
	"osdiversity/internal/osmap"
)

// registry is the shared OS registry used for canonical names and
// release timelines.
var registry = osmap.NewRegistry()

// summaryTemplates provides description templates per component class.
// Each template contains keywords of exactly its class's rule (checked
// by tests against the classify package), so the hand-classification
// substitute reproduces the intended class for every generated entry.
var summaryTemplates = map[classify.Class][]string{
	classify.ClassDriver: {
		"Buffer overflow in the wireless card driver allows %s attackers to execute arbitrary code via crafted frames.",
		"Memory corruption in the video card driver allows %s attackers to cause a denial of service via a malformed request.",
		"Integer overflow in the audio card driver allows %s attackers to overwrite heap memory.",
		"Race condition in the usb device driver allows %s attackers to gain privileges via a crafted descriptor.",
	},
	classify.ClassKernel: {
		"Integer overflow in the kernel memory management allows %s attackers to execute arbitrary code via a crafted mapping.",
		"The TCP implementation in the kernel allows %s attackers to cause a denial of service via crafted segments.",
		"Race condition in the file system layer of the kernel allows %s attackers to read arbitrary memory.",
		"Off-by-one error in the kernel signal handling allows %s attackers to gain privileges.",
		"The IP implementation in the kernel allows %s attackers to cause a denial of service via malformed fragment reassembly.",
		"Heap-based buffer overflow in the kernel system call interface allows %s attackers to gain privileges via crafted arguments.",
	},
	classify.ClassSysSoft: {
		"Off-by-one error in sshd allows %s attackers to bypass authentication via a crafted handshake.",
		"Format string vulnerability in syslogd allows %s attackers to execute arbitrary code via crafted messages.",
		"Race condition in cron allows %s attackers to gain privileges via a symlink attack.",
		"Buffer overflow in the login program allows %s attackers to gain privileges via a long environment variable.",
		"Untrusted search path in sudo allows %s attackers to execute arbitrary commands.",
		"Stack-based buffer overflow in ntpd allows %s attackers to execute arbitrary code via a crafted packet.",
	},
	classify.ClassApplication: {
		"Use-after-free in the bundled web browser allows %s attackers to execute arbitrary code via a crafted page.",
		"SQL injection in the bundled database server allows %s attackers to read arbitrary records.",
		"Heap-based buffer overflow in the media player allows %s attackers to execute arbitrary code via a crafted playlist.",
		"Directory traversal in the ftp server allows %s attackers to read arbitrary files.",
		"Double free in the kerberos library allows %s attackers to execute arbitrary code via crafted tickets.",
		"Cross-site scripting in the bundled web server allows %s attackers to inject arbitrary script.",
	},
}

// validityPrefixes renders the NVD editorial tags the paper filters on.
var validityPrefixes = map[classify.Validity]string{
	classify.Unknown:     "Unknown vulnerability in ",
	classify.Unspecified: "Unspecified vulnerability in ",
	classify.Disputed:    "** DISPUTED ** Issue in ",
}

// invalidSubjects vary the invalid-entry descriptions.
var invalidSubjects = []string{
	"the operating system allows attackers to cause unspecified impact.",
	"an unknown component has unspecified attack vectors and impact.",
	"the base system allows attackers to compromise the platform via unknown vectors.",
}

// remoteVectors and localVectors supply CVSS base vectors consistent
// with each spec's locality.
var remoteVectors = []cvss.Vector{
	cvss.MustParse("AV:N/AC:L/Au:N/C:P/I:P/A:P"),
	cvss.MustParse("AV:N/AC:M/Au:N/C:N/I:N/A:C"),
	cvss.MustParse("AV:N/AC:L/Au:N/C:C/I:C/A:C"),
	cvss.MustParse("AV:N/AC:L/Au:N/C:N/I:P/A:N"),
	cvss.MustParse("AV:A/AC:L/Au:N/C:P/I:N/A:P"),
	cvss.MustParse("AV:N/AC:H/Au:N/C:P/I:P/A:P"),
}

var localVectors = []cvss.Vector{
	cvss.MustParse("AV:L/AC:L/Au:N/C:C/I:C/A:C"),
	cvss.MustParse("AV:L/AC:L/Au:N/C:P/I:P/A:P"),
	cvss.MustParse("AV:L/AC:M/Au:N/C:N/I:N/A:C"),
	cvss.MustParse("AV:L/AC:L/Au:S/C:P/I:N/A:N"),
}

// render materializes every spec into a cve.Entry. With more than one
// worker the specs render concurrently; each worker writes its own index
// range, so the output is identical to the serial pass.
func (c *Corpus) render() error {
	c.Entries = make([]*cve.Entry, len(c.Specs))
	if c.workers <= 1 || len(c.Specs) < 2*c.workers {
		return c.renderRange(0, len(c.Specs))
	}
	workers := c.workers
	if workers > len(c.Specs) {
		workers = len(c.Specs)
	}
	chunk := (len(c.Specs) + workers - 1) / workers
	nShards := (len(c.Specs) + chunk - 1) / chunk
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	for i := 0; i < nShards; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(c.Specs) {
			hi = len(c.Specs)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			errs[i] = c.renderRange(lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Corpus) renderRange(lo, hi int) error {
	for i := lo; i < hi; i++ {
		e, err := c.renderSpec(c.Specs[i], i)
		if err != nil {
			return fmt.Errorf("corpus: spec %d (%v): %w", i, c.Specs[i].Clusters, err)
		}
		c.Entries[i] = e
	}
	return nil
}

func (c *Corpus) renderSpec(s *Spec, seq int) (*cve.Entry, error) {
	id, err := cve.ParseID(s.FixedID)
	if err != nil {
		return nil, err
	}
	entry := &cve.Entry{
		ID: id,
		// Spread publication over the year deterministically.
		Published: time.Date(s.Year, time.Month(1+seq%12), 1+seq%28, 12, 0, 0, 0, time.UTC),
		Summary:   c.summaryFor(s, seq),
		CVSS:      c.vectorFor(s, seq),
	}
	products, err := c.productsFor(s)
	if err != nil {
		return nil, err
	}
	entry.Products = products
	return entry, nil
}

func (c *Corpus) summaryFor(s *Spec, seq int) string {
	if s.Summary != "" {
		return s.Summary
	}
	if s.Validity != classify.Valid {
		return validityPrefixes[s.Validity] + invalidSubjects[seq%len(invalidSubjects)]
	}
	templates := summaryTemplates[s.Class]
	tpl := templates[seq%len(templates)]
	actor := "local"
	if s.Remote {
		actor = "remote"
	}
	return fmt.Sprintf(tpl, actor)
}

func (c *Corpus) vectorFor(s *Spec, seq int) cvss.Vector {
	if s.Remote {
		return remoteVectors[seq%len(remoteVectors)]
	}
	return localVectors[seq%len(localVectors)]
}

// productsFor renders the affected-platform list: one CPE per affected
// (cluster, release) plus the unclustered extras.
func (c *Corpus) productsFor(s *Spec) ([]cpe.Name, error) {
	var out []cpe.Name
	for _, d := range s.Clusters {
		canon := registry.CanonicalName(d)
		if canon.Product == "" {
			return nil, fmt.Errorf("no canonical CPE for %v", d)
		}
		versions := s.Releases[d]
		if len(versions) == 0 {
			versions = []string{releaseVersionFor(d, s.Year)}
		}
		for _, v := range versions {
			n := canon
			n.Version = v
			out = append(out, n)
		}
	}
	out = append(out, s.Extras...)
	if s.PreRelease {
		// The seven pre-1999 Windows 2000 entries share their flaw with
		// Windows NT (§IV-A).
		out = append(out, cpe.MustParse("cpe:/o:microsoft:windows_nt:4.0"))
	}
	return out, nil
}

// releaseVersionFor returns the release current at the given year (the
// latest release shipped in or before it), or the first release for
// pre-release years.
func releaseVersionFor(d osmap.Distro, year int) string {
	releases := registry.Releases(d)
	if len(releases) == 0 {
		return ""
	}
	version := releases[0].Version
	for _, r := range releases {
		if r.Year <= year {
			version = r.Version
		}
	}
	return version
}
