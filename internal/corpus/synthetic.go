package corpus

import (
	"fmt"
	"sync"
	"time"

	"osdiversity/internal/classify"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/cvss"
	"osdiversity/internal/osmap"
)

// This file generates the synthetic "modern NVD" corpus: a deterministic,
// seeded population of 100k+ entries over an arbitrarily wide distro
// universe, used to exercise the analysis engines at production volume
// (the calibrated corpus reproduces the paper's ~2.1k entries; this one
// stress-tests the shard/merge and bitset paths). Entries carry the same
// vocabulary as the calibrated corpus — summary templates the classifier
// recognises, CVSS vectors matching locality, registry-canonical CPEs —
// so the full text-in/tables-out pipeline runs unchanged.

// SyntheticConfig parameterizes GenerateSynthetic.
type SyntheticConfig struct {
	// Entries is the corpus size (default 100_000).
	Entries int
	// Distros is the universe width (default 32, minimum 2). The first
	// 11 are the paper's real clusters; the rest are synthetic.
	Distros int
	// Seed drives every random choice; the same seed always yields the
	// same corpus, at any worker count.
	Seed uint64
	// FromYear/ToYear bound publication years (default 2002..2025).
	FromYear, ToYear int
	// Workers bounds the rendering pool (default 1; <= 0 means 1).
	Workers int
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Entries == 0 {
		c.Entries = 100_000
	}
	if c.Distros == 0 {
		c.Distros = 32
	}
	if c.FromYear == 0 {
		c.FromYear = 2002
	}
	if c.ToYear == 0 {
		c.ToYear = 2025
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// SyntheticCorpus is a generated population plus the registry defining
// its distro universe (analyses must be built with this registry).
type SyntheticCorpus struct {
	Entries  []*cve.Entry
	Registry *osmap.Registry
	Config   SyntheticConfig
}

// splitmix64 is the SplitMix64 mixing function; it turns (seed, counter)
// pairs into independent deterministic streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// synRand is a per-entry deterministic stream: every draw depends only
// on (seed, entry index, draw counter), so rendering order and worker
// count cannot change the corpus.
type synRand struct {
	base uint64
	ctr  uint64
}

func newSynRand(seed uint64, entry int) *synRand {
	return &synRand{base: splitmix64(seed ^ (uint64(entry)+1)*0xD1342543DE82EF95)}
}

func (r *synRand) next() uint64 {
	r.ctr++
	return splitmix64(r.base + r.ctr)
}

// intn returns a draw in [0, n).
func (r *synRand) intn(n int) int { return int(r.next() % uint64(n)) }

// pct returns a draw in [0, 100).
func (r *synRand) pct() int { return r.intn(100) }

// GenerateSynthetic builds the synthetic corpus. The construction is
// deterministic for a given config: identical output at any parallelism.
func GenerateSynthetic(cfg SyntheticConfig) (*SyntheticCorpus, error) {
	cfg = cfg.withDefaults()
	if cfg.Entries < 1 {
		return nil, fmt.Errorf("corpus: synthetic corpus needs at least 1 entry, got %d", cfg.Entries)
	}
	if cfg.Distros < 2 {
		return nil, fmt.Errorf("corpus: synthetic universe needs at least 2 distros, got %d", cfg.Distros)
	}
	if cfg.FromYear > cfg.ToYear {
		return nil, fmt.Errorf("corpus: year window %d..%d is empty", cfg.FromYear, cfg.ToYear)
	}
	if cfg.FromYear < 1990 || cfg.ToYear > 2099 {
		return nil, fmt.Errorf("corpus: year window %d..%d outside CVE-representable range", cfg.FromYear, cfg.ToYear)
	}
	sc := &SyntheticCorpus{
		Registry: osmap.NewSyntheticRegistry(cfg.Distros),
		Config:   cfg,
		Entries:  make([]*cve.Entry, cfg.Entries),
	}

	// Pass 1 (serial): publication years and per-year CVE sequence
	// numbers. Report volume grows toward recent years (max of two
	// uniform draws), like the real feed.
	span := cfg.ToYear - cfg.FromYear + 1
	years := make([]int, cfg.Entries)
	seqs := make([]int, cfg.Entries)
	perYear := make(map[int]int, span)
	for i := 0; i < cfg.Entries; i++ {
		r := newSynRand(cfg.Seed, i)
		a, b := r.intn(span), r.intn(span)
		if b > a {
			a = b
		}
		y := cfg.FromYear + a
		years[i] = y
		seqs[i] = 10_000 + perYear[y]
		perYear[y]++
	}

	// Pass 2 (parallel): render each entry from its own stream.
	distros := sc.Registry.Distros()
	workers := cfg.Workers
	if workers > cfg.Entries {
		workers = cfg.Entries
	}
	errs := make([]error, workers)
	chunk := (cfg.Entries + workers - 1) / workers
	var wg sync.WaitGroup
	for sh := 0; sh < workers; sh++ {
		lo := sh * chunk
		hi := lo + chunk
		if hi > cfg.Entries {
			hi = cfg.Entries
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e, err := sc.renderSynthetic(i, years[i], seqs[i], distros)
				if err != nil {
					errs[sh] = err
					return
				}
				sc.Entries[i] = e
			}
		}(sh, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// syntheticExtras are unclustered OS products sprinkled into some
// entries, so product counts exceed cluster counts as in the real feed.
var syntheticExtras = []string{
	"cpe:/o:apple:mac_os_x:10.6",
	"cpe:/o:ibm:aix:6.1",
	"cpe:/o:hp:hp-ux:11.31",
	"cpe:/o:sgi:irix:6.5",
	"cpe:/o:cisco:ios:12.4",
}

func (sc *SyntheticCorpus) renderSynthetic(i, year, seq int, distros []osmap.Distro) (*cve.Entry, error) {
	r := newSynRand(sc.Config.Seed, i)
	_ = r.next() // skip the two draws pass 1 consumed
	_ = r.next()

	// Affected-cluster count: heavy-tailed, mostly singles, capped by
	// the universe width.
	k := 1
	switch t := r.intn(1000); {
	case t < 600:
		k = 1
	case t < 800:
		k = 2
	case t < 900:
		k = 3
	case t < 960:
		k = 4 + r.intn(2)
	case t < 995:
		k = 6 + r.intn(3)
	default:
		k = 9 + r.intn(4)
	}
	if k > len(distros) {
		k = len(distros)
	}
	picked := make([]osmap.Distro, 0, k)
	seen := make(map[int]bool, k)
	for len(picked) < k {
		di := r.intn(len(distros))
		if seen[di] {
			continue
		}
		seen[di] = true
		picked = append(picked, distros[di])
	}

	// Component class, locality, validity.
	var class classify.Class
	switch c := r.pct(); {
	case c < 8:
		class = classify.ClassDriver
	case c < 38:
		class = classify.ClassKernel
	case c < 73:
		class = classify.ClassSysSoft
	default:
		class = classify.ClassApplication
	}
	remote := r.pct() < 55
	validity := classify.Valid
	switch v := r.pct(); {
	case v < 93:
		validity = classify.Valid
	case v < 96:
		validity = classify.Unknown
	case v < 98:
		validity = classify.Unspecified
	default:
		validity = classify.Disputed
	}

	// Summary from the calibrated corpus's template vocabulary, so the
	// classifier reproduces the intended class.
	var summary string
	if validity != classify.Valid {
		summary = validityPrefixes[validity] + invalidSubjects[r.intn(len(invalidSubjects))]
	} else {
		templates := summaryTemplates[class]
		actor := "local"
		if remote {
			actor = "remote"
		}
		summary = fmt.Sprintf(templates[r.intn(len(templates))], actor)
	}

	var vector cvss.Vector
	if remote {
		vector = remoteVectors[r.intn(len(remoteVectors))]
	} else {
		vector = localVectors[r.intn(len(localVectors))]
	}

	// Affected products: the release current at the publication year,
	// sometimes also the previous release (cross-release flaws feed the
	// Table VI-style per-release queries).
	var products []cpe.Name
	for _, d := range picked {
		canon := sc.Registry.CanonicalName(d)
		if canon.Product == "" {
			return nil, fmt.Errorf("corpus: no canonical CPE for %v", d)
		}
		versions := sc.releaseVersionsAt(d, year, r.intn(5) == 0)
		for _, v := range versions {
			n := canon
			n.Version = v
			products = append(products, n)
		}
	}
	if r.intn(10) == 0 {
		products = append(products, cpe.MustParse(syntheticExtras[r.intn(len(syntheticExtras))]))
	}

	id, err := cve.ParseID(fmt.Sprintf("CVE-%04d-%d", year, seq))
	if err != nil {
		return nil, err
	}
	return &cve.Entry{
		ID:        id,
		Published: time.Date(year, time.Month(1+r.intn(12)), 1+r.intn(28), 12, 0, 0, 0, time.UTC),
		Summary:   summary,
		CVSS:      vector,
		Products:  products,
	}, nil
}

// releaseVersionsAt returns the distro release current at the year, plus
// the previous one when twoReleases is set (and one exists).
func (sc *SyntheticCorpus) releaseVersionsAt(d osmap.Distro, year int, twoReleases bool) []string {
	releases := sc.Registry.Releases(d)
	if len(releases) == 0 {
		return []string{"1.0"}
	}
	cur, prev := 0, -1
	for i, rel := range releases {
		if rel.Year <= year {
			prev = cur
			cur = i
		}
	}
	out := []string{releases[cur].Version}
	if twoReleases && prev >= 0 && prev != cur {
		out = append(out, releases[prev].Version)
	}
	return out
}
