package corpus

import (
	"reflect"
	"testing"
)

// TestGenerateParallelIdentical verifies that the rendered corpus is
// byte-identical at any worker count: the shard boundaries must not leak
// into IDs, dates, summaries, products or CVSS vectors.
func TestGenerateParallelIdentical(t *testing.T) {
	serial, err := Generate()
	if err != nil {
		t.Fatalf("Generate(): %v", err)
	}
	parallel, err := Generate(WithParallelism(4))
	if err != nil {
		t.Fatalf("Generate(WithParallelism(4)): %v", err)
	}
	if len(serial.Entries) != len(parallel.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(serial.Entries), len(parallel.Entries))
	}
	for i := range serial.Entries {
		if !reflect.DeepEqual(serial.Entries[i], parallel.Entries[i]) {
			t.Fatalf("entry %d differs:\nserial   %+v\nparallel %+v",
				i, serial.Entries[i], parallel.Entries[i])
		}
	}
	if !reflect.DeepEqual(serial.Problems, parallel.Problems) {
		t.Fatalf("problems differ: %v vs %v", serial.Problems, parallel.Problems)
	}
}

func TestWithParallelismDefaults(t *testing.T) {
	c := &Corpus{}
	WithParallelism(0)(c)
	if c.workers < 1 {
		t.Fatalf("workers = %d after WithParallelism(0)", c.workers)
	}
	WithParallelism(7)(c)
	if c.workers != 7 {
		t.Fatalf("workers = %d after WithParallelism(7)", c.workers)
	}
}
