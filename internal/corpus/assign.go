package corpus

import (
	"fmt"
	"sort"

	"osdiversity/internal/classify"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

// bucketOrder returns a decomposition's buckets in deterministic order.
func bucketOrder(dec *decomposition) []bucket {
	var keys []bucket
	for b := range dec.buckets {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].part != keys[j].part {
			return keys[i].part < keys[j].part
		}
		return keys[i].period < keys[j].period
	})
	return keys
}

// setReduction is a set's contribution to the distinct-count identity:
// (k-1)(k-2)/2 for a k-member set (0 for pairs and singles).
func setReduction(size int) int {
	if size < 3 {
		return 0
	}
	return (size - 1) * (size - 2) / 2
}

// decReduction sums the reduction already embodied in a decomposition.
func decReduction(dec *decomposition) int {
	total := 0
	for _, sets := range dec.buckets {
		for _, g := range sets {
			total += setReduction(len(g.set)) * g.count
		}
	}
	return total
}

// voluntaryMerges applies additional clique merges beyond the forced
// ones, pushing the global Σ (k-1)(k-2)/2 toward the paper's
// distinct-count identity (targetReduction). Merges only reduce per-OS
// participation and never change pairwise sums, so every calibrated
// table is preserved; the merged mass becomes multi-OS vulnerabilities,
// which is exactly what the identity says the paper's data must contain.
func (c *Corpus) voluntaryMerges(dec *decomposition) {
	remaining := targetReduction - c.mergedReduction
	if remaining <= 0 {
		return
	}
	for _, b := range bucketOrder(dec) {
		sets := dec.buckets[b]
		matrix := make(pairMatrix)
		var fixed []groupedSet
		for _, g := range sets {
			if len(g.set) == 2 {
				matrix[osmap.MakePair(g.set[0], g.set[1])] += g.count
			} else {
				fixed = append(fixed, g)
			}
		}
		for remaining > 0 {
			clique, mass := bestClique(matrix, 5)
			if mass == 0 || len(clique) < 3 {
				break
			}
			per := setReduction(len(clique))
			// Merge only as many instances as the budget still needs.
			if need := (remaining + per - 1) / per; mass > need {
				mass = need
			}
			for _, p := range osmap.PairsOf(clique) {
				matrix[p] -= mass
			}
			fixed = append(fixed, groupedSet{set: newOSSet(clique...), count: mass})
			remaining -= per * mass
			c.mergedReduction += per * mass
		}
		dec.buckets[b] = append(fixed, pairsOnly(matrix)...)
		if remaining <= 0 {
			break
		}
	}
}

// bestClique finds the largest clique (3..maxSize) whose minimum edge
// count is positive, preferring larger cliques and then larger mass.
// Search is exact over the 11-distro universe (tiny).
func bestClique(matrix pairMatrix, maxSize int) ([]osmap.Distro, int) {
	ds := osmap.Distros()
	adj := func(a, b osmap.Distro) int { return matrix[osmap.MakePair(a, b)] }

	var best []osmap.Distro
	bestMass := 0
	var extend func(clique []osmap.Distro, start int, mass int)
	extend = func(clique []osmap.Distro, start int, mass int) {
		if len(clique) >= 3 {
			if len(clique) > len(best) || (len(clique) == len(best) && mass > bestMass) {
				best = append([]osmap.Distro(nil), clique...)
				bestMass = mass
			}
		}
		if len(clique) == maxSize {
			return
		}
		for i := start; i < len(ds); i++ {
			d := ds[i]
			m := mass
			ok := true
			for _, e := range clique {
				w := adj(e, d)
				if w <= 0 {
					ok = false
					break
				}
				if m == 0 || w < m {
					m = w
				}
			}
			if ok {
				next := append(append([]osmap.Distro(nil), clique...), d)
				extend(next, i+1, m)
			}
		}
	}
	extend(nil, 0, 0)
	return best, bestMass
}

// assignYears distributes publication years in two phases so the
// derived series keep Figure 2's shape:
//
//  1. multi-OS sets (period-constrained by Table V) pick the year of
//     greatest remaining joint demand inside their window;
//  2. per-OS singles — the bulk of the population — fill exact integer
//     quotas derived from the Figure 2 weights by largest remainder, so
//     each curve's peaks, family correlation, and post-2005 decline
//     survive the hard constraints.
func (c *Corpus) assignYears() {
	type key struct {
		d osmap.Distro
		y int
	}
	target := make(map[key]float64)
	quota := make(map[key]int)
	assigned := make(map[key]int)
	for d, weights := range paperdata.YearWeights {
		var sum int
		for _, w := range weights {
			sum += w.Weight
		}
		scale := float64(paperdata.ValidCounts[d]) / float64(sum)
		// Largest-remainder rounding to integer quotas per year.
		type frac struct {
			year int
			rem  float64
		}
		var fracs []frac
		total := 0
		for _, w := range weights {
			exact := float64(w.Weight) * scale
			target[key{d, w.Year}] = exact
			q := int(exact)
			quota[key{d, w.Year}] = q
			total += q
			fracs = append(fracs, frac{year: w.Year, rem: exact - float64(q)})
		}
		sort.SliceStable(fracs, func(i, j int) bool {
			if fracs[i].rem != fracs[j].rem {
				return fracs[i].rem > fracs[j].rem
			}
			return fracs[i].year < fracs[j].year
		})
		for i := 0; total < paperdata.ValidCounts[d] && i < len(fracs); i++ {
			quota[key{d, fracs[i].year}]++
			total++
		}
	}

	// Pre-count specs with fixed years (specials, Table VI wiring).
	for _, s := range c.Specs {
		if s.Year != 0 {
			for _, d := range s.Clusters {
				assigned[key{d, s.Year}]++
			}
		}
	}

	window := func(s *Spec) (lo, hi int) {
		lo, hi = paperdata.StudyStartYear, paperdata.StudyEndYear
		for _, d := range s.Clusters {
			if fr := d.FirstReleaseYear(); fr > lo {
				lo = fr
			}
		}
		switch s.Period {
		case periodHistory:
			hi = paperdata.HistoryEndYear
		case periodObserved:
			lo = max(lo, paperdata.HistoryEndYear+1)
		}
		if lo > hi {
			c.Problems = append(c.Problems,
				fmt.Sprintf("spec %v: empty year window [%d,%d]", s.Clusters, lo, hi))
			lo = hi
		}
		return lo, hi
	}

	// Phase 1: multi-OS sets by joint remaining demand.
	var multis, singles []*Spec
	for _, s := range c.Specs {
		if s.Year != 0 {
			continue
		}
		if len(s.Clusters) > 1 || s.PreRelease {
			multis = append(multis, s)
		} else {
			singles = append(singles, s)
		}
	}
	sort.SliceStable(multis, func(i, j int) bool {
		if len(multis[i].Clusters) != len(multis[j].Clusters) {
			return len(multis[i].Clusters) > len(multis[j].Clusters)
		}
		return multis[i].Clusters.key() < multis[j].Clusters.key()
	})
	preReleaseAlt := 0
	for _, s := range multis {
		if s.PreRelease {
			s.Year = 1997 + preReleaseAlt%2
			preReleaseAlt++
			for _, d := range s.Clusters {
				assigned[key{d, s.Year}]++
			}
			continue
		}
		lo, hi := window(s)
		bestYear, bestDemand := lo, -1e18
		for y := lo; y <= hi; y++ {
			demand := 0.0
			for _, d := range s.Clusters {
				demand += target[key{d, y}] - float64(assigned[key{d, y}])
			}
			if demand > bestDemand {
				bestDemand = demand
				bestYear = y
			}
		}
		s.Year = bestYear
		for _, d := range s.Clusters {
			assigned[key{d, s.Year}]++
		}
	}

	// Phase 2: singles fill each OS's residual quota per year. Period
	// constrained singles go first so free ones can absorb the rest.
	// The seven pre-release Windows 2000 entries already hold years, so
	// their quota is consumed via `assigned`.
	sort.SliceStable(singles, func(i, j int) bool {
		a, b := singles[i], singles[j]
		if a.Clusters[0] != b.Clusters[0] {
			return a.Clusters[0] < b.Clusters[0]
		}
		if a.Period != b.Period {
			return a.Period > b.Period // constrained (1,2) before free (0)
		}
		return false
	})
	for _, s := range singles {
		d := s.Clusters[0]
		lo, hi := window(s)
		bestYear := -1
		bestResidual := 0
		for y := lo; y <= hi; y++ {
			if res := quota[key{d, y}] - assigned[key{d, y}]; res > bestResidual {
				bestResidual = res
				bestYear = y
			}
		}
		if bestYear == -1 {
			// Quotas exhausted in the window (hard constraints consumed
			// them); take the least-overshot year.
			bestYear = lo
			bestOver := 1 << 30
			for y := lo; y <= hi; y++ {
				if over := assigned[key{d, y}] - quota[key{d, y}]; over < bestOver {
					bestOver = over
					bestYear = y
				}
			}
		}
		s.Year = bestYear
		assigned[key{d, s.Year}]++
	}
}

// planInvalid appends the Unknown/Unspecified/Disputed entries of
// Table I, using the share plans that reconcile per-OS columns with the
// distinct totals.
func (c *Corpus) planInvalid() {
	type plan struct {
		validity classify.Validity
		shares   []paperdata.InvalidSharePlan
		column   func(paperdata.InvalidTotals) int
	}
	plans := []plan{
		{classify.Unknown, paperdata.UnknownShares, func(t paperdata.InvalidTotals) int { return t.Unknown }},
		{classify.Unspecified, paperdata.UnspecifiedShares, func(t paperdata.InvalidTotals) int { return t.Unspecified }},
		{classify.Disputed, paperdata.DisputedShares, func(t paperdata.InvalidTotals) int { return t.Disputed }},
	}
	alt := 0
	for _, pl := range plans {
		consumed := map[osmap.Distro]int{}
		for _, share := range pl.shares {
			for i := 0; i < share.Count; i++ {
				c.Specs = append(c.Specs, c.invalidSpec(newOSSet(share.Members...), pl.validity, &alt))
			}
			for _, m := range share.Members {
				consumed[m] += share.Count
			}
		}
		for _, d := range osmap.Distros() {
			n := pl.column(paperdata.InvalidCounts[d]) - consumed[d]
			for i := 0; i < n; i++ {
				c.Specs = append(c.Specs, c.invalidSpec(newOSSet(d), pl.validity, &alt))
			}
		}
	}
}

func (c *Corpus) invalidSpec(set osSet, validity classify.Validity, alt *int) *Spec {
	lo := paperdata.StudyStartYear
	for _, d := range set {
		if fr := d.FirstReleaseYear(); fr > lo {
			lo = fr
		}
	}
	// Spread invalid entries over the tail of each product's window;
	// NVD's Unknown/Unspecified tags cluster in later feeds.
	year := max(lo, 2002) + *alt%4
	if year > paperdata.StudyEndYear {
		year = paperdata.StudyEndYear
	}
	*alt++
	return &Spec{
		Clusters: set,
		Class:    classify.ClassKernel, // nominal; invalid entries are excluded from class analysis
		Remote:   *alt%2 == 0,
		Period:   periodFree,
		Year:     year,
		Validity: validity,
	}
}

// assignIDs gives every spec a CVE identifier: per-year sequences
// starting at 6001 (clear of the three pinned historical IDs).
func (c *Corpus) assignIDs() {
	counters := make(map[int]int)
	// Deterministic order: year, then set size desc, then cluster key,
	// then class.
	order := append([]*Spec(nil), c.Specs...)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if len(a.Clusters) != len(b.Clusters) {
			return len(a.Clusters) > len(b.Clusters)
		}
		if a.Clusters.key() != b.Clusters.key() {
			return a.Clusters.key() < b.Clusters.key()
		}
		return a.Class < b.Class
	})
	for _, s := range order {
		if s.FixedID != "" {
			continue
		}
		counters[s.Year]++
		s.FixedID = fmt.Sprintf("CVE-%04d-%04d", s.Year, 6000+counters[s.Year])
	}
}

// augmentProducts attaches unclustered OS products to selected valid
// entries so that the product-level k-wise distribution matches §IV-B:
// exactly one 9-product vulnerability, two 6-product ones, nine with ≥5,
// 102 with ≥4 and 285 with ≥3.
func (c *Corpus) augmentProducts() {
	targets := map[int]int{5: paperdata.KWiseProducts[5], 4: paperdata.KWiseProducts[4], 3: paperdata.KWiseProducts[3]}

	// Cardinality is the number of distinct (vendor, product) platforms;
	// several versions of one product count once, matching the k-wise
	// analysis.
	distinctProducts := func(e *cve.Entry) int {
		seen := make(map[string]bool, len(e.Products))
		for _, p := range e.Products {
			seen[p.Vendor+"/"+p.Product] = true
		}
		return len(seen)
	}

	// Count current product cardinalities (valid entries only).
	count := func(minProducts int) int {
		n := 0
		for i, s := range c.Specs {
			if s.Validity != classify.Valid {
				continue
			}
			if distinctProducts(c.Entries[i]) >= minProducts {
				n++
			}
		}
		return n
	}

	// Candidates for promotion, largest cluster sets first so the extra
	// products stay plausible, skipping the pinned specials.
	type cand struct {
		idx  int
		size int
	}
	var candidates []cand
	for i, s := range c.Specs {
		if s.Validity != classify.Valid || len(s.Extras) > 0 || s.PreRelease {
			continue
		}
		candidates = append(candidates, cand{idx: i, size: distinctProducts(c.Entries[i])})
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].size != candidates[j].size {
			return candidates[i].size > candidates[j].size
		}
		return c.Specs[candidates[i].idx].FixedID < c.Specs[candidates[j].idx].FixedID
	})

	used := 0
	for _, level := range []int{5, 4, 3} {
		deficit := targets[level] - count(level)
		for deficit > 0 && used < len(candidates) {
			cd := candidates[used]
			used++
			cur := distinctProducts(c.Entries[cd.idx])
			if cur >= level {
				continue // already counted
			}
			if added := c.addExtras(cd.idx, level-cur); added {
				deficit--
			}
		}
		if deficit > 0 {
			c.Problems = append(c.Problems,
				fmt.Sprintf("product k-wise: %d short of the >=%d-product target", deficit, level))
		}
	}
}

// familyExtraPools maps each family to plausible unclustered co-affected
// products.
var familyExtraPools = map[osmap.Family][]string{
	osmap.FamilyWindows: {
		"cpe:/o:microsoft:windows_xp::sp3",
		"cpe:/o:microsoft:windows_nt:4.0",
		"cpe:/o:microsoft:windows_vista",
	},
	osmap.FamilyBSD: {
		"cpe:/o:apple:mac_os_x:10.5",
		"cpe:/o:ibm:aix:5.3",
		"cpe:/o:sgi:irix:6.5",
	},
	osmap.FamilyLinux: {
		"cpe:/o:suse:suse_linux:10.1",
		"cpe:/o:slackware:slackware_linux:12.0",
		"cpe:/o:mandrakesoft:mandrake_linux:2008.0",
	},
	osmap.FamilySolaris: {
		"cpe:/o:hp:hp-ux:11.11",
		"cpe:/o:ibm:aix:5.3",
		"cpe:/o:sgi:irix:6.5",
	},
}

// addExtras appends n unclustered products to entry idx, drawn from the
// pools of its member families. Reports whether n products were added.
func (c *Corpus) addExtras(idx, n int) bool {
	s := c.Specs[idx]
	entry := c.Entries[idx]
	var pool []string
	seenFam := map[osmap.Family]bool{}
	for _, d := range s.Clusters {
		f := d.Family()
		if !seenFam[f] {
			seenFam[f] = true
			pool = append(pool, familyExtraPools[f]...)
		}
	}
	added := 0
	for _, uri := range pool {
		if added == n {
			break
		}
		name := cpe.MustParse(uri)
		dup := false
		for _, p := range entry.Products {
			if p == name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		entry.Products = append(entry.Products, name)
		s.Extras = append(s.Extras, name)
		added++
	}
	return added == n
}

// EntryByID finds a generated entry.
func (c *Corpus) EntryByID(id cve.ID) *cve.Entry {
	for _, e := range c.Entries {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// ValidEntries returns only the entries the study keeps.
func (c *Corpus) ValidEntries() []*cve.Entry {
	var out []*cve.Entry
	for i, s := range c.Specs {
		if s.Validity == classify.Valid {
			out = append(out, c.Entries[i])
		}
	}
	return out
}
