package corpus

import (
	"fmt"
	"runtime"
	"sort"

	"osdiversity/internal/classify"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

// Period constraints on a spec's publication year.
const (
	periodFree = iota
	periodHistory
	periodObserved
)

// Spec is one planned vulnerability before rendering into a cve.Entry.
type Spec struct {
	// Clusters are the affected distributions (ascending).
	Clusters osSet
	// Extras are affected products outside the 11 clusters.
	Extras []cpe.Name
	// Class is the component class the entry's description will encode.
	Class classify.Class
	// Remote marks remotely exploitable entries (CVSS access vector).
	Remote bool
	// Period constrains Year to the history or observed window.
	Period int
	// Year is the publication year (assigned late).
	Year int
	// Validity is Valid for study entries; invalid specs render the
	// corresponding editorial tag into their summary.
	Validity classify.Validity
	// Releases overrides the affected release versions per distribution;
	// nil means "the release current at the publication year".
	Releases map[osmap.Distro][]string
	// PreRelease marks the seven Windows 2000 entries published before
	// the product's 1999/2000 launch (§IV-A).
	PreRelease bool
	// FixedID pins the CVE identifier (used by the named CVEs).
	FixedID string
	// Summary overrides the generated description (named CVEs).
	Summary string
}

// Corpus is the generated population plus its calibration diagnostics.
type Corpus struct {
	Specs   []*Spec
	Entries []*cve.Entry
	// Problems lists constraints the constructive algorithm could not
	// satisfy exactly; an empty slice means perfect calibration of the
	// constructive targets.
	Problems []string

	// mergedReduction tracks progress toward targetReduction across the
	// specials and all tier decompositions.
	mergedReduction int

	// workers bounds the spec-rendering pool; 1 renders serially.
	workers int
}

// Option configures corpus generation.
type Option func(*Corpus)

// WithParallelism sets the worker count used to render specs into
// entries. Rendering is per-spec independent and index-stable, so the
// generated corpus is identical at any worker count. n <= 0 selects
// GOMAXPROCS; the default is 1.
func WithParallelism(n int) Option {
	return func(c *Corpus) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.workers = n
	}
}

// targetReduction is Σ (k-1)(k-2)/2 · n_k implied by the paper's own
// marginals: Table I gives Σ n_k = 1887 and Σ k·n_k = 2556, Table III
// gives Σ C(k,2)·n_k = 850, hence the higher-order term must equal
// 850 − (2556 − 1887) = 181. The voluntary merge pass drives the
// decomposition toward it so the distinct-vulnerability count lands on
// the paper's 1887.
const targetReduction = 181

// Generate builds the calibrated corpus. The construction is
// deterministic: same output on every call, at any parallelism.
func Generate(opts ...Option) (*Corpus, error) {
	c := &Corpus{workers: 1}
	for _, opt := range opts {
		opt(c)
	}

	specials := c.planSpecials()
	for _, s := range specials {
		c.mergedReduction += setReduction(len(s.Clusters))
	}
	remoteSets, remoteClassUse := c.planRemoteTier(specials)
	localSets, _ := c.planLocalTier(remoteClassUse)
	appSets := c.planAppTier()

	c.Specs = append(c.Specs, specials...)
	c.Specs = append(c.Specs, remoteSets...)
	c.Specs = append(c.Specs, localSets...)
	c.Specs = append(c.Specs, appSets...)

	c.planSingles()
	c.wireReleaseStudy()
	c.pinDebianBaseline()
	c.assignYears()
	c.planInvalid()
	c.assignIDs()
	if err := c.render(); err != nil {
		return nil, err
	}
	c.augmentProducts()
	return c, nil
}

// planSpecials expands paperdata.SpecialCVEs into specs.
func (c *Corpus) planSpecials() []*Spec {
	var out []*Spec
	for _, s := range paperdata.SpecialCVEs {
		spec := &Spec{
			Clusters: newOSSet(s.Clusters...),
			Class:    classify.ClassKernel,
			Remote:   true,
			Period:   periodObserved,
			Year:     s.Year,
			FixedID:  s.ID,
			Summary:  s.Summary,
		}
		for _, uri := range s.ExtraProducts {
			spec.Extras = append(spec.Extras, cpe.MustParse(uri))
		}
		out = append(out, spec)
	}
	return out
}

// classUse tracks per-OS consumption of each component class.
type classUse map[osmap.Distro]*[4]int // indices: 0 driver, 1 kernel, 2 syssoft, 3 app

func (u classUse) add(d osmap.Distro, class int, n int) {
	arr, ok := u[d]
	if !ok {
		arr = new([4]int)
		u[d] = arr
	}
	arr[class] += n
}

func (u classUse) get(d osmap.Distro, class int) int {
	if arr, ok := u[d]; ok {
		return arr[class]
	}
	return 0
}

const (
	classIdxDriver = iota
	classIdxKernel
	classIdxSysSoft
	classIdxApp
)

func classOfIdx(i int) classify.Class {
	switch i {
	case classIdxDriver:
		return classify.ClassDriver
	case classIdxKernel:
		return classify.ClassKernel
	case classIdxSysSoft:
		return classify.ClassSysSoft
	default:
		return classify.ClassApplication
	}
}

// planRemoteTier decomposes the Isolated-Thin-Server overlaps (Table III
// remote column) into sets bucketed by part (Table IV) and period
// (Table V), after subtracting the special CVEs.
func (c *Corpus) planRemoteTier(specials []*Spec) ([]*Spec, classUse) {
	use := make(classUse)
	preUsed := make(map[osmap.Distro]int)
	specialPairs := make(pairMatrix)
	for _, s := range specials {
		for _, d := range s.Clusters {
			preUsed[d]++
			use.add(d, classIdxKernel, 1)
		}
		for _, p := range s.Clusters.pairs() {
			specialPairs[p]++
		}
	}

	matrices := map[bucket]pairMatrix{}
	addCell := func(b bucket, p osmap.Pair, n int) {
		if n == 0 {
			return
		}
		m, ok := matrices[b]
		if !ok {
			m = make(pairMatrix)
			matrices[b] = m
		}
		m[p] += n
	}

	for p, counts := range paperdata.PairTable {
		if counts.Remote == 0 {
			continue
		}
		parts := paperdata.PartTable[p]
		partArr := [3]int{parts.Driver, parts.Kernel, parts.SysSoft}

		var periods [2]int
		if pc, ok := paperdata.PeriodTable[p]; ok {
			periods = [2]int{pc.History, pc.Observed}
		} else {
			// Pairs involving Ubuntu, OpenSolaris or Windows 2008 are
			// not in Table V; their members shipped late, so their
			// shared vulnerabilities fall in the observed period.
			periods = [2]int{0, counts.Remote}
		}

		// Subtract the special CVEs (kernel class, observed period).
		if n := specialPairs[p]; n > 0 {
			partArr[1] -= n
			periods[1] -= n
			if partArr[1] < 0 || periods[1] < 0 {
				c.Problems = append(c.Problems,
					fmt.Sprintf("special CVEs overdraw pair %v (kernel %d, observed %d)", p, partArr[1], periods[1]))
				if partArr[1] < 0 {
					partArr[1] = 0
				}
				if periods[1] < 0 {
					periods[1] = 0
				}
			}
		}

		joint := splitPartPeriod(partArr, periods)
		for part := 0; part < 3; part++ {
			for period := 0; period < 2; period++ {
				addCell(bucket{part: part, period: period + 1}, p, joint[part][period])
			}
		}
	}

	dec := decomposeTier(matrices, paperdata.RemoteTotals, preUsed)
	c.Problems = append(c.Problems, dec.problems...)
	c.mergedReduction += decReduction(dec)
	c.voluntaryMerges(dec)

	var out []*Spec
	for _, b := range bucketOrder(dec) {
		for _, g := range dec.buckets[b] {
			for i := 0; i < g.count; i++ {
				spec := &Spec{
					Clusters: g.set,
					Class:    classOfIdx(b.part),
					Remote:   true,
					Period:   b.period,
				}
				out = append(out, spec)
				for _, d := range g.set {
					use.add(d, b.part, 1)
				}
			}
		}
	}
	return out, use
}

// planLocalTier decomposes the local non-application overlaps
// (NoApp − Remote) and assigns each set Kernel or SysSoft based on the
// class budget left by Table II after the remote tier.
func (c *Corpus) planLocalTier(remoteUse classUse) ([]*Spec, classUse) {
	matrix := make(pairMatrix)
	for p, counts := range paperdata.PairTable {
		if n := counts.NoApp - counts.Remote; n > 0 {
			matrix[p] = n
		}
	}
	budget := make(map[osmap.Distro]int, osmap.NumDistros)
	for _, d := range osmap.Distros() {
		budget[d] = paperdata.ClassTable[d].NonApp() - paperdata.RemoteTotals[d]
	}
	dec := decomposeTier(map[bucket]pairMatrix{{}: matrix}, budget, nil)
	c.Problems = append(c.Problems, dec.problems...)
	c.mergedReduction += decReduction(dec)
	c.voluntaryMerges(dec)

	use := make(classUse)
	remaining := func(d osmap.Distro, idx int) int {
		row := paperdata.ClassTable[d]
		totals := [4]int{row.Driver, row.Kernel, row.SysSoft, row.App}
		return totals[idx] - remoteUse.get(d, idx) - use.get(d, idx)
	}

	var out []*Spec
	sets := dec.allSets()
	// Larger sets first: they are the most constrained.
	sort.SliceStable(sets, func(i, j int) bool { return len(sets[i].set) > len(sets[j].set) })
	for _, g := range sets {
		for i := 0; i < g.count; i++ {
			// Choose Kernel or SysSoft, whichever has more remaining
			// headroom across the members (Driver is never assigned to
			// shared local vulnerabilities: Table IV's driver cells are
			// the only shared driver flaws in the study).
			kernelRoom, syssoftRoom := 1<<30, 1<<30
			for _, d := range g.set {
				kernelRoom = min(kernelRoom, remaining(d, classIdxKernel))
				syssoftRoom = min(syssoftRoom, remaining(d, classIdxSysSoft))
			}
			idx := classIdxKernel
			if syssoftRoom > kernelRoom {
				idx = classIdxSysSoft
			}
			if max(kernelRoom, syssoftRoom) <= 0 {
				c.Problems = append(c.Problems,
					fmt.Sprintf("no class budget left for local shared set %v", g.set))
			}
			spec := &Spec{Clusters: g.set, Class: classOfIdx(idx), Remote: false, Period: periodFree}
			out = append(out, spec)
			for _, d := range g.set {
				use.add(d, idx, 1)
			}
		}
	}
	return out, use
}

// planAppTier decomposes the application overlaps (All − NoApp).
func (c *Corpus) planAppTier() []*Spec {
	matrix := make(pairMatrix)
	for p, counts := range paperdata.PairTable {
		if n := counts.All - counts.NoApp; n > 0 {
			matrix[p] = n
		}
	}
	budget := make(map[osmap.Distro]int, osmap.NumDistros)
	for _, d := range osmap.Distros() {
		budget[d] = paperdata.ClassTable[d].App
	}
	dec := decomposeTier(map[bucket]pairMatrix{{}: matrix}, budget, nil)
	c.Problems = append(c.Problems, dec.problems...)
	c.mergedReduction += decReduction(dec)
	c.voluntaryMerges(dec)

	var out []*Spec
	i := 0
	for _, g := range dec.allSets() {
		for k := 0; k < g.count; k++ {
			out = append(out, &Spec{
				Clusters: g.set,
				Class:    classify.ClassApplication,
				// Server applications skew remote; alternate 2:1.
				Remote: i%3 != 2,
				Period: periodFree,
			})
			i++
		}
	}
	return out
}

// planSingles tops every (OS, class) cell of Table II up to its printed
// value with single-OS vulnerabilities, and splits the non-application
// singles between remote and local so the per-OS remote totals hold.
// All shared specs must already be in c.Specs.
func (c *Corpus) planSingles() {
	classConsumed := make(classUse)
	remoteConsumed := make(map[osmap.Distro]int)
	for _, s := range c.Specs {
		idx := classToIdx(s.Class)
		for _, d := range s.Clusters {
			classConsumed.add(d, idx, 1)
			if s.Remote && idx != classIdxApp {
				remoteConsumed[d]++
			}
		}
	}

	for _, d := range osmap.Distros() {
		row := paperdata.ClassTable[d]
		totals := [4]int{row.Driver, row.Kernel, row.SysSoft, row.App}
		var singles [4]int
		for idx := 0; idx < 4; idx++ {
			n := totals[idx] - classConsumed.get(d, idx)
			if n < 0 {
				c.Problems = append(c.Problems,
					fmt.Sprintf("%v: class %d over-consumed by %d", d, idx, -n))
				n = 0
			}
			singles[idx] = n
		}

		remoteQuota := paperdata.RemoteTotals[d] - remoteConsumed[d]
		if remoteQuota < 0 {
			c.Problems = append(c.Problems,
				fmt.Sprintf("%v: remote budget over-consumed by %d", d, -remoteQuota))
			remoteQuota = 0
		}

		preRelease := 0
		if d == osmap.Windows2000 {
			preRelease = paperdata.Windows2000PreReleaseEntries
		}

		// Non-app singles drain the remote quota kernel-first.
		for _, idx := range []int{classIdxKernel, classIdxSysSoft, classIdxDriver} {
			for i := 0; i < singles[idx]; i++ {
				spec := &Spec{Clusters: newOSSet(d), Class: classOfIdx(idx), Period: periodFree}
				if remoteQuota > 0 {
					spec.Remote = true
					remoteQuota--
				}
				if preRelease > 0 && idx == classIdxKernel {
					spec.PreRelease = true
					preRelease--
				}
				c.Specs = append(c.Specs, spec)
			}
		}
		if remoteQuota > 0 {
			c.Problems = append(c.Problems,
				fmt.Sprintf("%v: %d remote slots left unassigned", d, remoteQuota))
		}
		for i := 0; i < singles[classIdxApp]; i++ {
			c.Specs = append(c.Specs, &Spec{
				Clusters: newOSSet(d),
				Class:    classify.ClassApplication,
				Remote:   i%3 != 2,
				Period:   periodFree,
			})
		}
	}
}

func classToIdx(class classify.Class) int {
	switch class {
	case classify.ClassDriver:
		return classIdxDriver
	case classify.ClassKernel:
		return classIdxKernel
	case classify.ClassSysSoft:
		return classIdxSysSoft
	default:
		return classIdxApp
	}
}

// wireReleaseStudy pins the release versions that reproduce Table VI:
// the single observed-period Debian-RedHat shared vulnerability affects
// Debian 4.0 and both RedHat 4.0 and 5.0; one Debian remote single spans
// Debian 3.0 and 4.0. Every other vulnerability affects one release, so
// all remaining studied cells stay zero.
func (c *Corpus) wireReleaseStudy() {
	var shared *Spec
	for _, s := range c.Specs {
		if s.Validity != classify.Valid || !s.Remote || s.Class == classify.ClassApplication {
			continue
		}
		if !s.Clusters.contains(osmap.Debian) || !s.Clusters.contains(osmap.RedHat) ||
			s.Period != periodObserved || s.Releases != nil {
			continue
		}
		// The merge pass may have folded the Debian-RedHat pair into a
		// larger set; any observed remote set containing both works, as
		// long as every member had shipped by 2007.
		ok := true
		for _, d := range s.Clusters {
			if d.FirstReleaseYear() > 2007 {
				ok = false
				break
			}
		}
		if ok {
			shared = s
			break
		}
	}
	if shared == nil {
		c.Problems = append(c.Problems, "no observed Debian-RedHat remote pair for Table VI")
	} else {
		shared.Year = 2007
		shared.Releases = map[osmap.Distro][]string{
			osmap.Debian: {"4.0"},
			osmap.RedHat: {"4.0", "5.0"},
		}
	}

	var single *Spec
	for _, s := range c.Specs {
		if s.Validity == classify.Valid && s.Remote && s.Class != classify.ClassApplication &&
			len(s.Clusters) == 1 && s.Clusters[0] == osmap.Debian && s.Releases == nil {
			single = s
			break
		}
	}
	if single == nil {
		c.Problems = append(c.Problems, "no Debian remote single for Table VI cross-release cell")
	} else {
		single.Year = 2007
		single.Period = periodObserved
		single.Releases = map[osmap.Distro][]string{osmap.Debian: {"3.0", "4.0"}}
	}
}

// pinDebianBaseline fixes Debian's Isolated-Thin-Server history count to
// the paper's Figure 3 baseline (16 of its 25 remote vulnerabilities fall
// in 1994-2005). Shared remote sets already carry hard periods from
// Table V; the free mass is Debian's remote singles, which get period
// constraints here so the homogeneous-replica experiment reproduces.
func (c *Corpus) pinDebianBaseline() {
	target := paperdata.Figure3Expected["Debian"].History
	hist := 0
	var free []*Spec
	for _, s := range c.Specs {
		if s.Validity != classify.Valid || !s.Remote || s.Class == classify.ClassApplication {
			continue
		}
		if !s.Clusters.contains(osmap.Debian) {
			continue
		}
		switch {
		case s.Period == periodHistory, s.Year != 0 && s.Year <= paperdata.HistoryEndYear:
			hist++
		case s.Period == periodFree && s.Year == 0:
			free = append(free, s)
		}
	}
	for _, s := range free {
		if hist < target {
			s.Period = periodHistory
			hist++
		} else {
			s.Period = periodObserved
		}
	}
	if hist != target {
		c.Problems = append(c.Problems,
			fmt.Sprintf("Debian baseline: history count %d, want %d", hist, target))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
