package corpus

import (
	"sort"

	"osdiversity/internal/cve"
)

// YearGroup is one publication year's entries, ID-sorted — one NVD feed
// file's worth of corpus.
type YearGroup struct {
	Year    int
	Entries []*cve.Entry
}

// SplitByYear groups entries into per-year feed sets the way NVD
// distributes them (years ascending, entries ID-sorted within each
// year). Every feed writer — the facade's per-year renderer, the test
// fixtures, the benchmarks — shares this grouping so the files they
// produce round-trip identically. The input slice is not modified.
func SplitByYear(entries []*cve.Entry) []YearGroup {
	byYear := make(map[int][]*cve.Entry)
	for _, e := range entries {
		byYear[e.Year()] = append(byYear[e.Year()], e)
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearGroup, 0, len(years))
	for _, y := range years {
		g := YearGroup{Year: y, Entries: byYear[y]}
		cve.SortEntries(g.Entries)
		out = append(out, g)
	}
	return out
}

// ShardByYear returns shard i of n (0-based) of the corpus: a
// contiguous chunk of SplitByYear's ascending year groups, flattened in
// feed order (years ascending, ID-sorted within each year). The chunks
// partition the entries — every entry belongs to exactly one shard — so
// additive aggregates computed per shard merge to the full corpus. The
// split is deterministic in the entry set alone, letting N processes
// slice the same corpus independently and agree on ownership.
func ShardByYear(entries []*cve.Entry, i, n int) []*cve.Entry {
	if n <= 1 {
		return entries
	}
	groups := SplitByYear(entries)
	lo := i * len(groups) / n
	hi := (i + 1) * len(groups) / n
	var out []*cve.Entry
	for _, g := range groups[lo:hi] {
		out = append(out, g.Entries...)
	}
	return out
}
