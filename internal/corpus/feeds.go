package corpus

import (
	"sort"

	"osdiversity/internal/cve"
)

// YearGroup is one publication year's entries, ID-sorted — one NVD feed
// file's worth of corpus.
type YearGroup struct {
	Year    int
	Entries []*cve.Entry
}

// SplitByYear groups entries into per-year feed sets the way NVD
// distributes them (years ascending, entries ID-sorted within each
// year). Every feed writer — the facade's per-year renderer, the test
// fixtures, the benchmarks — shares this grouping so the files they
// produce round-trip identically. The input slice is not modified.
func SplitByYear(entries []*cve.Entry) []YearGroup {
	byYear := make(map[int][]*cve.Entry)
	for _, e := range entries {
		byYear[e.Year()] = append(byYear[e.Year()], e)
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearGroup, 0, len(years))
	for _, y := range years {
		g := YearGroup{Year: y, Entries: byYear[y]}
		cve.SortEntries(g.Entries)
		out = append(out, g)
	}
	return out
}
