// Package corpus generates the calibrated synthetic NVD population.
//
// The paper's raw data (a Sept-2010 NVD snapshot) is not available
// offline, so this package constructs a vulnerability population whose
// derived statistics reproduce the paper's published tables: per-OS
// totals (Table I), component classes (Table II), pairwise overlaps under
// three server profiles (Table III), the part breakdown of Isolated Thin
// Server overlaps (Table IV), the history/observed temporal split
// (Table V), per-release overlaps (Table VI) and the named multi-OS CVEs
// of §IV-B. Generation is fully deterministic.
//
// The construction decomposes the pairwise tables into three disjoint
// "tiers" of vulnerabilities per pair —
//
//	application tier:       All − NoApp
//	local non-app tier:     NoApp − Remote
//	remote non-app tier:    Remote (further split by part and period)
//
// — and then expresses each tier as a multiset of OS *sets*: mostly
// pairs, with triangles merged into triples wherever the per-OS totals
// force it (for example, at least 37 application vulnerabilities must hit
// all three Windows versions at once, or Windows 2008's application
// column would overflow). See DESIGN.md §5 for the feasibility analysis.
package corpus

import (
	"fmt"
	"sort"

	"osdiversity/internal/osmap"
)

// osSet is a normalized (ascending) set of distributions.
type osSet []osmap.Distro

func newOSSet(members ...osmap.Distro) osSet {
	s := append(osSet(nil), members...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func (s osSet) contains(d osmap.Distro) bool {
	for _, m := range s {
		if m == d {
			return true
		}
	}
	return false
}

func (s osSet) pairs() []osmap.Pair { return osmap.PairsOf(s) }

func (s osSet) key() string {
	out := ""
	for _, d := range s {
		out += d.String() + "|"
	}
	return out
}

// groupedSet is one decomposition element: an OS set with a multiplicity.
type groupedSet struct {
	set   osSet
	count int
}

// pairMatrix is a symmetric pair→count map with non-negative entries.
type pairMatrix map[osmap.Pair]int

func (m pairMatrix) clone() pairMatrix {
	out := make(pairMatrix, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// participation sums, for each OS, the number of set instances that
// include it.
func participation(sets []groupedSet) map[osmap.Distro]int {
	out := make(map[osmap.Distro]int)
	for _, g := range sets {
		for _, d := range g.set {
			out[d] += g.count
		}
	}
	return out
}

// pairsOnly converts a matrix to the trivial pairs-only decomposition.
func pairsOnly(m pairMatrix) []groupedSet {
	keys := make([]osmap.Pair, 0, len(m))
	for p := range m {
		if m[p] > 0 {
			keys = append(keys, p)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	out := make([]groupedSet, 0, len(keys))
	for _, p := range keys {
		out = append(out, groupedSet{set: newOSSet(p.A, p.B), count: m[p]})
	}
	return out
}

// bucket identifies one sub-matrix of a tier. Remote-tier buckets carry
// a part and a period; other tiers use a single zero bucket.
type bucket struct {
	part   int // 0 none/driver-class index; see bucketParts
	period int // 0 free, 1 history, 2 observed
}

// decomposition is the result of decomposing one tier: per bucket, a
// multiset of OS sets.
type decomposition struct {
	buckets map[bucket][]groupedSet
	// problems records constraint violations the greedy repair could not
	// fix; calibration reporting surfaces them.
	problems []string
}

// allSets flattens the decomposition.
func (d *decomposition) allSets() []groupedSet {
	var keys []bucket
	for b := range d.buckets {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].part != keys[j].part {
			return keys[i].part < keys[j].part
		}
		return keys[i].period < keys[j].period
	})
	var out []groupedSet
	for _, b := range keys {
		out = append(out, d.buckets[b]...)
	}
	return out
}

// decomposeTier turns bucketed pair matrices into set multisets while
// keeping every OS's total participation within budget[d]. preUsed counts
// participation already consumed by pre-placed sets (the special CVEs).
//
// The only pair-sum-preserving rewrite available is the triangle merge:
// one unit on each of {A,B}, {A,C}, {B,C} (within one bucket, so part and
// period stay coherent) becomes one {A,B,C} set, reducing each member's
// participation by one. The repair loop applies merges until no OS is
// over budget; DESIGN.md §5 shows the paper's tables always leave enough
// triangles for this to succeed.
func decomposeTier(matrices map[bucket]pairMatrix, budget map[osmap.Distro]int, preUsed map[osmap.Distro]int) *decomposition {
	dec := &decomposition{buckets: make(map[bucket][]groupedSet, len(matrices))}
	remaining := make(map[bucket]pairMatrix, len(matrices))
	triples := make(map[bucket]map[string]*groupedSet)
	for b, m := range matrices {
		remaining[b] = m.clone()
		triples[b] = make(map[string]*groupedSet)
	}

	used := func() map[osmap.Distro]int {
		u := make(map[osmap.Distro]int)
		for d, n := range preUsed {
			u[d] += n
		}
		for b := range remaining {
			for p, n := range remaining[b] {
				u[p.A] += n
				u[p.B] += n
			}
			for _, g := range triples[b] {
				for _, d := range g.set {
					u[d] += g.count
				}
			}
		}
		return u
	}

	bucketKeys := func() []bucket {
		var keys []bucket
		for b := range remaining {
			keys = append(keys, b)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].part != keys[j].part {
				return keys[i].part < keys[j].part
			}
			return keys[i].period < keys[j].period
		})
		return keys
	}

	for iter := 0; ; iter++ {
		if iter > 10000 {
			dec.problems = append(dec.problems, "triangle repair did not converge")
			break
		}
		u := used()
		var over osmap.Distro
		overflow := 0
		for _, d := range osmap.Distros() {
			if excess := u[d] - budget[d]; excess > overflow {
				overflow = excess
				over = d
			}
		}
		if overflow == 0 {
			break
		}
		// Find the triangle containing `over` with the largest mergeable
		// mass, preferring triangles whose other members are also over
		// budget.
		type candidate struct {
			b      bucket
			x, y   osmap.Distro
			mass   int
			relief int
		}
		var best *candidate
		ds := osmap.Distros()
		for _, b := range bucketKeys() {
			m := remaining[b]
			for i := 0; i < len(ds); i++ {
				for j := i + 1; j < len(ds); j++ {
					x, y := ds[i], ds[j]
					if x == over || y == over {
						continue
					}
					mass := min3(
						m[osmap.MakePair(over, x)],
						m[osmap.MakePair(over, y)],
						m[osmap.MakePair(x, y)],
					)
					if mass == 0 {
						continue
					}
					relief := 1
					if u[x] > budget[x] {
						relief++
					}
					if u[y] > budget[y] {
						relief++
					}
					c := candidate{b: b, x: x, y: y, mass: mass, relief: relief}
					if best == nil || c.relief > best.relief || (c.relief == best.relief && c.mass > best.mass) {
						cc := c
						best = &cc
					}
				}
			}
		}
		if best == nil {
			dec.problems = append(dec.problems,
				fmt.Sprintf("no triangle available to relieve %v (overflow %d)", over, overflow))
			break
		}
		merge := best.mass
		if merge > overflow {
			merge = overflow
		}
		m := remaining[best.b]
		m[osmap.MakePair(over, best.x)] -= merge
		m[osmap.MakePair(over, best.y)] -= merge
		m[osmap.MakePair(best.x, best.y)] -= merge
		set := newOSSet(over, best.x, best.y)
		tmap := triples[best.b]
		if g, ok := tmap[set.key()]; ok {
			g.count += merge
		} else {
			tmap[set.key()] = &groupedSet{set: set, count: merge}
		}
	}

	for _, b := range bucketKeys() {
		var sets []groupedSet
		var tripleKeys []string
		for k := range triples[b] {
			tripleKeys = append(tripleKeys, k)
		}
		sort.Strings(tripleKeys)
		for _, k := range tripleKeys {
			sets = append(sets, *triples[b][k])
		}
		sets = append(sets, pairsOnly(remaining[b])...)
		if len(sets) > 0 {
			dec.buckets[b] = sets
		}
	}
	return dec
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// splitPartPeriod solves the per-pair transportation problem: given the
// part marginals (driver, kernel, syssoft) and period marginals
// (history, observed) of one pair's remote count, produce a joint
// part×period split. The greedy fills kernel into history first, which
// keeps observed kernel/syssoft mass available for the Windows triple
// merges the budgets require (see DESIGN.md §5).
func splitPartPeriod(parts [3]int, periods [2]int) [3][2]int {
	var out [3][2]int
	rem := periods
	for p := 0; p < 3; p++ {
		left := parts[p]
		take := left
		if take > rem[0] {
			take = rem[0]
		}
		out[p][0] = take
		rem[0] -= take
		left -= take
		out[p][1] = left
		rem[1] -= left
	}
	return out
}
