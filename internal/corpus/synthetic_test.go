package corpus

import (
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
)

func TestSyntheticDeterministicAcrossWorkers(t *testing.T) {
	cfg := SyntheticConfig{Entries: 5000, Distros: 32, Seed: 7}
	a, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.ID != eb.ID || ea.Summary != eb.Summary || !ea.Published.Equal(eb.Published) ||
			len(ea.Products) != len(eb.Products) {
			t.Fatalf("entry %d differs across worker counts: %v vs %v", i, ea.ID, eb.ID)
		}
	}
}

func TestSyntheticSeedChangesCorpus(t *testing.T) {
	a, err := GenerateSynthetic(SyntheticConfig{Entries: 500, Distros: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynthetic(SyntheticConfig{Entries: 500, Distros: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Entries {
		if a.Entries[i].Summary == b.Entries[i].Summary {
			same++
		}
	}
	if same == len(a.Entries) {
		t.Fatal("different seeds produced an identical corpus")
	}
}

func TestSyntheticEntriesAreWellFormed(t *testing.T) {
	sc, err := GenerateSynthetic(SyntheticConfig{Entries: 3000, Distros: 32, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Entries) != 3000 {
		t.Fatalf("got %d entries", len(sc.Entries))
	}
	seen := make(map[cve.ID]bool, len(sc.Entries))
	clustered := 0
	multi := 0
	invalid := 0
	for _, e := range sc.Entries {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid entry: %v", err)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %v", e.ID)
		}
		seen[e.ID] = true
		if y := e.Year(); y < 2002 || y > 2025 {
			t.Fatalf("year %d out of window", y)
		}
		distros := map[string]bool{}
		for _, p := range e.Products {
			if d, ok := sc.Registry.Cluster(p); ok {
				distros[d.String()] = true
			}
		}
		if len(distros) > 0 {
			clustered++
		}
		if len(distros) > 1 {
			multi++
		}
		if classify.EntryValidity(e) != classify.Valid {
			invalid++
		}
	}
	if clustered != len(sc.Entries) {
		t.Fatalf("%d entries have no clustered product", len(sc.Entries)-clustered)
	}
	if multi == 0 {
		t.Fatal("no multi-distro entries: overlap tables would be empty")
	}
	if invalid == 0 {
		t.Fatal("no invalid entries: validity table would be trivial")
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	if _, err := GenerateSynthetic(SyntheticConfig{Entries: -1}); err == nil {
		t.Fatal("negative entries accepted")
	}
	if _, err := GenerateSynthetic(SyntheticConfig{Entries: 10, Distros: 1}); err == nil {
		t.Fatal("1-distro universe accepted")
	}
	if _, err := GenerateSynthetic(SyntheticConfig{Entries: 10, FromYear: 2020, ToYear: 2010}); err == nil {
		t.Fatal("empty year window accepted")
	}
}
