// Package stats supplies the small statistics toolkit the study needs:
// summary statistics, Pearson and Spearman correlation (used to quantify
// Figure 2's "peaks and valleys" family-correlation claim), Jaccard
// overlap, and a deterministic bootstrap for confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrShortData is returned when an estimator needs more points.
var ErrShortData = errors.New("stats: not enough data points")

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Pearson computes the Pearson product-moment correlation of two equal
// length series.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(xs) < 3 {
		return 0, ErrShortData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman computes the rank correlation (Pearson over ranks, with
// average ranks for ties).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks converts values to average ranks (1-based).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Jaccard computes |A∩B| / |A∪B| from the three counts.
func Jaccard(onlyA, onlyB, both int) float64 {
	union := onlyA + onlyB + both
	if union == 0 {
		return 0
	}
	return float64(both) / float64(union)
}

// Quantile returns the q-quantile (0..1) of the data by linear
// interpolation; the input need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrShortData
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// rng is a tiny deterministic xorshift64* generator, so bootstrap
// results are reproducible without seeding globals.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// BootstrapCI estimates a confidence interval for a statistic by
// resampling with replacement. The seed makes runs reproducible.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, confidence float64, seed uint64) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrShortData
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: confidence out of range")
	}
	r := newRNG(seed)
	estimates := make([]float64, resamples)
	sample := make([]float64, len(xs))
	for i := 0; i < resamples; i++ {
		for j := range sample {
			sample[j] = xs[r.intn(len(xs))]
		}
		estimates[i] = stat(sample)
	}
	alpha := (1 - confidence) / 2
	lo, err = Quantile(estimates, alpha)
	if err != nil {
		return 0, 0, err
	}
	hi, err = Quantile(estimates, 1-alpha)
	return lo, hi, err
}

// SeriesAlign takes two year→count maps and returns aligned slices over
// the union of years (missing years contribute 0), plus the sorted
// years. Useful for correlating Figure 2 curves.
func SeriesAlign(a, b map[int]int) (xs, ys []float64, years []int) {
	seen := make(map[int]bool)
	for y := range a {
		seen[y] = true
	}
	for y := range b {
		seen[y] = true
	}
	for y := range seen {
		years = append(years, y)
	}
	sort.Ints(years)
	xs = make([]float64, len(years))
	ys = make([]float64, len(years))
	for i, y := range years {
		xs[i] = float64(a[y])
		ys[i] = float64(b[y])
	}
	return xs, ys, years
}
