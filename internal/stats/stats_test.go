package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.138089935299395) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs not zero")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Errorf("perfect correlation = %v, %v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almost(r, -1) {
		t.Errorf("perfect anticorrelation = %v, %v", r, err)
	}
	if _, err := Pearson(xs, ys[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("too-short input accepted")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed uint32) bool {
		xs := make([]float64, 8)
		ys := make([]float64, 8)
		s := uint64(seed) + 1
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = float64(s%1000) / 10
			s = s*6364136223846793005 + 1442695040888963407
			ys[i] = float64(s%1000) / 10
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate draw (zero variance)
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but non-linear relation: Spearman sees rank correlation 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	r, err := Spearman(xs, ys)
	if err != nil || !almost(r, 1) {
		t.Errorf("Spearman(monotone) = %v, %v", r, err)
	}
}

func TestRanksTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestJaccard(t *testing.T) {
	if !almost(Jaccard(2, 3, 5), 0.5) {
		t.Errorf("Jaccard = %v", Jaccard(2, 3, 5))
	}
	if Jaccard(0, 0, 0) != 0 {
		t.Error("empty Jaccard not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	for _, tt := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2},
	} {
		got, err := Quantile(xs, tt.q)
		if err != nil || !almost(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", tt.q, got, err, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	lo, hi, err := BootstrapCI(xs, Mean, 500, 0.95, 42)
	if err != nil {
		t.Fatalf("BootstrapCI: %v", err)
	}
	m := Mean(xs)
	if lo > m || hi < m {
		t.Errorf("CI [%v, %v] excludes the point estimate %v", lo, hi, m)
	}
	if hi-lo > 2 {
		t.Errorf("CI [%v, %v] implausibly wide", lo, hi)
	}
	lo2, hi2, err := BootstrapCI(xs, Mean, 500, 0.95, 42)
	if err != nil || lo2 != lo || hi2 != hi {
		t.Error("bootstrap not reproducible with fixed seed")
	}
	if _, _, err := BootstrapCI(xs[:1], Mean, 10, 0.95, 1); err == nil {
		t.Error("short data accepted")
	}
	if _, _, err := BootstrapCI(xs, Mean, 10, 1.5, 1); err == nil {
		t.Error("bad confidence accepted")
	}
}

func TestSeriesAlign(t *testing.T) {
	a := map[int]int{2000: 5, 2002: 7}
	b := map[int]int{2001: 3, 2002: 2}
	xs, ys, years := SeriesAlign(a, b)
	wantYears := []int{2000, 2001, 2002}
	if len(years) != 3 {
		t.Fatalf("years = %v", years)
	}
	for i, y := range wantYears {
		if years[i] != y {
			t.Fatalf("years = %v", years)
		}
	}
	if xs[0] != 5 || xs[1] != 0 || xs[2] != 7 {
		t.Errorf("xs = %v", xs)
	}
	if ys[0] != 0 || ys[1] != 3 || ys[2] != 2 {
		t.Errorf("ys = %v", ys)
	}
}
