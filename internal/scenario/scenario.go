// Package scenario is the dynamic-diversity engine: it searches OS
// assignments and rotation schedules for an intrusion-tolerant replica
// group, scoring them under the Monte Carlo attack model and validating
// the winner on the BFT substrate.
//
// The paper answers a static question — which OS sets share few
// vulnerabilities. Related work (Chen/Cam/Xu on dynamic network
// diversity; Stoller & Liu on diversity rotation) asks the dynamic one:
// which *sequence* of configurations survives longest when the replicas
// rotate on a cadence. A Spec describes the search space (fault
// threshold f, candidate OS universe, temporal windows, rotation
// interval); Search enumerates size-(3f+1) assignments per window using
// core's cached per-window overlap matrices (one SetCostsByWindow batch
// per candidate set, never the raw vulnerability list), keeps the
// cheapest Beam assignments per window, crosses them into schedules,
// scores every schedule's survival with attack.SimulateRotation over
// deterministic per-candidate seed streams, and replays the winning
// schedule's compromises on a real bft.Cluster. Trials run on the
// attack model's worker pool, so results are byte-identical at any
// parallelism.
package scenario

import (
	"errors"
	"fmt"
	"sort"

	"osdiversity/internal/attack"
	"osdiversity/internal/core"
	"osdiversity/internal/osmap"
)

// Spec describes one recommendation search.
type Spec struct {
	// F is the fault threshold; each window deploys 3F+1 replicas.
	F int
	// Universe lists the candidate distributions assignments draw from.
	Universe []osmap.Distro
	// Windows are the temporal windows of the rotation schedule, in
	// deployment order; window i arms the adversary while step i runs.
	Windows []core.SelectionWindow
	// Interval is the rotation cadence in attack-model time units.
	Interval float64
	// Trials is the Monte Carlo batch size per candidate schedule.
	Trials int
	// Seed roots every candidate's deterministic stream family.
	Seed uint64
	// Beam keeps the cheapest Beam assignments per window before
	// crossing windows into schedules.
	Beam int
}

// searchSpaceCap bounds beam^windows so a spec cannot explode the
// Monte Carlo phase.
const searchSpaceCap = 1024

// subsetCap bounds the assignment enumeration per window.
const subsetCap = 100000

// Validate checks the spec shape.
func (s Spec) Validate() error {
	if s.F < 1 {
		return errors.New("scenario: F must be at least 1")
	}
	n := 3*s.F + 1
	if len(s.Universe) < n {
		return fmt.Errorf("scenario: universe of %d cannot fill %d replicas for F=%d", len(s.Universe), n, s.F)
	}
	if len(s.Windows) == 0 {
		return errors.New("scenario: at least one temporal window required")
	}
	if s.Interval <= 0 {
		return errors.New("scenario: interval must be positive")
	}
	if s.Trials < 1 {
		return errors.New("scenario: at least one trial required")
	}
	if s.Beam < 1 {
		return errors.New("scenario: beam must be at least 1")
	}
	if c := binomial(len(s.Universe), n); c == 0 || c > subsetCap {
		return fmt.Errorf("scenario: %d candidate assignments per window exceeds the cap of %d", c, subsetCap)
	}
	total := 1
	for range s.Windows {
		if total *= s.Beam; total > searchSpaceCap {
			return fmt.Errorf("scenario: beam %d over %d windows exceeds the schedule cap of %d", s.Beam, len(s.Windows), searchSpaceCap)
		}
	}
	return nil
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > subsetCap {
			return subsetCap + 1
		}
	}
	return c
}

// WindowAssignment is one window of a candidate schedule.
type WindowAssignment struct {
	Window core.SelectionWindow
	// OSes assigns distributions to the 3F+1 replicas for the window.
	OSes []osmap.Distro
	// Cost is the window-scoped shared-vulnerability cost of the set.
	Cost int
}

// Candidate is one scored rotation schedule.
type Candidate struct {
	Windows []WindowAssignment
	// Cost sums the per-window costs (the static diversity score).
	Cost int
	// Survival is the fraction of Monte Carlo trials the schedule
	// survived.
	Survival float64
}

// Result is a completed search.
type Result struct {
	Spec Spec
	// Evaluated counts the schedules scored by Monte Carlo.
	Evaluated int
	// Candidates holds every evaluated schedule ranked by survival
	// descending, cost ascending, enumeration order.
	Candidates []Candidate
	// Violations lists BFT replay violations for the winning schedule
	// (empty when the survival claim validated).
	Violations []string
	// Validated reports that the winner's replay kept the safety
	// report clean in every step.
	Validated bool
}

// Engine runs recommendation searches over one corpus.
type Engine struct {
	study *core.Study
	model *attack.Model
}

// NewEngine builds an engine over the study's population under the
// profile (IsolatedThinServer matches the paper's hardened replicas).
func NewEngine(study *core.Study, profile core.Profile) *Engine {
	return &Engine{study: study, model: attack.NewModel(study, profile)}
}

// SetParallelism sets the Monte Carlo worker pool size. Every trial is
// an independent seeded stream, so Search output is identical at any
// worker count. n <= 0 selects GOMAXPROCS.
func (e *Engine) SetParallelism(n int) { e.model.SetParallelism(n) }

// scoredSet is one enumerated assignment with its per-window costs.
type scoredSet struct {
	members []osmap.Distro
	costs   []int // indexed by window
	order   int   // enumeration index, the deterministic tiebreaker
}

// Search runs the full beam + Monte Carlo + replay pipeline.
func (e *Engine) Search(spec Spec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	n := 3*spec.F + 1

	// Beam phase: enumerate size-n subsets of the universe once, batch
	// their per-window costs through core's cached matrices, and keep
	// the cheapest Beam assignments per window.
	var sets []scoredSet
	forEachSubset(len(spec.Universe), n, func(idx []int) {
		members := make([]osmap.Distro, n)
		for i, j := range idx {
			members[i] = spec.Universe[j]
		}
		sets = append(sets, scoredSet{
			members: members,
			costs:   e.study.SetCostsByWindow(members, spec.Windows),
			order:   len(sets),
		})
	})
	beams := make([][]scoredSet, len(spec.Windows))
	for w := range spec.Windows {
		ranked := make([]scoredSet, len(sets))
		copy(ranked, sets)
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].costs[w] != ranked[j].costs[w] {
				return ranked[i].costs[w] < ranked[j].costs[w]
			}
			return ranked[i].order < ranked[j].order
		})
		if len(ranked) > spec.Beam {
			ranked = ranked[:spec.Beam]
		}
		beams[w] = ranked
	}

	// Monte Carlo phase: cross the beams into schedules (lexicographic
	// over per-window beam indices) and score each one's survival on a
	// deterministic per-candidate stream. Trials shard on the worker
	// pool; candidates iterate in order, so ranking is reproducible.
	total := 1
	for _, b := range beams {
		total *= len(b)
	}
	candidates := make([]Candidate, 0, total)
	pick := make([]int, len(beams))
	for ci := 0; ci < total; ci++ {
		rem := ci
		for w := len(beams) - 1; w >= 0; w-- {
			pick[w] = rem % len(beams[w])
			rem /= len(beams[w])
		}
		cand := Candidate{Windows: make([]WindowAssignment, len(beams))}
		steps := make([]attack.RotationStep, len(beams))
		for w, b := range beams {
			chosen := b[pick[w]]
			cand.Windows[w] = WindowAssignment{
				Window: spec.Windows[w],
				OSes:   chosen.members,
				Cost:   chosen.costs[w],
			}
			cand.Cost += chosen.costs[w]
			steps[w] = attack.RotationStep{OSes: chosen.members, Window: spec.Windows[w]}
		}
		seedBase := spec.Seed*0x100000001B3 + uint64(ci)*0x9E3779B97F4A7C15
		survival, err := e.model.RotationSurvival(spec.F, steps, spec.Interval, spec.Trials, seedBase)
		if err != nil {
			return Result{}, err
		}
		cand.Survival = survival
		candidates = append(candidates, cand)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].Survival != candidates[j].Survival {
			return candidates[i].Survival > candidates[j].Survival
		}
		return candidates[i].Cost < candidates[j].Cost
	})

	res := Result{Spec: spec, Evaluated: total, Candidates: candidates}

	// Replay phase: validate the winner's survival claim on the BFT
	// substrate.
	winner := candidates[0]
	steps := make([]attack.RotationStep, len(winner.Windows))
	for w, wa := range winner.Windows {
		steps[w] = attack.RotationStep{OSes: wa.OSes, Window: wa.Window}
	}
	violations, err := e.model.ReplayRotationOnCluster(spec.F, steps, spec.Seed)
	if err != nil {
		return Result{}, err
	}
	res.Violations = violations
	res.Validated = len(violations) == 0
	return res, nil
}

// forEachSubset visits every size-k index subset of [0, n) in
// lexicographic order.
func forEachSubset(n, k int, visit func(idx []int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		visit(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
