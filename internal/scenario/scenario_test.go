package scenario

import (
	"reflect"
	"testing"

	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/osmap"
)

var studyCache *core.Study

func paperStudy(t testing.TB) *core.Study {
	t.Helper()
	if studyCache == nil {
		c, err := corpus.Generate()
		if err != nil {
			t.Fatalf("corpus.Generate: %v", err)
		}
		studyCache = core.NewStudy(c.Entries)
	}
	return studyCache
}

func testSpec() Spec {
	return Spec{
		F:        1,
		Universe: osmap.HistoryEligible(),
		Windows: []core.SelectionWindow{
			{FromYear: 1994, ToYear: 2002},
			{FromYear: 2003, ToYear: 2010},
		},
		Interval: 2,
		Trials:   100,
		Seed:     1,
		Beam:     3,
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*Spec){
		"F=0":            func(s *Spec) { s.F = 0 },
		"small universe": func(s *Spec) { s.Universe = s.Universe[:3] },
		"no windows":     func(s *Spec) { s.Windows = nil },
		"zero interval":  func(s *Spec) { s.Interval = 0 },
		"zero trials":    func(s *Spec) { s.Trials = 0 },
		"zero beam":      func(s *Spec) { s.Beam = 0 },
		"beam blowup": func(s *Spec) {
			s.Beam = 16
			s.Windows = make([]core.SelectionWindow, 8)
		},
	}
	for name, mutate := range cases {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSearchDeterministicAcrossWorkers pins the serial == parallel
// identity of the whole pipeline: beams, Monte Carlo ranking and the
// replay verdict are byte-for-byte equal at any worker count.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	study := paperStudy(t)
	serial := NewEngine(study, core.IsolatedThinServer)
	serial.SetParallelism(1)
	want, err := serial.Search(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	parallel := NewEngine(study, core.IsolatedThinServer)
	parallel.SetParallelism(4)
	got, err := parallel.Search(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("search diverged across worker counts:\nserial:   %+v\nparallel: %+v", want, got)
	}
}

// TestSearchShape checks the structural claims: every candidate has
// one assignment per window with 3F+1 replicas, candidates rank by
// survival descending (ties by cost ascending), and the evaluated
// count matches the beam cross product.
func TestSearchShape(t *testing.T) {
	eng := NewEngine(paperStudy(t), core.IsolatedThinServer)
	spec := testSpec()
	res, err := eng.Search(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != spec.Beam*spec.Beam {
		t.Errorf("evaluated = %d, want %d", res.Evaluated, spec.Beam*spec.Beam)
	}
	if len(res.Candidates) != res.Evaluated {
		t.Fatalf("candidates = %d, want %d", len(res.Candidates), res.Evaluated)
	}
	for i, c := range res.Candidates {
		if len(c.Windows) != len(spec.Windows) {
			t.Fatalf("candidate %d has %d windows", i, len(c.Windows))
		}
		sum := 0
		for w, wa := range c.Windows {
			if len(wa.OSes) != 3*spec.F+1 {
				t.Fatalf("candidate %d window %d has %d replicas", i, w, len(wa.OSes))
			}
			if wa.Window != spec.Windows[w] {
				t.Fatalf("candidate %d window %d = %+v", i, w, wa.Window)
			}
			sum += wa.Cost
		}
		if sum != c.Cost {
			t.Errorf("candidate %d cost %d != window sum %d", i, c.Cost, sum)
		}
		if i > 0 {
			prev := res.Candidates[i-1]
			if c.Survival > prev.Survival {
				t.Errorf("candidate %d survival %v above predecessor %v", i, c.Survival, prev.Survival)
			}
			if c.Survival == prev.Survival && c.Cost < prev.Cost {
				t.Errorf("candidate %d breaks the cost tiebreak", i)
			}
		}
	}
}

// TestSearchValidatesWinner pins the acceptance claim: the winning
// schedule's survival claim replays cleanly on a bft.Cluster.
func TestSearchValidatesWinner(t *testing.T) {
	eng := NewEngine(paperStudy(t), core.IsolatedThinServer)
	res, err := eng.Search(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated {
		t.Fatalf("winner failed BFT replay validation: %v", res.Violations)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations on a validated result: %v", res.Violations)
	}
}

// TestWindowCostsMatchCore pins that the beam phase scores assignments
// with core's cached window matrices: the reported per-window cost of
// every candidate equals a direct SetCost query.
func TestWindowCostsMatchCore(t *testing.T) {
	study := paperStudy(t)
	eng := NewEngine(study, core.IsolatedThinServer)
	res, err := eng.Search(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Candidates {
		for w, wa := range c.Windows {
			if got, want := wa.Cost, study.SetCost(wa.OSes, wa.Window); got != want {
				t.Fatalf("candidate %d window %d cost = %d, core says %d", i, w, got, want)
			}
		}
	}
}

func TestForEachSubset(t *testing.T) {
	var got [][]int
	forEachSubset(4, 2, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subsets = %v, want %v", got, want)
	}
}
