package scenario

import (
	"testing"

	"osdiversity/internal/core"
)

// BenchmarkRecommendSearch measures the full recommend pipeline on the
// calibrated corpus: beam selection over core's window matrices, the
// Monte Carlo survival ranking, and the BFT replay of the winner —
// the work behind one cold `osdiv recommend` / POST /api/recommend.
func BenchmarkRecommendSearch(b *testing.B) {
	eng := NewEngine(paperStudy(b), core.IsolatedThinServer)
	eng.SetParallelism(1)
	spec := testSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(spec); err != nil {
			b.Fatal(err)
		}
	}
}
