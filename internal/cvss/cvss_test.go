package cvss

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Reference scores computed with the official CVSS v2 equations (and
// cross-checked against NVD's published scores for these well-known CVEs).
func TestBaseScoreReference(t *testing.T) {
	tests := []struct {
		name   string
		vector string
		want   float64
	}{
		// CVE-2008-1447 (DNS cache poisoning).
		{"partial integrity network", "AV:N/AC:L/Au:N/C:N/I:P/A:N", 5.0},
		// CVE-2008-4609 (TCP state-table DoS).
		{"complete availability medium", "AV:N/AC:M/Au:N/C:N/I:N/A:C", 7.1},
		// Classic remote root.
		{"full remote compromise", "AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0},
		// Classic local root.
		{"full local compromise", "AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2},
		{"no impact scores zero", "AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0},
		{"local partial dos", "AV:L/AC:L/Au:N/C:N/I:N/A:P", 2.1},
		{"adjacent partial trio", "AV:A/AC:L/Au:N/C:P/I:P/A:P", 5.8},
		{"authenticated network", "AV:N/AC:L/Au:S/C:P/I:P/A:P", 6.5},
		{"hard local", "AV:L/AC:H/Au:N/C:C/I:C/A:C", 6.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := Parse(tt.vector)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.vector, err)
			}
			if got := v.BaseScore(); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("BaseScore(%s) = %.1f, want %.1f", tt.vector, got, tt.want)
			}
		})
	}
}

func TestParseForms(t *testing.T) {
	want := Vector{AV: AccessNetwork, AC: ComplexityLow, Au: AuthNone, C: ImpactPartial, I: ImpactPartial, A: ImpactPartial}
	for _, in := range []string{
		"AV:N/AC:L/Au:N/C:P/I:P/A:P",
		"(AV:N/AC:L/Au:N/C:P/I:P/A:P)",
		"  (AV:N/AC:L/Au:N/C:P/I:P/A:P)  ",
	} {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"AV:N",                           // missing metrics
		"AV:N/AC:L/Au:N/C:P/I:P",         // missing A
		"AV:X/AC:L/Au:N/C:P/I:P/A:P",     // bad AV
		"AV:N/AC:X/Au:N/C:P/I:P/A:P",     // bad AC
		"AV:N/AC:L/Au:X/C:P/I:P/A:P",     // bad Au
		"AV:N/AC:L/Au:N/C:X/I:P/A:P",     // bad C
		"AV:N/AC:L/Au:N/C:P/I:P/A:P/E:F", // temporal metric rejected
		"AV:NN/AC:L/Au:N/C:P/I:P/A:P",    // long value
		"AV=N/AC:L/Au:N/C:P/I:P/A:P",     // bad separator
		"av:N/AC:L/Au:N/C:P/I:P/A:P",     // lowercase metric name
	}
	for _, in := range bad {
		if v, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, v)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	vectors := allVectors()
	for _, v := range vectors {
		back, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(String(%+v)): %v", v, err)
		}
		if back != v {
			t.Fatalf("round trip changed %+v to %+v", v, back)
		}
	}
}

// allVectors enumerates the full 729-vector metric space.
func allVectors() []Vector {
	var out []Vector
	for _, av := range []AccessVector{AccessLocal, AccessAdjacentNetwork, AccessNetwork} {
		for _, ac := range []AccessComplexity{ComplexityHigh, ComplexityMedium, ComplexityLow} {
			for _, au := range []Authentication{AuthMultiple, AuthSingle, AuthNone} {
				for _, c := range []Impact{ImpactNone, ImpactPartial, ImpactComplete} {
					for _, i := range []Impact{ImpactNone, ImpactPartial, ImpactComplete} {
						for _, a := range []Impact{ImpactNone, ImpactPartial, ImpactComplete} {
							out = append(out, Vector{AV: av, AC: ac, Au: au, C: c, I: i, A: a})
						}
					}
				}
			}
		}
	}
	return out
}

func TestScoreBounds(t *testing.T) {
	for _, v := range allVectors() {
		s := v.BaseScore()
		if s < 0 || s > 10 {
			t.Fatalf("BaseScore(%s) = %v out of [0,10]", v, s)
		}
		if imp := v.Impact(); imp < 0 || imp > 10 {
			t.Fatalf("Impact(%s) = %v out of [0,10]", v, imp)
		}
		if exp := v.Exploitability(); exp < 0 || exp > 10 {
			t.Fatalf("Exploitability(%s) = %v out of [0,10]", v, exp)
		}
		// One decimal place by construction.
		if math.Abs(s*10-math.Round(s*10)) > 1e-9 {
			t.Fatalf("BaseScore(%s) = %v not rounded to one decimal", v, s)
		}
	}
}

func TestScoreMonotonicInAccessVector(t *testing.T) {
	// Widening attacker reach must never lower the score, holding the
	// other metrics fixed.
	for _, base := range allVectors() {
		if base.AV != AccessLocal {
			continue
		}
		adj, net := base, base
		adj.AV = AccessAdjacentNetwork
		net.AV = AccessNetwork
		if !(base.BaseScore() <= adj.BaseScore() && adj.BaseScore() <= net.BaseScore()) {
			t.Fatalf("score not monotone in AV for %s: L=%v A=%v N=%v",
				base, base.BaseScore(), adj.BaseScore(), net.BaseScore())
		}
	}
}

func TestZeroImpactScoresZero(t *testing.T) {
	f := func(avSel, acSel, auSel uint8) bool {
		v := Vector{
			AV: []AccessVector{AccessLocal, AccessAdjacentNetwork, AccessNetwork}[avSel%3],
			AC: []AccessComplexity{ComplexityHigh, ComplexityMedium, ComplexityLow}[acSel%3],
			Au: []Authentication{AuthMultiple, AuthSingle, AuthNone}[auSel%3],
			C:  ImpactNone, I: ImpactNone, A: ImpactNone,
		}
		return v.BaseScore() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemote(t *testing.T) {
	if !AccessNetwork.Remote() || !AccessAdjacentNetwork.Remote() {
		t.Error("network vectors must be remote")
	}
	if AccessLocal.Remote() {
		t.Error("local vector must not be remote")
	}
}

func TestSeverity(t *testing.T) {
	tests := []struct {
		vector string
		want   string
	}{
		{"AV:N/AC:L/Au:N/C:C/I:C/A:C", "HIGH"},
		{"AV:N/AC:L/Au:N/C:N/I:P/A:N", "MEDIUM"},
		{"AV:L/AC:L/Au:N/C:N/I:N/A:P", "LOW"},
		{"AV:N/AC:L/Au:N/C:N/I:N/A:N", "LOW"},
	}
	for _, tt := range tests {
		if got := MustParse(tt.vector).Severity(); got != tt.want {
			t.Errorf("Severity(%s) = %q, want %q", tt.vector, got, tt.want)
		}
	}
}

func TestMetricStrings(t *testing.T) {
	pairs := []struct {
		got, want string
	}{
		{AccessNetwork.String(), "NETWORK"},
		{AccessAdjacentNetwork.String(), "ADJACENT_NETWORK"},
		{AccessLocal.String(), "LOCAL"},
		{ComplexityHigh.String(), "HIGH"},
		{AuthNone.String(), "NONE"},
		{ImpactComplete.String(), "COMPLETE"},
		{AccessVector(0).String(), "UNKNOWN"},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("String() = %q, want %q", p.got, p.want)
		}
	}
}

func TestIsZero(t *testing.T) {
	var zero Vector
	if !zero.IsZero() {
		t.Error("zero vector not reported zero")
	}
	if MustParse("AV:N/AC:L/Au:N/C:P/I:P/A:P").IsZero() {
		t.Error("parsed vector reported zero")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on malformed vector did not panic")
		}
	}()
	MustParse("AV:N")
}

func TestParseNeverPanics(t *testing.T) {
	// Deterministic sweep of mangled vectors through Parse to check it
	// never panics, regardless of outcome.
	base := "AV:N/AC:L/Au:N/C:P/I:P/A:P"
	for i := 0; i < len(base); i++ {
		for _, r := range []string{"", "X", ":", "/", "("} {
			mangled := base[:i] + r + base[i+1:]
			Parse(mangled) // must not panic
		}
	}
	Parse(strings.Repeat("/", 100))
	Parse(strings.Repeat("AV:N/", 50))
}
