// Package cvss implements the CVSS version 2 base metrics, which is the
// scoring system attached to every NVD entry in the period the paper
// studies (1994–2010).
//
// The paper uses a single CVSS field — CVSS_ACCESS_VECTOR — to decide
// whether a vulnerability is remotely exploitable ("Network" or "Adjacent
// Network") for its Isolated Thin Server filter. We implement the complete
// base metric group anyway, because the generated feeds carry full vectors
// and downstream consumers (attack simulation, reporting) use the scores.
package cvss

import (
	"fmt"
	"math"
	"strings"
)

// AccessVector describes from where a vulnerability is exploitable.
type AccessVector byte

// Access vector values, in increasing order of attacker reach.
const (
	AccessLocal           AccessVector = 'L'
	AccessAdjacentNetwork AccessVector = 'A'
	AccessNetwork         AccessVector = 'N'
)

// Remote reports whether the vulnerability can be exploited without local
// access. This is exactly the paper's "No Local" criterion: CVSS access
// vector "Network" or "Adjacent Network".
func (v AccessVector) Remote() bool { return v == AccessNetwork || v == AccessAdjacentNetwork }

// String returns the NVD feed spelling of the access vector.
func (v AccessVector) String() string {
	switch v {
	case AccessLocal:
		return "LOCAL"
	case AccessAdjacentNetwork:
		return "ADJACENT_NETWORK"
	case AccessNetwork:
		return "NETWORK"
	}
	return "UNKNOWN"
}

func (v AccessVector) score() float64 {
	switch v {
	case AccessLocal:
		return 0.395
	case AccessAdjacentNetwork:
		return 0.646
	default:
		return 1.0
	}
}

// AccessComplexity describes how hard the attack is to mount.
type AccessComplexity byte

// Access complexity values.
const (
	ComplexityHigh   AccessComplexity = 'H'
	ComplexityMedium AccessComplexity = 'M'
	ComplexityLow    AccessComplexity = 'L'
)

// String returns the NVD feed spelling of the access complexity.
func (c AccessComplexity) String() string {
	switch c {
	case ComplexityHigh:
		return "HIGH"
	case ComplexityMedium:
		return "MEDIUM"
	case ComplexityLow:
		return "LOW"
	}
	return "UNKNOWN"
}

func (c AccessComplexity) score() float64 {
	switch c {
	case ComplexityHigh:
		return 0.35
	case ComplexityMedium:
		return 0.61
	default:
		return 0.71
	}
}

// Authentication describes how many times an attacker must authenticate.
type Authentication byte

// Authentication values.
const (
	AuthMultiple Authentication = 'M'
	AuthSingle   Authentication = 'S'
	AuthNone     Authentication = 'N'
)

// String returns the NVD feed spelling of the authentication metric.
func (a Authentication) String() string {
	switch a {
	case AuthMultiple:
		return "MULTIPLE_INSTANCES"
	case AuthSingle:
		return "SINGLE_INSTANCE"
	case AuthNone:
		return "NONE"
	}
	return "UNKNOWN"
}

func (a Authentication) score() float64 {
	switch a {
	case AuthMultiple:
		return 0.45
	case AuthSingle:
		return 0.56
	default:
		return 0.704
	}
}

// Impact describes the degree of loss on one of the three security
// attributes (confidentiality, integrity, availability).
type Impact byte

// Impact values.
const (
	ImpactNone     Impact = 'N'
	ImpactPartial  Impact = 'P'
	ImpactComplete Impact = 'C'
)

// String returns the NVD feed spelling of an impact value.
func (i Impact) String() string {
	switch i {
	case ImpactNone:
		return "NONE"
	case ImpactPartial:
		return "PARTIAL"
	case ImpactComplete:
		return "COMPLETE"
	}
	return "UNKNOWN"
}

func (i Impact) score() float64 {
	switch i {
	case ImpactComplete:
		return 0.660
	case ImpactPartial:
		return 0.275
	default:
		return 0.0
	}
}

// Vector is a parsed CVSS v2 base vector.
//
// The zero Vector is recognizably invalid (all metrics unknown); IsZero
// reports that state. Construct vectors with Parse or with composite
// literals using the metric constants.
type Vector struct {
	AV AccessVector
	AC AccessComplexity
	Au Authentication
	C  Impact
	I  Impact
	A  Impact
}

// IsZero reports whether v is the zero vector (no metrics set).
func (v Vector) IsZero() bool { return v == Vector{} }

// Parse parses a base vector in the canonical parenthesized or bare form,
// e.g. "(AV:N/AC:L/Au:N/C:P/I:P/A:P)" or "AV:L/AC:H/Au:S/C:C/I:C/A:C".
func Parse(s string) (Vector, error) {
	orig := s
	s = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(s), ")"), "(")
	var v Vector
	var seen [6]bool
	for _, field := range strings.Split(s, "/") {
		name, val, ok := strings.Cut(field, ":")
		if !ok || len(val) != 1 {
			return Vector{}, fmt.Errorf("cvss: malformed metric %q in %q", field, orig)
		}
		c := val[0]
		switch name {
		case "AV":
			switch AccessVector(c) {
			case AccessLocal, AccessAdjacentNetwork, AccessNetwork:
				v.AV, seen[0] = AccessVector(c), true
			default:
				return Vector{}, fmt.Errorf("cvss: bad AV value %q in %q", val, orig)
			}
		case "AC":
			switch AccessComplexity(c) {
			case ComplexityHigh, ComplexityMedium, ComplexityLow:
				v.AC, seen[1] = AccessComplexity(c), true
			default:
				return Vector{}, fmt.Errorf("cvss: bad AC value %q in %q", val, orig)
			}
		case "Au":
			switch Authentication(c) {
			case AuthMultiple, AuthSingle, AuthNone:
				v.Au, seen[2] = Authentication(c), true
			default:
				return Vector{}, fmt.Errorf("cvss: bad Au value %q in %q", val, orig)
			}
		case "C", "I", "A":
			switch Impact(c) {
			case ImpactNone, ImpactPartial, ImpactComplete:
			default:
				return Vector{}, fmt.Errorf("cvss: bad %s value %q in %q", name, val, orig)
			}
			switch name {
			case "C":
				v.C, seen[3] = Impact(c), true
			case "I":
				v.I, seen[4] = Impact(c), true
			case "A":
				v.A, seen[5] = Impact(c), true
			}
		default:
			return Vector{}, fmt.Errorf("cvss: unknown metric %q in %q", name, orig)
		}
	}
	for i, ok := range seen {
		if !ok {
			names := []string{"AV", "AC", "Au", "C", "I", "A"}
			return Vector{}, fmt.Errorf("cvss: metric %s missing in %q", names[i], orig)
		}
	}
	return v, nil
}

// MustParse is Parse but panics on error; for static tables.
func MustParse(s string) Vector {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the vector in the canonical bare form.
func (v Vector) String() string {
	return fmt.Sprintf("AV:%c/AC:%c/Au:%c/C:%c/I:%c/A:%c",
		byte(v.AV), byte(v.AC), byte(v.Au), byte(v.C), byte(v.I), byte(v.A))
}

// Impact returns the impact sub-score in [0, 10.0].
func (v Vector) Impact() float64 {
	return round1(10.41 * (1 - (1-v.C.score())*(1-v.I.score())*(1-v.A.score())))
}

// Exploitability returns the exploitability sub-score in [0, 10.0].
func (v Vector) Exploitability() float64 {
	return round1(20 * v.AV.score() * v.AC.score() * v.Au.score())
}

// BaseScore computes the CVSS v2 base score in [0, 10.0] using the
// official equation, including the f(impact) adjustment term.
func (v Vector) BaseScore() float64 {
	impact := 10.41 * (1 - (1-v.C.score())*(1-v.I.score())*(1-v.A.score()))
	exploitability := 20 * v.AV.score() * v.AC.score() * v.Au.score()
	fImpact := 1.176
	if impact == 0 {
		fImpact = 0
	}
	return round1((0.6*impact + 0.4*exploitability - 1.5) * fImpact)
}

// Severity classifies the base score into NVD's qualitative bands:
// LOW [0.0,3.9], MEDIUM [4.0,6.9], HIGH [7.0,10.0].
func (v Vector) Severity() string {
	switch s := v.BaseScore(); {
	case s >= 7.0:
		return "HIGH"
	case s >= 4.0:
		return "MEDIUM"
	default:
		return "LOW"
	}
}

// round1 rounds to one decimal place, as the CVSS v2 specification
// requires after each equation.
func round1(x float64) float64 { return math.Round(x*10) / 10 }
