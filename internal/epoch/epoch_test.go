package epoch

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"osdiversity"
)

// fixture is a base analysis plus delta feed paths to reload with.
type fixture struct {
	base  *osdiversity.Analysis
	delta []string
	dir   string
}

func makeFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	if len(feeds) < 2 {
		t.Fatalf("calibrated corpus spans only %d feed files", len(feeds))
	}
	base, err := osdiversity.StreamFeeds(feeds[:len(feeds)-1])
	if err != nil {
		t.Fatalf("StreamFeeds: %v", err)
	}
	return &fixture{base: base, delta: feeds[len(feeds)-1:], dir: dir}
}

func (fx *fixture) applyDelta(base *osdiversity.Analysis) (*osdiversity.Analysis, error) {
	return base.ApplyDelta(fx.delta)
}

// tables captures a byte-comparable answer set from an analysis.
func tables(t *testing.T, a *osdiversity.Analysis) []byte {
	t.Helper()
	rows, distinct := a.ValidityTable()
	raw, err := json.Marshal(map[string]any{
		"rows": rows, "distinct": distinct, "pairs": a.PairwiseOverlaps(),
	})
	if err != nil {
		t.Fatalf("marshal tables: %v", err)
	}
	return raw
}

func TestBootAndReloadSwap(t *testing.T) {
	fx := makeFixture(t)
	m := NewManager(Config{})

	if m.Ready() {
		t.Fatal("manager ready before Install")
	}
	if _, err := m.Reload("delta", fx.applyDelta); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Reload before boot: err = %v, want ErrNotReady", err)
	}
	if got := m.Status().Failures; got != 1 {
		t.Fatalf("failures = %d after pre-boot reload, want 1", got)
	}

	boot := m.Install(fx.base, "feeds")
	if boot.Seq != 1 || !m.Ready() {
		t.Fatalf("boot epoch seq = %d, ready = %v", boot.Seq, m.Ready())
	}
	before := tables(t, fx.base)

	e, err := m.Reload("delta", fx.applyDelta)
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if e.Seq != 2 {
		t.Errorf("reloaded epoch seq = %d, want 2", e.Seq)
	}
	cur, ok := m.Current()
	if !ok || cur != e {
		t.Error("Current() is not the reloaded epoch")
	}
	if cur.Analysis == fx.base {
		t.Error("reload did not produce a new analysis")
	}
	if got := tables(t, fx.base); !bytes.Equal(before, got) {
		t.Error("reload mutated the old epoch's analysis")
	}
	st := m.Status()
	if st.Successes != 1 || st.Failures != 1 || st.Seq != 2 {
		t.Errorf("status = %+v, want 1 success, 1 failure, seq 2", st)
	}
}

// TestReloadFaultInjection drives every failure mode the tentpole
// names — corrupt delta feed, mid-build error, mid-build panic,
// post-build corruption, validation rejection, failed snapshot tee,
// even a panic at the swap hook — and asserts each one counts a
// failure, records the error, and leaves the exact same epoch pointer
// serving identical bytes.
func TestReloadFaultInjection(t *testing.T) {
	fx := makeFixture(t)
	corrupt := filepath.Join(fx.dir, "nvdcve-2.0-corrupt.xml.gz")
	if err := os.WriteFile(corrupt, []byte("this is not gzip"), 0o644); err != nil {
		t.Fatalf("write corrupt delta: %v", err)
	}

	cases := []struct {
		name    string
		cfg     Config
		build   BuildFunc
		errPart string
	}{
		{
			name: "corrupt delta feed",
			build: func(base *osdiversity.Analysis) (*osdiversity.Analysis, error) {
				return base.ApplyDelta([]string{corrupt})
			},
			errPart: "build attempt",
		},
		{
			name: "mid-build error",
			build: func(*osdiversity.Analysis) (*osdiversity.Analysis, error) {
				return nil, errors.New("synthetic build failure")
			},
			errPart: "synthetic build failure",
		},
		{
			name: "mid-build panic",
			build: func(*osdiversity.Analysis) (*osdiversity.Analysis, error) {
				panic("boom in build")
			},
			errPart: "reload panicked: boom in build",
		},
		{
			name: "post-build corruption detected",
			cfg: Config{Hooks: Hooks{AfterBuild: func(*osdiversity.Analysis) error {
				return errors.New("columns corrupted in flight")
			}}},
			errPart: "columns corrupted in flight",
		},
		{
			name: "validation rejection",
			cfg: Config{Validate: func(*osdiversity.Analysis) error {
				return errors.New("candidate failed deep validation")
			}},
			errPart: "candidate rejected",
		},
		{
			name: "failed snapshot tee",
			build: func(base *osdiversity.Analysis) (*osdiversity.Analysis, error) {
				return base.ApplyDelta(fx.delta,
					osdiversity.WithSnapshot(filepath.Join(fx.dir, "no-such-dir", "tee.osds")))
			},
			errPart: "build attempt",
		},
		{
			name:    "panic at swap hook",
			cfg:     Config{Hooks: Hooks{BeforeSwap: func() { panic("boom at swap") }}},
			errPart: "reload panicked: boom at swap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var logs []string
			tc.cfg.Logf = func(format string, args ...any) {
				logs = append(logs, fmt.Sprintf(format, args...))
			}
			m := NewManager(tc.cfg)
			boot := m.Install(fx.base, "feeds")
			before := tables(t, boot.Analysis)

			build := tc.build
			if build == nil {
				build = fx.applyDelta
			}
			if _, err := m.Reload("delta", build); err == nil {
				t.Fatal("Reload succeeded, want failure")
			} else if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}

			cur, ok := m.Current()
			if !ok || cur != boot {
				t.Error("failed reload replaced the current epoch")
			}
			if got := tables(t, cur.Analysis); !bytes.Equal(before, got) {
				t.Error("failed reload changed the old epoch's answers")
			}
			st := m.Status()
			if st.Failures != 1 || st.Successes != 0 || st.Seq != 1 {
				t.Errorf("status = %+v, want exactly 1 failure on epoch 1", st)
			}
			if !strings.Contains(st.LastError, tc.errPart) || st.LastErrorUnix == 0 {
				t.Errorf("last error %q / unix %d not recorded", st.LastError, st.LastErrorUnix)
			}
			if len(logs) == 0 {
				t.Error("failure logged nothing")
			}

			// The manager must keep working: the same failed build again,
			// then a clean reload.
			if _, err := m.Reload("delta", build); err == nil {
				t.Fatal("second failed reload succeeded")
			}
			m2 := NewManager(Config{})
			m2.Install(fx.base, "feeds")
			if _, err := m2.Reload("delta", fx.applyDelta); err != nil {
				t.Fatalf("clean reload after failures: %v", err)
			}
		})
	}
}

func TestTransientErrorsRetryWithBackoff(t *testing.T) {
	fx := makeFixture(t)
	var slept []time.Duration
	fails := 2
	m := NewManager(Config{
		Sleep: func(d time.Duration) { slept = append(slept, d) },
		Hooks: Hooks{BeforeBuild: func() error {
			if fails > 0 {
				fails--
				return fmt.Errorf("open delta: %w", syscall.EAGAIN)
			}
			return nil
		}},
	})
	m.Install(fx.base, "feeds")
	e, err := m.Reload("delta", fx.applyDelta)
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if e.Seq != 2 {
		t.Errorf("epoch seq = %d, want 2", e.Seq)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (one per transient failure)", len(slept))
	}
	// Jittered exponential backoff: attempt n sleeps within
	// [base*2^(n-1)/2, base*2^(n-1)].
	base := 50 * time.Millisecond
	for i, d := range slept {
		lo, hi := base/2, base
		if d < lo || d > hi {
			t.Errorf("backoff %d = %v outside [%v, %v]", i+1, d, lo, hi)
		}
		base *= 2
	}
	if st := m.Status(); st.Failures != 0 || st.Successes != 1 {
		t.Errorf("status = %+v, want retried success with no counted failure", st)
	}
}

func TestTransientRetriesAreBounded(t *testing.T) {
	fx := makeFixture(t)
	attempts := 0
	m := NewManager(Config{
		Retry: RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond},
		Sleep: func(time.Duration) {},
		Hooks: Hooks{BeforeBuild: func() error {
			attempts++
			return fmt.Errorf("open delta: %w", syscall.EAGAIN)
		}},
	})
	m.Install(fx.base, "feeds")
	if _, err := m.Reload("delta", fx.applyDelta); err == nil {
		t.Fatal("Reload succeeded, want bounded failure")
	}
	if attempts != 3 {
		t.Errorf("build attempted %d times, want 3", attempts)
	}
	if st := m.Status(); st.Failures != 1 {
		t.Errorf("failures = %d, want 1 (retries count as one failure)", st.Failures)
	}
}

func TestPanicsAreNeverRetried(t *testing.T) {
	fx := makeFixture(t)
	attempts := 0
	m := NewManager(Config{Sleep: func(time.Duration) {}})
	m.Install(fx.base, "feeds")
	_, err := m.Reload("delta", func(*osdiversity.Analysis) (*osdiversity.Analysis, error) {
		attempts++
		panic(syscall.EAGAIN) // transient-looking, but panics never retry
	})
	if err == nil || attempts != 1 {
		t.Fatalf("err = %v, attempts = %d; want one failed attempt", err, attempts)
	}
}

func TestTryReloadWhileReloadInFlight(t *testing.T) {
	fx := makeFixture(t)
	m := NewManager(Config{})
	m.Install(fx.base, "feeds")

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := m.Reload("slow", func(base *osdiversity.Analysis) (*osdiversity.Analysis, error) {
			close(entered)
			<-release
			return fx.applyDelta(base)
		})
		done <- err
	}()
	<-entered

	if _, err := m.TryReload("admin", fx.applyDelta); !errors.Is(err, ErrReloadInProgress) {
		t.Errorf("TryReload during reload: err = %v, want ErrReloadInProgress", err)
	}
	// Losing the race counts no failure: nothing was attempted.
	if st := m.Status(); st.Failures != 0 {
		t.Errorf("failures = %d after busy TryReload, want 0", st.Failures)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("background reload: %v", err)
	}
	if st := m.Status(); st.Successes != 1 || st.Seq != 2 {
		t.Errorf("status = %+v, want one success at seq 2", st)
	}
}

func TestSeqIsMonotonic(t *testing.T) {
	fx := makeFixture(t)
	m := NewManager(Config{})
	m.Install(fx.base, "feeds")
	var last uint64 = 1
	for i := 0; i < 3; i++ {
		e, err := m.Reload("delta", fx.applyDelta)
		if err != nil {
			t.Fatalf("Reload %d: %v", i, err)
		}
		if e.Seq != last+1 {
			t.Fatalf("seq %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
}

func TestDefaultValidate(t *testing.T) {
	if err := DefaultValidate(nil); err == nil {
		t.Error("DefaultValidate(nil) = nil, want error")
	}
	empty, err := osdiversity.StreamFeeds(nil)
	if err != nil {
		t.Fatalf("StreamFeeds(nil): %v", err)
	}
	if err := DefaultValidate(empty); err == nil {
		t.Error("DefaultValidate(empty) = nil, want error")
	}
	fx := makeFixture(t)
	if err := DefaultValidate(fx.base); err != nil {
		t.Errorf("DefaultValidate(real analysis): %v", err)
	}
}

func TestTransient(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrap: %w", syscall.EAGAIN), true},
		{fmt.Errorf("wrap: %w", syscall.EMFILE), true},
		{fmt.Errorf("wrap: %w", os.ErrNotExist), true},
		{errors.New("parse error"), false},
		{fmt.Errorf("wrap: %w", syscall.EACCES), false},
	} {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
