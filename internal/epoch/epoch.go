// Package epoch holds the server's resident analysis behind an
// RCU-style atomic handle and runs hot reloads against it.
//
// The invariants the package exists to enforce:
//
//   - Readers never block and never observe a torn epoch: Current is one
//     atomic pointer load, and everything reachable from an *Epoch is
//     immutable once published.
//   - A reload builds and deep-validates the candidate analysis entirely
//     off to the side; the swap is a single pointer store, so in-flight
//     queries finish on the epoch they resolved at request start.
//   - Every reload failure degrades instead of dying: build errors,
//     panics anywhere on the reload path, validation rejections and
//     snapshot-tee failures each log one structured line, bump the
//     failure counter, and leave the previous epoch serving untouched.
//     Transient file errors retry with jittered bounded backoff first.
//
// Swapped-out epochs are intentionally never Closed here: queries may
// still be draining on them, and a delta-derived epoch shares no memory
// with its base, so the garbage collector reclaims old epochs once the
// last request lets go.
package epoch

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"osdiversity"
)

// Epoch is one immutable published generation of the resident analysis.
type Epoch struct {
	Analysis *osdiversity.Analysis
	// Seq is the monotonically increasing generation number, starting at
	// 1 for the boot epoch. Response caches key by it.
	Seq uint64
	// Source describes where this epoch's corpus came from.
	Source string
	// SwappedAt is when the epoch became current.
	SwappedAt time.Time
}

// BuildFunc builds a candidate analysis from the current one — typically
// base.ApplyDelta over freshly globbed delta feeds. It runs outside any
// lock held by readers; returning an error (or panicking) counts one
// reload failure and leaves base serving.
type BuildFunc func(base *osdiversity.Analysis) (*osdiversity.Analysis, error)

// RetryPolicy bounds the backoff loop for transient build errors.
type RetryPolicy struct {
	Attempts  int           // total attempts, including the first (default 3)
	BaseDelay time.Duration // first backoff (default 50ms)
	MaxDelay  time.Duration // backoff cap (default 2s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Hooks are fault-injection points on the reload path, in the spirit of
// snapshot's forceCopy test hook. All are optional and run on the
// reloading goroutine: BeforeBuild before each build attempt (an error
// is treated as a build error, so transient ones retry), AfterBuild
// between build and validation (to corrupt or reject a candidate), and
// BeforeSwap after validation just before the pointer store.
type Hooks struct {
	BeforeBuild func() error
	AfterBuild  func(*osdiversity.Analysis) error
	BeforeSwap  func()
}

// Config parameterizes a Manager. The zero value is production-ready.
type Config struct {
	// Validate deep-checks a candidate before the swap; nil selects
	// DefaultValidate.
	Validate func(*osdiversity.Analysis) error
	// Retry bounds the transient-error backoff loop.
	Retry RetryPolicy
	// Logf receives one structured line per reload outcome; nil discards.
	Logf func(format string, args ...any)
	// Sleep substitutes the backoff sleep in tests; nil selects
	// time.Sleep.
	Sleep func(time.Duration)
	// Hooks inject faults in tests; the zero value is inert.
	Hooks Hooks
}

// Manager owns the current epoch and serializes reloads against it.
type Manager struct {
	cfg Config

	cur atomic.Pointer[Epoch]
	mu  sync.Mutex // held for the whole reload critical section

	seq       atomic.Uint64
	successes atomic.Uint64
	failures  atomic.Uint64
	lastErr   atomic.Pointer[reloadFailure]
}

type reloadFailure struct {
	msg  string
	unix int64
}

// Status is the /corpus-visible reload accounting.
type Status struct {
	Seq           uint64
	Successes     uint64
	Failures      uint64
	LastError     string
	LastErrorUnix int64
}

// Reload outcome sentinels.
var (
	// ErrReloadInProgress reports a TryReload that lost the race to a
	// running reload.
	ErrReloadInProgress = errors.New("epoch: reload already in progress")
	// ErrNoDelta reports a reload trigger that found nothing to apply;
	// callers surface it without counting a failure.
	ErrNoDelta = errors.New("epoch: no delta feeds to apply")
	// ErrNotReady reports an operation that needs a resident epoch
	// before one was installed.
	ErrNotReady = errors.New("epoch: no epoch resident")
)

// NewManager builds a Manager; the zero Config selects the defaults.
func NewManager(cfg Config) *Manager {
	if cfg.Validate == nil {
		cfg.Validate = DefaultValidate
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Manager{cfg: cfg}
}

// Install publishes a as the next epoch without building or validating —
// the boot path. Safe to call while queries run; they drain on whatever
// epoch they started with.
func (m *Manager) Install(a *osdiversity.Analysis, source string) *Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.install(a, source)
}

func (m *Manager) install(a *osdiversity.Analysis, source string) *Epoch {
	e := &Epoch{Analysis: a, Seq: m.seq.Add(1), Source: source, SwappedAt: time.Now()}
	m.cur.Store(e)
	return e
}

// Current returns the resident epoch; ok is false before the first
// Install (boot-from-feeds still loading).
func (m *Manager) Current() (*Epoch, bool) {
	e := m.cur.Load()
	return e, e != nil
}

// Ready reports whether an epoch is resident.
func (m *Manager) Ready() bool { return m.cur.Load() != nil }

// Status snapshots the reload counters.
func (m *Manager) Status() Status {
	st := Status{
		Seq:       m.seq.Load(),
		Successes: m.successes.Load(),
		Failures:  m.failures.Load(),
	}
	if f := m.lastErr.Load(); f != nil {
		st.LastError = f.msg
		st.LastErrorUnix = f.unix
	}
	return st
}

// Reload builds, validates and swaps in a new epoch, blocking until any
// running reload finishes first. Returns the published epoch on
// success.
func (m *Manager) Reload(source string, build BuildFunc) (*Epoch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reloadLocked(source, build)
}

// TryReload is Reload, except it fails fast with ErrReloadInProgress
// when another reload holds the lock (the admin-endpoint path).
func (m *Manager) TryReload(source string, build BuildFunc) (*Epoch, error) {
	if !m.mu.TryLock() {
		return nil, ErrReloadInProgress
	}
	defer m.mu.Unlock()
	return m.reloadLocked(source, build)
}

// reloadLocked runs one reload under m.mu. The named results let the
// outer recover turn a panic anywhere on the path — build, hooks,
// validation, even the swap bookkeeping — into one counted failure;
// panics are never retried.
func (m *Manager) reloadLocked(source string, build BuildFunc) (e *Epoch, err error) {
	cur := m.cur.Load()
	if cur == nil {
		return nil, m.fail(source, fmt.Errorf("%w: cannot reload before boot", ErrNotReady))
	}
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, m.fail(source, fmt.Errorf("epoch: reload panicked: %v", r))
		}
	}()

	buildOnce := func() (*osdiversity.Analysis, error) {
		if m.cfg.Hooks.BeforeBuild != nil {
			if err := m.cfg.Hooks.BeforeBuild(); err != nil {
				return nil, err
			}
		}
		a, err := build(cur.Analysis)
		if err != nil {
			return nil, err
		}
		if m.cfg.Hooks.AfterBuild != nil {
			if err := m.cfg.Hooks.AfterBuild(a); err != nil {
				return nil, err
			}
		}
		return a, nil
	}

	var a *osdiversity.Analysis
	delay := m.cfg.Retry.BaseDelay
	for attempt := 1; ; attempt++ {
		a, err = buildOnce()
		if err == nil {
			break
		}
		if attempt >= m.cfg.Retry.Attempts || !Transient(err) {
			return nil, m.fail(source, fmt.Errorf("epoch: build attempt %d: %w", attempt, err))
		}
		m.cfg.Logf("epoch: reload source=%s attempt=%d transient error, retrying in %v: %v",
			source, attempt, delay, err)
		m.cfg.Sleep(jitter(delay))
		if delay *= 2; delay > m.cfg.Retry.MaxDelay {
			delay = m.cfg.Retry.MaxDelay
		}
	}

	if err := m.cfg.Validate(a); err != nil {
		return nil, m.fail(source, fmt.Errorf("epoch: candidate rejected: %w", err))
	}
	if m.cfg.Hooks.BeforeSwap != nil {
		m.cfg.Hooks.BeforeSwap()
	}
	e = m.install(a, source)
	m.successes.Add(1)
	m.cfg.Logf("epoch: reload ok source=%s epoch=%d valid=%d", source, e.Seq, a.ValidCount())
	return e, nil
}

// fail counts one reload failure, records it for /corpus, logs it, and
// returns the error.
func (m *Manager) fail(source string, err error) error {
	m.failures.Add(1)
	m.lastErr.Store(&reloadFailure{msg: err.Error(), unix: time.Now().Unix()})
	m.cfg.Logf("epoch: reload failed source=%s failures=%d: %v", source, m.failures.Load(), err)
	return err
}

// DefaultValidate is the swap gate: a candidate must exist, hold at
// least one valid record, and pass the exhaustive column self-check
// (which also warms its query indexes).
func DefaultValidate(a *osdiversity.Analysis) error {
	if a == nil {
		return errors.New("epoch: build returned no analysis")
	}
	if a.ValidCount() == 0 {
		return errors.New("epoch: candidate analysis holds no valid entries")
	}
	return a.SelfCheck()
}

// Transient reports whether a build error is worth retrying: the
// momentary filesystem conditions a delta-directory poll can hit while
// feeds are being written or the fd table is briefly exhausted.
func Transient(err error) bool {
	for _, errno := range []syscall.Errno{
		syscall.EAGAIN, syscall.EINTR, syscall.EBUSY, syscall.EMFILE, syscall.ENFILE,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return errors.Is(err, fs.ErrNotExist)
}

// jitter spreads a backoff over [d/2, d] so synchronized retry storms
// decorrelate.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}
