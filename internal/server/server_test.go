package server_test

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"osdiversity"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/server"
)

// newTestServer builds a server over the calibrated corpus at the given
// worker count and returns it with its httptest frontend and client.
func newTestServer(t testing.TB, workers int) (*server.Server, *httptest.Server, *httpapi.Client) {
	t.Helper()
	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(workers))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	srv := server.New(a, server.Config{Source: "calibrated", Engine: "bitset", Workers: workers})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := httpapi.NewClient(ts.URL)
	c.HTTP = ts.Client()
	return srv, ts, c
}

func TestHealthz(t *testing.T) {
	_, _, c := newTestServer(t, 1)
	h, err := c.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	raw, err := c.GetRaw("/healthz", nil)
	if err != nil {
		t.Fatalf("GetRaw /healthz: %v", err)
	}
	if got, want := string(raw), "{\"status\":\"ok\"}\n"; got != want {
		t.Errorf("/healthz body = %q, want %q", got, want)
	}
}

func TestCorpusMetadata(t *testing.T) {
	_, _, c := newTestServer(t, 2)
	info, err := c.Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if info.Source != "calibrated" || info.Engine != "bitset" || info.Workers != 2 {
		t.Errorf("corpus identity = %+v", info)
	}
	if info.ValidEntries != 1887 {
		t.Errorf("valid_entries = %d, want the paper's 1887", info.ValidEntries)
	}
	if info.Distros != 11 || len(info.OSNames) != 11 {
		t.Errorf("distros = %d (%d names), want 11", info.Distros, len(info.OSNames))
	}
	if info.YearFrom >= info.YearTo {
		t.Errorf("year range [%d, %d] not increasing", info.YearFrom, info.YearTo)
	}
	if info.SQL {
		t.Error("sql = true without a database")
	}
}

// endpointProbes enumerates every deterministic endpoint with the
// facade builder producing its expected document.
func endpointProbes(a *osdiversity.Analysis) []struct {
	name  string
	path  string
	query url.Values
	doc   func() (any, error)
} {
	return []struct {
		name  string
		path  string
		query url.Values
		doc   func() (any, error)
	}{
		{"table1", "/api/table1", nil,
			func() (any, error) { return server.BuildTable1(a), nil }},
		{"table2", "/api/table2", nil,
			func() (any, error) { return server.BuildTable2(a), nil }},
		{"table3", "/api/table3", nil,
			func() (any, error) { return server.BuildTable3(a), nil }},
		{"table4", "/api/table4", nil,
			func() (any, error) { return server.BuildTable4(a), nil }},
		{"table5", "/api/table5", url.Values{"split": {"2005"}},
			func() (any, error) { return server.BuildTable5(a, 2005), nil }},
		{"temporal", "/api/temporal", url.Values{"os": {"Debian"}},
			func() (any, error) { return server.BuildTemporal(a, "Debian") }},
		{"kwise", "/api/kwise", nil,
			func() (any, error) { return server.BuildKWise(a), nil }},
		{"mostshared", "/api/mostshared", url.Values{"n": {"10"}},
			func() (any, error) { return server.BuildMostShared(a, 10), nil }},
		{"select", "/api/select", url.Values{"k": {"4"}, "one-per-family": {"true"}, "top": {"3"}, "to": {"2005"}},
			func() (any, error) { return server.BuildSelect(a, 4, true, 2005, 3), nil }},
		{"releases", "/api/releases", nil,
			func() (any, error) { return server.BuildReleases(a) }},
		{"release cell", "/api/releases", url.Values{"a": {"Debian"}, "va": {"4.0"}, "b": {"RedHat"}, "vb": {"5.0"}},
			func() (any, error) { return server.BuildReleaseOverlap(a, "Debian", "4.0", "RedHat", "5.0") }},
		{"attack", "/api/attack", url.Values{
			"name": {"Set1"}, "os": {"Windows2003", "Solaris", "Debian", "OpenBSD"},
			"f": {"1"}, "trials": {"20"}},
			func() (any, error) {
				return server.BuildAttack(a, "Set1",
					[]string{"Windows2003", "Solaris", "Debian", "OpenBSD"}, 1, 20)
			}},
	}
}

// TestEndpointIdentityAcrossWorkers is the acceptance gate: every
// endpoint's JSON must equal the facade output byte for byte, at
// workers 1 and at workers 4, and the two servers must agree with each
// other.
func TestEndpointIdentityAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus twice")
	}
	a1, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(1))
	if err != nil {
		t.Fatalf("LoadCalibrated(1): %v", err)
	}
	a4, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(4))
	if err != nil {
		t.Fatalf("LoadCalibrated(4): %v", err)
	}
	clients := make(map[int]*httpapi.Client)
	for workers, a := range map[int]*osdiversity.Analysis{1: a1, 4: a4} {
		srv := server.New(a, server.Config{Source: "calibrated", Engine: "bitset", Workers: workers})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		c := httpapi.NewClient(ts.URL)
		c.HTTP = ts.Client()
		clients[workers] = c
	}

	for _, probe := range endpointProbes(a1) {
		t.Run(probe.name, func(t *testing.T) {
			doc, err := probe.doc()
			if err != nil {
				t.Fatalf("facade build: %v", err)
			}
			want, err := httpapi.Marshal(doc)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			bodies := make(map[int][]byte)
			for workers, c := range clients {
				body, err := c.GetRaw(probe.path, probe.query)
				if err != nil {
					t.Fatalf("GET %s (workers %d): %v", probe.path, workers, err)
				}
				bodies[workers] = body
			}
			if !bytes.Equal(bodies[1], want) {
				t.Errorf("workers-1 body differs from facade output\n got: %.200s\nwant: %.200s",
					bodies[1], want)
			}
			if !bytes.Equal(bodies[1], bodies[4]) {
				t.Errorf("workers-1 and workers-4 bodies differ\n  w1: %.200s\n  w4: %.200s",
					bodies[1], bodies[4])
			}
		})
	}
}

// TestSnapshotBootIdentity boots one server from the calibrated build
// and one from its snapshot file: every endpoint must answer identical
// bytes, and /corpus must carry the snapshot provenance.
func TestSnapshotBootIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus")
	}
	path := filepath.Join(t.TempDir(), "study.osds")
	built, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(2), osdiversity.WithSnapshot(path))
	if err != nil {
		t.Fatalf("LoadCalibrated(WithSnapshot): %v", err)
	}
	loaded, err := osdiversity.LoadSnapshot(path, osdiversity.WithParallelism(2))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	t.Cleanup(func() { loaded.Close() })

	clients := make(map[string]*httpapi.Client)
	for name, a := range map[string]*osdiversity.Analysis{"feed": built, "snapshot": loaded} {
		srv := server.New(a, server.Config{Source: name, Engine: "bitset", Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		c := httpapi.NewClient(ts.URL)
		c.HTTP = ts.Client()
		clients[name] = c
	}

	for _, probe := range endpointProbes(built) {
		t.Run(probe.name, func(t *testing.T) {
			feed, err := clients["feed"].GetRaw(probe.path, probe.query)
			if err != nil {
				t.Fatalf("GET %s (feed): %v", probe.path, err)
			}
			snap, err := clients["snapshot"].GetRaw(probe.path, probe.query)
			if err != nil {
				t.Fatalf("GET %s (snapshot): %v", probe.path, err)
			}
			if !bytes.Equal(feed, snap) {
				t.Errorf("snapshot-booted body differs from feed-booted body\nfeed: %.200s\nsnap: %.200s", feed, snap)
			}
		})
	}

	info, err := clients["snapshot"].Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if !strings.HasPrefix(info.SnapshotDigest, "crc32c:") {
		t.Errorf("snapshot_digest = %q, want crc32c-prefixed", info.SnapshotDigest)
	}
	if info.EpochUnix != built.Epoch().Unix() {
		t.Errorf("epoch_unix = %d, want the build's save time %d", info.EpochUnix, built.Epoch().Unix())
	}
	feedInfo, err := clients["feed"].Corpus()
	if err != nil {
		t.Fatalf("Corpus (feed): %v", err)
	}
	if feedInfo.SnapshotDigest != "" {
		t.Errorf("feed-booted snapshot_digest = %q, want empty", feedInfo.SnapshotDigest)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	_, ts, c := newTestServer(t, 1)
	tests := []struct {
		name       string
		path       string
		query      url.Values
		wantStatus int
		wantCode   string
	}{
		{"table5 non-integer split", "/api/table5", url.Values{"split": {"abc"}},
			http.StatusBadRequest, "bad_param"},
		{"table5 split out of range", "/api/table5", url.Values{"split": {"1"}},
			http.StatusBadRequest, "bad_param"},
		{"temporal missing os", "/api/temporal", nil,
			http.StatusBadRequest, "bad_param"},
		{"temporal unknown os", "/api/temporal", url.Values{"os": {"BeOS"}},
			http.StatusBadRequest, "bad_param"},
		{"mostshared bad n", "/api/mostshared", url.Values{"n": {"0"}},
			http.StatusBadRequest, "bad_param"},
		{"select k out of range", "/api/select", url.Values{"k": {"99"}},
			http.StatusBadRequest, "bad_param"},
		{"select bad boolean", "/api/select", url.Values{"one-per-family": {"banana"}},
			http.StatusBadRequest, "bad_param"},
		{"releases partial params", "/api/releases", url.Values{"a": {"Debian"}},
			http.StatusBadRequest, "bad_param"},
		{"attack missing os", "/api/attack", nil,
			http.StatusBadRequest, "bad_param"},
		{"attack wrong member count", "/api/attack", url.Values{"os": {"Debian", "OpenBSD"}, "f": {"1"}},
			http.StatusBadRequest, "bad_param"},
		{"sql without database", "/api/sqltable3", nil,
			http.StatusNotFound, "no_database"},
		{"unknown endpoint", "/api/frobnicate", nil,
			http.StatusNotFound, "not_found"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := c.GetRaw(tt.path, tt.query)
			var apiErr *httpapi.Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("GET %s: err = %v, want *httpapi.Error", tt.path, err)
			}
			if apiErr.StatusCode != tt.wantStatus || apiErr.Code != tt.wantCode {
				t.Errorf("GET %s = (%d, %q), want (%d, %q); message: %s",
					tt.path, apiErr.StatusCode, apiErr.Code, tt.wantStatus, tt.wantCode, apiErr.Message)
			}
			if apiErr.Message == "" {
				t.Error("error envelope has empty message")
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/api/table1", "application/json", nil)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST status = %d, want 405", resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodGet {
			t.Errorf("Allow header = %q, want GET", got)
		}
	})
}

// TestSingleflightCoalescing asserts the tentpole's coalescing claim:
// N identical cold-cache requests trigger exactly one computation and
// every caller receives byte-identical bodies.
func TestSingleflightCoalescing(t *testing.T) {
	srv, _, c := newTestServer(t, 2)

	const concurrency = 16
	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		bodies = make([][]byte, concurrency)
		errs   = make([]error, concurrency)
	)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			bodies[i], errs[i] = c.GetRaw("/api/table3", nil)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < concurrency; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if got := srv.Computes(); got != 1 {
		t.Errorf("computes = %d, want 1 (%d identical requests must coalesce)", got, concurrency)
	}
	// A cache hit afterwards must not compute either.
	if _, err := c.Table3(); err != nil {
		t.Fatalf("warm Table3: %v", err)
	}
	if got := srv.Computes(); got != 1 {
		t.Errorf("computes after warm hit = %d, want still 1", got)
	}
}

// TestMostSharedStreamedBody asserts the streamed listing is
// byte-identical to the canonical marshal of the same document.
func TestMostSharedStreamedBody(t *testing.T) {
	_, _, c := newTestServer(t, 2)
	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(2))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	for _, n := range []int{1, 3, 1887, 1 << 20} {
		body, err := c.GetRaw("/api/mostshared", url.Values{"n": {strconv.Itoa(n)}})
		if err != nil {
			t.Fatalf("mostshared n=%d: %v", n, err)
		}
		want, err := httpapi.Marshal(server.BuildMostShared(a, n))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("n=%d: streamed body differs from marshal\n got: %.120s\nwant: %.120s", n, body, want)
		}
	}
}

// TestSQLTable3Endpoint proves the SQL path serves through the resident
// server and matches the facade, at workers 1 and 4.
func TestSQLTable3Endpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("generates feeds and imports a database")
	}
	dir := t.TempDir()
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"), osdiversity.WithParallelism(4))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	dbPath := filepath.Join(dir, "study.db")
	if _, _, err := osdiversity.ImportFeeds(dbPath, feeds, osdiversity.WithParallelism(4)); err != nil {
		t.Fatalf("ImportFeeds: %v", err)
	}

	bodies := make(map[int][]byte)
	for _, workers := range []int{1, 4} {
		a, err := osdiversity.LoadDatabase(dbPath, osdiversity.WithParallelism(workers))
		if err != nil {
			t.Fatalf("LoadDatabase: %v", err)
		}
		srv := server.New(a, server.Config{
			Source: "db:" + dbPath, Engine: "bitset", Workers: workers, DBPath: dbPath,
		})
		ts := httptest.NewServer(srv.Handler())
		c := httpapi.NewClient(ts.URL)
		c.HTTP = ts.Client()

		info, err := c.Corpus()
		if err != nil {
			t.Fatalf("Corpus: %v", err)
		}
		if !info.SQL {
			t.Error("corpus sql = false with a database configured")
		}
		body, err := c.GetRaw("/api/sqltable3", nil)
		if err != nil {
			t.Fatalf("sqltable3 (workers %d): %v", workers, err)
		}
		bodies[workers] = body
		ts.Close()

		want, err := server.BuildSQLTable3(dbPath, workers)
		if err != nil {
			t.Fatalf("BuildSQLTable3: %v", err)
		}
		wantBody, err := httpapi.Marshal(want)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(body, wantBody) {
			t.Errorf("workers-%d sqltable3 body differs from facade output", workers)
		}
	}
	if !bytes.Equal(bodies[1], bodies[4]) {
		t.Error("sqltable3 bodies differ between workers 1 and 4")
	}

	// The SQL matrix must agree with the Study's Table III All column.
	sql, err := server.BuildSQLTable3(dbPath, 2)
	if err != nil {
		t.Fatalf("BuildSQLTable3: %v", err)
	}
	a, err := osdiversity.LoadDatabase(dbPath, osdiversity.WithParallelism(2))
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	study := map[string]int{}
	for _, row := range a.PairwiseOverlaps() {
		study[row.A+"|"+row.B] = row.All
	}
	if len(sql.Cells) != len(study) {
		t.Fatalf("sql cells = %d, study pairs = %d", len(sql.Cells), len(study))
	}
	for _, cell := range sql.Cells {
		if want, ok := study[cell.A+"|"+cell.B]; !ok || cell.Shared != want {
			t.Errorf("pair %s-%s: sql %d, study %d", cell.A, cell.B, cell.Shared, want)
		}
	}
}
