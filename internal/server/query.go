package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"osdiversity/internal/httpapi"
	"osdiversity/internal/relstore"
	"osdiversity/internal/vulndb"
)

// POST /api/query: ad-hoc SELECTs over the resident imported database.
// The statement compiles through relstore's shared plan cache, so
// repeated shapes — even with different literals or arguments — reuse
// one plan; response bodies cache epoch-scoped through the same
// singleflight as every other endpoint; and results larger than
// queryStreamRows stream row by row instead of parking multi-MB bodies
// in the bounded cache. Only SELECT is accepted: the corpus is
// read-only while serving, so INSERT/UPDATE/DELETE/DDL answer 400
// unsupported_statement before touching the engine.

// queryStreamRows is the largest row count answered through the
// response cache; larger results stream and bypass it. A var so the
// streaming tests can lower the threshold without a giant fixture.
var queryStreamRows = 4096

// queryMaxBody bounds the request document.
const queryMaxBody = 1 << 20

// SetDatabase installs an already-built database as the resident SQL
// store — shard mode boots one over its corpus slice instead of opening
// a file. Call before the server answers traffic (readiness gates on
// the epoch install that follows it).
func (s *Server) SetDatabase(db *vulndb.DB) {
	db.SetParallelism(s.cfg.Workers)
	s.db.Store(db)
}

// sqlEnabled reports whether the SQL surface (/api/query,
// /api/sqltable3) is available: a database path to open lazily, or a
// resident database injected via SetDatabase.
func (s *Server) sqlEnabled() bool {
	return s.cfg.DBPath != "" || s.db.Load() != nil
}

// database returns the resident database, lazily opening DBPath once
// when none was injected, so every /api/query shares one store and one
// plan cache.
func (s *Server) database() (*vulndb.DB, error) {
	if db := s.db.Load(); db != nil {
		return db, nil
	}
	s.dbOnce.Do(func() {
		db, err := vulndb.Open(s.cfg.DBPath)
		if err != nil {
			s.dbErr = err
			return
		}
		db.SetParallelism(s.cfg.Workers)
		s.db.Store(db)
	})
	if s.dbErr != nil {
		return nil, s.dbErr
	}
	return s.db.Load(), nil
}

// planCacheInfo reports the resident database's plan cache for /corpus,
// nil while no database has been opened (no query arrived yet, or the
// server runs without -db).
func (s *Server) planCacheInfo() *httpapi.PlanCacheInfo {
	db := s.db.Load()
	if db == nil {
		return nil
	}
	st := db.Store().PlanCacheStats()
	return &httpapi.PlanCacheInfo{
		Size:          st.Size,
		Capacity:      st.Capacity,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
	}
}

// QueryArgsFromJSON converts the JSON-typed positional arguments of a
// QueryRequest into engine values: numbers bind as INTEGER or FLOAT,
// strings as TEXT, booleans as BOOLEAN, null as NULL. Exported so the
// osdiv query subcommand binds CLI arguments identically.
func QueryArgsFromJSON(in []any) ([]relstore.Value, error) {
	out := make([]relstore.Value, 0, len(in))
	for i, a := range in {
		switch v := a.(type) {
		case nil:
			out = append(out, relstore.Null())
		case bool:
			out = append(out, relstore.Bool(v))
		case string:
			out = append(out, relstore.Text(v))
		case json.Number:
			if !strings.ContainsAny(v.String(), ".eE") {
				n, err := v.Int64()
				if err == nil {
					out = append(out, relstore.Int(n))
					continue
				}
			}
			f, err := v.Float64()
			if err != nil {
				return nil, fmt.Errorf("arg %d: not a number: %q", i, v.String())
			}
			out = append(out, relstore.Float(f))
		case float64:
			// A caller decoding without UseNumber lands here.
			if v == float64(int64(v)) {
				out = append(out, relstore.Int(int64(v)))
			} else {
				out = append(out, relstore.Float(v))
			}
		default:
			return nil, fmt.Errorf("arg %d: must be a number, string, boolean or null", i)
		}
	}
	return out, nil
}

// BuildQueryResult renders an engine result as the /api/query document.
// Exported so the osdiv query subcommand prints byte-identical output.
func BuildQueryResult(res *relstore.Result) httpapi.QueryResult {
	doc := httpapi.QueryResult{
		Columns: res.Columns,
		N:       len(res.Rows),
		Rows:    make([][]any, 0, len(res.Rows)),
	}
	if doc.Columns == nil {
		doc.Columns = []string{}
	}
	for _, row := range res.Rows {
		out := make([]any, len(row))
		for i, v := range row {
			out[i] = valueToJSON(v)
		}
		doc.Rows = append(doc.Rows, out)
	}
	return doc
}

// valueToJSON maps one cell onto its JSON encoding: numbers stay
// numbers, timestamps render RFC 3339, NULL is null.
func valueToJSON(v relstore.Value) any {
	switch v.Kind() {
	case relstore.KindInt:
		return v.AsInt()
	case relstore.KindFloat:
		return v.AsFloat()
	case relstore.KindText:
		return v.AsText()
	case relstore.KindBool:
		return v.AsBool()
	case relstore.KindTime:
		return v.AsTime().Format(time.RFC3339)
	default:
		return nil
	}
}

// queryCall is one in-flight /api/query singleflight computation.
// Small results land in body (and the response cache); large results
// keep the document, and leader and waiters stream it independently.
type queryCall struct {
	done chan struct{}
	body []byte
	doc  *httpapi.QueryResult
	err  *apiError
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	if !s.sqlEnabled() {
		writeError(w, &apiError{status: http.StatusNotFound, code: "no_database",
			message: "server was not started over an imported database (osdiv -db ... serve)"})
		return
	}

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, queryMaxBody))
	dec.UseNumber()
	var req httpapi.QueryRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, code: "bad_body",
			message: "request body is not a QueryRequest document: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, &apiError{status: http.StatusBadRequest, code: "bad_query",
			message: "missing required field sql"})
		return
	}
	// Reject anything but SELECT before the singleflight: a data or
	// schema change must never reach the resident store, and the typed
	// envelope tells the client which rule it broke.
	stmt, err := relstore.Parse(req.SQL)
	if err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, code: "bad_query",
			message: err.Error()})
		return
	}
	if _, ok := stmt.(*relstore.SelectStmt); !ok {
		writeError(w, &apiError{status: http.StatusBadRequest, code: "unsupported_statement",
			message: "only SELECT statements are served; data and schema changes go through import"})
		return
	}
	args, err := QueryArgsFromJSON(req.Args)
	if err != nil {
		writeError(w, errBadParam(err.Error()))
		return
	}
	argsKey, err := json.Marshal(req.Args)
	if err != nil {
		writeError(w, errBadParam(err.Error()))
		return
	}
	s.respondQuery(w, ep.Seq, "query|"+req.SQL+"|"+string(argsKey), req.SQL, args)
}

// respondQuery is respond() specialized for /api/query: the same
// epoch-prefixed response cache and singleflight coalescing, plus a
// streaming exit for results larger than queryStreamRows. Coalesced
// waiters of a streamed result each encode the shared immutable
// document themselves.
func (s *Server) respondQuery(w http.ResponseWriter, epSeq uint64, key, sql string, args []relstore.Value) {
	key = "e" + strconv.FormatUint(epSeq, 10) + "|" + key

	s.mu.Lock()
	s.pruneForEpochLocked(epSeq)
	if body, ok := s.cache[key]; ok {
		s.mu.Unlock()
		writeBody(w, body)
		return
	}
	if c, ok := s.queryCalls[key]; ok {
		s.mu.Unlock()
		<-c.done
		s.writeQueryOutcome(w, c)
		return
	}
	c := &queryCall{done: make(chan struct{})}
	s.queryCalls[key] = c
	s.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &apiError{status: http.StatusInternalServerError,
					code: "internal_panic", message: fmt.Sprint(r)}
			}
			s.mu.Lock()
			delete(s.queryCalls, key)
			if c.err == nil && c.body != nil && epSeq >= s.cacheEpoch {
				s.storeLocked(key, c.body)
			}
			s.mu.Unlock()
			close(c.done)
		}()
		c.body, c.doc, c.err = s.computeQuery(sql, args)
	}()

	s.writeQueryOutcome(w, c)
}

// computeQuery executes one SELECT under the in-flight limiter. Small
// results marshal into a cacheable body; large ones return the document
// for streaming.
func (s *Server) computeQuery(sql string, args []relstore.Value) ([]byte, *httpapi.QueryResult, *apiError) {
	if aerr := s.acquire(); aerr != nil {
		return nil, nil, aerr
	}
	defer s.release()
	s.computes.Add(1)

	db, err := s.database()
	if err != nil {
		return nil, nil, &apiError{status: http.StatusInternalServerError,
			code: "db_failed", message: err.Error()}
	}
	res, err := db.Store().Query(sql, args...)
	if err != nil {
		return nil, nil, &apiError{status: http.StatusBadRequest,
			code: "bad_query", message: err.Error()}
	}
	doc := BuildQueryResult(res)
	if doc.N > queryStreamRows {
		return nil, &doc, nil
	}
	body, merr := httpapi.Marshal(doc)
	if merr != nil {
		return nil, nil, &apiError{status: http.StatusInternalServerError,
			code: "encode_failed", message: merr.Error()}
	}
	return body, nil, nil
}

// writeQueryOutcome serves one settled queryCall: error envelope,
// cached-size body, or a streamed large document.
func (s *Server) writeQueryOutcome(w http.ResponseWriter, c *queryCall) {
	switch {
	case c.err != nil:
		writeError(w, c.err)
	case c.body != nil:
		writeBody(w, c.body)
	default:
		w.Header().Set("Content-Type", "application/json")
		httpapi.StreamQueryResult(w, c.doc)
	}
}
