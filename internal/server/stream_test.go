package server

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"osdiversity"
	"osdiversity/internal/httpapi"
)

// TestPanickingBuildDoesNotWedgeKey asserts a panic inside a build
// surfaces as a 500 envelope and leaves the singleflight key usable —
// a wedged key would block every later request for that endpoint.
func TestPanickingBuildDoesNotWedgeKey(t *testing.T) {
	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	s := New(a, Config{Workers: 1})
	ep, ok := s.epochs.Current()
	if !ok {
		t.Fatal("New left no epoch resident")
	}

	rec := httptest.NewRecorder()
	s.respond(rec, ep, "panicky", func() (any, *apiError) {
		panic("boom")
	})
	if rec.Code != 500 || !strings.Contains(rec.Body.String(), `"internal_panic"`) {
		t.Fatalf("panicking build answered %d %q, want 500 internal_panic envelope",
			rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.respond(rec, ep, "panicky", func() (any, *apiError) {
		return httpapi.Health{Status: "recovered"}, nil
	})
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "recovered") {
		t.Fatalf("key wedged after panic: second respond answered %d %q",
			rec.Code, rec.Body.String())
	}
}

// TestStreamMatchesMarshal pins the streaming encoder to the canonical
// compact encoding, including the empty-array edge the nil-slice
// convention exists for.
func TestStreamMatchesMarshal(t *testing.T) {
	docs := []httpapi.MostShared{
		{N: 0, IDs: []string{}},
		{N: 1, IDs: []string{"CVE-2008-4609"}},
		{N: 3, IDs: []string{"CVE-2008-4609", "CVE-2007-5365", "CVE-2008-1447"}},
		{N: 2, IDs: []string{`quote"inside`, "uniécode"}},
	}
	for _, doc := range docs {
		want, err := httpapi.Marshal(doc)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var buf bytes.Buffer
		if err := streamMostShared(&buf, doc); err != nil {
			t.Fatalf("stream: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("streamed %q differs from marshal %q", buf.Bytes(), want)
		}
	}
}
