package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"osdiversity"
	"osdiversity/internal/httpapi"
)

// specFromWire maps the wire request onto the facade spec (the field
// sets line up one to one).
func specFromWire(req httpapi.RecommendRequest) osdiversity.RecommendSpec {
	return osdiversity.RecommendSpec{
		Universe: req.Universe,
		F:        req.F,
		Windows:  req.Windows,
		FromYear: req.FromYear,
		ToYear:   req.ToYear,
		Interval: req.Interval,
		Trials:   req.Trials,
		Seed:     req.Seed,
		Beam:     req.Beam,
		Top:      req.Top,
	}
}

// CanonRecommend canonicalizes a recommend request against the corpus
// (defaults filled, years clamped to the corpus range), so cosmetically
// different requests share one cache entry and one computation.
func CanonRecommend(a *osdiversity.Analysis, req httpapi.RecommendRequest) (httpapi.RecommendRequest, error) {
	spec, err := a.CanonRecommendSpec(specFromWire(req))
	if err != nil {
		return httpapi.RecommendRequest{}, err
	}
	return httpapi.RecommendRequest{
		Universe: spec.Universe,
		F:        spec.F,
		Windows:  spec.Windows,
		FromYear: spec.FromYear,
		ToYear:   spec.ToYear,
		Interval: spec.Interval,
		Trials:   spec.Trials,
		Seed:     spec.Seed,
		Beam:     spec.Beam,
		Top:      spec.Top,
	}, nil
}

// BuildRecommend runs the dynamic-diversity search and shapes the
// /api/recommend document. The CLI prints exactly these bytes.
func BuildRecommend(a *osdiversity.Analysis, req httpapi.RecommendRequest) (httpapi.Recommend, error) {
	rec, err := a.Recommend(specFromWire(req))
	if err != nil {
		return httpapi.Recommend{}, err
	}
	doc := httpapi.Recommend{
		Universe:   append([]string{}, rec.Spec.Universe...),
		F:          rec.Spec.F,
		Replicas:   rec.Replicas,
		Windows:    rec.Spec.Windows,
		FromYear:   rec.Spec.FromYear,
		ToYear:     rec.Spec.ToYear,
		Interval:   rec.Spec.Interval,
		Trials:     rec.Spec.Trials,
		Seed:       rec.Spec.Seed,
		Beam:       rec.Spec.Beam,
		Evaluated:  rec.Evaluated,
		Candidates: []httpapi.RecommendCandidate{},
		Validated:  rec.Validated,
		Violations: append([]string{}, rec.Violations...),
	}
	for i, c := range rec.Candidates {
		rc := httpapi.RecommendCandidate{
			Rank:     i + 1,
			Survival: c.Survival,
			Cost:     c.Cost,
			Windows:  []httpapi.RecommendWindow{},
		}
		for _, w := range c.Windows {
			rc.Windows = append(rc.Windows, httpapi.RecommendWindow{
				FromYear: w.FromYear,
				ToYear:   w.ToYear,
				OSes:     append([]string{}, w.OSes...),
				Cost:     w.Cost,
			})
		}
		doc.Candidates = append(doc.Candidates, rc)
	}
	return doc, nil
}

// handleRecommend serves POST /api/recommend: one dynamic-diversity
// schedule search through the epoch-scoped cache and singleflight. An
// empty body runs the all-defaults search; requests canonicalize
// before keying, so cosmetically different specs share a computation.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	var req httpapi.RecommendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, queryMaxBody))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, &apiError{status: http.StatusBadRequest, code: "bad_body",
			message: "request body is not a RecommendRequest document: " + err.Error()})
		return
	}
	canon, err := CanonRecommend(ep.Analysis, req)
	if err != nil {
		writeError(w, errBadParam(err.Error()))
		return
	}
	keyBytes, err := json.Marshal(canon)
	if err != nil {
		writeError(w, errBadParam(err.Error()))
		return
	}
	s.respond(w, ep, "recommend|"+string(keyBytes), func() (any, *apiError) {
		doc, err := BuildRecommend(ep.Analysis, canon)
		if err != nil {
			return nil, errBadParam(err.Error())
		}
		return doc, nil
	})
}
