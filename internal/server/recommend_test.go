package server_test

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"

	"osdiversity"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/server"
)

// recommendSpec keeps the test searches small and deterministic.
var recommendSpec = httpapi.RecommendRequest{Trials: 60, Beam: 2, Seed: 3}

// TestRecommendByteIdentity pins the CLI/server contract at workers 1
// and 4: the POST /api/recommend body equals httpapi.Marshal of
// BuildRecommend over the canonicalized request — the exact bytes
// `osdiv recommend` prints.
func TestRecommendByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, _, c := newTestServer(t, workers)
		got, err := c.PostJSON("/api/recommend", recommendSpec)
		if err != nil {
			t.Fatalf("workers=%d POST /api/recommend: %v", workers, err)
		}
		a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		canon, err := server.CanonRecommend(a, recommendSpec)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := server.BuildRecommend(a, canon)
		if err != nil {
			t.Fatal(err)
		}
		want, err := httpapi.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: server bytes differ from CLI bytes\nserver: %s\ncli:    %s", workers, got, want)
		}
	}
}

// TestRecommendCanonicalization pins that cosmetically different specs
// share one answer: an empty body, an explicit all-defaults body, and
// out-of-range years that clamp to the corpus all return identical
// bytes.
func TestRecommendCanonicalization(t *testing.T) {
	_, ts, c := newTestServer(t, 2)
	base, err := c.PostJSON("/api/recommend", nil)
	if err != nil {
		t.Fatalf("POST nil body: %v", err)
	}
	explicit, err := c.PostJSON("/api/recommend", httpapi.RecommendRequest{
		F: 1, Windows: 2, Interval: 2, Trials: 200, Seed: 1, Beam: 4, Top: 3,
	})
	if err != nil {
		t.Fatalf("POST explicit defaults: %v", err)
	}
	if !bytes.Equal(base, explicit) {
		t.Fatal("explicit defaults differ from empty body")
	}
	clamped, err := c.PostJSON("/api/recommend", httpapi.RecommendRequest{
		FromYear: 1900, ToYear: 2999,
	})
	if err != nil {
		t.Fatalf("POST clamped years: %v", err)
	}
	if !bytes.Equal(base, clamped) {
		t.Fatal("out-of-range years did not clamp to the default answer")
	}
	// An empty-body POST with no JSON at all behaves the same.
	resp, err := http.Post(ts.URL+"/api/recommend", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty body status = %d", resp.StatusCode)
	}
}

// TestRecommendTypedErrors covers the error envelopes of the new
// endpoint: malformed bodies, invalid specs, and the method guard.
func TestRecommendTypedErrors(t *testing.T) {
	_, ts, c := newTestServer(t, 1)
	cases := []struct {
		name string
		body any
		code string
	}{
		{"bad F", httpapi.RecommendRequest{F: 9}, "bad_param"},
		{"bad universe", httpapi.RecommendRequest{Universe: []string{"BeOS", "Plan9", "DOS", "CP/M"}}, "bad_param"},
		{"bad years", httpapi.RecommendRequest{FromYear: 2010, ToYear: 1994}, "bad_param"},
		{"bad trials", httpapi.RecommendRequest{Trials: -1}, "bad_param"},
	}
	for _, tc := range cases {
		_, err := c.PostJSON("/api/recommend", tc.body)
		var apiErr *httpapi.Error
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: err = %v, want typed envelope", tc.name, err)
		}
		if apiErr.StatusCode != http.StatusBadRequest || apiErr.Code != tc.code {
			t.Errorf("%s: got %d %s, want 400 %s", tc.name, apiErr.StatusCode, apiErr.Code, tc.code)
		}
	}

	resp, err := http.Post(ts.URL+"/api/recommend", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/api/recommend")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestRecommendClientMethod exercises the typed httpapi client method
// end to end.
func TestRecommendClientMethod(t *testing.T) {
	_, _, c := newTestServer(t, 2)
	doc, err := c.Recommend(recommendSpec)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if doc.Replicas != 4 || doc.F != 1 {
		t.Errorf("doc shape: f=%d replicas=%d", doc.F, doc.Replicas)
	}
	if len(doc.Candidates) == 0 || doc.Candidates[0].Rank != 1 {
		t.Fatalf("candidates = %+v", doc.Candidates)
	}
	if !doc.Validated {
		t.Errorf("winner not validated: %v", doc.Violations)
	}
	if doc.Trials != 60 || doc.Beam != 2 || doc.Seed != 3 {
		t.Errorf("canonical echo = %+v", doc)
	}
}
