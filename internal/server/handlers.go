package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"osdiversity/internal/httpapi"
)

// DefaultSplitYear is the paper's Table V history/observed split, the
// fallback for /api/table5 and /api/select — exported so the osdiv
// -json printers render the same default document the server answers.
const DefaultSplitYear = 2005

// The remaining defaults the endpoints fall back to.
const (
	defaultMostShared = 3
	defaultSelectK    = 4
	defaultTrials     = 200
)

// intParam parses an optional integer query parameter with bounds.
func intParam(q url.Values, name string, def, min, max int) (int, *apiError) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errBadParam(fmt.Sprintf("%s=%q is not an integer", name, raw))
	}
	if n < min || n > max {
		return 0, errBadParam(fmt.Sprintf("%s=%d out of range [%d, %d]", name, n, min, max))
	}
	return n, nil
}

// boolParam parses an optional boolean query parameter.
func boolParam(q url.Values, name string) (bool, *apiError) {
	raw := q.Get(name)
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, errBadParam(fmt.Sprintf("%s=%q is not a boolean", name, raw))
	}
	return v, nil
}

// handleHealth and handleCorpus bypass the limiter, singleflight and
// cache: a liveness probe must answer immediately even when every
// compute slot is occupied by heavy API requests, and both documents
// are trivial to render per request. /healthz stays "ok" for the whole
// process lifetime — readiness (a resident epoch) is /readyz's job.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.respondDirect(w, s.healthDoc())
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respondDirect(w, s.corpusDoc(ep))
}

func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "table1", func() (any, *apiError) {
		return BuildTable1(ep.Analysis), nil
	})
}

func (s *Server) handleTable2(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "table2", func() (any, *apiError) {
		return BuildTable2(ep.Analysis), nil
	})
}

func (s *Server) handleTable3(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "table3", func() (any, *apiError) {
		return BuildTable3(ep.Analysis), nil
	})
}

func (s *Server) handleTable4(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "table4", func() (any, *apiError) {
		return BuildTable4(ep.Analysis), nil
	})
}

func (s *Server) handleTable5(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	split, aerr := intParam(r.URL.Query(), "split", DefaultSplitYear, 1900, 2100)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	split = CanonSplitYear(ep.Analysis, split)
	s.respond(w, ep, fmt.Sprintf("table5?split=%d", split), func() (any, *apiError) {
		return BuildTable5(ep.Analysis, split), nil
	})
}

func (s *Server) handleTemporal(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	osName := r.URL.Query().Get("os")
	if osName == "" {
		writeError(w, errBadParam("missing required parameter os"))
		return
	}
	s.respond(w, ep, "temporal?os="+osName, func() (any, *apiError) {
		doc, err := BuildTemporal(ep.Analysis, osName)
		if err != nil {
			return nil, errBadParam(err.Error())
		}
		return doc, nil
	})
}

func (s *Server) handleKWise(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "kwise", func() (any, *apiError) {
		return BuildKWise(ep.Analysis), nil
	})
}

// mostSharedCacheMax is the largest canonical n whose listing goes
// through the singleflight/response cache; larger listings stream their
// JSON instead of parking multi-MB bodies in the bounded cache.
const mostSharedCacheMax = 4096

// handleMostShared answers small listings through the coalescing cache
// (n canonicalizes onto the valid-entry count, so every "give me
// everything" request shares one key) and streams large ones instead of
// materializing the body; the Study-level memo already coalesces the
// underlying bucket sort, so only the encoding is per-request on the
// streamed path. Streamed and cached bytes are identical.
func (s *Server) handleMostShared(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	n, aerr := intParam(r.URL.Query(), "n", defaultMostShared, 1, 1<<30)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	n = CanonListLimit(ep.Analysis, n)
	if n <= mostSharedCacheMax {
		s.respond(w, ep, fmt.Sprintf("mostshared?n=%d", n), func() (any, *apiError) {
			return BuildMostShared(ep.Analysis, n), nil
		})
		return
	}
	var doc httpapi.MostShared
	aerr = func() *apiError {
		// Hold a limiter slot only for the build, released on panic
		// too; streaming to a slow client must not pin a compute slot.
		if aerr := s.acquire(); aerr != nil {
			return aerr
		}
		defer s.release()
		s.computes.Add(1)
		doc = BuildMostShared(ep.Analysis, n)
		return nil
	}()
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	streamMostShared(w, doc)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	k, aerr := intParam(q, "k", defaultSelectK, 1, 8)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	onePerFamily, aerr := boolParam(q, "one-per-family")
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	toYear, aerr := intParam(q, "to", DefaultSplitYear, 1900, 2100)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	toYear = CanonSplitYear(ep.Analysis, toYear)
	top, aerr := intParam(q, "top", 0, 0, 1<<30)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	key := fmt.Sprintf("select?k=%d&opf=%t&to=%d&top=%d", k, onePerFamily, toYear, top)
	s.respond(w, ep, key, func() (any, *apiError) {
		return BuildSelect(ep.Analysis, k, onePerFamily, toYear, top), nil
	})
}

func (s *Server) handleReleases(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	a, va := q.Get("a"), q.Get("va")
	b, vb := q.Get("b"), q.Get("vb")
	set := 0
	for _, v := range []string{a, va, b, vb} {
		if v != "" {
			set++
		}
	}
	switch set {
	case 0:
		s.respond(w, ep, "releases", func() (any, *apiError) {
			doc, err := BuildReleases(ep.Analysis)
			if err != nil {
				return nil, errBadParam(err.Error())
			}
			return doc, nil
		})
	case 4:
		key := "releases?" + url.Values{"a": {a}, "va": {va}, "b": {b}, "vb": {vb}}.Encode()
		s.respond(w, ep, key, func() (any, *apiError) {
			doc, err := BuildReleaseOverlap(ep.Analysis, a, va, b, vb)
			if err != nil {
				return nil, errBadParam(err.Error())
			}
			return doc, nil
		})
	default:
		writeError(w, errBadParam("release overlap needs all of a, va, b, vb (or none for the Table VI grid)"))
	}
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	oses := q["os"]
	if len(oses) == 0 {
		writeError(w, errBadParam("missing required repeated parameter os"))
		return
	}
	f, aerr := intParam(q, "f", 1, 1, 16)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	if len(oses) != 3*f+1 {
		writeError(w, errBadParam(fmt.Sprintf("got %d os members, need 3f+1 = %d", len(oses), 3*f+1)))
		return
	}
	trials, aerr := intParam(q, "trials", defaultTrials, 1, 1_000_000)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	name := q.Get("name")
	if name == "" {
		name = "configuration"
	}
	key := "attack?" + url.Values{
		"name": {name}, "os": oses,
		"f": {strconv.Itoa(f)}, "trials": {strconv.Itoa(trials)},
	}.Encode()
	s.respond(w, ep, key, func() (any, *apiError) {
		doc, err := BuildAttack(ep.Analysis, name, oses, f, trials)
		if err != nil {
			return nil, errBadParam(err.Error())
		}
		return doc, nil
	})
}

func (s *Server) handleSQLTable3(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	if !s.sqlEnabled() {
		writeError(w, &apiError{status: http.StatusNotFound, code: "no_database",
			message: "server was not started over an imported database (osdiv -db ... serve)"})
		return
	}
	s.respond(w, ep, "sqltable3", func() (any, *apiError) {
		db, err := s.database()
		if err != nil {
			return nil, &apiError{status: http.StatusInternalServerError,
				code: "db_failed", message: err.Error()}
		}
		doc, err := BuildSQLTable3FromDB(db)
		if err != nil {
			return nil, &apiError{status: http.StatusInternalServerError,
				code: "sql_failed", message: err.Error()}
		}
		return doc, nil
	})
}

// The /api/partial/* handlers answer the raw, additive halves the
// gateway merges. They deliberately skip the regular endpoints'
// parameter canonicalization — the gateway canonicalizes once against
// the merged corpus (global year range, summed valid count) and sends
// the canonical value to every shard; a shard clamping to its own
// slice's range would desynchronize the legs.

func (s *Server) handlePartialTable2(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "partial/table2", func() (any, *apiError) {
		return BuildTable2Partial(ep.Analysis), nil
	})
}

func (s *Server) handlePartialTable4(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	s.respond(w, ep, "partial/table4", func() (any, *apiError) {
		return BuildTable4Partial(ep.Analysis), nil
	})
}

func (s *Server) handlePartialTable5(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	split, aerr := intParam(r.URL.Query(), "split", DefaultSplitYear, 1900, 2100)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	s.respond(w, ep, fmt.Sprintf("partial/table5?split=%d", split), func() (any, *apiError) {
		return BuildTable5(ep.Analysis, split), nil
	})
}

func (s *Server) handlePartialMostShared(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	n, aerr := intParam(r.URL.Query(), "n", defaultMostShared, 1, 1<<30)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	// The prefix clamps to the shard's record count inside the build, so
	// an n canonicalized against the global count is safe here. Large
	// listings bypass the bounded cache like /api/mostshared's streamed
	// path, computing under a limiter slot per request.
	if clamped := CanonListLimit(ep.Analysis, n); clamped <= mostSharedCacheMax {
		s.respond(w, ep, fmt.Sprintf("partial/mostshared?n=%d", clamped), func() (any, *apiError) {
			return BuildMostSharedPartial(ep.Analysis, n), nil
		})
		return
	}
	var doc httpapi.MostSharedPartial
	aerr = func() *apiError {
		if aerr := s.acquire(); aerr != nil {
			return aerr
		}
		defer s.release()
		s.computes.Add(1)
		doc = BuildMostSharedPartial(ep.Analysis, n)
		return nil
	}()
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	s.respondDirect(w, doc)
}

func (s *Server) handlePartialSelect(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.currentEpoch(w)
	if !ok {
		return
	}
	toYear, aerr := intParam(r.URL.Query(), "to", DefaultSplitYear, 1900, 2100)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	s.respond(w, ep, fmt.Sprintf("partial/select?to=%d", toYear), func() (any, *apiError) {
		return BuildSelectPartial(ep.Analysis, toYear), nil
	})
}
