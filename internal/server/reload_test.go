package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"osdiversity"
	"osdiversity/internal/epoch"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/relstore"
	"osdiversity/internal/vulndb"
)

// reloadFixture is a base corpus plus the delta feeds a reload applies,
// and a database import of the base for the SQL surface.
type reloadFixture struct {
	base   *osdiversity.Analysis
	delta  []string
	dbPath string
}

func makeReloadFixture(t *testing.T) *reloadFixture {
	t.Helper()
	dir := t.TempDir()
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	if len(feeds) < 2 {
		t.Fatalf("calibrated corpus spans only %d feed files", len(feeds))
	}
	base, err := osdiversity.StreamFeeds(feeds[:len(feeds)-1], osdiversity.WithParallelism(2))
	if err != nil {
		t.Fatalf("StreamFeeds: %v", err)
	}
	dbPath := filepath.Join(dir, "study.db")
	if _, _, err := osdiversity.ImportFeeds(dbPath, feeds[:len(feeds)-1], osdiversity.WithParallelism(2)); err != nil {
		t.Fatalf("ImportFeeds: %v", err)
	}
	return &reloadFixture{base: base, delta: feeds[len(feeds)-1:], dbPath: dbPath}
}

// get issues one GET and returns status, the X-Osdiv-Epoch header (0 if
// absent) and the body.
func get(t *testing.T, ts *httptest.Server, path string) (int, uint64, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	var seq uint64
	if h := resp.Header.Get("X-Osdiv-Epoch"); h != "" {
		seq, err = strconv.ParseUint(h, 10, 64)
		if err != nil {
			t.Fatalf("GET %s: X-Osdiv-Epoch %q: %v", path, h, err)
		}
	}
	return resp.StatusCode, seq, body
}

// TestReadyzGatesOnFirstEpoch drives the satellite contract: a resident
// server whose boot corpus is still loading answers 503 not_ready on
// /readyz and on every query endpoint, while /healthz stays a pure
// liveness "ok"; the first Install flips /readyz to the Ready document.
func TestReadyzGatesOnFirstEpoch(t *testing.T) {
	m := epoch.NewManager(epoch.Config{})
	s := NewResident(m, Config{Source: "feeds:x", Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, body := get(t, ts, "/healthz")
	if status != 200 || string(body) != "{\"status\":\"ok\"}\n" {
		t.Fatalf("/healthz before boot = %d %q, want 200 ok", status, body)
	}
	for _, path := range []string{"/readyz", "/corpus", "/api/table3"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before boot = %d, want 503", path, resp.StatusCode)
		}
		if !bytes.Contains(body, []byte(`"not_ready"`)) {
			t.Errorf("%s before boot body = %q, want not_ready envelope", path, body)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Errorf("%s Retry-After = %q, want 1", path, got)
		}
	}

	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	m.Install(a, "feeds:x")

	status, _, body = get(t, ts, "/readyz")
	if status != 200 || string(body) != "{\"status\":\"ok\",\"epoch\":1}\n" {
		t.Fatalf("/readyz after boot = %d %q", status, body)
	}
	status, seq, _ := get(t, ts, "/api/table1")
	if status != 200 || seq != 1 {
		t.Fatalf("table1 after boot = %d epoch %d, want 200 epoch 1", status, seq)
	}
}

// TestAdminReloadSwapsAndDegrades exercises POST /admin/reload end to
// end: a successful swap bumps the epoch, re-keys the response cache
// and shows up on /corpus; every failure shape answers its typed
// envelope while the old epoch keeps serving identical bytes.
func TestAdminReloadSwapsAndDegrades(t *testing.T) {
	fx := makeReloadFixture(t)
	s := New(fx.base, Config{Source: "feeds:x", Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := httpapi.NewClient(ts.URL)
	c.HTTP = ts.Client()

	// No reloader attached yet: 404.
	if _, err := c.Reload(); err == nil {
		t.Fatal("Reload without a source succeeded")
	} else {
		var he *httpapi.Error
		if !errors.As(err, &he) || he.StatusCode != 404 || he.Code != "no_reload_source" {
			t.Fatalf("Reload without a source: %v, want 404 no_reload_source", err)
		}
	}
	// GET on the admin endpoint: 405.
	resp, err := ts.Client().Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatalf("GET /admin/reload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /admin/reload = %d Allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	status, seq, baseT3 := get(t, ts, "/api/table3")
	if status != 200 || seq != 1 {
		t.Fatalf("pre-reload table3 = %d epoch %d", status, seq)
	}
	computesBefore := s.Computes()

	s.SetReloader(func() (*epoch.Epoch, error) {
		return s.Epochs().TryReload("delta", func(cur *osdiversity.Analysis) (*osdiversity.Analysis, error) {
			return cur.ApplyDelta(fx.delta)
		})
	})
	res, err := c.Reload()
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if res.Epoch != 2 || res.Source != "delta" || res.ValidEntries <= fx.base.ValidCount() {
		t.Fatalf("reload result = %+v (base valid %d)", res, fx.base.ValidCount())
	}

	info, err := c.Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if info.Epoch != 2 || info.ReloadSuccesses != 1 || info.ReloadFailures != 0 {
		t.Fatalf("corpus after reload = epoch %d successes %d failures %d",
			info.Epoch, info.ReloadSuccesses, info.ReloadFailures)
	}
	if info.ValidEntries != res.ValidEntries {
		t.Errorf("corpus valid_entries = %d, reload reported %d", info.ValidEntries, res.ValidEntries)
	}

	// The table3 cache entry was keyed to epoch 1; the new epoch must
	// recompute and answer different bytes (the delta adds a feed year).
	status, seq, newT3 := get(t, ts, "/api/table3")
	if status != 200 || seq != 2 {
		t.Fatalf("post-reload table3 = %d epoch %d", status, seq)
	}
	if bytes.Equal(newT3, baseT3) {
		t.Error("table3 bytes unchanged across a corpus-changing reload")
	}
	if got := s.Computes(); got != computesBefore+1 {
		t.Errorf("computes after reload = %d, want %d (new epoch recomputes once)", got, computesBefore+1)
	}
	// And the fresh entry caches under the new epoch.
	if _, _, again := get(t, ts, "/api/table3"); !bytes.Equal(again, newT3) {
		t.Error("epoch-2 table3 not byte-stable")
	}
	if got := s.Computes(); got != computesBefore+1 {
		t.Errorf("computes after warm epoch-2 hit = %d, want %d", got, computesBefore+1)
	}

	// Failure shapes: each answers its envelope and leaves epoch 2
	// serving the same bytes.
	for _, tc := range []struct {
		name     string
		fn       func() (*epoch.Epoch, error)
		status   int
		code     string
		failures uint64
	}{
		{"build failure", func() (*epoch.Epoch, error) {
			return s.Epochs().TryReload("delta", func(*osdiversity.Analysis) (*osdiversity.Analysis, error) {
				return nil, errors.New("corrupt feed")
			})
		}, 500, "reload_failed", 1},
		{"no delta", func() (*epoch.Epoch, error) {
			return nil, epoch.ErrNoDelta
		}, 409, "no_delta", 1},
		{"reload in progress", func() (*epoch.Epoch, error) {
			return nil, epoch.ErrReloadInProgress
		}, 409, "reload_in_progress", 1},
	} {
		s.SetReloader(tc.fn)
		_, err := c.Reload()
		var he *httpapi.Error
		if !errors.As(err, &he) || he.StatusCode != tc.status || he.Code != tc.code {
			t.Fatalf("%s: Reload err = %v, want %d %s", tc.name, err, tc.status, tc.code)
		}
		status, seq, body := get(t, ts, "/api/table3")
		if status != 200 || seq != 2 || !bytes.Equal(body, newT3) {
			t.Fatalf("%s: table3 after failed reload = %d epoch %d (stable=%v)",
				tc.name, status, seq, bytes.Equal(body, newT3))
		}
		info, err := c.Corpus()
		if err != nil {
			t.Fatalf("%s: Corpus: %v", tc.name, err)
		}
		if info.ReloadFailures != tc.failures {
			t.Errorf("%s: reload_failures = %d, want %d", tc.name, info.ReloadFailures, tc.failures)
		}
	}
	if info, _ := c.Corpus(); info.LastReloadError == "" || info.LastReloadUnix == 0 {
		t.Error("corpus does not carry the last reload error")
	}
}

// TestReloadUnderFire is the tentpole's concurrency proof: query
// goroutines hammer the server while reloads — some injected to fail —
// race them. Every response must carry an epoch tag whose body is
// byte-identical to that epoch's precomputed answer (no mixed epochs),
// epochs must be observed monotonically per connection, no query may
// see a 5xx, and the server must not leak goroutines. SQL traffic on
// POST /api/query rides along: its bytes are epoch-independent (the
// imported database does not change across reloads) but its plan cache
// must flush on every swap without corrupting in-flight executions.
// Run with -race.
func TestReloadUnderFire(t *testing.T) {
	fx := makeReloadFixture(t)
	merged, err := fx.base.ApplyDelta(fx.delta)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}

	// The SQL answers the queriers must observe, computed outside the
	// server on a fresh handle.
	sqlProbes := []struct {
		body string
		sql  string
		args []relstore.Value
	}{
		{`{"sql":"SELECT name, family FROM os ORDER BY name"}`,
			`SELECT name, family FROM os ORDER BY name`, nil},
		{`{"sql":"SELECT COUNT(DISTINCT vuln_id) FROM os_vuln WHERE os_id = ?","args":[3]}`,
			`SELECT COUNT(DISTINCT vuln_id) FROM os_vuln WHERE os_id = ?`,
			[]relstore.Value{relstore.Int(3)}},
	}
	freshDB, err := vulndb.Open(fx.dbPath)
	if err != nil {
		t.Fatalf("vulndb.Open: %v", err)
	}
	wantSQL := make([][]byte, len(sqlProbes))
	for i, p := range sqlProbes {
		res, err := freshDB.Store().Query(p.sql, p.args...)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		wantSQL[i], err = httpapi.Marshal(BuildQueryResult(res))
		if err != nil {
			t.Fatalf("probe %d: marshal: %v", i, err)
		}
	}

	paths := []string{"/api/table1", "/api/table3", "/api/kwise", "/api/table5?split=2004"}
	want := map[uint64]map[string][]byte{1: {}, 2: {}}
	for epSeq, a := range map[uint64]*osdiversity.Analysis{1: fx.base, 2: merged} {
		split := CanonSplitYear(a, 2004)
		for path, doc := range map[string]any{
			"/api/table1":            BuildTable1(a),
			"/api/table3":            BuildTable3(a),
			"/api/kwise":             BuildKWise(a),
			"/api/table5?split=2004": BuildTable5(a, split),
		} {
			body, err := httpapi.Marshal(doc)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			want[epSeq][path] = body
		}
	}
	// Every successful reload rebuilds base+delta, so epochs 3, 4, ...
	// answer the same bytes as epoch 2.
	expected := func(seq uint64, path string) []byte {
		if seq <= 1 {
			return want[1][path]
		}
		return want[2][path]
	}

	goroutinesBefore := runtime.NumGoroutine()

	m := epoch.NewManager(epoch.Config{})
	m.Install(fx.base, "feeds:x")
	s := NewResident(m, Config{Source: "feeds:x", Workers: 4, MaxInFlight: 8, DBPath: fx.dbPath})
	ts := httptest.NewServer(s.Handler())
	c := ts.Client()

	// Open the resident database before the storm, so every epoch swap
	// below finds it resident and must flush its plan cache.
	resp, err := c.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(sqlProbes[0].body))
	if err != nil {
		t.Fatalf("priming query: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("priming query status = %d", resp.StatusCode)
	}

	const (
		queriers    = 8
		sqlQueriers = 4
		rounds      = 6 // alternating success / injected failure
	)
	done := make(chan struct{})
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var lastSeq uint64
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				path := paths[(i+n)%len(paths)]
				resp, err := c.Get(ts.URL + path)
				if err != nil {
					fail("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail("GET %s: read: %v", path, err)
					return
				}
				if resp.StatusCode != 200 {
					fail("GET %s: status %d body %q (queries must never 5xx across reloads)",
						path, resp.StatusCode, body)
					return
				}
				seq, err := strconv.ParseUint(resp.Header.Get("X-Osdiv-Epoch"), 10, 64)
				if err != nil {
					fail("GET %s: epoch header %q", path, resp.Header.Get("X-Osdiv-Epoch"))
					return
				}
				if seq < lastSeq {
					fail("GET %s: epoch went backwards %d -> %d", path, lastSeq, seq)
					return
				}
				lastSeq = seq
				if !bytes.Equal(body, expected(seq, path)) {
					fail("GET %s: epoch-%d body differs from that epoch's canonical answer", path, seq)
					return
				}
			}
		}(i)
	}

	// SQL queriers ride the same storm through POST /api/query. The
	// database never changes, so every response — whatever epoch it
	// lands on, however many plan-cache flushes raced it — must answer
	// the same canonical bytes.
	for i := 0; i < sqlQueriers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var lastSeq uint64
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				p := (i + n) % len(sqlProbes)
				resp, err := c.Post(ts.URL+"/api/query", "application/json",
					strings.NewReader(sqlProbes[p].body))
				if err != nil {
					fail("POST /api/query: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail("POST /api/query: read: %v", err)
					return
				}
				if resp.StatusCode != 200 {
					fail("POST /api/query: status %d body %q (queries must never fail across reloads)",
						resp.StatusCode, body)
					return
				}
				seq, err := strconv.ParseUint(resp.Header.Get("X-Osdiv-Epoch"), 10, 64)
				if err != nil {
					fail("POST /api/query: epoch header %q", resp.Header.Get("X-Osdiv-Epoch"))
					return
				}
				if seq < lastSeq {
					fail("POST /api/query: epoch went backwards %d -> %d", lastSeq, seq)
					return
				}
				lastSeq = seq
				if !bytes.Equal(body, wantSQL[p]) {
					fail("POST /api/query: probe-%d body differs across reload (epoch %d)", p, seq)
					return
				}
			}
		}(i)
	}

	injected := errors.New("injected reload fault")
	var successes, faults int
	for n := 0; n < rounds; n++ {
		if n%2 == 1 {
			_, err := m.Reload("delta", func(*osdiversity.Analysis) (*osdiversity.Analysis, error) {
				return nil, injected
			})
			if !errors.Is(err, injected) {
				t.Fatalf("round %d: injected reload err = %v", n, err)
			}
			faults++
			continue
		}
		// Rebuild from the pinned original base so every epoch's bytes
		// stay predictable regardless of how many swaps preceded it.
		ep, err := m.Reload("delta", func(*osdiversity.Analysis) (*osdiversity.Analysis, error) {
			return fx.base.ApplyDelta(fx.delta)
		})
		if err != nil {
			t.Fatalf("round %d: reload: %v", n, err)
		}
		if ep.Seq != uint64(2+successes) {
			t.Fatalf("round %d: epoch seq = %d, want %d", n, ep.Seq, 2+successes)
		}
		successes++
		// Hold the next round until a request has resolved this epoch:
		// the per-swap cache prune (and with it the plan-cache flush)
		// rides on the first request that observes the new epoch, and a
		// swap nothing ever observed would flush nothing.
		for {
			if _, seq, _ := get(t, ts, "/api/table1"); seq == ep.Seq {
				break
			}
		}
	}

	close(done)
	wg.Wait()

	// Two distinct-literal queries of one shape: whatever the flushes
	// left behind, the second must hit the plan the first compiled.
	for _, body := range []string{
		`{"sql":"SELECT COUNT(DISTINCT vuln_id) FROM os_vuln WHERE os_id = ?","args":[5]}`,
		`{"sql":"SELECT COUNT(DISTINCT vuln_id) FROM os_vuln WHERE os_id = ?","args":[6]}`,
	} {
		resp, err := c.Post(ts.URL+"/api/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post-storm query: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("post-storm query status = %d", resp.StatusCode)
		}
	}
	ts.Close()

	if failures.Load() > 0 {
		t.Fatalf("%d query goroutines observed violations", failures.Load())
	}
	st := m.Status()
	if st.Successes != uint64(successes) || st.Failures != uint64(faults) {
		t.Errorf("status = %+v, want %d successes %d failures", st, successes, faults)
	}
	if st.Seq != uint64(1+successes) {
		t.Errorf("final seq = %d, want %d", st.Seq, 1+successes)
	}

	// The SQL surface ran throughout, so the resident database is open
	// and its plan cache must show the per-epoch flushes: each of the 3
	// successful swaps invalidates once (the first request resolving the
	// new epoch carries the flush), and the queriers' repeated shapes
	// must still have produced hits between flushes.
	pc := s.planCacheInfo()
	if pc == nil {
		t.Fatal("plan cache absent after SQL traffic")
	}
	if pc.Invalidations < uint64(successes) {
		t.Errorf("plan cache invalidations = %d, want >= %d (one per epoch swap)",
			pc.Invalidations, successes)
	}
	if pc.Hits == 0 {
		t.Error("plan cache recorded no hits under repeated-shape traffic")
	}

	// The server and test must drain back to the baseline goroutine
	// count — a leaked per-request or per-reload goroutine fails here.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before %d, after %d\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSaturationShedsWithRetryAfter fills every compute slot and
// asserts a request that cannot acquire one within MaxQueueWait is shed
// with the typed 503 overloaded envelope and a Retry-After header —
// then succeeds once a slot frees.
func TestSaturationShedsWithRetryAfter(t *testing.T) {
	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	s := New(a, Config{Workers: 1, MaxInFlight: 1, MaxQueueWait: 10 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.limiter <- struct{}{} // occupy the only compute slot

	resp, err := ts.Client().Get(ts.URL + "/api/table3")
	if err != nil {
		t.Fatalf("GET under saturation: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated GET = %d %q, want 503", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"overloaded"`)) {
		t.Errorf("saturated body = %q, want overloaded envelope", body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
	// Health must still answer instantly while saturated.
	if status, _, body := get(t, ts, "/healthz"); status != 200 {
		t.Errorf("/healthz under saturation = %d %q", status, body)
	}
	// A shed error must not be cached: freeing the slot lets the same
	// request compute and succeed.
	<-s.limiter
	if status, _, _ := get(t, ts, "/api/table3"); status != 200 {
		t.Errorf("GET after slot freed = %d, want 200", status)
	}

	// Coalesced waiters behind a slow leader share its fate instead of
	// each burning a queue-wait: N concurrent identical requests under
	// saturation produce N shed responses but zero computes.
	s.limiter <- struct{}{}
	var wg sync.WaitGroup
	sheds := make([]int, 4)
	for i := range sheds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/api/kwise")
			if err != nil {
				return
			}
			resp.Body.Close()
			sheds[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	<-s.limiter
	for i, status := range sheds {
		if status != http.StatusServiceUnavailable {
			t.Errorf("saturated concurrent request %d = %d, want 503", i, status)
		}
	}
}
