package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"osdiversity"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/relstore"
	"osdiversity/internal/vulndb"
)

// queryFixture imports the calibrated corpus into a database and boots
// a server over it, /api/query enabled.
type queryFixture struct {
	dbPath string
	srv    *Server
	ts     *httptest.Server
	c      *httpapi.Client
}

func makeQueryFixture(t *testing.T, workers int) *queryFixture {
	t.Helper()
	dir := t.TempDir()
	feeds, err := osdiversity.GenerateFeeds(filepath.Join(dir, "feeds"), osdiversity.WithParallelism(workers))
	if err != nil {
		t.Fatalf("GenerateFeeds: %v", err)
	}
	dbPath := filepath.Join(dir, "study.db")
	if _, _, err := osdiversity.ImportFeeds(dbPath, feeds, osdiversity.WithParallelism(workers)); err != nil {
		t.Fatalf("ImportFeeds: %v", err)
	}
	a, err := osdiversity.LoadDatabase(dbPath, osdiversity.WithParallelism(workers))
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	srv := New(a, Config{Source: "db:" + dbPath, Engine: "bitset", Workers: workers, DBPath: dbPath})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := httpapi.NewClient(ts.URL)
	c.HTTP = ts.Client()
	return &queryFixture{dbPath: dbPath, srv: srv, ts: ts, c: c}
}

// wantQueryBody computes the canonical /api/query bytes for a statement
// by running it on a fresh database handle outside the server.
func wantQueryBody(t *testing.T, dbPath, sql string, args ...relstore.Value) []byte {
	t.Helper()
	db, err := vulndb.Open(dbPath)
	if err != nil {
		t.Fatalf("vulndb.Open: %v", err)
	}
	res, err := db.Store().Query(sql, args...)
	if err != nil {
		t.Fatalf("fresh query: %v", err)
	}
	body, err := httpapi.Marshal(BuildQueryResult(res))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return body
}

// TestQueryEndpoint is the tentpole's serving proof: ad-hoc and
// parameterized SELECTs answer the canonical document bytes, identical
// requests cache (one compute), and the plan cache surfaces on /corpus.
func TestQueryEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("generates feeds and imports a database")
	}
	fx := makeQueryFixture(t, 2)

	t.Run("ad-hoc select", func(t *testing.T) {
		const sql = `SELECT name, family FROM os ORDER BY name`
		body, err := fx.c.PostJSON("/api/query", httpapi.QueryRequest{SQL: sql})
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if want := wantQueryBody(t, fx.dbPath, sql); !bytes.Equal(body, want) {
			t.Errorf("body differs from canonical document\n got: %.200s\nwant: %.200s", body, want)
		}
	})

	t.Run("parameterized", func(t *testing.T) {
		const sql = `SELECT os.name, COUNT(DISTINCT os_vuln.vuln_id) FROM os
			JOIN os_vuln ON os.id = os_vuln.os_id
			WHERE os.family = ? GROUP BY os.name ORDER BY os.name`
		body, err := fx.c.PostJSON("/api/query", httpapi.QueryRequest{SQL: sql, Args: []any{"BSD"}})
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		want := wantQueryBody(t, fx.dbPath, sql, relstore.Text("BSD"))
		if !bytes.Equal(body, want) {
			t.Errorf("body differs from canonical document\n got: %.200s\nwant: %.200s", body, want)
		}
		res, err := fx.c.Query(sql, "BSD")
		if err != nil {
			t.Fatalf("client Query: %v", err)
		}
		if res.N == 0 || len(res.Rows) != res.N {
			t.Errorf("decoded result n=%d rows=%d, want consistent non-empty", res.N, len(res.Rows))
		}
	})

	t.Run("typed args round-trip", func(t *testing.T) {
		const sql = `SELECT name FROM vulnerability WHERE year = ? ORDER BY name LIMIT 5`
		body, err := fx.c.PostJSON("/api/query", httpapi.QueryRequest{SQL: sql, Args: []any{2003}})
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		want := wantQueryBody(t, fx.dbPath, sql, relstore.Int(2003))
		if !bytes.Equal(body, want) {
			t.Errorf("integer arg bound differently from relstore.Int\n got: %.200s\nwant: %.200s", body, want)
		}
	})

	t.Run("identical requests cache", func(t *testing.T) {
		const sql = `SELECT COUNT(*) FROM os_vuln WHERE os_id = ?`
		before := fx.srv.Computes()
		for i := 0; i < 3; i++ {
			if _, err := fx.c.Query(sql, 1); err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
		}
		if got := fx.srv.Computes(); got != before+1 {
			t.Errorf("computes after 3 identical queries = %d, want %d", got, before+1)
		}
		// A different argument is a different response: one more compute,
		// but the same plan (the shape normalizes identically).
		if _, err := fx.c.Query(sql, 2); err != nil {
			t.Fatalf("query with new arg: %v", err)
		}
		if got := fx.srv.Computes(); got != before+2 {
			t.Errorf("computes after distinct-arg query = %d, want %d", got, before+2)
		}
	})

	t.Run("plan cache on corpus", func(t *testing.T) {
		info, err := fx.c.Corpus()
		if err != nil {
			t.Fatalf("Corpus: %v", err)
		}
		pc := info.PlanCache
		if pc == nil {
			t.Fatal("corpus plan_cache missing after queries ran")
		}
		if pc.Size == 0 || pc.Misses == 0 {
			t.Errorf("plan_cache = %+v, want non-empty cache with recorded misses", pc)
		}
		if pc.Capacity <= 0 {
			t.Errorf("plan_cache capacity = %d, want positive", pc.Capacity)
		}
	})
}

// TestQueryRejectsNonSelect is the satellite contract: every non-SELECT
// statement answers 400 unsupported_statement without touching the
// engine, and the other request defects map to their typed envelopes.
func TestQueryRejectsNonSelect(t *testing.T) {
	if testing.Short() {
		t.Skip("generates feeds and imports a database")
	}
	fx := makeQueryFixture(t, 1)

	post := func(t *testing.T, body string) (int, []byte) {
		t.Helper()
		resp, err := fx.ts.Client().Post(fx.ts.URL+"/api/query", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return resp.StatusCode, raw
	}

	for _, tt := range []struct {
		name     string
		body     string
		wantCode string
	}{
		{"update", `{"sql":"UPDATE os SET family = 'x' WHERE id = 1"}`, "unsupported_statement"},
		{"delete", `{"sql":"DELETE FROM os_vuln WHERE os_id = 1"}`, "unsupported_statement"},
		{"drop", `{"sql":"DROP TABLE os"}`, "unsupported_statement"},
		{"insert", `{"sql":"INSERT INTO os (id, name, family, first_release) VALUES (99, 'x', 'y', 2000)"}`, "unsupported_statement"},
		{"create table", `{"sql":"CREATE TABLE scratch (id INTEGER)"}`, "unsupported_statement"},
		{"malformed sql", `{"sql":"SELEKT oops"}`, "bad_query"},
		{"empty sql", `{"sql":"  "}`, "bad_query"},
		{"unknown column", `{"sql":"SELECT nonexistent FROM os"}`, "bad_query"},
		{"not json", `{"sql":`, "bad_body"},
		{"unbindable arg", `{"sql":"SELECT name FROM os WHERE id = ?","args":[{"nested":1}]}`, "bad_param"},
		{"missing placeholder arg", `{"sql":"SELECT name FROM os WHERE id = ?"}`, "bad_query"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			status, raw := post(t, tt.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d %q, want 400", status, raw)
			}
			var env httpapi.ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("error envelope: %v (%q)", err, raw)
			}
			if env.Error.Code != tt.wantCode {
				t.Errorf("code = %q, want %q (message: %s)", env.Error.Code, tt.wantCode, env.Error.Message)
			}
		})
	}

	// A rejected write must not have touched the store: the os table
	// still answers.
	res, err := fx.c.Query(`SELECT COUNT(*) FROM os`)
	if err != nil {
		t.Fatalf("post-rejection query: %v", err)
	}
	if res.N != 1 {
		t.Errorf("os count rows = %d, want 1", res.N)
	}

	// GET on the query endpoint: 405 with Allow: POST.
	resp, err := fx.ts.Client().Get(fx.ts.URL + "/api/query")
	if err != nil {
		t.Fatalf("GET /api/query: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /api/query = %d Allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestQueryWithoutDatabase asserts the 404 gate of a server booted
// without -db.
func TestQueryWithoutDatabase(t *testing.T) {
	a, err := osdiversity.LoadCalibrated()
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	s := New(a, Config{Source: "calibrated", Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := httpapi.NewClient(ts.URL)
	c.HTTP = ts.Client()

	_, err = c.Query(`SELECT name FROM os`)
	he, ok := err.(*httpapi.Error)
	if !ok || he.StatusCode != http.StatusNotFound || he.Code != "no_database" {
		t.Fatalf("query without db: %v, want 404 no_database", err)
	}
	info, err := c.Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if info.PlanCache != nil {
		t.Errorf("corpus plan_cache = %+v, want absent without a database", info.PlanCache)
	}
}

// TestQueryStreamedBody lowers the streaming threshold so a modest
// result takes the streamed path, and asserts the streamed bytes equal
// the canonical marshal — and that streamed bodies bypass the response
// cache (each request computes).
func TestQueryStreamedBody(t *testing.T) {
	if testing.Short() {
		t.Skip("generates feeds and imports a database")
	}
	old := queryStreamRows
	queryStreamRows = 8
	t.Cleanup(func() { queryStreamRows = old })

	fx := makeQueryFixture(t, 2)
	const sql = `SELECT name, year FROM vulnerability ORDER BY name LIMIT 50`
	want := wantQueryBody(t, fx.dbPath, sql)

	before := fx.srv.Computes()
	for i := 0; i < 2; i++ {
		body, err := fx.c.PostJSON("/api/query", httpapi.QueryRequest{SQL: sql})
		if err != nil {
			t.Fatalf("streamed query %d: %v", i, err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("streamed body %d differs from marshal\n got: %.200s\nwant: %.200s", i, body, want)
		}
	}
	if got := fx.srv.Computes(); got != before+2 {
		t.Errorf("computes after 2 streamed queries = %d, want %d (streamed bodies are not cached)", got, before+2)
	}

	// A small result on the same server still caches.
	const small = `SELECT name FROM os ORDER BY name LIMIT 3`
	before = fx.srv.Computes()
	for i := 0; i < 2; i++ {
		if _, err := fx.c.PostJSON("/api/query", httpapi.QueryRequest{SQL: small}); err != nil {
			t.Fatalf("small query %d: %v", i, err)
		}
	}
	if got := fx.srv.Computes(); got != before+1 {
		t.Errorf("computes after 2 small queries = %d, want %d", got, before+1)
	}
}

// TestStreamQueryResultMatchesMarshal pins the streamed encoder to the
// canonical encoding across every cell kind the wire format carries.
func TestStreamQueryResultMatchesMarshal(t *testing.T) {
	ts, err := time.Parse(time.RFC3339, "2004-07-01T10:30:00Z")
	if err != nil {
		t.Fatal(err)
	}
	docs := []httpapi.QueryResult{
		{Columns: []string{}, N: 0, Rows: [][]any{}},
		{Columns: []string{"a"}, N: 1, Rows: [][]any{{int64(1)}}},
		{Columns: []string{"n", "f", "s", "b", "t", "z"}, N: 2, Rows: [][]any{
			{int64(-7), 2.5, "x\"y", true, ts.Format(time.RFC3339), nil},
			{int64(0), 0.25, "", false, ts.Format(time.RFC3339), nil},
		}},
	}
	for i, doc := range docs {
		want, err := httpapi.Marshal(doc)
		if err != nil {
			t.Fatalf("doc %d: marshal: %v", i, err)
		}
		var buf bytes.Buffer
		if err := httpapi.StreamQueryResult(&buf, &doc); err != nil {
			t.Fatalf("doc %d: stream: %v", i, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("doc %d: streamed %q, marshal %q", i, buf.Bytes(), want)
		}
	}
}

// TestQueryArgsFromJSON pins the wire-to-engine value mapping.
func TestQueryArgsFromJSON(t *testing.T) {
	vals, err := QueryArgsFromJSON([]any{
		json.Number("42"), json.Number("2.5"), json.Number("1e3"),
		"text", true, nil, float64(7), float64(7.5),
	})
	if err != nil {
		t.Fatalf("QueryArgsFromJSON: %v", err)
	}
	want := []relstore.Value{
		relstore.Int(42), relstore.Float(2.5), relstore.Float(1000),
		relstore.Text("text"), relstore.Bool(true), relstore.Null(),
		relstore.Int(7), relstore.Float(7.5),
	}
	if len(vals) != len(want) {
		t.Fatalf("got %d values, want %d", len(vals), len(want))
	}
	for i := range want {
		// SQL NULL never equals NULL; compare kinds first.
		if vals[i].Kind() != want[i].Kind() || (!vals[i].IsNull() && !vals[i].Equal(want[i])) {
			t.Errorf("arg %d = %v, want %v", i, vals[i], want[i])
		}
	}
	if _, err := QueryArgsFromJSON([]any{[]any{1, 2}}); err == nil {
		t.Error("array argument bound, want error")
	}
	if _, err := QueryArgsFromJSON([]any{map[string]any{"k": 1}}); err == nil {
		t.Error("object argument bound, want error")
	}
}
