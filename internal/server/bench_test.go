package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"osdiversity"
	"osdiversity/internal/server"
)

// fetch drains one endpoint through the real HTTP stack.
func fetch(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || n == 0 {
		b.Fatalf("GET %s: status %d, %d bytes", url, resp.StatusCode, n)
	}
}

// benchServer is a resident server over the calibrated corpus shared by
// the benchmarks in this file.
func benchServer(b *testing.B, workers int) (*httptest.Server, *http.Client) {
	b.Helper()
	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(workers))
	if err != nil {
		b.Fatalf("LoadCalibrated: %v", err)
	}
	srv := server.New(a, server.Config{Source: "calibrated", Engine: "bitset", Workers: workers})
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts, ts.Client()
}

// BenchmarkServerTable3Concurrent is the tentpole's load proof: many
// clients hammering the heaviest table endpoint of the resident server.
// The first request computes, everything after is coalesced cache
// service, so the number approximates sustained per-request overhead
// (HTTP stack + cached-body write) under concurrency.
func BenchmarkServerTable3Concurrent(b *testing.B) {
	ts, client := benchServer(b, 2)
	url := ts.URL + "/api/table3"
	fetch(b, client, url) // warm the cache outside the timer
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			fetch(b, client, url)
		}
	})
}

// BenchmarkServerTable3Cold measures the response-cache miss path:
// every iteration builds a fresh server (empty body cache), so the
// request rebuilds and re-encodes the document over the memoized Study.
func BenchmarkServerTable3Cold(b *testing.B) {
	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(2))
	if err != nil {
		b.Fatalf("LoadCalibrated: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(a, server.Config{Source: "calibrated", Engine: "bitset", Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		fetch(b, ts.Client(), ts.URL+"/api/table3")
		ts.Close()
	}
}

// BenchmarkServerMostSharedStream measures the streamed listing path at
// full corpus width (every valid entry in the ranking).
func BenchmarkServerMostSharedStream(b *testing.B) {
	ts, client := benchServer(b, 2)
	url := fmt.Sprintf("%s/api/mostshared?n=%d", ts.URL, 1<<20)
	fetch(b, client, url)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch(b, client, url)
	}
}
