package server_test

import (
	"bytes"
	"fmt"
	"net/url"
	"testing"
)

// TestCanonicalKeyCoalescing asserts the ROADMAP canonicalization item:
// requests whose parameters differ only cosmetically (explicit defaults,
// number spellings, out-of-range years that clamp to the same table,
// limits beyond the corpus size) resolve to one cache key — each group
// costs exactly one computation and every variant receives
// byte-identical bodies.
func TestCanonicalKeyCoalescing(t *testing.T) {
	srv, _, c := newTestServer(t, 2)
	a, err := c.Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	lo, hi := a.YearFrom, a.YearTo
	if lo == 0 || hi <= lo {
		t.Fatalf("corpus year range [%d, %d] unusable", lo, hi)
	}

	groups := []struct {
		name     string
		path     string
		variants []url.Values
	}{
		{"table5 default vs explicit vs spellings", "/api/table5", []url.Values{
			nil,
			{"split": {"2005"}},
			{"split": {"+2005"}},
			{"split": {"02005"}},
		}},
		{"table5 beyond-range years clamp together", "/api/table5", []url.Values{
			{"split": {fmt.Sprint(hi)}},
			{"split": {fmt.Sprint(hi + 1)}},
			{"split": {"2100"}},
		}},
		{"table5 pre-history years clamp together", "/api/table5", []url.Values{
			{"split": {fmt.Sprint(lo - 1)}},
			{"split": {fmt.Sprint(lo - 40)}},
		}},
		{"select default vs explicit defaults", "/api/select", []url.Values{
			nil,
			{"k": {"4"}, "one-per-family": {"false"}, "to": {"2005"}, "top": {"0"}},
			{"one-per-family": {"0"}},
			{"to": {"+2005"}},
		}},
		{"select beyond-range end years clamp together", "/api/select", []url.Values{
			{"to": {fmt.Sprint(hi)}},
			{"to": {"2100"}},
		}},
		{"mostshared default vs spellings", "/api/mostshared", []url.Values{
			nil,
			{"n": {"3"}},
			{"n": {"03"}},
		}},
		{"mostshared full-listing limits clamp together", "/api/mostshared", []url.Values{
			{"n": {fmt.Sprint(a.ValidEntries)}},
			{"n": {fmt.Sprint(a.ValidEntries + 1)}},
			{"n": {"999999999"}},
		}},
		{"attack default vs explicit name and trials", "/api/attack", []url.Values{
			{"os": {"Windows2003", "Solaris", "Debian", "OpenBSD"}, "f": {"1"}, "trials": {"20"}},
			{"os": {"Windows2003", "Solaris", "Debian", "OpenBSD"}, "f": {"01"}, "trials": {"+20"},
				"name": {"configuration"}},
		}},
	}

	before := srv.Computes()
	for _, g := range groups {
		t.Run(g.name, func(t *testing.T) {
			var first []byte
			for i, q := range g.variants {
				body, err := c.GetRaw(g.path, q)
				if err != nil {
					t.Fatalf("variant %d (%v): %v", i, q, err)
				}
				if first == nil {
					first = body
				} else if !bytes.Equal(body, first) {
					t.Errorf("variant %d (%v) body differs from variant 0", i, q)
				}
			}
			got := srv.Computes()
			if got != before+1 {
				t.Errorf("computes = %d after group, want %d (one per canonical key)", got, before+1)
			}
			before = got
		})
	}
}
