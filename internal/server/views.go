package server

import (
	"fmt"
	"sort"

	"osdiversity"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/vulndb"
)

// This file builds the httpapi wire documents from facade results. The
// builders are exported because cmd/osdiv's -json printers reuse them:
// the bytes a server endpoint answers and the bytes the CLI prints must
// come from the same constructor. Every slice field is allocated
// non-nil so compact-marshal and the streaming encoder agree on empty
// arrays ([] rather than null).

// CanonSplitYear clamps a Table V split year (or selection end year) to
// the corpus's meaningful range [minYear-1, maxYear]: every year below
// the first publication year yields the same all-observed table, and
// every year at or beyond the last yields the same all-history table.
// The server canonicalizes request parameters through this before
// forming its singleflight/cache keys, so cosmetically different
// requests share one computation — and it echoes the canonical year, so
// the cached body is deterministic. Exported so the osdiv -json
// printers render exactly the documents the server answers.
func CanonSplitYear(a *osdiversity.Analysis, year int) int {
	lo, hi := a.YearRange()
	return CanonSplitYearRange(lo, hi, year)
}

// CanonSplitYearRange is CanonSplitYear against an explicit [lo, hi]
// year range. The gateway canonicalizes against the merged range of
// all shards — not any one backend's slice — so it clamps here with
// the union it computed from the shard /corpus documents.
func CanonSplitYearRange(lo, hi, year int) int {
	if lo == 0 && hi == 0 {
		return year // empty corpus: nothing to clamp against
	}
	if year < lo-1 {
		return lo - 1
	}
	if year > hi {
		return hi
	}
	return year
}

// CanonListLimit clamps a listing limit to the corpus's valid-entry
// count — every larger limit returns the identical full listing, so
// they canonicalize onto one cache key.
func CanonListLimit(a *osdiversity.Analysis, n int) int {
	if v := a.ValidCount(); n > v {
		return v
	}
	return n
}

// EpochStatus is the live-reload accounting BuildCorpus folds into the
// /corpus document. A CLI rendering of a one-shot corpus passes
// {Epoch: 1}: the only generation that ever exists in that process.
type EpochStatus struct {
	Epoch           uint64
	ReloadSuccesses uint64
	ReloadFailures  uint64
	LastReloadError string
	LastReloadUnix  int64
}

// BuildCorpus describes the loaded corpus for /corpus. planCache is
// the resident database's plan-cache accounting, nil when no database
// is open (CLI renders pass nil: the subcommand exits before a cache
// could accumulate history worth reporting).
func BuildCorpus(a *osdiversity.Analysis, source, engine string, workers int, shard string, sql bool, es EpochStatus, planCache *httpapi.PlanCacheInfo) httpapi.CorpusInfo {
	names := a.OSNames()
	if names == nil {
		names = []string{}
	}
	lo, hi := a.YearRange()
	return httpapi.CorpusInfo{
		Source:          source,
		Engine:          engine,
		Workers:         workers,
		Shard:           shard,
		ValidEntries:    a.ValidCount(),
		Distros:         len(names),
		OSNames:         names,
		YearFrom:        lo,
		YearTo:          hi,
		SQL:             sql,
		Epoch:           es.Epoch,
		EpochUnix:       a.Epoch().Unix(),
		SnapshotDigest:  a.SnapshotDigest(),
		Skipped:         a.MalformedSkipped(),
		ReloadSuccesses: es.ReloadSuccesses,
		ReloadFailures:  es.ReloadFailures,
		LastReloadError: es.LastReloadError,
		LastReloadUnix:  es.LastReloadUnix,
		PlanCache:       planCache,
	}
}

// BuildTable1 renders the paper's Table I.
func BuildTable1(a *osdiversity.Analysis) httpapi.Table1 {
	rows, distinct := a.ValidityTable()
	doc := httpapi.Table1{Rows: make([]httpapi.ValidityRow, 0, len(rows))}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, httpapi.ValidityRow{
			OS: r.OS, Valid: r.Valid, Unknown: r.Unknown,
			Unspecified: r.Unspecified, Disputed: r.Disputed,
		})
	}
	doc.Distinct = httpapi.ValidityRow{
		OS: distinct.OS, Valid: distinct.Valid, Unknown: distinct.Unknown,
		Unspecified: distinct.Unspecified, Disputed: distinct.Disputed,
	}
	return doc
}

// BuildTable2 renders the paper's Table II.
func BuildTable2(a *osdiversity.Analysis) httpapi.Table2 {
	rows, shares := a.ClassTable()
	doc := httpapi.Table2{Rows: make([]httpapi.ClassRow, 0, len(rows)), SharesPct: shares}
	for _, r := range rows {
		doc.Rows = append(doc.Rows, httpapi.ClassRow{
			OS: r.OS, Driver: r.Driver, Kernel: r.Kernel, SysSoft: r.SysSoft, App: r.App,
		})
	}
	return doc
}

// BuildTable3 renders the paper's Table III plus the §IV-E(1) filter
// reduction statistic.
func BuildTable3(a *osdiversity.Analysis) httpapi.Table3 {
	overlaps := a.PairwiseOverlaps()
	doc := httpapi.Table3{
		Rows:               make([]httpapi.PairRow, 0, len(overlaps)),
		FilterReductionPct: a.FilterReduction(),
	}
	for _, row := range overlaps {
		doc.Rows = append(doc.Rows, httpapi.PairRow{
			A: row.A, B: row.B, TotalA: row.TotalA, TotalB: row.TotalB,
			All: row.All, NoApp: row.NoApp, Remote: row.Remote,
		})
	}
	return doc
}

// BuildTable4 renders the paper's Table IV.
func BuildTable4(a *osdiversity.Analysis) httpapi.Table4 {
	parts := a.PartBreakdowns()
	doc := httpapi.Table4{Rows: make([]httpapi.PartRow, 0, len(parts))}
	for _, row := range parts {
		doc.Rows = append(doc.Rows, httpapi.PartRow{
			A: row.A, B: row.B, Driver: row.Driver, Kernel: row.Kernel,
			SysSoft: row.SysSoft, Total: row.Total,
		})
	}
	return doc
}

// BuildTable5 renders the paper's Table V split at splitYear.
func BuildTable5(a *osdiversity.Analysis, splitYear int) httpapi.Table5 {
	cells := a.HistoryObserved(splitYear)
	doc := httpapi.Table5{SplitYear: splitYear, Cells: make([]httpapi.PeriodCell, 0, len(cells))}
	for _, c := range cells {
		doc.Cells = append(doc.Cells, httpapi.PeriodCell{
			A: c.A, B: c.B, History: c.History, Observed: c.Observed,
		})
	}
	return doc
}

// BuildTemporal renders one Figure 2 series, years ascending.
func BuildTemporal(a *osdiversity.Analysis, osName string) (httpapi.Temporal, error) {
	series, err := a.TemporalSeries(osName)
	if err != nil {
		return httpapi.Temporal{}, err
	}
	doc := httpapi.Temporal{OS: osName, Years: make([]httpapi.YearCount, 0, len(series))}
	for y, n := range series {
		doc.Years = append(doc.Years, httpapi.YearCount{Year: y, Count: n})
	}
	sort.Slice(doc.Years, func(i, j int) bool { return doc.Years[i].Year < doc.Years[j].Year })
	return doc, nil
}

// BuildKWise renders the §IV-B k-wise product counts, k ascending.
func BuildKWise(a *osdiversity.Analysis) httpapi.KWise {
	kwise := a.KWiseProducts()
	doc := httpapi.KWise{Products: make([]httpapi.KCount, 0, len(kwise))}
	for k, n := range kwise {
		doc.Products = append(doc.Products, httpapi.KCount{K: k, Count: n})
	}
	sort.Slice(doc.Products, func(i, j int) bool { return doc.Products[i].K < doc.Products[j].K })
	return doc
}

// BuildMostShared renders the n most shared CVE identifiers (fewer when
// the corpus is smaller).
func BuildMostShared(a *osdiversity.Analysis, n int) httpapi.MostShared {
	ids := a.MostShared(n)
	if ids == nil {
		ids = []string{}
	}
	return httpapi.MostShared{N: len(ids), IDs: ids}
}

// BuildSelect renders the §IV-C replica-set ranking; top > 0 keeps only
// the best top sets.
func BuildSelect(a *osdiversity.Analysis, k int, onePerFamily bool, toYear, top int) httpapi.Select {
	ranked := a.SelectReplicaSets(k, onePerFamily, toYear)
	if top > 0 && len(ranked) > top {
		ranked = ranked[:top]
	}
	doc := httpapi.Select{
		K: k, OnePerFamily: onePerFamily, ToYear: toYear,
		Sets: make([]httpapi.ReplicaSet, 0, len(ranked)),
	}
	for _, r := range ranked {
		members := r.Members
		if members == nil {
			members = []string{}
		}
		doc.Sets = append(doc.Sets, httpapi.ReplicaSet{Members: members, Shared: r.Cost})
	}
	return doc
}

// defaultReleaseGrid is the release set of the paper's Table VI.
var defaultReleaseGrid = []struct{ os, ver string }{
	{"Debian", "2.1"}, {"Debian", "3.0"}, {"Debian", "4.0"},
	{"RedHat", "6.2*"}, {"RedHat", "4.0"}, {"RedHat", "5.0"},
}

// BuildReleases renders the default Table VI grid.
func BuildReleases(a *osdiversity.Analysis) (httpapi.Releases, error) {
	doc := httpapi.Releases{Cells: []httpapi.ReleaseCell{}}
	for i := 0; i < len(defaultReleaseGrid); i++ {
		for j := i + 1; j < len(defaultReleaseGrid); j++ {
			ra, rb := defaultReleaseGrid[i], defaultReleaseGrid[j]
			n, err := a.ReleaseOverlap(ra.os, ra.ver, rb.os, rb.ver)
			if err != nil {
				return httpapi.Releases{}, err
			}
			doc.Cells = append(doc.Cells, httpapi.ReleaseCell{
				A: ra.os, VA: ra.ver, B: rb.os, VB: rb.ver, Shared: n,
			})
		}
	}
	return doc, nil
}

// BuildReleaseOverlap renders one per-release overlap cell.
func BuildReleaseOverlap(a *osdiversity.Analysis, osA, verA, osB, verB string) (httpapi.Releases, error) {
	n, err := a.ReleaseOverlap(osA, verA, osB, verB)
	if err != nil {
		return httpapi.Releases{}, err
	}
	return httpapi.Releases{Cells: []httpapi.ReleaseCell{
		{A: osA, VA: verA, B: osB, VB: verB, Shared: n},
	}}, nil
}

// BuildAttack renders one Monte Carlo attack batch. The trials are
// seeded per scenario, so the summary is deterministic at any worker
// count.
func BuildAttack(a *osdiversity.Analysis, name string, oses []string, f, trials int) (httpapi.Attack, error) {
	sum, err := a.SimulateAttack(name, oses, f, trials)
	if err != nil {
		return httpapi.Attack{}, err
	}
	members := append([]string(nil), oses...)
	if members == nil {
		members = []string{}
	}
	return httpapi.Attack{
		Name: sum.Name, OSes: members, F: f, Trials: trials,
		MeanTTC: sum.MeanTTC, MedianTTC: sum.MedianTTC,
		SharedFatal: sum.SharedFatal, Unbroken: sum.Unbroken,
	}, nil
}

// BuildSQLTable3 renders the SQL-path Table III matrix over an imported
// database.
func BuildSQLTable3(dbPath string, workers int) (httpapi.SQLTable3, error) {
	cells, err := osdiversity.SQLPairwiseShared(dbPath, osdiversity.WithParallelism(workers))
	if err != nil {
		return httpapi.SQLTable3{}, fmt.Errorf("sql table3: %w", err)
	}
	doc := httpapi.SQLTable3{Cells: make([]httpapi.SQLCell, 0, len(cells))}
	for _, c := range cells {
		doc.Cells = append(doc.Cells, httpapi.SQLCell{A: c.A, B: c.B, Shared: c.Shared})
	}
	return doc, nil
}

// BuildSQLTable3FromDB renders the matrix over a resident database —
// the server path, shared by file-opened and shard-injected stores.
// The os dimension table is seeded identically in every database, so
// per-shard documents carry the same pairs in the same order and their
// cells sum across shards.
func BuildSQLTable3FromDB(db *vulndb.DB) (httpapi.SQLTable3, error) {
	cells, err := db.SharedMatrix()
	if err != nil {
		return httpapi.SQLTable3{}, fmt.Errorf("sql table3: %w", err)
	}
	doc := httpapi.SQLTable3{Cells: make([]httpapi.SQLCell, 0, len(cells))}
	for _, c := range cells {
		doc.Cells = append(doc.Cells, httpapi.SQLCell{A: c.A, B: c.B, Shared: c.Shared})
	}
	return doc, nil
}

// The partial builders render the /api/partial/* documents: the raw,
// additive halves of the derived tables, which the gateway merges
// across shards and finalizes with the core helpers. They ride the
// same respond() path as every other endpoint, so partial answers
// coalesce and cache per epoch like the tables they feed.

// BuildTable2Partial renders Table II plus its raw share inputs.
func BuildTable2Partial(a *osdiversity.Analysis) httpapi.Table2Partial {
	counts, n := a.ClassDistinctCounts()
	return httpapi.Table2Partial{
		Rows:          BuildTable2(a).Rows,
		ClassDistinct: counts,
		Valid:         n,
	}
}

// BuildTable4Partial renders every pair's Table IV row, unfiltered and
// unsorted, in pair presentation order.
func BuildTable4Partial(a *osdiversity.Analysis) httpapi.Table4Partial {
	parts := a.PartBreakdownsAll()
	doc := httpapi.Table4Partial{Rows: make([]httpapi.PartRow, 0, len(parts))}
	for _, row := range parts {
		doc.Rows = append(doc.Rows, httpapi.PartRow{
			A: row.A, B: row.B, Driver: row.Driver, Kernel: row.Kernel,
			SysSoft: row.SysSoft, Total: row.Total,
		})
	}
	return doc
}

// BuildMostSharedPartial renders the shard's top-n most-shared prefix
// with the product counts the gateway merge orders by.
func BuildMostSharedPartial(a *osdiversity.Analysis, n int) httpapi.MostSharedPartial {
	raw := a.MostSharedCounts(n)
	doc := httpapi.MostSharedPartial{Entries: make([]httpapi.SharedProduct, 0, len(raw))}
	for _, c := range raw {
		doc.Entries = append(doc.Entries, httpapi.SharedProduct{ID: c.ID, Products: c.Products})
	}
	doc.N = len(doc.Entries)
	return doc
}

// BuildSelectPartial renders the additive §IV-C cost vectors for the
// window ending at toYear.
func BuildSelectPartial(a *osdiversity.Analysis, toYear int) httpapi.SelectPartial {
	pairs, singles := a.SelectionCosts(toYear)
	doc := httpapi.SelectPartial{
		ToYear:  toYear,
		Pairs:   make([]httpapi.SelectPairCost, 0, len(pairs)),
		Singles: make([]httpapi.SelectOSCost, 0, len(singles)),
	}
	for _, p := range pairs {
		doc.Pairs = append(doc.Pairs, httpapi.SelectPairCost{A: p.A, B: p.B, Shared: p.Shared})
	}
	for _, s := range singles {
		doc.Singles = append(doc.Singles, httpapi.SelectOSCost{OS: s.OS, Total: s.Total})
	}
	return doc
}
