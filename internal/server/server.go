// Package server is the resident HTTP/JSON query service over the
// memoized Study: `osdiv serve` loads a corpus once and answers every
// facade query — the paper's tables, temporal series, k-wise listings,
// replica selection, release overlaps, attack simulation and the
// SQL-path Table III — from memory under concurrent load.
//
// The server is scale-honest rather than a thin mux:
//
//   - every /api endpoint validates its parameters and answers errors
//     with the typed httpapi.ErrorEnvelope;
//   - identical requests coalesce through a singleflight group, so N
//     concurrent cold-cache requests trigger one Study computation and
//     receive byte-identical bodies;
//   - completed bodies land in a bounded response cache (the corpus is
//     immutable for the life of the process, so cached bytes never go
//     stale);
//   - at most MaxInFlight computations run concurrently — a semaphore
//     sized from the WithParallelism worker count, so a request burst
//     queues instead of oversubscribing the pool;
//   - large listings (/api/mostshared) stream their JSON array
//     incrementally instead of materializing the body, and the streamed
//     bytes are identical to httpapi.Marshal of the same document.
//
// Wire types live in internal/httpapi, shared with the osdiv -json
// printers so CLI and server output can be diffed byte-for-byte.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"osdiversity"
	"osdiversity/internal/httpapi"
)

// Config describes the corpus the server answers for and its execution
// limits.
type Config struct {
	// Source names the loaded corpus for /corpus ("calibrated",
	// "feeds:<dir>", "db:<path>", "synthetic:<n>").
	Source string
	// Engine is the analysis engine name ("bitset" or "scan").
	Engine string
	// Workers is the WithParallelism worker count the analysis was
	// built with (1 = serial).
	Workers int
	// DBPath, when non-empty, enables /api/sqltable3 over the imported
	// database.
	DBPath string
	// MaxInFlight bounds concurrently executing computations; 0 selects
	// max(Workers, 1).
	MaxInFlight int
	// CacheLimit bounds the response cache entry count; 0 selects 1024.
	CacheLimit int
}

// Server answers the query API over one immutable Analysis. Construct
// with New.
type Server struct {
	a   *osdiversity.Analysis
	cfg Config

	limiter chan struct{}

	mu    sync.Mutex
	calls map[string]*call
	cache map[string][]byte

	computes atomic.Int64
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	body []byte
	err  *apiError
}

// apiError is a handler failure destined for the JSON error envelope.
type apiError struct {
	status  int
	code    string
	message string
}

func errBadParam(msg string) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_param", message: msg}
}

// New builds a server over an analysis. The analysis must have been
// constructed with the same worker count as cfg.Workers reports.
func New(a *osdiversity.Analysis, cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = cfg.Workers
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 1024
	}
	if cfg.Engine == "" {
		cfg.Engine = "bitset"
	}
	if cfg.Source == "" {
		cfg.Source = "calibrated"
	}
	return &Server{
		a:       a,
		cfg:     cfg,
		limiter: make(chan struct{}, cfg.MaxInFlight),
		calls:   make(map[string]*call),
		cache:   make(map[string][]byte),
	}
}

// Computes reports how many response bodies the server has computed
// (cache misses that executed a build). The coalescing tests assert N
// concurrent identical cold requests add exactly one.
func (s *Server) Computes() int64 { return s.computes.Load() }

// Handler returns the HTTP handler serving the whole API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.get(s.handleHealth))
	mux.HandleFunc("/corpus", s.get(s.handleCorpus))
	mux.HandleFunc("/api/table1", s.get(s.handleTable1))
	mux.HandleFunc("/api/table2", s.get(s.handleTable2))
	mux.HandleFunc("/api/table3", s.get(s.handleTable3))
	mux.HandleFunc("/api/table4", s.get(s.handleTable4))
	mux.HandleFunc("/api/table5", s.get(s.handleTable5))
	mux.HandleFunc("/api/temporal", s.get(s.handleTemporal))
	mux.HandleFunc("/api/kwise", s.get(s.handleKWise))
	mux.HandleFunc("/api/mostshared", s.get(s.handleMostShared))
	mux.HandleFunc("/api/select", s.get(s.handleSelect))
	mux.HandleFunc("/api/releases", s.get(s.handleReleases))
	mux.HandleFunc("/api/attack", s.get(s.handleAttack))
	mux.HandleFunc("/api/sqltable3", s.get(s.handleSQLTable3))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &apiError{status: http.StatusNotFound, code: "not_found",
			message: "unknown endpoint " + r.URL.Path})
	})
	return mux
}

// get wraps a handler with the method check every endpoint shares.
func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, &apiError{status: http.StatusMethodNotAllowed,
				code: "method_not_allowed", message: r.Method + " not allowed; use GET"})
			return
		}
		h(w, r)
	}
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	body, err := httpapi.Marshal(httpapi.ErrorEnvelope{
		Error: httpapi.ErrorBody{Code: e.code, Message: e.message},
	})
	if err != nil {
		http.Error(w, e.message, e.status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	w.Write(body)
}

// writeBody emits a cached or freshly computed 200 body.
func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// respondDirect marshals and writes a document immediately, without
// the limiter, singleflight or cache — for the cheap always-available
// endpoints (/healthz, /corpus).
func (s *Server) respondDirect(w http.ResponseWriter, doc any) {
	body, err := httpapi.Marshal(doc)
	if err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError,
			code: "encode_failed", message: err.Error()})
		return
	}
	writeBody(w, body)
}

// respond serves one computed endpoint: response-cache lookup, then
// singleflight coalescing, then the bounded compute path. key must
// canonically encode every parameter the build depends on.
func (s *Server) respond(w http.ResponseWriter, key string, build func() (any, *apiError)) {
	s.mu.Lock()
	if body, ok := s.cache[key]; ok {
		s.mu.Unlock()
		writeBody(w, body)
		return
	}
	if c, ok := s.calls[key]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			writeError(w, c.err)
			return
		}
		writeBody(w, c.body)
		return
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	func() {
		// The leader must always unregister the call and wake the
		// waiters, even when a build panics — a wedged key would block
		// every later request for this endpoint forever. A panic
		// becomes a 500 envelope for the leader and all coalesced
		// waiters.
		defer func() {
			if r := recover(); r != nil {
				c.err = &apiError{status: http.StatusInternalServerError,
					code: "internal_panic", message: fmt.Sprint(r)}
			}
			s.mu.Lock()
			delete(s.calls, key)
			if c.err == nil {
				s.storeLocked(key, c.body)
			}
			s.mu.Unlock()
			close(c.done)
		}()
		c.body, c.err = s.compute(build)
	}()

	if c.err != nil {
		writeError(w, c.err)
		return
	}
	writeBody(w, c.body)
}

// compute runs one build under the in-flight limiter and marshals the
// document.
func (s *Server) compute(build func() (any, *apiError)) ([]byte, *apiError) {
	s.limiter <- struct{}{}
	defer func() { <-s.limiter }()
	s.computes.Add(1)
	doc, aerr := build()
	if aerr != nil {
		return nil, aerr
	}
	body, err := httpapi.Marshal(doc)
	if err != nil {
		return nil, &apiError{status: http.StatusInternalServerError,
			code: "encode_failed", message: err.Error()}
	}
	return body, nil
}

// storeLocked inserts a body into the response cache, evicting an
// arbitrary entry at the cap. The corpus is immutable, so entries never
// go stale; the cap only bounds memory under parameter-sweep traffic.
func (s *Server) storeLocked(key string, body []byte) {
	if len(s.cache) >= s.cfg.CacheLimit {
		for k := range s.cache {
			delete(s.cache, k)
			break
		}
	}
	s.cache[key] = body
}
