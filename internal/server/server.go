// Package server is the resident HTTP/JSON query service over the
// memoized Study: `osdiv serve` loads a corpus once and answers every
// facade query — the paper's tables, temporal series, k-wise listings,
// replica selection, release overlaps, attack simulation and the
// SQL-path Table III — from memory under concurrent load.
//
// The server is scale-honest rather than a thin mux:
//
//   - every /api endpoint validates its parameters and answers errors
//     with the typed httpapi.ErrorEnvelope;
//   - identical requests coalesce through a singleflight group, so N
//     concurrent cold-cache requests trigger one Study computation and
//     receive byte-identical bodies;
//   - completed bodies land in a bounded response cache keyed by the
//     epoch they were computed on, so a hot reload can never serve a
//     stale mix of old and new corpus bytes;
//   - at most MaxInFlight computations run concurrently — a semaphore
//     sized from the WithParallelism worker count — and a request that
//     cannot get a slot within MaxQueueWait is shed with 503 and a
//     Retry-After header instead of queueing unboundedly;
//   - large listings (/api/mostshared) stream their JSON array
//     incrementally instead of materializing the body, and the streamed
//     bytes are identical to httpapi.Marshal of the same document.
//
// The corpus lives behind an internal/epoch.Manager: every request
// resolves the current epoch once at entry and answers entirely from
// it, so queries in flight across a reload finish on the epoch they
// started with. /readyz answers 503 until the first epoch is resident
// (a server booting from feeds installs its corpus asynchronously), and
// POST /admin/reload triggers a hot swap when a reloader is attached.
//
// Wire types live in internal/httpapi, shared with the osdiv -json
// printers so CLI and server output can be diffed byte-for-byte.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"osdiversity"
	"osdiversity/internal/epoch"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/vulndb"
)

// Config describes the corpus the server answers for and its execution
// limits.
type Config struct {
	// Source names the loaded corpus for /corpus ("calibrated",
	// "feeds:<dir>", "db:<path>", "synthetic:<n>").
	Source string
	// Engine is the analysis engine name ("bitset" or "scan").
	Engine string
	// Workers is the WithParallelism worker count the analysis was
	// built with (1 = serial).
	Workers int
	// DBPath, when non-empty, enables /api/sqltable3 over the imported
	// database.
	DBPath string
	// Shard is the year-range slice this backend owns ("i/N"), empty for
	// a whole-corpus server. Purely identity: it flows to /corpus so the
	// gateway (and operators) can see which slice a backend answers for.
	Shard string
	// MaxInFlight bounds concurrently executing computations; 0 selects
	// max(Workers, 1).
	MaxInFlight int
	// CacheLimit bounds the response cache entry count; 0 selects 1024.
	CacheLimit int
	// MaxQueueWait bounds how long a request may wait for a compute
	// slot before being shed with 503 + Retry-After; 0 selects 5s.
	MaxQueueWait time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = cfg.Workers
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 1024
	}
	if cfg.MaxQueueWait <= 0 {
		cfg.MaxQueueWait = 5 * time.Second
	}
	if cfg.Engine == "" {
		cfg.Engine = "bitset"
	}
	if cfg.Source == "" {
		cfg.Source = "calibrated"
	}
	return cfg
}

// reloader builds, validates and swaps in the next epoch.
type reloader = func() (*epoch.Epoch, error)

// Server answers the query API over the epochs a Manager publishes.
// Construct with New (one immutable corpus) or NewResident (a manager
// that hot-reloads live).
type Server struct {
	epochs *epoch.Manager
	cfg    Config

	reload atomic.Pointer[reloader]

	limiter chan struct{}

	mu         sync.Mutex
	calls      map[string]*call
	queryCalls map[string]*queryCall
	cache      map[string][]byte
	cacheEpoch uint64

	// The imported database behind /api/query and the plan-cache stats
	// on /corpus: opened lazily on the first query, resident after.
	dbOnce sync.Once
	dbErr  error
	db     atomic.Pointer[vulndb.DB]

	computes atomic.Int64
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	body []byte
	err  *apiError
}

// apiError is a handler failure destined for the JSON error envelope.
// retryAfter > 0 additionally sets a Retry-After header, telling
// well-behaved clients when the condition (overload, reload in
// progress, still booting) is worth another attempt.
type apiError struct {
	status     int
	code       string
	message    string
	retryAfter int
}

func errBadParam(msg string) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "bad_param", message: msg}
}

func errNotReady() *apiError {
	return &apiError{status: http.StatusServiceUnavailable, code: "not_ready",
		message: "no corpus resident yet; retry shortly", retryAfter: 1}
}

func errOverloaded() *apiError {
	return &apiError{status: http.StatusServiceUnavailable, code: "overloaded",
		message: "all compute slots busy; retry shortly", retryAfter: 1}
}

// New builds a server over one immutable analysis — the corpus is
// installed as epoch 1 and never reloads unless SetReloader attaches a
// source. The analysis must have been constructed with the same worker
// count as cfg.Workers reports.
func New(a *osdiversity.Analysis, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := epoch.NewManager(epoch.Config{})
	m.Install(a, cfg.Source)
	return newServer(m, cfg)
}

// NewResident builds a server over an epoch manager. The manager may be
// empty (boot still loading): every query answers 503 not_ready until
// the first epoch is installed.
func NewResident(m *epoch.Manager, cfg Config) *Server {
	return newServer(m, cfg.withDefaults())
}

func newServer(m *epoch.Manager, cfg Config) *Server {
	return &Server{
		epochs:     m,
		cfg:        cfg,
		limiter:    make(chan struct{}, cfg.MaxInFlight),
		calls:      make(map[string]*call),
		queryCalls: make(map[string]*queryCall),
		cache:      make(map[string][]byte),
	}
}

// SetReloader attaches the reload trigger POST /admin/reload runs —
// typically a closure over Manager.TryReload and a delta-feed glob.
// Safe to call while serving.
func (s *Server) SetReloader(fn func() (*epoch.Epoch, error)) {
	s.reload.Store(&fn)
}

// Epochs returns the manager the server answers from.
func (s *Server) Epochs() *epoch.Manager { return s.epochs }

// Computes reports how many response bodies the server has computed
// (cache misses that executed a build). The coalescing tests assert N
// concurrent identical cold requests add exactly one.
func (s *Server) Computes() int64 { return s.computes.Load() }

// Handler returns the HTTP handler serving the whole API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.get(s.handleHealth))
	mux.HandleFunc("/readyz", s.get(s.handleReady))
	mux.HandleFunc("/corpus", s.get(s.handleCorpus))
	mux.HandleFunc("/admin/reload", s.post(s.handleReload))
	mux.HandleFunc("/api/table1", s.get(s.handleTable1))
	mux.HandleFunc("/api/table2", s.get(s.handleTable2))
	mux.HandleFunc("/api/table3", s.get(s.handleTable3))
	mux.HandleFunc("/api/table4", s.get(s.handleTable4))
	mux.HandleFunc("/api/table5", s.get(s.handleTable5))
	mux.HandleFunc("/api/temporal", s.get(s.handleTemporal))
	mux.HandleFunc("/api/kwise", s.get(s.handleKWise))
	mux.HandleFunc("/api/mostshared", s.get(s.handleMostShared))
	mux.HandleFunc("/api/select", s.get(s.handleSelect))
	mux.HandleFunc("/api/releases", s.get(s.handleReleases))
	mux.HandleFunc("/api/attack", s.get(s.handleAttack))
	mux.HandleFunc("/api/sqltable3", s.get(s.handleSQLTable3))
	mux.HandleFunc("/api/query", s.post(s.handleQuery))
	mux.HandleFunc("/api/recommend", s.post(s.handleRecommend))
	mux.HandleFunc("/api/partial/table2", s.get(s.handlePartialTable2))
	mux.HandleFunc("/api/partial/table4", s.get(s.handlePartialTable4))
	mux.HandleFunc("/api/partial/table5", s.get(s.handlePartialTable5))
	mux.HandleFunc("/api/partial/mostshared", s.get(s.handlePartialMostShared))
	mux.HandleFunc("/api/partial/select", s.get(s.handlePartialSelect))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &apiError{status: http.StatusNotFound, code: "not_found",
			message: "unknown endpoint " + r.URL.Path})
	})
	return mux
}

// get wraps a handler with the method check every query endpoint shares.
func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return s.method(http.MethodGet, h)
}

// post wraps the admin endpoints, which mutate and must not be GETs.
func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return s.method(http.MethodPost, h)
}

func (s *Server) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			writeError(w, &apiError{status: http.StatusMethodNotAllowed,
				code: "method_not_allowed", message: r.Method + " not allowed; use " + want})
			return
		}
		h(w, r)
	}
}

// currentEpoch resolves the epoch this request answers from. Every
// handler resolves exactly once at entry, so a reload that swaps
// mid-request cannot mix epochs within one response. Writes the 503
// not_ready envelope when no epoch is resident yet.
func (s *Server) currentEpoch(w http.ResponseWriter) (*epoch.Epoch, bool) {
	ep, ok := s.epochs.Current()
	if !ok {
		writeError(w, errNotReady())
		return nil, false
	}
	w.Header().Set("X-Osdiv-Epoch", strconv.FormatUint(ep.Seq, 10))
	return ep, true
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	body, err := httpapi.Marshal(httpapi.ErrorEnvelope{
		Error: httpapi.ErrorBody{Code: e.code, Message: e.message},
	})
	if err != nil {
		http.Error(w, e.message, e.status)
		return
	}
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	w.Write(body)
}

// writeBody emits a cached or freshly computed 200 body.
func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// respondDirect marshals and writes a document immediately, without
// the limiter, singleflight or cache — for the cheap always-available
// endpoints (/healthz, /readyz, /corpus, /admin/reload).
func (s *Server) respondDirect(w http.ResponseWriter, doc any) {
	body, err := httpapi.Marshal(doc)
	if err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError,
			code: "encode_failed", message: err.Error()})
		return
	}
	writeBody(w, body)
}

// respond serves one computed endpoint: response-cache lookup, then
// singleflight coalescing, then the bounded compute path. key must
// canonically encode every parameter the build depends on; respond
// prefixes it with the resolved epoch, so requests racing a reload
// coalesce and cache strictly within their own epoch.
func (s *Server) respond(w http.ResponseWriter, ep *epoch.Epoch, key string, build func() (any, *apiError)) {
	key = fmt.Sprintf("e%d|%s", ep.Seq, key)

	s.mu.Lock()
	s.pruneForEpochLocked(ep.Seq)
	if body, ok := s.cache[key]; ok {
		s.mu.Unlock()
		writeBody(w, body)
		return
	}
	if c, ok := s.calls[key]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			writeError(w, c.err)
			return
		}
		writeBody(w, c.body)
		return
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	func() {
		// The leader must always unregister the call and wake the
		// waiters, even when a build panics — a wedged key would block
		// every later request for this endpoint forever. A panic
		// becomes a 500 envelope for the leader and all coalesced
		// waiters.
		defer func() {
			if r := recover(); r != nil {
				c.err = &apiError{status: http.StatusInternalServerError,
					code: "internal_panic", message: fmt.Sprint(r)}
			}
			s.mu.Lock()
			delete(s.calls, key)
			// Don't re-seed a pruned cache with a superseded epoch's
			// body: a slow build finishing after a swap would otherwise
			// park bytes nothing will ever look up again.
			if c.err == nil && ep.Seq >= s.cacheEpoch {
				s.storeLocked(key, c.body)
			}
			s.mu.Unlock()
			close(c.done)
		}()
		c.body, c.err = s.compute(build)
	}()

	if c.err != nil {
		writeError(w, c.err)
		return
	}
	writeBody(w, c.body)
}

// acquire takes a compute slot, waiting at most MaxQueueWait; a request
// that cannot get one is shed with the overloaded envelope. The wait is
// deliberately not tied to the request context: coalesced waiters share
// the leader's outcome, and a canceled leader must not poison them.
func (s *Server) acquire() *apiError {
	select {
	case s.limiter <- struct{}{}:
		return nil
	default:
	}
	t := time.NewTimer(s.cfg.MaxQueueWait)
	defer t.Stop()
	select {
	case s.limiter <- struct{}{}:
		return nil
	case <-t.C:
		return errOverloaded()
	}
}

func (s *Server) release() { <-s.limiter }

// compute runs one build under the in-flight limiter and marshals the
// document.
func (s *Server) compute(build func() (any, *apiError)) ([]byte, *apiError) {
	if aerr := s.acquire(); aerr != nil {
		return nil, aerr
	}
	defer s.release()
	s.computes.Add(1)
	doc, aerr := build()
	if aerr != nil {
		return nil, aerr
	}
	body, err := httpapi.Marshal(doc)
	if err != nil {
		return nil, &apiError{status: http.StatusInternalServerError,
			code: "encode_failed", message: err.Error()}
	}
	return body, nil
}

// pruneForEpochLocked is the forward-only cache prune: the first
// request to resolve a newer epoch drops every older epoch's bodies —
// they can never be requested again (epoch resolution is monotonic), so
// holding them would only crowd the bounded cache. The resident
// database's plan cache flushes with them: a hot reload may have
// changed the corpus the SQL surface answers for, and a plan compiled
// against the previous generation must not survive the swap.
func (s *Server) pruneForEpochLocked(seq uint64) {
	if seq <= s.cacheEpoch {
		return
	}
	swapped := s.cacheEpoch != 0 // seq 1 is boot, not a reload
	s.cacheEpoch = seq
	s.cache = make(map[string][]byte)
	if swapped {
		if db := s.db.Load(); db != nil {
			db.Store().InvalidatePlans()
		}
	}
}

// storeLocked inserts a body into the response cache, evicting an
// arbitrary entry at the cap. Entries never go stale — each epoch's
// bodies are immutable and the epoch prefix keeps generations apart —
// so the cap only bounds memory under parameter-sweep traffic.
func (s *Server) storeLocked(key string, body []byte) {
	if len(s.cache) >= s.cfg.CacheLimit {
		for k := range s.cache {
			delete(s.cache, k)
			break
		}
	}
	s.cache[key] = body
}

// handleReady answers /readyz: 503 with the not_ready envelope until
// the first epoch is resident, then the Ready document. Orchestrators
// and the CI smokes gate traffic on this, not /healthz — a feed boot
// can take seconds during which the process is alive but answerless.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.epochs.Current()
	if !ok {
		writeError(w, errNotReady())
		return
	}
	s.respondDirect(w, httpapi.Ready{Status: "ok", Epoch: ep.Seq})
}

// handleReload answers POST /admin/reload: trigger a hot swap and
// report the published epoch. Degradations map to typed envelopes —
// the prior epoch keeps serving through every one of them.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	fn := s.reload.Load()
	if fn == nil {
		writeError(w, &apiError{status: http.StatusNotFound, code: "no_reload_source",
			message: "server was not started with a reloadable corpus (osdiv -feeds ... serve -watch)"})
		return
	}
	ep, err := (*fn)()
	switch {
	case errors.Is(err, epoch.ErrReloadInProgress):
		writeError(w, &apiError{status: http.StatusConflict, code: "reload_in_progress",
			message: "another reload is running; retry shortly", retryAfter: 1})
		return
	case errors.Is(err, epoch.ErrNoDelta):
		writeError(w, &apiError{status: http.StatusConflict, code: "no_delta",
			message: "no delta feeds to apply"})
		return
	case err != nil:
		writeError(w, &apiError{status: http.StatusInternalServerError, code: "reload_failed",
			message: err.Error()})
		return
	}
	s.respondDirect(w, httpapi.ReloadResult{
		Epoch:         ep.Seq,
		Source:        ep.Source,
		ValidEntries:  ep.Analysis.ValidCount(),
		SwappedAtUnix: ep.SwappedAt.Unix(),
	})
}
