package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"osdiversity/internal/epoch"
	"osdiversity/internal/httpapi"
)

// healthDoc is the /healthz payload.
func (s *Server) healthDoc() httpapi.Health {
	return httpapi.Health{Status: "ok"}
}

// corpusDoc is the /corpus payload for the epoch the request resolved.
func (s *Server) corpusDoc(ep *epoch.Epoch) httpapi.CorpusInfo {
	st := s.epochs.Status()
	return BuildCorpus(ep.Analysis, ep.Source, s.cfg.Engine, s.cfg.Workers, s.cfg.Shard, s.sqlEnabled(),
		EpochStatus{
			Epoch:           ep.Seq,
			ReloadSuccesses: st.Successes,
			ReloadFailures:  st.Failures,
			LastReloadError: st.LastError,
			LastReloadUnix:  st.LastErrorUnix,
		}, s.planCacheInfo())
}

// streamMostShared writes the MostShared document without materializing
// the whole body: header fields first, then the IDs array element by
// element through a buffered writer. The emitted bytes are identical to
// httpapi.Marshal(doc) — TestStreamMatchesMarshal diffs them — so
// streamed and cached endpoints stay textually comparable.
func streamMostShared(w io.Writer, doc httpapi.MostShared) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	if _, err := fmt.Fprintf(bw, `{"n":%d,"ids":[`, doc.N); err != nil {
		return err
	}
	for i, id := range doc.IDs {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		elem, err := json.Marshal(id)
		if err != nil {
			return err
		}
		if _, err := bw.Write(elem); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
