package vulndb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
)

// TestLoadEntriesStreamIdentical proves the streaming insert path
// persists a database byte-identical to the materialized parallel path,
// across chunk boundaries and worker counts.
func TestLoadEntriesStreamIdentical(t *testing.T) {
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	classifier := classify.NewClassifier()
	dir := t.TempDir()

	saveParallel := func(workers int) []byte {
		db, err := Create()
		if err != nil {
			t.Fatal(err)
		}
		stored, _, err := db.LoadEntriesParallel(c.Entries, classifier, workers)
		if err != nil || stored == 0 {
			t.Fatalf("LoadEntriesParallel: %v, %d stored", err, stored)
		}
		path := filepath.Join(dir, "parallel.db")
		if err := db.Save(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	want := saveParallel(4)
	if !bytes.Equal(want, saveParallel(1)) {
		t.Fatal("materialized path differs across worker counts")
	}

	for _, workers := range []int{1, 4} {
		db, err := Create()
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan *cve.Entry, 64)
		go func() {
			for _, e := range c.Entries {
				ch <- e
			}
			close(ch)
		}()
		stored, skipped, err := db.LoadEntriesStream(ch, classifier, workers)
		if err != nil {
			t.Fatalf("LoadEntriesStream(workers=%d): %v", workers, err)
		}
		if stored+skipped != len(c.Entries) {
			t.Fatalf("stream accounted %d+%d entries, want %d", stored, skipped, len(c.Entries))
		}
		path := filepath.Join(dir, "stream.db")
		if err := db.Save(path); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, want) {
			t.Errorf("workers %d: streamed database differs from materialized import", workers)
		}
	}
}
