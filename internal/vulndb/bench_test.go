package vulndb

import (
	"sync"
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
)

// The SQL-path headline benchmark: the full Table III pairwise matrix
// over the seeded 100k-entry synthetic corpus (32 distros, 496 pairs).
// "Naive" is the pre-planner shape of the workload — one SharedCount
// query per pair, each rebuilding its joins — and "Planned" is the
// single grouped hash-join plan of SharedMatrix. CI records the ratio
// in BENCH_relstore.json as speedup_naive_over_planned.

const (
	benchMatrixEntries = 100_000
	benchMatrixDistros = 32
	benchWorkers       = 4
)

var benchMatrixOnce struct {
	sync.Once
	db    *DB
	study *core.Study
	err   error
}

func benchMatrixDB(b *testing.B) (*DB, *core.Study) {
	b.Helper()
	benchMatrixOnce.Do(func() {
		sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
			Entries: benchMatrixEntries, Distros: benchMatrixDistros,
			Seed: 1, Workers: benchWorkers,
		})
		if err != nil {
			benchMatrixOnce.err = err
			return
		}
		db, err := CreateForRegistry(sc.Registry)
		if err != nil {
			benchMatrixOnce.err = err
			return
		}
		if _, _, err := db.LoadEntriesParallel(sc.Entries, classify.NewClassifier(), benchWorkers); err != nil {
			benchMatrixOnce.err = err
			return
		}
		db.SetParallelism(benchWorkers)
		benchMatrixOnce.db = db
		benchMatrixOnce.study = core.NewStudy(sc.Entries,
			core.WithRegistry(sc.Registry), core.WithParallelism(benchWorkers))
	})
	if benchMatrixOnce.err != nil {
		b.Fatal(benchMatrixOnce.err)
	}
	return benchMatrixOnce.db, benchMatrixOnce.study
}

// BenchmarkSQLPairMatrix100kNaive is the per-pair loop: 496 SharedCount
// queries, the path vulndb used before the grouped matrix existed.
func BenchmarkSQLPairMatrix100kNaive(b *testing.B) {
	db, study := benchMatrixDB(b)
	pairs := study.Pairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range pairs {
			n, err := db.SharedCount(p.A.String(), p.B.String())
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		if total == 0 {
			b.Fatal("no shared vulnerabilities")
		}
	}
}

// BenchmarkSQLPairMatrix100kPlanned answers all 496 pairs in one
// grouped hash-join plan.
func BenchmarkSQLPairMatrix100kPlanned(b *testing.B) {
	db, _ := benchMatrixDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := db.SharedMatrix()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, cell := range m {
			total += cell.Shared
		}
		if total == 0 {
			b.Fatal("no shared vulnerabilities")
		}
	}
}

// BenchmarkStudyPairMatrix100k is the in-memory reference the SQL path
// is measured against (the same Table III workload on the bitset
// engine, cache cleared each iteration).
func BenchmarkStudyPairMatrix100k(b *testing.B) {
	_, study := benchMatrixDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study.ClearCache()
		if len(study.PairMatrix(core.FatServer)) == 0 {
			b.Fatal("empty pair matrix")
		}
	}
}
