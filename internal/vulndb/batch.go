package vulndb

import (
	"fmt"
	"runtime"
	"sync"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
	"osdiversity/internal/relstore"
)

// This file is the ingestion fast path: entry digestion (classification,
// validity tagging, CPE clustering — the CPU-bound half of an insert)
// fans out to a worker pool, and the resulting rows reach the store
// through batched InsertRows calls instead of one lock round trip per
// row. The produced database is identical to the serial LoadEntries
// path: IDs are assigned and products interned in entry order by the
// sequential stage.

// batchSize is how many entries' rows accumulate between flushes.
const batchSize = 256

// entryDigest carries the parallel-computable part of one insert.
type entryDigest struct {
	clustered bool
	class     classify.Class
	validity  classify.Validity
	// clusters mirrors entry.Products: the clustered distro of each
	// product, when it has one.
	clusters []clusterRef
}

type clusterRef struct {
	distro osmap.Distro
	ok     bool
}

func (db *DB) digestEntry(e *cve.Entry, classifier *classify.Classifier) entryDigest {
	dig := entryDigest{
		class:    classifier.Classify(e),
		validity: classify.EntryValidity(e),
		clusters: make([]clusterRef, len(e.Products)),
	}
	for i, p := range e.Products {
		d, ok := db.registry.Cluster(p)
		dig.clusters[i] = clusterRef{distro: d, ok: ok}
		if ok {
			dig.clustered = true
		}
	}
	return dig
}

// rowBatch accumulates pending rows per table, flushed in schema order.
type rowBatch struct {
	vulnerability [][]relstore.Value
	vulnType      [][]relstore.Value
	secProt       [][]relstore.Value
	cvss          [][]relstore.Value
	product       [][]relstore.Value
	osVuln        [][]relstore.Value
	vulnProduct   [][]relstore.Value
	pending       int
}

func (b *rowBatch) flush(db *DB) error {
	for _, t := range []struct {
		name    string
		columns []string
		rows    *[][]relstore.Value
	}{
		{"vulnerability", []string{"id", "name", "year", "published", "summary"}, &b.vulnerability},
		{"vulnerability_type", []string{"vuln_id", "type"}, &b.vulnType},
		{"security_protection", []string{"vuln_id", "validity"}, &b.secProt},
		{"cvss", []string{"vuln_id", "access_vector", "access_complexity", "authentication",
			"conf_impact", "integ_impact", "avail_impact", "score", "remote"}, &b.cvss},
		{"product", []string{"id", "part", "vendor", "name"}, &b.product},
		{"os_vuln", []string{"os_id", "vuln_id", "version"}, &b.osVuln},
		{"vuln_product", []string{"vuln_id", "product_id", "version"}, &b.vulnProduct},
	} {
		if err := relstore.InsertRows(db.store, t.name, t.columns, *t.rows); err != nil {
			return err
		}
		*t.rows = (*t.rows)[:0]
	}
	b.pending = 0
	return nil
}

// appendEntry stages one digested entry's rows. It runs in the
// sequential stage: vulnerability IDs and product interning follow entry
// order exactly as in InsertEntry.
func (db *DB) appendEntry(e *cve.Entry, dig *entryDigest, b *rowBatch) {
	db.nextVuln++
	vulnID := db.nextVuln
	b.vulnerability = append(b.vulnerability, []relstore.Value{
		relstore.Int(vulnID), relstore.Text(e.ID.String()),
		relstore.Int(int64(e.Year())), relstore.Time(e.Published), relstore.Text(e.Summary),
	})
	b.vulnType = append(b.vulnType, []relstore.Value{
		relstore.Int(vulnID), relstore.Text(dig.class.String()),
	})
	b.secProt = append(b.secProt, []relstore.Value{
		relstore.Int(vulnID), relstore.Text(dig.validity.String()),
	})
	if !e.CVSS.IsZero() {
		v := e.CVSS
		b.cvss = append(b.cvss, []relstore.Value{
			relstore.Int(vulnID), relstore.Text(v.AV.String()), relstore.Text(v.AC.String()),
			relstore.Text(v.Au.String()), relstore.Text(v.C.String()), relstore.Text(v.I.String()),
			relstore.Text(v.A.String()), relstore.Float(v.BaseScore()), relstore.Bool(v.AV.Remote()),
		})
	}
	for i, p := range e.Products {
		key := p.Part.String() + ":" + p.Vendor + ":" + p.Product
		prodID, ok := db.productID[key]
		if !ok {
			db.nextProd++
			prodID = db.nextProd
			db.productID[key] = prodID
			b.product = append(b.product, []relstore.Value{
				relstore.Int(prodID), relstore.Text(p.Part.String()),
				relstore.Text(p.Vendor), relstore.Text(p.Product),
			})
		}
		b.vulnProduct = append(b.vulnProduct, []relstore.Value{
			relstore.Int(vulnID), relstore.Int(prodID), relstore.Text(p.Version),
		})
		if dig.clusters[i].ok && p.IsOS() {
			b.osVuln = append(b.osVuln, []relstore.Value{
				relstore.Int(db.osIDs[dig.clusters[i].distro]), relstore.Int(vulnID), relstore.Text(p.Version),
			})
		}
	}
	b.pending++
}

// digestAll fills digests[i] for each entry, fanning the CPU-bound
// digestion out to the worker pool when the batch is large enough.
func (db *DB) digestAll(entries []*cve.Entry, classifier *classify.Classifier, workers int, digests []entryDigest) {
	if workers > 1 && len(entries) >= 2*workers {
		if workers > len(entries) {
			workers = len(entries)
		}
		chunk := (len(entries) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(entries); lo += chunk {
			hi := lo + chunk
			if hi > len(entries) {
				hi = len(entries)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					digests[i] = db.digestEntry(entries[i], classifier)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i, e := range entries {
			digests[i] = db.digestEntry(e, classifier)
		}
	}
}

// appendAll stages one digested batch in entry order, flushing whenever
// batchSize rows are pending. It mutates stored/skipped in place.
func (db *DB) appendAll(entries []*cve.Entry, digests []entryDigest, batch *rowBatch, stored, skipped *int) error {
	for i, e := range entries {
		if !digests[i].clustered {
			*skipped++
			continue
		}
		db.appendEntry(e, &digests[i], batch)
		*stored++
		if batch.pending >= batchSize {
			if err := batch.flush(db); err != nil {
				return fmt.Errorf("vulndb: %s: %w", e.ID, err)
			}
		}
	}
	return nil
}

// LoadEntriesParallel bulk-inserts entries through the pipeline: workers
// digest entries concurrently, the sequential stage assigns IDs in entry
// order and feeds batched inserts. The resulting database is identical
// to LoadEntries'. workers <= 0 selects GOMAXPROCS.
func (db *DB) LoadEntriesParallel(entries []*cve.Entry, classifier *classify.Classifier, workers int) (stored, skipped int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	digests := make([]entryDigest, len(entries))
	db.digestAll(entries, classifier, workers, digests)
	var batch rowBatch
	if err := db.appendAll(entries, digests, &batch, &stored, &skipped); err != nil {
		return stored, skipped, err
	}
	if err := batch.flush(db); err != nil {
		return stored, skipped, fmt.Errorf("vulndb: flush: %w", err)
	}
	return stored, skipped, nil
}

// streamChunk is how many entries LoadEntriesStream accumulates before
// digesting a batch on the worker pool — the memory bound of the
// streaming insert path.
const streamChunk = 1024

// LoadEntriesStream inserts entries as they arrive on the channel,
// digesting fixed-size chunks on the worker pool and feeding the same
// batched inserts as LoadEntriesParallel — for the same entry sequence
// the resulting database is byte-identical, but only streamChunk
// entries are ever held by the loader at once, so feeds larger than
// memory can stream straight into the store. The channel must be closed
// by the producer; workers <= 0 selects GOMAXPROCS.
func (db *DB) LoadEntriesStream(entries <-chan *cve.Entry, classifier *classify.Classifier, workers int) (stored, skipped int, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := make([]*cve.Entry, 0, streamChunk)
	digests := make([]entryDigest, streamChunk)
	var batch rowBatch
	process := func() error {
		db.digestAll(chunk, classifier, workers, digests[:len(chunk)])
		err := db.appendAll(chunk, digests[:len(chunk)], &batch, &stored, &skipped)
		chunk = chunk[:0]
		return err
	}
	for e := range entries {
		chunk = append(chunk, e)
		if len(chunk) == streamChunk {
			if err := process(); err != nil {
				return stored, skipped, err
			}
		}
	}
	if err := process(); err != nil {
		return stored, skipped, err
	}
	if err := batch.flush(db); err != nil {
		return stored, skipped, fmt.Errorf("vulndb: flush: %w", err)
	}
	return stored, skipped, nil
}
