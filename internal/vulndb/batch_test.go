package vulndb

import (
	"reflect"
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/corpus"
	"osdiversity/internal/relstore"
)

// TestLoadEntriesParallelIdenticalDB loads the full corpus through the
// serial per-row path and the parallel batched pipeline and compares
// every table row: the pipelined database must be indistinguishable.
func TestLoadEntriesParallelIdenticalDB(t *testing.T) {
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	classifier := classify.NewClassifier()

	serial, err := Create()
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sStored, sSkipped, err := serial.LoadEntries(c.Entries, classifier)
	if err != nil {
		t.Fatalf("LoadEntries: %v", err)
	}

	parallel, err := Create()
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	pStored, pSkipped, err := parallel.LoadEntriesParallel(c.Entries, classifier, 4)
	if err != nil {
		t.Fatalf("LoadEntriesParallel: %v", err)
	}

	if sStored != pStored || sSkipped != pSkipped {
		t.Fatalf("counts differ: serial %d/%d, parallel %d/%d", sStored, sSkipped, pStored, pSkipped)
	}
	for _, table := range []string{
		"vulnerability", "vulnerability_type", "security_protection",
		"cvss", "product", "os_vuln", "vuln_product",
	} {
		var sRows, pRows [][]relstore.Value
		if err := relstore.ScanTable(serial.Store(), table, func(row []relstore.Value) bool {
			sRows = append(sRows, append([]relstore.Value(nil), row...))
			return true
		}); err != nil {
			t.Fatalf("scan serial %s: %v", table, err)
		}
		if err := relstore.ScanTable(parallel.Store(), table, func(row []relstore.Value) bool {
			pRows = append(pRows, append([]relstore.Value(nil), row...))
			return true
		}); err != nil {
			t.Fatalf("scan parallel %s: %v", table, err)
		}
		if len(sRows) != len(pRows) {
			t.Fatalf("table %s: %d rows serial, %d parallel", table, len(sRows), len(pRows))
		}
		for i := range sRows {
			if !reflect.DeepEqual(sRows[i], pRows[i]) {
				t.Fatalf("table %s row %d differs:\nserial   %v\nparallel %v",
					table, i, sRows[i], pRows[i])
			}
		}
	}

	sEntries, err := serial.Entries()
	if err != nil {
		t.Fatalf("serial Entries: %v", err)
	}
	pEntries, err := parallel.Entries()
	if err != nil {
		t.Fatalf("parallel Entries: %v", err)
	}
	if !reflect.DeepEqual(sEntries, pEntries) {
		t.Fatal("reconstructed entries differ between serial and parallel load")
	}
}

// TestInsertRowsValidation covers the batch API's error paths.
func TestInsertRowsValidation(t *testing.T) {
	db, err := Create()
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := relstore.InsertRows(db.Store(), "no_such_table", []string{"x"},
		[][]relstore.Value{{relstore.Int(1)}}); err == nil {
		t.Error("InsertRows accepted a missing table")
	}
	if err := relstore.InsertRows(db.Store(), "product", []string{"nope"},
		[][]relstore.Value{{relstore.Int(1)}}); err == nil {
		t.Error("InsertRows accepted a missing column")
	}
	if err := relstore.InsertRows(db.Store(), "product", []string{"id", "part"},
		[][]relstore.Value{{relstore.Int(1)}}); err == nil {
		t.Error("InsertRows accepted a short row")
	}
	if err := relstore.InsertRows(db.Store(), "product", nil, nil); err != nil {
		t.Errorf("InsertRows empty batch: %v", err)
	}
}
