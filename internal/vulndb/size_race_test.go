//go:build race

package vulndb

// Race-instrumented runs still prove the SQL path race-clean, just on
// a smaller synthetic corpus so CI stays fast.
const matrixTestEntries = 4_000
