// Package vulndb implements the paper's Figure 1: the custom SQL schema
// into which the collection program inserts parsed NVD feeds, "deployed
// ... to do the aggregation of vulnerabilities by affected products and
// versions".
//
// The schema runs on internal/relstore and holds everything the analyses
// need; entries can be loaded from any source of cve.Entry values and
// extracted back losslessly enough for internal/core to reproduce every
// table. SQL helpers demonstrate the aggregation queries of §III run on
// the embedded engine.
package vulndb

import (
	"fmt"
	"sort"

	"osdiversity/internal/classify"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/cvss"
	"osdiversity/internal/osmap"
	"osdiversity/internal/relstore"
)

// schema is the Figure 1 DDL, adapted to the relstore dialect. The
// cvss, vulnerability_type and security_protection satellites mirror the
// paper's layout.
var schema = []string{
	`CREATE TABLE os (
		id INTEGER PRIMARY KEY,
		name TEXT,
		family TEXT,
		first_release INTEGER)`,
	`CREATE TABLE vulnerability (
		id INTEGER PRIMARY KEY,
		name TEXT,
		year INTEGER,
		published TIMESTAMP,
		summary TEXT)`,
	`CREATE TABLE vulnerability_type (
		vuln_id INTEGER,
		type TEXT)`,
	`CREATE TABLE security_protection (
		vuln_id INTEGER,
		validity TEXT)`,
	`CREATE TABLE cvss (
		vuln_id INTEGER,
		access_vector TEXT,
		access_complexity TEXT,
		authentication TEXT,
		conf_impact TEXT,
		integ_impact TEXT,
		avail_impact TEXT,
		score FLOAT,
		remote BOOLEAN)`,
	`CREATE TABLE product (
		id INTEGER PRIMARY KEY,
		part TEXT,
		vendor TEXT,
		name TEXT)`,
	`CREATE TABLE os_vuln (
		os_id INTEGER,
		vuln_id INTEGER,
		version TEXT)`,
	`CREATE TABLE vuln_product (
		vuln_id INTEGER,
		product_id INTEGER,
		version TEXT)`,
	`CREATE INDEX ON os_vuln (vuln_id)`,
	`CREATE INDEX ON os_vuln (os_id)`,
	`CREATE INDEX ON vuln_product (vuln_id)`,
	`CREATE INDEX ON vulnerability (year)`,
}

// DB wraps a relstore database carrying the study schema.
type DB struct {
	store     *relstore.DB
	registry  *osmap.Registry
	osIDs     map[osmap.Distro]int64
	productID map[string]int64
	nextVuln  int64
	nextProd  int64

	// The §III aggregation queries, prepared once per database: the
	// parse and plan happen at Create/Open, every call after binds
	// arguments into the cached plan.
	stCountByOS    *relstore.Stmt
	stSharedCount  *relstore.Stmt
	stSharedMatrix *relstore.Stmt
}

// The aggregation shapes of §III. sharedCountSQL binds OS names as
// typed parameters, so quote-bearing names neither break the query nor
// inject SQL.
const (
	countByOSSQL = `
		SELECT os.name, COUNT(DISTINCT os_vuln.vuln_id) AS n
		FROM os
		JOIN os_vuln ON os.id = os_vuln.os_id
		JOIN security_protection sp ON os_vuln.vuln_id = sp.vuln_id
		WHERE sp.validity = 'Valid'
		GROUP BY os.name`
	sharedCountSQL = `
		SELECT COUNT(DISTINCT x.vuln_id)
		FROM os_vuln x
		JOIN os oa ON x.os_id = oa.id
		JOIN os_vuln y ON x.vuln_id = y.vuln_id
		JOIN os ob ON y.os_id = ob.id
		JOIN security_protection sp ON x.vuln_id = sp.vuln_id
		WHERE oa.name = ? AND ob.name = ? AND sp.validity = 'Valid'`
	sharedMatrixSQL = `
		SELECT oa.name, ob.name, COUNT(DISTINCT x.vuln_id)
		FROM os_vuln x
		JOIN security_protection sp ON x.vuln_id = sp.vuln_id
		JOIN os_vuln y ON x.vuln_id = y.vuln_id
		JOIN os oa ON x.os_id = oa.id
		JOIN os ob ON y.os_id = ob.id
		WHERE sp.validity = 'Valid' AND oa.id < ob.id
		GROUP BY oa.name, ob.name`
)

// prepareStatements compiles the aggregation queries against the live
// schema. Prepared handles survive later DDL and plan-cache flushes by
// recompiling transparently on their next use.
func (db *DB) prepareStatements() error {
	var err error
	if db.stCountByOS, err = db.store.Prepare(countByOSSQL); err != nil {
		return fmt.Errorf("vulndb: prepare count-by-os: %w", err)
	}
	if db.stSharedCount, err = db.store.Prepare(sharedCountSQL); err != nil {
		return fmt.Errorf("vulndb: prepare shared-count: %w", err)
	}
	if db.stSharedMatrix, err = db.store.Prepare(sharedMatrixSQL); err != nil {
		return fmt.Errorf("vulndb: prepare shared-matrix: %w", err)
	}
	return nil
}

// Create builds a fresh database with the schema and the os table
// populated from the paper's 11-distro registry.
func Create() (*DB, error) { return CreateForRegistry(osmap.NewRegistry()) }

// CreateForRegistry builds a fresh database whose os table, clustering
// and ids follow the given registry's universe, so synthetic "modern
// NVD" corpora (osmap.NewSyntheticRegistry) load through the same
// Figure 1 schema. OS ids are assigned 1..n in the registry's
// presentation order, matching core.Study's distro order.
func CreateForRegistry(registry *osmap.Registry) (*DB, error) {
	distros := registry.Distros()
	db := &DB{
		store:     relstore.Open(),
		registry:  registry,
		osIDs:     make(map[osmap.Distro]int64, len(distros)),
		productID: make(map[string]int64),
	}
	for _, ddl := range schema {
		if _, err := db.store.Exec(ddl); err != nil {
			return nil, fmt.Errorf("vulndb: schema: %w", err)
		}
	}
	for i, d := range distros {
		id := int64(i + 1)
		db.osIDs[d] = id
		err := relstore.InsertRow(db.store, "os",
			[]string{"id", "name", "family", "first_release"},
			[]relstore.Value{
				relstore.Int(id), relstore.Text(d.String()),
				relstore.Text(d.Family().String()), relstore.Int(int64(d.FirstReleaseYear())),
			})
		if err != nil {
			return nil, fmt.Errorf("vulndb: seed os table: %w", err)
		}
	}
	if err := db.prepareStatements(); err != nil {
		return nil, err
	}
	return db, nil
}

// SetParallelism sets the SQL engine's query worker count (the join
// probe pool), mirroring core.Study.SetParallelism. Results are
// identical at any worker count.
func (db *DB) SetParallelism(n int) { db.store.SetParallelism(n) }

// Store exposes the underlying relational store for ad-hoc SQL.
func (db *DB) Store() *relstore.DB { return db.store }

// InsertEntry loads one NVD entry through the Figure 1 schema. Entries
// without any clustered OS product are skipped (the paper keeps only its
// 64 CPEs); the return value reports whether the entry was stored.
func (db *DB) InsertEntry(e *cve.Entry, classifier *classify.Classifier) (bool, error) {
	clustered := false
	for _, p := range e.Products {
		if _, ok := db.registry.Cluster(p); ok {
			clustered = true
			break
		}
	}
	if !clustered {
		return false, nil
	}
	db.nextVuln++
	vulnID := db.nextVuln
	err := relstore.InsertRow(db.store, "vulnerability",
		[]string{"id", "name", "year", "published", "summary"},
		[]relstore.Value{
			relstore.Int(vulnID), relstore.Text(e.ID.String()),
			relstore.Int(int64(e.Year())), relstore.Time(e.Published), relstore.Text(e.Summary),
		})
	if err != nil {
		return false, err
	}

	class := classifier.Classify(e)
	if err := relstore.InsertRow(db.store, "vulnerability_type",
		[]string{"vuln_id", "type"},
		[]relstore.Value{relstore.Int(vulnID), relstore.Text(class.String())}); err != nil {
		return false, err
	}
	validity := classify.EntryValidity(e)
	if err := relstore.InsertRow(db.store, "security_protection",
		[]string{"vuln_id", "validity"},
		[]relstore.Value{relstore.Int(vulnID), relstore.Text(validity.String())}); err != nil {
		return false, err
	}
	if !e.CVSS.IsZero() {
		v := e.CVSS
		err := relstore.InsertRow(db.store, "cvss",
			[]string{"vuln_id", "access_vector", "access_complexity", "authentication",
				"conf_impact", "integ_impact", "avail_impact", "score", "remote"},
			[]relstore.Value{
				relstore.Int(vulnID), relstore.Text(v.AV.String()), relstore.Text(v.AC.String()),
				relstore.Text(v.Au.String()), relstore.Text(v.C.String()), relstore.Text(v.I.String()),
				relstore.Text(v.A.String()), relstore.Float(v.BaseScore()), relstore.Bool(v.AV.Remote()),
			})
		if err != nil {
			return false, err
		}
	}

	for _, p := range e.Products {
		prodID, err := db.internProduct(p)
		if err != nil {
			return false, err
		}
		if err := relstore.InsertRow(db.store, "vuln_product",
			[]string{"vuln_id", "product_id", "version"},
			[]relstore.Value{relstore.Int(vulnID), relstore.Int(prodID), relstore.Text(p.Version)}); err != nil {
			return false, err
		}
		if d, ok := db.registry.Cluster(p); ok && p.IsOS() {
			if err := relstore.InsertRow(db.store, "os_vuln",
				[]string{"os_id", "vuln_id", "version"},
				[]relstore.Value{relstore.Int(db.osIDs[d]), relstore.Int(vulnID), relstore.Text(p.Version)}); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

func (db *DB) internProduct(p cpe.Name) (int64, error) {
	key := p.Part.String() + ":" + p.Vendor + ":" + p.Product
	if id, ok := db.productID[key]; ok {
		return id, nil
	}
	db.nextProd++
	id := db.nextProd
	err := relstore.InsertRow(db.store, "product",
		[]string{"id", "part", "vendor", "name"},
		[]relstore.Value{relstore.Int(id), relstore.Text(p.Part.String()), relstore.Text(p.Vendor), relstore.Text(p.Product)})
	if err != nil {
		return 0, err
	}
	db.productID[key] = id
	return id, nil
}

// LoadEntries bulk-inserts entries, returning how many were stored and
// how many skipped.
func (db *DB) LoadEntries(entries []*cve.Entry, classifier *classify.Classifier) (stored, skipped int, err error) {
	for _, e := range entries {
		ok, err := db.InsertEntry(e, classifier)
		if err != nil {
			return stored, skipped, fmt.Errorf("vulndb: %s: %w", e.ID, err)
		}
		if ok {
			stored++
		} else {
			skipped++
		}
	}
	return stored, skipped, nil
}

// Entries reconstructs cve.Entry values from the schema, in insertion
// order. The round trip preserves everything internal/core consumes.
func (db *DB) Entries() ([]*cve.Entry, error) {
	products := make(map[int64]cpe.Name)
	err := relstore.ScanTable(db.store, "product", func(row []relstore.Value) bool {
		part, _ := cpe.ParsePart(row[1].AsText())
		products[row[0].AsInt()] = cpe.Name{Part: part, Vendor: row[2].AsText(), Product: row[3].AsText()}
		return true
	})
	if err != nil {
		return nil, err
	}

	type build struct {
		entry *cve.Entry
		order int64
	}
	byID := make(map[int64]*build)
	var orderedIDs []int64
	err = relstore.ScanTable(db.store, "vulnerability", func(row []relstore.Value) bool {
		id, err := cve.ParseID(row[1].AsText())
		if err != nil {
			return true
		}
		vid := row[0].AsInt()
		byID[vid] = &build{
			entry: &cve.Entry{ID: id, Published: row[3].AsTime(), Summary: row[4].AsText()},
			order: vid,
		}
		orderedIDs = append(orderedIDs, vid)
		return true
	})
	if err != nil {
		return nil, err
	}

	err = relstore.ScanTable(db.store, "cvss", func(row []relstore.Value) bool {
		b, ok := byID[row[0].AsInt()]
		if !ok {
			return true
		}
		vec, err := vectorFromRow(row)
		if err == nil {
			b.entry.CVSS = vec
		}
		return true
	})
	if err != nil {
		return nil, err
	}

	err = relstore.ScanTable(db.store, "vuln_product", func(row []relstore.Value) bool {
		b, ok := byID[row[0].AsInt()]
		if !ok {
			return true
		}
		p, ok := products[row[1].AsInt()]
		if !ok {
			return true
		}
		p.Version = row[2].AsText()
		b.entry.Products = append(b.entry.Products, p)
		return true
	})
	if err != nil {
		return nil, err
	}

	out := make([]*cve.Entry, 0, len(orderedIDs))
	for _, vid := range orderedIDs {
		out = append(out, byID[vid].entry)
	}
	return out, nil
}

// vectorFromRow rebuilds a CVSS vector from the cvss table's metric
// spellings.
func vectorFromRow(row []relstore.Value) (cvss.Vector, error) {
	var v cvss.Vector
	switch row[1].AsText() {
	case "NETWORK":
		v.AV = cvss.AccessNetwork
	case "ADJACENT_NETWORK":
		v.AV = cvss.AccessAdjacentNetwork
	case "LOCAL":
		v.AV = cvss.AccessLocal
	default:
		return v, fmt.Errorf("vulndb: bad access vector %q", row[1].AsText())
	}
	switch row[2].AsText() {
	case "HIGH":
		v.AC = cvss.ComplexityHigh
	case "MEDIUM":
		v.AC = cvss.ComplexityMedium
	case "LOW":
		v.AC = cvss.ComplexityLow
	}
	switch row[3].AsText() {
	case "MULTIPLE_INSTANCES":
		v.Au = cvss.AuthMultiple
	case "SINGLE_INSTANCE":
		v.Au = cvss.AuthSingle
	case "NONE":
		v.Au = cvss.AuthNone
	}
	impact := func(s string) cvss.Impact {
		switch s {
		case "PARTIAL":
			return cvss.ImpactPartial
		case "COMPLETE":
			return cvss.ImpactComplete
		default:
			return cvss.ImpactNone
		}
	}
	v.C = impact(row[4].AsText())
	v.I = impact(row[5].AsText())
	v.A = impact(row[6].AsText())
	return v, nil
}

// CountByOS runs the paper's first aggregation as SQL: valid
// vulnerabilities per OS name.
func (db *DB) CountByOS() (map[string]int, error) {
	res, err := db.stCountByOS.Query()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(res.Rows))
	for _, row := range res.Rows {
		out[row[0].AsText()] = int(row[1].AsInt())
	}
	return out, nil
}

// SharedCount runs the pairwise-overlap aggregation as SQL: distinct
// valid vulnerabilities affecting both named OSes. Names bind as typed
// parameters, so quote-bearing names neither break the query nor
// inject SQL. For the full Table III matrix use SharedMatrix, which
// answers every pair in one grouped plan.
func (db *DB) SharedCount(a, b string) (int, error) {
	n, err := db.stSharedCount.QueryInt(relstore.Text(a), relstore.Text(b))
	return int(n), err
}

// PairShared is one cell of the SQL-computed Table III matrix.
type PairShared struct {
	A, B   string
	Shared int
}

// SharedMatrix materializes the paper's whole Table III v(AB) column in
// one grouped self-join plan: distinct valid vulnerabilities shared by
// every unordered OS pair, in os-id (presentation) order with zero
// cells included — the same pairs, order and counts as
// core.Study.PairMatrix under the FatServer profile. One query replaces
// the n*(n-1)/2 per-pair SharedCount round trips.
func (db *DB) SharedMatrix() ([]PairShared, error) {
	type osRow struct {
		id   int64
		name string
	}
	var oses []osRow
	err := relstore.ScanTable(db.store, "os", func(row []relstore.Value) bool {
		oses = append(oses, osRow{row[0].AsInt(), row[1].AsText()})
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(oses, func(i, j int) bool { return oses[i].id < oses[j].id })

	res, err := db.stSharedMatrix.Query()
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int, len(res.Rows))
	for _, row := range res.Rows {
		counts[row[0].AsText()+"\x00"+row[1].AsText()] = int(row[2].AsInt())
	}
	out := make([]PairShared, 0, len(oses)*(len(oses)-1)/2)
	for i := 0; i < len(oses); i++ {
		for j := i + 1; j < len(oses); j++ {
			a, b := oses[i].name, oses[j].name
			out = append(out, PairShared{A: a, B: b, Shared: counts[a+"\x00"+b]})
		}
	}
	return out, nil
}

// Save persists the database to disk; Open loads it back.
func (db *DB) Save(path string) error { return db.store.Save(path) }

// Open loads a saved database. Note that the loader's intern tables are
// rebuilt so further inserts keep working.
func Open(path string) (*DB, error) {
	store, err := relstore.Load(path)
	if err != nil {
		return nil, err
	}
	db := &DB{
		store:     store,
		registry:  osmap.NewRegistry(),
		osIDs:     make(map[osmap.Distro]int64, osmap.NumDistros),
		productID: make(map[string]int64),
	}
	err = relstore.ScanTable(store, "os", func(row []relstore.Value) bool {
		if d, err := osmap.ParseDistro(row[1].AsText()); err == nil {
			db.osIDs[d] = row[0].AsInt()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	err = relstore.ScanTable(store, "product", func(row []relstore.Value) bool {
		key := row[1].AsText() + ":" + row[2].AsText() + ":" + row[3].AsText()
		db.productID[key] = row[0].AsInt()
		if row[0].AsInt() > db.nextProd {
			db.nextProd = row[0].AsInt()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	err = relstore.ScanTable(store, "vulnerability", func(row []relstore.Value) bool {
		if row[0].AsInt() > db.nextVuln {
			db.nextVuln = row[0].AsInt()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if err := db.prepareStatements(); err != nil {
		return nil, err
	}
	return db, nil
}
