//go:build !race

package vulndb

// matrixTestEntries sizes the synthetic corpus of the SQL-vs-Study
// identity test: a scaled-down seeded corpus in ordinary runs, smaller
// still under the race detector (whose ~10x slowdown would dominate
// CI). The full 100k-entry scale runs in the benchmarks.
const matrixTestEntries = 20_000
