package vulndb

import (
	"reflect"
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/relstore"
)

// studyMatrix renders a Study's FatServer pairwise overlaps in the
// shape SharedMatrix returns, for byte-identity comparison.
func studyMatrix(s *core.Study) []PairShared {
	pairs := s.Pairs()
	out := make([]PairShared, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, PairShared{
			A: p.A.String(), B: p.B.String(),
			Shared: s.Overlap(p, core.FatServer),
		})
	}
	return out
}

// TestSharedMatrixMatchesStudyCalibrated: the SQL Table III matrix is
// byte-identical to the in-memory Study's pairwise output on the
// calibrated corpus, under both SQL executors and at workers 1 and 4.
func TestSharedMatrixMatchesStudyCalibrated(t *testing.T) {
	db, c := loadedDB(t)
	want := studyMatrix(core.NewStudy(c.Entries))
	for _, mode := range []relstore.PlanMode{relstore.PlanJoin, relstore.PlanNaive} {
		db.Store().SetPlanMode(mode)
		for _, workers := range []int{1, 4} {
			db.SetParallelism(workers)
			got, err := db.SharedMatrix()
			if err != nil {
				t.Fatalf("SharedMatrix(mode=%d, workers=%d): %v", mode, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("SQL matrix diverges from Study (mode=%d, workers=%d):\nsql   %v\nstudy %v",
					mode, workers, got, want)
			}
		}
	}
	db.Store().SetPlanMode(relstore.PlanJoin)

	// Spot-check: the grouped matrix agrees with the per-pair query.
	for _, cell := range []int{0, 7, len(want) - 1} {
		n, err := db.SharedCount(want[cell].A, want[cell].B)
		if err != nil {
			t.Fatalf("SharedCount(%s, %s): %v", want[cell].A, want[cell].B, err)
		}
		if n != want[cell].Shared {
			t.Errorf("SharedCount(%s, %s) = %d, matrix %d",
				want[cell].A, want[cell].B, n, want[cell].Shared)
		}
	}
}

// TestSharedMatrixMatchesStudySynthetic: same identity over a seeded
// scaled-down synthetic "modern NVD" corpus and its wider universe.
func TestSharedMatrixMatchesStudySynthetic(t *testing.T) {
	entries := matrixTestEntries
	if testing.Short() {
		entries = matrixTestEntries / 4
	}
	sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
		Entries: entries, Distros: 16, Seed: 7, Workers: 4,
	})
	if err != nil {
		t.Fatalf("GenerateSynthetic: %v", err)
	}
	db, err := CreateForRegistry(sc.Registry)
	if err != nil {
		t.Fatalf("CreateForRegistry: %v", err)
	}
	stored, _, err := db.LoadEntriesParallel(sc.Entries, classify.NewClassifier(), 4)
	if err != nil {
		t.Fatalf("LoadEntriesParallel: %v", err)
	}
	if stored == 0 {
		t.Fatal("synthetic corpus stored nothing")
	}
	s := core.NewStudy(sc.Entries, core.WithRegistry(sc.Registry), core.WithParallelism(4))
	want := studyMatrix(s)
	for _, workers := range []int{1, 4} {
		db.SetParallelism(workers)
		got, err := db.SharedMatrix()
		if err != nil {
			t.Fatalf("SharedMatrix(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("synthetic SQL matrix diverges from Study at workers=%d", workers)
		}
	}
}

// TestSharedCountQuoteBearingName: an OS name containing quotes flows
// through the parameterized query path instead of breaking the SQL (the
// old fmt.Sprintf interpolation produced a parse error — or worse).
func TestSharedCountQuoteBearingName(t *testing.T) {
	db, _ := loadedDB(t)
	hostile := `O'Brien''s BSD; DROP TABLE os --`
	err := relstore.InsertRow(db.Store(), "os",
		[]string{"id", "name", "family", "first_release"},
		[]relstore.Value{
			relstore.Int(99), relstore.Text(hostile),
			relstore.Text("BSD"), relstore.Int(1999),
		})
	if err != nil {
		t.Fatalf("seed quoted os row: %v", err)
	}
	n, err := db.SharedCount(hostile, "NetBSD")
	if err != nil {
		t.Fatalf("SharedCount with quoted name: %v", err)
	}
	if n != 0 {
		t.Fatalf("quoted-name SharedCount = %d, want 0", n)
	}
	// The real pair still answers correctly afterwards.
	if _, err := db.SharedCount("OpenBSD", "NetBSD"); err != nil {
		t.Fatalf("SharedCount after quoted query: %v", err)
	}
	// And the matrix includes the new OS with zero overlaps everywhere.
	m, err := db.SharedMatrix()
	if err != nil {
		t.Fatalf("SharedMatrix with quoted os row: %v", err)
	}
	found := false
	for _, cell := range m {
		if cell.A == hostile || cell.B == hostile {
			found = true
			if cell.Shared != 0 {
				t.Fatalf("quoted OS shares %d vulnerabilities", cell.Shared)
			}
		}
	}
	if !found {
		t.Fatal("quoted OS missing from matrix")
	}
}
