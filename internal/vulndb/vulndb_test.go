package vulndb

import (
	"path/filepath"
	"testing"
	"time"

	"osdiversity/internal/classify"
	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/nvdfeed"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

func loadedDB(t *testing.T) (*DB, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	db, err := Create()
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	stored, skipped, err := db.LoadEntries(c.Entries, classify.NewClassifier())
	if err != nil {
		t.Fatalf("LoadEntries: %v", err)
	}
	if skipped != 0 {
		t.Fatalf("calibrated corpus skipped %d entries", skipped)
	}
	if stored != len(c.Entries) {
		t.Fatalf("stored %d of %d", stored, len(c.Entries))
	}
	return db, c
}

func TestSQLAggregationsMatchPaper(t *testing.T) {
	db, _ := loadedDB(t)
	counts, err := db.CountByOS()
	if err != nil {
		t.Fatalf("CountByOS: %v", err)
	}
	for _, d := range osmap.Distros() {
		if counts[d.String()] != paperdata.ValidCounts[d] {
			t.Errorf("SQL count %v = %d, paper %d", d, counts[d.String()], paperdata.ValidCounts[d])
		}
	}
	shared, err := db.SharedCount("OpenBSD", "NetBSD")
	if err != nil {
		t.Fatalf("SharedCount: %v", err)
	}
	if want := paperdata.PairTable[osmap.MakePair(osmap.OpenBSD, osmap.NetBSD)].All; shared != want {
		t.Errorf("SQL shared OpenBSD-NetBSD = %d, paper %d", shared, want)
	}
}

func TestRoundTripThroughSchema(t *testing.T) {
	db, c := loadedDB(t)
	back, err := db.Entries()
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(back) != len(c.Entries) {
		t.Fatalf("round trip lost entries: %d of %d", len(back), len(c.Entries))
	}
	// The study over the reconstructed entries must equal the study over
	// the originals on the headline tables.
	s := core.NewStudy(back)
	for _, p := range osmap.AllPairs() {
		want := paperdata.PairTable[p]
		if got := s.Overlap(p, core.FatServer); got != want.All {
			t.Errorf("%v All after round trip = %d, want %d", p, got, want.All)
		}
		if got := s.Overlap(p, core.IsolatedThinServer); got != want.Remote {
			t.Errorf("%v Remote after round trip = %d, want %d", p, got, want.Remote)
		}
	}
}

func TestFullPipelineFeedsToStudy(t *testing.T) {
	// The complete reproduction pipeline: calibrated corpus → NVD XML
	// feeds on disk → streaming parse → Figure 1 SQL schema → entry
	// reconstruction → analysis — then spot-check the paper's numbers.
	c, err := corpus.Generate()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Write one feed per publication year, like NVD distributes them.
	byYear := make(map[int][]*cve.Entry)
	for _, e := range c.Entries {
		byYear[e.Year()] = append(byYear[e.Year()], e)
	}
	var paths []string
	for year, entries := range byYear {
		cve.SortEntries(entries)
		path := filepath.Join(dir, feedName(year))
		if err := nvdfeed.WriteFile(path, feedLabel(year), entries); err != nil {
			t.Fatalf("WriteFile(%d): %v", year, err)
		}
		paths = append(paths, path)
	}

	db, err := Create()
	if err != nil {
		t.Fatal(err)
	}
	classifier := classify.NewClassifier()
	total := 0
	for _, path := range paths {
		entries, err := nvdfeed.ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", path, err)
		}
		stored, _, err := db.LoadEntries(entries, classifier)
		if err != nil {
			t.Fatal(err)
		}
		total += stored
	}
	if total != len(c.Entries) {
		t.Fatalf("pipeline stored %d of %d entries", total, len(c.Entries))
	}

	back, err := db.Entries()
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStudy(back)
	rows, distinct := s.ValidityTable()
	if distinct.Valid != paperdata.DistinctValid {
		t.Errorf("distinct valid after full pipeline = %d, want %d", distinct.Valid, paperdata.DistinctValid)
	}
	for _, row := range rows {
		if row.Valid != paperdata.ValidCounts[row.Distro] {
			t.Errorf("%v after full pipeline = %d, want %d", row.Distro, row.Valid, paperdata.ValidCounts[row.Distro])
		}
	}
	hist, obs := s.EvaluateConfiguration(paperdata.Figure3Sets[1].Members, paperdata.HistoryEndYear)
	want := paperdata.Figure3Expected["Set1"]
	if hist != want.History || obs != want.Observed {
		t.Errorf("Set1 after full pipeline = %d/%d, want %d/%d", hist, obs, want.History, want.Observed)
	}
}

func TestSaveOpen(t *testing.T) {
	db, _ := loadedDB(t)
	path := filepath.Join(t.TempDir(), "study.db")
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	counts, err := back.CountByOS()
	if err != nil {
		t.Fatal(err)
	}
	if counts["Debian"] != paperdata.ValidCounts[osmap.Debian] {
		t.Errorf("reloaded Debian count = %d", counts["Debian"])
	}
	// The reloaded DB accepts further inserts (intern tables rebuilt).
	extra := &cve.Entry{
		ID:        cve.MustID("CVE-2010-9998"),
		Published: mustTime(t),
		Summary:   "Integer overflow in the kernel memory management allows remote attackers to execute arbitrary code.",
		Products:  []cpe.Name{mustCPE(t, "cpe:/o:debian:debian_linux:5.0")},
	}
	ok, err := back.InsertEntry(extra, classify.NewClassifier())
	if err != nil || !ok {
		t.Fatalf("insert after reload: %v, %v", ok, err)
	}
	counts, err = back.CountByOS()
	if err != nil {
		t.Fatal(err)
	}
	if counts["Debian"] != paperdata.ValidCounts[osmap.Debian]+1 {
		t.Errorf("post-reload insert not visible: Debian = %d", counts["Debian"])
	}
}

func mustTime(t *testing.T) time.Time {
	t.Helper()
	return time.Date(2010, time.March, 3, 12, 0, 0, 0, time.UTC)
}

func mustCPE(t *testing.T, uri string) cpe.Name {
	t.Helper()
	n, err := cpe.Parse(uri)
	if err != nil {
		t.Fatalf("cpe.Parse(%q): %v", uri, err)
	}
	return n
}

func TestSkipsUnclusteredEntries(t *testing.T) {
	db, err := Create()
	if err != nil {
		t.Fatal(err)
	}
	exotic := &cve.Entry{
		ID:        cve.MustID("CVE-2010-9999"),
		Published: mustTime(t),
		Summary:   "Flaw in an exotic platform.",
		Products:  nil,
	}
	exotic.Products = append(exotic.Products, mustCPE(t, "cpe:/o:acme:exotic_rtos:1.0"))
	stored, skipped, err := db.LoadEntries([]*cve.Entry{exotic}, classify.NewClassifier())
	if err != nil {
		t.Fatal(err)
	}
	if stored != 0 || skipped != 1 {
		t.Errorf("stored/skipped = %d/%d, want 0/1", stored, skipped)
	}
}

func feedName(year int) string {
	return "nvdcve-2.0-" + itoa(year) + ".xml.gz"
}

func feedLabel(year int) string { return "CVE-" + itoa(year) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
