package core

import (
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

var studyCache *Study

// paperStudy builds the Study over the calibrated corpus: the full
// end-to-end check that the analysis engine re-derives the paper.
func paperStudy(t testing.TB) *Study {
	t.Helper()
	if studyCache == nil {
		c, err := corpus.Generate()
		if err != nil {
			t.Fatalf("corpus.Generate: %v", err)
		}
		studyCache = NewStudy(c.Entries)
	}
	return studyCache
}

func TestStudyTableI(t *testing.T) {
	s := paperStudy(t)
	rows, distinct := s.ValidityTable()
	if len(rows) != osmap.NumDistros {
		t.Fatalf("ValidityTable returned %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Valid != paperdata.ValidCounts[row.Distro] {
			t.Errorf("%v: valid = %d, paper %d", row.Distro, row.Valid, paperdata.ValidCounts[row.Distro])
		}
		inv := paperdata.InvalidCounts[row.Distro]
		if row.Unknown != inv.Unknown || row.Unspecified != inv.Unspecified || row.Disputed != inv.Disputed {
			t.Errorf("%v: invalid = %d/%d/%d, paper %d/%d/%d", row.Distro,
				row.Unknown, row.Unspecified, row.Disputed, inv.Unknown, inv.Unspecified, inv.Disputed)
		}
	}
	if distinct.Valid != paperdata.DistinctValid {
		t.Errorf("distinct valid = %d, paper %d", distinct.Valid, paperdata.DistinctValid)
	}
	if distinct.Unknown != paperdata.DistinctInvalid.Unknown ||
		distinct.Unspecified != paperdata.DistinctInvalid.Unspecified ||
		distinct.Disputed != paperdata.DistinctInvalid.Disputed {
		t.Errorf("distinct invalid = %+v", distinct)
	}
}

func TestStudyTableII(t *testing.T) {
	s := paperStudy(t)
	rows, shares := s.ClassTable()
	for _, row := range rows {
		want := paperdata.ClassTable[row.Distro]
		if row.Driver != want.Driver || row.Kernel != want.Kernel ||
			row.SysSoft != want.SysSoft || row.App != want.App {
			t.Errorf("%v: classes = %+v, paper %+v", row.Distro, row, want)
		}
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("class shares sum to %.2f%%", sum)
	}
}

func TestStudyTableIII(t *testing.T) {
	s := paperStudy(t)
	for _, p := range osmap.AllPairs() {
		want := paperdata.PairTable[p]
		if got := s.Overlap(p, FatServer); got != want.All {
			t.Errorf("%v All: got %d, paper %d", p, got, want.All)
		}
		if got := s.Overlap(p, ThinServer); got != want.NoApp {
			t.Errorf("%v NoApp: got %d, paper %d", p, got, want.NoApp)
		}
		if got := s.Overlap(p, IsolatedThinServer); got != want.Remote {
			t.Errorf("%v Remote: got %d, paper %d", p, got, want.Remote)
		}
	}
	// And the v(A) totals per profile.
	for _, d := range osmap.Distros() {
		if got := s.Total(d, FatServer); got != paperdata.ValidCounts[d] {
			t.Errorf("%v fat total = %d, paper %d", d, got, paperdata.ValidCounts[d])
		}
		if got := s.Total(d, ThinServer); got != paperdata.ClassTable[d].NonApp() {
			t.Errorf("%v thin total = %d, paper %d", d, got, paperdata.ClassTable[d].NonApp())
		}
		if got := s.Total(d, IsolatedThinServer); got != paperdata.RemoteTotals[d] {
			t.Errorf("%v remote total = %d, paper %d", d, got, paperdata.RemoteTotals[d])
		}
	}
}

func TestStudyTableIV(t *testing.T) {
	s := paperStudy(t)
	for _, p := range osmap.AllPairs() {
		got := s.PartBreakdown(p)
		want := paperdata.PartTable[p]
		if got.Driver != want.Driver || got.Kernel != want.Kernel || got.SysSoft != want.SysSoft {
			t.Errorf("%v: parts = %+v, paper %+v", p, got, want)
		}
	}
}

func TestStudyTableV(t *testing.T) {
	s := paperStudy(t)
	for p, want := range paperdata.PeriodTable {
		got := s.PeriodSplit(p, paperdata.HistoryEndYear)
		if got.History != want.History || got.Observed != want.Observed {
			t.Errorf("%v: split = %+v, paper %+v", p, got, want)
		}
	}
}

func TestStudyTableVI(t *testing.T) {
	s := paperStudy(t)
	labels := map[string]struct {
		d osmap.Distro
		v string
	}{
		"Debian2.1":  {osmap.Debian, "2.1"},
		"Debian3.0":  {osmap.Debian, "3.0"},
		"Debian4.0":  {osmap.Debian, "4.0"},
		"RedHat6.2*": {osmap.RedHat, "6.2*"},
		"RedHat4.0":  {osmap.RedHat, "4.0"},
		"RedHat5.0":  {osmap.RedHat, "5.0"},
	}
	for cell, want := range paperdata.ReleaseTable {
		a, b := labels[cell.A], labels[cell.B]
		if got := s.ReleaseOverlap(a.d, a.v, b.d, b.v); got != want {
			t.Errorf("%s-%s: got %d, paper %d", cell.A, cell.B, got, want)
		}
	}
}

func TestStudyKWiseProducts(t *testing.T) {
	s := paperStudy(t)
	kwise := s.KWiseProducts(FatServer)
	for k, want := range paperdata.KWiseProducts {
		if kwise[k] != want {
			t.Errorf("products >= %d: got %d, paper %d", k, kwise[k], want)
		}
	}
	top := s.MostSharedEntries(3)
	if len(top) != 3 {
		t.Fatalf("MostSharedEntries returned %d", len(top))
	}
	if top[0].ID != cve.MustID("CVE-2008-4609") {
		t.Errorf("most shared entry = %v, want CVE-2008-4609", top[0].ID)
	}
}

func TestStudyKWiseClustersMonotone(t *testing.T) {
	s := paperStudy(t)
	kwise := s.KWiseClusters(FatServer)
	for k := 3; k <= 11; k++ {
		if kwise[k] > kwise[k-1] {
			t.Errorf("k-wise not monotone at %d: %d > %d", k, kwise[k], kwise[k-1])
		}
	}
	if kwise[2] == 0 {
		t.Error("no multi-cluster vulnerabilities found")
	}
}

func TestStudyFilterReduction(t *testing.T) {
	s := paperStudy(t)
	got := s.FilterReduction(FatServer, IsolatedThinServer)
	if got < float64(paperdata.FilterReductionPct)-8 || got > float64(paperdata.FilterReductionPct)+8 {
		t.Errorf("Fat->IsolatedThin reduction = %.0f%%, paper says %d%%", got, paperdata.FilterReductionPct)
	}
	if r := s.FilterReduction(FatServer, FatServer); r != 0 {
		t.Errorf("self reduction = %.1f, want 0", r)
	}
}

func TestStudyTemporalSeries(t *testing.T) {
	s := paperStudy(t)
	for _, d := range osmap.Distros() {
		series := s.TemporalSeries(d)
		total := 0
		for y, n := range series {
			if n < 0 {
				t.Fatalf("%v: negative count in %d", d, y)
			}
			total += n
		}
		if total != paperdata.ValidCounts[d] {
			t.Errorf("%v: series sums to %d, paper total %d", d, total, paperdata.ValidCounts[d])
		}
		first := d.FirstReleaseYear()
		for y, n := range series {
			if d != osmap.Windows2000 && y < first && n > 0 {
				t.Errorf("%v: %d vulnerabilities before first release (%d < %d)", d, n, y, first)
			}
		}
	}
	// The paper's §IV-A observation: Windows 2000 appears in entries
	// published before 1999.
	w2k := s.TemporalSeries(osmap.Windows2000)
	pre := w2k[1997] + w2k[1998]
	if pre != paperdata.Windows2000PreReleaseEntries {
		t.Errorf("Windows2000 pre-1999 entries = %d, paper reports %d", pre, paperdata.Windows2000PreReleaseEntries)
	}
}

func TestStudyYearRange(t *testing.T) {
	s := paperStudy(t)
	lo, hi := s.YearRange()
	if lo > 1997 || hi != paperdata.StudyEndYear {
		t.Errorf("year range = [%d, %d]", lo, hi)
	}
}

func TestStudySkipsUnknownProducts(t *testing.T) {
	c, err := corpus.Generate()
	if err != nil {
		t.Fatal(err)
	}
	exotic := &cve.Entry{
		ID:        cve.MustID("CVE-2010-9999"),
		Published: c.Entries[0].Published,
		Summary:   "Buffer overflow in the kernel of an exotic platform.",
		Products:  []cpe.Name{cpe.MustParse("cpe:/o:acme:exotic_rtos:1.0")},
	}
	s := NewStudy(append(append([]*cve.Entry(nil), c.Entries...), exotic))
	if s.SkippedEntries() != 1 {
		t.Errorf("skipped = %d, want 1 (the exotic-platform entry)", s.SkippedEntries())
	}
	if s.ValidEntries() != paperdata.DistinctValid {
		t.Errorf("valid = %d despite skip, want %d", s.ValidEntries(), paperdata.DistinctValid)
	}
}

func TestEmptyStudy(t *testing.T) {
	s := NewStudy(nil)
	if s.ValidEntries() != 0 {
		t.Error("empty study has entries")
	}
	rows, distinct := s.ValidityTable()
	if len(rows) != osmap.NumDistros || distinct.Valid != 0 {
		t.Error("empty study validity table wrong")
	}
	if got := s.Overlap(osmap.MakePair(osmap.Debian, osmap.RedHat), FatServer); got != 0 {
		t.Errorf("empty study overlap = %d", got)
	}
	lo, hi := s.YearRange()
	if lo != 0 || hi != 0 {
		t.Error("empty study year range not zero")
	}
}

func TestProfileStrings(t *testing.T) {
	if FatServer.String() == ThinServer.String() || Profile(0).String() != "Unknown Profile" {
		t.Error("profile names wrong")
	}
	if len(Profiles()) != 3 {
		t.Error("Profiles() wrong length")
	}
}
