package core

import (
	"reflect"
	"sync"
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// The engine-identity suite: the bitset engine must return byte-identical
// tables to the serial reference and the sharded scans, on the calibrated
// paper corpus and on a seeded synthetic modern-NVD corpus, at worker
// counts 1 and 4.

var (
	engineStudiesMu    sync.Mutex
	engineStudiesCache = map[string][]*Study{}
)

// engineStudies builds (once per corpus) one study per (engine, workers)
// combination over the same entries. Index 0 is the serial scan
// reference. Studies are shared across tests, so memoized tables carry
// over and each cell is computed once per engine.
func engineStudies(t *testing.T, name string, entries entriesSource) []*Study {
	t.Helper()
	engineStudiesMu.Lock()
	defer engineStudiesMu.Unlock()
	if s, ok := engineStudiesCache[name]; ok {
		return s
	}
	ents, registry := entries(t)
	mk := func(opts ...Option) *Study {
		if registry != nil {
			opts = append(opts, WithRegistry(registry))
		}
		return NewStudy(ents, opts...)
	}
	studies := []*Study{
		mk(WithEngine(EngineScan)),
		mk(WithEngine(EngineScan), WithParallelism(4)),
		mk(WithEngine(EngineBitset)),
		mk(WithEngine(EngineBitset), WithParallelism(4)),
	}
	engineStudiesCache[name] = studies
	return studies
}

type entriesSource func(t *testing.T) ([]*cve.Entry, *osmap.Registry)

var (
	calibratedOnce sync.Once
	calibratedEnts []*cve.Entry
	calibratedErr  error

	syntheticOnce sync.Once
	syntheticEnts []*cve.Entry
	syntheticReg  *osmap.Registry
	syntheticErr  error
)

func calibratedSource(t *testing.T) ([]*cve.Entry, *osmap.Registry) {
	t.Helper()
	calibratedOnce.Do(func() {
		c, err := corpus.Generate()
		if err != nil {
			calibratedErr = err
			return
		}
		calibratedEnts = c.Entries
	})
	if calibratedErr != nil {
		t.Fatalf("corpus.Generate: %v", calibratedErr)
	}
	return calibratedEnts, nil
}

func syntheticSource(t *testing.T) ([]*cve.Entry, *osmap.Registry) {
	t.Helper()
	syntheticOnce.Do(func() {
		n := syntheticTestEntries
		if testing.Short() {
			n = syntheticTestEntriesShort
		}
		sc, err := corpus.GenerateSynthetic(corpus.SyntheticConfig{
			Entries: n, Distros: 32, Seed: 42, Workers: 4,
		})
		if err != nil {
			syntheticErr = err
			return
		}
		syntheticEnts = sc.Entries
		syntheticReg = sc.Registry
	})
	if syntheticErr != nil {
		t.Fatalf("corpus.GenerateSynthetic: %v", syntheticErr)
	}
	return syntheticEnts, syntheticReg
}

func corpora(t *testing.T) map[string]entriesSource {
	return map[string]entriesSource{
		"calibrated": calibratedSource,
		"synthetic":  syntheticSource,
	}
}

func TestEngineIdentityTables(t *testing.T) {
	for name, src := range corpora(t) {
		t.Run(name, func(t *testing.T) {
			studies := engineStudies(t, name, src)
			ref := studies[0]
			refValidityRows, refValidityDistinct := ref.ValidityTable()
			refClassRows, refShares := ref.ClassTable()
			for si, s := range studies[1:] {
				rows, distinct := s.ValidityTable()
				if !reflect.DeepEqual(rows, refValidityRows) || distinct != refValidityDistinct {
					t.Fatalf("study %d: ValidityTable differs from serial reference", si+1)
				}
				crows, shares := s.ClassTable()
				if !reflect.DeepEqual(crows, refClassRows) || shares != refShares {
					t.Fatalf("study %d: ClassTable differs from serial reference", si+1)
				}
			}
		})
	}
}

func TestEngineIdentityPairsAndTotals(t *testing.T) {
	for name, src := range corpora(t) {
		t.Run(name, func(t *testing.T) {
			studies := engineStudies(t, name, src)
			ref := studies[0]
			for _, profile := range Profiles() {
				refPairs := ref.PairMatrix(profile)
				refTotals := make([]int, 0, len(ref.distros))
				for _, d := range ref.distros {
					refTotals = append(refTotals, ref.Total(d, profile))
				}
				for si, s := range studies[1:] {
					if pm := s.PairMatrix(profile); !reflect.DeepEqual(pm, refPairs) {
						t.Fatalf("study %d: PairMatrix(%v) differs", si+1, profile)
					}
					for di, d := range s.distros {
						if got := s.Total(d, profile); got != refTotals[di] {
							t.Fatalf("study %d: Total(%v, %v) = %d, want %d", si+1, d, profile, got, refTotals[di])
						}
					}
				}
			}
		})
	}
}

func TestEngineIdentityPartsPeriodsWindows(t *testing.T) {
	for name, src := range corpora(t) {
		t.Run(name, func(t *testing.T) {
			studies := engineStudies(t, name, src)
			ref := studies[0]
			lo, hi := ref.YearRange()
			split := (lo + hi) / 2
			window := SelectionWindow{FromYear: lo + 1, ToYear: split}
			for si, s := range studies[1:] {
				for _, p := range ref.pairs {
					if s.PartBreakdown(p) != ref.PartBreakdown(p) {
						t.Fatalf("study %d: PartBreakdown(%v) differs", si+1, p)
					}
					if s.PeriodSplit(p, split) != ref.PeriodSplit(p, split) {
						t.Fatalf("study %d: PeriodSplit(%v, %d) differs", si+1, p, split)
					}
					if s.PairSharedInWindow(p, window) != ref.PairSharedInWindow(p, window) {
						t.Fatalf("study %d: PairSharedInWindow(%v) differs", si+1, p)
					}
				}
				for _, d := range ref.distros {
					if !reflect.DeepEqual(s.TemporalSeries(d), ref.TemporalSeries(d)) {
						t.Fatalf("study %d: TemporalSeries(%v) differs", si+1, d)
					}
					if s.SetCost([]osmap.Distro{d}, window) != ref.SetCost([]osmap.Distro{d}, window) {
						t.Fatalf("study %d: homogeneous SetCost(%v) differs", si+1, d)
					}
				}
			}
		})
	}
}

func TestEngineIdentityKWiseMostSharedReleases(t *testing.T) {
	for name, src := range corpora(t) {
		t.Run(name, func(t *testing.T) {
			studies := engineStudies(t, name, src)
			ref := studies[0]
			refMost := ref.MostSharedEntries(25)
			// Release cells: probe the first two distros' first recorded
			// releases (cheap but exercises the posting-bitset path).
			da, db := ref.distros[0], ref.distros[1]
			var va, vb string
			if rels := ref.registry.Releases(da); len(rels) > 0 {
				va = rels[0].Version
			}
			if rels := ref.registry.Releases(db); len(rels) > 0 {
				vb = rels[0].Version
			}
			refRelease := ref.ReleaseOverlap(da, va, db, vb)
			for si, s := range studies[1:] {
				for _, profile := range Profiles() {
					if !reflect.DeepEqual(s.KWiseClusters(profile), ref.KWiseClusters(profile)) {
						t.Fatalf("study %d: KWiseClusters(%v) differs", si+1, profile)
					}
					if !reflect.DeepEqual(s.KWiseProducts(profile), ref.KWiseProducts(profile)) {
						t.Fatalf("study %d: KWiseProducts(%v) differs", si+1, profile)
					}
				}
				most := s.MostSharedEntries(25)
				if len(most) != len(refMost) {
					t.Fatalf("study %d: MostSharedEntries length %d, want %d", si+1, len(most), len(refMost))
				}
				for i := range most {
					if most[i].ID != refMost[i].ID {
						t.Fatalf("study %d: MostSharedEntries[%d] = %v, want %v", si+1, i, most[i].ID, refMost[i].ID)
					}
				}
				if got := s.ReleaseOverlap(da, va, db, vb); got != refRelease {
					t.Fatalf("study %d: ReleaseOverlap = %d, want %d", si+1, got, refRelease)
				}
			}
		})
	}
}

func TestEngineSwitchKeepsResults(t *testing.T) {
	ents, _ := calibratedSource(t)
	s := NewStudy(ents) // default bitset
	if s.Engine() != EngineBitset {
		t.Fatalf("default engine = %v, want bitset", s.Engine())
	}
	before := s.PairMatrix(IsolatedThinServer)
	s.SetEngine(EngineScan)
	s.ClearCache()
	after := s.PairMatrix(IsolatedThinServer)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("engine switch changed the pair matrix")
	}
}

func TestBitsetRangeKernels(t *testing.T) {
	// 200-bit patterns across word boundaries.
	a := make([]uint64, 4)
	b := make([]uint64, 4)
	set := func(bs []uint64, i int) { bs[i>>6] |= 1 << uint(i&63) }
	idxs := []int{0, 1, 63, 64, 65, 127, 128, 190, 199}
	for _, i := range idxs {
		set(a, i)
		if i%2 == 0 {
			set(b, i)
		}
	}
	for lo := 0; lo <= 200; lo += 7 {
		for hi := lo; hi <= 200; hi += 13 {
			wantA, wantAB := 0, 0
			for _, i := range idxs {
				if i >= lo && i < hi {
					wantA++
					if i%2 == 0 {
						wantAB++
					}
				}
			}
			if got := popcountRange(a, lo, hi); got != wantA {
				t.Fatalf("popcountRange(%d,%d) = %d, want %d", lo, hi, got, wantA)
			}
			if got := andPopcountRange(a, b, lo, hi); got != wantAB {
				t.Fatalf("andPopcountRange(%d,%d) = %d, want %d", lo, hi, got, wantAB)
			}
		}
	}
}
