package core

import (
	"reflect"
	"testing"

	"osdiversity/internal/classify"
	"osdiversity/internal/corpus"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
)

// deltaFixture builds a base entry list plus a delta batch exercising
// every supersession edge: a modified republication (year + products
// change), a valid→invalid flip, a valid→skip flip (no clustered OS
// product left), an invalid→valid flip, and brand-new entries.
type deltaFixture struct {
	base  []*cve.Entry
	delta []*cve.Entry
	// merged is the entry list whose cold NewStudy build the delta-applied
	// study must equal: base minus superseded IDs, then delta in order.
	merged []*cve.Entry
}

func makeDeltaFixture(t *testing.T) *deltaFixture {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	if len(c.Entries) < 40 {
		t.Fatalf("calibrated corpus too small: %d entries", len(c.Entries))
	}
	// Hold out the tail as brand-new delta entries.
	nNew := 5
	base := c.Entries[:len(c.Entries)-nNew]
	fresh := c.Entries[len(c.Entries)-nNew:]

	// Pick victims among the base entries by their digest outcome.
	var validIdx []int
	invalidIdx := -1
	for i, e := range base {
		if !e.HasOSProduct() {
			continue
		}
		if classify.EntryValidity(e) == classify.Valid {
			validIdx = append(validIdx, i)
		} else if invalidIdx < 0 {
			invalidIdx = i
		}
	}
	if len(validIdx) < 3 {
		t.Fatalf("corpus has only %d valid OS entries", len(validIdx))
	}

	modValid := base[validIdx[0]].Clone()
	modValid.Summary = "Heap overflow in the rewritten entry (republished)."
	modValid.Published = modValid.Published.AddDate(2, 0, 0)

	modInvalid := base[validIdx[1]].Clone()
	modInvalid.Summary = "** DISPUTED ** " + modInvalid.Summary

	modSkip := base[validIdx[2]].Clone()
	modSkip.Products = []cpe.Name{{Part: cpe.PartApplication, Vendor: "acme", Product: "widget"}}

	delta := []*cve.Entry{modValid, modInvalid, modSkip}
	if invalidIdx >= 0 {
		invToValid := base[invalidIdx].Clone()
		invToValid.Summary = "Buffer overflow in the formerly disputed entry."
		delta = append(delta, invToValid)
	}
	delta = append(delta, fresh...)

	superseded := make(map[cve.ID]bool, len(delta))
	for _, e := range delta {
		superseded[e.ID] = true
	}
	var merged []*cve.Entry
	for _, e := range base {
		if !superseded[e.ID] {
			merged = append(merged, e)
		}
	}
	merged = append(merged, delta...)
	return &deltaFixture{base: base, delta: delta, merged: merged}
}

// applyInBatches feeds the delta to a DeltaBuilder in fixed-size batches.
func applyInBatches(b *DeltaBuilder, entries []*cve.Entry, batch int) {
	for lo := 0; lo < len(entries); lo += batch {
		hi := lo + batch
		if hi > len(entries) {
			hi = len(entries)
		}
		b.Add(entries[lo:hi]...)
	}
}

// TestDeltaMatchesColdBuild asserts a delta-applied study is
// column-for-column identical (record layout, masks, release references,
// postings, skip count) to a cold build over the merged entry list, for
// any batch split, engine and worker count.
func TestDeltaMatchesColdBuild(t *testing.T) {
	fx := makeDeltaFixture(t)
	for _, tc := range []struct {
		name  string
		batch int
		opts  []Option
	}{
		{"bitset serial batch1", 1, nil},
		{"bitset serial batch3", 3, nil},
		{"bitset parallel", 512, []Option{WithParallelism(4)}},
		{"scan parallel", 2, []Option{WithEngine(EngineScan), WithParallelism(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := NewStudy(fx.base, tc.opts...)
			want := NewStudy(fx.merged, tc.opts...)
			b := NewDeltaBuilder(base)
			applyInBatches(b, fx.delta, tc.batch)
			if got := b.Added(); got != len(fx.delta) {
				t.Fatalf("Added() = %d, want %d", got, len(fx.delta))
			}
			s := b.Finish()
			if !reflect.DeepEqual(s.ExportColumns(), want.ExportColumns()) {
				t.Fatal("delta-applied columns differ from cold build")
			}
			if !reflect.DeepEqual(studyFingerprint(s), studyFingerprint(want)) {
				t.Fatal("delta-applied tables differ from cold build")
			}
			if err := s.SelfCheck(); err != nil {
				t.Fatalf("SelfCheck: %v", err)
			}
		})
	}
}

// TestDeltaLastWriterWinsWithinDelta asserts a delta republishing the
// same identifier twice keeps only the last occurrence, at its arrival
// position.
func TestDeltaLastWriterWinsWithinDelta(t *testing.T) {
	fx := makeDeltaFixture(t)
	dup := fx.delta[0].Clone()
	dup.Summary = "Third revision of the same identifier."
	delta := append(append([]*cve.Entry{}, fx.delta...), dup)

	superseded := make(map[cve.ID]bool)
	for _, e := range delta {
		superseded[e.ID] = true
	}
	var merged []*cve.Entry
	for _, e := range fx.base {
		if !superseded[e.ID] {
			merged = append(merged, e)
		}
	}
	// Within the delta, only each identifier's last occurrence survives.
	last := make(map[cve.ID]int, len(delta))
	for i, e := range delta {
		last[e.ID] = i
	}
	for i, e := range delta {
		if last[e.ID] == i {
			merged = append(merged, e)
		}
	}

	base := NewStudy(fx.base)
	want := NewStudy(merged)
	b := NewDeltaBuilder(base)
	b.Add(delta...)
	s := b.Finish()
	if !reflect.DeepEqual(s.ExportColumns(), want.ExportColumns()) {
		t.Fatal("within-delta duplicate resolution differs from cold build")
	}
}

// TestDeltaOnAdoptedBase asserts the delta path works identically on a
// base adopted from exported columns (the snapshot warm-start shape,
// whose records carry no source entries) — the production reload case:
// boot from snapshot, apply a live delta.
func TestDeltaOnAdoptedBase(t *testing.T) {
	fx := makeDeltaFixture(t)
	entryBase := NewStudy(fx.base)
	adoptedBase, err := FromColumns(entryBase.ExportColumns())
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}

	// Adopted invalid records carry no identifier and cannot be
	// superseded; restrict the delta to valid-record and fresh IDs so
	// both bases resolve it identically.
	validIDs := make(map[cve.ID]bool)
	for _, ref := range entryBase.Vulnerabilities(FatServer) {
		validIDs[ref.ID] = true
	}
	baseIDs := make(map[cve.ID]bool)
	for _, e := range fx.base {
		baseIDs[e.ID] = true
	}
	var delta []*cve.Entry
	for _, e := range fx.delta {
		if validIDs[e.ID] || !baseIDs[e.ID] {
			delta = append(delta, e)
		}
	}

	bd := NewDeltaBuilder(entryBase)
	bd.Add(delta...)
	fromEntries := bd.Finish()

	bd = NewDeltaBuilder(adoptedBase)
	bd.Add(delta...)
	fromAdopted := bd.Finish()

	if !reflect.DeepEqual(fromAdopted.ExportColumns(), fromEntries.ExportColumns()) {
		t.Fatal("delta on adopted base differs from delta on entry-built base")
	}
	if err := fromAdopted.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	// The Table VI path must not touch the (absent) source entries.
	ds := fromAdopted.Distros()
	if n := fromAdopted.ReleaseOverlap(ds[0], "1.0", ds[1], "1.0"); n < 0 {
		t.Fatalf("ReleaseOverlap = %d", n)
	}
}

// TestDeltaBuilderGuards asserts use-after-Finish panics.
func TestDeltaBuilderGuards(t *testing.T) {
	b := NewDeltaBuilder(NewStudy(nil))
	b.Finish()
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Finish did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Add", func() { b.Add(nil...) })
	assertPanics("Finish", func() { b.Finish() })
}
