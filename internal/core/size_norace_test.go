//go:build !race

package core

// syntheticTestEntries is the synthetic-corpus size of the engine
// identity tests: full production scale in ordinary runs, reduced under
// the race detector (whose ~10x slowdown would dominate CI) and -short.
const syntheticTestEntries = 100_000

const syntheticTestEntriesShort = 20_000
