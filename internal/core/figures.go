package core

import (
	"fmt"
	"sort"

	"osdiversity/internal/osmap"
	"osdiversity/internal/stats"
)

// This file quantifies the qualitative observations the paper makes about
// Figure 2: correlated peaks and valleys inside OS families, and the
// decline of BSD/Linux report volume in the last five years of the
// window.

// CorrelationCell is the Pearson correlation between the temporal series
// of two distributions.
type CorrelationCell struct {
	Pair osmap.Pair
	R    float64
	// Valid is false when a correlation could not be computed (short or
	// constant series), in which case R is 0.
	Valid bool
}

// FamilyCorrelations computes pairwise Pearson correlations of the
// yearly publication series within one OS family, over the years where
// both members had shipped.
func (s *Study) FamilyCorrelations(f osmap.Family) []CorrelationCell {
	members := f.Members()
	var out []CorrelationCell
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			a, b := members[i], members[j]
			cell := CorrelationCell{Pair: osmap.MakePair(a, b)}
			xs, ys := s.alignedSince(a, b)
			if r, err := stats.Pearson(xs, ys); err == nil {
				cell.R = r
				cell.Valid = true
			}
			out = append(out, cell)
		}
	}
	return out
}

// alignedSince aligns two temporal series over the years where both
// members are established: from two years after the later first release
// (excluding the launch ramp, which rises mechanically while the sibling
// may already be declining) to the end of the data. When that window is
// shorter than four points, the ramp exclusion is dropped.
func (s *Study) alignedSince(a, b osmap.Distro) (xs, ys []float64) {
	from := a.FirstReleaseYear()
	if fb := b.FirstReleaseYear(); fb > from {
		from = fb
	}
	_, hi := s.YearRange()
	if hi-(from+2) >= 3 {
		from += 2
	}
	sa, sb := s.TemporalSeries(a), s.TemporalSeries(b)
	for y := from; y <= hi; y++ {
		xs = append(xs, float64(sa[y]))
		ys = append(ys, float64(sb[y]))
	}
	return xs, ys
}

// MeanFamilyCorrelation averages the valid within-family correlations.
func (s *Study) MeanFamilyCorrelation(f osmap.Family) (float64, bool) {
	cells := s.FamilyCorrelations(f)
	sum, n := 0.0, 0
	for _, c := range cells {
		if c.Valid {
			sum += c.R
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// TrendReport compares an OS's average yearly report volume over two
// windows — the paper's "less vulnerabilities being reported in the
// recent past (last 5 years)" observation.
type TrendReport struct {
	Distro       osmap.Distro
	EarlyPerYear float64 // average per year before the split
	LatePerYear  float64 // average per year from the split on
	Declining    bool
}

// Trend computes the report for one distribution with the recent window
// starting at fromYear (the paper's "last 5 years" is 2006). The early
// window starts at the OS's first year with data, so pre-release zero
// years do not dilute the early average.
func (s *Study) Trend(d osmap.Distro, fromYear int) TrendReport {
	series := s.TemporalSeries(d)
	lo, hi := s.YearRange()
	for y := lo; y <= hi; y++ {
		if series[y] > 0 {
			lo = y
			break
		}
	}
	var early, late, earlyYears, lateYears float64
	for y := lo; y <= hi; y++ {
		if y < fromYear {
			early += float64(series[y])
			earlyYears++
		} else {
			late += float64(series[y])
			lateYears++
		}
	}
	rep := TrendReport{Distro: d}
	if earlyYears > 0 {
		rep.EarlyPerYear = early / earlyYears
	}
	if lateYears > 0 {
		rep.LatePerYear = late / lateYears
	}
	rep.Declining = rep.LatePerYear < rep.EarlyPerYear
	return rep
}

// FamilyTrend reports whether a family's aggregate volume declines into
// the recent window.
func (s *Study) FamilyTrend(f osmap.Family, fromYear int) (TrendReport, error) {
	members := f.Members()
	if len(members) == 0 {
		return TrendReport{}, fmt.Errorf("core: family %v has no members", f)
	}
	var agg TrendReport
	for _, d := range members {
		r := s.Trend(d, fromYear)
		agg.EarlyPerYear += r.EarlyPerYear
		agg.LatePerYear += r.LatePerYear
	}
	agg.Declining = agg.LatePerYear < agg.EarlyPerYear
	return agg, nil
}

// DiversityScore is an alternative pair metric: 1 − Jaccard overlap of
// the two OSes' vulnerability sets under a profile. 1.0 means fully
// disjoint; the paper's cost (raw shared count) ignores set sizes, so
// this score is the natural normalization for the ablation study.
func (s *Study) DiversityScore(p osmap.Pair, profile Profile) float64 {
	both := s.Overlap(p, profile)
	onlyA := s.Total(p.A, profile) - both
	onlyB := s.Total(p.B, profile) - both
	return 1 - stats.Jaccard(onlyA, onlyB, both)
}

// RankPairsByDiversity orders the universe's pairs by descending
// diversity score under a profile.
func (s *Study) RankPairsByDiversity(profile Profile) []osmap.Pair {
	pairs := s.Pairs()
	score := make(map[osmap.Pair]float64, len(pairs))
	for _, p := range pairs {
		score[p] = s.DiversityScore(p, profile)
	}
	sort.SliceStable(pairs, func(i, j int) bool { return score[pairs[i]] > score[pairs[j]] })
	return pairs
}
