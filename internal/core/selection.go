package core

import (
	"fmt"

	"osdiversity/internal/osmap"
)

// Strategy selects how replica sets are ranked (§IV-C).
type Strategy int

// Selection strategies.
const (
	// MinPairSum ranks sets by the sum of pairwise shared
	// vulnerabilities — the paper's diversity cost.
	MinPairSum Strategy = iota + 1
	// OnePerFamily is MinPairSum restricted to sets drawing at most one
	// OS per family. Under this constraint the paper's printed top-3
	// (Set1, Set2, Set3) emerges exactly.
	OnePerFamily
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case MinPairSum:
		return "min-pair-sum"
	case OnePerFamily:
		return "one-per-family"
	default:
		return "unknown-strategy"
	}
}

// RankedSet is one replica configuration with its diversity cost.
type RankedSet struct {
	Members []osmap.Distro
	// Cost is the pairwise-shared-vulnerability sum over the selection
	// window (the history period when selecting, the observed period
	// when evaluating).
	Cost int
}

// String renders the set as the paper writes it.
func (r RankedSet) String() string {
	out := "{"
	for i, d := range r.Members {
		if i > 0 {
			out += ", "
		}
		out += d.String()
	}
	return fmt.Sprintf("%s} cost=%d", out, r.Cost)
}

// SelectionWindow bounds the years whose vulnerabilities contribute to
// the selection cost.
type SelectionWindow struct {
	FromYear int // inclusive; 0 means no lower bound
	ToYear   int // inclusive; 0 means no upper bound
}

// Contains reports whether a year falls in the window.
func (w SelectionWindow) Contains(year int) bool {
	if w.FromYear != 0 && year < w.FromYear {
		return false
	}
	if w.ToYear != 0 && year > w.ToYear {
		return false
	}
	return true
}

// contains is the internal alias predating the exported form.
func (w SelectionWindow) contains(year int) bool { return w.Contains(year) }

// windowPairCounts returns every pair's Isolated-Thin-Server shared
// count inside the window, indexed by position in osmap.AllPairs().
// RankReplicaSets revisits the same pairs across many subsets, so the
// memoized matrix turns subset enumeration into table lookups.
func (s *Study) windowPairCounts(w SelectionWindow) []int {
	return s.cached(ckey{q: qWindowPairs, a: w.FromYear, b: w.ToYear}, func() any {
		switch {
		case s.useBitset():
			return s.windowPairsBitset(w)
		case s.isParallel():
			return s.windowPairsParallel(w)
		default:
			out := make([]int, len(s.pairs))
			for i, p := range s.pairs {
				out[i] = s.pairSharedInWindowSerial(p, w)
			}
			return out
		}
	}).([]int)
}

// windowTotals returns every distro's Isolated-Thin-Server valid count
// inside the window, indexed by position in osmap.Distros().
func (s *Study) windowTotals(w SelectionWindow) []int {
	return s.cached(ckey{q: qWindowTotals, a: w.FromYear, b: w.ToYear}, func() any {
		switch {
		case s.useBitset():
			return s.windowTotalsBitset(w)
		case s.isParallel():
			return s.windowTotalsParallel(w)
		default:
			out := make([]int, s.nd)
			for i, d := range s.distros {
				n := 0
				for j := range s.records {
					r := &s.records[j]
					if s.affects(r, d) && r.matches(IsolatedThinServer) && w.contains(r.year) {
						n++
					}
				}
				out[i] = n
			}
			return out
		}
	}).([]int)
}

// PairSharedInWindow counts Isolated-Thin-Server shared vulnerabilities
// of a pair published inside the window.
func (s *Study) PairSharedInWindow(p osmap.Pair, w SelectionWindow) int {
	if i, ok := s.pairIdx[p]; ok {
		return s.windowPairCounts(w)[i]
	}
	return s.pairSharedInWindowSerial(p, w)
}

func (s *Study) pairSharedInWindowSerial(p osmap.Pair, w SelectionWindow) int {
	ia, oka := s.index[p.A]
	ib, okb := s.index[p.B]
	if !oka || !okb {
		return 0
	}
	n := 0
	for i := range s.records {
		r := &s.records[i]
		if r.mask.Has(ia) && r.mask.Has(ib) && r.matches(IsolatedThinServer) && w.contains(r.year) {
			n++
		}
	}
	return n
}

// SetCost sums the pairwise shared counts over all pairs of the set —
// the diversity cost the paper minimizes. A single-member set (the
// homogeneous baseline) costs its member's total vulnerabilities in the
// window, since every vulnerability hits all identical replicas.
func (s *Study) SetCost(members []osmap.Distro, w SelectionWindow) int {
	if len(members) == 1 {
		if i, ok := s.index[members[0]]; ok {
			return s.windowTotals(w)[i]
		}
		return 0
	}
	cost := 0
	for _, p := range osmap.PairsOf(members) {
		cost += s.PairSharedInWindow(p, w)
	}
	return cost
}

// SetCostsByWindow evaluates one replica set across many temporal
// windows in a single call — the batch overlap query the scenario
// engine runs per candidate assignment. Each window's cost comes from
// the same cached year-segmented matrices SetCost uses, so the whole
// batch is O(windows × pairs) lookups after the first touch of each
// window.
func (s *Study) SetCostsByWindow(members []osmap.Distro, ws []SelectionWindow) []int {
	out := make([]int, len(ws))
	for i, w := range ws {
		out[i] = s.SetCost(members, w)
	}
	return out
}

// RankReplicaSets enumerates all size-k subsets of the candidates and
// ranks them by window cost ascending (ties broken by presentation
// order). OnePerFamily drops sets with two members from one family.
func (s *Study) RankReplicaSets(candidates []osmap.Distro, k int, strategy Strategy, w SelectionWindow) []RankedSet {
	return RankSetsFromCosts(candidates, k, strategy,
		func(p osmap.Pair) int { return s.PairSharedInWindow(p, w) },
		func(d osmap.Distro) int { return s.SetCost([]osmap.Distro{d}, w) })
}

func onePerFamily(members []osmap.Distro) bool {
	seen := make(map[osmap.Family]bool, 4)
	for _, d := range members {
		f := d.Family()
		if seen[f] {
			return false
		}
		seen[f] = true
	}
	return true
}

// EvaluateConfiguration reproduces one Figure 3 bar pair: the cost of a
// configuration over the history window and over the observed window.
func (s *Study) EvaluateConfiguration(members []osmap.Distro, splitYear int) (history, observed int) {
	history = s.SetCost(members, SelectionWindow{ToYear: splitYear})
	observed = s.SetCost(members, SelectionWindow{FromYear: splitYear + 1})
	return history, observed
}

// MaxDisjointGroup finds the largest subset of the candidates whose
// pairwise Isolated-Thin-Server overlaps in the window are all at most
// maxShared (§IV-C closes by exhibiting a six-OS group with few common
// vulnerabilities). Exhaustive over the ≤2^11 subsets.
func (s *Study) MaxDisjointGroup(candidates []osmap.Distro, maxShared int, w SelectionWindow) []osmap.Distro {
	shared := make(map[osmap.Pair]int)
	for _, p := range osmap.PairsOf(candidates) {
		shared[p] = s.PairSharedInWindow(p, w)
	}
	var best []osmap.Distro
	n := len(candidates)
	for mask := 1; mask < 1<<uint(n); mask++ {
		var group []osmap.Distro
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				group = append(group, candidates[i])
			}
		}
		if len(group) <= len(best) {
			continue
		}
		ok := true
		for _, p := range osmap.PairsOf(group) {
			if shared[p] > maxShared {
				ok = false
				break
			}
		}
		if ok {
			best = group
		}
	}
	return best
}
