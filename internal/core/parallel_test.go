package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// corpusEntries caches the generated corpus across the identity tests.
var (
	corpusOnce    sync.Once
	corpusErr     error
	corpusEntries []*Study // [0] serial, [1] four workers
)

func identityStudies(t *testing.T) (serial, parallel *Study) {
	t.Helper()
	corpusOnce.Do(func() {
		c, err := corpus.Generate()
		if err != nil {
			corpusErr = err
			return
		}
		// Pin the scan engine: these tests cover the serial-vs-sharded
		// record walks; bitset_test.go covers cross-engine identity.
		corpusEntries = []*Study{
			NewStudy(c.Entries, WithEngine(EngineScan)),
			NewStudy(c.Entries, WithEngine(EngineScan), WithParallelism(4)),
		}
	})
	if corpusErr != nil {
		t.Fatalf("corpus.Generate: %v", corpusErr)
	}
	return corpusEntries[0], corpusEntries[1]
}

func TestParallelIngestionIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	if serial.ValidEntries() != parallel.ValidEntries() {
		t.Fatalf("valid: serial %d, parallel %d", serial.ValidEntries(), parallel.ValidEntries())
	}
	if serial.SkippedEntries() != parallel.SkippedEntries() {
		t.Fatalf("skipped: serial %d, parallel %d", serial.SkippedEntries(), parallel.SkippedEntries())
	}
	if len(serial.invalid) != len(parallel.invalid) {
		t.Fatalf("invalid: serial %d, parallel %d", len(serial.invalid), len(parallel.invalid))
	}
	for i := range serial.records {
		a, b := &serial.records[i], &parallel.records[i]
		if a.entry.ID != b.entry.ID || !a.mask.Equal(b.mask) || a.class != b.class ||
			a.remote != b.remote || a.year != b.year || a.products != b.products {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestParallelValidityTableIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	sr, sd := serial.ValidityTable()
	pr, pd := parallel.ValidityTable()
	if !reflect.DeepEqual(sr, pr) || sd != pd {
		t.Fatalf("ValidityTable differs:\nserial   %v %v\nparallel %v %v", sr, sd, pr, pd)
	}
}

func TestParallelClassTableIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	sr, ss := serial.ClassTable()
	pr, ps := parallel.ClassTable()
	if !reflect.DeepEqual(sr, pr) || ss != ps {
		t.Fatalf("ClassTable differs:\nserial   %v %v\nparallel %v %v", sr, ss, pr, ps)
	}
}

func TestParallelPairMatrixIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	for _, profile := range Profiles() {
		sm := serial.PairMatrix(profile)
		pm := parallel.PairMatrix(profile)
		if !reflect.DeepEqual(sm, pm) {
			t.Fatalf("PairMatrix(%v) differs", profile)
		}
		for _, d := range osmap.Distros() {
			if serial.Total(d, profile) != parallel.Total(d, profile) {
				t.Fatalf("Total(%v, %v) differs", d, profile)
			}
		}
	}
}

func TestParallelPartAndPeriodIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	for _, p := range osmap.AllPairs() {
		if serial.PartBreakdown(p) != parallel.PartBreakdown(p) {
			t.Fatalf("PartBreakdown(%v) differs", p)
		}
		for _, year := range []int{2000, 2005} {
			if serial.PeriodSplit(p, year) != parallel.PeriodSplit(p, year) {
				t.Fatalf("PeriodSplit(%v, %d) differs", p, year)
			}
		}
	}
}

func TestParallelTemporalAndKWiseIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	for _, d := range osmap.Distros() {
		if !reflect.DeepEqual(serial.TemporalSeries(d), parallel.TemporalSeries(d)) {
			t.Fatalf("TemporalSeries(%v) differs", d)
		}
	}
	for _, profile := range Profiles() {
		if !reflect.DeepEqual(serial.KWiseClusters(profile), parallel.KWiseClusters(profile)) {
			t.Fatalf("KWiseClusters(%v) differs", profile)
		}
		if !reflect.DeepEqual(serial.KWiseProducts(profile), parallel.KWiseProducts(profile)) {
			t.Fatalf("KWiseProducts(%v) differs", profile)
		}
	}
}

func TestParallelSelectionIdentical(t *testing.T) {
	serial, parallel := identityStudies(t)
	window := SelectionWindow{ToYear: 2005}
	sr := serial.RankReplicaSets(osmap.HistoryEligible(), 4, OnePerFamily, window)
	pr := parallel.RankReplicaSets(osmap.HistoryEligible(), 4, OnePerFamily, window)
	if !reflect.DeepEqual(sr, pr) {
		t.Fatalf("RankReplicaSets differs:\nserial   %v\nparallel %v", sr, pr)
	}
	for _, members := range [][]osmap.Distro{
		{osmap.Debian},
		{osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD},
	} {
		sh, so := serial.EvaluateConfiguration(members, 2005)
		ph, po := parallel.EvaluateConfiguration(members, 2005)
		if sh != ph || so != po {
			t.Fatalf("EvaluateConfiguration(%v) differs: %d/%d vs %d/%d", members, sh, so, ph, po)
		}
	}
	if serial.FilterReduction(FatServer, IsolatedThinServer) != parallel.FilterReduction(FatServer, IsolatedThinServer) {
		t.Fatal("FilterReduction differs")
	}
}

// TestCacheMemoizesAndClears exercises the sync.Once-style result cache:
// repeated queries return equal tables, mutating a returned table does
// not poison the cache, and ClearCache forces a fresh computation.
func TestCacheMemoizesAndClears(t *testing.T) {
	_, parallel := identityStudies(t)
	m1 := parallel.PairMatrix(FatServer)
	first := osmap.AllPairs()[0]
	want := m1[first]
	m1[first] = -1
	if got := parallel.PairMatrix(FatServer)[first]; got != want {
		t.Fatalf("cached PairMatrix poisoned by caller mutation: got %d, want %d", got, want)
	}
	s1 := parallel.TemporalSeries(osmap.Debian)
	s1[1999] = -1
	if got := parallel.TemporalSeries(osmap.Debian)[1999]; got == -1 {
		t.Fatal("cached TemporalSeries poisoned by caller mutation")
	}
	parallel.ClearCache()
	if got := parallel.PairMatrix(FatServer)[first]; got != want {
		t.Fatalf("PairMatrix after ClearCache: got %d, want %d", got, want)
	}
}

// TestConcurrentQueries hammers one Study from many goroutines; run with
// -race this verifies the single-flight cache and the shard workers.
func TestConcurrentQueries(t *testing.T) {
	_, parallel := identityStudies(t)
	parallel.ClearCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, profile := range Profiles() {
				parallel.PairMatrix(profile)
				parallel.KWiseClusters(profile)
			}
			parallel.ValidityTable()
			parallel.ClassTable()
			parallel.TemporalSeries(osmap.Debian)
			parallel.RankReplicaSets(osmap.HistoryEligible(), 3, MinPairSum, SelectionWindow{ToYear: 2005})
		}()
	}
	wg.Wait()
}

// TestParallelClassTableSkipsUnclassified guards the regression where
// the parallel ClassTable counted ClassUnclassified records in the
// Application column: entries whose summaries match no classifier rule
// must be excluded from Table II on both paths, as the seed did.
func TestParallelClassTableSkipsUnclassified(t *testing.T) {
	entries := make([]*cve.Entry, 0, 2*minParallelItems)
	for i := 0; i < 2*minParallelItems; i++ {
		entries = append(entries, &cve.Entry{
			ID:        cve.ID{Year: 2005, Seq: i + 1},
			Published: time.Date(2005, 6, 1, 12, 0, 0, 0, time.UTC),
			Summary:   "An issue was discovered on the platform.", // matches no rule
			Products:  []cpe.Name{cpe.MustParse("cpe:/o:openbsd:openbsd:4.0")},
		})
	}
	serial := NewStudy(entries)
	parallel := NewStudy(entries, WithParallelism(4))
	sr, ss := serial.ClassTable()
	pr, ps := parallel.ClassTable()
	if !reflect.DeepEqual(sr, pr) || ss != ps {
		t.Fatalf("unclassified ClassTable differs:\nserial   %v %v\nparallel %v %v", sr, ss, pr, ps)
	}
	for _, row := range sr {
		if row.Total() != 0 {
			t.Fatalf("unclassified entries leaked into Table II: %+v", row)
		}
	}
}

func TestWithParallelismNormalization(t *testing.T) {
	s := NewStudy(nil, WithParallelism(0))
	if s.Parallelism() < 1 {
		t.Fatalf("Parallelism() = %d after WithParallelism(0)", s.Parallelism())
	}
	s.SetParallelism(3)
	if s.Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", s.Parallelism())
	}
}
