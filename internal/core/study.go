// Package core implements the paper's primary contribution: the
// shared-vulnerability analysis over operating-system distributions.
//
// A Study ingests NVD entries (from feeds, the SQL store, or the
// synthetic corpus — anything that yields cve.Entry values), applies the
// paper's §III methodology (OS-part selection, validity filtering,
// clustering into the 11 distributions, component classification), and
// answers every question the evaluation section asks: per-OS totals,
// class distributions, pairwise and k-wise overlaps under the three
// server profiles, temporal splits, replica-set selection and
// per-release overlaps.
package core

import (
	"fmt"
	"sort"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// Profile selects the server configuration of §IV-B.
type Profile int

// The three profiles, from most to least exposed.
const (
	// FatServer counts every shared vulnerability ("All").
	FatServer Profile = iota + 1
	// ThinServer removes Application-class vulnerabilities.
	ThinServer
	// IsolatedThinServer additionally keeps only remotely exploitable
	// vulnerabilities (CVSS access vector NETWORK or ADJACENT_NETWORK).
	IsolatedThinServer
)

// String names the profile as the paper does.
func (p Profile) String() string {
	switch p {
	case FatServer:
		return "Fat Server"
	case ThinServer:
		return "Thin Server"
	case IsolatedThinServer:
		return "Isolated Thin Server"
	default:
		return "Unknown Profile"
	}
}

// Profiles lists the three profiles in Table III column order.
func Profiles() []Profile { return []Profile{FatServer, ThinServer, IsolatedThinServer} }

// record is the per-entry digest the analyses run on.
type record struct {
	entry    *cve.Entry
	mask     uint16 // bit i set = affects Distros()[i]
	class    classify.Class
	remote   bool
	year     int
	validity classify.Validity
	products int // distinct (vendor, product) platforms
}

// Study is the analysis engine. Construct with NewStudy.
type Study struct {
	registry   *osmap.Registry
	classifier *classify.Classifier
	records    []record // valid entries only
	invalid    []record // entries removed by the validity filter
	skipped    int      // entries with no clustered OS product
	bit        map[osmap.Distro]uint16
}

// Option configures a Study.
type Option func(*Study)

// WithRegistry substitutes the OS registry (the default is the study's
// 64-CPE registry).
func WithRegistry(r *osmap.Registry) Option {
	return func(s *Study) { s.registry = r }
}

// WithClassifier substitutes the component classifier.
func WithClassifier(c *classify.Classifier) Option {
	return func(s *Study) { s.classifier = c }
}

// NewStudy ingests entries and precomputes the per-entry digests.
// Entries that do not touch any of the 11 clustered distributions are
// ignored (the paper keeps only its 64 CPEs); entries tagged Unknown,
// Unspecified or Disputed are kept aside and reported by ValidityTable
// but excluded from every analysis, exactly as in §III-A.
func NewStudy(entries []*cve.Entry, opts ...Option) *Study {
	s := &Study{
		registry:   osmap.NewRegistry(),
		classifier: classify.NewClassifier(),
		bit:        make(map[osmap.Distro]uint16, osmap.NumDistros),
	}
	for _, opt := range opts {
		opt(s)
	}
	for i, d := range osmap.Distros() {
		s.bit[d] = 1 << uint(i)
	}
	for _, e := range entries {
		rec, ok := s.digest(e)
		if !ok {
			s.skipped++
			continue
		}
		if rec.validity != classify.Valid {
			s.invalid = append(s.invalid, rec)
			continue
		}
		s.records = append(s.records, rec)
	}
	return s
}

func (s *Study) digest(e *cve.Entry) (record, bool) {
	var mask uint16
	productSet := make(map[string]bool, len(e.Products))
	for _, p := range e.Products {
		if !p.IsOS() {
			continue
		}
		productSet[p.Vendor+"/"+p.Product] = true
		if d, ok := s.registry.Cluster(p); ok {
			mask |= s.bit[d]
		}
	}
	if mask == 0 {
		return record{}, false
	}
	return record{
		entry:    e,
		mask:     mask,
		class:    s.classifier.Classify(e),
		remote:   e.Remote(),
		year:     e.Year(),
		validity: classify.EntryValidity(e),
		products: len(productSet),
	}, true
}

// matches reports whether the record survives the profile filter.
func (r *record) matches(p Profile) bool {
	switch p {
	case FatServer:
		return true
	case ThinServer:
		return r.class != classify.ClassApplication
	case IsolatedThinServer:
		return r.class != classify.ClassApplication && r.remote
	default:
		return false
	}
}

// affects reports whether the record touches the distribution.
func (s *Study) affects(r *record, d osmap.Distro) bool { return r.mask&s.bit[d] != 0 }

// ValidEntries returns the number of valid entries under analysis.
func (s *Study) ValidEntries() int { return len(s.records) }

// SkippedEntries returns the number of ingested entries that touched no
// clustered OS product.
func (s *Study) SkippedEntries() int { return s.skipped }

// ValidityRow is one row of Table I.
type ValidityRow struct {
	Distro      osmap.Distro
	Valid       int
	Unknown     int
	Unspecified int
	Disputed    int
}

// ValidityTable reproduces Table I: per-OS valid/removed counts plus the
// distinct totals across all OSes.
func (s *Study) ValidityTable() (rows []ValidityRow, distinct ValidityRow) {
	rows = make([]ValidityRow, 0, osmap.NumDistros)
	for _, d := range osmap.Distros() {
		row := ValidityRow{Distro: d}
		for i := range s.records {
			if s.affects(&s.records[i], d) {
				row.Valid++
			}
		}
		for i := range s.invalid {
			if !s.affects(&s.invalid[i], d) {
				continue
			}
			switch s.invalid[i].validity {
			case classify.Unknown:
				row.Unknown++
			case classify.Unspecified:
				row.Unspecified++
			case classify.Disputed:
				row.Disputed++
			}
		}
		rows = append(rows, row)
	}
	distinct.Valid = len(s.records)
	for i := range s.invalid {
		switch s.invalid[i].validity {
		case classify.Unknown:
			distinct.Unknown++
		case classify.Unspecified:
			distinct.Unspecified++
		case classify.Disputed:
			distinct.Disputed++
		}
	}
	return rows, distinct
}

// ClassRow is one row of Table II.
type ClassRow struct {
	Distro  osmap.Distro
	Driver  int
	Kernel  int
	SysSoft int
	App     int
}

// Total returns the row sum.
func (r ClassRow) Total() int { return r.Driver + r.Kernel + r.SysSoft + r.App }

// ClassTable reproduces Table II: per-OS component-class counts and the
// distinct-vulnerability percentage shares of the four classes.
func (s *Study) ClassTable() (rows []ClassRow, shares [4]float64) {
	rows = make([]ClassRow, 0, osmap.NumDistros)
	for _, d := range osmap.Distros() {
		row := ClassRow{Distro: d}
		for i := range s.records {
			if !s.affects(&s.records[i], d) {
				continue
			}
			switch s.records[i].class {
			case classify.ClassDriver:
				row.Driver++
			case classify.ClassKernel:
				row.Kernel++
			case classify.ClassSysSoft:
				row.SysSoft++
			case classify.ClassApplication:
				row.App++
			}
		}
		rows = append(rows, row)
	}
	var counts [4]int
	for i := range s.records {
		switch s.records[i].class {
		case classify.ClassDriver:
			counts[0]++
		case classify.ClassKernel:
			counts[1]++
		case classify.ClassSysSoft:
			counts[2]++
		case classify.ClassApplication:
			counts[3]++
		}
	}
	if n := len(s.records); n > 0 {
		for i := range counts {
			shares[i] = 100 * float64(counts[i]) / float64(n)
		}
	}
	return rows, shares
}

// Total counts the valid vulnerabilities of one distribution under a
// profile (the v(A) columns of Table III).
func (s *Study) Total(d osmap.Distro, profile Profile) int {
	n := 0
	for i := range s.records {
		r := &s.records[i]
		if s.affects(r, d) && r.matches(profile) {
			n++
		}
	}
	return n
}

// Overlap counts the vulnerabilities shared by both members of a pair
// under a profile (the v(AB) columns of Table III).
func (s *Study) Overlap(p osmap.Pair, profile Profile) int {
	both := s.bit[p.A] | s.bit[p.B]
	n := 0
	for i := range s.records {
		r := &s.records[i]
		if r.mask&both == both && r.matches(profile) {
			n++
		}
	}
	return n
}

// PairMatrix computes all 55 pairwise overlaps under a profile.
func (s *Study) PairMatrix(profile Profile) map[osmap.Pair]int {
	out := make(map[osmap.Pair]int, 55)
	for _, p := range osmap.AllPairs() {
		out[p] = s.Overlap(p, profile)
	}
	return out
}

// PartCounts breaks an Isolated-Thin-Server overlap down by component
// class (one row of Table IV).
type PartCounts struct {
	Driver  int
	Kernel  int
	SysSoft int
}

// Total sums the row.
func (p PartCounts) Total() int { return p.Driver + p.Kernel + p.SysSoft }

// PartBreakdown reproduces one pair's Table IV row.
func (s *Study) PartBreakdown(p osmap.Pair) PartCounts {
	both := s.bit[p.A] | s.bit[p.B]
	var out PartCounts
	for i := range s.records {
		r := &s.records[i]
		if r.mask&both != both || !r.matches(IsolatedThinServer) {
			continue
		}
		switch r.class {
		case classify.ClassDriver:
			out.Driver++
		case classify.ClassKernel:
			out.Kernel++
		case classify.ClassSysSoft:
			out.SysSoft++
		}
	}
	return out
}

// PeriodCounts splits an overlap into history and observed periods
// (one cell of Table V).
type PeriodCounts struct {
	History  int
	Observed int
}

// Total sums the cell.
func (p PeriodCounts) Total() int { return p.History + p.Observed }

// PeriodSplit reproduces one pair's Table V cell: Isolated-Thin-Server
// overlap split at splitYear (inclusive on the history side).
func (s *Study) PeriodSplit(p osmap.Pair, splitYear int) PeriodCounts {
	both := s.bit[p.A] | s.bit[p.B]
	var out PeriodCounts
	for i := range s.records {
		r := &s.records[i]
		if r.mask&both != both || !r.matches(IsolatedThinServer) {
			continue
		}
		if r.year <= splitYear {
			out.History++
		} else {
			out.Observed++
		}
	}
	return out
}

// TemporalSeries reproduces one curve of Figure 2: valid vulnerabilities
// per publication year for one distribution.
func (s *Study) TemporalSeries(d osmap.Distro) map[int]int {
	out := make(map[int]int)
	for i := range s.records {
		if s.affects(&s.records[i], d) {
			out[s.records[i].year]++
		}
	}
	return out
}

// YearRange returns the [min, max] publication years across the valid
// data set.
func (s *Study) YearRange() (lo, hi int) {
	if len(s.records) == 0 {
		return 0, 0
	}
	lo, hi = s.records[0].year, s.records[0].year
	for i := range s.records {
		y := s.records[i].year
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}

// KWiseClusters counts, for each set size k, the number of distinct
// valid vulnerabilities affecting at least k of the 11 distributions
// under the profile.
func (s *Study) KWiseClusters(profile Profile) map[int]int {
	out := make(map[int]int)
	for i := range s.records {
		r := &s.records[i]
		if !r.matches(profile) {
			continue
		}
		n := popcount(r.mask)
		for k := 2; k <= n; k++ {
			out[k]++
		}
	}
	return out
}

// KWiseProducts counts distinct valid vulnerabilities affecting at least
// k OS *products* (the granularity of the paper's §IV-B sentences about
// six- and nine-OS vulnerabilities).
func (s *Study) KWiseProducts(profile Profile) map[int]int {
	out := make(map[int]int)
	for i := range s.records {
		r := &s.records[i]
		if !r.matches(profile) {
			continue
		}
		for k := 2; k <= r.products; k++ {
			out[k]++
		}
	}
	return out
}

// MostSharedEntries returns the valid entries affecting the most OS
// products, descending, limited to n.
func (s *Study) MostSharedEntries(n int) []*cve.Entry {
	recs := make([]*record, 0, len(s.records))
	for i := range s.records {
		recs = append(recs, &s.records[i])
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].products != recs[j].products {
			return recs[i].products > recs[j].products
		}
		return recs[i].entry.ID.Less(recs[j].entry.ID)
	})
	if n > len(recs) {
		n = len(recs)
	}
	out := make([]*cve.Entry, n)
	for i := 0; i < n; i++ {
		out[i] = recs[i].entry
	}
	return out
}

// FilterReduction computes §IV-E(1): the average relative reduction of
// pairwise overlap going from one profile to another, over pairs with a
// non-zero baseline.
func (s *Study) FilterReduction(from, to Profile) float64 {
	var sum float64
	n := 0
	for _, p := range osmap.AllPairs() {
		base := s.Overlap(p, from)
		if base == 0 {
			continue
		}
		reduced := s.Overlap(p, to)
		sum += float64(base-reduced) / float64(base)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// ReleaseOverlap counts valid Isolated-Thin-Server vulnerabilities that
// affect both named (distribution, version) releases, deriving release
// membership from the CPE version fields (Table VI).
func (s *Study) ReleaseOverlap(da osmap.Distro, va string, db osmap.Distro, vb string) int {
	n := 0
	for i := range s.records {
		r := &s.records[i]
		if !r.matches(IsolatedThinServer) {
			continue
		}
		if s.affectsRelease(r, da, va) && s.affectsRelease(r, db, vb) {
			n++
		}
	}
	return n
}

func (s *Study) affectsRelease(r *record, d osmap.Distro, version string) bool {
	for _, p := range r.entry.Products {
		if got, ok := s.registry.Cluster(p); ok && got == d && p.Version == version {
			return true
		}
	}
	return false
}

// VulnRef is one valid vulnerability with its affected distributions,
// the digest the attack model consumes.
type VulnRef struct {
	ID      cve.ID
	Distros []osmap.Distro
}

// Vulnerabilities lists the valid vulnerabilities surviving the profile
// filter, each with its affected distributions, sorted by ID.
func (s *Study) Vulnerabilities(profile Profile) []VulnRef {
	var out []VulnRef
	for i := range s.records {
		r := &s.records[i]
		if !r.matches(profile) {
			continue
		}
		ref := VulnRef{ID: r.entry.ID}
		for _, d := range osmap.Distros() {
			if s.affects(r, d) {
				ref.Distros = append(ref.Distros, d)
			}
		}
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// Describe summarizes the study for logs and CLIs.
func (s *Study) Describe() string {
	return fmt.Sprintf("study: %d valid, %d removed, %d skipped entries",
		len(s.records), len(s.invalid), s.skipped)
}

func popcount(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
