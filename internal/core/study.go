// Package core implements the paper's primary contribution: the
// shared-vulnerability analysis over operating-system distributions.
//
// A Study ingests NVD entries (from feeds, the SQL store, or the
// synthetic corpus — anything that yields cve.Entry values), applies the
// paper's §III methodology (OS-part selection, validity filtering,
// clustering into distributions, component classification), and answers
// every question the evaluation section asks: per-OS totals, class
// distributions, pairwise and k-wise overlaps under the three server
// profiles, temporal splits, replica-set selection and per-release
// overlaps. The distro universe comes from the registry — the paper's 11
// distributions by default, arbitrarily many with a synthetic registry —
// and per-entry affected-OS sets are variable-width osmap.Mask bitmasks.
//
// The engine has three execution paths. The serial path (the bodies
// named *Serial below) walks the record slice once per question, exactly
// as the seed implementation did. With WithParallelism(n), n > 1, the
// scan queries instead shard the record slice across a bounded worker
// pool and merge per-shard partial aggregates (see parallel.go). The
// default EngineBitset path (bitset.go) answers the same questions from
// a columnar index — per-distro, per-profile and per-class posting
// bitsets packed as []uint64 with per-year segment offsets — turning
// every table into word-wise AND + popcount loops. All paths produce
// identical tables; completed tables are memoized per Study.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// Profile selects the server configuration of §IV-B.
type Profile int

// The three profiles, from most to least exposed.
const (
	// FatServer counts every shared vulnerability ("All").
	FatServer Profile = iota + 1
	// ThinServer removes Application-class vulnerabilities.
	ThinServer
	// IsolatedThinServer additionally keeps only remotely exploitable
	// vulnerabilities (CVSS access vector NETWORK or ADJACENT_NETWORK).
	IsolatedThinServer
)

// String names the profile as the paper does.
func (p Profile) String() string {
	switch p {
	case FatServer:
		return "Fat Server"
	case ThinServer:
		return "Thin Server"
	case IsolatedThinServer:
		return "Isolated Thin Server"
	default:
		return "Unknown Profile"
	}
}

// Profiles lists the three profiles in Table III column order.
func Profiles() []Profile { return []Profile{FatServer, ThinServer, IsolatedThinServer} }

// record is the per-entry digest the analyses run on.
type record struct {
	entry    *cve.Entry // source entry; nil when adopted from snapshot columns
	id       cve.ID     // identifier, duplicated out of entry so queries never need it
	mask     osmap.Mask // bit i set = affects the study's Distros()[i]
	nos      int        // cached mask popcount (affected distro count)
	class    classify.Class
	remote   bool
	year     int
	validity classify.Validity
	products int // distinct (vendor, product) platforms
}

// Study is the analysis engine. Construct with NewStudy.
type Study struct {
	registry   *osmap.Registry
	classifier *classify.Classifier
	records    []record // valid entries only, sorted by publication year
	invalid    []record // entries removed by the validity filter
	skipped    int      // entries with no clustered OS product

	// distros/index freeze the registry's universe: distros in
	// presentation order, index mapping each to its mask bit.
	distros   []osmap.Distro
	nd        int
	maskWords int
	index     map[osmap.Distro]int

	// pairs/pairIdx freeze the universe's pair order so the sharded
	// all-pairs aggregates and the per-pair accessors agree; pairAt
	// (nd×nd, flat) maps two distro bit indices to that order.
	pairs   []osmap.Pair
	pairIdx map[osmap.Pair]int
	pairAt  []int

	// workerCount is the query/ingestion worker count (1 = serial),
	// atomic so SetParallelism can race with in-flight queries safely.
	workerCount atomic.Int32

	// engineMode selects scan vs bitset execution (see bitset.go).
	engineMode atomic.Int32

	// bitOnce/bidx lazily build the columnar bitset index.
	bitOnce sync.Once
	bidx    *bitIndex

	// relMu/relBits memoize per-(distro, version) release posting
	// bitsets for the Table VI queries.
	relMu   sync.Mutex
	relBits map[releaseKey][]uint64

	// relOnce/relCols lazily flatten each valid record's clustered
	// (distro, CPE version) references into columnar form — the data the
	// Table VI release matching runs on. Feed-built studies derive them
	// from the retained entries on first use; snapshot-loaded studies
	// adopt them directly (the source entries are not persisted).
	relOnce sync.Once
	relCols relColumns

	// synthOnce/synthEntries back MostSharedEntries for snapshot-loaded
	// studies, whose records carry no source entry: minimal entries are
	// materialized once, on demand.
	synthOnce    sync.Once
	synthEntries []*cve.Entry

	cacheMu sync.Mutex
	cache   map[ckey]*cacheEntry
}

// Option configures a Study.
type Option func(*Study)

// WithRegistry substitutes the OS registry (the default is the study's
// 64-CPE, 11-distro registry). The registry also defines the distro
// universe the analyses run over.
func WithRegistry(r *osmap.Registry) Option {
	return func(s *Study) { s.registry = r }
}

// WithClassifier substitutes the component classifier.
func WithClassifier(c *classify.Classifier) Option {
	return func(s *Study) { s.classifier = c }
}

// NewStudy ingests entries and precomputes the per-entry digests.
// Entries that do not touch any clustered distribution are ignored (the
// paper keeps only its 64 CPEs); entries tagged Unknown, Unspecified or
// Disputed are kept aside and reported by ValidityTable but excluded
// from every analysis, exactly as in §III-A.
func NewStudy(entries []*cve.Entry, opts ...Option) *Study {
	s := newStudyShell(opts)
	s.ingest(entries)
	s.finalize()
	return s
}

// newStudyShell builds an empty Study with its universe frozen but no
// entries ingested — the shared seed of NewStudy and NewBuilder.
func newStudyShell(opts []Option) *Study {
	s := &Study{
		registry:   osmap.NewRegistry(),
		classifier: classify.NewClassifier(),
	}
	s.engineMode.Store(int32(EngineBitset))
	for _, opt := range opts {
		opt(s)
	}
	s.distros = s.registry.Distros()
	s.nd = len(s.distros)
	s.maskWords = (s.nd + 63) / 64
	s.index = make(map[osmap.Distro]int, s.nd)
	for i, d := range s.distros {
		s.index[d] = i
	}
	s.pairs = make([]osmap.Pair, 0, s.nd*(s.nd-1)/2)
	s.pairIdx = make(map[osmap.Pair]int)
	s.pairAt = make([]int, s.nd*s.nd)
	for i := 0; i < s.nd; i++ {
		for j := i + 1; j < s.nd; j++ {
			p := osmap.MakePair(s.distros[i], s.distros[j])
			pi := len(s.pairs)
			s.pairs = append(s.pairs, p)
			s.pairIdx[p] = pi
			s.pairAt[i*s.nd+j] = pi
			s.pairAt[j*s.nd+i] = pi
		}
	}
	return s
}

// Distros returns the study's distro universe in presentation order.
func (s *Study) Distros() []osmap.Distro { return append([]osmap.Distro(nil), s.distros...) }

// Pairs returns the universe's unordered pairs in table row order.
func (s *Study) Pairs() []osmap.Pair { return append([]osmap.Pair(nil), s.pairs...) }

// ingest digests entries into records. With more than one worker the
// digests run concurrently (the registry and classifier are read-only
// after construction); the append pass stays in input order and the
// year sort is stable, so the record layout is identical to the serial
// path. Masks are carved out of one contiguous arena so the scan paths
// stream cache-friendly memory.
func (s *Study) ingest(entries []*cve.Entry) {
	type digested struct {
		rec record
		ok  bool
	}
	arena := make([]uint64, len(entries)*s.maskWords)
	maskAt := func(i int) osmap.Mask {
		return osmap.Mask(arena[i*s.maskWords : (i+1)*s.maskWords : (i+1)*s.maskWords])
	}
	out := make([]digested, len(entries))
	if s.isParallel() && len(entries) >= minParallelItems {
		runShards(s.workers(), len(entries), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rec, ok := s.digest(entries[i], maskAt(i))
				out[i] = digested{rec, ok}
			}
		})
	} else {
		for i, e := range entries {
			rec, ok := s.digest(e, maskAt(i))
			out[i] = digested{rec, ok}
		}
	}
	for i := range out {
		switch {
		case !out[i].ok:
			s.skipped++
		case out[i].rec.validity != classify.Valid:
			s.invalid = append(s.invalid, out[i].rec)
		default:
			s.records = append(s.records, out[i].rec)
		}
	}
}

// finalize orders valid records by publication year so the bitset index
// can answer period and window queries over contiguous bit ranges. The
// sort is stable and every table is an aggregate, so all engines see
// identical results — and a Study built from any batch split of the same
// entry sequence (see Builder) lands on the identical record layout.
func (s *Study) finalize() {
	sort.SliceStable(s.records, func(i, j int) bool { return s.records[i].year < s.records[j].year })
}

func (s *Study) digest(e *cve.Entry, mask osmap.Mask) (record, bool) {
	productSet := make(map[string]bool, len(e.Products))
	for _, p := range e.Products {
		if !p.IsOS() {
			continue
		}
		productSet[p.Vendor+"/"+p.Product] = true
		if d, ok := s.registry.Cluster(p); ok {
			if i, ok := s.index[d]; ok {
				// SetGrow keeps ingestion alive even if a registry ever
				// maps a product to a distro beyond the universe width.
				mask = mask.SetGrow(i)
			}
		}
	}
	nos := mask.OnesCount()
	if nos == 0 {
		return record{}, false
	}
	return record{
		entry:    e,
		id:       e.ID,
		mask:     mask,
		nos:      nos,
		class:    s.classifier.Classify(e),
		remote:   e.Remote(),
		year:     e.Year(),
		validity: classify.EntryValidity(e),
		products: len(productSet),
	}, true
}

// matches reports whether the record survives the profile filter.
func (r *record) matches(p Profile) bool {
	switch p {
	case FatServer:
		return true
	case ThinServer:
		return r.class != classify.ClassApplication
	case IsolatedThinServer:
		return r.class != classify.ClassApplication && r.remote
	default:
		return false
	}
}

// affects reports whether the record touches the distribution.
func (s *Study) affects(r *record, d osmap.Distro) bool {
	i, ok := s.index[d]
	return ok && r.mask.Has(i)
}

// ValidEntries returns the number of valid entries under analysis.
func (s *Study) ValidEntries() int { return len(s.records) }

// SkippedEntries returns the number of ingested entries that touched no
// clustered OS product.
func (s *Study) SkippedEntries() int { return s.skipped }

// ValidityRow is one row of Table I.
type ValidityRow struct {
	Distro      osmap.Distro
	Valid       int
	Unknown     int
	Unspecified int
	Disputed    int
}

// validityResult is the memoized form of Table I.
type validityResult struct {
	rows     []ValidityRow
	distinct ValidityRow
}

// ValidityTable reproduces Table I: per-OS valid/removed counts plus the
// distinct totals across all OSes.
func (s *Study) ValidityTable() (rows []ValidityRow, distinct ValidityRow) {
	v := s.cached(ckey{q: qValidity}, func() any {
		switch {
		case s.useBitset():
			return s.validityBitset()
		case s.isParallel():
			return s.validityParallel()
		default:
			return s.validitySerial()
		}
	}).(*validityResult)
	return append([]ValidityRow(nil), v.rows...), v.distinct
}

func (s *Study) validitySerial() *validityResult {
	res := &validityResult{rows: make([]ValidityRow, 0, s.nd)}
	for _, d := range s.distros {
		row := ValidityRow{Distro: d}
		for i := range s.records {
			if s.affects(&s.records[i], d) {
				row.Valid++
			}
		}
		for i := range s.invalid {
			if !s.affects(&s.invalid[i], d) {
				continue
			}
			switch s.invalid[i].validity {
			case classify.Unknown:
				row.Unknown++
			case classify.Unspecified:
				row.Unspecified++
			case classify.Disputed:
				row.Disputed++
			}
		}
		res.rows = append(res.rows, row)
	}
	res.distinct.Valid = len(s.records)
	for i := range s.invalid {
		switch s.invalid[i].validity {
		case classify.Unknown:
			res.distinct.Unknown++
		case classify.Unspecified:
			res.distinct.Unspecified++
		case classify.Disputed:
			res.distinct.Disputed++
		}
	}
	return res
}

// ClassRow is one row of Table II.
type ClassRow struct {
	Distro  osmap.Distro
	Driver  int
	Kernel  int
	SysSoft int
	App     int
}

// Total returns the row sum.
func (r ClassRow) Total() int { return r.Driver + r.Kernel + r.SysSoft + r.App }

// classResult is the memoized form of Table II.
type classResult struct {
	rows   []ClassRow
	shares [4]float64
}

// ClassTable reproduces Table II: per-OS component-class counts and the
// distinct-vulnerability percentage shares of the four classes.
func (s *Study) ClassTable() (rows []ClassRow, shares [4]float64) {
	v := s.cached(ckey{q: qClass}, func() any {
		switch {
		case s.useBitset():
			return s.classBitset()
		case s.isParallel():
			return s.classParallel()
		default:
			return s.classSerial()
		}
	}).(*classResult)
	return append([]ClassRow(nil), v.rows...), v.shares
}

func (s *Study) classSerial() *classResult {
	res := &classResult{rows: make([]ClassRow, 0, s.nd)}
	for _, d := range s.distros {
		row := ClassRow{Distro: d}
		for i := range s.records {
			if !s.affects(&s.records[i], d) {
				continue
			}
			switch s.records[i].class {
			case classify.ClassDriver:
				row.Driver++
			case classify.ClassKernel:
				row.Kernel++
			case classify.ClassSysSoft:
				row.SysSoft++
			case classify.ClassApplication:
				row.App++
			}
		}
		res.rows = append(res.rows, row)
	}
	counts, n := s.ClassDistinct()
	res.shares = ClassShares(counts, n)
	return res
}

// totals returns the per-distro valid counts under a profile, indexed
// by position in the study's Distros().
func (s *Study) totals(profile Profile) []int {
	return s.cached(ckey{q: qTotals, profile: profile}, func() any {
		switch {
		case s.useBitset():
			return s.totalsBitset(profile)
		case s.isParallel():
			return s.totalsParallel(profile)
		default:
			out := make([]int, s.nd)
			for i, d := range s.distros {
				out[i] = s.totalSerial(d, profile)
			}
			return out
		}
	}).([]int)
}

// Total counts the valid vulnerabilities of one distribution under a
// profile (the v(A) columns of Table III).
func (s *Study) Total(d osmap.Distro, profile Profile) int {
	if i, ok := s.index[d]; ok {
		return s.totals(profile)[i]
	}
	return s.totalSerial(d, profile)
}

func (s *Study) totalSerial(d osmap.Distro, profile Profile) int {
	n := 0
	for i := range s.records {
		r := &s.records[i]
		if s.affects(r, d) && r.matches(profile) {
			n++
		}
	}
	return n
}

// pairCounts returns all pairwise overlaps under a profile, indexed by
// position in the study's Pairs().
func (s *Study) pairCounts(profile Profile) []int {
	return s.cached(ckey{q: qPairs, profile: profile}, func() any {
		switch {
		case s.useBitset():
			return s.pairCountsBitset(profile)
		case s.isParallel():
			return s.pairCountsParallel(profile)
		default:
			out := make([]int, len(s.pairs))
			for i, p := range s.pairs {
				out[i] = s.overlapSerial(p, profile)
			}
			return out
		}
	}).([]int)
}

// Overlap counts the vulnerabilities shared by both members of a pair
// under a profile (the v(AB) columns of Table III).
func (s *Study) Overlap(p osmap.Pair, profile Profile) int {
	if i, ok := s.pairIdx[p]; ok {
		return s.pairCounts(profile)[i]
	}
	return s.overlapSerial(p, profile)
}

func (s *Study) overlapSerial(p osmap.Pair, profile Profile) int {
	ia, oka := s.index[p.A]
	ib, okb := s.index[p.B]
	if !oka || !okb {
		return 0
	}
	n := 0
	for i := range s.records {
		r := &s.records[i]
		if r.mask.Has(ia) && r.mask.Has(ib) && r.matches(profile) {
			n++
		}
	}
	return n
}

// PairMatrix computes all pairwise overlaps under a profile (Table III
// has 55 pairs for the paper's 11-distro universe).
func (s *Study) PairMatrix(profile Profile) map[osmap.Pair]int {
	counts := s.pairCounts(profile)
	out := make(map[osmap.Pair]int, len(s.pairs))
	for i, p := range s.pairs {
		out[p] = counts[i]
	}
	return out
}

// PartCounts breaks an Isolated-Thin-Server overlap down by component
// class (one row of Table IV).
type PartCounts struct {
	Driver  int
	Kernel  int
	SysSoft int
}

// Total sums the row.
func (p PartCounts) Total() int { return p.Driver + p.Kernel + p.SysSoft }

// partCounts returns every pair's Table IV row, indexed by position in
// the study's Pairs().
func (s *Study) partCounts() []PartCounts {
	return s.cached(ckey{q: qParts}, func() any {
		switch {
		case s.useBitset():
			return s.partsBitset()
		case s.isParallel():
			return s.partsParallel()
		default:
			out := make([]PartCounts, len(s.pairs))
			for i, p := range s.pairs {
				out[i] = s.partBreakdownSerial(p)
			}
			return out
		}
	}).([]PartCounts)
}

// PartBreakdown reproduces one pair's Table IV row.
func (s *Study) PartBreakdown(p osmap.Pair) PartCounts {
	if i, ok := s.pairIdx[p]; ok {
		return s.partCounts()[i]
	}
	return s.partBreakdownSerial(p)
}

func (s *Study) partBreakdownSerial(p osmap.Pair) PartCounts {
	ia, oka := s.index[p.A]
	ib, okb := s.index[p.B]
	var out PartCounts
	if !oka || !okb {
		return out
	}
	for i := range s.records {
		r := &s.records[i]
		if !r.mask.Has(ia) || !r.mask.Has(ib) || !r.matches(IsolatedThinServer) {
			continue
		}
		switch r.class {
		case classify.ClassDriver:
			out.Driver++
		case classify.ClassKernel:
			out.Kernel++
		case classify.ClassSysSoft:
			out.SysSoft++
		}
	}
	return out
}

// PeriodCounts splits an overlap into history and observed periods
// (one cell of Table V).
type PeriodCounts struct {
	History  int
	Observed int
}

// Total sums the cell.
func (p PeriodCounts) Total() int { return p.History + p.Observed }

// periodCounts returns every pair's Table V cell for one split year,
// indexed by position in the study's Pairs().
func (s *Study) periodCounts(splitYear int) []PeriodCounts {
	return s.cached(ckey{q: qPeriods, a: splitYear}, func() any {
		switch {
		case s.useBitset():
			return s.periodsBitset(splitYear)
		case s.isParallel():
			return s.periodsParallel(splitYear)
		default:
			out := make([]PeriodCounts, len(s.pairs))
			for i, p := range s.pairs {
				out[i] = s.periodSplitSerial(p, splitYear)
			}
			return out
		}
	}).([]PeriodCounts)
}

// PeriodSplit reproduces one pair's Table V cell: Isolated-Thin-Server
// overlap split at splitYear (inclusive on the history side).
func (s *Study) PeriodSplit(p osmap.Pair, splitYear int) PeriodCounts {
	if i, ok := s.pairIdx[p]; ok {
		return s.periodCounts(splitYear)[i]
	}
	return s.periodSplitSerial(p, splitYear)
}

func (s *Study) periodSplitSerial(p osmap.Pair, splitYear int) PeriodCounts {
	ia, oka := s.index[p.A]
	ib, okb := s.index[p.B]
	var out PeriodCounts
	if !oka || !okb {
		return out
	}
	for i := range s.records {
		r := &s.records[i]
		if !r.mask.Has(ia) || !r.mask.Has(ib) || !r.matches(IsolatedThinServer) {
			continue
		}
		if r.year <= splitYear {
			out.History++
		} else {
			out.Observed++
		}
	}
	return out
}

// TemporalSeries reproduces one curve of Figure 2: valid vulnerabilities
// per publication year for one distribution.
func (s *Study) TemporalSeries(d osmap.Distro) map[int]int {
	idx, ok := s.index[d]
	if !ok {
		return s.temporalSerial(d)
	}
	v := s.cached(ckey{q: qTemporal, a: idx}, func() any {
		switch {
		case s.useBitset():
			return s.temporalBitset(idx)
		case s.isParallel():
			return s.temporalParallel(d)
		default:
			return s.temporalSerial(d)
		}
	}).(map[int]int)
	out := make(map[int]int, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

func (s *Study) temporalSerial(d osmap.Distro) map[int]int {
	out := make(map[int]int)
	for i := range s.records {
		if s.affects(&s.records[i], d) {
			out[s.records[i].year]++
		}
	}
	return out
}

// YearRange returns the [min, max] publication years across the valid
// data set.
func (s *Study) YearRange() (lo, hi int) {
	if len(s.records) == 0 {
		return 0, 0
	}
	// Records are sorted by year at ingestion.
	return s.records[0].year, s.records[len(s.records)-1].year
}

// KWiseClusters counts, for each set size k, the number of distinct
// valid vulnerabilities affecting at least k distributions of the
// universe under the profile.
func (s *Study) KWiseClusters(profile Profile) map[int]int {
	v := s.cached(ckey{q: qKWiseClusters, profile: profile}, func() any {
		switch {
		case s.useBitset():
			return s.kwiseClustersBitset(profile)
		case s.isParallel():
			return s.kwiseClustersParallel(profile)
		default:
			out := make(map[int]int)
			for i := range s.records {
				r := &s.records[i]
				if !r.matches(profile) {
					continue
				}
				for k := 2; k <= r.nos; k++ {
					out[k]++
				}
			}
			return out
		}
	}).(map[int]int)
	out := make(map[int]int, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// KWiseProducts counts distinct valid vulnerabilities affecting at least
// k OS *products* (the granularity of the paper's §IV-B sentences about
// six- and nine-OS vulnerabilities).
func (s *Study) KWiseProducts(profile Profile) map[int]int {
	v := s.cached(ckey{q: qKWiseProducts, profile: profile}, func() any {
		switch {
		case s.useBitset():
			return s.kwiseProductsBitset(profile)
		case s.isParallel():
			return s.kwiseProductsParallel(profile)
		default:
			out := make(map[int]int)
			for i := range s.records {
				r := &s.records[i]
				if !r.matches(profile) {
					continue
				}
				for k := 2; k <= r.products; k++ {
					out[k]++
				}
			}
			return out
		}
	}).(map[int]int)
	out := make(map[int]int, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// MostSharedEntries returns the valid entries affecting the most OS
// products, descending (ties by CVE ID), limited to n. The full order is
// computed once through the engine's bucket sort (see bitset.go) and
// memoized, so repeated calls at any n are slice lookups.
func (s *Study) MostSharedEntries(n int) []*cve.Entry {
	order := s.mostSharedOrder()
	if n > len(order) {
		n = len(order)
	}
	out := make([]*cve.Entry, n)
	for i := 0; i < n; i++ {
		out[i] = s.entryAt(order[i])
	}
	return out
}

// entryAt returns the valid record's source entry, or — for records
// adopted from a snapshot, which carry none — a minimal entry holding
// the persisted identifier. The synthetic entries are materialized once
// for the whole study so concurrent queries share one slice.
func (s *Study) entryAt(i int) *cve.Entry {
	if e := s.records[i].entry; e != nil {
		return e
	}
	s.synthOnce.Do(func() {
		es := make([]*cve.Entry, len(s.records))
		for j := range s.records {
			if s.records[j].entry == nil {
				es[j] = &cve.Entry{ID: s.records[j].id}
			} else {
				es[j] = s.records[j].entry
			}
		}
		s.synthEntries = es
	})
	return s.synthEntries[i]
}

// FilterReduction computes §IV-E(1): the average relative reduction of
// pairwise overlap going from one profile to another, over pairs with a
// non-zero baseline.
func (s *Study) FilterReduction(from, to Profile) float64 {
	return FilterReductionFrom(s.pairCounts(from), s.pairCounts(to))
}

// ReleaseOverlap counts valid Isolated-Thin-Server vulnerabilities that
// affect both named (distribution, version) releases, deriving release
// membership from the CPE version fields (Table VI). The bitset engine
// answers from memoized per-release posting bitsets; the scan engine
// shards the record walk across the worker pool.
func (s *Study) ReleaseOverlap(da osmap.Distro, va string, db osmap.Distro, vb string) int {
	if s.useBitset() {
		return s.releaseOverlapBitset(da, va, db, vb)
	}
	rc := s.relColumns()
	if s.isParallel() {
		n := reduceRangeShards(s.workers(), len(s.records),
			func() *int { return new(int) },
			func(a *int, lo, hi int) {
				for i := lo; i < hi; i++ {
					if s.records[i].matches(IsolatedThinServer) &&
						rc.affectsRelease(i, da, va) && rc.affectsRelease(i, db, vb) {
						*a++
					}
				}
			},
			func(dst, src *int) { *dst += *src })
		return *n
	}
	n := 0
	for i := range s.records {
		if !s.records[i].matches(IsolatedThinServer) {
			continue
		}
		if rc.affectsRelease(i, da, va) && rc.affectsRelease(i, db, vb) {
			n++
		}
	}
	return n
}

// VulnRef is one valid vulnerability with its affected distributions,
// the digest the attack model consumes. Year carries the disclosure
// year so callers can slice populations by temporal window.
type VulnRef struct {
	ID      cve.ID
	Year    int
	Distros []osmap.Distro
}

// Vulnerabilities lists the valid vulnerabilities surviving the profile
// filter, each with its affected distributions, sorted by ID.
func (s *Study) Vulnerabilities(profile Profile) []VulnRef {
	var out []VulnRef
	for i := range s.records {
		r := &s.records[i]
		if !r.matches(profile) {
			continue
		}
		ref := VulnRef{ID: r.id, Year: r.year, Distros: make([]osmap.Distro, 0, r.nos)}
		r.mask.ForEachBit(func(b int) {
			ref.Distros = append(ref.Distros, s.distros[b])
		})
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// Describe summarizes the study for logs and CLIs.
func (s *Study) Describe() string {
	return fmt.Sprintf("study: %d valid, %d removed, %d skipped entries",
		len(s.records), len(s.invalid), s.skipped)
}
