package core

import (
	"runtime"
	"sync"

	"osdiversity/internal/classify"
	"osdiversity/internal/osmap"
)

// This file is the sharded half of the scan engine. Every table query
// has a serial single-goroutine implementation (the reference, in
// study.go and selection.go) and a shard/merge path here that partitions
// the record slice across a bounded worker pool, computes per-shard
// partial aggregates in a single pass, and merges them in shard order so
// the result is deterministic. Completed tables are memoized behind a
// sync.Once-style cache keyed by (query, profile, args), so repeated
// benchmark/CLI invocations are near-free. The columnar bitset engine
// lives in bitset.go and reuses the same worker-pool primitives.

// minParallelItems is the slice length below which sharding is not
// worth the goroutine fan-out and the serial body runs instead.
const minParallelItems = 64

// WithParallelism sets the worker count used for ingestion and the
// sharded table queries. n <= 0 selects GOMAXPROCS; the default is 1
// (the serial reference path).
func WithParallelism(n int) Option {
	return func(s *Study) { s.workerCount.Store(int32(normWorkers(n))) }
}

// SetParallelism changes the worker count of an existing Study. Tables
// already cached are kept: both paths produce identical results.
func (s *Study) SetParallelism(n int) { s.workerCount.Store(int32(normWorkers(n))) }

// Parallelism reports the effective worker count.
func (s *Study) Parallelism() int { return s.workers() }

func normWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// workers reads the count once; an unset field (zero) means serial.
func (s *Study) workers() int {
	if n := int(s.workerCount.Load()); n > 1 {
		return n
	}
	return 1
}

func (s *Study) isParallel() bool { return s.workers() > 1 }

// query identifiers for the result cache.
const (
	qValidity = iota
	qClass
	qTotals
	qPairs
	qParts
	qPeriods
	qTemporal
	qKWiseClusters
	qKWiseProducts
	qWindowPairs
	qWindowTotals
	qPairsAll
	qMostShared
)

// ckey identifies one memoized table: the query, the profile filter and
// up to two integer arguments (split year, window bounds, distro index).
type ckey struct {
	q       uint8
	profile Profile
	a, b    int
}

type cacheEntry struct {
	once sync.Once
	val  any
}

// cached returns the memoized result for k, computing it at most once
// per cache generation. Concurrent callers of the same key block on a
// single computation (single-flight).
func (s *Study) cached(k ckey, compute func() any) any {
	s.cacheMu.Lock()
	if s.cache == nil {
		s.cache = make(map[ckey]*cacheEntry)
	}
	e, ok := s.cache[k]
	if !ok {
		e = &cacheEntry{}
		s.cache[k] = e
	}
	s.cacheMu.Unlock()
	e.once.Do(func() { e.val = compute() })
	return e.val
}

// ClearCache drops every memoized table (the columnar bitset index and
// release postings are structural, not results, and are kept). The
// record set is immutable, so this is only needed to benchmark the raw
// compute paths.
func (s *Study) ClearCache() {
	s.cacheMu.Lock()
	s.cache = nil
	s.cacheMu.Unlock()
}

// capWorkers bounds a CPU-bound fan-out at the machine's parallelism:
// extra goroutines beyond GOMAXPROCS only add scheduling overhead and
// per-shard aggregate churn.
func capWorkers(workers int) int {
	if g := runtime.GOMAXPROCS(0); workers > g {
		return g
	}
	return workers
}

// runShards splits [0, n) into one contiguous range per worker and runs
// body on each concurrently.
func runShards(workers, n int, body func(lo, hi int)) {
	workers = capWorkers(workers)
	if workers <= 1 || n < minParallelItems {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// reduceShards partitions recs across the worker pool, runs body over
// each shard into a fresh aggregate, and merges the partials in shard
// order. With one worker (or a short slice) it degenerates to a single
// pass with no goroutines.
func reduceShards[A any](workers int, recs []record, newAgg func() A, body func(agg A, shard []record), merge func(dst, src A)) A {
	workers = capWorkers(workers)
	dst := newAgg()
	if workers <= 1 || len(recs) < minParallelItems {
		body(dst, recs)
		return dst
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	chunk := (len(recs) + workers - 1) / workers
	nShards := (len(recs) + chunk - 1) / chunk
	parts := make([]A, nShards)
	var wg sync.WaitGroup
	for i := 0; i < nShards; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			a := newAgg()
			body(a, recs[lo:hi])
			parts[i] = a
		}(i, lo, hi)
	}
	wg.Wait()
	for i := 0; i < nShards; i++ {
		merge(dst, parts[i])
	}
	return dst
}

// --- parallel aggregates -------------------------------------------------

// validityAgg is the per-shard partial of Table I.
type validityAgg struct {
	valid    []int    // per distro
	invalid  [][3]int // per distro: unknown, unspecified, disputed
	distinct [3]int
}

func validityIdx(v classify.Validity) int {
	switch v {
	case classify.Unknown:
		return 0
	case classify.Unspecified:
		return 1
	default: // Disputed
		return 2
	}
}

func (s *Study) validityParallel() *validityResult {
	newAgg := func() *validityAgg {
		return &validityAgg{valid: make([]int, s.nd), invalid: make([][3]int, s.nd)}
	}
	agg := reduceShards(s.workers(), s.records, newAgg,
		func(a *validityAgg, shard []record) {
			for i := range shard {
				shard[i].mask.ForEachBit(func(b int) { a.valid[b]++ })
			}
		},
		mergeValidity)
	inv := reduceShards(s.workers(), s.invalid, newAgg,
		func(a *validityAgg, shard []record) {
			for i := range shard {
				vi := validityIdx(shard[i].validity)
				a.distinct[vi]++
				shard[i].mask.ForEachBit(func(b int) { a.invalid[b][vi]++ })
			}
		},
		mergeValidity)

	res := &validityResult{rows: make([]ValidityRow, 0, s.nd)}
	for i, d := range s.distros {
		res.rows = append(res.rows, ValidityRow{
			Distro:      d,
			Valid:       agg.valid[i],
			Unknown:     inv.invalid[i][0],
			Unspecified: inv.invalid[i][1],
			Disputed:    inv.invalid[i][2],
		})
	}
	res.distinct = ValidityRow{
		Valid:       len(s.records),
		Unknown:     inv.distinct[0],
		Unspecified: inv.distinct[1],
		Disputed:    inv.distinct[2],
	}
	return res
}

func mergeValidity(dst, src *validityAgg) {
	for i := range dst.valid {
		dst.valid[i] += src.valid[i]
		for j := range dst.invalid[i] {
			dst.invalid[i][j] += src.invalid[i][j]
		}
	}
	for j := range dst.distinct {
		dst.distinct[j] += src.distinct[j]
	}
}

// classAgg is the per-shard partial of Table II.
type classAgg struct {
	perOS    [][4]int // per distro
	distinct [4]int
}

// classIdx maps a component class to its Table II column, or -1 for
// classes outside the paper's four (which every count skips).
func classIdx(c classify.Class) int {
	switch c {
	case classify.ClassDriver:
		return 0
	case classify.ClassKernel:
		return 1
	case classify.ClassSysSoft:
		return 2
	case classify.ClassApplication:
		return 3
	default:
		return -1
	}
}

func (s *Study) classParallel() *classResult {
	agg := reduceShards(s.workers(), s.records,
		func() *classAgg { return &classAgg{perOS: make([][4]int, s.nd)} },
		func(a *classAgg, shard []record) {
			for i := range shard {
				ci := classIdx(shard[i].class)
				if ci < 0 {
					continue
				}
				a.distinct[ci]++
				shard[i].mask.ForEachBit(func(b int) { a.perOS[b][ci]++ })
			}
		},
		func(dst, src *classAgg) {
			for i := range dst.perOS {
				for j := range dst.perOS[i] {
					dst.perOS[i][j] += src.perOS[i][j]
				}
			}
			for j := range dst.distinct {
				dst.distinct[j] += src.distinct[j]
			}
		})

	res := &classResult{rows: make([]ClassRow, 0, s.nd)}
	for i, d := range s.distros {
		res.rows = append(res.rows, ClassRow{
			Distro:  d,
			Driver:  agg.perOS[i][0],
			Kernel:  agg.perOS[i][1],
			SysSoft: agg.perOS[i][2],
			App:     agg.perOS[i][3],
		})
	}
	res.shares = ClassShares(agg.distinct, len(s.records))
	return res
}

func (s *Study) totalsParallel(profile Profile) []int {
	return reduceShards(s.workers(), s.records,
		func() []int { return make([]int, s.nd) },
		func(a []int, shard []record) {
			for i := range shard {
				if !shard[i].matches(profile) {
					continue
				}
				shard[i].mask.ForEachBit(func(b int) { a[b]++ })
			}
		},
		mergeIntSlice)
}

func mergeIntSlice(dst, src []int) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// pairAtIdx maps two distro bit indices to the pair's position in the
// study's Pairs() order.
func (s *Study) pairAtIdx(i, j int) int { return s.pairAt[i*s.nd+j] }

func (s *Study) pairCountsParallel(profile Profile) []int {
	return reduceShards(s.workers(), s.records,
		func() []int { return make([]int, len(s.pairs)) },
		func(a []int, shard []record) {
			bs := make([]int, s.nd)
			for i := range shard {
				r := &shard[i]
				// Single-OS records cannot contribute to any pair.
				if r.nos < 2 || !r.matches(profile) {
					continue
				}
				n := r.mask.Bits(bs)
				for x := 0; x < n; x++ {
					for y := x + 1; y < n; y++ {
						a[s.pairAtIdx(bs[x], bs[y])]++
					}
				}
			}
		},
		mergeIntSlice)
}

func (s *Study) partsParallel() []PartCounts {
	return reduceShards(s.workers(), s.records,
		func() []PartCounts { return make([]PartCounts, len(s.pairs)) },
		func(a []PartCounts, shard []record) {
			bs := make([]int, s.nd)
			for i := range shard {
				r := &shard[i]
				if r.nos < 2 || !r.matches(IsolatedThinServer) {
					continue
				}
				n := r.mask.Bits(bs)
				for x := 0; x < n; x++ {
					for y := x + 1; y < n; y++ {
						pc := &a[s.pairAtIdx(bs[x], bs[y])]
						switch r.class {
						case classify.ClassDriver:
							pc.Driver++
						case classify.ClassKernel:
							pc.Kernel++
						case classify.ClassSysSoft:
							pc.SysSoft++
						}
					}
				}
			}
		},
		func(dst, src []PartCounts) {
			for i := range dst {
				dst[i].Driver += src[i].Driver
				dst[i].Kernel += src[i].Kernel
				dst[i].SysSoft += src[i].SysSoft
			}
		})
}

func (s *Study) periodsParallel(splitYear int) []PeriodCounts {
	return reduceShards(s.workers(), s.records,
		func() []PeriodCounts { return make([]PeriodCounts, len(s.pairs)) },
		func(a []PeriodCounts, shard []record) {
			bs := make([]int, s.nd)
			for i := range shard {
				r := &shard[i]
				if r.nos < 2 || !r.matches(IsolatedThinServer) {
					continue
				}
				n := r.mask.Bits(bs)
				for x := 0; x < n; x++ {
					for y := x + 1; y < n; y++ {
						pc := &a[s.pairAtIdx(bs[x], bs[y])]
						if r.year <= splitYear {
							pc.History++
						} else {
							pc.Observed++
						}
					}
				}
			}
		},
		func(dst, src []PeriodCounts) {
			for i := range dst {
				dst[i].History += src[i].History
				dst[i].Observed += src[i].Observed
			}
		})
}

func (s *Study) temporalParallel(d osmap.Distro) map[int]int {
	bit := s.index[d]
	return reduceShards(s.workers(), s.records,
		func() map[int]int { return make(map[int]int) },
		func(a map[int]int, shard []record) {
			for i := range shard {
				if shard[i].mask.Has(bit) {
					a[shard[i].year]++
				}
			}
		},
		mergeIntMap)
}

func mergeIntMap(dst, src map[int]int) {
	for k, v := range src {
		dst[k] += v
	}
}

// kwiseAgg accumulates at-least-k counts in a dense slice (index k),
// growing to the largest k seen; the map conversion happens once after
// the merge.
type kwiseAgg struct {
	counts []int
}

func (a *kwiseAgg) bump(maxK int) {
	if maxK < 2 {
		return
	}
	for len(a.counts) <= maxK {
		a.counts = append(a.counts, 0)
	}
	for k := 2; k <= maxK; k++ {
		a.counts[k]++
	}
}

func mergeKWise(dst, src *kwiseAgg) {
	for len(dst.counts) < len(src.counts) {
		dst.counts = append(dst.counts, 0)
	}
	for k := range src.counts {
		dst.counts[k] += src.counts[k]
	}
}

func (a *kwiseAgg) toMap() map[int]int {
	out := make(map[int]int, len(a.counts))
	for k := 2; k < len(a.counts); k++ {
		if a.counts[k] > 0 {
			out[k] = a.counts[k]
		}
	}
	return out
}

func (s *Study) kwiseClustersParallel(profile Profile) map[int]int {
	return reduceShards(s.workers(), s.records,
		func() *kwiseAgg { return &kwiseAgg{} },
		func(a *kwiseAgg, shard []record) {
			for i := range shard {
				r := &shard[i]
				if r.matches(profile) {
					a.bump(r.nos)
				}
			}
		},
		mergeKWise).toMap()
}

func (s *Study) kwiseProductsParallel(profile Profile) map[int]int {
	return reduceShards(s.workers(), s.records,
		func() *kwiseAgg { return &kwiseAgg{} },
		func(a *kwiseAgg, shard []record) {
			for i := range shard {
				r := &shard[i]
				if r.matches(profile) {
					a.bump(r.products)
				}
			}
		},
		mergeKWise).toMap()
}

func (s *Study) windowPairsParallel(w SelectionWindow) []int {
	return reduceShards(s.workers(), s.records,
		func() []int { return make([]int, len(s.pairs)) },
		func(a []int, shard []record) {
			bs := make([]int, s.nd)
			for i := range shard {
				r := &shard[i]
				if r.nos < 2 || !r.matches(IsolatedThinServer) || !w.contains(r.year) {
					continue
				}
				n := r.mask.Bits(bs)
				for x := 0; x < n; x++ {
					for y := x + 1; y < n; y++ {
						a[s.pairAtIdx(bs[x], bs[y])]++
					}
				}
			}
		},
		mergeIntSlice)
}

func (s *Study) windowTotalsParallel(w SelectionWindow) []int {
	return reduceShards(s.workers(), s.records,
		func() []int { return make([]int, s.nd) },
		func(a []int, shard []record) {
			for i := range shard {
				r := &shard[i]
				if !r.matches(IsolatedThinServer) || !w.contains(r.year) {
					continue
				}
				r.mask.ForEachBit(func(b int) { a[b]++ })
			}
		},
		mergeIntSlice)
}
