package core

import (
	"testing"

	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

func historyWindow() SelectionWindow {
	return SelectionWindow{ToYear: paperdata.HistoryEndYear}
}

func TestPairSharedInWindowMatchesTableV(t *testing.T) {
	s := paperStudy(t)
	for p, want := range paperdata.PeriodTable {
		hist := s.PairSharedInWindow(p, historyWindow())
		obs := s.PairSharedInWindow(p, SelectionWindow{FromYear: paperdata.HistoryEndYear + 1})
		if hist != want.History || obs != want.Observed {
			t.Errorf("%v: window counts %d/%d, Table V %d/%d", p, hist, obs, want.History, want.Observed)
		}
	}
}

func TestFigure3Configurations(t *testing.T) {
	s := paperStudy(t)
	for _, set := range paperdata.Figure3Sets {
		want := paperdata.Figure3Expected[set.Name]
		hist, obs := s.EvaluateConfiguration(set.Members, paperdata.HistoryEndYear)
		if hist != want.History || obs != want.Observed {
			t.Errorf("%s: evaluated %d/%d, derived-from-Table-V %d/%d",
				set.Name, hist, obs, want.History, want.Observed)
		}
	}
}

func TestOnePerFamilySelectionFindsPaperSets(t *testing.T) {
	// Under the one-OS-per-family constraint, the paper's Set1 must be
	// optimal on history data, and Set2/Set3 must appear in the top
	// ranks (Set2 ties with two other cost-13 sets; Set3 follows at 14).
	s := paperStudy(t)
	ranked := s.RankReplicaSets(osmap.HistoryEligible(), 4, OnePerFamily, historyWindow())
	if len(ranked) != 12 {
		t.Fatalf("one-per-family ranking has %d sets, want 2*1*2*3=12", len(ranked))
	}
	set1 := paperdata.Figure3Sets[1].Members
	if !sameSet(ranked[0].Members, set1) {
		t.Errorf("best set = %v (cost %d), paper's Set1 = %v", ranked[0].Members, ranked[0].Cost, set1)
	}
	if ranked[0].Cost != 10 {
		t.Errorf("Set1 history cost = %d, Table V arithmetic gives 10", ranked[0].Cost)
	}
	costs := map[string]int{}
	for _, r := range ranked {
		costs[setKey(r.Members)] = r.Cost
	}
	if costs[setKey(paperdata.Figure3Sets[2].Members)] != 13 {
		t.Errorf("Set2 cost = %d, want 13", costs[setKey(paperdata.Figure3Sets[2].Members)])
	}
	if costs[setKey(paperdata.Figure3Sets[3].Members)] != 14 {
		t.Errorf("Set3 cost = %d, want 14", costs[setKey(paperdata.Figure3Sets[3].Members)])
	}
}

func TestUnconstrainedSelectionBeatsSet2(t *testing.T) {
	// Documented delta (DESIGN.md §5): exhaustive search finds
	// {Windows2003, Debian, OpenBSD, NetBSD} at cost 12, better than the
	// paper's Set2 (13). The pipeline must reproduce that finding.
	s := paperStudy(t)
	ranked := s.RankReplicaSets(osmap.HistoryEligible(), 4, MinPairSum, historyWindow())
	if len(ranked) != 70 {
		t.Fatalf("ranking has %d sets, want C(8,4)=70", len(ranked))
	}
	if ranked[0].Cost != 10 || !sameSet(ranked[0].Members, paperdata.Figure3Sets[1].Members) {
		t.Errorf("unconstrained best = %v cost %d, want Set1 at 10", ranked[0].Members, ranked[0].Cost)
	}
	second := ranked[1]
	want := []osmap.Distro{osmap.OpenBSD, osmap.NetBSD, osmap.Debian, osmap.Windows2003}
	if second.Cost != 12 || !sameSet(second.Members, want) {
		t.Errorf("second best = %v cost %d, want %v at 12", second.Members, second.Cost, want)
	}
}

func TestHomogeneousBaseline(t *testing.T) {
	// §IV-C base case: four identical Debian replicas share every Debian
	// vulnerability — 16 in the history period, 9 observed.
	s := paperStudy(t)
	hist, obs := s.EvaluateConfiguration([]osmap.Distro{osmap.Debian}, paperdata.HistoryEndYear)
	want := paperdata.Figure3Expected["Debian"]
	if hist != want.History || obs != want.Observed {
		t.Errorf("Debian baseline = %d/%d, paper %d/%d", hist, obs, want.History, want.Observed)
	}
	// Debian must be the best homogeneous choice on history data.
	for _, d := range osmap.HistoryEligible() {
		h, _ := s.EvaluateConfiguration([]osmap.Distro{d}, paperdata.HistoryEndYear)
		if h < hist {
			t.Errorf("%v homogeneous history cost %d beats Debian's %d", d, h, hist)
		}
	}
}

func TestMaxDisjointGroup(t *testing.T) {
	// §IV-C closes by exhibiting a six-OS group with few pairwise
	// overlaps: {OpenBSD, NetBSD, Windows2003, Debian, RedHat, Solaris}.
	// Its worst pair (OpenBSD-NetBSD) shares 16, so threshold 16 must
	// yield a six-member group, and FreeBSD (32 shared with OpenBSD)
	// cannot belong to it.
	s := paperStudy(t)
	group := s.MaxDisjointGroup(osmap.HistoryEligible(), 16, SelectionWindow{})
	if len(group) != 6 {
		t.Errorf("max disjoint group (threshold 16) = %v, paper exhibits six", group)
	}
	for _, d := range group {
		if d == osmap.FreeBSD {
			t.Errorf("group %v contains FreeBSD despite its 32-vulnerability overlap with OpenBSD", group)
		}
	}
	// With threshold 0, the three BSDs cannot coexist (every BSD pair
	// shares remotely exploitable vulnerabilities).
	tight := s.MaxDisjointGroup(osmap.HistoryEligible(), 0, SelectionWindow{})
	count := 0
	for _, d := range tight {
		if d.Family() == osmap.FamilyBSD {
			count++
		}
	}
	if count > 1 {
		t.Errorf("threshold-0 group %v contains %d BSDs", tight, count)
	}
}

func TestRankReplicaSetsDeterministic(t *testing.T) {
	s := paperStudy(t)
	a := s.RankReplicaSets(osmap.HistoryEligible(), 3, MinPairSum, historyWindow())
	b := s.RankReplicaSets(osmap.HistoryEligible(), 3, MinPairSum, historyWindow())
	if len(a) != len(b) {
		t.Fatal("ranking size unstable")
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || !sameSet(a[i].Members, b[i].Members) {
			t.Fatalf("ranking unstable at %d", i)
		}
	}
}

func TestSelectionWindowBounds(t *testing.T) {
	w := SelectionWindow{FromYear: 2000, ToYear: 2005}
	if w.contains(1999) || !w.contains(2000) || !w.contains(2005) || w.contains(2006) {
		t.Error("window bounds wrong")
	}
	var unbounded SelectionWindow
	if !unbounded.contains(1994) || !unbounded.contains(2010) {
		t.Error("unbounded window wrong")
	}
}

func sameSet(a, b []osmap.Distro) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[osmap.Distro]bool, len(a))
	for _, d := range a {
		m[d] = true
	}
	for _, d := range b {
		if !m[d] {
			return false
		}
	}
	return true
}

func setKey(ds []osmap.Distro) string {
	return RankedSet{Members: sortedCopy(ds)}.String()
}

func sortedCopy(ds []osmap.Distro) []osmap.Distro {
	out := append([]osmap.Distro(nil), ds...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
