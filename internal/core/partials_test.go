package core

import (
	"math"
	"reflect"
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// shardStudies slices the calibrated corpus into n year-range shards
// and builds one Study per shard. Shards may be empty when n exceeds
// the number of distinct publication years.
func shardStudies(t *testing.T, entries []*cve.Entry, n int) []*Study {
	t.Helper()
	out := make([]*Study, n)
	total := 0
	for i := 0; i < n; i++ {
		slice := corpus.ShardByYear(entries, i, n)
		total += len(slice)
		out[i] = NewStudy(slice)
	}
	if total != len(entries) {
		t.Fatalf("shards cover %d entries, corpus has %d", total, len(entries))
	}
	return out
}

// shardCounts are the slicings the merge contract must survive: uneven
// chunking, one-year-per-shard, and more shards than years (so some
// shards hold zero entries).
func shardCounts(t *testing.T, entries []*cve.Entry) []int {
	years := len(corpus.SplitByYear(entries))
	if years < 3 {
		t.Fatalf("calibrated corpus spans only %d years", years)
	}
	return []int{3, years, years + 4}
}

// TestMergeClassShares: Table II's distinct class counts are additive
// across shards, and ClassShares over the sums reproduces the full
// Study's shares exactly (same float expression, same inputs).
func TestMergeClassShares(t *testing.T) {
	full := paperStudy(t)
	entries := calibratedEntries(t)
	_, wantShares := full.ClassTable()
	wantCounts, wantN := full.ClassDistinct()

	for _, n := range shardCounts(t, entries) {
		var counts [4]int
		total := 0
		for _, s := range shardStudies(t, entries, n) {
			c, m := s.ClassDistinct()
			for i := range counts {
				counts[i] += c[i]
			}
			total += m
		}
		if counts != wantCounts || total != wantN {
			t.Errorf("n=%d: merged distinct = %v/%d, full %v/%d", n, counts, total, wantCounts, wantN)
		}
		if got := ClassShares(counts, total); got != wantShares {
			t.Errorf("n=%d: merged shares = %v, full %v", n, got, wantShares)
		}
	}
}

// TestMergeFilterReduction: the §IV-E(1) figure is a mean of per-pair
// ratios, so it does NOT sum across shards — but the per-pair overlap
// counts it is derived from do. FilterReductionFrom over shard-summed
// pair columns must equal the full Study's float bit for bit.
func TestMergeFilterReduction(t *testing.T) {
	full := paperStudy(t)
	entries := calibratedEntries(t)
	pairs := full.Pairs()
	want := full.FilterReduction(FatServer, IsolatedThinServer)

	for _, n := range shardCounts(t, entries) {
		from := make([]int, len(pairs))
		to := make([]int, len(pairs))
		for _, s := range shardStudies(t, entries, n) {
			for i, p := range pairs {
				from[i] += s.Overlap(p, FatServer)
				to[i] += s.Overlap(p, IsolatedThinServer)
			}
		}
		if got := FilterReductionFrom(from, to); got != want {
			t.Errorf("n=%d: merged reduction = %v, full %v", n, got, want)
		}
		// Sanity: naive averaging of per-shard reductions is NOT the
		// merge rule; it only coincides when every shard shares the mean.
		if math.IsNaN(want) {
			t.Fatalf("full reduction is NaN")
		}
	}
}

// TestMergeMostShared: any member of the global top n appears in its
// own shard's top n (counts are per-entry and entries live in exactly
// one shard), so merging per-shard prefixes reproduces the full order —
// product count descending, CVE ID ascending on ties.
func TestMergeMostShared(t *testing.T) {
	full := paperStudy(t)
	entries := calibratedEntries(t)
	for _, topN := range []int{1, 3, 10} {
		want := full.MostSharedCounts(topN)
		for _, n := range shardCounts(t, entries) {
			lists := make([][]SharedIDCount, 0, n)
			for _, s := range shardStudies(t, entries, n) {
				lists = append(lists, s.MostSharedCounts(topN))
			}
			got := MergeMostShared(lists, topN)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("top %d, n=%d: merged = %v, full %v", topN, n, got, want)
			}
		}
	}
}

// TestMergeYearCounts: temporal series and k-wise cluster histograms
// are per-year counts, additive across year-partitioned shards. An
// empty shard contributes an empty map and must not perturb the merge.
func TestMergeYearCounts(t *testing.T) {
	full := paperStudy(t)
	entries := calibratedEntries(t)
	wantTemporal := full.TemporalSeries(osmap.Debian)
	wantKWise := full.KWiseClusters(FatServer)

	for _, n := range shardCounts(t, entries) {
		temporal := make([]map[int]int, 0, n)
		kwise := make([]map[int]int, 0, n)
		for _, s := range shardStudies(t, entries, n) {
			temporal = append(temporal, s.TemporalSeries(osmap.Debian))
			kwise = append(kwise, s.KWiseClusters(FatServer))
		}
		if got := MergeYearCounts(temporal); !reflect.DeepEqual(got, wantTemporal) {
			t.Errorf("n=%d: merged temporal = %v, full %v", n, got, wantTemporal)
		}
		if got := MergeYearCounts(kwise); !reflect.DeepEqual(got, wantKWise) {
			t.Errorf("n=%d: merged kwise = %v, full %v", n, got, wantKWise)
		}
	}
	if len(MergeYearCounts(nil)) != 0 {
		t.Error("MergeYearCounts(nil) is non-empty")
	}
}

// TestMergeRankSets: replica-set ranking from shard-summed window costs
// equals the full Study's RankReplicaSets — same enumeration order,
// same stable tie-breaks — for both strategies.
func TestMergeRankSets(t *testing.T) {
	full := paperStudy(t)
	entries := calibratedEntries(t)
	candidates := osmap.HistoryEligible()
	win := SelectionWindow{ToYear: 2005}

	for _, strategy := range []Strategy{MinPairSum, OnePerFamily} {
		for _, k := range []int{1, 2, 4} {
			want := full.RankReplicaSets(candidates, k, strategy, win)
			for _, n := range shardCounts(t, entries) {
				pairCosts := make(map[osmap.Pair]int)
				singleCosts := make(map[osmap.Distro]int)
				for _, s := range shardStudies(t, entries, n) {
					for _, p := range osmap.PairsOf(candidates) {
						pairCosts[p] += s.PairSharedInWindow(p, win)
					}
					for _, d := range candidates {
						singleCosts[d] += s.SetCost([]osmap.Distro{d}, win)
					}
				}
				got := RankSetsFromCosts(candidates, k, strategy,
					func(p osmap.Pair) int { return pairCosts[p] },
					func(d osmap.Distro) int { return singleCosts[d] })
				if !reflect.DeepEqual(got, want) {
					t.Errorf("strategy=%v k=%d n=%d: merged ranking diverges from full Study", strategy, k, n)
				}
			}
		}
	}
}

// calibratedEntries returns the calibrated entry set the shared
// paperStudy was built from.
func calibratedEntries(t *testing.T) []*cve.Entry {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	return c.Entries
}
