package core

import (
	"fmt"
	"math/bits"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// This file splits column construction from Study wiring: ExportColumns
// flattens a digested Study into plain columnar slices, and FromColumns
// materializes a Study by adopting such columns — the warm-start path of
// internal/snapshot. Adopted columns are owned by the caller (typically
// an mmap'd read-only file region) and are never written by the Study;
// everything the engine would otherwise mutate in place (profile
// postings, release posting bitsets, memo caches) is derived into fresh
// heap allocations instead.

// relColumns is the flattened per-record release-reference table the
// Table VI queries match against: for valid record i,
// refs[off[i]:off[i+1]] holds its distinct (distro, CPE version) pairs,
// each packed as uint64(distro)<<32 | version-string index.
type relColumns struct {
	off      []int32  // len(records)+1, monotonically non-decreasing
	refs     []uint64 // uint64(distro)<<32 | uint64(version index)
	versions []string // version string table, first-seen order
}

// affectsRelease reports whether valid record i names the
// (distro, version) release in its CPE list — the columnar equivalent of
// the old per-entry product walk, identical because the columns are
// built from the same registry.Cluster matches.
func (rc *relColumns) affectsRelease(i int, d osmap.Distro, version string) bool {
	for _, ref := range rc.refs[rc.off[i]:rc.off[i+1]] {
		if osmap.Distro(ref>>32) == d && rc.versions[uint32(ref)] == version {
			return true
		}
	}
	return false
}

// relColumns lazily builds (once) the release-reference columns from the
// retained source entries. Studies adopted from snapshot columns have no
// entries; FromColumns pre-fires the Once with the persisted columns.
func (s *Study) relColumns() *relColumns {
	s.relOnce.Do(func() {
		rc := &s.relCols
		rc.off = make([]int32, len(s.records)+1)
		rc.versions = []string{}
		vidx := make(map[string]uint32)
		for i := range s.records {
			start := len(rc.refs)
			// Exactly the predicate the old affectsRelease walk used:
			// every clustered product counts, whatever its CPE part.
			for _, p := range s.records[i].entry.Products {
				d, ok := s.registry.Cluster(p)
				if !ok {
					continue
				}
				vi, ok := vidx[p.Version]
				if !ok {
					vi = uint32(len(rc.versions))
					vidx[p.Version] = vi
					rc.versions = append(rc.versions, p.Version)
				}
				packed := uint64(d)<<32 | uint64(vi)
				dup := false
				for _, prev := range rc.refs[start:] {
					if prev == packed {
						dup = true
						break
					}
				}
				if !dup {
					rc.refs = append(rc.refs, packed)
				}
			}
			rc.off[i+1] = int32(len(rc.refs))
		}
	})
	return &s.relCols
}

// Columns is the complete flattened state of a digested Study: every
// per-record column and every precomputed bitset-engine column, in
// fixed-width little-endian-friendly slices. A Study round-trips through
// (ExportColumns, FromColumns) with byte-identical query results.
//
// Ownership: FromColumns adopts the slices without copying. Callers
// loading them from an mmap'd snapshot must keep the mapping alive for
// the Study's lifetime and must never write through it; the Study treats
// every adopted column as immutable.
type Columns struct {
	// Universe shape, validated against the registry the Study is built
	// with.
	NumDistros int
	MaskWords  int

	// Ingestion counters that are not derivable from the columns.
	Skipped int

	// Valid-record columns, in the finalized (year-sorted) order.
	// IDs packs cve.ID as Year<<32 | Seq; Flags packs the class index +1
	// in bits 0-2 (0 = unclassified) and the remote flag in bit 3;
	// Masks is one contiguous arena of len(IDs)*MaskWords words.
	IDs      []uint64
	Years    []int32
	Flags    []uint8
	Products []uint16
	Popcnt   []uint16
	Masks    []uint64

	// Release references (Table VI), see relColumns.
	RelOff      []int32
	RelRefs     []uint64
	RelVersions []string

	// Invalid-record columns: Flags holds the validity index
	// (0 unknown, 1 unspecified, 2 disputed), Masks the arena.
	InvFlags []uint8
	InvMasks []uint64

	// Bitset-engine columns over the valid records. Posting bitsets are
	// concatenated per distro/class: DistroPost is NumDistros runs of
	// words() words, ClassPost four runs, RemotePost one. Profile
	// postings are not persisted — they derive from ClassPost and
	// RemotePost on adoption.
	DistroPost []uint64
	ClassPost  []uint64
	RemotePost []uint64

	// Year segmentation (empty when there are no valid records).
	MinYear, MaxYear int
	YearStart        []int64

	// Compact multi-record pair postings (see bitIndex).
	Multi        []int32
	MultiFlags   []uint8
	MultiPairOff []int32
	MultiPairs   []int32

	// Posting bitsets over the invalid records, concatenated like the
	// valid ones (runs of invWords() words).
	InvDistroPost   []uint64
	InvValidityPost []uint64
}

func (c *Columns) words() int    { return (len(c.IDs) + 63) / 64 }
func (c *Columns) invWords() int { return (len(c.InvFlags) + 63) / 64 }

// recFlags packs a record's class and remote flag exactly like the
// engine's multiFlags column.
func recFlags(r *record) uint8 {
	f := uint8(classIdx(r.class) + 1)
	if r.remote {
		f |= multiRemoteFlag
	}
	return f
}

// classFromIdx inverts classIdx for the packed flag byte (idx -1, i.e.
// flag value 0, is unclassified).
func classFromIdx(idx int) classify.Class {
	switch idx {
	case 0:
		return classify.ClassDriver
	case 1:
		return classify.ClassKernel
	case 2:
		return classify.ClassSysSoft
	case 3:
		return classify.ClassApplication
	default:
		return classify.ClassUnclassified
	}
}

// validityFromIdx inverts validityIdx for the invalid-record flag byte.
func validityFromIdx(idx int) classify.Validity {
	switch idx {
	case 0:
		return classify.Unknown
	case 1:
		return classify.Unspecified
	default:
		return classify.Disputed
	}
}

// ExportColumns flattens the Study into freshly allocated columns —
// the save path of internal/snapshot. It forces the bitset index and the
// release-reference columns, so the persisted form warm-starts with both
// engines ready.
func (s *Study) ExportColumns() *Columns {
	idx := s.bitIndex()
	rc := s.relColumns()
	n, ni := len(s.records), len(s.invalid)
	c := &Columns{
		NumDistros: s.nd,
		MaskWords:  s.maskWords,
		Skipped:    s.skipped,

		IDs:      make([]uint64, n),
		Years:    make([]int32, n),
		Flags:    make([]uint8, n),
		Products: append([]uint16(nil), idx.products...),
		Popcnt:   append([]uint16(nil), idx.popcnt...),
		Masks:    make([]uint64, n*s.maskWords),

		RelOff:      append([]int32(nil), rc.off...),
		RelRefs:     append([]uint64(nil), rc.refs...),
		RelVersions: append([]string(nil), rc.versions...),

		InvFlags: make([]uint8, ni),
		InvMasks: make([]uint64, ni*s.maskWords),

		RemotePost: append([]uint64(nil), idx.remote...),

		MinYear: idx.minYear,
		MaxYear: idx.maxYear,

		Multi:        append([]int32(nil), idx.multi...),
		MultiFlags:   append([]uint8(nil), idx.multiFlags...),
		MultiPairOff: append([]int32(nil), idx.multiPairOff...),
		MultiPairs:   append([]int32(nil), idx.multiPairs...),
	}
	if c.RelRefs == nil {
		c.RelRefs = []uint64{}
	}
	for i := range s.records {
		r := &s.records[i]
		c.IDs[i] = uint64(uint32(r.id.Year))<<32 | uint64(uint32(r.id.Seq))
		c.Years[i] = int32(r.year)
		c.Flags[i] = recFlags(r)
		copy(c.Masks[i*s.maskWords:(i+1)*s.maskWords], r.mask)
	}
	for i := range s.invalid {
		r := &s.invalid[i]
		c.InvFlags[i] = uint8(validityIdx(r.validity))
		copy(c.InvMasks[i*s.maskWords:(i+1)*s.maskWords], r.mask)
	}
	c.DistroPost = make([]uint64, 0, s.nd*idx.words)
	for _, post := range idx.distro {
		c.DistroPost = append(c.DistroPost, post...)
	}
	c.ClassPost = make([]uint64, 0, 4*idx.words)
	for _, post := range idx.class {
		c.ClassPost = append(c.ClassPost, post...)
	}
	c.YearStart = make([]int64, len(idx.yearStart))
	for i, v := range idx.yearStart {
		c.YearStart[i] = int64(v)
	}
	c.InvDistroPost = make([]uint64, 0, s.nd*idx.invWords)
	for _, post := range idx.invDistro {
		c.InvDistroPost = append(c.InvDistroPost, post...)
	}
	c.InvValidityPost = make([]uint64, 0, 3*idx.invWords)
	for _, post := range idx.invValidity {
		c.InvValidityPost = append(c.InvValidityPost, post...)
	}
	return c
}

// FromColumns materializes a Study by adopting previously exported
// columns — the second construction path next to digestion. The options
// must reproduce the universe the columns were exported under (the same
// WithRegistry); the column shape is validated against it and every
// offset/index column is bounds-checked, so a Study built from
// checksummed but hostile input fails here instead of panicking inside a
// query. The adopted slices are never written; see Columns.
func FromColumns(c *Columns, opts ...Option) (*Study, error) {
	s := newStudyShell(opts)
	if err := validateColumns(c, s); err != nil {
		return nil, err
	}
	n, ni, mw := len(c.IDs), len(c.InvFlags), s.maskWords

	s.skipped = c.Skipped
	s.records = make([]record, n)
	for i := range s.records {
		f := c.Flags[i]
		s.records[i] = record{
			id:       cve.ID{Year: int(c.IDs[i] >> 32), Seq: int(uint32(c.IDs[i]))},
			mask:     osmap.Mask(c.Masks[i*mw : (i+1)*mw : (i+1)*mw]),
			nos:      int(c.Popcnt[i]),
			class:    classFromIdx(int(multiClassOf(f)) - 1),
			remote:   f&multiRemoteFlag != 0,
			year:     int(c.Years[i]),
			validity: classify.Valid,
			products: int(c.Products[i]),
		}
	}
	s.invalid = make([]record, ni)
	for i := range s.invalid {
		s.invalid[i] = record{
			mask:     osmap.Mask(c.InvMasks[i*mw : (i+1)*mw : (i+1)*mw]),
			validity: validityFromIdx(int(c.InvFlags[i])),
		}
	}

	words, invWords := c.words(), c.invWords()
	idx := &bitIndex{
		n:            n,
		words:        words,
		remote:       c.RemotePost,
		popcnt:       c.Popcnt,
		products:     c.Products,
		minYear:      c.MinYear,
		maxYear:      c.MaxYear,
		multi:        c.Multi,
		multiFlags:   c.MultiFlags,
		multiPairOff: c.MultiPairOff,
		multiPairs:   c.MultiPairs,
		invWords:     invWords,
	}
	idx.distro = make([][]uint64, s.nd)
	for d := range idx.distro {
		idx.distro[d] = c.DistroPost[d*words : (d+1)*words : (d+1)*words]
	}
	for ci := range idx.class {
		idx.class[ci] = c.ClassPost[ci*words : (ci+1)*words : (ci+1)*words]
	}
	if n > 0 {
		idx.yearStart = make([]int, len(c.YearStart))
		for i, v := range c.YearStart {
			idx.yearStart[i] = int(v)
		}
	}
	// Profile postings derive from the class and remote columns into
	// fresh allocations (the adopted region stays read-only).
	fat := make([]uint64, words)
	thin := make([]uint64, words)
	its := make([]uint64, words)
	for i := range fat {
		fat[i] = ^uint64(0)
	}
	if words > 0 && n&63 != 0 {
		fat[words-1] = (uint64(1) << uint(n&63)) - 1
	}
	app := idx.class[classIdx(classify.ClassApplication)]
	for i := range thin {
		thin[i] = fat[i] &^ app[i]
		its[i] = thin[i] & idx.remote[i]
	}
	idx.profile[FatServer-1] = fat
	idx.profile[ThinServer-1] = thin
	idx.profile[IsolatedThinServer-1] = its
	idx.invDistro = make([][]uint64, s.nd)
	for d := range idx.invDistro {
		idx.invDistro[d] = c.InvDistroPost[d*invWords : (d+1)*invWords : (d+1)*invWords]
	}
	for v := range idx.invValidity {
		idx.invValidity[v] = c.InvValidityPost[v*invWords : (v+1)*invWords : (v+1)*invWords]
	}
	s.bitOnce.Do(func() { s.bidx = idx })

	s.relOnce.Do(func() {
		s.relCols = relColumns{off: c.RelOff, refs: c.RelRefs, versions: c.RelVersions}
	})
	return s, nil
}

// validateColumns checks every length, offset and index the adopted
// columns are trusted for, against the universe of the target study.
func validateColumns(c *Columns, s *Study) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("core: columns: "+format, args...)
	}
	if c.NumDistros != s.nd {
		return fail("universe mismatch: columns carry %d distros, registry has %d", c.NumDistros, s.nd)
	}
	if c.MaskWords != s.maskWords {
		return fail("mask width mismatch: columns carry %d words, universe needs %d", c.MaskWords, s.maskWords)
	}
	n, ni := len(c.IDs), len(c.InvFlags)
	for _, ln := range []struct {
		name string
		got  int
		want int
	}{
		{"years", len(c.Years), n},
		{"flags", len(c.Flags), n},
		{"products", len(c.Products), n},
		{"popcnt", len(c.Popcnt), n},
		{"masks", len(c.Masks), n * c.MaskWords},
		{"reloff", len(c.RelOff), n + 1},
		{"invmasks", len(c.InvMasks), ni * c.MaskWords},
		{"distropost", len(c.DistroPost), c.NumDistros * c.words()},
		{"classpost", len(c.ClassPost), 4 * c.words()},
		{"remotepost", len(c.RemotePost), c.words()},
		{"invdistropost", len(c.InvDistroPost), c.NumDistros * c.invWords()},
		{"invvaliditypost", len(c.InvValidityPost), 3 * c.invWords()},
		{"multiflags", len(c.MultiFlags), len(c.Multi)},
		{"multipairoff", len(c.MultiPairOff), len(c.Multi) + 1},
	} {
		if ln.got != ln.want {
			return fail("%s column has %d elements, want %d", ln.name, ln.got, ln.want)
		}
	}
	if n > 0 {
		if c.MinYear > c.MaxYear {
			return fail("year range [%d, %d] inverted", c.MinYear, c.MaxYear)
		}
		span := c.MaxYear - c.MinYear
		if len(c.YearStart) != span+2 {
			return fail("yearstart column has %d elements, want %d", len(c.YearStart), span+2)
		}
		prev := int64(0)
		for i, v := range c.YearStart {
			if v < prev || v > int64(n) {
				return fail("yearstart[%d] = %d not monotonic within [0, %d]", i, v, n)
			}
			prev = v
		}
		if c.YearStart[span+1] != int64(n) {
			return fail("yearstart terminator %d != record count %d", c.YearStart[span+1], n)
		}
	} else if len(c.YearStart) != 0 {
		return fail("yearstart column present for an empty record set")
	}
	for i := range c.IDs {
		if y := int(c.Years[i]); n > 0 && (y < c.MinYear || y > c.MaxYear) {
			return fail("record %d year %d outside [%d, %d]", i, y, c.MinYear, c.MaxYear)
		}
		if got := maskOnes(c.Masks[i*c.MaskWords : (i+1)*c.MaskWords]); got != int(c.Popcnt[i]) {
			return fail("record %d popcount %d disagrees with its mask (%d bits)", i, c.Popcnt[i], got)
		}
	}
	if c.RelOff[0] != 0 {
		return fail("reloff[0] = %d, want 0", c.RelOff[0])
	}
	for i := 1; i < len(c.RelOff); i++ {
		if c.RelOff[i] < c.RelOff[i-1] || int(c.RelOff[i]) > len(c.RelRefs) {
			return fail("reloff[%d] = %d not monotonic within [0, %d]", i, c.RelOff[i], len(c.RelRefs))
		}
	}
	if int(c.RelOff[n]) != len(c.RelRefs) {
		return fail("reloff terminator %d != release ref count %d", c.RelOff[n], len(c.RelRefs))
	}
	for i, ref := range c.RelRefs {
		if int(uint32(ref)) >= len(c.RelVersions) {
			return fail("release ref %d names version %d of %d", i, uint32(ref), len(c.RelVersions))
		}
	}
	for i, f := range c.InvFlags {
		if f > 2 {
			return fail("invalid record %d validity flag %d out of range", i, f)
		}
	}
	if len(c.MultiPairOff) > 0 {
		if c.MultiPairOff[0] != 0 {
			return fail("multipairoff[0] = %d, want 0", c.MultiPairOff[0])
		}
		for i := 1; i < len(c.MultiPairOff); i++ {
			if c.MultiPairOff[i] < c.MultiPairOff[i-1] || int(c.MultiPairOff[i]) > len(c.MultiPairs) {
				return fail("multipairoff[%d] = %d not monotonic within [0, %d]", i, c.MultiPairOff[i], len(c.MultiPairs))
			}
		}
		if int(c.MultiPairOff[len(c.Multi)]) != len(c.MultiPairs) {
			return fail("multipairoff terminator %d != pair ref count %d", c.MultiPairOff[len(c.Multi)], len(c.MultiPairs))
		}
	}
	prevRec := int32(-1)
	for i, rec := range c.Multi {
		if rec <= prevRec || int(rec) >= n {
			return fail("multi[%d] = %d not ascending within [0, %d)", i, rec, n)
		}
		prevRec = rec
	}
	nPairs := len(s.pairs)
	for i, p := range c.MultiPairs {
		if p < 0 || int(p) >= nPairs {
			return fail("multipairs[%d] = %d names pair %d of %d", i, p, p, nPairs)
		}
	}
	return nil
}

func maskOnes(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}
