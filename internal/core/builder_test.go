package core

import (
	"reflect"
	"testing"

	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
)

// addInBatches feeds entries to the builder in fixed-size batches.
func addInBatches(b *Builder, entries []*cve.Entry, batch int) {
	for lo := 0; lo < len(entries); lo += batch {
		hi := lo + batch
		if hi > len(entries) {
			hi = len(entries)
		}
		b.Add(entries[lo:hi]...)
	}
}

// studyFingerprint captures every table the engines answer, for
// whole-study identity comparison.
func studyFingerprint(s *Study) map[string]any {
	rows, distinct := s.ValidityTable()
	classRows, shares := s.ClassTable()
	fp := map[string]any{
		"validity":  rows,
		"distinct":  distinct,
		"class":     classRows,
		"shares":    shares,
		"kwiseProd": s.KWiseProducts(FatServer),
		"kwiseClus": s.KWiseClusters(IsolatedThinServer),
		"describe":  s.Describe(),
	}
	for _, p := range Profiles() {
		fp["pairs"+p.String()] = s.PairMatrix(p)
	}
	for _, d := range s.Distros() {
		fp["temporal"+d.String()] = s.TemporalSeries(d)
	}
	for _, p := range s.Pairs() {
		fp["period"+p.A.String()+p.B.String()] = s.PeriodSplit(p, 2005)
		fp["parts"+p.A.String()+p.B.String()] = s.PartBreakdown(p)
	}
	return fp
}

// TestBuilderMatchesNewStudy asserts the incremental builder lands on a
// Study identical to the all-at-once path, for any batch split, engine
// and worker count.
func TestBuilderMatchesNewStudy(t *testing.T) {
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	for _, tc := range []struct {
		name  string
		batch int
		opts  []Option
	}{
		{"bitset serial batch1", 1, nil},
		{"bitset serial batch17", 17, nil},
		{"bitset parallel", 512, []Option{WithParallelism(4)}},
		{"scan parallel", 100, []Option{WithEngine(EngineScan), WithParallelism(4)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := NewStudy(c.Entries, tc.opts...)
			b := NewBuilder(tc.opts...)
			addInBatches(b, c.Entries, tc.batch)
			if got, total := b.Added(), len(c.Entries); got != total {
				t.Fatalf("Added() = %d, want %d", got, total)
			}
			s := b.Finish()
			if !reflect.DeepEqual(studyFingerprint(s), studyFingerprint(want)) {
				t.Fatal("builder study differs from NewStudy")
			}
		})
	}
}

// TestBuilderGuards asserts use-after-Finish panics rather than
// silently corrupting an immutable Study.
func TestBuilderGuards(t *testing.T) {
	b := NewBuilder()
	b.Finish()
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Finish did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Add", func() { b.Add(nil...) })
	assertPanics("Finish", func() { b.Finish() })
}
