package core

import (
	"sort"

	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// Mergeable partial aggregates. A Study built over a year-range slice of
// the corpus (corpus.ShardByYear) answers every paper table for its
// slice; because each vulnerability belongs to exactly one publication
// year, the slices partition the record set and raw counts add across
// shards. The helpers here are the other half of that contract: they
// finalize merged raw counts into the derived figures (percentage
// shares, filter reduction, most-shared ordering, replica-set ranking)
// with exactly the arithmetic the single-process Study uses, so a
// scatter-gather front-end reproduces its bytes. The in-process engines
// (serial, parallel, bitset) delegate to the same helpers, keeping the
// two paths one implementation.

// ClassShares finalizes Table II's percentage shares from the distinct
// per-class counts and the total valid count. All three in-process
// engines and the gateway merge path share this exact float expression.
func ClassShares(counts [4]int, n int) [4]float64 {
	var shares [4]float64
	if n > 0 {
		for i := range counts {
			shares[i] = 100 * float64(counts[i]) / float64(n)
		}
	}
	return shares
}

// ClassDistinct returns the distinct valid vulnerability counts per
// component class alongside the valid total — the raw, additive half of
// Table II. Summing both across shards and applying ClassShares yields
// the full-corpus shares.
func (s *Study) ClassDistinct() (counts [4]int, n int) {
	for i := range s.records {
		if ci := classIdx(s.records[i].class); ci >= 0 {
			counts[ci]++
		}
	}
	return counts, len(s.records)
}

// FilterReductionFrom computes §IV-E(1)'s average relative overlap
// reduction from parallel slices of per-pair counts under the two
// profiles, in pair order, skipping pairs with a zero baseline.
// Study.FilterReduction delegates here; a gateway applies it to
// shard-summed pair counts and reproduces the same float.
func FilterReductionFrom(from, to []int) float64 {
	var sum float64
	n := 0
	for i := range from {
		base := from[i]
		if base == 0 {
			continue
		}
		sum += float64(base-to[i]) / float64(base)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// SharedIDCount is one most-shared listing element in mergeable form:
// the identifier and its OS-product count.
type SharedIDCount struct {
	ID       cve.ID
	Products int
}

// MostSharedCounts returns the first n elements of the most-shared
// order (product count descending, ties by CVE ID ascending) as raw
// (ID, count) pairs. Any entry of the global top n lives in its own
// shard's top n, so merging per-shard prefixes with MergeMostShared
// reproduces the full-corpus listing.
func (s *Study) MostSharedCounts(n int) []SharedIDCount {
	order := s.mostSharedOrder()
	if n > len(order) {
		n = len(order)
	}
	out := make([]SharedIDCount, n)
	for i := 0; i < n; i++ {
		r := &s.records[order[i]]
		out[i] = SharedIDCount{ID: r.id, Products: r.products}
	}
	return out
}

// MergeMostShared merges per-shard most-shared prefixes into the global
// top n under the Study's order: product count descending, ties by CVE
// ID ascending. IDs are unique across shards (each vulnerability lives
// in exactly one year slice), so the order is total.
func MergeMostShared(lists [][]SharedIDCount, n int) []SharedIDCount {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]SharedIDCount, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Products != all[j].Products {
			return all[i].Products > all[j].Products
		}
		return all[i].ID.Less(all[j].ID)
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n:n]
}

// MergeYearCounts adds per-year counts across shards (temporal series,
// k-wise clusters — any map[int]int aggregate).
func MergeYearCounts(maps []map[int]int) map[int]int {
	out := make(map[int]int)
	for _, m := range maps {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// RankSetsFromCosts enumerates all size-k subsets of the candidates in
// presentation order and ranks them by cost ascending (stable, so ties
// keep enumeration order) — Study.RankReplicaSets' algorithm lifted out
// of the Study so a gateway can rank from shard-merged costs. pairCost
// prices one pair; singleCost prices the homogeneous one-member set.
func RankSetsFromCosts(candidates []osmap.Distro, k int, strategy Strategy, pairCost func(osmap.Pair) int, singleCost func(osmap.Distro) int) []RankedSet {
	var out []RankedSet
	subset := make([]osmap.Distro, 0, k)
	var recurse func(start int)
	recurse = func(start int) {
		if len(subset) == k {
			if strategy == OnePerFamily && !onePerFamily(subset) {
				return
			}
			members := append([]osmap.Distro(nil), subset...)
			cost := 0
			if len(members) == 1 {
				cost = singleCost(members[0])
			} else {
				for _, p := range osmap.PairsOf(members) {
					cost += pairCost(p)
				}
			}
			out = append(out, RankedSet{Members: members, Cost: cost})
			return
		}
		for i := start; i < len(candidates); i++ {
			subset = append(subset, candidates[i])
			recurse(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	recurse(0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}
