package core

import (
	"sort"

	"osdiversity/internal/classify"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

// DeltaBuilder derives a new Study from an existing one plus a batch of
// delta entries — the ingestion half of live corpus epochs. NVD's
// "modified" feeds republish entries by CVE identifier, so the delta
// semantics are last-writer-wins per ID: every base record (valid or
// invalid) whose identifier reappears in the delta is dropped and the
// delta's digest of that entry takes its place, whatever its new
// outcome (valid, invalid, or skipped). Entries with identifiers the
// base has never seen simply append.
//
// Identity guarantee: the finished Study is identical — every table,
// selection, release overlap and attack result — to a cold NewStudy
// build over "the base's entry sequence with superseded identifiers
// removed, followed by the delta entries in arrival order", at any
// batch split and worker count. (Both paths append records in input
// order and finish with the same stable year sort, so they land on the
// identical record layout.)
//
// Memory independence: the finished Study shares no mutable or mapped
// memory with the base. Mask arenas are copied and the release
// reference columns are rebuilt on the heap, so a base study backed by
// an mmap'd snapshot can be closed (or swapped out and dropped) without
// invalidating any derived epoch.
//
// Known accounting edges, both inherent to what the base retains:
// snapshot-adopted invalid records carry no identifier (the zero ID)
// and can never be superseded, and base *skipped* entries are counted
// but not identified — a delta that republishes a formerly skipped
// identifier appends its record without decrementing the old skip
// count. Both affect only the Table I removed/skipped counters, never
// the valid-record analyses.
type DeltaBuilder struct {
	base     *Study
	s        *Study
	finished bool

	// outcomes records every delta entry's digest in arrival order;
	// latest maps each identifier to its last occurrence, so re-adding
	// an ID within one delta set also resolves last-writer-wins.
	outcomes []deltaOutcome
	latest   map[cve.ID]int
}

// The three digest outcomes of one delta entry.
const (
	deltaValid int8 = iota
	deltaInvalid
	deltaSkip
)

type deltaOutcome struct {
	id   cve.ID
	kind int8
	rec  record // zero for deltaSkip
}

// NewDeltaBuilder starts an incremental delta build over base. The new
// study inherits the base's registry, classifier, engine and worker
// count; the base itself is never mutated and keeps answering queries
// while the delta digests.
func NewDeltaBuilder(base *Study) *DeltaBuilder {
	s := newStudyShell([]Option{WithRegistry(base.registry), WithClassifier(base.classifier)})
	s.workerCount.Store(base.workerCount.Load())
	s.engineMode.Store(base.engineMode.Load())
	return &DeltaBuilder{base: base, s: s, latest: make(map[cve.ID]int)}
}

// Add digests one batch of delta entries (concurrently on the worker
// pool, like Study ingestion). The batch slice is not retained. Add
// panics after Finish.
func (b *DeltaBuilder) Add(entries ...*cve.Entry) {
	if b.finished {
		panic("core: DeltaBuilder.Add after Finish")
	}
	s := b.s
	type digested struct {
		rec record
		ok  bool
	}
	arena := make([]uint64, len(entries)*s.maskWords)
	maskAt := func(i int) osmap.Mask {
		return osmap.Mask(arena[i*s.maskWords : (i+1)*s.maskWords : (i+1)*s.maskWords])
	}
	out := make([]digested, len(entries))
	if s.isParallel() && len(entries) >= minParallelItems {
		runShards(s.workers(), len(entries), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rec, ok := s.digest(entries[i], maskAt(i))
				out[i] = digested{rec, ok}
			}
		})
	} else {
		for i, e := range entries {
			rec, ok := s.digest(e, maskAt(i))
			out[i] = digested{rec, ok}
		}
	}
	for i, e := range entries {
		o := deltaOutcome{id: e.ID}
		switch {
		case !out[i].ok:
			o.kind = deltaSkip
		case out[i].rec.validity != classify.Valid:
			o.kind = deltaInvalid
			o.rec = out[i].rec
		default:
			o.kind = deltaValid
			o.rec = out[i].rec
		}
		b.latest[e.ID] = len(b.outcomes)
		b.outcomes = append(b.outcomes, o)
	}
}

// Added reports how many delta entries the builder has digested so far.
func (b *DeltaBuilder) Added() int { return len(b.outcomes) }

// Finish resolves the per-ID outcomes against the base and seals the
// merged Study. The builder must not be used afterwards.
func (b *DeltaBuilder) Finish() *Study {
	if b.finished {
		panic("core: DeltaBuilder.Finish called twice")
	}
	b.finished = true
	base, s := b.base, b.s

	// Final per-ID delta outcomes, in arrival order of each identifier's
	// last occurrence.
	final := b.outcomes[:0:0]
	for i, o := range b.outcomes {
		if b.latest[o.id] == i {
			final = append(final, o)
		}
	}
	superseded := make(map[cve.ID]bool, len(final))
	for _, o := range final {
		superseded[o.id] = true
	}

	var zeroID cve.ID
	keepRecs := make([]int, 0, len(base.records))
	for j := range base.records {
		if !superseded[base.records[j].id] {
			keepRecs = append(keepRecs, j)
		}
	}
	keepInv := make([]int, 0, len(base.invalid))
	for j := range base.invalid {
		// Snapshot-adopted invalid records carry the zero ID; only
		// identified records can be superseded.
		if base.invalid[j].id == zeroID || !superseded[base.invalid[j].id] {
			keepInv = append(keepInv, j)
		}
	}
	nValid, nInv, nSkip := 0, 0, 0
	for _, o := range final {
		switch o.kind {
		case deltaValid:
			nValid++
		case deltaInvalid:
			nInv++
		default:
			nSkip++
		}
	}

	// Copy every retained mask into fresh contiguous arenas: the base's
	// arenas may alias an mmap'd snapshot whose lifetime the derived
	// study must not depend on.
	mw := s.maskWords
	recs := make([]record, 0, len(keepRecs)+nValid)
	relSrc := make([]int32, 0, len(keepRecs)+nValid)
	arena := make([]uint64, (len(keepRecs)+nValid)*mw)
	ai := 0
	takeMask := func(src osmap.Mask) osmap.Mask {
		m := osmap.Mask(arena[ai*mw : (ai+1)*mw : (ai+1)*mw])
		copy(m, src)
		ai++
		return m
	}
	for _, j := range keepRecs {
		r := base.records[j]
		r.mask = takeMask(r.mask)
		recs = append(recs, r)
		relSrc = append(relSrc, int32(j))
	}
	for _, o := range final {
		if o.kind != deltaValid {
			continue
		}
		r := o.rec
		r.mask = takeMask(r.mask)
		recs = append(recs, r)
		relSrc = append(relSrc, -1)
	}

	inv := make([]record, 0, len(keepInv)+nInv)
	invArena := make([]uint64, (len(keepInv)+nInv)*mw)
	ii := 0
	takeInvMask := func(src osmap.Mask) osmap.Mask {
		m := osmap.Mask(invArena[ii*mw : (ii+1)*mw : (ii+1)*mw])
		copy(m, src)
		ii++
		return m
	}
	for _, j := range keepInv {
		r := base.invalid[j]
		r.mask = takeInvMask(r.mask)
		inv = append(inv, r)
	}
	for _, o := range final {
		if o.kind != deltaInvalid {
			continue
		}
		r := o.rec
		r.mask = takeInvMask(r.mask)
		inv = append(inv, r)
	}

	// The stable year sort runs through an explicit permutation so the
	// per-record release-reference provenance co-sorts with the records.
	perm := make([]int, len(recs))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool { return recs[perm[x]].year < recs[perm[y]].year })
	sorted := make([]record, len(recs))
	sortedSrc := make([]int32, len(recs))
	for k, i := range perm {
		sorted[k] = recs[i]
		sortedSrc[k] = relSrc[i]
	}

	s.records = sorted
	s.invalid = inv
	s.skipped = base.skipped + nSkip
	b.buildRelColumns(sortedSrc)
	return s
}

// buildRelColumns eagerly merges the release-reference columns: kept
// base records copy their refs out of the base's columns (remapping
// version indices into a fresh table), delta records derive theirs from
// the retained entry exactly as the lazy relColumns build does. Eager
// because the lazy path walks record.entry.Products — nil for base
// records adopted from a snapshot — and because the merged table must
// be indexed by the *new* study's sorted record order. src[i] is the
// base record index behind sorted record i, or -1 for a delta record.
func (b *DeltaBuilder) buildRelColumns(src []int32) {
	s, base := b.s, b.base
	baseRC := base.relColumns()
	rc := relColumns{
		off:      make([]int32, len(s.records)+1),
		refs:     []uint64{},
		versions: []string{},
	}
	vidx := make(map[string]uint32)
	intern := func(v string) uint32 {
		vi, ok := vidx[v]
		if !ok {
			vi = uint32(len(rc.versions))
			vidx[v] = vi
			rc.versions = append(rc.versions, v)
		}
		return vi
	}
	for i := range s.records {
		start := len(rc.refs)
		if j := src[i]; j >= 0 {
			// Base refs are already per-record deduped; remapping the
			// version index is injective, so a plain copy preserves that.
			for _, ref := range baseRC.refs[baseRC.off[j]:baseRC.off[j+1]] {
				v := intern(baseRC.versions[uint32(ref)])
				rc.refs = append(rc.refs, ref&^uint64(^uint32(0))|uint64(v))
			}
		} else {
			for _, p := range s.records[i].entry.Products {
				d, ok := s.registry.Cluster(p)
				if !ok {
					continue
				}
				packed := uint64(d)<<32 | uint64(intern(p.Version))
				dup := false
				for _, prev := range rc.refs[start:] {
					if prev == packed {
						dup = true
						break
					}
				}
				if !dup {
					rc.refs = append(rc.refs, packed)
				}
			}
		}
		rc.off[i+1] = int32(len(rc.refs))
	}
	s.relOnce.Do(func() { s.relCols = rc })
}

// SelfCheck deep-validates the study's internal consistency by round
// tripping it through the exported column form and the exhaustive
// validateColumns checks the snapshot loader trusts hostile files to —
// lengths, offsets, popcounts, posting shapes, year segmentation. As a
// side effect it forces the bitset index and the release-reference
// columns, so a freshly built epoch is query-warm before it is swapped
// in.
func (s *Study) SelfCheck() error {
	return validateColumns(s.ExportColumns(), s)
}
