//go:build race

package core

// Race-instrumented runs still prove the engines race-clean, just on a
// smaller synthetic corpus so CI stays fast.
const syntheticTestEntries = 20_000

const syntheticTestEntriesShort = 5_000
