package core

import "osdiversity/internal/cve"

// Builder assembles a Study incrementally — the digestion half of the
// streaming ingestion pipeline. Where NewStudy needs every entry
// materialized up front, a Builder consumes batches as they decode
// (each batch digesting on the WithParallelism worker pool) and only
// keeps the compact per-entry records, so the full []*cve.Entry slice
// never has to exist at once.
//
// Identity guarantee: for the same entry sequence, any batch split
// produces a Study identical to NewStudy's — batches append records in
// input order and Finish applies the same stable year sort, so every
// table is byte-identical to the materialized path.
type Builder struct {
	s        *Study
	finished bool
}

// NewBuilder starts an incremental Study build. The options are those
// of NewStudy (registry, classifier, engine, parallelism).
func NewBuilder(opts ...Option) *Builder {
	return &Builder{s: newStudyShell(opts)}
}

// Add digests one batch of entries. The batch slice is not retained
// (the entries themselves are, as in NewStudy), so callers may reuse
// its backing array. Add panics after Finish: the Study's record set
// is immutable once queries can run.
func (b *Builder) Add(entries ...*cve.Entry) {
	if b.finished {
		panic("core: Builder.Add after Finish")
	}
	b.s.ingest(entries)
}

// Added reports how many entries the builder has digested so far
// (valid + invalid + skipped).
func (b *Builder) Added() int {
	return len(b.s.records) + len(b.s.invalid) + b.s.skipped
}

// Finish seals the record set and returns the Study. The Builder must
// not be used afterwards.
func (b *Builder) Finish() *Study {
	if b.finished {
		panic("core: Builder.Finish called twice")
	}
	b.finished = true
	b.s.finalize()
	return b.s
}
