package core

import (
	"testing"

	"osdiversity/internal/osmap"
	"osdiversity/internal/paperdata"
)

func TestFamilyCorrelationsMatchPaperObservation(t *testing.T) {
	// §IV-A: "a strong correlation among the peaks and valleys of both
	// the Windows and Linux families, and somewhat to a lesser extent in
	// the BSD family". The figure's visually obvious pairs must correlate
	// strongly; the BSD family must correlate on average. (Ubuntu's
	// launch ramp makes the Linux *mean* uninformative in any data set —
	// the paper's observation is driven by Debian-RedHat.)
	s := paperStudy(t)
	flagship := []struct {
		pair osmap.Pair
		min  float64
	}{
		{osmap.MakePair(osmap.Windows2000, osmap.Windows2003), 0.3},
		{osmap.MakePair(osmap.Debian, osmap.RedHat), 0.5},
		{osmap.MakePair(osmap.OpenBSD, osmap.FreeBSD), 0.3},
	}
	corr := func(p osmap.Pair) float64 {
		for _, f := range []osmap.Family{osmap.FamilyWindows, osmap.FamilyLinux, osmap.FamilyBSD} {
			for _, c := range s.FamilyCorrelations(f) {
				if c.Pair == p && c.Valid {
					return c.R
				}
			}
		}
		t.Fatalf("no correlation computed for %v", p)
		return 0
	}
	for _, fl := range flagship {
		if r := corr(fl.pair); r < fl.min {
			t.Errorf("%v correlation = %.2f, want >= %.1f", fl.pair, r, fl.min)
		}
	}
	if mean, ok := s.MeanFamilyCorrelation(osmap.FamilyBSD); !ok || mean <= 0.2 {
		t.Errorf("BSD family mean correlation = %.2f, paper observes clear correlation", mean)
	}
}

func TestFamilyCorrelationCells(t *testing.T) {
	s := paperStudy(t)
	cells := s.FamilyCorrelations(osmap.FamilyWindows)
	if len(cells) != 3 {
		t.Fatalf("Windows family has %d pairs, want 3", len(cells))
	}
	for _, c := range cells {
		if c.Valid && (c.R < -1.000001 || c.R > 1.000001) {
			t.Errorf("%v: correlation %f out of range", c.Pair, c.R)
		}
	}
}

func TestTrendsMatchPaperObservation(t *testing.T) {
	// §IV-A: BSD and Linux families report fewer vulnerabilities in the
	// last five years of the window.
	s := paperStudy(t)
	for _, f := range []osmap.Family{osmap.FamilyBSD, osmap.FamilyLinux} {
		trend, err := s.FamilyTrend(f, 2006)
		if err != nil {
			t.Fatal(err)
		}
		if !trend.Declining {
			t.Errorf("%v family not declining: early %.1f/yr, late %.1f/yr",
				f, trend.EarlyPerYear, trend.LatePerYear)
		}
	}
}

func TestTrendPerOS(t *testing.T) {
	s := paperStudy(t)
	rep := s.Trend(osmap.OpenBSD, 2006)
	if rep.EarlyPerYear <= 0 || rep.LatePerYear <= 0 {
		t.Fatalf("OpenBSD trend degenerate: %+v", rep)
	}
	// Windows 2008 shipped in 2008: it has no early volume at all.
	w8 := s.Trend(osmap.Windows2008, 2006)
	if w8.EarlyPerYear != 0 {
		t.Errorf("Windows2008 early volume = %.1f, want 0", w8.EarlyPerYear)
	}
	if w8.Declining {
		t.Error("Windows2008 reported declining despite shipping inside the window")
	}
}

func TestDiversityScore(t *testing.T) {
	s := paperStudy(t)
	// A pair with zero overlap scores a full 1.0.
	zero := osmap.MakePair(osmap.NetBSD, osmap.Ubuntu)
	if got := s.DiversityScore(zero, FatServer); got != 1.0 {
		t.Errorf("disjoint pair score = %f, want 1", got)
	}
	// Windows 2000/2003 share heavily; their score must be markedly
	// lower than the disjoint pair's and within [0,1].
	win := osmap.MakePair(osmap.Windows2000, osmap.Windows2003)
	got := s.DiversityScore(win, FatServer)
	if got < 0 || got >= 0.9 {
		t.Errorf("Windows pair score = %f, want clearly below disjoint", got)
	}
}

func TestRankPairsByDiversity(t *testing.T) {
	s := paperStudy(t)
	ranked := s.RankPairsByDiversity(IsolatedThinServer)
	if len(ranked) != 55 {
		t.Fatalf("ranked %d pairs", len(ranked))
	}
	first := s.DiversityScore(ranked[0], IsolatedThinServer)
	last := s.DiversityScore(ranked[len(ranked)-1], IsolatedThinServer)
	if first < last {
		t.Errorf("ranking not descending: %f ... %f", first, last)
	}
	// The most-sharing pair of Table III must rank last or near last.
	worst := ranked[len(ranked)-1]
	if worst != osmap.MakePair(osmap.Windows2000, osmap.Windows2003) {
		t.Errorf("worst pair = %v, expected Windows2000-Windows2003", worst)
	}
	_ = paperdata.PairTable // keep import honest if assertions change
}
