package core

import (
	"math/bits"
	"sort"

	"osdiversity/internal/classify"
	"osdiversity/internal/osmap"
)

// This file is the columnar bitset engine — the Study's default hot
// path. At first use it transposes the row-oriented record slice into
// posting bitsets: for every distribution, component class, profile and
// validity state, one packed []uint64 with bit i representing the i-th
// record. Records are sorted by publication year at ingestion, so the
// per-year segment offsets make every period/window query a popcount
// over a contiguous bit range. Each table then reduces to word-wise
// AND + popcount loops, sharded across distros/pairs on the same worker
// pool the scan engine uses; at 100k+ entries the engine streams a few
// hundred kilobytes of postings per table instead of megabytes of
// records, which is where its order-of-magnitude win comes from.

// Engine selects the execution strategy of the table queries.
type Engine int

// The two engines. Both produce byte-identical tables.
const (
	// EngineScan walks the record slice (serially, or sharded with
	// WithParallelism) — the PR-1 reference paths.
	EngineScan Engine = iota
	// EngineBitset answers from the columnar posting-bitset index; the
	// default.
	EngineBitset
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineScan:
		return "scan"
	case EngineBitset:
		return "bitset"
	default:
		return "unknown-engine"
	}
}

// WithEngine selects the execution engine (the default is EngineBitset).
func WithEngine(e Engine) Option {
	return func(s *Study) { s.engineMode.Store(int32(e)) }
}

// SetEngine switches the engine of an existing Study. Cached tables are
// kept: every engine produces identical results.
func (s *Study) SetEngine(e Engine) { s.engineMode.Store(int32(e)) }

// Engine reports the active engine.
func (s *Study) Engine() Engine { return Engine(s.engineMode.Load()) }

func (s *Study) useBitset() bool { return s.Engine() == EngineBitset }

// bitIndex is the columnar index over the (immutable) record set.
type bitIndex struct {
	n     int // valid records
	words int

	distro   [][]uint64 // nd posting bitsets over valid records
	class    [4][]uint64
	remote   []uint64
	profile  [3][]uint64 // indexed Profile-1
	popcnt   []uint16    // per-record affected-distro count
	products []uint16    // per-record affected-product count

	// Year segmentation: records are sorted by year, so yearStart[k] is
	// the first record index with year >= minYear+k and
	// yearStart[span+1] == n.
	minYear, maxYear int
	yearStart        []int

	// Compact multi-record pair postings: only records affecting >= 2
	// distros can contribute to any pair, so the all-pairs queries
	// stream these packed columns (a few hundred KB at 100k entries)
	// instead of AND-ing every pair's full postings. multi holds the
	// record indices ascending (hence year-sorted); multiFlags packs
	// classIdx+1 (bits 0-2; 0 = unclassified) and the remote flag
	// (bit 3), which together decide every profile membership; each
	// record's C(k,2) pair indices are materialized once into the
	// multiPairs arena, delimited by multiPairOff.
	multi        []int32
	multiFlags   []uint8
	multiPairOff []int32
	multiPairs   []int32

	// Postings over the invalid records (Table I's removed columns).
	invWords    int
	invDistro   [][]uint64
	invValidity [3][]uint64 // unknown, unspecified, disputed
}

// bitIndex lazily builds (once) and returns the columnar index.
func (s *Study) bitIndex() *bitIndex {
	s.bitOnce.Do(func() { s.bidx = s.buildBitIndex() })
	return s.bidx
}

// alignedShards is runShards with shard boundaries aligned to 64-record
// multiples, so concurrent builders never touch the same bitset word.
func alignedShards(workers, n int, body func(lo, hi int)) {
	workers = capWorkers(workers)
	if workers <= 1 || n < minParallelItems {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	chunk = (chunk + 63) &^ 63
	done := make(chan struct{})
	shards := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		shards++
		go func(lo, hi int) {
			body(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < shards; i++ {
		<-done
	}
}

func (s *Study) buildBitIndex() *bitIndex {
	n := len(s.records)
	idx := &bitIndex{
		n:        n,
		words:    (n + 63) / 64,
		popcnt:   make([]uint16, n),
		products: make([]uint16, n),
	}
	idx.distro = make([][]uint64, s.nd)
	for d := range idx.distro {
		idx.distro[d] = make([]uint64, idx.words)
	}
	for c := range idx.class {
		idx.class[c] = make([]uint64, idx.words)
	}
	idx.remote = make([]uint64, idx.words)

	alignedShards(s.workers(), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := &s.records[i]
			w, b := i>>6, uint64(1)<<uint(i&63)
			r.mask.ForEachBit(func(bi int) { idx.distro[bi][w] |= b })
			if ci := classIdx(r.class); ci >= 0 {
				idx.class[ci][w] |= b
			}
			if r.remote {
				idx.remote[w] |= b
			}
			idx.popcnt[i] = clampU16(r.nos)
			idx.products[i] = clampU16(r.products)
		}
	})

	// Profile postings: Fat = everything, Thin = not Application,
	// IsolatedThin = Thin ∧ remote. The tail bits beyond n stay zero.
	fat := make([]uint64, idx.words)
	thin := make([]uint64, idx.words)
	its := make([]uint64, idx.words)
	for i := range fat {
		fat[i] = ^uint64(0)
	}
	if idx.words > 0 && n&63 != 0 {
		fat[idx.words-1] = (uint64(1) << uint(n&63)) - 1
	}
	app := idx.class[classIdx(classify.ClassApplication)]
	for i := range thin {
		thin[i] = fat[i] &^ app[i]
		its[i] = thin[i] & idx.remote[i]
	}
	idx.profile[FatServer-1] = fat
	idx.profile[ThinServer-1] = thin
	idx.profile[IsolatedThinServer-1] = its

	// Year segment offsets over the year-sorted records.
	if n > 0 {
		idx.minYear = s.records[0].year
		idx.maxYear = s.records[n-1].year
		span := idx.maxYear - idx.minYear
		idx.yearStart = make([]int, span+2)
		pos := 0
		for k := 0; k <= span; k++ {
			for pos < n && s.records[pos].year < idx.minYear+k {
				pos++
			}
			idx.yearStart[k] = pos
		}
		idx.yearStart[span+1] = n
	}

	// Compact multi-record pair postings for the pair-family queries.
	nMulti, nPairRefs := 0, 0
	for i := range s.records {
		if k := s.records[i].nos; k >= 2 {
			nMulti++
			nPairRefs += k * (k - 1) / 2
		}
	}
	idx.multi = make([]int32, 0, nMulti)
	idx.multiFlags = make([]uint8, 0, nMulti)
	idx.multiPairOff = make([]int32, 1, nMulti+1)
	idx.multiPairs = make([]int32, 0, nPairRefs)
	bs := make([]int, s.nd)
	for i := range s.records {
		r := &s.records[i]
		if r.nos < 2 {
			continue
		}
		idx.multi = append(idx.multi, int32(i))
		flags := uint8(classIdx(r.class) + 1)
		if r.remote {
			flags |= multiRemoteFlag
		}
		idx.multiFlags = append(idx.multiFlags, flags)
		nb := r.mask.Bits(bs)
		for x := 0; x < nb; x++ {
			row := bs[x] * s.nd
			for y := x + 1; y < nb; y++ {
				idx.multiPairs = append(idx.multiPairs, int32(s.pairAt[row+bs[y]]))
			}
		}
		idx.multiPairOff = append(idx.multiPairOff, int32(len(idx.multiPairs)))
	}

	// Invalid-record postings for Table I.
	ni := len(s.invalid)
	idx.invWords = (ni + 63) / 64
	idx.invDistro = make([][]uint64, s.nd)
	for d := range idx.invDistro {
		idx.invDistro[d] = make([]uint64, idx.invWords)
	}
	for v := range idx.invValidity {
		idx.invValidity[v] = make([]uint64, idx.invWords)
	}
	alignedShards(s.workers(), ni, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := &s.invalid[i]
			w, b := i>>6, uint64(1)<<uint(i&63)
			r.mask.ForEachBit(func(bi int) { idx.invDistro[bi][w] |= b })
			idx.invValidity[validityIdx(r.validity)][w] |= b
		}
	})
	return idx
}

func clampU16(v int) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

// --- popcount kernels ----------------------------------------------------

func popcountWords(a []uint64) int {
	n := 0
	for _, w := range a {
		n += bits.OnesCount64(w)
	}
	return n
}

func andPopcount(a, b []uint64) int {
	b = b[:len(a)]
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return n
}

func and3Popcount(a, b, c []uint64) int {
	b = b[:len(a)]
	c = c[:len(a)]
	n := 0
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return n
}

// popcountRange counts set bits of a within bit positions [lo, hi).
func popcountRange(a []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << uint(lo&63)
	tail := ^uint64(0) >> uint(63-((hi-1)&63))
	if loW == hiW {
		return bits.OnesCount64(a[loW] & head & tail)
	}
	n := bits.OnesCount64(a[loW] & head)
	for i := loW + 1; i < hiW; i++ {
		n += bits.OnesCount64(a[i])
	}
	n += bits.OnesCount64(a[hiW] & tail)
	return n
}

// andPopcountRange counts bits of a∧b within bit positions [lo, hi).
func andPopcountRange(a, b []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	head := ^uint64(0) << uint(lo&63)
	tail := ^uint64(0) >> uint(63-((hi-1)&63))
	if loW == hiW {
		return bits.OnesCount64(a[loW] & b[loW] & head & tail)
	}
	n := bits.OnesCount64(a[loW] & b[loW] & head)
	for i := loW + 1; i < hiW; i++ {
		n += bits.OnesCount64(a[i] & b[i])
	}
	n += bits.OnesCount64(a[hiW] & b[hiW] & tail)
	return n
}

// --- range helpers -------------------------------------------------------

// cutIndex returns the first record index with year > y (records are
// year-sorted), i.e. the exclusive end of the history side of a split.
func (idx *bitIndex) cutIndex(y int) int {
	switch {
	case idx.n == 0 || y < idx.minYear:
		return 0
	case y >= idx.maxYear:
		return idx.n
	default:
		return idx.yearStart[y-idx.minYear+1]
	}
}

// recRange maps a selection window onto the [lo, hi) record range.
func (idx *bitIndex) recRange(w SelectionWindow) (lo, hi int) {
	if idx.n == 0 {
		return 0, 0
	}
	lo = 0
	if w.FromYear != 0 {
		switch {
		case w.FromYear > idx.maxYear:
			return 0, 0
		case w.FromYear > idx.minYear:
			lo = idx.yearStart[w.FromYear-idx.minYear]
		}
	}
	hi = idx.n
	if w.ToYear != 0 {
		hi = idx.cutIndex(w.ToYear)
	}
	return lo, hi
}

// --- table queries -------------------------------------------------------

func (s *Study) validityBitset() *validityResult {
	idx := s.bitIndex()
	res := &validityResult{rows: make([]ValidityRow, s.nd)}
	runShards(s.workers(), s.nd, func(lo, hi int) {
		for d := lo; d < hi; d++ {
			res.rows[d] = ValidityRow{
				Distro:      s.distros[d],
				Valid:       popcountWords(idx.distro[d]),
				Unknown:     andPopcount(idx.invDistro[d], idx.invValidity[0]),
				Unspecified: andPopcount(idx.invDistro[d], idx.invValidity[1]),
				Disputed:    andPopcount(idx.invDistro[d], idx.invValidity[2]),
			}
		}
	})
	res.distinct = ValidityRow{
		Valid:       idx.n,
		Unknown:     popcountWords(idx.invValidity[0]),
		Unspecified: popcountWords(idx.invValidity[1]),
		Disputed:    popcountWords(idx.invValidity[2]),
	}
	return res
}

func (s *Study) classBitset() *classResult {
	idx := s.bitIndex()
	res := &classResult{rows: make([]ClassRow, s.nd)}
	runShards(s.workers(), s.nd, func(lo, hi int) {
		for d := lo; d < hi; d++ {
			res.rows[d] = ClassRow{
				Distro:  s.distros[d],
				Driver:  andPopcount(idx.distro[d], idx.class[0]),
				Kernel:  andPopcount(idx.distro[d], idx.class[1]),
				SysSoft: andPopcount(idx.distro[d], idx.class[2]),
				App:     andPopcount(idx.distro[d], idx.class[3]),
			}
		}
	})
	var counts [4]int
	for c := range idx.class {
		counts[c] = popcountWords(idx.class[c])
	}
	res.shares = ClassShares(counts, idx.n)
	return res
}

func (s *Study) totalsBitset(profile Profile) []int {
	idx := s.bitIndex()
	prof := idx.profile[profile-1]
	out := make([]int, s.nd)
	runShards(s.workers(), s.nd, func(lo, hi int) {
		for d := lo; d < hi; d++ {
			out[d] = andPopcount(idx.distro[d], prof)
		}
	})
	return out
}

// multiRemoteFlag marks remotely exploitable records in multiFlags.
const multiRemoteFlag = 1 << 3

// multiClassOf extracts the classIdx+1 component of a flags byte.
func multiClassOf(f uint8) uint8 { return f & 7 }

// multiMatchesITS mirrors record.matches(IsolatedThinServer) on a flags
// byte: not Application-class, and remote.
func multiMatchesITS(f uint8) bool {
	return multiClassOf(f) != uint8(classIdx(classify.ClassApplication)+1) && f&multiRemoteFlag != 0
}

// multiPos returns the position of the first multi-record whose record
// index is >= recIdx (the multi column is ascending).
func (idx *bitIndex) multiPos(recIdx int) int {
	return sort.Search(len(idx.multi), func(i int) bool { return int(idx.multi[i]) >= recIdx })
}

// pairsAllResult memoizes the three profiles' pair matrices, produced by
// a single pass over the multi columns.
type pairsAllResult struct {
	counts [3][]int // indexed Profile-1
}

// pairsAllBitset computes all three profile pair matrices in one sweep
// of the pair-posting columns: each record's materialized pair indices
// are bumped into the Fat row always, the Thin row when the record is
// not Application-class, and the IsolatedThin row when it is
// additionally remote. This streams O(multi × C(k,2)) sequential work —
// the engine's answer to the all-pairs tables, exploiting that most
// records touch few distros.
func (s *Study) pairsAllBitset() *pairsAllResult {
	return s.cached(ckey{q: qPairsAll}, func() any {
		idx := s.bitIndex()
		appFlag := uint8(classIdx(classify.ClassApplication) + 1)
		return reduceRangeShards(s.workers(), len(idx.multi),
			func() *pairsAllResult {
				r := &pairsAllResult{}
				for i := range r.counts {
					r.counts[i] = make([]int, len(s.pairs))
				}
				return r
			},
			func(a *pairsAllResult, lo, hi int) {
				fat := a.counts[FatServer-1]
				thin := a.counts[ThinServer-1]
				its := a.counts[IsolatedThinServer-1]
				for pos := lo; pos < hi; pos++ {
					f := idx.multiFlags[pos]
					isThin := multiClassOf(f) != appFlag
					isITS := isThin && f&multiRemoteFlag != 0
					for _, pi := range idx.multiPairs[idx.multiPairOff[pos]:idx.multiPairOff[pos+1]] {
						fat[pi]++
						if isThin {
							thin[pi]++
						}
						if isITS {
							its[pi]++
						}
					}
				}
			},
			func(dst, src *pairsAllResult) {
				for i := range dst.counts {
					mergeIntSlice(dst.counts[i], src.counts[i])
				}
			})
	}).(*pairsAllResult)
}

func (s *Study) pairCountsBitset(profile Profile) []int {
	return s.pairsAllBitset().counts[profile-1]
}

func (s *Study) partsBitset() []PartCounts {
	idx := s.bitIndex()
	return reduceRangeShards(s.workers(), len(idx.multi),
		func() []PartCounts { return make([]PartCounts, len(s.pairs)) },
		func(a []PartCounts, lo, hi int) {
			for pos := lo; pos < hi; pos++ {
				f := idx.multiFlags[pos]
				if !multiMatchesITS(f) {
					continue
				}
				cls := multiClassOf(f)
				for _, pi := range idx.multiPairs[idx.multiPairOff[pos]:idx.multiPairOff[pos+1]] {
					switch cls {
					case 1:
						a[pi].Driver++
					case 2:
						a[pi].Kernel++
					case 3:
						a[pi].SysSoft++
					}
				}
			}
		},
		func(dst, src []PartCounts) {
			for i := range dst {
				dst[i].Driver += src[i].Driver
				dst[i].Kernel += src[i].Kernel
				dst[i].SysSoft += src[i].SysSoft
			}
		})
}

func (s *Study) periodsBitset(splitYear int) []PeriodCounts {
	idx := s.bitIndex()
	cutPos := idx.multiPos(idx.cutIndex(splitYear))
	return reduceRangeShards(s.workers(), len(idx.multi),
		func() []PeriodCounts { return make([]PeriodCounts, len(s.pairs)) },
		func(a []PeriodCounts, lo, hi int) {
			for pos := lo; pos < hi; pos++ {
				if !multiMatchesITS(idx.multiFlags[pos]) {
					continue
				}
				history := pos < cutPos
				for _, pi := range idx.multiPairs[idx.multiPairOff[pos]:idx.multiPairOff[pos+1]] {
					if history {
						a[pi].History++
					} else {
						a[pi].Observed++
					}
				}
			}
		},
		func(dst, src []PeriodCounts) {
			for i := range dst {
				dst[i].History += src[i].History
				dst[i].Observed += src[i].Observed
			}
		})
}

func (s *Study) temporalBitset(distroIdx int) map[int]int {
	idx := s.bitIndex()
	out := make(map[int]int)
	if idx.n == 0 {
		return out
	}
	postings := idx.distro[distroIdx]
	span := idx.maxYear - idx.minYear
	for k := 0; k <= span; k++ {
		if c := popcountRange(postings, idx.yearStart[k], idx.yearStart[k+1]); c > 0 {
			out[idx.minYear+k] = c
		}
	}
	return out
}

// kwiseHistogram tallies, per profile, how many records carry each value
// of the per-record byte column (distro count or product count), by
// walking the set bits of the profile bitset — the column and the
// postings together are a few hundred KB at 100k entries, so this runs
// at memory speed.
func (s *Study) kwiseHistogram(profile Profile, column []uint16) []int {
	idx := s.bitIndex()
	prof := idx.profile[profile-1]
	type hist struct{ counts []int }
	merged := reduceRangeShards(s.workers(), idx.words, func() *hist { return &hist{} },
		func(h *hist, loW, hiW int) {
			for wi := loW; wi < hiW; wi++ {
				w := prof[wi]
				base := wi << 6
				for ; w != 0; w &= w - 1 {
					v := int(column[base+bits.TrailingZeros64(w)])
					for len(h.counts) <= v {
						h.counts = append(h.counts, 0)
					}
					h.counts[v]++
				}
			}
		},
		func(dst, src *hist) {
			for len(dst.counts) < len(src.counts) {
				dst.counts = append(dst.counts, 0)
			}
			for i, c := range src.counts {
				dst.counts[i] += c
			}
		})
	return merged.counts
}

// reduceRangeShards is reduceShards over index ranges instead of record slices.
func reduceRangeShards[A any](workers, n int, newAgg func() A, body func(agg A, lo, hi int), merge func(dst, src A)) A {
	workers = capWorkers(workers)
	dst := newAgg()
	if workers <= 1 || n < minParallelItems {
		body(dst, 0, n)
		return dst
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	nShards := (n + chunk - 1) / chunk
	parts := make([]A, nShards)
	done := make(chan int, nShards)
	for i := 0; i < nShards; i++ {
		go func(i int) {
			lo := i * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			a := newAgg()
			body(a, lo, hi)
			parts[i] = a
			done <- i
		}(i)
	}
	for i := 0; i < nShards; i++ {
		<-done
	}
	for i := 0; i < nShards; i++ {
		merge(dst, parts[i])
	}
	return dst
}

// atLeastMap converts an exact-value histogram into the "affects at
// least k" map the K-wise tables report (keys from 2 up).
func atLeastMap(hist []int) map[int]int {
	out := make(map[int]int)
	cum := 0
	for k := len(hist) - 1; k >= 2; k-- {
		cum += hist[k]
		if cum > 0 {
			out[k] = cum
		}
	}
	return out
}

func (s *Study) kwiseClustersBitset(profile Profile) map[int]int {
	return atLeastMap(s.kwiseHistogram(profile, s.bitIndex().popcnt))
}

func (s *Study) kwiseProductsBitset(profile Profile) map[int]int {
	return atLeastMap(s.kwiseHistogram(profile, s.bitIndex().products))
}

func (s *Study) windowPairsBitset(win SelectionWindow) []int {
	idx := s.bitIndex()
	lo, hi := idx.recRange(win)
	loPos, hiPos := idx.multiPos(lo), idx.multiPos(hi)
	return reduceRangeShards(s.workers(), hiPos-loPos,
		func() []int { return make([]int, len(s.pairs)) },
		func(a []int, shLo, shHi int) {
			for pos := loPos + shLo; pos < loPos+shHi; pos++ {
				if !multiMatchesITS(idx.multiFlags[pos]) {
					continue
				}
				for _, pi := range idx.multiPairs[idx.multiPairOff[pos]:idx.multiPairOff[pos+1]] {
					a[pi]++
				}
			}
		},
		mergeIntSlice)
}

func (s *Study) windowTotalsBitset(w SelectionWindow) []int {
	idx := s.bitIndex()
	prof := idx.profile[IsolatedThinServer-1]
	lo, hi := idx.recRange(w)
	out := make([]int, s.nd)
	runShards(s.workers(), s.nd, func(dlo, dhi int) {
		for d := dlo; d < dhi; d++ {
			out[d] = andPopcountRange(idx.distro[d], prof, lo, hi)
		}
	})
	return out
}

// --- release postings (Table VI) -----------------------------------------

type releaseKey struct {
	d       osmap.Distro
	version string
}

// releaseBits builds (once) the posting bitset of valid records whose
// CPE list names the (distro, version) release.
func (s *Study) releaseBits(d osmap.Distro, version string) []uint64 {
	key := releaseKey{d, version}
	s.relMu.Lock()
	if s.relBits == nil {
		s.relBits = make(map[releaseKey][]uint64)
	}
	bs, ok := s.relBits[key]
	s.relMu.Unlock()
	if ok {
		return bs
	}
	idx := s.bitIndex()
	rc := s.relColumns()
	bs = make([]uint64, idx.words)
	alignedShards(s.workers(), idx.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if rc.affectsRelease(i, d, version) {
				bs[i>>6] |= 1 << uint(i&63)
			}
		}
	})
	s.relMu.Lock()
	if prev, ok := s.relBits[key]; ok {
		bs = prev // lost a benign race; keep the first build
	} else {
		s.relBits[key] = bs
	}
	s.relMu.Unlock()
	return bs
}

func (s *Study) releaseOverlapBitset(da osmap.Distro, va string, db osmap.Distro, vb string) int {
	idx := s.bitIndex()
	return and3Popcount(s.releaseBits(da, va), s.releaseBits(db, vb), idx.profile[IsolatedThinServer-1])
}

// --- most-shared order ---------------------------------------------------

// mostSharedOrder computes (once) the record indices sorted by product
// count descending, ties by CVE ID ascending, via a bucket sort: the
// histogram pass shards across the worker pool and only the per-bucket
// ID sorts pay O(log) costs, so the order materializes in near-linear
// time even at 100k entries.
func (s *Study) mostSharedOrder() []int {
	return s.cached(ckey{q: qMostShared}, func() any {
		n := len(s.records)
		maxP := reduceShards(s.workers(), s.records,
			func() *int { return new(int) },
			func(a *int, shard []record) {
				for i := range shard {
					if shard[i].products > *a {
						*a = shard[i].products
					}
				}
			},
			func(dst, src *int) {
				if *src > *dst {
					*dst = *src
				}
			})
		buckets := make([][]int, *maxP+1)
		for i := 0; i < n; i++ {
			p := s.records[i].products
			buckets[p] = append(buckets[p], i)
		}
		runShards(s.workers(), len(buckets), func(lo, hi int) {
			for b := lo; b < hi; b++ {
				ids := buckets[b]
				sort.Slice(ids, func(x, y int) bool {
					return s.records[ids[x]].id.Less(s.records[ids[y]].id)
				})
			}
		})
		out := make([]int, 0, n)
		for p := *maxP; p >= 0; p-- {
			out = append(out, buckets[p]...)
		}
		return out
	}).([]int)
}
