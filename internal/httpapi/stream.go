package httpapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// StreamQueryResult writes a QueryResult document without materializing
// the whole body: header fields first, then the rows array element by
// element through a buffered writer. The emitted bytes are identical to
// Marshal(doc), so streamed and cached query responses stay textually
// comparable. Shared by the server's large-result exit and the
// gateway's merged row streams.
func StreamQueryResult(w io.Writer, doc *QueryResult) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	cols, err := json.Marshal(doc.Columns)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, `{"columns":%s,"n":%d,"rows":[`, cols, doc.N); err != nil {
		return err
	}
	for i, row := range doc.Rows {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		elem, err := json.Marshal(row)
		if err != nil {
			return err
		}
		if _, err := bw.Write(elem); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
