package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"syscall"
	"time"
)

// Error is a decoded server error envelope. StatusCode is the HTTP
// status the server answered with.
type Error struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("httpapi: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// RetryPolicy bounds the client's backoff loop on transient errors.
// The zero value disables retries (one attempt).
type RetryPolicy struct {
	Attempts  int           // total attempts, including the first
	BaseDelay time.Duration // first backoff (default 50ms when retrying)
	MaxDelay  time.Duration // backoff cap (default 1s when retrying)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// Client talks to an osdiv server. The zero HTTP field selects
// http.DefaultClient; the zero Timeout applies none; the zero Retry
// makes every request single-shot.
//
// Retries apply to idempotent GETs only, and only on transient
// failures: connection refused/reset (a server mid-restart), truncated
// responses, net timeouts, and 503 (an overloaded or not-yet-ready
// server). Non-idempotent admin calls are never retried — a reload that
// timed out may still be running.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (httptest servers pass their own).
	HTTP *http.Client
	// Timeout bounds each request attempt (not the whole retry loop).
	Timeout time.Duration
	// Retry bounds the transient-error retry loop for GETs.
	Retry RetryPolicy

	// sleep substitutes the backoff sleep in tests; nil selects
	// time.Sleep.
	sleep func(time.Duration)
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) sleepFn() func(time.Duration) {
	if c.sleep != nil {
		return c.sleep
	}
	return time.Sleep
}

// transientNetError reports whether a transport-level failure is worth
// retrying: the connection conditions of a server that is restarting,
// draining, or briefly saturated.
func transientNetError(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// transientFailure extends transientNetError with the one retryable
// HTTP status: 503, which the server answers while booting (/readyz)
// and while shedding load (Retry-After).
func transientFailure(err error) bool {
	var he *Error
	if errors.As(err, &he) {
		return he.StatusCode == http.StatusServiceUnavailable
	}
	return transientNetError(err)
}

func clientJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// url joins the base with a path and query.
func (c *Client) url(path string, query url.Values) string {
	u := c.Base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return u
}

// readResponse drains one response, returning the 200 body and the
// X-Osdiv-Epoch header; a non-200 decodes its error envelope into
// *Error (the epoch still returns, when the server sent one).
func readResponse(resp *http.Response) ([]byte, string, error) {
	defer resp.Body.Close()
	epoch := resp.Header.Get("X-Osdiv-Epoch")
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, epoch, err
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
			return nil, epoch, &Error{StatusCode: resp.StatusCode, Code: "malformed_error",
				Message: string(body)}
		}
		return nil, epoch, &Error{StatusCode: resp.StatusCode, Code: env.Error.Code,
			Message: env.Error.Message}
	}
	return body, epoch, nil
}

// attempt runs one HTTP request and decodes the error envelope of a
// non-200 response into *Error.
func (c *Client) attempt(ctx context.Context, method, u string) ([]byte, string, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	return readResponse(resp)
}

// GetRaw fetches a path (with optional query) and returns the raw body
// bytes of a 200 response, retrying transient failures per the client's
// policy. Non-200 responses decode into *Error.
func (c *Client) GetRaw(path string, query url.Values) ([]byte, error) {
	return c.GetRawContext(context.Background(), path, query)
}

// GetRawContext is GetRaw under a caller context; the context spans the
// whole retry loop, the per-attempt Timeout each attempt.
func (c *Client) GetRawContext(ctx context.Context, path string, query url.Values) ([]byte, error) {
	body, _, err := c.GetRawEpochContext(ctx, path, query)
	return body, err
}

// GetRawEpochContext is GetRawContext returning the X-Osdiv-Epoch
// header alongside the body — the gateway verifies every scattered
// leg's epoch against the resolved shard vector.
func (c *Client) GetRawEpochContext(ctx context.Context, path string, query url.Values) ([]byte, string, error) {
	u := c.url(path, query)
	retry := c.Retry.withDefaults()
	delay := retry.BaseDelay
	for attempt := 1; ; attempt++ {
		body, epoch, err := c.attempt(ctx, http.MethodGet, u)
		if err == nil {
			return body, epoch, nil
		}
		if attempt >= retry.Attempts || !transientFailure(err) || ctx.Err() != nil {
			return nil, epoch, err
		}
		select {
		case <-ctx.Done():
			return nil, epoch, ctx.Err()
		default:
		}
		c.sleepFn()(clientJitter(delay))
		if delay *= 2; delay > retry.MaxDelay {
			delay = retry.MaxDelay
		}
	}
}

// PostRaw sends a bodyless POST and returns the raw 200 body. POSTs are
// never retried, whatever the client's policy: the admin calls they
// carry are not idempotent.
func (c *Client) PostRaw(path string, query url.Values) ([]byte, error) {
	return c.PostRawContext(context.Background(), path, query)
}

// PostRawContext is PostRaw under a caller context.
func (c *Client) PostRawContext(ctx context.Context, path string, query url.Values) ([]byte, error) {
	body, _, err := c.attempt(ctx, http.MethodPost, c.url(path, query))
	return body, err
}

// PostJSON POSTs a JSON-encoded body and returns the raw 200 body.
// Like the other POSTs it is never retried.
func (c *Client) PostJSON(path string, body any) ([]byte, error) {
	return c.PostJSONContext(context.Background(), path, body)
}

// PostJSONContext is PostJSON under a caller context.
func (c *Client) PostJSONContext(ctx context.Context, path string, body any) ([]byte, error) {
	raw, _, err := c.PostJSONEpochContext(ctx, path, body)
	return raw, err
}

// PostJSONEpochContext is PostJSONContext returning the X-Osdiv-Epoch
// header alongside the body.
func (c *Client) PostJSONEpochContext(ctx context.Context, path string, body any) ([]byte, string, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, "", err
	}
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path, nil), bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	return readResponse(resp)
}

// Query POSTs one SELECT to /api/query and decodes the result document
// (available when the server was started over an imported database).
func (c *Client) Query(sql string, args ...any) (QueryResult, error) {
	var out QueryResult
	body, err := c.PostJSON("/api/query", QueryRequest{SQL: sql, Args: args})
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("httpapi: decode /api/query: %w", err)
	}
	return out, nil
}

// Recommend POSTs a dynamic-diversity search spec to /api/recommend
// and decodes the ranked-schedule document.
func (c *Client) Recommend(req RecommendRequest) (Recommend, error) {
	var out Recommend
	body, err := c.PostJSON("/api/recommend", req)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("httpapi: decode /api/recommend: %w", err)
	}
	return out, nil
}

// get fetches and decodes a document.
func get[T any](c *Client, path string, query url.Values) (T, error) {
	var out T
	body, err := c.GetRaw(path, query)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	return out, nil
}

// Health fetches /healthz.
func (c *Client) Health() (Health, error) { return get[Health](c, "/healthz", nil) }

// Ready fetches /readyz.
func (c *Client) Ready() (Ready, error) { return get[Ready](c, "/readyz", nil) }

// Corpus fetches /corpus.
func (c *Client) Corpus() (CorpusInfo, error) { return get[CorpusInfo](c, "/corpus", nil) }

// Reload POSTs /admin/reload and decodes the swap result. Never
// retried; a timed-out reload may still complete server-side.
func (c *Client) Reload() (ReloadResult, error) {
	var out ReloadResult
	body, err := c.PostRaw("/admin/reload", nil)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("httpapi: decode /admin/reload: %w", err)
	}
	return out, nil
}

// Table1 fetches /api/table1.
func (c *Client) Table1() (Table1, error) { return get[Table1](c, "/api/table1", nil) }

// Table2 fetches /api/table2.
func (c *Client) Table2() (Table2, error) { return get[Table2](c, "/api/table2", nil) }

// Table3 fetches /api/table3.
func (c *Client) Table3() (Table3, error) { return get[Table3](c, "/api/table3", nil) }

// Table4 fetches /api/table4.
func (c *Client) Table4() (Table4, error) { return get[Table4](c, "/api/table4", nil) }

// Table5 fetches /api/table5 with the given split year (0 selects the
// server default, the paper's 2005).
func (c *Client) Table5(splitYear int) (Table5, error) {
	q := url.Values{}
	if splitYear != 0 {
		q.Set("split", strconv.Itoa(splitYear))
	}
	return get[Table5](c, "/api/table5", q)
}

// Temporal fetches /api/temporal for one OS.
func (c *Client) Temporal(osName string) (Temporal, error) {
	return get[Temporal](c, "/api/temporal", url.Values{"os": {osName}})
}

// KWise fetches /api/kwise.
func (c *Client) KWise() (KWise, error) { return get[KWise](c, "/api/kwise", nil) }

// MostShared fetches /api/mostshared with the given listing size.
func (c *Client) MostShared(n int) (MostShared, error) {
	return get[MostShared](c, "/api/mostshared", url.Values{"n": {strconv.Itoa(n)}})
}

// Select fetches /api/select. top <= 0 returns every ranked set.
func (c *Client) Select(k int, onePerFamily bool, toYear, top int) (Select, error) {
	q := url.Values{
		"k":  {strconv.Itoa(k)},
		"to": {strconv.Itoa(toYear)},
	}
	if onePerFamily {
		q.Set("one-per-family", "true")
	}
	if top > 0 {
		q.Set("top", strconv.Itoa(top))
	}
	return get[Select](c, "/api/select", q)
}

// Releases fetches the default Table VI grid from /api/releases.
func (c *Client) Releases() (Releases, error) { return get[Releases](c, "/api/releases", nil) }

// ReleaseOverlap fetches one /api/releases cell.
func (c *Client) ReleaseOverlap(a, va, b, vb string) (Releases, error) {
	return get[Releases](c, "/api/releases", url.Values{
		"a": {a}, "va": {va}, "b": {b}, "vb": {vb},
	})
}

// Attack fetches /api/attack for one configuration.
func (c *Client) Attack(name string, oses []string, f, trials int) (Attack, error) {
	q := url.Values{
		"name":   {name},
		"os":     oses,
		"f":      {strconv.Itoa(f)},
		"trials": {strconv.Itoa(trials)},
	}
	return get[Attack](c, "/api/attack", q)
}

// SQLTable3 fetches /api/sqltable3 (available when the server was
// started over an imported database).
func (c *Client) SQLTable3() (SQLTable3, error) {
	return get[SQLTable3](c, "/api/sqltable3", nil)
}
