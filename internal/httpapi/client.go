package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Error is a decoded server error envelope. StatusCode is the HTTP
// status the server answered with.
type Error struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("httpapi: %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// Client talks to an osdiv server. The zero HTTP field selects
// http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (httptest servers pass their own).
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// GetRaw fetches a path (with optional query) and returns the raw body
// bytes of a 200 response. Non-200 responses decode into *Error.
func (c *Client) GetRaw(path string, query url.Values) ([]byte, error) {
	u := c.Base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.httpClient().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
			return nil, &Error{StatusCode: resp.StatusCode, Code: "malformed_error",
				Message: string(body)}
		}
		return nil, &Error{StatusCode: resp.StatusCode, Code: env.Error.Code,
			Message: env.Error.Message}
	}
	return body, nil
}

// get fetches and decodes a document.
func get[T any](c *Client, path string, query url.Values) (T, error) {
	var out T
	body, err := c.GetRaw(path, query)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("httpapi: decode %s: %w", path, err)
	}
	return out, nil
}

// Health fetches /healthz.
func (c *Client) Health() (Health, error) { return get[Health](c, "/healthz", nil) }

// Corpus fetches /corpus.
func (c *Client) Corpus() (CorpusInfo, error) { return get[CorpusInfo](c, "/corpus", nil) }

// Table1 fetches /api/table1.
func (c *Client) Table1() (Table1, error) { return get[Table1](c, "/api/table1", nil) }

// Table2 fetches /api/table2.
func (c *Client) Table2() (Table2, error) { return get[Table2](c, "/api/table2", nil) }

// Table3 fetches /api/table3.
func (c *Client) Table3() (Table3, error) { return get[Table3](c, "/api/table3", nil) }

// Table4 fetches /api/table4.
func (c *Client) Table4() (Table4, error) { return get[Table4](c, "/api/table4", nil) }

// Table5 fetches /api/table5 with the given split year (0 selects the
// server default, the paper's 2005).
func (c *Client) Table5(splitYear int) (Table5, error) {
	q := url.Values{}
	if splitYear != 0 {
		q.Set("split", strconv.Itoa(splitYear))
	}
	return get[Table5](c, "/api/table5", q)
}

// Temporal fetches /api/temporal for one OS.
func (c *Client) Temporal(osName string) (Temporal, error) {
	return get[Temporal](c, "/api/temporal", url.Values{"os": {osName}})
}

// KWise fetches /api/kwise.
func (c *Client) KWise() (KWise, error) { return get[KWise](c, "/api/kwise", nil) }

// MostShared fetches /api/mostshared with the given listing size.
func (c *Client) MostShared(n int) (MostShared, error) {
	return get[MostShared](c, "/api/mostshared", url.Values{"n": {strconv.Itoa(n)}})
}

// Select fetches /api/select. top <= 0 returns every ranked set.
func (c *Client) Select(k int, onePerFamily bool, toYear, top int) (Select, error) {
	q := url.Values{
		"k":  {strconv.Itoa(k)},
		"to": {strconv.Itoa(toYear)},
	}
	if onePerFamily {
		q.Set("one-per-family", "true")
	}
	if top > 0 {
		q.Set("top", strconv.Itoa(top))
	}
	return get[Select](c, "/api/select", q)
}

// Releases fetches the default Table VI grid from /api/releases.
func (c *Client) Releases() (Releases, error) { return get[Releases](c, "/api/releases", nil) }

// ReleaseOverlap fetches one /api/releases cell.
func (c *Client) ReleaseOverlap(a, va, b, vb string) (Releases, error) {
	return get[Releases](c, "/api/releases", url.Values{
		"a": {a}, "va": {va}, "b": {b}, "vb": {vb},
	})
}

// Attack fetches /api/attack for one configuration.
func (c *Client) Attack(name string, oses []string, f, trials int) (Attack, error) {
	q := url.Values{
		"name":   {name},
		"os":     oses,
		"f":      {strconv.Itoa(f)},
		"trials": {strconv.Itoa(trials)},
	}
	return get[Attack](c, "/api/attack", q)
}

// SQLTable3 fetches /api/sqltable3 (available when the server was
// started over an imported database).
func (c *Client) SQLTable3() (SQLTable3, error) {
	return get[SQLTable3](c, "/api/sqltable3", nil)
}
