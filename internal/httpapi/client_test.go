package httpapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers 503 with the typed envelope until `after`
// requests have arrived, then 200.
func flakyHandler(after int, hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if int(n) < after {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			b, _ := Marshal(ErrorEnvelope{Error: ErrorBody{Code: "overloaded", Message: "busy"}})
			w.Write(b)
			return
		}
		b, _ := Marshal(Health{Status: "ok"})
		w.Write(b)
	})
}

func TestGetRetriesTransient503(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(3, &hits))
	defer srv.Close()

	var slept []time.Duration
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	c.sleep = func(d time.Duration) { slept = append(slept, d) }

	h, err := c.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}
}

func TestGetRetriesAreBounded(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(100, &hits))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}
	c.sleep = func(time.Duration) {}

	_, err := c.Health()
	var he *Error
	if !errors.As(err, &he) || he.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *Error", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

func TestGetDoesNotRetryPermanentErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		b, _ := Marshal(ErrorEnvelope{Error: ErrorBody{Code: "bad_param", Message: "no"}})
		w.Write(b)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond}
	c.sleep = func(time.Duration) { t.Error("slept for a permanent error") }

	if _, err := c.Health(); err == nil {
		t.Fatal("Health succeeded, want 400")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry on 400)", got)
	}
}

func TestGetRetriesConnectionRefused(t *testing.T) {
	// A server that is down: bind, learn the port, close.
	srv := httptest.NewServer(http.NotFoundHandler())
	base := srv.URL
	srv.Close()

	c := NewClient(base)
	c.Retry = RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond}
	attempts := 0
	c.sleep = func(time.Duration) { attempts++ }

	if _, err := c.Health(); err == nil {
		t.Fatal("Health against closed server succeeded")
	}
	if attempts != 2 {
		t.Errorf("retried %d times, want 2 (3 bounded attempts)", attempts)
	}
}

func TestPostNeverRetries(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(100, &hits))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond}
	c.sleep = func(time.Duration) { t.Error("a POST slept to retry") }

	_, err := c.Reload()
	var he *Error
	if !errors.As(err, &he) || he.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 *Error", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want exactly 1", got)
	}
}

func TestContextCancelStopsRetryLoop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(flakyHandler(100, &hits))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{Attempts: 100, BaseDelay: time.Millisecond}
	c.sleep = func(time.Duration) { cancel() }

	if _, err := c.GetRawContext(ctx, "/healthz", nil); err == nil {
		t.Fatal("canceled retry loop succeeded")
	}
	if got := hits.Load(); got > 2 {
		t.Errorf("server saw %d requests after cancel, want <= 2", got)
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	c := NewClient(srv.URL)
	c.Timeout = 20 * time.Millisecond
	start := time.Now()
	if _, err := c.Health(); err == nil {
		t.Fatal("Health against a hung server succeeded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("timeout took %v", took)
	}
}
