package httpapi

import (
	"context"
	"net/url"
	"sync"
	"time"
)

// MultiClient fans one request out to an ordered backend set — the
// scatter half of the gateway's scatter-gather. Each backend gets its
// own Client (per-request timeout, bounded GET retries); results come
// back in backend order so per-index merges line up with the shard
// numbering.
type MultiClient struct {
	Clients []*Client
}

// NewMultiClient builds one client per backend base URL, all sharing
// the timeout and retry policy.
func NewMultiClient(bases []string, timeout time.Duration, retry RetryPolicy) *MultiClient {
	m := &MultiClient{Clients: make([]*Client, 0, len(bases))}
	for _, b := range bases {
		m.Clients = append(m.Clients, &Client{Base: b, Timeout: timeout, Retry: retry})
	}
	return m
}

// ShardResponse is one backend's leg of a scatter: the raw 200 body and
// the X-Osdiv-Epoch it carried, or the leg's error (*Error for a typed
// server envelope, a transport error otherwise).
type ShardResponse struct {
	Backend string
	Body    []byte
	Epoch   string
	Err     error
}

// Scatter GETs path?query on every backend concurrently and returns
// the legs in backend order. Per-leg retries and timeouts follow each
// client's policy; the context spans all legs.
func (m *MultiClient) Scatter(ctx context.Context, path string, query url.Values) []ShardResponse {
	out := make([]ShardResponse, len(m.Clients))
	var wg sync.WaitGroup
	for i, c := range m.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			body, epoch, err := c.GetRawEpochContext(ctx, path, query)
			out[i] = ShardResponse{Backend: c.Base, Body: body, Epoch: epoch, Err: err}
		}(i, c)
	}
	wg.Wait()
	return out
}

// ScatterPost POSTs one JSON body to every backend concurrently. POSTs
// are never retried (matching Client); /api/query is the one POST the
// gateway scatters, and it is read-only on the shard side.
func (m *MultiClient) ScatterPost(ctx context.Context, path string, body any) []ShardResponse {
	out := make([]ShardResponse, len(m.Clients))
	var wg sync.WaitGroup
	for i, c := range m.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			raw, epoch, err := c.PostJSONEpochContext(ctx, path, body)
			out[i] = ShardResponse{Backend: c.Base, Body: raw, Epoch: epoch, Err: err}
		}(i, c)
	}
	wg.Wait()
	return out
}
