// Package httpapi defines the wire format of the osdiv server mode —
// the JSON documents every /api endpoint returns, the typed error
// envelope — and a small HTTP client over them.
//
// The types live apart from internal/server so the server handlers,
// the osdiv -json printers and the test clients all marshal the exact
// same documents: byte-identity between `osdiv serve` responses and
// `osdiv tables -json` output is a contract, not a coincidence.
package httpapi

import "encoding/json"

// Health is the /healthz document.
type Health struct {
	Status string `json:"status"`
}

// CorpusInfo is the /corpus document: what the resident server loaded,
// how it executes queries, and where the corpus came from. EpochUnix is
// when the corpus was built — for snapshot boots, the snapshot's save
// time, so every replica warm-started from one file reports the same
// epoch. SnapshotDigest is the snapshot payload checksum
// ("crc32c:xxxxxxxx"), empty for feed-built corpora. Epoch is the
// live-reload generation (1 for the boot corpus, bumped by every
// successful hot reload); the reload counters account for every swap
// and every degraded reload since boot.
type CorpusInfo struct {
	Source          string   `json:"source"`
	Engine          string   `json:"engine"`
	Workers         int      `json:"workers"`
	Shard           string   `json:"shard,omitempty"` // "i/N" when serving a year-range slice
	ValidEntries    int      `json:"valid_entries"`
	Distros         int      `json:"distros"`
	OSNames         []string `json:"os_names"`
	YearFrom        int      `json:"year_from"`
	YearTo          int      `json:"year_to"`
	SQL             bool     `json:"sql"`
	Epoch           uint64   `json:"epoch"`
	EpochUnix       int64    `json:"epoch_unix"`
	SnapshotDigest  string   `json:"snapshot_digest,omitempty"`
	Skipped         int      `json:"skipped,omitempty"`
	ReloadSuccesses uint64   `json:"reload_successes,omitempty"`
	ReloadFailures  uint64   `json:"reload_failures,omitempty"`
	LastReloadError string   `json:"last_reload_error,omitempty"`
	LastReloadUnix  int64    `json:"last_reload_unix,omitempty"`

	// PlanCache reports the resident database's shared plan cache; nil
	// when the server was not started over an imported database.
	PlanCache *PlanCacheInfo `json:"plan_cache,omitempty"`
}

// PlanCacheInfo reports the SQL plan cache of the resident database:
// size against capacity plus lifetime hit/miss/eviction/invalidation
// counters. Present on /corpus only when the server runs over an
// imported database.
type PlanCacheInfo struct {
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// QueryRequest is the POST /api/query body: one SELECT statement with
// optional positional arguments for its `?` placeholders. Arguments
// bind as typed values — numbers, strings, booleans or null — never by
// text substitution.
type QueryRequest struct {
	SQL  string `json:"sql"`
	Args []any  `json:"args,omitempty"`
}

// QueryResult is the /api/query document. Rows hold JSON-typed cells in
// column order; large results are streamed row by row, byte-identical
// to Marshal of the whole document.
type QueryResult struct {
	Columns []string `json:"columns"`
	N       int      `json:"n"`
	Rows    [][]any  `json:"rows"`
}

// Ready is the /readyz document. Status is "ok" once the first epoch is
// resident; before that /readyz answers 503 with an error envelope.
type Ready struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
}

// ReloadResult is the POST /admin/reload success document.
type ReloadResult struct {
	Epoch         uint64 `json:"epoch"`
	Source        string `json:"source"`
	ValidEntries  int    `json:"valid_entries"`
	SwappedAtUnix int64  `json:"swapped_at_unix"`
}

// ValidityRow is one row of Table I.
type ValidityRow struct {
	OS          string `json:"os"`
	Valid       int    `json:"valid"`
	Unknown     int    `json:"unknown"`
	Unspecified int    `json:"unspecified"`
	Disputed    int    `json:"disputed"`
}

// Table1 is the /api/table1 document.
type Table1 struct {
	Rows     []ValidityRow `json:"rows"`
	Distinct ValidityRow   `json:"distinct"`
}

// ClassRow is one row of Table II.
type ClassRow struct {
	OS      string `json:"os"`
	Driver  int    `json:"driver"`
	Kernel  int    `json:"kernel"`
	SysSoft int    `json:"sys_soft"`
	App     int    `json:"app"`
}

// Table2 is the /api/table2 document; SharesPct are the distinct-
// vulnerability percentage shares of the four classes, in table order.
type Table2 struct {
	Rows      []ClassRow `json:"rows"`
	SharesPct [4]float64 `json:"shares_pct"`
}

// PairRow is one row of Table III: per-OS totals and the shared count
// under the three profiles (All / NoApp / NoApp+Remote-only).
type PairRow struct {
	A      string `json:"a"`
	B      string `json:"b"`
	TotalA [3]int `json:"total_a"`
	TotalB [3]int `json:"total_b"`
	All    int    `json:"all"`
	NoApp  int    `json:"no_app"`
	Remote int    `json:"remote"`
}

// Table3 is the /api/table3 document.
type Table3 struct {
	Rows               []PairRow `json:"rows"`
	FilterReductionPct float64   `json:"filter_reduction_pct"`
}

// PartRow is one row of Table IV.
type PartRow struct {
	A       string `json:"a"`
	B       string `json:"b"`
	Driver  int    `json:"driver"`
	Kernel  int    `json:"kernel"`
	SysSoft int    `json:"sys_soft"`
	Total   int    `json:"total"`
}

// Table4 is the /api/table4 document.
type Table4 struct {
	Rows []PartRow `json:"rows"`
}

// PeriodCell is one cell of Table V.
type PeriodCell struct {
	A        string `json:"a"`
	B        string `json:"b"`
	History  int    `json:"history"`
	Observed int    `json:"observed"`
}

// Table5 is the /api/table5 document.
type Table5 struct {
	SplitYear int          `json:"split_year"`
	Cells     []PeriodCell `json:"cells"`
}

// YearCount is one point of a Figure 2 temporal series.
type YearCount struct {
	Year  int `json:"year"`
	Count int `json:"count"`
}

// Temporal is the /api/temporal document.
type Temporal struct {
	OS    string      `json:"os"`
	Years []YearCount `json:"years"`
}

// KCount is one k-wise bucket.
type KCount struct {
	K     int `json:"k"`
	Count int `json:"count"`
}

// KWise is the /api/kwise document: distinct valid vulnerabilities
// affecting at least k OS products.
type KWise struct {
	Products []KCount `json:"products"`
}

// MostShared is the /api/mostshared document. The server streams the
// IDs array; the bytes are identical to Marshal of the whole document.
type MostShared struct {
	N   int      `json:"n"`
	IDs []string `json:"ids"`
}

// ReplicaSet is one ranked replica configuration.
type ReplicaSet struct {
	Members []string `json:"members"`
	Shared  int      `json:"shared"`
}

// Select is the /api/select document.
type Select struct {
	K            int          `json:"k"`
	OnePerFamily bool         `json:"one_per_family"`
	ToYear       int          `json:"to_year"`
	Sets         []ReplicaSet `json:"sets"`
}

// ReleaseCell is one per-release overlap cell (Table VI).
type ReleaseCell struct {
	A      string `json:"a"`
	VA     string `json:"va"`
	B      string `json:"b"`
	VB     string `json:"vb"`
	Shared int    `json:"shared"`
}

// Releases is the /api/releases document.
type Releases struct {
	Cells []ReleaseCell `json:"cells"`
}

// Attack is the /api/attack document: one Monte Carlo batch summary.
type Attack struct {
	Name        string   `json:"name"`
	OSes        []string `json:"oses"`
	F           int      `json:"f"`
	Trials      int      `json:"trials"`
	MeanTTC     float64  `json:"mean_ttc"`
	MedianTTC   float64  `json:"median_ttc"`
	SharedFatal float64  `json:"shared_fatal"`
	Unbroken    int      `json:"unbroken"`
}

// RecommendRequest is the POST /api/recommend body: the spec of one
// dynamic-diversity schedule search. Zero fields take server defaults
// (history-eligible universe, F=1, 2 windows over the corpus years,
// interval 2, 200 trials, seed 1, beam 4, top 3).
type RecommendRequest struct {
	Universe []string `json:"universe,omitempty"`
	F        int      `json:"f,omitempty"`
	Windows  int      `json:"windows,omitempty"`
	FromYear int      `json:"from,omitempty"`
	ToYear   int      `json:"to,omitempty"`
	Interval float64  `json:"interval,omitempty"`
	Trials   int      `json:"trials,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Beam     int      `json:"beam,omitempty"`
	Top      int      `json:"top,omitempty"`
}

// RecommendWindow is one temporal window of a recommended schedule.
type RecommendWindow struct {
	FromYear int      `json:"from"`
	ToYear   int      `json:"to"`
	OSes     []string `json:"oses"`
	Cost     int      `json:"cost"`
}

// RecommendCandidate is one ranked rotation schedule.
type RecommendCandidate struct {
	Rank     int               `json:"rank"`
	Survival float64           `json:"survival"`
	Cost     int               `json:"cost"`
	Windows  []RecommendWindow `json:"windows"`
}

// Recommend is the /api/recommend document: the canonicalized spec the
// search answered, the top schedules ranked by Monte Carlo survival,
// and the BFT replay verdict for the winner.
type Recommend struct {
	Universe   []string             `json:"universe"`
	F          int                  `json:"f"`
	Replicas   int                  `json:"replicas"`
	Windows    int                  `json:"windows"`
	FromYear   int                  `json:"from"`
	ToYear     int                  `json:"to"`
	Interval   float64              `json:"interval"`
	Trials     int                  `json:"trials"`
	Seed       uint64               `json:"seed"`
	Beam       int                  `json:"beam"`
	Evaluated  int                  `json:"evaluated"`
	Candidates []RecommendCandidate `json:"candidates"`
	Validated  bool                 `json:"validated"`
	Violations []string             `json:"violations"`
}

// SQLCell is one cell of the SQL-computed Table III matrix.
type SQLCell struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Shared int    `json:"shared"`
}

// SQLTable3 is the /api/sqltable3 document.
type SQLTable3 struct {
	Cells []SQLCell `json:"cells"`
}

// Partial-aggregate documents. A sharded backend (osdiv serve -shard
// i/N) owns a year-range slice of the corpus; these documents carry the
// raw, additive halves of the derived tables so the gateway can merge
// per-shard answers and finalize (shares, filter reduction, most-shared
// order, set ranking) with the single-process arithmetic. Endpoints
// whose regular documents are already additive (table1, table3 rows,
// temporal, kwise, releases, sqltable3) have no partial form — the
// gateway merges the regular documents.

// Table2Partial is the /api/partial/table2 document: Table II rows plus
// the raw distinct-per-class counts and valid total behind the
// percentage shares. Everything here sums across shards.
type Table2Partial struct {
	Rows          []ClassRow `json:"rows"`
	ClassDistinct [4]int     `json:"class_distinct"`
	Valid         int        `json:"valid"`
}

// Table4Partial is the /api/partial/table4 document: every pair's
// Table IV row in pair presentation order, zero rows included and
// unsorted, so per-index sums across shards finalize into Table4.
type Table4Partial struct {
	Rows []PartRow `json:"rows"`
}

// SharedProduct is one mergeable most-shared element.
type SharedProduct struct {
	ID       string `json:"id"`
	Products int    `json:"products"`
}

// MostSharedPartial is the /api/partial/mostshared document: the
// shard's top-n prefix of the (product count desc, CVE ID asc) order
// with the counts the merge needs.
type MostSharedPartial struct {
	N       int             `json:"n"`
	Entries []SharedProduct `json:"entries"`
}

// SelectPairCost is one history-eligible pair's windowed shared count.
type SelectPairCost struct {
	A      string `json:"a"`
	B      string `json:"b"`
	Shared int    `json:"shared"`
}

// SelectOSCost is one history-eligible distribution's windowed total —
// the homogeneous single-member replica set's cost.
type SelectOSCost struct {
	OS    string `json:"os"`
	Total int    `json:"total"`
}

// SelectPartial is the /api/partial/select document: the additive cost
// vectors behind §IV-C set ranking for the window ending at to_year.
type SelectPartial struct {
	ToYear  int              `json:"to_year"`
	Pairs   []SelectPairCost `json:"pairs"`
	Singles []SelectOSCost   `json:"singles"`
}

// ShardStatus is one backend's slice of the gateway /readyz document.
type ShardStatus struct {
	Backend string `json:"backend"`
	Status  string `json:"status"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Error   string `json:"error,omitempty"`
}

// GatewayReady is the gateway /readyz document: per-shard readiness and
// the joined epoch vector the gateway keys its response cache on. The
// gateway is ready only when every backend is.
type GatewayReady struct {
	Status string        `json:"status"`
	Epochs string        `json:"epochs"`
	Shards []ShardStatus `json:"shards"`
}

// ShardCorpus is one backend's identity in the gateway /corpus
// document: who it is, which slice it owns, and what it loaded.
type ShardCorpus struct {
	Backend      string `json:"backend"`
	Shard        string `json:"shard,omitempty"`
	Source       string `json:"source"`
	ValidEntries int    `json:"valid_entries"`
	YearFrom     int    `json:"year_from"`
	YearTo       int    `json:"year_to"`
	Epoch        uint64 `json:"epoch"`
}

// GatewayCorpus is the gateway /corpus document: the merged corpus
// figures (valid entries summed, year range unioned over non-empty
// shards) and each backend's identity.
type GatewayCorpus struct {
	Backends     []string      `json:"backends"`
	ValidEntries int           `json:"valid_entries"`
	YearFrom     int           `json:"year_from"`
	YearTo       int           `json:"year_to"`
	Epochs       string        `json:"epochs"`
	Shards       []ShardCorpus `json:"shards"`
}

// ErrorBody is the payload of the error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON document of every non-200 response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Marshal renders a document in the server's canonical encoding:
// compact JSON plus a trailing newline. Every producer — handlers,
// the streaming encoder, the osdiv -json printers — emits exactly
// these bytes, so clients may diff responses textually.
func Marshal(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
