package classify

import (
	"testing"
	"time"

	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
)

func BenchmarkClassify(b *testing.B) {
	c := NewClassifier()
	e := &cve.Entry{
		ID:        cve.MustID("CVE-2008-4609"),
		Published: time.Date(2008, 10, 20, 0, 0, 0, 0, time.UTC),
		Summary:   "The TCP implementation in the kernel allows remote attackers to cause a denial of service via crafted segments.",
		Products:  []cpe.Name{cpe.MustParse("cpe:/o:openbsd:openbsd:4.2")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Classify(e) != ClassKernel {
			b.Fatal("misclassified")
		}
	}
}

func BenchmarkEntryValidity(b *testing.B) {
	e := &cve.Entry{
		ID:        cve.MustID("CVE-2006-1234"),
		Published: time.Date(2006, 1, 1, 0, 0, 0, 0, time.UTC),
		Summary:   "Unspecified vulnerability in the kernel has unknown impact and attack vectors.",
		Products:  []cpe.Name{cpe.MustParse("cpe:/o:sun:solaris:10")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if EntryValidity(e) != Unspecified {
			b.Fatal("validity wrong")
		}
	}
}
