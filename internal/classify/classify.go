// Package classify assigns every vulnerability to one of the paper's four
// OS component classes — Driver, Kernel, System Software, Application —
// and detects the editorial validity tags (Unknown, Unspecified,
// **DISPUTED**) that exclude an entry from the study.
//
// The paper performed this classification by hand over 1887 descriptions.
// The hand judgements themselves were never published, so this package
// encodes the *criteria* the paper states in §III-B as an ordered,
// transparent rule table over description text, plus an override list that
// plays the role of the manual corrections. The synthetic corpus writes
// descriptions from the same vocabulary, so the full pipeline — text in,
// class out — is exercised end to end.
package classify

import (
	"strings"
	"sync"
	"sync/atomic"
	"unicode"

	"osdiversity/internal/cve"
)

// Class is an OS component class per the paper's §III-B taxonomy.
type Class int

// The four classes, plus ClassUnclassified for text no rule matches.
const (
	ClassUnclassified Class = iota
	ClassDriver
	ClassKernel
	ClassSysSoft
	ClassApplication
)

// Classes lists the four real classes in the paper's column order
// (Driver, Kernel, System Software, Application).
func Classes() []Class {
	return []Class{ClassDriver, ClassKernel, ClassSysSoft, ClassApplication}
}

// String returns the display name used in the paper's tables.
func (c Class) String() string {
	switch c {
	case ClassDriver:
		return "Driver"
	case ClassKernel:
		return "Kernel"
	case ClassSysSoft:
		return "Sys. Soft."
	case ClassApplication:
		return "App."
	default:
		return "Unclassified"
	}
}

// Validity is the editorial status of an NVD entry.
type Validity int

// Validity states. Only Valid entries enter the study (paper §III-A).
const (
	Valid Validity = iota
	Unknown
	Unspecified
	Disputed
)

// String returns the display name used in the paper's Table I.
func (v Validity) String() string {
	switch v {
	case Valid:
		return "Valid"
	case Unknown:
		return "Unknown"
	case Unspecified:
		return "Unspecified"
	case Disputed:
		return "Disputed"
	default:
		return "?"
	}
}

// EntryValidity inspects an entry's summary for the NVD editorial tags
// the paper filtered on. Disputed dominates (vendors contest existence),
// then Unknown, then Unspecified, mirroring the paper's manual pass.
func EntryValidity(e *cve.Entry) Validity {
	s := strings.ToLower(e.Summary)
	switch {
	case strings.Contains(s, "** disputed **"):
		return Disputed
	// The leading editorial tag decides before the weaker in-text hints:
	// "Unspecified vulnerability ... has unknown impact" is Unspecified.
	case strings.HasPrefix(s, "unknown vulnerability"):
		return Unknown
	case strings.HasPrefix(s, "unspecified vulnerability"):
		return Unspecified
	case strings.Contains(s, "unknown impact"), strings.Contains(s, "unknown attack vectors"):
		return Unknown
	case strings.Contains(s, "unspecified other impact"), strings.Contains(s, "via unspecified vectors"):
		return Unspecified
	default:
		return Valid
	}
}

// Rule is one classification rule: if any keyword occurs in the
// description (on word boundaries), the rule assigns its class.
type Rule struct {
	// Name identifies the rule in explanations, e.g. "kernel/netstack".
	Name string
	// Class assigned when the rule fires.
	Class Class
	// Keywords matched case-insensitively on word boundaries. Multi-word
	// keywords match as phrases.
	Keywords []string
}

// Classifier applies an ordered rule table with per-CVE overrides.
// Construct with NewClassifier; the zero value classifies nothing.
//
// Rule-table results are memoized per summary text: corpus descriptions
// draw on a small template vocabulary, so at 100k-entry scale the same
// summary recurs thousands of times and the keyword scan dominated
// ingestion. The memo is concurrency-safe (digestion shards entries
// across worker pools) and caches only the deterministic rule-table
// outcome — per-CVE overrides are consulted first and never cached.
// Insertion stops at memoMaxEntries so a corpus of mostly-unique
// summaries (a real NVD feed) bounds the map instead of mirroring the
// whole feed; lookups keep working either way.
type Classifier struct {
	rules     []Rule
	overrides map[cve.ID]Class
	memo      sync.Map // summary string -> ruleHit
	memoSize  atomic.Int64
}

// memoMaxEntries caps the per-summary memo. The synthetic template
// vocabulary needs a few hundred entries; the cap only matters for
// unique-summary corpora, where memoization cannot win anyway.
const memoMaxEntries = 1 << 16

// ruleHit is one memoized rule-table outcome.
type ruleHit struct {
	class Class
	rule  string
}

// NewClassifier returns a classifier loaded with the default rule table
// derived from the paper's §III-B criteria.
func NewClassifier() *Classifier {
	return &Classifier{
		rules:     defaultRules,
		overrides: make(map[cve.ID]Class),
	}
}

// Override records a manual classification for one CVE, taking precedence
// over the rule table. This models the hand-made pass of the paper.
func (c *Classifier) Override(id cve.ID, class Class) {
	if c.overrides == nil {
		c.overrides = make(map[cve.ID]Class)
	}
	c.overrides[id] = class
}

// Classify assigns an entry to a component class. Overrides win; then the
// first rule (in table order) with a keyword hit; ClassUnclassified if
// nothing matches.
func (c *Classifier) Classify(e *cve.Entry) Class {
	class, _ := c.ClassifyExplained(e)
	return class
}

// ClassifyExplained is Classify but also reports which rule fired
// ("override" for manual classifications, "" when unclassified).
func (c *Classifier) ClassifyExplained(e *cve.Entry) (Class, string) {
	if c == nil {
		return ClassUnclassified, ""
	}
	if class, ok := c.overrides[e.ID]; ok {
		return class, "override"
	}
	if hit, ok := c.memo.Load(e.Summary); ok {
		h := hit.(ruleHit)
		return h.class, h.rule
	}
	h := c.applyRules(e.Summary)
	if c.memoSize.Load() < memoMaxEntries {
		if _, loaded := c.memo.LoadOrStore(e.Summary, h); !loaded {
			c.memoSize.Add(1)
		}
	}
	return h.class, h.rule
}

// applyRules runs the rule table over one summary.
func (c *Classifier) applyRules(summary string) ruleHit {
	text := foldText(summary)
	for _, r := range c.rules {
		for _, kw := range r.Keywords {
			if containsWord(text, kw) {
				return ruleHit{class: r.Class, rule: r.Name}
			}
		}
	}
	return ruleHit{class: ClassUnclassified}
}

// Rules exposes the rule table (shared slice; callers must not mutate).
func (c *Classifier) Rules() []Rule { return c.rules }

// foldText lowercases and maps punctuation to spaces so word-boundary
// matching is cheap.
func foldText(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte(' ')
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte(' ')
	return b.String()
}

// containsWord reports whether the folded text contains the keyword as a
// full-word phrase.
func containsWord(folded, keyword string) bool {
	return strings.Contains(folded, " "+keyword+" ")
}

// defaultRules transcribes §III-B. Order matters: Driver before Kernel
// (a "wireless driver packet parsing" flaw is a driver flaw even though
// "packet" smells of the network stack), and Application last-but-specific
// keywords still win over the generic kernel bucket by appearing earlier
// where the paper's rationale demands it.
var defaultRules = []Rule{
	{
		Name:  "driver/devices",
		Class: ClassDriver,
		Keywords: []string{
			"driver", "drivers",
			"wireless card", "network card", "ethernet card", "nic firmware",
			"video card", "graphics card", "graphics adapter",
			"webcam", "web cam", "audio card", "sound card",
			"universal plug and play", "upnp device",
			"usb device", "firewire", "bluetooth adapter",
		},
	},
	{
		Name:  "application/services",
		Class: ClassApplication,
		Keywords: []string{
			// Paper: DBMS, messengers, editors, web/email/FTP clients and
			// servers, media players, language runtimes, antivirus,
			// Kerberos/LDAP, games.
			"database server", "database management", "sql server", "mysql", "postgresql",
			"messenger", "instant messaging", "chat client",
			"text editor", "word processor", "spreadsheet",
			"web browser", "browser", "web server", "http server", "httpd",
			"mail client", "mail server", "email client", "smtp server", "imap server",
			"pop3 server", "ftp client", "ftp server", "ftpd",
			"media player", "music player", "video player", "audio player",
			"compiler", "virtual machine", "java runtime", "interpreter", "runtime environment",
			"antivirus", "anti virus",
			"kerberos", "ldap server", "ldap client", "directory server",
			"game", "games",
			"dns server application", "proxy server", "news server", "irc client",
			"office suite", "pdf viewer", "image viewer", "archive utility",
		},
	},
	{
		Name:  "syssoft/base-system",
		Class: ClassSysSoft,
		Keywords: []string{
			// Paper: login, shells and basic daemons shipped by default.
			"login", "login program", "shell", "command shell",
			"sshd", "ssh daemon", "openssh",
			"telnetd", "telnet daemon", "rlogind", "rshd",
			"syslogd", "syslog daemon", "inetd", "xinetd",
			"cron", "crond", "at daemon", "init system", "getty",
			"su utility", "sudo", "passwd program", "password utility",
			"lpd", "printing daemon", "cups daemon", "nfs daemon", "mountd",
			"sendmail daemon", "base utility", "system utility", "pam module",
			"rpc daemon", "rpcbind", "portmapper", "snmp daemon", "ntp daemon", "ntpd",
		},
	},
	{
		Name:  "kernel/core",
		Class: ClassKernel,
		Keywords: []string{
			// Paper: TCP/IP stack and OS-dependent protocol
			// implementations, file systems, process/task management, core
			// libraries, processor-architecture flaws.
			"kernel", "tcp ip stack", "network stack", "tcp implementation",
			"ip implementation", "icmp implementation", "tcp stack",
			"dns resolver", "dns protocol implementation", "dhcp implementation",
			"dhcp client implementation", "arp handling", "ipv6 stack",
			"packet processing", "fragment reassembly", "stack handling",
			"file system", "filesystem", "vfs layer", "ffs", "ufs", "procfs",
			"process management", "task management", "process scheduler", "scheduler",
			"process table", "signal handling", "fork handling",
			"virtual memory", "memory management", "page table", "mmap handling",
			"system call", "syscall", "ioctl handling",
			"core library", "libc", "standard c library", "dynamic linker",
			"processor architecture", "cpu errata", "smp handling", "context switch",
		},
	},
}
