package classify

import (
	"strings"
	"testing"
	"time"

	"osdiversity/internal/cpe"
	"osdiversity/internal/cve"
)

func entryWithSummary(summary string) *cve.Entry {
	return &cve.Entry{
		ID:        cve.MustID("CVE-2005-1234"),
		Published: time.Date(2005, 3, 1, 0, 0, 0, 0, time.UTC),
		Summary:   summary,
		Products:  []cpe.Name{cpe.MustParse("cpe:/o:openbsd:openbsd")},
	}
}

func TestEntryValidity(t *testing.T) {
	tests := []struct {
		name    string
		summary string
		want    Validity
	}{
		{"plain", "Buffer overflow in the kernel allows remote attackers to crash the system.", Valid},
		{"unspecified prefix", "Unspecified vulnerability in the kernel has unknown impact.", Unspecified},
		{"unknown prefix", "Unknown vulnerability in login allows local users to gain privileges.", Unknown},
		{"disputed", "** DISPUTED ** Buffer overflow in ftpd.", Disputed},
		{"disputed lowercase", "** disputed ** integer overflow.", Disputed},
		{"disputed beats unknown", "** DISPUTED ** Unknown vulnerability in sshd.", Disputed},
		{"unspecified vectors", "Cross-site scripting via unspecified vectors in the web server.", Unspecified},
		{"unknown attack vectors", "Flaw with unknown attack vectors in the scheduler.", Unknown},
		{"word unknown elsewhere ok", "The kernel mishandles packets from unknown hosts.", Valid},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EntryValidity(entryWithSummary(tt.summary)); got != tt.want {
				t.Fatalf("EntryValidity(%q) = %v, want %v", tt.summary, got, tt.want)
			}
		})
	}
}

func TestClassifyByRule(t *testing.T) {
	c := NewClassifier()
	tests := []struct {
		name    string
		summary string
		want    Class
	}{
		{"kernel tcp", "The TCP implementation allows remote attackers to exhaust connection state.", ClassKernel},
		{"kernel fs", "Race condition in the file system layer allows local users to read arbitrary files.", ClassKernel},
		{"kernel vm", "Integer overflow in virtual memory handling leads to a kernel panic.", ClassKernel},
		{"kernel libc", "Heap overflow in libc string routines allows privilege escalation.", ClassKernel},
		{"driver", "Buffer overflow in the wireless card driver allows nearby attackers to execute code.", ClassDriver},
		{"driver video", "Memory corruption in the video card driver crashes the display server.", ClassDriver},
		{"syssoft login", "The login program accepts empty passwords under certain conditions.", ClassSysSoft},
		{"syssoft sshd", "Off-by-one error in sshd allows remote attackers to bypass checks.", ClassSysSoft},
		{"syssoft cron", "cron mishandles setuid when re-reading crontabs.", ClassSysSoft},
		{"app browser", "Use-after-free in the web browser allows remote code execution.", ClassApplication},
		{"app dbms", "SQL injection in the bundled database server discloses records.", ClassApplication},
		{"app media", "Crafted playlist crashes the media player.", ClassApplication},
		{"app kerberos", "Double free in the Kerberos library allows remote code execution.", ClassApplication},
		{"unmatched", "Something entirely unrelated happened.", ClassUnclassified},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Classify(entryWithSummary(tt.summary)); got != tt.want {
				_, rule := c.ClassifyExplained(entryWithSummary(tt.summary))
				t.Fatalf("Classify(%q) = %v (rule %q), want %v", tt.summary, got, rule, tt.want)
			}
		})
	}
}

func TestRuleOrderDriverBeforeKernel(t *testing.T) {
	// A driver flaw whose description also mentions packets must stay a
	// driver flaw: the Driver rule precedes the Kernel rule.
	c := NewClassifier()
	e := entryWithSummary("Malformed packet processing in the wireless card driver causes a crash.")
	got, rule := c.ClassifyExplained(e)
	if got != ClassDriver {
		t.Fatalf("Classify = %v via rule %q, want ClassDriver", got, rule)
	}
}

func TestWordBoundaries(t *testing.T) {
	c := NewClassifier()
	// "gamete" must not trigger the "game" keyword; "sshdx" not "sshd".
	for _, s := range []string{
		"The gamete sequencing tool has a flaw.",
		"The sshdx utility mishandles input.",
	} {
		if got := c.Classify(entryWithSummary(s)); got != ClassUnclassified {
			t.Errorf("Classify(%q) = %v, want ClassUnclassified (substring leak)", s, got)
		}
	}
	// Punctuation must not defeat matching.
	if got := c.Classify(entryWithSummary("Flaw in sshd: remote bypass.")); got != ClassSysSoft {
		t.Errorf("punctuated sshd summary classified %v, want SysSoft", got)
	}
	if got := c.Classify(entryWithSummary("KERNEL panic on malformed input.")); got != ClassKernel {
		t.Errorf("uppercase KERNEL classified %v, want Kernel", got)
	}
}

func TestOverrideWins(t *testing.T) {
	c := NewClassifier()
	e := entryWithSummary("Use-after-free in the web browser allows remote code execution.")
	if got := c.Classify(e); got != ClassApplication {
		t.Fatalf("pre-override class = %v, want Application", got)
	}
	c.Override(e.ID, ClassKernel)
	got, rule := c.ClassifyExplained(e)
	if got != ClassKernel || rule != "override" {
		t.Fatalf("post-override = (%v, %q), want (Kernel, override)", got, rule)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassDriver:       "Driver",
		ClassKernel:       "Kernel",
		ClassSysSoft:      "Sys. Soft.",
		ClassApplication:  "App.",
		ClassUnclassified: "Unclassified",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if len(Classes()) != 4 {
		t.Errorf("Classes() = %d entries, want 4", len(Classes()))
	}
}

func TestValidityStrings(t *testing.T) {
	for v, s := range map[Validity]string{
		Valid: "Valid", Unknown: "Unknown", Unspecified: "Unspecified", Disputed: "Disputed",
	} {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestNilAndZeroClassifier(t *testing.T) {
	var nilC *Classifier
	if got := nilC.Classify(entryWithSummary("kernel panic")); got != ClassUnclassified {
		t.Error("nil classifier must return Unclassified")
	}
	var zero Classifier
	if got := zero.Classify(entryWithSummary("kernel panic")); got != ClassUnclassified {
		t.Error("zero classifier (no rules) must return Unclassified")
	}
	zero.Override(cve.MustID("CVE-2005-1234"), ClassDriver)
	if got := zero.Classify(entryWithSummary("anything")); got != ClassDriver {
		t.Error("override on zero classifier not honored")
	}
}

func TestEveryRuleKeywordFires(t *testing.T) {
	// Guards the rule table against dead keywords: each keyword, embedded
	// in a neutral sentence, must classify to its rule's class — proving
	// no earlier rule shadows it.
	c := NewClassifier()
	for _, r := range c.Rules() {
		for _, kw := range r.Keywords {
			summary := "Issue involving " + kw + " reported."
			got, rule := c.ClassifyExplained(entryWithSummary(summary))
			if got != r.Class {
				t.Errorf("keyword %q of rule %q classified as %v via %q, want %v",
					kw, r.Name, got, rule, r.Class)
			}
		}
	}
}

func TestMemoizedClassificationStable(t *testing.T) {
	// Repeated classifications of the same summary (the hot path of
	// 100k-corpus digestion) must serve from the memo and agree with a
	// cold classifier on every call.
	summaries := []string{
		"Buffer overflow in the kernel allows remote attackers to crash the system.",
		"Issue in the wireless card driver lets attackers inject frames.",
		"Flaw in sshd permits remote login bypass.",
		"Completely unmatched text about gardening.",
	}
	warm := NewClassifier()
	for i := 0; i < 3; i++ {
		for _, s := range summaries {
			cold := NewClassifier()
			wantClass, wantRule := cold.ClassifyExplained(entryWithSummary(s))
			gotClass, gotRule := warm.ClassifyExplained(entryWithSummary(s))
			if gotClass != wantClass || gotRule != wantRule {
				t.Errorf("pass %d: memoized classify(%q) = (%v, %q), cold = (%v, %q)",
					i, s, gotClass, gotRule, wantClass, wantRule)
			}
		}
	}
}

func TestOverrideWinsOverMemo(t *testing.T) {
	c := NewClassifier()
	e := entryWithSummary("Buffer overflow in the kernel allows remote attackers to crash the system.")
	if got := c.Classify(e); got != ClassKernel {
		t.Fatalf("pre-override class = %v, want Kernel", got)
	}
	// The memo now holds the rule-table result for this summary; the
	// per-CVE override must still take precedence.
	c.Override(e.ID, ClassDriver)
	if got, rule := c.ClassifyExplained(e); got != ClassDriver || rule != "override" {
		t.Errorf("post-override classify = (%v, %q), want (Driver, override)", got, rule)
	}
}

func TestFoldText(t *testing.T) {
	got := foldText("TCP/IP-stack, v2!")
	if !strings.Contains(got, " tcp ip stack ") {
		t.Errorf("foldText output %q lacks normalized phrase", got)
	}
}
