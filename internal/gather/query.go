package gather

// Gateway /api/query: scatter one SELECT to every shard database and
// concatenate the row sets in shard order. The shard databases are
// row-partitions of the full import (each vulnerability's facts live in
// exactly one shard; dimension tables are seeded identically), so plain
// SELECT output — a filtered projection of rows in scan order — is the
// concatenation of the per-shard outputs. Statements whose result is
// NOT a per-row function of the partition (DISTINCT, GROUP BY, HAVING,
// aggregates, ORDER BY, LIMIT) answer 501 unsupported_on_gateway: run
// them against an unsharded server, or pushed down per shard via a
// direct backend query.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"osdiversity/internal/httpapi"
	"osdiversity/internal/relstore"
)

// gatewayQueryStreamRows mirrors the server's streaming threshold: a
// merged result larger than this streams row by row and bypasses the
// response cache. A var so tests can lower it.
var gatewayQueryStreamRows = 4096

// queryMaxBody bounds the request document, like the server's.
const queryMaxBody = 1 << 20

// checkGatewayQuery enforces the merge-safety rules over a parsed
// statement. It returns the reason the statement cannot scatter, or ""
// when it can.
func checkGatewayQuery(stmt relstore.Statement) (string, *gwError) {
	sel, ok := stmt.(*relstore.SelectStmt)
	if !ok {
		// Same envelope as the single server: the statement class is the
		// problem, not the gateway.
		return "", &gwError{status: http.StatusBadRequest, code: "unsupported_statement",
			message: "only SELECT statements are served; data and schema changes go through import"}
	}
	switch {
	case sel.Distinct:
		return "SELECT DISTINCT", nil
	case len(sel.GroupBy) > 0:
		return "GROUP BY", nil
	case sel.Having != nil:
		return "HAVING", nil
	case len(sel.OrderBy) > 0:
		return "ORDER BY", nil
	case sel.Limit >= 0:
		return "LIMIT", nil
	case sel.HasAggregates():
		return "aggregate functions", nil
	}
	return "", nil
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, queryMaxBody))
	dec.UseNumber()
	var req httpapi.QueryRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, &gwError{status: http.StatusBadRequest, code: "bad_body",
			message: "request body is not a QueryRequest document: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, &gwError{status: http.StatusBadRequest, code: "bad_query",
			message: "missing required field sql"})
		return
	}
	stmt, err := relstore.Parse(req.SQL)
	if err != nil {
		writeError(w, &gwError{status: http.StatusBadRequest, code: "bad_query",
			message: err.Error()})
		return
	}
	if feature, gerr := checkGatewayQuery(stmt); gerr != nil {
		writeError(w, gerr)
		return
	} else if feature != "" {
		writeError(w, errUnsupported(feature+
			" does not merge across row-partitioned shards; query an unsharded server or each backend directly"))
		return
	}
	argsKey, err := json.Marshal(req.Args)
	if err != nil {
		writeError(w, errBadParam(err.Error()))
		return
	}
	g.respondQuery(w, pr, "query|"+req.SQL+"|"+string(argsKey), req)
}

// respondQuery is respond() with /api/query's streaming exit: merged
// results above gatewayQueryStreamRows keep the document and stream,
// bypassing the cache; coalesced waiters encode the shared immutable
// document themselves.
func (g *Gateway) respondQuery(w http.ResponseWriter, pr *probeResult, key string, req httpapi.QueryRequest) {
	key = "v" + pr.vec + "|" + key

	g.mu.Lock()
	g.pruneForVecLocked(pr.vec)
	if body, ok := g.cache[key]; ok {
		g.mu.Unlock()
		writeBody(w, body)
		return
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		writeQueryOutcome(w, c)
		return
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &gwError{status: http.StatusInternalServerError,
					code: "internal_panic", message: fmt.Sprint(r)}
			}
			g.mu.Lock()
			delete(g.calls, key)
			if c.err == nil && c.body != nil && g.cacheVec == pr.vec {
				g.storeLocked(key, c.body)
			}
			g.mu.Unlock()
			close(c.done)
		}()
		c.body, c.doc, c.err = g.computeQuery(pr, req)
	}()

	writeQueryOutcome(w, c)
}

func (g *Gateway) computeQuery(pr *probeResult, req httpapi.QueryRequest) ([]byte, *httpapi.QueryResult, *gwError) {
	if aerr := g.acquire(); aerr != nil {
		return nil, nil, aerr
	}
	defer g.release()
	g.computes.Add(1)

	legs := g.mc.ScatterPost(context.Background(), "/api/query", req)
	merged := &httpapi.QueryResult{Columns: []string{}, Rows: [][]any{}}
	for i, leg := range legs {
		if leg.Err != nil {
			return nil, nil, legError(leg.Backend, leg.Err)
		}
		if leg.Epoch != pr.epochs[i] {
			return nil, nil, errSkew(leg.Backend, leg.Epoch, pr.epochs[i])
		}
		var doc httpapi.QueryResult
		if derr := unmarshalLeg(leg.Body, &doc); derr != nil {
			return nil, nil, errMismatch(fmt.Sprintf("backend %s: malformed /api/query document: %v",
				leg.Backend, derr))
		}
		if i == 0 {
			if doc.Columns != nil {
				merged.Columns = doc.Columns
			}
		} else if !equalColumns(merged.Columns, doc.Columns) {
			return nil, nil, errMismatch(fmt.Sprintf(
				"backend %s: query columns %v, expected %v", leg.Backend, doc.Columns, merged.Columns))
		}
		merged.Rows = append(merged.Rows, doc.Rows...)
		merged.N += doc.N
	}
	if merged.N > gatewayQueryStreamRows {
		return nil, merged, nil
	}
	body, merr := httpapi.Marshal(merged)
	if merr != nil {
		return nil, nil, &gwError{status: http.StatusInternalServerError,
			code: "encode_failed", message: merr.Error()}
	}
	return body, nil, nil
}

func equalColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeQueryOutcome(w http.ResponseWriter, c *call) {
	switch {
	case c.err != nil:
		writeError(w, c.err)
	case c.body != nil:
		writeBody(w, c.body)
	default:
		w.Header().Set("Content-Type", "application/json")
		httpapi.StreamQueryResult(w, c.doc)
	}
}
