// Package gather is the scatter-gather front-end of the scale-out tier:
// `osdiv gateway -backends a,b,c` answers the same /api surface as one
// resident server by fanning every query out to N shard backends (each
// an `osdiv serve -shard i/N` owning a year-range slice of the corpus),
// merging their typed partial aggregates, and finalizing with the exact
// single-process arithmetic from internal/core — so a gateway over any
// shard count answers byte-identically to one server over the whole
// corpus.
//
// The merge rules exploit that the year-range shards partition the
// corpus (every vulnerability lives in exactly one shard):
//
//   - raw counts add: Table I/III rows, Table V cells, temporal series,
//     k-wise buckets, release overlaps and the SQL Table III matrix
//     merge by per-index sums of the regular endpoint documents;
//   - derived figures finalize from shard-summed raw halves served by
//     the /api/partial/* endpoints: Table II shares (core.ClassShares),
//     Table IV's filtered/sorted rows, Table III's filter-reduction
//     float (core.FilterReductionFrom over the merged pair columns),
//     the most-shared order (core.MergeMostShared over per-shard
//     prefixes) and §IV-C set ranking (core.RankSetsFromCosts over
//     summed cost vectors);
//   - /api/query scatters the POST to every shard and concatenates row
//     sets in shard order — legal only for plain SELECTs, so grouped,
//     aggregated, deduplicated, ordered or limited statements answer
//     501 unsupported_on_gateway;
//   - /api/attack, /api/recommend and /admin/reload are not mergeable
//     (the Monte Carlo and the schedule search are corpus-global;
//     shards reload individually) and answer 501.
//
// Consistency across shards is epoch-vector based. Every request first
// resolves the per-shard epoch vector (a coalesced /readyz probe,
// cached for Config.RevalidateAfter); responses carry the joined
// vector in X-Osdiv-Epoch; the merged-response cache is keyed by it
// and flushes whenever any shard swaps; and each scattered leg's
// X-Osdiv-Epoch is checked against the resolved vector — a shard that
// hot-reloaded mid-request answers 503 epoch_skew rather than letting
// one merged document mix corpus generations.
//
// Degradation is typed, like the server's: an unreachable backend is
// 503 shard_unavailable naming the backend; a shard's own error
// envelope (bad_param, overloaded, not_ready, no_database, ...)
// forwards verbatim so gateway and single-server clients see the same
// errors; a structurally inconsistent shard set (different universes,
// row orders) is 502 shard_mismatch. In front of it all sit the same
// singleflight coalescing, bounded response cache and
// inflight/queue-wait shedding the resident server uses.
package gather

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"osdiversity/internal/httpapi"
)

// Config describes the backend set and the gateway's execution limits.
type Config struct {
	// Backends are the shard base URLs in shard order
	// ("http://host:port"); the gateway's merge indexes legs by this
	// order, so it must match the -shard numbering.
	Backends []string
	// Timeout bounds each scattered request attempt; 0 selects 30s.
	Timeout time.Duration
	// Retry bounds per-leg GET retries on transient failures; the zero
	// value selects 3 attempts with the client's default backoff.
	Retry httpapi.RetryPolicy
	// MaxInFlight bounds concurrently executing merged computations; 0
	// selects 2x the backend count.
	MaxInFlight int
	// CacheLimit bounds the merged-response cache entry count; 0
	// selects 1024.
	CacheLimit int
	// MaxQueueWait bounds how long a request may wait for a compute
	// slot before being shed with 503 + Retry-After; 0 selects 5s.
	MaxQueueWait time.Duration
	// RevalidateAfter is how long a resolved epoch vector stays fresh
	// before the next request re-probes /readyz across the shards; 0
	// selects 100ms, negative probes on every request (tests use -1 to
	// observe a shard reload immediately).
	RevalidateAfter time.Duration

	// HTTP overrides the transport on every backend client (httptest
	// servers pass their own).
	HTTP *http.Client
}

func (cfg Config) withDefaults() Config {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Retry.Attempts <= 0 {
		cfg.Retry.Attempts = 3
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * len(cfg.Backends)
		if cfg.MaxInFlight < 1 {
			cfg.MaxInFlight = 1
		}
	}
	if cfg.CacheLimit <= 0 {
		cfg.CacheLimit = 1024
	}
	if cfg.MaxQueueWait <= 0 {
		cfg.MaxQueueWait = 5 * time.Second
	}
	if cfg.RevalidateAfter == 0 {
		cfg.RevalidateAfter = 100 * time.Millisecond
	}
	return cfg
}

// Gateway scatters, merges and caches. Construct with New.
type Gateway struct {
	cfg Config
	mc  *httpapi.MultiClient

	limiter chan struct{}

	mu       sync.Mutex
	calls    map[string]*call
	cache    map[string][]byte
	cacheVec string

	// Coalesced epoch-vector probe state.
	probeMu   sync.Mutex
	probing   chan struct{}
	lastProbe *probeResult
	probedAt  time.Time

	// Per-vector merged corpus metadata (global year range, summed
	// valid count) behind parameter canonicalization and /corpus.
	metaMu sync.Mutex
	meta   *shardMeta

	computes atomic.Int64
}

// call is one in-flight merged computation; large /api/query results
// keep the document for streaming instead of a cacheable body.
type call struct {
	done chan struct{}
	body []byte
	doc  *httpapi.QueryResult
	err  *gwError
}

// gwError is a gateway failure destined for the JSON error envelope —
// the same wire shape the shards answer.
type gwError struct {
	status     int
	code       string
	message    string
	retryAfter int
}

func errBadParam(msg string) *gwError {
	return &gwError{status: http.StatusBadRequest, code: "bad_param", message: msg}
}

func errOverloaded() *gwError {
	return &gwError{status: http.StatusServiceUnavailable, code: "overloaded",
		message: "all compute slots busy; retry shortly", retryAfter: 1}
}

func errUnsupported(what string) *gwError {
	return &gwError{status: http.StatusNotImplemented, code: "unsupported_on_gateway",
		message: what}
}

// legError maps one scattered leg's failure: a shard's own error
// envelope forwards verbatim (same status, code and message a
// single-server client would see), a transport failure becomes 503
// shard_unavailable naming the backend.
func legError(backend string, err error) *gwError {
	var he *httpapi.Error
	if errors.As(err, &he) {
		retry := 0
		if he.StatusCode == http.StatusServiceUnavailable {
			retry = 1
		}
		return &gwError{status: he.StatusCode, code: he.Code, message: he.Message, retryAfter: retry}
	}
	return &gwError{status: http.StatusServiceUnavailable, code: "shard_unavailable",
		message: fmt.Sprintf("backend %s unreachable: %v", backend, err), retryAfter: 1}
}

// errMismatch is the structurally-inconsistent-shard-set failure: the
// backends disagree about universe, row order or columns, which no
// retry fixes — the deployment is misconfigured.
func errMismatch(msg string) *gwError {
	return &gwError{status: http.StatusBadGateway, code: "shard_mismatch", message: msg}
}

func errSkew(backend, got, want string) *gwError {
	return &gwError{status: http.StatusServiceUnavailable, code: "epoch_skew",
		message: fmt.Sprintf("backend %s answered epoch %s, resolved vector expected %s; retry shortly",
			backend, got, want), retryAfter: 1}
}

// New builds a gateway over the configured backend set.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gather: no backends configured")
	}
	cfg = cfg.withDefaults()
	mc := httpapi.NewMultiClient(cfg.Backends, cfg.Timeout, cfg.Retry)
	for _, c := range mc.Clients {
		c.HTTP = cfg.HTTP
	}
	return &Gateway{
		cfg:     cfg,
		mc:      mc,
		limiter: make(chan struct{}, cfg.MaxInFlight),
		calls:   make(map[string]*call),
		cache:   make(map[string][]byte),
	}, nil
}

// Computes reports how many merged bodies the gateway has computed
// (cache misses that scattered). The coalescing tests assert N
// concurrent identical cold requests add exactly one.
func (g *Gateway) Computes() int64 { return g.computes.Load() }

// Handler returns the HTTP handler serving the gateway API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", g.get(g.handleHealth))
	mux.HandleFunc("/readyz", g.get(g.handleReady))
	mux.HandleFunc("/corpus", g.get(g.handleCorpus))
	mux.HandleFunc("/admin/reload", g.post(g.handleReload))
	mux.HandleFunc("/api/table1", g.get(g.handleTable1))
	mux.HandleFunc("/api/table2", g.get(g.handleTable2))
	mux.HandleFunc("/api/table3", g.get(g.handleTable3))
	mux.HandleFunc("/api/table4", g.get(g.handleTable4))
	mux.HandleFunc("/api/table5", g.get(g.handleTable5))
	mux.HandleFunc("/api/temporal", g.get(g.handleTemporal))
	mux.HandleFunc("/api/kwise", g.get(g.handleKWise))
	mux.HandleFunc("/api/mostshared", g.get(g.handleMostShared))
	mux.HandleFunc("/api/select", g.get(g.handleSelect))
	mux.HandleFunc("/api/releases", g.get(g.handleReleases))
	mux.HandleFunc("/api/attack", g.get(g.handleAttack))
	mux.HandleFunc("/api/sqltable3", g.get(g.handleSQLTable3))
	mux.HandleFunc("/api/query", g.post(g.handleQuery))
	mux.HandleFunc("/api/recommend", g.post(g.handleRecommend))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &gwError{status: http.StatusNotFound, code: "not_found",
			message: "unknown endpoint " + r.URL.Path})
	})
	return mux
}

func (g *Gateway) get(h http.HandlerFunc) http.HandlerFunc {
	return g.method(http.MethodGet, h)
}

func (g *Gateway) post(h http.HandlerFunc) http.HandlerFunc {
	return g.method(http.MethodPost, h)
}

func (g *Gateway) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			writeError(w, &gwError{status: http.StatusMethodNotAllowed,
				code: "method_not_allowed", message: r.Method + " not allowed; use " + want})
			return
		}
		h(w, r)
	}
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, e *gwError) {
	body, err := httpapi.Marshal(httpapi.ErrorEnvelope{
		Error: httpapi.ErrorBody{Code: e.code, Message: e.message},
	})
	if err != nil {
		http.Error(w, e.message, e.status)
		return
	}
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	w.Write(body)
}

func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (g *Gateway) respondDirect(w http.ResponseWriter, doc any) {
	body, err := httpapi.Marshal(doc)
	if err != nil {
		writeError(w, &gwError{status: http.StatusInternalServerError,
			code: "encode_failed", message: err.Error()})
		return
	}
	writeBody(w, body)
}

// probeResult is one resolved epoch vector: per-shard epochs in
// backend order and their join (the cache generation and the
// X-Osdiv-Epoch the gateway answers with). err is set when any shard
// was unreachable or not ready — the vector is unusable then.
type probeResult struct {
	epochs []string
	vec    string
	shards []httpapi.ShardStatus
	err    *gwError
}

// resolve returns the current epoch vector, probing /readyz across the
// backends at most once per RevalidateAfter window and coalescing
// concurrent probes into one scatter.
func (g *Gateway) resolve() *probeResult {
	for {
		g.probeMu.Lock()
		if g.lastProbe != nil && g.cfg.RevalidateAfter > 0 &&
			time.Since(g.probedAt) < g.cfg.RevalidateAfter {
			pr := g.lastProbe
			g.probeMu.Unlock()
			return pr
		}
		if ch := g.probing; ch != nil {
			g.probeMu.Unlock()
			<-ch
			g.probeMu.Lock()
			pr := g.lastProbe
			g.probeMu.Unlock()
			return pr
		}
		ch := make(chan struct{})
		g.probing = ch
		g.probeMu.Unlock()

		pr := g.doProbe()

		g.probeMu.Lock()
		g.lastProbe, g.probedAt, g.probing = pr, time.Now(), nil
		g.probeMu.Unlock()
		close(ch)
		return pr
	}
}

func (g *Gateway) doProbe() *probeResult {
	legs := g.mc.Scatter(context.Background(), "/readyz", nil)
	pr := &probeResult{
		epochs: make([]string, len(legs)),
		shards: make([]httpapi.ShardStatus, len(legs)),
	}
	for i, leg := range legs {
		st := httpapi.ShardStatus{Backend: leg.Backend}
		if leg.Err != nil {
			st.Status = "unreachable"
			st.Error = leg.Err.Error()
			var he *httpapi.Error
			if errors.As(leg.Err, &he) {
				st.Status = he.Code
			}
			if pr.err == nil {
				pr.err = legError(leg.Backend, leg.Err)
			}
		} else {
			var ready httpapi.Ready
			if derr := unmarshalLeg(leg.Body, &ready); derr != nil {
				st.Status = "malformed"
				st.Error = derr.Error()
				if pr.err == nil {
					pr.err = errMismatch(fmt.Sprintf("backend %s: malformed /readyz: %v", leg.Backend, derr))
				}
			} else {
				st.Status = ready.Status
				st.Epoch = ready.Epoch
				pr.epochs[i] = strconv.FormatUint(ready.Epoch, 10)
			}
		}
		pr.shards[i] = st
	}
	pr.vec = strings.Join(pr.epochs, ",")
	return pr
}

// shardMeta is the merged corpus identity of one epoch vector: the
// union year range over non-empty shards, the summed valid count, and
// each backend's /corpus document (for the gateway /corpus view).
type shardMeta struct {
	vec    string
	yearLo int
	yearHi int
	valid  int
	corpus []httpapi.CorpusInfo
}

// metaFor returns the merged corpus metadata for a resolved vector,
// scattering /corpus once per vector change.
func (g *Gateway) metaFor(pr *probeResult) (*shardMeta, *gwError) {
	g.metaMu.Lock()
	if m := g.meta; m != nil && m.vec == pr.vec {
		g.metaMu.Unlock()
		return m, nil
	}
	g.metaMu.Unlock()

	legs := g.mc.Scatter(context.Background(), "/corpus", nil)
	m := &shardMeta{vec: pr.vec, corpus: make([]httpapi.CorpusInfo, len(legs))}
	for i, leg := range legs {
		if leg.Err != nil {
			return nil, legError(leg.Backend, leg.Err)
		}
		if leg.Epoch != pr.epochs[i] {
			return nil, errSkew(leg.Backend, leg.Epoch, pr.epochs[i])
		}
		var info httpapi.CorpusInfo
		if derr := unmarshalLeg(leg.Body, &info); derr != nil {
			return nil, errMismatch(fmt.Sprintf("backend %s: malformed /corpus: %v", leg.Backend, derr))
		}
		m.corpus[i] = info
		m.valid += info.ValidEntries
		if info.ValidEntries > 0 {
			if m.yearLo == 0 || info.YearFrom < m.yearLo {
				m.yearLo = info.YearFrom
			}
			if info.YearTo > m.yearHi {
				m.yearHi = info.YearTo
			}
		}
	}

	g.metaMu.Lock()
	if g.meta == nil || g.meta.vec != pr.vec {
		g.meta = m
	}
	g.metaMu.Unlock()
	return m, nil
}

// start resolves the epoch vector for one request, writes the
// X-Osdiv-Epoch header, and maps a degraded shard set to its typed
// envelope. Every handler calls it exactly once at entry.
func (g *Gateway) start(w http.ResponseWriter) (*probeResult, bool) {
	pr := g.resolve()
	if pr.err != nil {
		writeError(w, pr.err)
		return nil, false
	}
	w.Header().Set("X-Osdiv-Epoch", pr.vec)
	return pr, true
}

// respond serves one merged endpoint: vector-keyed cache lookup, then
// singleflight coalescing, then the bounded scatter+merge path. Mirrors
// the server's respond, with the epoch vector as the generation: any
// shard swapping flushes everything (vectors are not ordered, so the
// prune is change-triggered rather than forward-only).
func (g *Gateway) respond(w http.ResponseWriter, pr *probeResult, key string, build func() (any, *gwError)) {
	key = "v" + pr.vec + "|" + key

	g.mu.Lock()
	g.pruneForVecLocked(pr.vec)
	if body, ok := g.cache[key]; ok {
		g.mu.Unlock()
		writeBody(w, body)
		return
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		if c.err != nil {
			writeError(w, c.err)
			return
		}
		writeBody(w, c.body)
		return
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &gwError{status: http.StatusInternalServerError,
					code: "internal_panic", message: fmt.Sprint(r)}
			}
			g.mu.Lock()
			delete(g.calls, key)
			if c.err == nil && g.cacheVec == pr.vec {
				g.storeLocked(key, c.body)
			}
			g.mu.Unlock()
			close(c.done)
		}()
		c.body, c.err = g.compute(build)
	}()

	if c.err != nil {
		writeError(w, c.err)
		return
	}
	writeBody(w, c.body)
}

func (g *Gateway) compute(build func() (any, *gwError)) ([]byte, *gwError) {
	if aerr := g.acquire(); aerr != nil {
		return nil, aerr
	}
	defer g.release()
	g.computes.Add(1)
	doc, aerr := build()
	if aerr != nil {
		return nil, aerr
	}
	body, err := httpapi.Marshal(doc)
	if err != nil {
		return nil, &gwError{status: http.StatusInternalServerError,
			code: "encode_failed", message: err.Error()}
	}
	return body, nil
}

func (g *Gateway) acquire() *gwError {
	select {
	case g.limiter <- struct{}{}:
		return nil
	default:
	}
	t := time.NewTimer(g.cfg.MaxQueueWait)
	defer t.Stop()
	select {
	case g.limiter <- struct{}{}:
		return nil
	case <-t.C:
		return errOverloaded()
	}
}

func (g *Gateway) release() { <-g.limiter }

func (g *Gateway) pruneForVecLocked(vec string) {
	if g.cacheVec == vec {
		return
	}
	g.cacheVec = vec
	g.cache = make(map[string][]byte)
}

func (g *Gateway) storeLocked(key string, body []byte) {
	if len(g.cache) >= g.cfg.CacheLimit {
		for k := range g.cache {
			delete(g.cache, k)
			break
		}
	}
	g.cache[key] = body
}

// scatter fans one GET out to every backend and settles the legs: any
// leg error maps through legError, and every leg's epoch header must
// match the resolved vector (a shard reloading between probe and
// scatter answers epoch_skew rather than mixing generations into one
// merged document). Returns the raw bodies in backend order.
func (g *Gateway) scatter(pr *probeResult, path string, query url.Values) ([][]byte, *gwError) {
	legs := g.mc.Scatter(context.Background(), path, query)
	bodies := make([][]byte, len(legs))
	for i, leg := range legs {
		if leg.Err != nil {
			return nil, legError(leg.Backend, leg.Err)
		}
		if leg.Epoch != pr.epochs[i] {
			return nil, errSkew(leg.Backend, leg.Epoch, pr.epochs[i])
		}
		bodies[i] = leg.Body
	}
	return bodies, nil
}
