package gather_test

import (
	"io"
	"net/http"
	"testing"
	"time"

	"osdiversity/internal/gather"
)

// BenchmarkGatewayTable3Concurrent is the scale-out tier's load proof:
// many clients hammering the heaviest table endpoint through a gateway
// over two shards. The first request scatters and merges; everything
// after is epoch-checked cache service, so the number approximates the
// gateway's sustained per-request overhead (probe freshness check +
// cached-body write) relative to BenchmarkServerTable3Concurrent.
func BenchmarkGatewayTable3Concurrent(b *testing.B) {
	backends := newShardBackends(b, 2, 2)
	_, gwts := newGateway(b, gather.Config{
		Backends:        backends,
		RevalidateAfter: 100 * time.Millisecond,
	})
	url := gwts.URL + "/api/table3"
	client := gwts.Client()

	// Warm the probe and the merged-response cache outside the timer.
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || n == 0 {
		b.Fatalf("warm GET: status %d, %d bytes", resp.StatusCode, n)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
