package gather

// The per-endpoint scatter+merge handlers. Each one resolves the epoch
// vector, canonicalizes parameters against the merged corpus (never one
// backend's slice), scatters, and merges per the partition arithmetic:
// raw counts sum per-index, derived figures finalize through the same
// internal/core helpers the single-process engines use — that shared
// arithmetic is what makes the gateway byte-identical to one server.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"

	"osdiversity/internal/core"
	"osdiversity/internal/cve"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/osmap"
	"osdiversity/internal/server"
)

// The parameter defaults mirror the server's, so a bare gateway request
// answers the same document as a bare single-server request.
const (
	defaultSplitYear  = server.DefaultSplitYear
	defaultMostShared = 3
	defaultSelectK    = 4
)

// unmarshalLeg decodes one leg body strictly; the shards emit compact
// canonical JSON, so any decode failure means a version- or
// deployment-mismatched backend.
func unmarshalLeg(body []byte, out any) error {
	return json.Unmarshal(body, out)
}

// decodeLegs decodes every leg of a scatter into T, mapping a decode
// failure to shard_mismatch naming the backend.
func decodeLegs[T any](g *Gateway, bodies [][]byte, what string) ([]T, *gwError) {
	out := make([]T, len(bodies))
	for i, body := range bodies {
		if err := unmarshalLeg(body, &out[i]); err != nil {
			return nil, errMismatch(fmt.Sprintf("backend %s: malformed %s document: %v",
				g.cfg.Backends[i], what, err))
		}
	}
	return out, nil
}

// fetch scatters one GET and decodes every leg.
func fetch[T any](g *Gateway, pr *probeResult, path string, query url.Values) ([]T, *gwError) {
	bodies, gerr := g.scatter(pr, path, query)
	if gerr != nil {
		return nil, gerr
	}
	return decodeLegs[T](g, bodies, path)
}

// intParam and boolParam mirror the server's parsers byte for byte, so
// a bad parameter draws the same envelope from gateway and shard.
func intParam(q url.Values, name string, def, min, max int) (int, *gwError) {
	raw := q.Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errBadParam(fmt.Sprintf("%s=%q is not an integer", name, raw))
	}
	if n < min || n > max {
		return 0, errBadParam(fmt.Sprintf("%s=%d out of range [%d, %d]", name, n, min, max))
	}
	return n, nil
}

func boolParam(q url.Values, name string) (bool, *gwError) {
	raw := q.Get(name)
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, errBadParam(fmt.Sprintf("%s=%q is not a boolean", name, raw))
	}
	return v, nil
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	g.respondDirect(w, httpapi.Health{Status: "ok"})
}

// handleReady aggregates per-shard readiness. All backends ready
// answers the GatewayReady document; any unreachable or unready
// backend answers 503 with per-shard detail in the message, so probes
// and operators see which leg is the problem.
func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	pr := g.resolve()
	if pr.err != nil {
		msg := "gateway degraded:"
		for _, st := range pr.shards {
			if st.Status != "ok" {
				msg += fmt.Sprintf(" %s=%s", st.Backend, st.Status)
			}
		}
		writeError(w, &gwError{status: http.StatusServiceUnavailable,
			code: "not_ready", message: msg, retryAfter: 1})
		return
	}
	w.Header().Set("X-Osdiv-Epoch", pr.vec)
	g.respondDirect(w, httpapi.GatewayReady{Status: "ok", Epochs: pr.vec, Shards: pr.shards})
}

func (g *Gateway) handleCorpus(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	m, gerr := g.metaFor(pr)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	doc := httpapi.GatewayCorpus{
		Backends:     g.cfg.Backends,
		ValidEntries: m.valid,
		YearFrom:     m.yearLo,
		YearTo:       m.yearHi,
		Epochs:       pr.vec,
		Shards:       make([]httpapi.ShardCorpus, len(m.corpus)),
	}
	for i, info := range m.corpus {
		doc.Shards[i] = httpapi.ShardCorpus{
			Backend:      g.cfg.Backends[i],
			Shard:        info.Shard,
			Source:       info.Source,
			ValidEntries: info.ValidEntries,
			YearFrom:     info.YearFrom,
			YearTo:       info.YearTo,
			Epoch:        info.Epoch,
		}
	}
	g.respondDirect(w, doc)
}

func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	writeError(w, errUnsupported(
		"reload is per-shard; POST /admin/reload on each backend (the gateway tracks epochs per request)"))
}

func (g *Gateway) handleAttack(w http.ResponseWriter, r *http.Request) {
	writeError(w, errUnsupported(
		"the attack Monte Carlo needs the whole corpus in one process; run it against an unsharded server"))
}

func (g *Gateway) handleRecommend(w http.ResponseWriter, r *http.Request) {
	writeError(w, errUnsupported(
		"the schedule search simulates over the whole corpus in one process; run it against an unsharded server"))
}

// addValidity sums one Table I row into an accumulator after checking
// the OS identity lines up across shards.
func mismatchRow(backend, table string, i int, got, want string) *gwError {
	return errMismatch(fmt.Sprintf("backend %s: %s row %d is %q, expected %q",
		backend, table, i, got, want))
}

func (g *Gateway) handleTable1(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	g.respond(w, pr, "table1", func() (any, *gwError) {
		legs, gerr := fetch[httpapi.Table1](g, pr, "/api/table1", nil)
		if gerr != nil {
			return nil, gerr
		}
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Rows) != len(merged.Rows) {
				return nil, errMismatch(fmt.Sprintf("backend %s: table1 has %d rows, expected %d",
					g.cfg.Backends[li], len(leg.Rows), len(merged.Rows)))
			}
			for i := range leg.Rows {
				if leg.Rows[i].OS != merged.Rows[i].OS {
					return nil, mismatchRow(g.cfg.Backends[li], "table1", i, leg.Rows[i].OS, merged.Rows[i].OS)
				}
				merged.Rows[i].Valid += leg.Rows[i].Valid
				merged.Rows[i].Unknown += leg.Rows[i].Unknown
				merged.Rows[i].Unspecified += leg.Rows[i].Unspecified
				merged.Rows[i].Disputed += leg.Rows[i].Disputed
			}
			merged.Distinct.Valid += leg.Distinct.Valid
			merged.Distinct.Unknown += leg.Distinct.Unknown
			merged.Distinct.Unspecified += leg.Distinct.Unspecified
			merged.Distinct.Disputed += leg.Distinct.Disputed
		}
		return merged, nil
	})
}

func (g *Gateway) handleTable2(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	g.respond(w, pr, "table2", func() (any, *gwError) {
		legs, gerr := fetch[httpapi.Table2Partial](g, pr, "/api/partial/table2", nil)
		if gerr != nil {
			return nil, gerr
		}
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Rows) != len(merged.Rows) {
				return nil, errMismatch(fmt.Sprintf("backend %s: table2 has %d rows, expected %d",
					g.cfg.Backends[li], len(leg.Rows), len(merged.Rows)))
			}
			for i := range leg.Rows {
				if leg.Rows[i].OS != merged.Rows[i].OS {
					return nil, mismatchRow(g.cfg.Backends[li], "table2", i, leg.Rows[i].OS, merged.Rows[i].OS)
				}
				merged.Rows[i].Driver += leg.Rows[i].Driver
				merged.Rows[i].Kernel += leg.Rows[i].Kernel
				merged.Rows[i].SysSoft += leg.Rows[i].SysSoft
				merged.Rows[i].App += leg.Rows[i].App
			}
			for c := range leg.ClassDistinct {
				merged.ClassDistinct[c] += leg.ClassDistinct[c]
			}
			merged.Valid += leg.Valid
		}
		return httpapi.Table2{
			Rows:      merged.Rows,
			SharesPct: core.ClassShares(merged.ClassDistinct, merged.Valid),
		}, nil
	})
}

func (g *Gateway) handleTable3(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	g.respond(w, pr, "table3", func() (any, *gwError) {
		legs, gerr := fetch[httpapi.Table3](g, pr, "/api/table3", nil)
		if gerr != nil {
			return nil, gerr
		}
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Rows) != len(merged.Rows) {
				return nil, errMismatch(fmt.Sprintf("backend %s: table3 has %d rows, expected %d",
					g.cfg.Backends[li], len(leg.Rows), len(merged.Rows)))
			}
			for i := range leg.Rows {
				if leg.Rows[i].A != merged.Rows[i].A || leg.Rows[i].B != merged.Rows[i].B {
					return nil, mismatchRow(g.cfg.Backends[li], "table3", i,
						leg.Rows[i].A+"-"+leg.Rows[i].B, merged.Rows[i].A+"-"+merged.Rows[i].B)
				}
				for p := 0; p < 3; p++ {
					merged.Rows[i].TotalA[p] += leg.Rows[i].TotalA[p]
					merged.Rows[i].TotalB[p] += leg.Rows[i].TotalB[p]
				}
				merged.Rows[i].All += leg.Rows[i].All
				merged.Rows[i].NoApp += leg.Rows[i].NoApp
				merged.Rows[i].Remote += leg.Rows[i].Remote
			}
		}
		// The reduction statistic is a mean of ratios — it does not sum.
		// Recompute it from the merged pair columns with the same core
		// arithmetic the Study uses.
		all := make([]int, len(merged.Rows))
		remote := make([]int, len(merged.Rows))
		for i := range merged.Rows {
			all[i] = merged.Rows[i].All
			remote[i] = merged.Rows[i].Remote
		}
		merged.FilterReductionPct = core.FilterReductionFrom(all, remote)
		return merged, nil
	})
}

func (g *Gateway) handleTable4(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	g.respond(w, pr, "table4", func() (any, *gwError) {
		legs, gerr := fetch[httpapi.Table4Partial](g, pr, "/api/partial/table4", nil)
		if gerr != nil {
			return nil, gerr
		}
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Rows) != len(merged.Rows) {
				return nil, errMismatch(fmt.Sprintf("backend %s: table4 has %d rows, expected %d",
					g.cfg.Backends[li], len(leg.Rows), len(merged.Rows)))
			}
			for i := range leg.Rows {
				if leg.Rows[i].A != merged.Rows[i].A || leg.Rows[i].B != merged.Rows[i].B {
					return nil, mismatchRow(g.cfg.Backends[li], "table4", i,
						leg.Rows[i].A+"-"+leg.Rows[i].B, merged.Rows[i].A+"-"+merged.Rows[i].B)
				}
				merged.Rows[i].Driver += leg.Rows[i].Driver
				merged.Rows[i].Kernel += leg.Rows[i].Kernel
				merged.Rows[i].SysSoft += leg.Rows[i].SysSoft
				merged.Rows[i].Total += leg.Rows[i].Total
			}
		}
		// Finalize like the single-process table: drop empty pairs, then
		// order by total descending (stable, so ties keep pair order).
		rows := make([]httpapi.PartRow, 0, len(merged.Rows))
		for _, row := range merged.Rows {
			if row.Total > 0 {
				rows = append(rows, row)
			}
		}
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Total > rows[j].Total })
		return httpapi.Table4{Rows: rows}, nil
	})
}

func (g *Gateway) handleTable5(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	split, gerr := intParam(r.URL.Query(), "split", defaultSplitYear, 1900, 2100)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	m, gerr := g.metaFor(pr)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	split = canonSplitYear(m, split)
	g.respond(w, pr, fmt.Sprintf("table5?split=%d", split), func() (any, *gwError) {
		q := url.Values{"split": {strconv.Itoa(split)}}
		legs, gerr := fetch[httpapi.Table5](g, pr, "/api/partial/table5", q)
		if gerr != nil {
			return nil, gerr
		}
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Cells) != len(merged.Cells) {
				return nil, errMismatch(fmt.Sprintf("backend %s: table5 has %d cells, expected %d",
					g.cfg.Backends[li], len(leg.Cells), len(merged.Cells)))
			}
			for i := range leg.Cells {
				if leg.Cells[i].A != merged.Cells[i].A || leg.Cells[i].B != merged.Cells[i].B {
					return nil, mismatchRow(g.cfg.Backends[li], "table5", i,
						leg.Cells[i].A+"-"+leg.Cells[i].B, merged.Cells[i].A+"-"+merged.Cells[i].B)
				}
				merged.Cells[i].History += leg.Cells[i].History
				merged.Cells[i].Observed += leg.Cells[i].Observed
			}
		}
		merged.SplitYear = split
		return merged, nil
	})
}

func (g *Gateway) handleTemporal(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	osName := r.URL.Query().Get("os")
	if osName == "" {
		writeError(w, errBadParam("missing required parameter os"))
		return
	}
	g.respond(w, pr, "temporal?os="+osName, func() (any, *gwError) {
		q := url.Values{"os": {osName}}
		legs, gerr := fetch[httpapi.Temporal](g, pr, "/api/temporal", q)
		if gerr != nil {
			return nil, gerr
		}
		maps := make([]map[int]int, len(legs))
		for i, leg := range legs {
			m := make(map[int]int, len(leg.Years))
			for _, yc := range leg.Years {
				m[yc.Year] = yc.Count
			}
			maps[i] = m
		}
		sum := core.MergeYearCounts(maps)
		doc := httpapi.Temporal{OS: osName, Years: make([]httpapi.YearCount, 0, len(sum))}
		for y, n := range sum {
			doc.Years = append(doc.Years, httpapi.YearCount{Year: y, Count: n})
		}
		sort.Slice(doc.Years, func(i, j int) bool { return doc.Years[i].Year < doc.Years[j].Year })
		return doc, nil
	})
}

func (g *Gateway) handleKWise(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	g.respond(w, pr, "kwise", func() (any, *gwError) {
		legs, gerr := fetch[httpapi.KWise](g, pr, "/api/kwise", nil)
		if gerr != nil {
			return nil, gerr
		}
		maps := make([]map[int]int, len(legs))
		for i, leg := range legs {
			m := make(map[int]int, len(leg.Products))
			for _, kc := range leg.Products {
				m[kc.K] = kc.Count
			}
			maps[i] = m
		}
		sum := core.MergeYearCounts(maps)
		doc := httpapi.KWise{Products: make([]httpapi.KCount, 0, len(sum))}
		for k, n := range sum {
			doc.Products = append(doc.Products, httpapi.KCount{K: k, Count: n})
		}
		sort.Slice(doc.Products, func(i, j int) bool { return doc.Products[i].K < doc.Products[j].K })
		return doc, nil
	})
}

func (g *Gateway) handleMostShared(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	n, gerr := intParam(r.URL.Query(), "n", defaultMostShared, 1, 1<<30)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	m, gerr := g.metaFor(pr)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	// Canonicalize against the summed valid count, like the server does
	// against its own — every larger n is the same full listing.
	if n > m.valid {
		n = m.valid
	}
	g.respond(w, pr, fmt.Sprintf("mostshared?n=%d", n), func() (any, *gwError) {
		q := url.Values{"n": {strconv.Itoa(n)}}
		legs, gerr := fetch[httpapi.MostSharedPartial](g, pr, "/api/partial/mostshared", q)
		if gerr != nil {
			return nil, gerr
		}
		lists := make([][]core.SharedIDCount, len(legs))
		for li, leg := range legs {
			list := make([]core.SharedIDCount, 0, len(leg.Entries))
			for _, e := range leg.Entries {
				id, err := cve.ParseID(e.ID)
				if err != nil {
					return nil, errMismatch(fmt.Sprintf("backend %s: most-shared entry %q: %v",
						g.cfg.Backends[li], e.ID, err))
				}
				list = append(list, core.SharedIDCount{ID: id, Products: e.Products})
			}
			lists[li] = list
		}
		top := core.MergeMostShared(lists, n)
		ids := make([]string, 0, len(top))
		for _, e := range top {
			ids = append(ids, e.ID.String())
		}
		return httpapi.MostShared{N: len(ids), IDs: ids}, nil
	})
}

func (g *Gateway) handleSelect(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	k, gerr := intParam(q, "k", defaultSelectK, 1, 8)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	onePerFamily, gerr := boolParam(q, "one-per-family")
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	toYear, gerr := intParam(q, "to", defaultSplitYear, 1900, 2100)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	top, gerr := intParam(q, "top", 0, 0, 1<<30)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	m, gerr := g.metaFor(pr)
	if gerr != nil {
		writeError(w, gerr)
		return
	}
	toYear = canonSplitYear(m, toYear)
	key := fmt.Sprintf("select?k=%d&opf=%t&to=%d&top=%d", k, onePerFamily, toYear, top)
	g.respond(w, pr, key, func() (any, *gwError) {
		sq := url.Values{"to": {strconv.Itoa(toYear)}}
		legs, gerr := fetch[httpapi.SelectPartial](g, pr, "/api/partial/select", sq)
		if gerr != nil {
			return nil, gerr
		}
		// Sum the cost vectors per index; the shard enumerations all walk
		// osmap.PairsOf(HistoryEligible()), so indexes line up — verified
		// against the gateway's own enumeration below.
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Pairs) != len(merged.Pairs) || len(leg.Singles) != len(merged.Singles) {
				return nil, errMismatch(fmt.Sprintf(
					"backend %s: select costs have %d pairs/%d singles, expected %d/%d",
					g.cfg.Backends[li], len(leg.Pairs), len(leg.Singles),
					len(merged.Pairs), len(merged.Singles)))
			}
			for i := range leg.Pairs {
				if leg.Pairs[i].A != merged.Pairs[i].A || leg.Pairs[i].B != merged.Pairs[i].B {
					return nil, mismatchRow(g.cfg.Backends[li], "select pairs", i,
						leg.Pairs[i].A+"-"+leg.Pairs[i].B, merged.Pairs[i].A+"-"+merged.Pairs[i].B)
				}
				merged.Pairs[i].Shared += leg.Pairs[i].Shared
			}
			for i := range leg.Singles {
				if leg.Singles[i].OS != merged.Singles[i].OS {
					return nil, mismatchRow(g.cfg.Backends[li], "select singles", i,
						leg.Singles[i].OS, merged.Singles[i].OS)
				}
				merged.Singles[i].Total += leg.Singles[i].Total
			}
		}
		candidates := osmap.HistoryEligible()
		pairs := osmap.PairsOf(candidates)
		if len(merged.Pairs) != len(pairs) || len(merged.Singles) != len(candidates) {
			return nil, errMismatch(fmt.Sprintf(
				"shards enumerate %d pairs/%d singles, gateway expects %d/%d",
				len(merged.Pairs), len(merged.Singles), len(pairs), len(candidates)))
		}
		pairCost := make(map[osmap.Pair]int, len(pairs))
		for i, p := range pairs {
			if merged.Pairs[i].A != p.A.String() || merged.Pairs[i].B != p.B.String() {
				return nil, errMismatch(fmt.Sprintf("select pair %d is %s-%s, gateway expects %s",
					i, merged.Pairs[i].A, merged.Pairs[i].B, p))
			}
			pairCost[p] = merged.Pairs[i].Shared
		}
		singleCost := make(map[osmap.Distro]int, len(candidates))
		for i, d := range candidates {
			if merged.Singles[i].OS != d.String() {
				return nil, errMismatch(fmt.Sprintf("select single %d is %s, gateway expects %s",
					i, merged.Singles[i].OS, d))
			}
			singleCost[d] = merged.Singles[i].Total
		}
		strategy := core.MinPairSum
		if onePerFamily {
			strategy = core.OnePerFamily
		}
		ranked := core.RankSetsFromCosts(candidates, k, strategy,
			func(p osmap.Pair) int { return pairCost[p] },
			func(d osmap.Distro) int { return singleCost[d] })
		if top > 0 && len(ranked) > top {
			ranked = ranked[:top]
		}
		doc := httpapi.Select{
			K: k, OnePerFamily: onePerFamily, ToYear: toYear,
			Sets: make([]httpapi.ReplicaSet, 0, len(ranked)),
		}
		for _, rs := range ranked {
			members := make([]string, 0, len(rs.Members))
			for _, d := range rs.Members {
				members = append(members, d.String())
			}
			doc.Sets = append(doc.Sets, httpapi.ReplicaSet{Members: members, Shared: rs.Cost})
		}
		return doc, nil
	})
}

func (g *Gateway) handleReleases(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	a, va := q.Get("a"), q.Get("va")
	b, vb := q.Get("b"), q.Get("vb")
	set := 0
	for _, v := range []string{a, va, b, vb} {
		if v != "" {
			set++
		}
	}
	var key string
	var sq url.Values
	switch set {
	case 0:
		key = "releases"
	case 4:
		sq = url.Values{"a": {a}, "va": {va}, "b": {b}, "vb": {vb}}
		key = "releases?" + sq.Encode()
	default:
		writeError(w, errBadParam("release overlap needs all of a, va, b, vb (or none for the Table VI grid)"))
		return
	}
	g.respond(w, pr, key, func() (any, *gwError) {
		legs, gerr := fetch[httpapi.Releases](g, pr, "/api/releases", sq)
		if gerr != nil {
			return nil, gerr
		}
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Cells) != len(merged.Cells) {
				return nil, errMismatch(fmt.Sprintf("backend %s: releases has %d cells, expected %d",
					g.cfg.Backends[li], len(leg.Cells), len(merged.Cells)))
			}
			for i := range leg.Cells {
				lc, mc := leg.Cells[i], merged.Cells[i]
				if lc.A != mc.A || lc.VA != mc.VA || lc.B != mc.B || lc.VB != mc.VB {
					return nil, mismatchRow(g.cfg.Backends[li], "releases", i,
						lc.A+lc.VA+"-"+lc.B+lc.VB, mc.A+mc.VA+"-"+mc.B+mc.VB)
				}
				merged.Cells[i].Shared += lc.Shared
			}
		}
		return merged, nil
	})
}

func (g *Gateway) handleSQLTable3(w http.ResponseWriter, r *http.Request) {
	pr, ok := g.start(w)
	if !ok {
		return
	}
	g.respond(w, pr, "sqltable3", func() (any, *gwError) {
		legs, gerr := fetch[httpapi.SQLTable3](g, pr, "/api/sqltable3", nil)
		if gerr != nil {
			return nil, gerr
		}
		// The os dimension table is seeded identically in every shard
		// database, so the matrices carry the same pairs in the same
		// order and the cells sum per index.
		merged := legs[0]
		for li := 1; li < len(legs); li++ {
			leg := legs[li]
			if len(leg.Cells) != len(merged.Cells) {
				return nil, errMismatch(fmt.Sprintf("backend %s: sqltable3 has %d cells, expected %d",
					g.cfg.Backends[li], len(leg.Cells), len(merged.Cells)))
			}
			for i := range leg.Cells {
				if leg.Cells[i].A != merged.Cells[i].A || leg.Cells[i].B != merged.Cells[i].B {
					return nil, mismatchRow(g.cfg.Backends[li], "sqltable3", i,
						leg.Cells[i].A+"-"+leg.Cells[i].B, merged.Cells[i].A+"-"+merged.Cells[i].B)
				}
				merged.Cells[i].Shared += leg.Cells[i].Shared
			}
		}
		return merged, nil
	})
}

// canonSplitYear clamps a split/selection year against the merged
// corpus's year range, mirroring the server's per-corpus clamp.
func canonSplitYear(m *shardMeta, year int) int {
	return server.CanonSplitYearRange(m.yearLo, m.yearHi, year)
}
