package gather_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"osdiversity"
	"osdiversity/internal/classify"
	"osdiversity/internal/corpus"
	"osdiversity/internal/cve"
	"osdiversity/internal/epoch"
	"osdiversity/internal/gather"
	"osdiversity/internal/httpapi"
	"osdiversity/internal/server"
	"osdiversity/internal/vulndb"
)

// newShardBackends boots n shard servers over the calibrated corpus at
// the given worker count and returns their base URLs in shard order.
func newShardBackends(t testing.TB, n, workers int) []string {
	t.Helper()
	backends := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		a, err := osdiversity.LoadCalibrated(
			osdiversity.WithParallelism(workers), osdiversity.WithYearShard(i, n))
		if err != nil {
			t.Fatalf("LoadCalibrated shard %d/%d: %v", i, n, err)
		}
		srv := server.New(a, server.Config{
			Source: "calibrated", Engine: "bitset", Workers: workers,
			Shard: fmt.Sprintf("%d/%d", i, n),
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		backends = append(backends, ts.URL)
	}
	return backends
}

// newGateway serves a gateway over the backends; probe freshness is
// disabled (every request re-resolves the epoch vector) unless the test
// overrides cfg.RevalidateAfter.
func newGateway(t testing.TB, cfg gather.Config) (*gather.Gateway, *httptest.Server) {
	t.Helper()
	if cfg.RevalidateAfter == 0 {
		cfg.RevalidateAfter = -1
	}
	if cfg.Retry.Attempts == 0 {
		cfg.Retry.Attempts = 1
	}
	gw, err := gather.New(cfg)
	if err != nil {
		t.Fatalf("gather.New: %v", err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

// fetch GETs base+path and returns status and body.
func fetch(t testing.TB, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// identityProbes is the endpoint matrix the byte-identity gate runs:
// every merged endpoint, parameter canonicalization cases, and the
// shared 400 envelopes.
var identityProbes = []string{
	"/api/table1",
	"/api/table2",
	"/api/table3",
	"/api/table4",
	"/api/table5",
	"/api/table5?split=2000",
	"/api/table5?split=1900", // clamps to the corpus range at the gateway's merged lo
	"/api/temporal?os=Debian",
	"/api/temporal?os=Windows2000",
	"/api/kwise",
	"/api/mostshared?n=10",
	"/api/mostshared?n=1073741824", // canonicalizes onto the merged valid count
	"/api/select?k=2&one-per-family=true&top=5",
	"/api/select?k=1&top=3&to=1999",
	"/api/releases",
	"/api/releases?a=Debian&va=4.0&b=RedHat&vb=5.0",
	// The 400 envelopes must match byte for byte too.
	"/api/table5?split=abc",
	"/api/temporal",
	"/api/temporal?os=NotAnOS",
	"/api/releases?a=Debian&va=4.0",
	"/api/select?k=99",
	// GET on the POST-only recommend endpoint: both tiers answer the
	// same 405 method_not_allowed envelope.
	"/api/recommend",
}

// TestGatewayByteIdentity is the tentpole acceptance gate: a gateway
// over 1, 2 and 4 shards, at workers 1 and 4, answers every table
// endpoint byte-identically to one server over the whole corpus.
func TestGatewayByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the corpus per shard")
	}
	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(1))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	ref := httptest.NewServer(server.New(a, server.Config{
		Source: "calibrated", Engine: "bitset", Workers: 1,
	}).Handler())
	defer ref.Close()

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				backends := newShardBackends(t, shards, workers)
				_, gwts := newGateway(t, gather.Config{Backends: backends})
				for _, probe := range identityProbes {
					wantStatus, want := fetch(t, ref.URL, probe)
					gotStatus, got := fetch(t, gwts.URL, probe)
					if gotStatus != wantStatus {
						t.Errorf("%s: status = %d, want %d", probe, gotStatus, wantStatus)
						continue
					}
					if !bytes.Equal(got, want) {
						t.Errorf("%s: gateway body differs\n got: %s\nwant: %s", probe, got, want)
					}
				}
			})
		}
	}
}

// shardedDBs builds the full reference database plus n shard databases
// over the calibrated entries, all in canonical feed order so the
// concatenated shard scans reproduce the full scan.
func shardedDBs(t testing.TB, n int) (*vulndb.DB, []*vulndb.DB) {
	t.Helper()
	c, err := corpus.Generate()
	if err != nil {
		t.Fatalf("corpus.Generate: %v", err)
	}
	var ordered []*cve.Entry
	for _, g := range corpus.SplitByYear(c.Entries) {
		ordered = append(ordered, g.Entries...)
	}
	cls := classify.NewClassifier()
	build := func(entries []*cve.Entry) *vulndb.DB {
		db, err := vulndb.Create()
		if err != nil {
			t.Fatalf("vulndb.Create: %v", err)
		}
		if _, _, err := db.LoadEntries(entries, cls); err != nil {
			t.Fatalf("LoadEntries: %v", err)
		}
		return db
	}
	full := build(ordered)
	shards := make([]*vulndb.DB, 0, n)
	for i := 0; i < n; i++ {
		shards = append(shards, build(corpus.ShardByYear(ordered, i, n)))
	}
	return full, shards
}

// postQuery POSTs one /api/query request and returns status and body.
func postQuery(t testing.TB, base, sql string, args ...any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(httpapi.QueryRequest{SQL: sql, Args: args})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /api/query: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return resp.StatusCode, body
}

// TestGatewaySQLIdentity: /api/query row concatenation and the
// /api/sqltable3 matrix merge reproduce the unsharded database's bytes.
func TestGatewaySQLIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("imports the corpus into multiple databases")
	}
	const shards = 2
	full, shardDBs := shardedDBs(t, shards)

	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(1))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	refSrv := server.New(a, server.Config{Source: "calibrated", Engine: "bitset", Workers: 1})
	refSrv.SetDatabase(full)
	ref := httptest.NewServer(refSrv.Handler())
	defer ref.Close()

	backends := make([]string, 0, shards)
	for i := 1; i <= shards; i++ {
		sa, err := osdiversity.LoadCalibrated(
			osdiversity.WithParallelism(1), osdiversity.WithYearShard(i, shards))
		if err != nil {
			t.Fatalf("LoadCalibrated shard: %v", err)
		}
		srv := server.New(sa, server.Config{
			Source: "calibrated", Engine: "bitset", Workers: 1,
			Shard: fmt.Sprintf("%d/%d", i, shards),
		})
		srv.SetDatabase(shardDBs[i-1])
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		backends = append(backends, ts.URL)
	}
	_, gwts := newGateway(t, gather.Config{Backends: backends})

	// Intrinsic columns only: surrogate ids renumber per shard import,
	// and the replicated os dimension table would duplicate rows.
	queries := []struct {
		sql  string
		args []any
	}{
		{"SELECT name, year FROM vulnerability WHERE year >= ?", []any{2000}},
		{"SELECT name FROM vulnerability WHERE year = ? AND name LIKE ?", []any{2005, "CVE-%"}},
		{"SELECT name, year FROM vulnerability WHERE year < ?", []any{1996}},
	}
	for _, q := range queries {
		wantStatus, want := postQuery(t, ref.URL, q.sql, q.args...)
		gotStatus, got := postQuery(t, gwts.URL, q.sql, q.args...)
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Errorf("query %q: status %d/%d\n got: %.200s\nwant: %.200s",
				q.sql, gotStatus, wantStatus, got, want)
		}
	}

	wantStatus, want := fetch(t, ref.URL, "/api/sqltable3")
	gotStatus, got := fetch(t, gwts.URL, "/api/sqltable3")
	if gotStatus != wantStatus || !bytes.Equal(got, want) {
		t.Errorf("/api/sqltable3: status %d/%d\n got: %.200s\nwant: %.200s",
			gotStatus, wantStatus, got, want)
	}

	// Statements whose results are not per-row functions of the
	// partition refuse with the typed 501.
	for _, sql := range []string{
		"SELECT COUNT(*) FROM vulnerability",
		"SELECT DISTINCT year FROM vulnerability",
		"SELECT name FROM vulnerability ORDER BY name",
		"SELECT year FROM vulnerability GROUP BY year",
		"SELECT name FROM vulnerability LIMIT 5",
	} {
		status, body := postQuery(t, gwts.URL, sql)
		var env httpapi.ErrorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("%q: non-envelope body %s", sql, body)
		}
		if status != http.StatusNotImplemented || env.Error.Code != "unsupported_on_gateway" {
			t.Errorf("%q: got %d %s, want 501 unsupported_on_gateway", sql, status, env.Error.Code)
		}
	}

	// Non-SELECT draws the same envelope the single server answers.
	status, body := postQuery(t, gwts.URL, "DELETE FROM vulnerability")
	refStatus, refBody := postQuery(t, ref.URL, "DELETE FROM vulnerability")
	if status != refStatus || !bytes.Equal(body, refBody) {
		t.Errorf("non-SELECT: gateway %d %s, server %d %s", status, body, refStatus, refBody)
	}
}

// TestGatewayDegradedShard: killing one backend turns every scattered
// endpoint into the typed 503 shard_unavailable naming the backend.
func TestGatewayDegradedShard(t *testing.T) {
	backends := newShardBackends(t, 2, 1)
	victim := backends[1]

	// Re-dial the victim's listener directly so we can close it.
	a, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(1), osdiversity.WithYearShard(2, 2))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	dead := httptest.NewServer(server.New(a, server.Config{
		Source: "calibrated", Engine: "bitset", Workers: 1, Shard: "2/2",
	}).Handler())
	backends[1] = dead.URL
	victim = dead.URL
	_, gwts := newGateway(t, gather.Config{Backends: backends})

	if status, _ := fetch(t, gwts.URL, "/api/table1"); status != http.StatusOK {
		t.Fatalf("healthy fleet: status %d", status)
	}
	dead.Close()

	status, body := fetch(t, gwts.URL, "/api/table1")
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope degraded body: %s", body)
	}
	if status != http.StatusServiceUnavailable || env.Error.Code != "shard_unavailable" {
		t.Fatalf("degraded: got %d %s, want 503 shard_unavailable", status, env.Error.Code)
	}
	if !strings.Contains(env.Error.Message, victim) {
		t.Errorf("degraded message %q does not name backend %s", env.Error.Message, victim)
	}

	// /readyz degrades with per-shard context.
	status, body = fetch(t, gwts.URL, "/readyz")
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope /readyz body: %s", body)
	}
	if status != http.StatusServiceUnavailable || env.Error.Code != "not_ready" {
		t.Errorf("/readyz degraded: got %d %s, want 503 not_ready", status, env.Error.Code)
	}
}

// TestGatewayEpochVector: responses carry the joined shard epoch
// vector; a shard hot-reloading changes the vector and flushes the
// merged-response cache.
func TestGatewayEpochVector(t *testing.T) {
	a1, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(1), osdiversity.WithYearShard(1, 2))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	a2, err := osdiversity.LoadCalibrated(osdiversity.WithParallelism(1), osdiversity.WithYearShard(2, 2))
	if err != nil {
		t.Fatalf("LoadCalibrated: %v", err)
	}
	m1 := epoch.NewManager(epoch.Config{})
	m1.Install(a1, "calibrated")
	m2 := epoch.NewManager(epoch.Config{})
	m2.Install(a2, "calibrated")
	s1 := httptest.NewServer(server.NewResident(m1, server.Config{
		Source: "calibrated", Engine: "bitset", Workers: 1, Shard: "1/2"}).Handler())
	defer s1.Close()
	s2 := httptest.NewServer(server.NewResident(m2, server.Config{
		Source: "calibrated", Engine: "bitset", Workers: 1, Shard: "2/2"}).Handler())
	defer s2.Close()

	gw, gwts := newGateway(t, gather.Config{Backends: []string{s1.URL, s2.URL}})

	get := func() (string, []byte) {
		resp, err := http.Get(gwts.URL + "/api/table3")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Osdiv-Epoch"), body
	}

	vec, body1 := get()
	if vec != "1,1" {
		t.Fatalf("epoch vector = %q, want 1,1", vec)
	}
	if n := gw.Computes(); n != 1 {
		t.Fatalf("computes = %d after first request, want 1", n)
	}
	if vec, _ = get(); vec != "1,1" {
		t.Fatalf("epoch vector = %q on cached request", vec)
	}
	if n := gw.Computes(); n != 1 {
		t.Fatalf("computes = %d on cache hit, want 1", n)
	}

	// Shard 2 swaps an epoch: vector changes, cache flushes, bytes stay
	// identical (same slice content).
	m2.Install(a2, "calibrated")
	vec, body2 := get()
	if vec != "1,2" {
		t.Fatalf("epoch vector = %q after reload, want 1,2", vec)
	}
	if n := gw.Computes(); n != 2 {
		t.Fatalf("computes = %d after vector change, want 2", n)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("table3 bytes changed across an identical-content reload")
	}

	// /readyz reports the vector and per-shard epochs.
	_, body := fetch(t, gwts.URL, "/readyz")
	var ready httpapi.GatewayReady
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatalf("decode /readyz: %v", err)
	}
	if ready.Status != "ok" || ready.Epochs != "1,2" || len(ready.Shards) != 2 {
		t.Errorf("/readyz = %+v, want ok with epochs 1,2 over 2 shards", ready)
	}
	if ready.Shards[1].Epoch != 2 {
		t.Errorf("shard 2 epoch = %d, want 2", ready.Shards[1].Epoch)
	}

	// /corpus merges the shard identities.
	_, body = fetch(t, gwts.URL, "/corpus")
	var gc httpapi.GatewayCorpus
	if err := json.Unmarshal(body, &gc); err != nil {
		t.Fatalf("decode /corpus: %v", err)
	}
	if gc.ValidEntries != a1.ValidCount()+a2.ValidCount() {
		t.Errorf("merged valid = %d, want %d", gc.ValidEntries, a1.ValidCount()+a2.ValidCount())
	}
	lo1, _ := a1.YearRange()
	_, hi2 := a2.YearRange()
	if gc.YearFrom != lo1 || gc.YearTo != hi2 {
		t.Errorf("merged range [%d, %d], want [%d, %d]", gc.YearFrom, gc.YearTo, lo1, hi2)
	}
	if gc.Shards[0].Shard != "1/2" || gc.Shards[1].Shard != "2/2" {
		t.Errorf("shard identities = %q, %q", gc.Shards[0].Shard, gc.Shards[1].Shard)
	}
}

// TestGatewayCoalescing: concurrent identical cold requests coalesce
// into one scatter+merge computation.
func TestGatewayCoalescing(t *testing.T) {
	backends := newShardBackends(t, 2, 1)
	gw, gwts := newGateway(t, gather.Config{
		Backends:        backends,
		RevalidateAfter: time.Minute, // one probe serves the whole stampede
	})
	// Resolve once so the stampede shares the cached vector.
	if status, _ := fetch(t, gwts.URL, "/healthz"); status != http.StatusOK {
		t.Fatal("healthz failed")
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(gwts.URL + "/api/table2")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent GET: %v", err)
	}
	if n := gw.Computes(); n != 1 {
		t.Errorf("computes = %d for %d concurrent identical requests, want 1", n, clients)
	}
}

// TestGatewayUnsupported: corpus-global endpoints refuse with the typed
// 501 instead of answering something subtly wrong.
func TestGatewayUnsupported(t *testing.T) {
	backends := newShardBackends(t, 1, 1)
	_, gwts := newGateway(t, gather.Config{Backends: backends})

	status, body := fetch(t, gwts.URL, "/api/attack?os=Debian&os=Solaris&os=OpenBSD&os=Windows2003&f=1")
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope body: %s", body)
	}
	if status != http.StatusNotImplemented || env.Error.Code != "unsupported_on_gateway" {
		t.Errorf("/api/attack: got %d %s, want 501 unsupported_on_gateway", status, env.Error.Code)
	}

	resp, err := http.Post(gwts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /admin/reload: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope body: %s", body)
	}
	if resp.StatusCode != http.StatusNotImplemented || env.Error.Code != "unsupported_on_gateway" {
		t.Errorf("/admin/reload: got %d %s, want 501 unsupported_on_gateway", resp.StatusCode, env.Error.Code)
	}

	// The schedule search is corpus-global like the attack simulation:
	// a well-formed POST gets the typed 501, never a partial answer.
	resp, err = http.Post(gwts.URL+"/api/recommend", "application/json", strings.NewReader(`{"trials":10}`))
	if err != nil {
		t.Fatalf("POST /api/recommend: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope body: %s", body)
	}
	if resp.StatusCode != http.StatusNotImplemented || env.Error.Code != "unsupported_on_gateway" {
		t.Errorf("/api/recommend: got %d %s, want 501 unsupported_on_gateway", resp.StatusCode, env.Error.Code)
	}

	if status, _ := fetch(t, gwts.URL, "/api/nope"); status != http.StatusNotFound {
		t.Errorf("unknown endpoint: status %d, want 404", status)
	}
}
