// Package osmap is the operating-system product registry of the study.
//
// The paper collects vulnerabilities for 64 Common Platform Enumerations
// and clusters them, by manual analysis, into 11 OS distributions grouped
// in four families (BSD, Solaris, Linux, Windows). This package encodes
// that clustering: the distribution and family enums, the alias table that
// maps NVD (vendor, product) pairs onto distributions — including the
// duplicate spellings the paper calls out, such as ("linux","debian") vs
// ("debian_linux","debian") — and the release timelines that annotate
// Figure 2 and drive the per-release analysis of Table VI.
package osmap

import (
	"fmt"
	"sort"

	"osdiversity/internal/cpe"
)

// Distro identifies one of the 11 OS distributions of the study.
type Distro int

// The 11 distributions, in the paper's presentation order.
const (
	DistroUnknown Distro = iota
	OpenBSD
	NetBSD
	FreeBSD
	OpenSolaris
	Solaris
	Debian
	Ubuntu
	RedHat
	Windows2000
	Windows2003
	Windows2008
)

// NumDistros is the number of real distributions (excluding DistroUnknown).
const NumDistros = 11

// syntheticBase is the first Distro value reserved for synthetic
// distributions (see SyntheticDistro). The gap above the 11 studied
// distributions leaves room for future real clusters.
const syntheticBase Distro = 64

// maxSyntheticDistros bounds the synthetic universe so masks and pair
// tables stay within sane memory.
const maxSyntheticDistros = 1024

// SyntheticDistro returns the i-th synthetic distribution (i >= 0).
// Synthetic distributions model the "modern NVD" universe: they have
// generated names ("SynOS000", ...), round-robin families, staggered
// first releases, and exist only in registries built by
// NewSyntheticRegistry.
func SyntheticDistro(i int) Distro {
	if i < 0 || i >= maxSyntheticDistros {
		panic(fmt.Sprintf("osmap: synthetic distro index %d out of range", i))
	}
	return syntheticBase + Distro(i)
}

// IsSynthetic reports whether the distribution is a synthetic one.
func (d Distro) IsSynthetic() bool {
	return d >= syntheticBase && d < syntheticBase+maxSyntheticDistros
}

// Distros returns the 11 distributions in presentation order.
func Distros() []Distro {
	return []Distro{
		OpenBSD, NetBSD, FreeBSD, OpenSolaris, Solaris,
		Debian, Ubuntu, RedHat, Windows2000, Windows2003, Windows2008,
	}
}

// String returns the paper's display name for the distribution.
func (d Distro) String() string {
	switch d {
	case OpenBSD:
		return "OpenBSD"
	case NetBSD:
		return "NetBSD"
	case FreeBSD:
		return "FreeBSD"
	case OpenSolaris:
		return "OpenSolaris"
	case Solaris:
		return "Solaris"
	case Debian:
		return "Debian"
	case Ubuntu:
		return "Ubuntu"
	case RedHat:
		return "RedHat"
	case Windows2000:
		return "Windows2000"
	case Windows2003:
		return "Windows2003"
	case Windows2008:
		return "Windows2008"
	default:
		if d.IsSynthetic() {
			return fmt.Sprintf("SynOS%03d", int(d-syntheticBase))
		}
		return "Unknown"
	}
}

// ParseDistro resolves a display name (case-sensitive, as printed by
// String) back to a Distro. Synthetic names ("SynOS007") resolve to the
// corresponding synthetic distribution.
func ParseDistro(s string) (Distro, error) {
	for _, d := range Distros() {
		if d.String() == s {
			return d, nil
		}
	}
	var i int
	if n, err := fmt.Sscanf(s, "SynOS%03d", &i); err == nil && n == 1 &&
		i >= 0 && i < maxSyntheticDistros && s == SyntheticDistro(i).String() {
		return SyntheticDistro(i), nil
	}
	return DistroUnknown, fmt.Errorf("osmap: unknown distribution %q", s)
}

// Family identifies one of the four OS families of the study.
type Family int

// The four families.
const (
	FamilyUnknown Family = iota
	FamilyBSD
	FamilySolaris
	FamilyLinux
	FamilyWindows
)

// Families returns the four families in the paper's presentation order.
func Families() []Family {
	return []Family{FamilySolaris, FamilyBSD, FamilyWindows, FamilyLinux}
}

// String returns the family display name.
func (f Family) String() string {
	switch f {
	case FamilyBSD:
		return "BSD"
	case FamilySolaris:
		return "Solaris"
	case FamilyLinux:
		return "Linux"
	case FamilyWindows:
		return "Windows"
	default:
		return "Unknown"
	}
}

// Family returns the family the distribution belongs to.
func (d Distro) Family() Family {
	switch d {
	case OpenBSD, NetBSD, FreeBSD:
		return FamilyBSD
	case OpenSolaris, Solaris:
		return FamilySolaris
	case Debian, Ubuntu, RedHat:
		return FamilyLinux
	case Windows2000, Windows2003, Windows2008:
		return FamilyWindows
	default:
		if d.IsSynthetic() {
			// Synthetic distributions rotate through the four families so
			// family-aware analyses stay meaningful at any universe size.
			return Families()[int(d-syntheticBase)%len(Families())]
		}
		return FamilyUnknown
	}
}

// Members returns the distributions belonging to the family, in
// presentation order.
func (f Family) Members() []Distro {
	var out []Distro
	for _, d := range Distros() {
		if d.Family() == f {
			out = append(out, d)
		}
	}
	return out
}

// FirstReleaseYear returns the year the distribution first shipped, per
// the major-release annotations on the paper's Figure 2.
func (d Distro) FirstReleaseYear() int {
	switch d {
	case OpenBSD:
		return 1996 // OpenBSD 1.2
	case NetBSD:
		return 1993 // NetBSD 0.8
	case FreeBSD:
		return 1993 // FreeBSD 1.0
	case OpenSolaris:
		return 2008 // OpenSolaris 2008.05
	case Solaris:
		return 1992 // Solaris 2.1
	case Debian:
		return 1996 // Debian 1.1
	case Ubuntu:
		return 2004 // Ubuntu 4.10
	case RedHat:
		return 1995 // Red Hat Linux 2.0 era; paper's graph starts at 6.0/1999
	case Windows2000:
		return 2000
	case Windows2003:
		return 2003
	case Windows2008:
		return 2008
	default:
		if d.IsSynthetic() {
			// Stagger synthetic launches through the 1993-2008 window.
			return 1993 + int(d-syntheticBase)%16
		}
		return 0
	}
}

// HistoryEligible returns the eight distributions the paper admits into
// the history/observed experiment (Table V): Ubuntu, OpenSolaris and
// Windows 2008 are excluded "due to lack of meaningful data during the
// history period" (they first shipped in or after 2004).
func HistoryEligible() []Distro {
	return []Distro{OpenBSD, NetBSD, FreeBSD, Solaris, Debian, RedHat, Windows2000, Windows2003}
}

// Pair is an unordered pair of distributions, normalized so that A's
// presentation order precedes B's. Use MakePair to construct one.
type Pair struct {
	A, B Distro
}

// MakePair builds the normalized pair for two distinct distributions.
// It panics if a == b, because the study never pairs an OS with itself.
func MakePair(a, b Distro) Pair {
	if a == b {
		panic(fmt.Sprintf("osmap: degenerate pair %v-%v", a, b))
	}
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// String renders the pair the way the paper prints it, e.g.
// "OpenBSD-NetBSD".
func (p Pair) String() string { return p.A.String() + "-" + p.B.String() }

// Contains reports whether d is one of the pair's members.
func (p Pair) Contains(d Distro) bool { return p.A == d || p.B == d }

// SameFamily reports whether both members belong to one family.
func (p Pair) SameFamily() bool { return p.A.Family() == p.B.Family() }

// AllPairs returns the 55 unordered pairs over the 11 distributions, in
// the paper's Table III row order (outer loop in presentation order,
// inner loop over later distributions).
func AllPairs() []Pair {
	ds := Distros()
	out := make([]Pair, 0, len(ds)*(len(ds)-1)/2)
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			out = append(out, Pair{A: ds[i], B: ds[j]})
		}
	}
	return out
}

// PairsOf returns all unordered pairs over the given distributions, in
// normalized order.
func PairsOf(ds []Distro) []Pair {
	sorted := append([]Distro(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]Pair, 0, len(sorted)*(len(sorted)-1)/2)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			out = append(out, MakePair(sorted[i], sorted[j]))
		}
	}
	return out
}

// Release is a shipped version of a distribution, used by the
// Figure 2 annotations and the Table VI per-release analysis.
type Release struct {
	Distro  Distro
	Version string
	Year    int
}

// String renders the release the way Table VI prints it, e.g. "Debian4.0".
func (r Release) String() string { return r.Distro.String() + r.Version }

type aliasKey struct {
	vendor  string
	product string
}

// Registry resolves NVD product names to distributions and records
// release timelines. It also owns the distro universe of a study: the
// ordered distribution list analyses iterate and index bitmasks by.
// Construct with NewRegistry (the paper's 11-distro universe) or
// NewSyntheticRegistry (an arbitrarily wide "modern NVD" universe); the
// zero value has no aliases and resolves nothing.
type Registry struct {
	aliases   map[aliasKey]Distro
	known     map[aliasKey]bool // products we recognise but do not cluster
	releases  map[Distro][]Release
	canonical map[Distro]cpe.Name
	distros   []Distro // the universe, in presentation order
}

// NewRegistry returns the study's registry: the full alias table covering
// the 64 CPEs the paper clustered, the extra well-known OS products that
// remain outside the 11 clusters, and the release timelines.
func NewRegistry() *Registry {
	r := &Registry{
		aliases:   make(map[aliasKey]Distro, 64),
		known:     make(map[aliasKey]bool, 16),
		releases:  make(map[Distro][]Release, NumDistros),
		canonical: make(map[Distro]cpe.Name, NumDistros),
		distros:   Distros(),
	}
	for _, a := range defaultAliases {
		r.aliases[aliasKey{a.vendor, a.product}] = a.distro
		if a.canonical {
			r.canonical[a.distro] = cpe.Name{Part: cpe.PartOS, Vendor: a.vendor, Product: a.product}
		}
	}
	for _, k := range unclusteredProducts {
		r.known[aliasKey{k.vendor, k.product}] = true
	}
	for _, rel := range defaultReleases {
		r.releases[rel.Distro] = append(r.releases[rel.Distro], rel)
	}
	for d := range r.releases {
		rel := r.releases[d]
		sort.Slice(rel, func(i, j int) bool { return rel[i].Year < rel[j].Year })
	}
	return r
}

// NewSyntheticRegistry returns a registry over an n-distro universe
// modeling a modern, wider NVD. The first min(n, 11) distributions are
// the paper's real clusters with their full alias tables; the remainder
// are synthetic distributions, each with one canonical (vendor, product)
// registration, one duplicate spelling (mirroring NVD's messy vendor
// strings), and a three-release timeline. n must be at least 2.
func NewSyntheticRegistry(n int) *Registry {
	if n < 2 {
		panic(fmt.Sprintf("osmap: synthetic universe needs at least 2 distros, got %d", n))
	}
	if n > maxSyntheticDistros {
		panic(fmt.Sprintf("osmap: synthetic universe capped at %d distros, got %d", maxSyntheticDistros, n))
	}
	r := NewRegistry()
	if n <= NumDistros {
		r.distros = Distros()[:n]
		return r
	}
	for i := 0; NumDistros+i < n; i++ {
		d := SyntheticDistro(i)
		canon := cpe.Name{
			Part:    cpe.PartOS,
			Vendor:  fmt.Sprintf("synvendor%03d", i),
			Product: fmt.Sprintf("synos%03d", i),
		}
		r.aliases[aliasKey{canon.Vendor, canon.Product}] = d
		r.aliases[aliasKey{canon.Vendor + "_inc", canon.Product}] = d
		r.canonical[d] = canon
		first := d.FirstReleaseYear()
		r.releases[d] = []Release{
			{d, "1.0", first},
			{d, "2.0", first + 5},
			{d, "3.0", first + 10},
		}
		r.distros = append(r.distros, d)
	}
	return r
}

// Distros returns the registry's distro universe in presentation order.
// The default registry's universe is the paper's 11 distributions; the
// returned slice is a copy.
func (r *Registry) Distros() []Distro {
	if r == nil || len(r.distros) == 0 {
		return Distros()
	}
	return append([]Distro(nil), r.distros...)
}

// UniverseSize returns the number of distributions in the universe.
func (r *Registry) UniverseSize() int {
	if r == nil || len(r.distros) == 0 {
		return NumDistros
	}
	return len(r.distros)
}

// Cluster maps a CPE name to its distribution. The second result is false
// when the product is not one of the 64 clustered CPEs (it may still be a
// known OS product; see Known).
func (r *Registry) Cluster(n cpe.Name) (Distro, bool) {
	if r == nil || r.aliases == nil {
		return DistroUnknown, false
	}
	d, ok := r.aliases[aliasKey{n.Vendor, n.Product}]
	return d, ok
}

// Known reports whether the product appears anywhere in the registry,
// clustered or not. Unknown products in a feed are ignored by the study
// (the paper keeps only its 64 CPEs).
func (r *Registry) Known(n cpe.Name) bool {
	if r == nil {
		return false
	}
	k := aliasKey{n.Vendor, n.Product}
	if _, ok := r.aliases[k]; ok {
		return true
	}
	return r.known[k]
}

// AliasCount returns the number of clustered (vendor, product) pairs.
func (r *Registry) AliasCount() int { return len(r.aliases) }

// Aliases returns the clustered (vendor, product) pairs for a
// distribution, sorted for determinism.
func (r *Registry) Aliases(d Distro) []cpe.Name {
	var out []cpe.Name
	for k, v := range r.aliases {
		if v == d {
			out = append(out, cpe.Name{Part: cpe.PartOS, Vendor: k.vendor, Product: k.product})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Vendor != out[j].Vendor {
			return out[i].Vendor < out[j].Vendor
		}
		return out[i].Product < out[j].Product
	})
	return out
}

// CanonicalName returns the canonical CPE name used when generating feed
// entries for the distribution.
func (r *Registry) CanonicalName(d Distro) cpe.Name {
	if r == nil {
		return cpe.Name{}
	}
	return r.canonical[d]
}

// Releases returns the recorded releases of a distribution in
// chronological order. The returned slice is shared; callers must not
// mutate it.
func (r *Registry) Releases(d Distro) []Release {
	return r.releases[d]
}

// FindRelease looks up a release by distribution and version string.
func (r *Registry) FindRelease(d Distro, version string) (Release, bool) {
	for _, rel := range r.releases[d] {
		if rel.Version == version {
			return rel, true
		}
	}
	return Release{}, false
}

type alias struct {
	vendor    string
	product   string
	distro    Distro
	canonical bool
}

// defaultAliases is the 64-CPE clustering. Vendors and products follow
// NVD's actual spellings of the era, including the duplicated Debian
// registrations the paper highlights in §III.
var defaultAliases = []alias{
	// BSD family.
	{"openbsd", "openbsd", OpenBSD, true},
	{"openbsd", "openssh", OpenBSD, false}, // bundled-by-default spelling seen on old entries
	{"netbsd", "netbsd", NetBSD, true},
	{"netbsd", "netbsd_current", NetBSD, false},
	{"freebsd", "freebsd", FreeBSD, true},
	{"freebsd", "freebsd_stable", FreeBSD, false},
	{"freebsd", "freebsd_current", FreeBSD, false},
	{"bsdi", "bsd_os", FreeBSD, false}, // folded per commercial-BSD handling

	// Solaris family.
	{"sun", "opensolaris", OpenSolaris, true},
	{"sun", "solaris_express", OpenSolaris, false},
	{"opensolaris", "opensolaris", OpenSolaris, false},
	{"sun", "solaris", Solaris, true},
	{"sun", "sunos", Solaris, false},
	{"oracle", "solaris", Solaris, false},
	{"sun", "solaris_x86", Solaris, false},
	{"sun", "solaris_sparc", Solaris, false},
	{"sun", "trusted_solaris", Solaris, false},

	// Linux family: Debian's two registrations, Ubuntu's three, RedHat's
	// classic and enterprise lines.
	{"debian", "debian_linux", Debian, true},
	{"debian", "linux", Debian, false},
	{"debian", "gnu_linux", Debian, false},
	{"canonical", "ubuntu_linux", Ubuntu, true},
	{"ubuntu", "ubuntu_linux", Ubuntu, false},
	{"ubuntu", "linux", Ubuntu, false},
	{"canonical", "ubuntu", Ubuntu, false},
	{"redhat", "enterprise_linux", RedHat, true},
	{"redhat", "linux", RedHat, false},
	{"redhat", "redhat_linux", RedHat, false},
	{"redhat", "enterprise_linux_server", RedHat, false},
	{"redhat", "enterprise_linux_desktop", RedHat, false},
	{"redhat", "enterprise_linux_workstation", RedHat, false},
	{"redhat", "linux_advanced_workstation", RedHat, false},
	{"redhat", "fedora_core", RedHat, false}, // folded: RHEL tracker treats as upstream

	// Windows server family.
	{"microsoft", "windows_2000", Windows2000, true},
	{"microsoft", "windows_2000_server", Windows2000, false},
	{"microsoft", "windows_2000_advanced_server", Windows2000, false},
	{"microsoft", "windows_2000_datacenter_server", Windows2000, false},
	{"microsoft", "windows_2000_professional", Windows2000, false},
	{"microsoft", "windows_2000_terminal_services", Windows2000, false},
	{"microsoft", "windows_2003_server", Windows2003, true},
	{"microsoft", "windows_server_2003", Windows2003, false},
	{"microsoft", "windows_2003_server_r2", Windows2003, false},
	{"microsoft", "windows_2003_server_enterprise", Windows2003, false},
	{"microsoft", "windows_2003_server_datacenter", Windows2003, false},
	{"microsoft", "windows_2003_server_web", Windows2003, false},
	{"microsoft", "windows_server_2008", Windows2008, true},
	{"microsoft", "windows_2008", Windows2008, false},
	{"microsoft", "windows_server_2008_r2", Windows2008, false},
	{"microsoft", "windows_server_2008_core", Windows2008, false},

	// Less common spellings NVD used across the 2002-2010 feeds; each maps
	// into one of the 11 clusters.
	{"open_bsd", "openbsd", OpenBSD, false},
	{"net_bsd", "netbsd", NetBSD, false},
	{"free_bsd", "freebsd", FreeBSD, false},
	{"sun_microsystems", "solaris", Solaris, false},
	{"sun_microsystems", "sunos", Solaris, false},
	{"debian_project", "debian_linux", Debian, false},
	{"software_in_the_public_interest", "debian_linux", Debian, false},
	{"canonical_ltd", "ubuntu_linux", Ubuntu, false},
	{"red_hat", "enterprise_linux", RedHat, false},
	{"red_hat", "linux", RedHat, false},
	{"microsoft_corporation", "windows_2000", Windows2000, false},
	{"microsoft_corporation", "windows_2003_server", Windows2003, false},
	{"microsoft_corporation", "windows_server_2008", Windows2008, false},
	{"oracle", "opensolaris", OpenSolaris, false},
	{"freebsd_project", "freebsd", FreeBSD, false},
	{"the_netbsd_foundation", "netbsd", NetBSD, false},
}

type product struct {
	vendor  string
	product string
}

// unclusteredProducts are OS products that appear in NVD configurations
// alongside the 11 clusters (for example on the nine-OS CVE-2008-4609) but
// do not belong to any of the paper's clusters.
var unclusteredProducts = []product{
	{"microsoft", "windows_xp"},
	{"microsoft", "windows_vista"},
	{"microsoft", "windows_nt"},
	{"apple", "mac_os_x"},
	{"ibm", "aix"},
	{"hp", "hp-ux"},
	{"sgi", "irix"},
	{"suse", "suse_linux"},
	{"gentoo", "linux"},
	{"slackware", "slackware_linux"},
	{"mandrakesoft", "mandrake_linux"},
	{"sco", "openserver"},
	{"novell", "netware"},
	{"cisco", "ios"},
}

// defaultReleases transcribes the major-release annotations of the
// paper's Figure 2 plus the releases Table VI analyzes.
var defaultReleases = []Release{
	{OpenBSD, "1.2", 1996},
	{OpenBSD, "3.1", 2002},
	{OpenBSD, "3.5", 2004},
	{NetBSD, "1.0", 1994},
	{NetBSD, "1.6", 2002},
	{NetBSD, "2.0", 2004},
	{NetBSD, "3.0.1", 2006},
	{NetBSD, "4.0", 2007},
	{FreeBSD, "3.0", 1998},
	{FreeBSD, "4.0", 2000},
	{FreeBSD, "5.0", 2003},
	{FreeBSD, "6.0", 2005},
	{FreeBSD, "7.0", 2008},
	{FreeBSD, "8.0", 2009},
	{OpenSolaris, "2008.05", 2008},
	{OpenSolaris, "2009.06", 2009},
	{Solaris, "2.1", 1992},
	{Solaris, "7", 1998},
	{Solaris, "8", 2000},
	{Solaris, "9", 2002},
	{Solaris, "10", 2005},
	{Debian, "1.1", 1996},
	{Debian, "2.1", 1999},
	{Debian, "2.2", 2000},
	{Debian, "3.0", 2002},
	{Debian, "3.1", 2005},
	{Debian, "4.0", 2007},
	{Debian, "5.0", 2009},
	{Ubuntu, "4.10", 2004},
	{Ubuntu, "5.04", 2005},
	{Ubuntu, "9.04", 2009},
	{RedHat, "6.0", 1999},
	{RedHat, "6.2*", 2000}, // classic Red Hat Linux 6.2 (the * follows Table VI)
	{RedHat, "7", 2000},
	{RedHat, "3", 2003}, // RHEL 3
	{RedHat, "4.0", 2005},
	{RedHat, "5.0", 2007},
	{RedHat, "5.4", 2009},
	{Windows2000, "2000", 2000},
	{Windows2000, "SP4", 2003},
	{Windows2003, "2003", 2003},
	{Windows2003, "SP1", 2005},
	{Windows2003, "SP2", 2007},
	{Windows2008, "2008", 2008},
	{Windows2008, "SP2", 2009},
}
