package osmap

import (
	"testing"
	"testing/quick"

	"osdiversity/internal/cpe"
)

func TestDistrosCount(t *testing.T) {
	ds := Distros()
	if len(ds) != NumDistros {
		t.Fatalf("Distros() returned %d, want %d", len(ds), NumDistros)
	}
	seen := make(map[Distro]bool, len(ds))
	for _, d := range ds {
		if d == DistroUnknown {
			t.Error("Distros() contains DistroUnknown")
		}
		if seen[d] {
			t.Errorf("Distros() contains %v twice", d)
		}
		seen[d] = true
	}
}

func TestFamilies(t *testing.T) {
	wantMembers := map[Family][]Distro{
		FamilyBSD:     {OpenBSD, NetBSD, FreeBSD},
		FamilySolaris: {OpenSolaris, Solaris},
		FamilyLinux:   {Debian, Ubuntu, RedHat},
		FamilyWindows: {Windows2000, Windows2003, Windows2008},
	}
	total := 0
	for f, want := range wantMembers {
		got := f.Members()
		if len(got) != len(want) {
			t.Fatalf("%v.Members() = %v, want %v", f, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v.Members() = %v, want %v", f, got, want)
			}
			if want[i].Family() != f {
				t.Errorf("%v.Family() = %v, want %v", want[i], want[i].Family(), f)
			}
		}
		total += len(got)
	}
	if total != NumDistros {
		t.Errorf("family members total %d, want %d", total, NumDistros)
	}
}

func TestParseDistroRoundTrip(t *testing.T) {
	for _, d := range Distros() {
		got, err := ParseDistro(d.String())
		if err != nil {
			t.Fatalf("ParseDistro(%q): %v", d.String(), err)
		}
		if got != d {
			t.Fatalf("ParseDistro(%q) = %v, want %v", d.String(), got, d)
		}
	}
	if _, err := ParseDistro("BeOS"); err == nil {
		t.Error("ParseDistro(BeOS) succeeded")
	}
}

func TestHistoryEligible(t *testing.T) {
	elig := HistoryEligible()
	if len(elig) != 8 {
		t.Fatalf("HistoryEligible() has %d members, want 8", len(elig))
	}
	excluded := map[Distro]bool{Ubuntu: true, OpenSolaris: true, Windows2008: true}
	for _, d := range elig {
		if excluded[d] {
			t.Errorf("HistoryEligible() contains excluded %v", d)
		}
	}
}

func TestMakePair(t *testing.T) {
	p := MakePair(Windows2003, OpenBSD)
	if p.A != OpenBSD || p.B != Windows2003 {
		t.Fatalf("MakePair not normalized: %+v", p)
	}
	if p.String() != "OpenBSD-Windows2003" {
		t.Errorf("Pair.String() = %q", p.String())
	}
	if !p.Contains(OpenBSD) || !p.Contains(Windows2003) || p.Contains(Debian) {
		t.Error("Pair.Contains wrong")
	}
	if p.SameFamily() {
		t.Error("OpenBSD-Windows2003 reported same family")
	}
	if !MakePair(Debian, RedHat).SameFamily() {
		t.Error("Debian-RedHat not reported same family")
	}
}

func TestMakePairPanicsOnSelf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakePair(d, d) did not panic")
		}
	}()
	MakePair(Debian, Debian)
}

func TestAllPairs(t *testing.T) {
	pairs := AllPairs()
	if len(pairs) != 55 {
		t.Fatalf("AllPairs() = %d pairs, want 55 (the paper's Table III row count)", len(pairs))
	}
	if pairs[0].String() != "OpenBSD-NetBSD" {
		t.Errorf("first pair %q, want OpenBSD-NetBSD (Table III order)", pairs[0])
	}
	if pairs[len(pairs)-1].String() != "Windows2003-Windows2008" {
		t.Errorf("last pair %q, want Windows2003-Windows2008", pairs[len(pairs)-1])
	}
	seen := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestPairsOfNormalizes(t *testing.T) {
	f := func(i, j, k uint8) bool {
		ds := Distros()
		sel := []Distro{ds[int(i)%len(ds)], ds[int(j)%len(ds)], ds[int(k)%len(ds)]}
		uniq := map[Distro]bool{}
		var dedup []Distro
		for _, d := range sel {
			if !uniq[d] {
				uniq[d] = true
				dedup = append(dedup, d)
			}
		}
		pairs := PairsOf(dedup)
		want := len(dedup) * (len(dedup) - 1) / 2
		if len(pairs) != want {
			return false
		}
		for _, p := range pairs {
			if p.A >= p.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryCluster(t *testing.T) {
	r := NewRegistry()
	tests := []struct {
		uri  string
		want Distro
	}{
		{"cpe:/o:openbsd:openbsd:4.2", OpenBSD},
		{"cpe:/o:netbsd:netbsd:3.0", NetBSD},
		{"cpe:/o:freebsd:freebsd:6.0", FreeBSD},
		{"cpe:/o:sun:opensolaris", OpenSolaris},
		{"cpe:/o:sun:solaris:10", Solaris},
		{"cpe:/o:sun:sunos:5.8", Solaris},
		{"cpe:/o:oracle:solaris:10", Solaris},
		{"cpe:/o:debian:debian_linux:4.0", Debian},
		{"cpe:/o:debian:linux:3.1", Debian}, // the paper's duplicate registration
		{"cpe:/o:canonical:ubuntu_linux:9.04", Ubuntu},
		{"cpe:/o:redhat:enterprise_linux:5", RedHat},
		{"cpe:/o:redhat:linux:7.3", RedHat},
		{"cpe:/o:microsoft:windows_2000::sp4", Windows2000},
		{"cpe:/o:microsoft:windows_2003_server", Windows2003},
		{"cpe:/o:microsoft:windows_server_2008", Windows2008},
	}
	for _, tt := range tests {
		got, ok := r.Cluster(cpe.MustParse(tt.uri))
		if !ok || got != tt.want {
			t.Errorf("Cluster(%s) = (%v, %v), want (%v, true)", tt.uri, got, ok, tt.want)
		}
	}
}

func TestRegistryUnclustered(t *testing.T) {
	r := NewRegistry()
	xp := cpe.MustParse("cpe:/o:microsoft:windows_xp")
	if _, ok := r.Cluster(xp); ok {
		t.Error("windows_xp clustered; must stay outside the 11 distributions")
	}
	if !r.Known(xp) {
		t.Error("windows_xp not Known; the nine-OS CVE needs it")
	}
	mystery := cpe.MustParse("cpe:/o:acme:rtos")
	if r.Known(mystery) {
		t.Error("unknown vendor reported Known")
	}
}

func TestRegistryAliasCountMatchesPaper(t *testing.T) {
	r := NewRegistry()
	if got := r.AliasCount(); got != 64 {
		t.Fatalf("registry clusters %d CPEs, want the paper's 64", got)
	}
}

func TestEveryDistroHasAliasesAndCanonical(t *testing.T) {
	r := NewRegistry()
	for _, d := range Distros() {
		aliases := r.Aliases(d)
		if len(aliases) == 0 {
			t.Errorf("%v has no aliases", d)
		}
		canon := r.CanonicalName(d)
		if canon.Product == "" {
			t.Errorf("%v has no canonical CPE name", d)
			continue
		}
		if got, ok := r.Cluster(canon); !ok || got != d {
			t.Errorf("canonical name %s of %v does not cluster back", canon, d)
		}
	}
}

func TestAliasesDeterministic(t *testing.T) {
	r := NewRegistry()
	a := r.Aliases(RedHat)
	b := r.Aliases(RedHat)
	if len(a) != len(b) {
		t.Fatal("alias count unstable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("alias order unstable at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReleases(t *testing.T) {
	r := NewRegistry()
	for _, d := range Distros() {
		rel := r.Releases(d)
		if len(rel) == 0 {
			t.Errorf("%v has no releases", d)
			continue
		}
		for i := 1; i < len(rel); i++ {
			if rel[i].Year < rel[i-1].Year {
				t.Errorf("%v releases not chronological: %v after %v", d, rel[i], rel[i-1])
			}
		}
		if rel[0].Year != d.FirstReleaseYear() && d != RedHat && d != NetBSD && d != FreeBSD {
			// RedHat/NetBSD/FreeBSD timelines intentionally start at the
			// paper's first annotated release, later than the true first ship.
			if rel[0].Year < d.FirstReleaseYear() {
				t.Errorf("%v first recorded release %d before first ship %d", d, rel[0].Year, d.FirstReleaseYear())
			}
		}
	}
}

func TestTableVIReleasesPresent(t *testing.T) {
	r := NewRegistry()
	for _, want := range []struct {
		d       Distro
		version string
		year    int
	}{
		{Debian, "2.1", 1999},
		{Debian, "3.0", 2002},
		{Debian, "4.0", 2007},
		{RedHat, "6.2*", 2000},
		{RedHat, "4.0", 2005},
		{RedHat, "5.0", 2007},
	} {
		rel, ok := r.FindRelease(want.d, want.version)
		if !ok {
			t.Errorf("release %v%s missing (needed by Table VI)", want.d, want.version)
			continue
		}
		if rel.Year != want.year {
			t.Errorf("release %v year = %d, want %d", rel, rel.Year, want.year)
		}
	}
}

func TestReleaseString(t *testing.T) {
	rel := Release{Distro: Debian, Version: "4.0", Year: 2007}
	if rel.String() != "Debian4.0" {
		t.Errorf("Release.String() = %q, want Debian4.0", rel.String())
	}
}

func TestZeroRegistry(t *testing.T) {
	var r *Registry
	if _, ok := r.Cluster(cpe.MustParse("cpe:/o:openbsd:openbsd")); ok {
		t.Error("nil registry clustered a name")
	}
	if r.Known(cpe.MustParse("cpe:/o:openbsd:openbsd")) {
		t.Error("nil registry knows a name")
	}
}
