package osmap

import (
	"reflect"
	"testing"
)

func TestMaskBasicOps(t *testing.T) {
	m := NewMask(200)
	if len(m) != 4 {
		t.Fatalf("NewMask(200) has %d words, want 4", len(m))
	}
	if m.OnesCount() != 0 {
		t.Fatal("fresh mask not empty")
	}
	idxs := []int{0, 63, 64, 127, 128, 199}
	for _, i := range idxs {
		m.Set(i)
	}
	for _, i := range idxs {
		if !m.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if m.Has(1) || m.Has(62) || m.Has(129) || m.Has(400) {
		t.Fatal("unexpected bit set")
	}
	if m.OnesCount() != len(idxs) {
		t.Fatalf("OnesCount = %d, want %d", m.OnesCount(), len(idxs))
	}

	got := make([]int, m.OnesCount())
	if n := m.Bits(got); n != len(idxs) {
		t.Fatalf("Bits wrote %d, want %d", n, len(idxs))
	}
	if !reflect.DeepEqual(got, idxs) {
		t.Fatalf("Bits = %v, want %v", got, idxs)
	}
	var walked []int
	m.ForEachBit(func(i int) { walked = append(walked, i) })
	if !reflect.DeepEqual(walked, idxs) {
		t.Fatalf("ForEachBit = %v, want %v", walked, idxs)
	}
}

func TestMaskSetGrowAndChecked(t *testing.T) {
	// Set on an out-of-range bit panics; the digestion boundary uses
	// SetGrow (widening) or SetChecked (erroring) instead.
	m := NewMask(64)
	if err := m.SetChecked(63); err != nil {
		t.Fatalf("SetChecked(63): %v", err)
	}
	if !m.Has(63) {
		t.Fatal("SetChecked did not set the bit")
	}
	if err := m.SetChecked(64); err == nil {
		t.Fatal("SetChecked(64) on a 1-word mask must error")
	}
	if err := m.SetChecked(-1); err == nil {
		t.Fatal("SetChecked(-1) must error")
	}

	grown := m.SetGrow(130)
	if len(grown) != 3 {
		t.Fatalf("SetGrow(130) width = %d words, want 3", len(grown))
	}
	if !grown.Has(130) || !grown.Has(63) {
		t.Fatal("SetGrow lost bits")
	}
	// In-range SetGrow keeps the same backing array.
	same := grown.SetGrow(2)
	if &same[0] != &grown[0] || !same.Has(2) {
		t.Fatal("in-range SetGrow must not reallocate")
	}
	// The zero mask grows from nothing.
	var zero Mask
	zero = zero.SetGrow(70)
	if !zero.Has(70) || zero.OnesCount() != 1 {
		t.Fatalf("zero-mask SetGrow = %v", zero)
	}
}

func TestMaskEqual(t *testing.T) {
	a := NewMask(128)
	for _, i := range []int{3, 70, 100} {
		a.Set(i)
	}
	// Width-mismatched comparisons: trailing zero words are ignored.
	wide := NewMask(256)
	wide.Set(3)
	wide.Set(70)
	wide.Set(100)
	if !a.Equal(wide) || !wide.Equal(a) {
		t.Fatal("Equal should ignore trailing zero words")
	}
	wide.Set(200)
	if a.Equal(wide) || wide.Equal(a) {
		t.Fatal("bit 200 must break equality")
	}
	b := NewMask(128)
	b.Set(3)
	if a.Equal(b) {
		t.Fatal("different masks compare equal")
	}
}

func TestSyntheticDistros(t *testing.T) {
	d := SyntheticDistro(7)
	if !d.IsSynthetic() {
		t.Fatal("SyntheticDistro not synthetic")
	}
	if d.String() != "SynOS007" {
		t.Fatalf("String = %q", d.String())
	}
	parsed, err := ParseDistro("SynOS007")
	if err != nil || parsed != d {
		t.Fatalf("ParseDistro(SynOS007) = %v, %v", parsed, err)
	}
	if d.Family() == FamilyUnknown {
		t.Fatal("synthetic distro has no family")
	}
	if y := d.FirstReleaseYear(); y < 1993 || y > 2008 {
		t.Fatalf("FirstReleaseYear = %d", y)
	}
	if _, err := ParseDistro("SynOS9999"); err == nil {
		t.Fatal("out-of-range synthetic name parsed")
	}
}

func TestSyntheticRegistry(t *testing.T) {
	r := NewSyntheticRegistry(32)
	ds := r.Distros()
	if len(ds) != 32 || r.UniverseSize() != 32 {
		t.Fatalf("universe size %d, want 32", len(ds))
	}
	// The first 11 are the paper's distros, in presentation order.
	if !reflect.DeepEqual(ds[:NumDistros], Distros()) {
		t.Fatalf("first 11 = %v", ds[:NumDistros])
	}
	for _, d := range ds {
		canon := r.CanonicalName(d)
		if canon.Product == "" {
			t.Fatalf("%v has no canonical CPE", d)
		}
		got, ok := r.Cluster(canon)
		if !ok || got != d {
			t.Fatalf("canonical CPE of %v clusters to %v, %v", d, got, ok)
		}
		if len(r.Releases(d)) == 0 {
			t.Fatalf("%v has no releases", d)
		}
	}
	// Default registry still reports the paper's universe.
	if def := NewRegistry(); def.UniverseSize() != NumDistros {
		t.Fatalf("default universe size %d", def.UniverseSize())
	}
	// Narrow universes truncate the paper's list.
	if narrow := NewSyntheticRegistry(5); len(narrow.Distros()) != 5 {
		t.Fatalf("narrow universe size %d", len(narrow.Distros()))
	}
}
