package osmap

import (
	"fmt"
	"math/bits"
)

// Mask is a variable-width distro bitmask: bit i set means the entry
// affects the i-th distribution of the owning registry's universe (see
// Registry.Distros). It replaces the fixed uint16 record mask so the
// engine supports arbitrarily many distributions. The zero value is an
// empty mask of width 0; NewMask sizes one for a universe.
type Mask []uint64

// maskWords returns the number of 64-bit words covering nBits.
func maskWords(nBits int) int { return (nBits + 63) / 64 }

// NewMask returns an empty mask wide enough for nBits bit positions.
func NewMask(nBits int) Mask { return make(Mask, maskWords(nBits)) }

// Set sets bit i. The mask must already be wide enough; use SetGrow or
// SetChecked when the index may exceed the mask's width.
func (m Mask) Set(i int) { m[i>>6] |= 1 << uint(i&63) }

// SetGrow sets bit i, widening the mask as needed, and returns the
// (possibly reallocated) mask. This is the digestion-boundary form: a
// feed entry referencing a distribution beyond the universe width grows
// the mask instead of crashing ingestion. Negative indices panic.
func (m Mask) SetGrow(i int) Mask {
	for i>>6 >= len(m) {
		m = append(m, 0)
	}
	m[i>>6] |= 1 << uint(i&63)
	return m
}

// SetChecked sets bit i, returning an error instead of panicking when
// the index falls outside the mask's width.
func (m Mask) SetChecked(i int) error {
	if i < 0 || i>>6 >= len(m) {
		return fmt.Errorf("osmap: bit index %d out of range for %d-word mask", i, len(m))
	}
	m[i>>6] |= 1 << uint(i&63)
	return nil
}

// Has reports whether bit i is set. Out-of-range bits read as unset.
func (m Mask) Has(i int) bool {
	w := i >> 6
	return w < len(m) && m[w]&(1<<uint(i&63)) != 0
}

// OnesCount returns the number of set bits.
func (m Mask) OnesCount() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether the two masks have the same set bits, ignoring
// trailing zero words.
func (m Mask) Equal(o Mask) bool {
	long, short := m, o
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bits writes the indices of the set bits into dst in ascending order and
// returns how many it wrote. dst must have capacity for OnesCount()
// indices.
func (m Mask) Bits(dst []int) int {
	n := 0
	for wi, w := range m {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			dst[n] = base + bits.TrailingZeros64(w)
			n++
		}
	}
	return n
}

// ForEachBit calls fn with every set bit index in ascending order.
func (m Mask) ForEachBit(fn func(i int)) {
	for wi, w := range m {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			fn(base + bits.TrailingZeros64(w))
		}
	}
}

// String renders the mask as a set of bit indices, for diagnostics.
func (m Mask) String() string {
	out := "{"
	first := true
	m.ForEachBit(func(i int) {
		if !first {
			out += ","
		}
		out += fmt.Sprint(i)
		first = false
	})
	return out + "}"
}
