// Package report renders the study's tables and figures as aligned
// ASCII tables, CSV, Markdown, and text bar charts — the presentation
// layer behind cmd/osdiv and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is a rectangular dataset with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowValues appends one row, rendering each value with %v.
func (t *Table) AddRowValues(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.AddRow(row...)
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders labeled horizontal bars scaled to fit width.
type BarChart struct {
	Title string
	Width int // bar area width in characters; default 40
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 40} }

// Add appends one labeled bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, bar{label: label, value: value})
}

// Write renders the chart.
func (c *BarChart) Write(w io.Writer) error {
	maxVal := 0.0
	labelW := 0
	for _, b := range c.bars {
		if b.value > maxVal {
			maxVal = b.value
		}
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	for _, b := range c.bars {
		n := 0
		if maxVal > 0 {
			n = int(b.value / maxVal * float64(c.Width))
		}
		sb.WriteString(b.label)
		sb.WriteString(strings.Repeat(" ", labelW-len(b.label)))
		sb.WriteString(" |")
		sb.WriteString(strings.Repeat("#", n))
		fmt.Fprintf(&sb, " %s\n", trimFloat(b.value))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// YearSeries renders one or more year-indexed series side by side —
// the textual stand-in for Figure 2's temporal plots.
type YearSeries struct {
	Title  string
	names  []string
	series []map[int]int
}

// NewYearSeries creates an empty series plot.
func NewYearSeries(title string) *YearSeries { return &YearSeries{Title: title} }

// Add appends a named series.
func (ys *YearSeries) Add(name string, data map[int]int) {
	ys.names = append(ys.names, name)
	ys.series = append(ys.series, data)
}

// Write renders a year-by-year table of all series.
func (ys *YearSeries) Write(w io.Writer) error {
	yearSet := make(map[int]bool)
	for _, s := range ys.series {
		for y := range s {
			yearSet[y] = true
		}
	}
	years := make([]int, 0, len(yearSet))
	for y := range yearSet {
		years = append(years, y)
	}
	sort.Ints(years)

	t := NewTable(ys.Title, append([]string{"Year"}, ys.names...)...)
	for _, y := range years {
		cells := make([]string, 0, len(ys.series)+1)
		cells = append(cells, strconv.Itoa(y))
		for _, s := range ys.series {
			cells = append(cells, strconv.Itoa(s[y]))
		}
		t.AddRow(cells...)
	}
	return t.WriteASCII(w)
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}
