package report

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Pairs", "Pair", "All", "Remote")
	t.AddRow("OpenBSD-NetBSD", "40", "16")
	t.AddRowValues("Windows2000-Windows2003", 253, 81)
	return t
}

func TestWriteASCII(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("ASCII output has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Pairs") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "Pair") || !strings.Contains(lines[1], "Remote") {
		t.Errorf("missing header: %q", lines[1])
	}
	if !strings.Contains(out, "253") {
		t.Error("missing cell value")
	}
	// Alignment: the two data rows place the second column at one offset.
	idx1 := strings.Index(lines[3], "40")
	idx2 := strings.Index(lines[4], "253")
	if idx1 < 0 || idx2 < 0 || idx1 != idx2 {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(`say "hi"`, "x,y")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| Pair | All | Remote |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
}

func TestRowPadding(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only-one")
	tbl.AddRow("x", "y", "z", "dropped")
	var b strings.Builder
	if err := tbl.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "dropped") {
		t.Error("extra cell not truncated")
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 3")
	c.Add("Debian", 16)
	c.Add("Set1", 10)
	c.Add("Zero", 0)
	var b strings.Builder
	if err := c.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	debianBars := strings.Count(lines[1], "#")
	set1Bars := strings.Count(lines[2], "#")
	if debianBars <= set1Bars {
		t.Errorf("bar lengths not proportional: %d vs %d", debianBars, set1Bars)
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("zero bar has hashes")
	}
	if debianBars != 40 {
		t.Errorf("max bar should fill width 40, got %d", debianBars)
	}
}

func TestYearSeries(t *testing.T) {
	ys := NewYearSeries("Figure 2a")
	ys.Add("Solaris", map[int]int{1999: 18, 2000: 22})
	ys.Add("OpenSolaris", map[int]int{2008: 12})
	var b strings.Builder
	if err := ys.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Year", "Solaris", "OpenSolaris", "1999", "2008", "18", "12"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
	// Missing years render as zero.
	if !strings.Contains(out, "0") {
		t.Error("missing zero fill")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(16) != "16" || trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat wrong: %q %q", trimFloat(16), trimFloat(2.5))
	}
}
