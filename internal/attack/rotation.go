package attack

import (
	"errors"
	"fmt"
	"math/bits"

	"osdiversity/internal/bft"
	"osdiversity/internal/core"
	"osdiversity/internal/osmap"
)

// RotationStep is one window of a dynamic-diversity rotation schedule:
// the OS assignment deployed for the step and the temporal window whose
// disclosures arm the adversary while the step is live.
type RotationStep struct {
	// OSes assigns operating systems to the 3F+1 replicas for the step.
	OSes []osmap.Distro
	// Window restricts the adversary's vulnerability population to
	// disclosures inside the window while the step is deployed. The
	// zero window means the whole population.
	Window core.SelectionWindow
}

// maxRotationReplicas bounds 3F+1 so the compromised-replica set fits a
// uint32 bitmask counted with bits.OnesCount32.
const maxRotationReplicas = 32

// validateRotation checks a schedule's shape.
func validateRotation(f int, steps []RotationStep, interval float64) error {
	if f < 1 {
		return errors.New("attack: F must be at least 1")
	}
	n := 3*f + 1
	if n > maxRotationReplicas {
		return fmt.Errorf("attack: rotation supports at most F=%d", (maxRotationReplicas-1)/3)
	}
	if len(steps) == 0 {
		return errors.New("attack: rotation needs at least one step")
	}
	for i, st := range steps {
		if len(st.OSes) != n {
			return fmt.Errorf("attack: step %d needs %d replicas for F=%d, got %d", i, n, f, len(st.OSes))
		}
	}
	if interval <= 0 {
		return errors.New("attack: interval must be positive")
	}
	return nil
}

// RotationResult is one simulated run over a rotation schedule.
type RotationResult struct {
	// Survived reports that the adversary never held more than F
	// replicas simultaneously within any step.
	Survived bool
	// FailedStep is the index of the step where the threshold was
	// crossed (-1 when the run survived).
	FailedStep int
	// When is the failure time (the schedule horizon when survived).
	When float64
	// Campaigns counts completed exploit campaigns.
	Campaigns int
}

// SimulateRotation runs one attack against a rotation schedule with a
// deterministic seed. Each step deploys its assignment for `interval`
// time units; the boundary rejuvenates every replica from a clean
// image. Rotation is redeployment, not patching: the adversary's
// arsenal of working exploits persists, so an OS exploited in an
// earlier step is re-compromised the instant a later step redeploys it
// — schedules that avoid OS reuse are exactly the ones that benefit.
// Within a step the campaign loop mirrors Simulate, drawing targets
// from the step's window-scoped population; a campaign still running at
// the boundary is abandoned with the outgoing image.
func (m *Model) SimulateRotation(f int, steps []RotationStep, interval float64, seed uint64) (RotationResult, error) {
	if err := validateRotation(f, steps, interval); err != nil {
		return RotationResult{}, err
	}
	rnd := rng{state: seed*0x9E3779B97F4A7C15 + 1}
	arsenal := make(map[osmap.Distro]bool)
	res := RotationResult{FailedStep: -1}

	for k, st := range steps {
		byOS := m.byOSInWindow(st.Window)
		start := float64(k) * interval
		end := start + interval

		compromised := make(map[osmap.Distro]bool)
		downCount := func() int {
			var mask uint32
			for i, os := range st.OSes {
				if compromised[os] {
					mask |= 1 << i
				}
			}
			return bits.OnesCount32(mask)
		}
		// Redeployed images the adversary already holds exploits for
		// fall at the boundary itself.
		for _, os := range st.OSes {
			if arsenal[os] {
				compromised[os] = true
			}
		}
		if downCount() > f {
			res.When = start
			res.FailedStep = k
			return res, nil
		}

		now := start
		for {
			var target osmap.Distro
			bestCover := 0
			for _, os := range distinctOSes(st.OSes) {
				if compromised[os] || len(byOS[os]) == 0 {
					continue
				}
				cover := 0
				for _, o := range st.OSes {
					if o == os {
						cover++
					}
				}
				if cover > bestCover {
					bestCover = cover
					target = os
				}
			}
			if bestCover == 0 {
				break // nothing attackable before the next rotation
			}
			done := now + rnd.expDraw(m.MeanEffort)
			if done >= end {
				break // the boundary rejuvenates before the campaign lands
			}
			now = done
			res.Campaigns++
			vulns := byOS[target]
			v := vulns[int(rnd.next()%uint64(len(vulns)))]
			arsenal[target] = true
			compromised[target] = true
			for _, d := range v.Distros {
				arsenal[d] = true
				compromised[d] = true
			}
			if downCount() > f {
				res.When = now
				res.FailedStep = k
				return res, nil
			}
		}
	}
	res.Survived = true
	res.When = float64(len(steps)) * interval
	return res, nil
}

// RotationSurvival runs `trials` rotation simulations on the Monte
// Carlo worker pool and returns the surviving fraction. Trial t draws
// from stream seedBase+t+1 regardless of worker count or call order,
// so callers can assign independent deterministic streams per schedule
// candidate.
func (m *Model) RotationSurvival(f int, steps []RotationStep, interval float64, trials int, seedBase uint64) (float64, error) {
	if trials < 1 {
		return 0, errors.New("attack: at least one trial required")
	}
	if err := validateRotation(f, steps, interval); err != nil {
		return 0, err
	}
	// Warm the window populations before sharding so trials only read.
	for _, st := range steps {
		m.byOSInWindow(st.Window)
	}
	results := make([]RotationResult, trials)
	m.runTrials(trials, func(t int) {
		// Shape validated above; per-trial errors cannot occur.
		results[t], _ = m.SimulateRotation(f, steps, interval, seedBase+uint64(t)+1)
	})
	survived := 0
	for _, res := range results {
		if res.Survived {
			survived++
		}
	}
	return float64(survived) / float64(trials), nil
}

// ReplayRotationOnCluster validates a schedule's survival claim on the
// BFT substrate, extending ReplayOnCluster across rotation boundaries:
// for every step the cluster rotates to the step's assignment
// (rejuvenating each replica), up to F replicas fall by OS exactly as
// window-scoped exploits take them, a request is submitted, and the
// safety report must stay clean. The returned violations are empty iff
// every step preserved agreement and validity with the threshold
// respected.
func (m *Model) ReplayRotationOnCluster(f int, steps []RotationStep, seed uint64) ([]string, error) {
	if err := validateRotation(f, steps, 1); err != nil {
		return nil, err
	}
	cluster, err := bft.NewCluster(bft.Config{F: f, OSes: steps[0].OSes, Seed: seed})
	if err != nil {
		return nil, err
	}
	var violations []string
	for k, st := range steps {
		if k > 0 {
			if err := cluster.Rotate(st.OSes); err != nil {
				return nil, err
			}
		}
		// Compromise up to F replicas, restricted to OSes the step's
		// window actually gives the adversary an exploit for.
		byOS := m.byOSInWindow(st.Window)
		budget := f
		for _, os := range distinctOSes(st.OSes) {
			if budget == 0 {
				break
			}
			if len(byOS[os]) == 0 {
				continue
			}
			hits := 0
			for _, o := range st.OSes {
				if o == os {
					hits++
				}
			}
			if hits <= budget {
				cluster.CompromiseByOS(os, bft.ForgeReplies)
				budget -= hits
			}
		}
		cluster.Submit(fmt.Sprintf("step-%d", k))
		cluster.Run(float64(k+1) * 20000)
		for _, v := range cluster.SafetyReport() {
			violations = append(violations, fmt.Sprintf("step %d: %s", k, v))
		}
	}
	return violations, nil
}
