package attack

import (
	"reflect"
	"testing"

	"osdiversity/internal/core"
	"osdiversity/internal/cve"
	"osdiversity/internal/osmap"
)

func fourOf(d osmap.Distro) []osmap.Distro {
	return []osmap.Distro{d, d, d, d}
}

// disjointSteps is a two-window schedule sharing no OS across windows.
func disjointSteps() []RotationStep {
	return []RotationStep{
		{OSes: []osmap.Distro{osmap.OpenBSD, osmap.Solaris, osmap.Debian, osmap.Windows2003},
			Window: core.SelectionWindow{ToYear: 2002}},
		{OSes: []osmap.Distro{osmap.NetBSD, osmap.FreeBSD, osmap.RedHat, osmap.Windows2000},
			Window: core.SelectionWindow{FromYear: 2003}},
	}
}

func homogeneousSteps() []RotationStep {
	return []RotationStep{
		{OSes: fourOf(osmap.Debian), Window: core.SelectionWindow{ToYear: 2002}},
		{OSes: fourOf(osmap.Debian), Window: core.SelectionWindow{FromYear: 2003}},
	}
}

func TestRotationValidation(t *testing.T) {
	m := paperModel(t)
	if _, err := m.SimulateRotation(0, disjointSteps(), 2, 1); err == nil {
		t.Error("F=0 accepted")
	}
	if _, err := m.SimulateRotation(1, nil, 2, 1); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := m.SimulateRotation(2, disjointSteps(), 2, 1); err == nil {
		t.Error("4 replicas accepted for F=2")
	}
	if _, err := m.SimulateRotation(1, disjointSteps(), 0, 1); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := m.RotationSurvival(1, disjointSteps(), 2, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestSimulateRotationDeterministic(t *testing.T) {
	m := paperModel(t)
	a, err := m.SimulateRotation(1, disjointSteps(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateRotation(1, disjointSteps(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// arsenalModel is a hand-built population that pins the rotation
// semantics exactly: Debian and RedHat each have one vulnerability
// disclosed in 2000, Windows2000 one in 2005.
func arsenalModel() *Model {
	return &Model{vulns: []core.VulnRef{
		{ID: cve.ID{Year: 2000, Seq: 1}, Year: 2000, Distros: []osmap.Distro{osmap.Debian}},
		{ID: cve.ID{Year: 2000, Seq: 2}, Year: 2000, Distros: []osmap.Distro{osmap.RedHat}},
		{ID: cve.ID{Year: 2005, Seq: 1}, Year: 2005, Distros: []osmap.Distro{osmap.Windows2000}},
	}, MeanEffort: 1, workers: 1}
}

// TestRotationArsenalPersists pins the core rotation rule: rotation
// redeploys images without patching, so an OS exploited in an earlier
// window falls the instant a later window redeploys it.
func TestRotationArsenalPersists(t *testing.T) {
	m := arsenalModel()
	early := core.SelectionWindow{ToYear: 2002}
	late := core.SelectionWindow{FromYear: 2003}
	// Step 0 only exposes Debian (the one attackable OS in the early
	// window); a huge interval guarantees the campaign lands.
	step0 := RotationStep{OSes: []osmap.Distro{osmap.Debian, osmap.OpenBSD, osmap.Solaris, osmap.FreeBSD}, Window: early}

	// Reusing Debian in step 1 hands the adversary a free replica: the
	// held exploit plus the Windows2000 campaign cross F=1 in step 1.
	reuse := []RotationStep{step0,
		{OSes: []osmap.Distro{osmap.Debian, osmap.OpenBSD, osmap.Solaris, osmap.Windows2000}, Window: late}}
	res, err := m.SimulateRotation(1, reuse, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived || res.FailedStep != 1 {
		t.Fatalf("reuse schedule: %+v, want failure in step 1", res)
	}

	// A fresh assignment only loses Windows2000 in step 1 and survives.
	fresh := []RotationStep{step0,
		{OSes: []osmap.Distro{osmap.NetBSD, osmap.OpenBSD, osmap.Solaris, osmap.Windows2000}, Window: late}}
	res, err = m.SimulateRotation(1, fresh, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Survived || res.When != 2000 {
		t.Fatalf("fresh schedule: %+v, want survival to horizon 2000", res)
	}

	// Redeploying the exploited OS on more than F replicas fails at the
	// rotation boundary itself, before any step-1 campaign.
	boundary := []RotationStep{step0,
		{OSes: []osmap.Distro{osmap.Debian, osmap.Debian, osmap.Debian, osmap.OpenBSD}, Window: late}}
	res, err = m.SimulateRotation(1, boundary, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survived || res.FailedStep != 1 || res.When != 1000 || res.Campaigns != 1 {
		t.Fatalf("boundary re-compromise: %+v, want instant failure at t=1000 after 1 campaign", res)
	}
}

// TestDisjointRanksAboveHomogeneous pins the acceptance claim on the
// calibrated corpus: a fully-disjoint rotation schedule survives
// strictly more trials than the homogeneous baseline.
func TestDisjointRanksAboveHomogeneous(t *testing.T) {
	m := paperModel(t)
	disjoint, err := m.RotationSurvival(1, disjointSteps(), 2, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	homog, err := m.RotationSurvival(1, homogeneousSteps(), 2, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if disjoint <= homog {
		t.Fatalf("disjoint survival %v not strictly above homogeneous %v", disjoint, homog)
	}
}

func TestRotationSurvivalWorkerIdentity(t *testing.T) {
	serial := paperModel(t)
	serial.SetParallelism(1)
	want, err := serial.RotationSurvival(1, disjointSteps(), 2, 250, 99)
	if err != nil {
		t.Fatal(err)
	}
	parallel := paperModel(t)
	parallel.SetParallelism(4)
	got, err := parallel.RotationSurvival(1, disjointSteps(), 2, 250, 99)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetParallelism(1)
	if got != want {
		t.Fatalf("survival at 4 workers = %v, serial = %v", got, want)
	}
}

func TestReplayRotationOnCluster(t *testing.T) {
	m := paperModel(t)
	violations, err := m.ReplayRotationOnCluster(1, disjointSteps(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("disjoint schedule replay violated safety: %v", violations)
	}
	if _, err := m.ReplayRotationOnCluster(0, disjointSteps(), 7); err == nil {
		t.Error("F=0 accepted")
	}
}
