package attack

import (
	"math"
	"testing"

	"osdiversity/internal/core"
	"osdiversity/internal/corpus"
	"osdiversity/internal/osmap"
)

var modelCache *Model

func paperModel(t testing.TB) *Model {
	t.Helper()
	if modelCache == nil {
		c, err := corpus.Generate()
		if err != nil {
			t.Fatalf("corpus.Generate: %v", err)
		}
		modelCache = NewModel(core.NewStudy(c.Entries), core.IsolatedThinServer)
	}
	return modelCache
}

func homogeneous(d osmap.Distro) Scenario {
	return Scenario{Name: "homogeneous-" + d.String(), F: 1,
		OSes: []osmap.Distro{d, d, d, d}}
}

func set1() Scenario {
	return Scenario{Name: "set1", F: 1, OSes: []osmap.Distro{
		osmap.Windows2003, osmap.Solaris, osmap.Debian, osmap.OpenBSD}}
}

func TestScenarioValidate(t *testing.T) {
	if err := (Scenario{F: 0, OSes: []osmap.Distro{osmap.Debian}}).Validate(); err == nil {
		t.Error("F=0 accepted")
	}
	if err := (Scenario{F: 1, OSes: []osmap.Distro{osmap.Debian}}).Validate(); err == nil {
		t.Error("short OS list accepted")
	}
	if err := set1().Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestModelPopulation(t *testing.T) {
	m := paperModel(t)
	// The ITS population is every remotely exploitable non-application
	// vulnerability; it must be large but smaller than the full corpus.
	if m.VulnCount() < 400 || m.VulnCount() > 1200 {
		t.Errorf("ITS population = %d, implausible", m.VulnCount())
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := paperModel(t)
	a, err := m.Simulate(set1(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate(set1(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := m.Simulate(set1(), 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestHomogeneousFallsToOneExploit(t *testing.T) {
	m := paperModel(t)
	res, err := m.Simulate(homogeneous(osmap.Debian), 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExploitsUsed != 1 {
		t.Errorf("homogeneous cluster took %d exploits, want 1", res.ExploitsUsed)
	}
	if res.FatalExploit != 4 {
		t.Errorf("fatal exploit took %d replicas, want all 4", res.FatalExploit)
	}
}

func TestDiversityGain(t *testing.T) {
	m := paperModel(t)
	gain, err := m.Gain(homogeneous(osmap.Debian), set1(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 1.5 {
		t.Errorf("diversity gain = %.2f, expected well above 1 (the paper's whole point)", gain)
	}
}

func TestDiverseNeedsMultipleExploits(t *testing.T) {
	m := paperModel(t)
	sum, err := m.MonteCarlo(set1(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unbroken == sum.Trials {
		t.Fatal("diverse set never compromised; model degenerate")
	}
	// Set1's pairwise overlaps are tiny (at most 2 across the full
	// period), so the fatal exploit is rarely shared.
	if sum.SharedFatal > 0.25 {
		t.Errorf("shared-fatal fraction = %.2f, expected rare for Set1", sum.SharedFatal)
	}
	homog, err := m.MonteCarlo(homogeneous(osmap.Debian), 200)
	if err != nil {
		t.Fatal(err)
	}
	if homog.SharedFatal != 1.0 {
		t.Errorf("homogeneous shared-fatal = %.2f, want 1.0", homog.SharedFatal)
	}
	if homog.MeanTTC >= sum.MeanTTC {
		t.Errorf("homogeneous TTC %.3f >= diverse TTC %.3f", homog.MeanTTC, sum.MeanTTC)
	}
}

func TestWorstDiversePairBeatsHomogeneous(t *testing.T) {
	// Even the worst 4-set of the history-eligible OSes (heavy Windows
	// sharing) should outlast a homogeneous deployment on average.
	m := paperModel(t)
	worst := Scenario{Name: "windows-heavy", F: 1, OSes: []osmap.Distro{
		osmap.Windows2000, osmap.Windows2003, osmap.Windows2008, osmap.Solaris}}
	gain, err := m.Gain(homogeneous(osmap.Windows2000), worst, 200)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 1.0 {
		t.Errorf("windows-heavy gain = %.2f, want > 1", gain)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	m := paperModel(t)
	if _, err := m.MonteCarlo(set1(), 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := m.Simulate(Scenario{F: 1, OSes: nil}, 1); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestReplayOnCluster(t *testing.T) {
	m := paperModel(t)
	pre, post, err := m.ReplayOnCluster(set1(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) != 0 {
		t.Errorf("violations below the threshold: %v", pre)
	}
	if len(post) == 0 {
		t.Error("no violation observed beyond the threshold")
	}
}

func TestReplayHomogeneous(t *testing.T) {
	// A homogeneous cluster cannot be compromised "up to F" by OS —
	// the first exploit takes everything, so even the pre-threshold
	// phase stays honest only because no exploit is applied; the
	// post-threshold phase must violate.
	m := paperModel(t)
	pre, post, err := m.ReplayOnCluster(homogeneous(osmap.Debian), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) != 0 {
		t.Errorf("pre-threshold violations: %v", pre)
	}
	if len(post) == 0 {
		t.Error("homogeneous cluster survived full compromise")
	}
}

func TestInfinityWhenNoVulns(t *testing.T) {
	empty := &Model{MeanEffort: 1}
	res, err := empty.Simulate(set1(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.TimeToCompromise, 1) {
		t.Errorf("empty model TTC = %v, want +Inf", res.TimeToCompromise)
	}
}
