package attack

import (
	"testing"
)

func TestRecoveryValidation(t *testing.T) {
	m := paperModel(t)
	if _, err := m.SimulateWithRecovery(set1(), 0, 10, 1); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := m.SimulateWithRecovery(set1(), 1, -1, 1); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := m.SurvivalRate(set1(), 1, 10, 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRecoveryDeterministic(t *testing.T) {
	m := paperModel(t)
	a, err := m.SimulateWithRecovery(set1(), 0.5, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateWithRecovery(set1(), 0.5, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("recovery runs diverged: %+v vs %+v", a, b)
	}
}

func TestFastRecoveryProtectsDiverseSet(t *testing.T) {
	// With recovery five times faster than the mean exploit campaign,
	// the adversary must either land a shared-vulnerability exploit
	// (rare for Set1) or chain two campaigns inside one 0.2-unit window.
	// Over a three-unit mission the diverse set mostly survives, while
	// the homogeneous one almost always dies to its first campaign.
	m := paperModel(t)
	rate, err := m.SurvivalRate(set1(), 0.2, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.4 {
		t.Errorf("Set1 survival with fast recovery = %.2f, want clearly above homogeneous", rate)
	}
	homog, err := m.SurvivalRate(homogeneousDebian(), 0.2, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if homog > 0.2 || homog >= rate {
		t.Errorf("homogeneous survival = %.2f vs diverse %.2f", homog, rate)
	}
}

func TestRecoveryCannotSaveHomogeneousSet(t *testing.T) {
	// A homogeneous cluster crosses the threshold with a single
	// campaign, so recovery frequency is irrelevant over a horizon long
	// enough for one campaign to land.
	m := paperModel(t)
	homogRate, err := m.SurvivalRate(homogeneousDebian(), 0.25, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	if homogRate > 0.05 {
		t.Errorf("homogeneous survival with recovery = %.2f, should be near zero", homogRate)
	}
}

func TestSlowRecoveryDegrades(t *testing.T) {
	// Recovery slower than the campaign rate cannot protect even the
	// diverse set.
	m := paperModel(t)
	fast, err := m.SurvivalRate(set1(), 0.2, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.SurvivalRate(set1(), 10, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	if slow >= fast {
		t.Errorf("slow-recovery survival %.2f >= fast-recovery %.2f", slow, fast)
	}
}

func homogeneousDebian() Scenario {
	sc := Scenario{Name: "homog", F: 1}
	for i := 0; i < 4; i++ {
		sc.OSes = append(sc.OSes, set1().OSes[2]) // Debian
	}
	return sc
}
