package attack

import (
	"math"
	"testing"

	"osdiversity/internal/osmap"
)

// The Monte Carlo batches are embarrassingly parallel; these tests pin
// the determinism contract: identical summaries at any worker count.
// (Each trial draws from its own seeded stream, so even the shared
// paperModel can switch worker counts without changing any result.)

func TestMonteCarloIdenticalAcrossWorkers(t *testing.T) {
	m := paperModel(t)
	defer m.SetParallelism(1)
	m.SetParallelism(1)
	serial, err := m.MonteCarlo(set1(), 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		m.SetParallelism(workers)
		got, err := m.MonteCarlo(set1(), 500)
		if err != nil {
			t.Fatal(err)
		}
		if got.MeanTTC != serial.MeanTTC || got.MedianTTC != serial.MedianTTC ||
			got.SharedFatal != serial.SharedFatal || got.Unbroken != serial.Unbroken {
			t.Fatalf("workers=%d summary differs: %+v vs %+v", workers, got, serial)
		}
	}
}

func TestSurvivalRateIdenticalAcrossWorkers(t *testing.T) {
	m := paperModel(t)
	defer m.SetParallelism(1)
	m.SetParallelism(1)
	serial, err := m.SurvivalRate(set1(), 2.0, 20.0, 300)
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(4)
	got, err := m.SurvivalRate(set1(), 2.0, 20.0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got != serial {
		t.Fatalf("survival rate differs: %v vs %v", got, serial)
	}
}

func TestParallelMonteCarloValidation(t *testing.T) {
	m := paperModel(t)
	defer m.SetParallelism(1)
	m.SetParallelism(4)
	if _, err := m.MonteCarlo(Scenario{F: 0}, 10); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := m.SurvivalRate(set1(), 0, 10, 10); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := m.SurvivalRate(set1(), 1, 10, 0); err == nil {
		t.Fatal("zero trials accepted")
	}
	if m.Parallelism() != 4 {
		t.Fatalf("Parallelism = %d, want 4", m.Parallelism())
	}
	if sum, err := m.MonteCarlo(set1(), 1); err != nil || sum.Trials != 1 {
		t.Fatalf("single-trial batch: %+v, %v", sum, err)
	}
	g, err := m.Gain(homogeneous(osmap.Debian), set1(), 50)
	if err != nil || math.IsNaN(g) || g <= 0 {
		t.Fatalf("parallel Gain = %v, %v", g, err)
	}
}
