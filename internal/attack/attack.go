// Package attack models the adversary the paper's introduction worries
// about: one who develops exploits for (possibly shared) OS
// vulnerabilities and uses them to compromise replicas of an
// intrusion-tolerant service.
//
// The model answers the paper's opening question — "what are the gains
// of applying OS diversity on a replicated intrusion-tolerant system?" —
// by simulation under the paper's own assumption (footnote 5): "the cost
// to compromise each OS is non-negligible and approximately the same".
// The adversary therefore runs sequential exploit campaigns, one per
// target OS, each taking Exp(MeanEffort) time; a successful campaign
// exploits one concrete vulnerability of the target, and every OS
// sharing that vulnerability is compromised for free at the same
// instant. The system falls when more than F replicas are compromised.
//
// Under this model a homogeneous cluster always falls to the first
// campaign, a fully disjoint F=1 set needs two, and shared
// vulnerabilities are exactly what lets the adversary cross the
// threshold early — so the measured time-to-compromise quantifies the
// diversity gain as a function of the overlap structure the paper
// measures. The paper has no such experiment (it laments the missing
// exploit-rate data in §V); this module is the reproduction's extension,
// clearly labeled as such in DESIGN.md and EXPERIMENTS.md.
package attack

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"osdiversity/internal/bft"
	"osdiversity/internal/core"
	"osdiversity/internal/osmap"
)

// Model holds the vulnerability population driving the simulation.
type Model struct {
	vulns []core.VulnRef
	// MeanEffort is the expected exploit-development effort per
	// vulnerability in abstract time units (default 1.0).
	MeanEffort float64
	// workers bounds the Monte Carlo trial pool (1 = serial).
	workers int
	// byOSOnce/byOSIdx memoize the per-distro vulnerability lists (the
	// population is immutable, so every trial shares them).
	byOSOnce sync.Once
	byOSIdx  map[osmap.Distro][]core.VulnRef
	// winMu/winIdx memoize window-scoped slices of the population for
	// rotation schedules (one map per distinct temporal window).
	winMu  sync.Mutex
	winIdx map[core.SelectionWindow]map[osmap.Distro][]core.VulnRef
}

// byOS returns the per-distro vulnerability lists, built once.
func (m *Model) byOS() map[osmap.Distro][]core.VulnRef {
	m.byOSOnce.Do(func() {
		m.byOSIdx = make(map[osmap.Distro][]core.VulnRef)
		for _, v := range m.vulns {
			for _, d := range v.Distros {
				m.byOSIdx[d] = append(m.byOSIdx[d], v)
			}
		}
	})
	return m.byOSIdx
}

// byOSInWindow returns the per-distro vulnerability lists restricted to
// disclosures inside the temporal window, memoized per window. The
// zero window is the whole population.
func (m *Model) byOSInWindow(w core.SelectionWindow) map[osmap.Distro][]core.VulnRef {
	if w == (core.SelectionWindow{}) {
		return m.byOS()
	}
	m.winMu.Lock()
	defer m.winMu.Unlock()
	if idx, ok := m.winIdx[w]; ok {
		return idx
	}
	idx := make(map[osmap.Distro][]core.VulnRef)
	for _, v := range m.vulns {
		if !w.Contains(v.Year) {
			continue
		}
		for _, d := range v.Distros {
			idx[d] = append(idx[d], v)
		}
	}
	if m.winIdx == nil {
		m.winIdx = make(map[core.SelectionWindow]map[osmap.Distro][]core.VulnRef)
	}
	m.winIdx[w] = idx
	return idx
}

// NewModel extracts the vulnerability population from a study under a
// profile (the Isolated Thin Server profile matches the paper's
// hardened-replica assumption).
func NewModel(study *core.Study, profile core.Profile) *Model {
	return &Model{vulns: study.Vulnerabilities(profile), MeanEffort: 1.0, workers: 1}
}

// SetParallelism sets the worker count for Monte Carlo batches
// (MonteCarlo, Gain, SurvivalRate). Every trial draws from its own
// seeded RNG stream, so results are identical at any worker count.
// n <= 0 selects GOMAXPROCS.
func (m *Model) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.workers = n
}

// Parallelism reports the effective trial worker count.
func (m *Model) Parallelism() int {
	if m.workers > 1 {
		return m.workers
	}
	return 1
}

// runTrials executes body(t) for t in [0, trials) across the worker
// pool, sharding contiguous trial ranges.
func (m *Model) runTrials(trials int, body func(t int)) {
	workers := m.Parallelism()
	if workers <= 1 || trials < 2 {
		for t := 0; t < trials; t++ {
			body(t)
		}
		return
	}
	if workers > trials {
		workers = trials
	}
	chunk := (trials + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < trials; lo += chunk {
		hi := lo + chunk
		if hi > trials {
			hi = trials
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for t := lo; t < hi; t++ {
				body(t)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// VulnCount returns the population size.
func (m *Model) VulnCount() int { return len(m.vulns) }

// Scenario is one replica configuration under attack.
type Scenario struct {
	Name string
	// F is the fault threshold: the system is correct while at most F
	// replicas are compromised.
	F int
	// OSes assigns operating systems to the 3F+1 replicas.
	OSes []osmap.Distro
}

// Validate checks the scenario shape.
func (s Scenario) Validate() error {
	if s.F < 1 {
		return errors.New("attack: F must be at least 1")
	}
	if len(s.OSes) != 3*s.F+1 {
		return fmt.Errorf("attack: need %d replicas for F=%d, got %d", 3*s.F+1, s.F, len(s.OSes))
	}
	return nil
}

// Result is one simulated attack run.
type Result struct {
	// TimeToCompromise is when the adversary first held F+1 replicas.
	// +Inf when no campaign sequence can get that far (some replica's
	// OS has no vulnerability in the population).
	TimeToCompromise float64
	// ExploitsUsed counts successful campaigns up to the compromise.
	ExploitsUsed int
	// FatalExploit reports how many replicas the threshold-crossing
	// campaign took at once (>1 means a shared vulnerability helped).
	FatalExploit int
}

// rng is a deterministic xorshift64* stream.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// expDraw returns an Exp(1/mean) variate.
func (r *rng) expDraw(mean float64) float64 {
	u := (float64(r.next()%1_000_000_000) + 1) / 1_000_000_001
	return -mean * math.Log(u)
}

// Simulate runs one attack with a deterministic seed.
//
// The adversary repeatedly picks the not-yet-compromised OS covering the
// most surviving replicas (ties by replica order), spends Exp(MeanEffort)
// time on a campaign against it, exploits one of its vulnerabilities
// (chosen uniformly), and thereby also compromises every OS sharing that
// vulnerability.
func (m *Model) Simulate(sc Scenario, seed uint64) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	rnd := rng{state: seed*0x9E3779B97F4A7C15 + 1}
	byOS := m.byOS()

	compromisedOS := make(map[osmap.Distro]bool)
	replicasDown := func() int {
		n := 0
		for _, os := range sc.OSes {
			if compromisedOS[os] {
				n++
			}
		}
		return n
	}

	now := 0.0
	campaigns := 0
	for {
		if replicasDown() > sc.F {
			break // already past the threshold (cannot happen on entry)
		}
		// Choose the target covering the most surviving replicas.
		var target osmap.Distro
		bestCover := 0
		for _, os := range distinctOSes(sc.OSes) {
			if compromisedOS[os] || len(byOS[os]) == 0 {
				continue
			}
			cover := 0
			for _, o := range sc.OSes {
				if o == os {
					cover++
				}
			}
			if cover > bestCover {
				bestCover = cover
				target = os
			}
		}
		if bestCover == 0 {
			return Result{TimeToCompromise: math.Inf(1), ExploitsUsed: campaigns}, nil
		}

		now += rnd.expDraw(m.MeanEffort)
		campaigns++
		vulns := byOS[target]
		v := vulns[int(rnd.next()%uint64(len(vulns)))]

		before := replicasDown()
		compromisedOS[target] = true
		for _, d := range v.Distros {
			compromisedOS[d] = true
		}
		after := replicasDown()
		if after > sc.F {
			return Result{
				TimeToCompromise: now,
				ExploitsUsed:     campaigns,
				FatalExploit:     after - before,
			}, nil
		}
	}
	return Result{TimeToCompromise: now, ExploitsUsed: campaigns}, nil
}

// Summary aggregates a Monte Carlo batch.
type Summary struct {
	Scenario Scenario
	Trials   int
	// MeanTTC and MedianTTC are over finite runs only.
	MeanTTC   float64
	MedianTTC float64
	// SharedFatal is the fraction of runs where the threshold-crossing
	// exploit took more than one replica at once.
	SharedFatal float64
	// Unbroken counts runs where the threshold was never crossed.
	Unbroken int
}

// MonteCarlo runs `trials` deterministic simulations (seeds 1..trials).
// With SetParallelism the trials run on the worker pool; each trial is
// an independent seeded stream and the aggregation walks the results in
// trial order, so the summary is identical at any worker count.
func (m *Model) MonteCarlo(sc Scenario, trials int) (Summary, error) {
	if trials < 1 {
		return Summary{}, errors.New("attack: at least one trial required")
	}
	if err := sc.Validate(); err != nil {
		return Summary{}, err
	}
	results := make([]Result, trials)
	m.runTrials(trials, func(t int) {
		// Validate passed above; per-trial errors cannot occur.
		results[t], _ = m.Simulate(sc, uint64(t+1))
	})
	times := make([]float64, 0, trials)
	shared := 0
	unbroken := 0
	for _, res := range results {
		if math.IsInf(res.TimeToCompromise, 1) {
			unbroken++
			continue
		}
		times = append(times, res.TimeToCompromise)
		if res.FatalExploit > 1 {
			shared++
		}
	}
	sum := Summary{Scenario: sc, Trials: trials, Unbroken: unbroken}
	if len(times) > 0 {
		total := 0.0
		for _, t := range times {
			total += t
		}
		sum.MeanTTC = total / float64(len(times))
		sort.Float64s(times)
		sum.MedianTTC = times[len(times)/2]
		sum.SharedFatal = float64(shared) / float64(len(times))
	}
	return sum, nil
}

// Gain compares two scenarios: how many times longer the adversary needs
// against `diverse` than against `baseline` (mean TTC ratio).
func (m *Model) Gain(baseline, diverse Scenario, trials int) (float64, error) {
	b, err := m.MonteCarlo(baseline, trials)
	if err != nil {
		return 0, err
	}
	d, err := m.MonteCarlo(diverse, trials)
	if err != nil {
		return 0, err
	}
	if b.MeanTTC == 0 {
		return 0, errors.New("attack: baseline never compromised")
	}
	return d.MeanTTC / b.MeanTTC, nil
}

// ReplayOnCluster verifies one simulated attack against the BFT
// substrate: it builds the scenario's cluster, applies the exploit
// sequence up to (but not beyond) the fault threshold, checks the
// service still commits correctly, then crosses the threshold and
// checks a safety violation becomes observable.
func (m *Model) ReplayOnCluster(sc Scenario, seed uint64) (preViolations, postViolations []string, err error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	cluster, err := bft.NewCluster(bft.Config{F: sc.F, OSes: sc.OSes, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	// Compromise up to F replicas (by OS, as exploits do), run a
	// request, and verify correctness.
	budget := sc.F
	for _, os := range distinctOSes(sc.OSes) {
		if budget == 0 {
			break
		}
		hits := 0
		for _, o := range sc.OSes {
			if o == os {
				hits++
			}
		}
		if hits <= budget {
			cluster.CompromiseByOS(os, bft.ForgeReplies)
			budget -= hits
		}
	}
	cluster.Submit("pre-threshold")
	cluster.Run(10000)
	preViolations = cluster.SafetyReport()

	// Cross the threshold: compromise OSes until more than F replicas
	// are down, then observe the forged result reaching the client.
	for _, os := range distinctOSes(sc.OSes) {
		if cluster.CompromisedCount() > sc.F {
			break
		}
		cluster.CompromiseByOS(os, bft.ForgeReplies)
	}
	cluster.Submit("post-threshold")
	cluster.Run(20000)
	postViolations = cluster.SafetyReport()
	return preViolations, postViolations, nil
}

// RecoveryResult summarizes a simulation with proactive recovery.
type RecoveryResult struct {
	// Compromised reports whether the adversary ever held more than F
	// replicas simultaneously within the horizon.
	Compromised bool
	// When is the compromise time (horizon if never compromised).
	When float64
	// Recoveries counts rejuvenations performed.
	Recoveries int
}

// SimulateWithRecovery extends the campaign model with proactive
// recovery (the paper's reference [3] pairs BFT with rejuvenation):
// every `interval` time units, all compromised replicas are restored and
// the exploits the adversary holds become useless (the rejuvenated OS is
// patched against them), so campaigns against recovered OSes start over.
// The system fails only if the adversary crosses the threshold *between*
// recoveries — which shared vulnerabilities make dramatically easier,
// since one campaign can take several replicas inside one window.
func (m *Model) SimulateWithRecovery(sc Scenario, interval, horizon float64, seed uint64) (RecoveryResult, error) {
	if err := sc.Validate(); err != nil {
		return RecoveryResult{}, err
	}
	if interval <= 0 || horizon <= 0 {
		return RecoveryResult{}, errors.New("attack: interval and horizon must be positive")
	}
	rnd := rng{state: seed*0x9E3779B97F4A7C15 + 1}
	byOS := m.byOS()

	compromisedOS := make(map[osmap.Distro]bool)
	replicasDown := func() int {
		n := 0
		for _, os := range sc.OSes {
			if compromisedOS[os] {
				n++
			}
		}
		return n
	}

	now := 0.0
	nextRecovery := interval
	res := RecoveryResult{}
	for now < horizon {
		// Next campaign completion.
		var target osmap.Distro
		bestCover := 0
		for _, os := range distinctOSes(sc.OSes) {
			if compromisedOS[os] || len(byOS[os]) == 0 {
				continue
			}
			cover := 0
			for _, o := range sc.OSes {
				if o == os {
					cover++
				}
			}
			if cover > bestCover {
				bestCover = cover
				target = os
			}
		}
		if bestCover == 0 {
			// Nothing left to attack before the next recovery.
			now = nextRecovery
		} else {
			done := now + rnd.expDraw(m.MeanEffort)
			// Process any recoveries that fire first.
			for nextRecovery <= done && nextRecovery <= horizon {
				if n := len(compromisedOS); n > 0 {
					res.Recoveries += n
					compromisedOS = make(map[osmap.Distro]bool)
				}
				nextRecovery += interval
			}
			if done > horizon {
				break
			}
			now = done
			vulns := byOS[target]
			v := vulns[int(rnd.next()%uint64(len(vulns)))]
			compromisedOS[target] = true
			for _, d := range v.Distros {
				compromisedOS[d] = true
			}
			if replicasDown() > sc.F {
				res.Compromised = true
				res.When = now
				return res, nil
			}
		}
		if now >= nextRecovery {
			if n := len(compromisedOS); n > 0 {
				res.Recoveries += n
				compromisedOS = make(map[osmap.Distro]bool)
			}
			nextRecovery += interval
		}
	}
	res.When = horizon
	return res, nil
}

// SurvivalRate runs the recovery simulation over many trials and
// returns the fraction that survived the horizon. Trials run on the
// Monte Carlo worker pool with per-trial seeded streams, so the rate is
// identical at any worker count.
func (m *Model) SurvivalRate(sc Scenario, interval, horizon float64, trials int) (float64, error) {
	if trials < 1 {
		return 0, errors.New("attack: at least one trial required")
	}
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	if interval <= 0 || horizon <= 0 {
		return 0, errors.New("attack: interval and horizon must be positive")
	}
	results := make([]RecoveryResult, trials)
	m.runTrials(trials, func(t int) {
		// All arguments validated above; per-trial errors cannot occur.
		results[t], _ = m.SimulateWithRecovery(sc, interval, horizon, uint64(t+1))
	})
	survived := 0
	for _, res := range results {
		if !res.Compromised {
			survived++
		}
	}
	return float64(survived) / float64(trials), nil
}

func distinctOSes(oses []osmap.Distro) []osmap.Distro {
	seen := make(map[osmap.Distro]bool, len(oses))
	var out []osmap.Distro
	for _, o := range oses {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}
