package cpe

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParse22(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    Name
		wantErr bool
	}{
		{
			name: "os with version",
			in:   "cpe:/o:openbsd:openbsd:4.2",
			want: Name{Part: PartOS, Vendor: "openbsd", Product: "openbsd", Version: "4.2"},
		},
		{
			name: "windows with update",
			in:   "cpe:/o:microsoft:windows_2000::sp4",
			want: Name{Part: PartOS, Vendor: "microsoft", Product: "windows_2000", Update: "sp4"},
		},
		{
			name: "application",
			in:   "cpe:/a:isc:bind:9.4.1",
			want: Name{Part: PartApplication, Vendor: "isc", Product: "bind", Version: "9.4.1"},
		},
		{
			name: "hardware",
			in:   "cpe:/h:cisco:router",
			want: Name{Part: PartHardware, Vendor: "cisco", Product: "router"},
		},
		{
			name: "all seven components",
			in:   "cpe:/o:redhat:enterprise_linux:5:ga:server:en",
			want: Name{Part: PartOS, Vendor: "redhat", Product: "enterprise_linux", Version: "5", Update: "ga", Edition: "server", Language: "en"},
		},
		{
			name: "uppercase normalized",
			in:   "cpe:/o:RedHat:Enterprise_Linux:5",
			want: Name{Part: PartOS, Vendor: "redhat", Product: "enterprise_linux", Version: "5"},
		},
		{
			name: "percent escape",
			in:   "cpe:/a:acme:net%20tool:1.0",
			want: Name{Part: PartApplication, Vendor: "acme", Product: "net tool", Version: "1.0"},
		},
		{name: "no prefix", in: "o:openbsd:openbsd", wantErr: true},
		{name: "bad part", in: "cpe:/x:openbsd:openbsd", wantErr: true},
		{name: "empty body", in: "cpe:/", wantErr: true},
		{name: "too many fields", in: "cpe:/o:a:b:c:d:e:f:g", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse22(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Parse22(%q) = %+v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse22(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("Parse22(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParse23(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    Name
		wantErr bool
	}{
		{
			name: "simple",
			in:   "cpe:2.3:o:openbsd:openbsd:4.2:*:*:*:*:*:*:*",
			want: Name{Part: PartOS, Vendor: "openbsd", Product: "openbsd", Version: "4.2"},
		},
		{
			name: "escaped colon in product",
			in:   `cpe:2.3:a:acme:tool\:kit:1.0:*:*:*:*:*:*:*`,
			want: Name{Part: PartApplication, Vendor: "acme", Product: "tool:kit", Version: "1.0"},
		},
		{
			name: "extended attrs folded into edition",
			in:   "cpe:2.3:o:microsoft:windows_2003:*:sp2:*:*:x64:*:*:*",
			want: Name{Part: PartOS, Vendor: "microsoft", Product: "windows_2003", Update: "sp2", Edition: "~~x64~~~"},
		},
		{name: "too few fields", in: "cpe:2.3:o:openbsd:openbsd", wantErr: true},
		{name: "wrong prefix", in: "cpe:2.4:o:a:b:*:*:*:*:*:*:*:*", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse23(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Parse23(%q) = %+v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse23(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("Parse23(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseDispatch(t *testing.T) {
	if _, err := Parse("cpe:/o:debian:debian_linux:4.0"); err != nil {
		t.Errorf("Parse 2.2: %v", err)
	}
	if _, err := Parse("cpe:2.3:o:debian:debian_linux:4.0:*:*:*:*:*:*:*"); err != nil {
		t.Errorf("Parse 2.3: %v", err)
	}
	if _, err := Parse("garbage"); err == nil {
		t.Error("Parse(garbage) succeeded")
	}
}

func TestURITrimsTrailingEmpties(t *testing.T) {
	tests := []struct {
		n    Name
		want string
	}{
		{Name{Part: PartOS, Vendor: "openbsd", Product: "openbsd"}, "cpe:/o:openbsd:openbsd"},
		{Name{Part: PartOS, Vendor: "openbsd", Product: "openbsd", Version: "4.2"}, "cpe:/o:openbsd:openbsd:4.2"},
		{Name{Part: PartOS, Vendor: "microsoft", Product: "windows_2000", Update: "sp4"}, "cpe:/o:microsoft:windows_2000::sp4"},
	}
	for _, tt := range tests {
		if got := tt.n.URI(); got != tt.want {
			t.Errorf("URI() = %q, want %q", got, tt.want)
		}
	}
}

func TestRoundTrip22(t *testing.T) {
	inputs := []string{
		"cpe:/o:openbsd:openbsd:4.2",
		"cpe:/o:microsoft:windows_2000::sp4",
		"cpe:/o:redhat:enterprise_linux:5:ga:server:en",
		"cpe:/a:isc:bind:9.4.1",
	}
	for _, in := range inputs {
		n, err := Parse22(in)
		if err != nil {
			t.Fatalf("Parse22(%q): %v", in, err)
		}
		if got := n.URI(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any Name built from the restricted component alphabet must survive
	// URI -> Parse22 and Formatted -> Parse23 unchanged.
	comp := func(seed uint32, allowEmpty bool) string {
		const alpha = "abcdefghijklmnopqrstuvwxyz0123456789_."
		n := int(seed % 8)
		if !allowEmpty && n == 0 {
			n = 1
		}
		var b strings.Builder
		for i := 0; i < n; i++ {
			seed = seed*1664525 + 1013904223
			b.WriteByte(alpha[seed%uint32(len(alpha))])
		}
		s := b.String()
		// Avoid pure-dot components, which are legal but degenerate.
		if strings.Trim(s, ".") == "" {
			return strings.ReplaceAll(s, ".", "x")
		}
		return s
	}
	f := func(v, p, ver uint32, partSel uint8) bool {
		parts := []Part{PartHardware, PartOS, PartApplication}
		n := Name{
			Part:    parts[int(partSel)%len(parts)],
			Vendor:  comp(v, false),
			Product: comp(p, false),
			Version: comp(ver, true),
		}
		back22, err := Parse22(n.URI())
		if err != nil || back22 != n {
			return false
		}
		back23, err := Parse23(n.Formatted())
		return err == nil && back23 == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMatch(t *testing.T) {
	concrete := MustParse("cpe:/o:canonical:ubuntu_linux:9.04")
	tests := []struct {
		name    string
		pattern string
		want    bool
	}{
		{"exact", "cpe:/o:canonical:ubuntu_linux:9.04", true},
		{"product only", "cpe:/o:canonical:ubuntu_linux", true},
		{"vendor only", "cpe:/o:canonical", true},
		{"version prefix", "cpe:/o:canonical:ubuntu_linux:9", true},
		{"wrong version", "cpe:/o:canonical:ubuntu_linux:8.10", false},
		{"version prefix non-boundary", "cpe:/o:canonical:ubuntu_linux:9.0", false},
		{"wrong vendor", "cpe:/o:debian:ubuntu_linux", false},
		{"wrong part", "cpe:/a:canonical:ubuntu_linux", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pat := MustParse(tt.pattern)
			if got := concrete.Match(pat); got != tt.want {
				t.Fatalf("Match(%q) = %v, want %v", tt.pattern, got, tt.want)
			}
		})
	}
}

func TestVersionMatchBoundary(t *testing.T) {
	// "5" must match "5.4" but never "54"; exact equality always matches.
	tests := []struct {
		pat, got string
		want     bool
	}{
		{"5", "5.4", true},
		{"5", "54", false},
		{"5", "5", true},
		{"", "anything", true},
		{"5.4", "5.4.1", true},
		{"5.4", "5.40", false},
	}
	for _, tt := range tests {
		if got := versionMatch(tt.pat, tt.got); got != tt.want {
			t.Errorf("versionMatch(%q, %q) = %v, want %v", tt.pat, tt.got, got, tt.want)
		}
	}
}

func TestMatchReflexiveProperty(t *testing.T) {
	f := func(v, p uint32) bool {
		n := Name{Part: PartOS, Vendor: "v" + string(rune('a'+v%26)), Product: "p" + string(rune('a'+p%26))}
		return n.Match(n) // every concrete name matches itself
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartAnyMatchesAllParts(t *testing.T) {
	pattern := Name{Part: PartAny, Vendor: "acme"}
	for _, part := range []Part{PartHardware, PartOS, PartApplication} {
		n := Name{Part: part, Vendor: "acme", Product: "x"}
		if !n.Match(pattern) {
			t.Errorf("PartAny pattern failed to match part %v", part)
		}
	}
}

func TestKeyAndIsOS(t *testing.T) {
	n := MustParse("cpe:/o:sun:solaris:10")
	vendor, product := n.Key()
	if vendor != "sun" || product != "solaris" {
		t.Errorf("Key() = (%q, %q), want (sun, solaris)", vendor, product)
	}
	if !n.IsOS() {
		t.Error("IsOS() = false for /o name")
	}
	if MustParse("cpe:/a:isc:bind").IsOS() {
		t.Error("IsOS() = true for /a name")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on malformed input did not panic")
		}
	}()
	MustParse("cpe:/x:bad")
}
