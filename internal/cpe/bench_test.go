package cpe

import "testing"

func BenchmarkParse22(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse22("cpe:/o:redhat:enterprise_linux:5:ga:server"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse23(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse23("cpe:2.3:o:redhat:enterprise_linux:5:ga:server:*:*:*:*:*"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	concrete := MustParse("cpe:/o:canonical:ubuntu_linux:9.04")
	pattern := MustParse("cpe:/o:canonical:ubuntu_linux:9")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !concrete.Match(pattern) {
			b.Fatal("match failed")
		}
	}
}
